# Convenience targets; everything is plain dune underneath.

.PHONY: build test bench bench-quick bench-speedup explain-all mlint clean

build:
	dune build

test:
	dune runtest

# Full evaluation: every paper table/figure + ablations + micro-benchmarks.
bench:
	dune exec bench/main.exe

# Small-circuit subset, finishes in a couple of minutes. Emits
# machine-readable `BENCH_STAGE {...}` JSON lines for per-stage
# timing tracking.
bench-quick:
	dune exec bench/main.exe -- quick

# Only the multicore speedup table (jobs=1 vs jobs=N on the parallel
# stages, with an identical-results check).
bench-speedup:
	dune exec bench/main.exe -- speedup quick

# Dump the whole diagnostic-rule registry (one entry per rule id).
# CI uses this as a smoke test that the registry is self-consistent.
explain-all:
	dune exec bin/superflow_cli.exe -- explain --all

# Self-hosted static analyzer: parse every lib/**/*.ml and bin/*.ml
# and enforce the SL-* determinism/hygiene rules. Exits 1 on any
# unsuppressed error-severity finding. CI runs this as a merge gate.
mlint:
	dune exec bin/superflow_cli.exe -- mlint

clean:
	dune clean
