examples/bnn_inference.ml: Array Circuits Energy Flow Format Rng Sim Synth_flow Sys Tech
