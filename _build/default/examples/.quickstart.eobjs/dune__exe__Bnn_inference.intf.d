examples/bnn_inference.mli:
