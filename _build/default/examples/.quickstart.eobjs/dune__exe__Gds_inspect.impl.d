examples/gds_inspect.ml: Array Circuits Float Flow Format Gds Hashtbl Layout List Option Svg Sys Table
