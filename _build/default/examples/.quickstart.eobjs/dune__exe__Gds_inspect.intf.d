examples/gds_inspect.mli:
