examples/hierarchical_alu.ml: Array Flow Format List Sim Sta
