examples/hierarchical_alu.mli:
