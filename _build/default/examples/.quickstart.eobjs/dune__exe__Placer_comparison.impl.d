examples/placer_comparison.ml: Array Circuits Format List Placer Printf Problem Sta String Svg Synth_flow Sys Table Tech
