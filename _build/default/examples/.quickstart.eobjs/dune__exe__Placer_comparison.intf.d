examples/placer_comparison.mli:
