examples/quickstart.ml: Array Flow Format Layout Sim
