examples/quickstart.mli:
