examples/signoff.ml: Array Bdd Circuits Energy Fault Flow Format List Netlist Problem Sim Sta String Sys
