examples/signoff.mli:
