examples/technology_sweep.ml: Circuits Format List Netlist Placer Problem Sta Synth_flow Table Tech
