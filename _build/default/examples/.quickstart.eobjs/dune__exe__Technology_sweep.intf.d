examples/technology_sweep.mli:
