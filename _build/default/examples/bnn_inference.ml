(* The paper closes by positioning SuperFlow as groundwork "for future
   AQFP applications like RISC-V CPUs and neural network accelerators"
   (citing SuperBNN, a binarized-neural-network AQFP accelerator).
   This example builds one binarized neuron, pushes it through the
   whole flow, and runs inference on the synthesized chip — then
   reports what the paper's motivation is ultimately about: the energy
   per inference against a CMOS estimate.

     dune exec examples/bnn_inference.exe [synapses]   (default 32) *)

let () =
  let n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 32
  in
  Format.printf "Binarized neuron, %d synapses, through SuperFlow@." n;
  Format.printf "------------------------------------------------@.";
  let neuron = Circuits.bnn_neuron n in
  let r = Flow.run ~gds_path:"bnn.gds" neuron in
  Format.printf "%a@.@." Flow.pp_summary r;

  (* inference on the placed-and-routed netlist *)
  let chip = r.Flow.aqfp_netlist in
  let rng = Rng.create 2024 in
  let correct = ref 0 and fired = ref 0 and trials = 2000 in
  for _ = 1 to trials do
    let xs = Array.init n (fun _ -> Rng.bool rng) in
    let ws = Array.init n (fun _ -> Rng.bool rng) in
    let out = (Sim.eval chip (Array.append xs ws)).(0) in
    if out then incr fired;
    if out = Circuits.Reference.bnn_fire xs ws then incr correct
  done;
  Format.printf "inference on the chip netlist: %d/%d match the model (%.0f%% fired)@."
    !correct trials
    (100.0 *. float_of_int !fired /. float_of_int trials);

  (* the SuperBNN-style pitch: energy per inference *)
  let e = r.Flow.energy in
  (* one inference = one wave through the pipeline = one clock cycle
     of new input (the pipeline is fully streaming) *)
  Format.printf "@.energy per inference: %.3g J (CMOS-equivalent logic: %.3g J, gain %.0fx)@."
    e.Energy.energy_per_cycle_j e.Energy.cmos_energy_per_cycle_j
    e.Energy.efficiency_gain;
  Format.printf "throughput at %.1f GHz: %.2e inferences/s at %.3g W@."
    Tech.default.Tech.clock_freq_ghz
    (Tech.default.Tech.clock_freq_ghz *. 1e9)
    e.Energy.power_w;
  Format.printf "pipeline latency: %d clock phases@."
    r.Flow.synth_report.Synth_flow.delay
