(* Layout tooling demo: run the flow on a benchmark, write the GDSII
   stream, read it back with the library's own parser, and print a
   per-layer/per-structure inventory — what you would eyeball in
   KLayout.

     dune exec examples/gds_inspect.exe [circuit]   (default adder8) *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "adder8" in
  let gds_path = name ^ ".gds" in
  let aoi =
    try Circuits.benchmark name
    with Not_found ->
      Format.eprintf "unknown benchmark %s@." name;
      exit 1
  in
  Format.printf "Running full flow on %s...@." name;
  let r = Flow.run ~gds_path aoi in
  Format.printf "flow done: %a@.@." Layout.pp_stats (Layout.stats r.Flow.layout);
  let svg_path = name ^ ".svg" in
  Svg.write_file svg_path r.Flow.layout;
  Format.printf "SVG preview written to %s@.@." svg_path;

  Format.printf "Reading %s back...@." gds_path;
  match Gds.read_file gds_path with
  | Error e ->
      Format.eprintf "parse error: %s@." e;
      exit 1
  | Ok lib ->
      Format.printf "library %S, %d structures@.@." lib.Gds.libname
        (List.length lib.Gds.structures);
      let t =
        Table.create ~headers:[ "structure"; "boundaries"; "paths"; "srefs"; "texts" ]
      in
      Table.set_align t [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ];
      List.iter
        (fun s ->
          let count p = List.length (List.filter p s.Gds.elements) in
          Table.add_row t
            [
              s.Gds.sname;
              string_of_int (count (function Gds.Boundary _ -> true | _ -> false));
              string_of_int (count (function Gds.Path _ -> true | _ -> false));
              string_of_int (count (function Gds.Sref _ -> true | _ -> false));
              string_of_int (count (function Gds.Text _ -> true | _ -> false));
            ])
        lib.Gds.structures;
      Table.print t;
      (* per-layer wire inventory of the TOP structure *)
      let top = List.find (fun s -> s.Gds.sname = "TOP") lib.Gds.structures in
      let layers = Hashtbl.create 8 in
      List.iter
        (function
          | Gds.Path { layer; points; _ } ->
              let len =
                match points with
                | [ (x1, y1); (x2, y2) ] -> Float.abs (x2 -. x1) +. Float.abs (y2 -. y1)
                | _ -> 0.0
              in
              let n, l = Option.value ~default:(0, 0.0) (Hashtbl.find_opt layers layer) in
              Hashtbl.replace layers layer (n + 1, l +. len)
          | _ -> ())
        top.Gds.elements;
      print_newline ();
      print_endline "wiring per GDS layer:";
      Hashtbl.iter
        (fun layer (n, len) ->
          Format.printf "  layer %d: %d segments, %.0f um@." layer n len)
        layers
