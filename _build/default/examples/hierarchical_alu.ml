(* A hierarchical RTL design through the whole flow: a 4-bit
   ALU-slice built from submodules (ripple adder from full adders from
   half adders, plus a logic unit), selected by a one-hot op code.
   Demonstrates module instantiation in the Verilog frontend and full
   physical signoff of a multi-module design.

     dune exec examples/hierarchical_alu.exe *)

let rtl =
  {|
module half_adder(a, b, s, c);
  input a, b;
  output s, c;
  assign s = a ^ b;
  assign c = a & b;
endmodule

module full_adder(a, b, cin, s, cout);
  input a, b, cin;
  output s, cout;
  wire s1, c1, c2;
  half_adder ha1(a, b, s1, c1);
  half_adder ha2(s1, cin, s, c2);
  assign cout = c1 | c2;
endmodule

module ripple4(a, b, cin, s, cout);
  input [3:0] a;
  input [3:0] b;
  input cin;
  output [3:0] s;
  output cout;
  wire c0, c1, c2;
  full_adder fa0(a[0], b[0], cin, s[0], c0);
  full_adder fa1(a[1], b[1], c0, s[1], c1);
  full_adder fa2(a[2], b[2], c1, s[2], c2);
  full_adder fa3(a[3], b[3], c2, s[3], cout);
endmodule

module logic4(a, b, op_and, y);
  input [3:0] a;
  input [3:0] b;
  input op_and;
  output [3:0] y;
  // and when op_and, else or
  assign y = (a & b & {4{op_and}}) | ((a | b) & {4{~op_and}});
endmodule

module alu4(a, b, cin, op_arith, op_and, y, cout);
  input [3:0] a;
  input [3:0] b;
  input cin, op_arith, op_and;
  output [3:0] y;
  output cout;
  wire [3:0] sum;
  wire [3:0] lg;
  ripple4 adder(a, b, cin, sum, cout);
  logic4 lgu(a, b, op_and, lg);
  assign y = (sum & {4{op_arith}}) | (lg & {4{~op_arith}});
endmodule
|}

let bits_of w v = Array.init w (fun i -> (v lsr i) land 1 = 1)

let int_of bits =
  Array.to_list bits
  |> List.mapi (fun i b -> if b then 1 lsl i else 0)
  |> List.fold_left ( + ) 0

let () =
  print_endline "Hierarchical ALU: five Verilog modules -> one AQFP chip";
  print_endline "-------------------------------------------------------";
  match Flow.run_verilog ~gds_path:"alu4.gds" rtl with
  | Error e ->
      Format.eprintf "flow failed: %s@." e;
      exit 1
  | Ok r ->
      Format.printf "%a@.@." Flow.pp_summary r;
      let nl = r.Flow.aqfp_netlist in
      (* exercise all three op modes against reference arithmetic *)
      let eval a b cin op_arith op_and =
        let inputs =
          Array.concat
            [ bits_of 4 a; bits_of 4 b; [| cin; op_arith; op_and |] ]
        in
        let outs = Sim.eval nl inputs in
        (int_of (Array.sub outs 0 4), outs.(4))
      in
      let check label got expect =
        Format.printf "  %-22s got %2d expect %2d %s@." label got expect
          (if got = expect then "ok" else "WRONG")
      in
      let sum, cout = eval 9 5 false true false in
      check "9 + 5 (arith)" sum ((9 + 5) land 15);
      Format.printf "  carry out: %b@." cout;
      let a_and, _ = eval 12 10 false false true in
      check "12 & 10 (logic/and)" a_and (12 land 10);
      let a_or, _ = eval 12 10 false false false in
      check "12 | 10 (logic/or)" a_or (12 lor 10);
      Format.printf "@.alu4.gds written; fmax for this placement: %.2f GHz@."
        (Sta.fmax_ghz r.Flow.problem)
