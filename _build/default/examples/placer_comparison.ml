(* Placement study: run the three placers of the paper's Table III on
   one benchmark circuit and compare wirelength, max-wirelength buffer
   lines, and worst negative slack — the experiment behind the paper's
   12.8% / 12.1% claims, on a single circuit.

     dune exec examples/placer_comparison.exe [circuit]   (default apc32) *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "apc32" in
  Format.printf "Placer comparison on %s@." name;
  let aoi =
    try Circuits.benchmark name
    with Not_found ->
      Format.eprintf "unknown benchmark %s (try: %s)@." name
        (String.concat ", " Circuits.benchmark_names);
      exit 1
  in
  let aqfp, synth = Synth_flow.run aoi in
  Format.printf "synthesized: %a@.@." Synth_flow.pp_report synth;
  let t = Table.create ~headers:[ "placer"; "HPWL (um)"; "buffer lines"; "WNS (ps)"; "runtime (s)" ] in
  Table.set_align t [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ];
  let results =
    List.map
      (fun alg ->
        let p = Problem.of_netlist Tech.default aqfp in
        let r = Placer.place alg p in
        let sta = Sta.analyze p in
        Table.add_row t
          [
            Placer.algorithm_name alg;
            Table.fmt_float ~dec:0 r.Placer.hpwl;
            string_of_int r.Placer.buffer_lines;
            (if Sta.meets_timing sta then "-" else Table.fmt_float sta.Sta.wns_ps);
            Table.fmt_float ~dec:2 r.Placer.runtime_s;
          ];
        (alg, r, sta))
      [ Placer.Gordian; Placer.Taas; Placer.Superflow ]
  in
  Table.print t;
  (* drop an SVG of each placement next to the numbers *)
  List.iter
    (fun (alg, _, _) ->
      let p = Problem.of_netlist Tech.default aqfp in
      ignore (Placer.place alg p);
      let path =
        Printf.sprintf "%s_%s.svg" name
          (String.lowercase_ascii
             (String.map (fun c -> if c = '-' then '_' else c) (Placer.algorithm_name alg)))
      in
      let oc = open_out path in
      output_string oc (Svg.render_placement p);
      close_out oc;
      Format.printf "placement view: %s@." path)
    results;
  (* headline ratios, SuperFlow vs the baselines *)
  let find alg = List.find (fun (a, _, _) -> a = alg) results in
  let _, sf, sf_sta = find Placer.Superflow in
  let _, taas, taas_sta = find Placer.Taas in
  Format.printf "@.SuperFlow vs TAAS: %.1f%% wirelength, WNS %.1f vs %.1f ps@."
    (100.0 *. sf.Placer.hpwl /. taas.Placer.hpwl)
    sf_sta.Sta.wns_ps taas_sta.Sta.wns_ps
