(* Quickstart: take a small RTL design from Verilog source all the way
   to a DRC-clean AQFP GDSII layout.

     dune exec examples/quickstart.exe *)

let verilog_source =
  {|
// A 4-bit equality comparator with an enable pin.
module eq4(a, b, en, eq);
  input [3:0] a;
  input [3:0] b;
  input en;
  output eq;
  wire [3:0] x;
  assign x = a ^ b;
  assign eq = en & ~(x[0] | x[1] | x[2] | x[3]);
endmodule
|}

let () =
  print_endline "SuperFlow quickstart: eq4.v -> eq4.gds";
  print_endline "--------------------------------------";
  match Flow.run_verilog ~gds_path:"eq4.gds" verilog_source with
  | Error e ->
      Format.eprintf "flow failed: %s@." e;
      exit 1
  | Ok r ->
      Format.printf "%a@.@." Flow.pp_summary r;
      (* show that the silicon still computes the RTL function *)
      let nl = r.Flow.aqfp_netlist in
      let check a b en =
        let bit v k = (v lsr k) land 1 = 1 in
        let inputs =
          Array.init 9 (fun i ->
              if i < 4 then bit a i else if i < 8 then bit b (i - 4) else en)
        in
        let eq = (Sim.eval nl inputs).(0) in
        Format.printf "  eq4(a=%d, b=%d, en=%b) = %b@." a b en eq
      in
      check 5 5 true;
      check 5 7 true;
      check 9 9 false;
      Format.printf "@.Layout written to eq4.gds (%d cells, %d wires).@."
        (Array.length r.Flow.layout.Layout.cells)
        (Array.length r.Flow.layout.Layout.wires)
