(* Verification and test signoff: after the physical flow, formally
   prove the synthesized AQFP netlist equals the RTL (BDD-based, with
   a simulation fallback), then generate a compact manufacturing test
   set with stuck-at fault coverage.

     dune exec examples/signoff.exe [circuit]   (default adder8) *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "adder8" in
  let aoi =
    try Circuits.benchmark name
    with Not_found ->
      Format.eprintf "unknown benchmark %s@." name;
      exit 1
  in
  Format.printf "Signoff for %s@." name;
  Format.printf "================@.@.";

  (* 1. physical flow *)
  let r = Flow.run aoi in
  Format.printf "flow: %d cells, %d nets, DRC %s@."
    (Array.length r.Flow.problem.Problem.cells)
    (Array.length r.Flow.problem.Problem.nets)
    (if r.Flow.violations = [] then "clean" else "VIOLATIONS");

  (* 2. functional signoff: formal first, simulation as fallback *)
  (match Bdd.check_equivalence aoi r.Flow.aqfp_netlist with
  | Bdd.Equivalent -> Format.printf "equivalence: PROVEN (BDD)@."
  | Bdd.Different cex ->
      Format.printf "equivalence: FAILED — counterexample %s@."
        (String.concat ""
           (List.map (fun b -> if b then "1" else "0") (Array.to_list cex)));
      exit 1
  | Bdd.Too_large ->
      let ok = Sim.equivalent aoi r.Flow.aqfp_netlist in
      Format.printf "equivalence: %s (BDD too large; %s simulation)@."
        (if ok then "passed" else "FAILED")
        (if List.length (Netlist.inputs aoi) <= 14 then "exhaustive" else "sampled");
      if not ok then exit 1);

  (* 3. manufacturing tests on the netlist that will be fabricated *)
  let tests = Fault.generate ~seed:11 r.Flow.aqfp_netlist in
  Format.printf "test generation: %d vectors, %.1f%% stuck-at coverage@."
    (List.length tests.Fault.vectors)
    (100.0 *. tests.Fault.achieved);
  (match tests.Fault.undetected with
  | [] -> Format.printf "no undetected faults.@."
  | fs ->
      Format.printf "%d undetected fault(s), e.g. %a@." (List.length fs)
        Fault.pp_fault (List.hd fs));

  (* 4. demonstrate failure diagnosis: inject one stuck-at defect
     into a "die", apply the tests, look the failure up *)
  (match Fault.all_faults r.Flow.aqfp_netlist with
  | defect :: _ when tests.Fault.vectors <> [] ->
      let observed =
        List.map
          (fun v -> Fault.faulty_response r.Flow.aqfp_netlist defect v)
          tests.Fault.vectors
      in
      let suspects = Fault.diagnose r.Flow.aqfp_netlist tests.Fault.vectors observed in
      Format.printf "diagnosis drill: injected %a -> %d suspect location(s)%s@."
        Fault.pp_fault defect (List.length suspects)
        (if List.mem defect suspects then " (defect found)" else "")
  | _ -> ());

  (* 5. timing, variation yield, energy *)
  Format.printf "timing (post-route): %a@." Sta.pp_report r.Flow.sta;
  let y = Sta.monte_carlo r.Flow.problem in
  Format.printf "timing yield under JJ variation: %.0f%% (%d samples)@."
    (100.0 *. y.Sta.yield_fraction) y.Sta.samples;
  Format.printf "energy: %a@." Energy.pp r.Flow.energy
