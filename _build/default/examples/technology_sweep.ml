(* Technology exploration: the paper motivates a fully-customized flow
   with the need to "easily adjust the design objectives for AQFP and
   incorporate timely updates to the AQFP cell library". This example
   sweeps two process knobs on one circuit:

     - the maximum single-connection wirelength W_max, which trades
       buffer-line rows against signal integrity;
     - the target clock frequency, which moves the WNS.

     dune exec examples/technology_sweep.exe *)

let circuit = "adder8"

let () =
  let aoi = Circuits.benchmark circuit in
  let aqfp = Synth_flow.run_quiet aoi in
  Format.printf "Technology sweep on %s (%d cells)@.@." circuit (Netlist.size aqfp);

  (* --- W_max sweep: buffer lines vs wirelength budget --- *)
  print_endline "W_max sweep (SuperFlow placement):";
  let t = Table.create ~headers:[ "W_max (um)"; "buffer lines"; "HPWL (um)"; "max net (um)" ] in
  List.iter
    (fun w_max ->
      let tech = { Tech.default with Tech.w_max } in
      let p = Problem.of_netlist tech aqfp in
      ignore (Placer.place Placer.Superflow p);
      Table.add_row t
        [
          Table.fmt_float ~dec:0 w_max;
          string_of_int (Problem.buffer_lines p);
          Table.fmt_float ~dec:0 (Problem.hpwl p);
          Table.fmt_float ~dec:0 (Problem.max_net_length p);
        ])
    [ 200.0; 300.0; 500.0; 1000.0 ];
  Table.print t;
  print_newline ();

  (* --- clock sweep: how fast can this placement run? --- *)
  print_endline "Clock-frequency sweep (same placement, re-timed):";
  let t = Table.create ~headers:[ "clock (GHz)"; "window (ps)"; "WNS (ps)"; "violations" ] in
  let p = Problem.of_netlist Tech.default aqfp in
  ignore (Placer.place Placer.Superflow p);
  List.iter
    (fun ghz ->
      (* re-analyze the same geometry under a different clock *)
      let tech = { Tech.default with Tech.clock_freq_ghz = ghz } in
      let p' = { p with Problem.tech = tech } in
      let sta = Sta.analyze p' in
      Table.add_row t
        [
          Table.fmt_float ghz;
          Table.fmt_float (Tech.phase_window_ps tech);
          (if Sta.meets_timing sta then "met" else Table.fmt_float sta.Sta.wns_ps);
          string_of_int sta.Sta.violations;
        ])
    [ 1.0; 2.0; 3.0; 5.0; 8.0 ];
  Table.print t
