lib/aqfp/cell.ml: Array Format List Netlist
