lib/aqfp/cell.mli: Format Netlist
