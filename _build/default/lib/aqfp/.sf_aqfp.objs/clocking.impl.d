lib/aqfp/clocking.ml: Float Tech
