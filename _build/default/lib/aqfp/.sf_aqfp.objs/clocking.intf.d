lib/aqfp/clocking.mli: Tech
