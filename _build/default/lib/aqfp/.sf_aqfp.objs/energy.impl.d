lib/aqfp/energy.ml: Cell Format Netlist Tech
