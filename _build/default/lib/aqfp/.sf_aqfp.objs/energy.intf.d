lib/aqfp/energy.mli: Format Netlist Tech
