lib/aqfp/lef.ml: Array Buffer Cell Float List Printf String
