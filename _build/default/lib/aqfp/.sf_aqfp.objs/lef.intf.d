lib/aqfp/lef.mli: Cell Stdlib
