lib/aqfp/tech.ml: Float Format List Printf String
