lib/aqfp/tech.mli: Format
