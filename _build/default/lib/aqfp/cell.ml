type t = {
  cell_name : string;
  width : float;
  height : float;
  jj_count : int;
  in_pins : float array;
  out_pins : float array;
}

let buffer_like name jj =
  {
    cell_name = name;
    width = 40.0;
    height = 30.0;
    jj_count = jj;
    in_pins = [| 20.0 |];
    out_pins = [| 20.0 |];
  }

let gate2 name =
  {
    cell_name = name;
    width = 60.0;
    height = 70.0;
    jj_count = 6;
    in_pins = [| 20.0; 40.0 |];
    out_pins = [| 30.0 |];
  }

let maj3 =
  {
    cell_name = "maj3";
    width = 60.0;
    height = 70.0;
    jj_count = 6;
    in_pins = [| 10.0; 30.0; 50.0 |];
    out_pins = [| 30.0 |];
  }

let splitter k =
  if k < 2 || k > 3 then invalid_arg "Cell.splitter: arity must be 2..3";
  if k = 2 then
    {
      cell_name = "spl2";
      width = 40.0;
      height = 30.0;
      jj_count = 4;
      in_pins = [| 20.0 |];
      out_pins = [| 10.0; 30.0 |];
    }
  else
    {
      cell_name = "spl3";
      width = 60.0;
      height = 30.0;
      jj_count = 6;
      in_pins = [| 30.0 |];
      out_pins = [| 10.0; 30.0; 50.0 |];
    }

let of_kind = function
  | Netlist.Input -> buffer_like "inport" 2
  | Netlist.Output -> buffer_like "outport" 0
  | Netlist.Const _ -> buffer_like "const" 2
  | Netlist.Buf -> buffer_like "buf" 2
  | Netlist.Not -> buffer_like "not" 2
  | Netlist.And -> gate2 "and2"
  | Netlist.Or -> gate2 "or2"
  | Netlist.Nand -> gate2 "nand2"
  | Netlist.Nor -> gate2 "nor2"
  | Netlist.Xor -> gate2 "xor2"
  | Netlist.Xnor -> gate2 "xnor2"
  | Netlist.Maj -> maj3
  | Netlist.Splitter k -> splitter k

let jj_of_kind k = (of_kind k).jj_count

let library =
  let cells =
    [
      of_kind Netlist.Input;
      of_kind Netlist.Output;
      of_kind (Netlist.Const false);
      of_kind Netlist.Buf;
      of_kind Netlist.Not;
      of_kind Netlist.And;
      of_kind Netlist.Or;
      of_kind Netlist.Nand;
      of_kind Netlist.Nor;
      of_kind Netlist.Xor;
      of_kind Netlist.Xnor;
      of_kind Netlist.Maj;
      of_kind (Netlist.Splitter 2);
      of_kind (Netlist.Splitter 3);
    ]
  in
  List.map (fun c -> (c.cell_name, c)) cells

let max_splitter_outputs = 3

let netlist_jj_count nl =
  Netlist.fold nl
    (fun acc nd ->
      match nd.Netlist.kind with
      | Netlist.Output -> acc
      | k -> acc + jj_of_kind k)
    0

let pp ppf c =
  Format.fprintf ppf "%s %.0fx%.0fum %dJJ %din/%dout" c.cell_name c.width
    c.height c.jj_count (Array.length c.in_pins) (Array.length c.out_pins)
