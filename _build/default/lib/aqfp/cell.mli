(** AQFP standard cell library.

    Built after the minimalist AQFP library the paper uses: every cell
    is assembled from 2-JJ buffer primitives, so JJ counts are
    multiples of 2. Dimensions follow the paper's updated library —
    all widths, heights and pin offsets are multiples of the 10 µm
    grid; buffers are 40×30 µm and majority gates 60×70 µm.

    Geometry convention: a cell's origin is its lower-left corner;
    input pins sit on the {e top} edge (data arrives from the previous
    clock phase, which is the row above) and output pins on the
    {e bottom} edge. Pin positions are x-offsets from the origin. *)

type t = {
  cell_name : string;
  width : float;  (** µm *)
  height : float;  (** µm *)
  jj_count : int;  (** Josephson junctions in this cell *)
  in_pins : float array;  (** x-offsets of input pins on the top edge *)
  out_pins : float array;  (** x-offsets of output pins on the bottom edge *)
}

val of_kind : Netlist.kind -> t
(** Library cell implementing a netlist gate kind. [Input]/[Output]
    map to I/O port cells (buffer-sized). Raises [Invalid_argument]
    for splitter arities outside 2..4. *)

val jj_of_kind : Netlist.kind -> int
(** Shorthand for [(of_kind k).jj_count]. *)

val library : (string * t) list
(** All distinct cells, for reports and GDS cell-definition emission. *)

val max_splitter_outputs : int
(** Largest splitter the library offers (3); wider fan-outs are built
    as splitter trees by the insertion stage. *)

val netlist_jj_count : Netlist.t -> int
(** Total JJs of all placeable nodes of a netlist ([Output] markers
    are free; [Input] ports count as buffer-sized DC/SFQ converters,
    matching the paper counting all inserted cells). *)

val pp : Format.formatter -> t -> unit
