type direction = Rightward | Leftward

let direction row = if row mod 2 = 0 then Rightward else Leftward

let clock_arrival_ps tech ~row_width ~phase ~x =
  let v = tech.Tech.clock_velocity in
  match direction phase with
  | Rightward -> x /. v
  | Leftward -> (row_width -. x) /. v

let timing_cost tech ~row_width ~phase ~x_start ~x_end ~alpha =
  ignore tech;
  let base =
    match ((phase mod 4) + 4) mod 4 with
    | 0 -> x_end -. x_start
    | 1 -> x_end +. x_start
    | 2 -> -.x_end +. x_start
    | 3 -> (2.0 *. row_width) -. x_end -. x_start
    | _ -> assert false
  in
  Float.max 0.0 base ** alpha

let phase_of_row row = ((row mod 4) + 4) mod 4
