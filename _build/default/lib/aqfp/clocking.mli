(** Four-phase AQFP clocking model (paper §II-B, Fig. 2).

    One DC and two AC bias lines, 90° apart, create four clock phases
    per cycle. Each logic gate occupies one phase; phase [p] cells live
    in row [p]. The clock is distributed as a serpentine (zigzag): it
    enters row 0 on the left, traverses it rightwards, drops to row 1
    and traverses leftwards, and so on. Consequently the clock arrival
    time at a cell depends on its x position and its row's traversal
    direction — this is the origin of the four cases of the paper's
    Eq. (2) timing cost. *)

type direction = Rightward | Leftward

val direction : int -> direction
(** Traversal direction of a phase row: even rows are [Rightward]. *)

val clock_arrival_ps : Tech.t -> row_width:float -> phase:int -> x:float -> float
(** Clock arrival time at horizontal position [x] of a row, relative
    to the start of that row's phase window: [x / v_clk] for rightward
    rows, [(row_width - x) / v_clk] for leftward rows. *)

val timing_cost : Tech.t -> row_width:float -> phase:int -> x_start:float ->
  x_end:float -> alpha:float -> float
(** The paper's Eq. (2): the four-phase timing cost of a connection
    leaving a cell at [x_start] in row [phase] and entering its sink at
    [x_end] in row [phase + 1], with exponent [alpha]. The base inside
    the power is clamped at 0 (a connection that "flows with" the clock
    has no timing pressure). The [phase mod 4] case split matches the
    relative clock directions of the two rows. *)

val phase_of_row : int -> int
(** [row mod 4] — the AC phase index (0..3) powering a row. *)
