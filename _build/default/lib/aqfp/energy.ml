type params = {
  joules_per_jj_switch : float;
  cmos_joules_per_gate : float;
  static_fraction : float;
}

let default_params =
  {
    joules_per_jj_switch = 1.4e-21;
    cmos_joules_per_gate = 1e-15;
    static_fraction = 0.1;
  }

type report = {
  jj_count : int;
  gate_count : int;
  energy_per_cycle_j : float;
  power_w : float;
  cmos_energy_per_cycle_j : float;
  efficiency_gain : float;
}

let of_netlist ?(params = default_params) tech nl =
  let jj_count = Cell.netlist_jj_count nl in
  let gate_count =
    Netlist.count_kind nl (function
      | Netlist.Output | Netlist.Input -> false
      | _ -> true)
  in
  let switching = float_of_int jj_count *. params.joules_per_jj_switch in
  let energy_per_cycle_j = switching *. (1.0 +. params.static_fraction) in
  let power_w = energy_per_cycle_j *. tech.Tech.clock_freq_ghz *. 1e9 in
  let cmos_energy_per_cycle_j =
    float_of_int gate_count *. params.cmos_joules_per_gate
  in
  let efficiency_gain =
    if energy_per_cycle_j > 0.0 then cmos_energy_per_cycle_j /. energy_per_cycle_j
    else 0.0
  in
  { jj_count; gate_count; energy_per_cycle_j; power_w; cmos_energy_per_cycle_j;
    efficiency_gain }

let pp ppf r =
  Format.fprintf ppf
    "%d JJ / %d gates: %.3g J/cycle (%.3g W at clock), CMOS-equivalent %.3g J/cycle, gain %.1fx"
    r.jj_count r.gate_count r.energy_per_cycle_j r.power_w
    r.cmos_energy_per_cycle_j r.efficiency_gain
