(** AQFP energy model.

    The paper's opening claim is that AQFP achieves a 10^4–10^5
    energy-efficiency gain over CMOS thanks to adiabatic switching
    (§I, citing Takeuchi et al.). This module quantifies that for a
    synthesized design: every AQFP cell is AC-clocked, so every JJ
    switches once per cycle (activity factor 1), dissipating a few
    zeptojoule at adiabatic ramp rates.

    Defaults follow the literature the paper cites: ~1.4 zJ per JJ per
    switching event at a 5 GHz excitation, against ~1 fJ for a
    minimum-size CMOS gate switching event in a comparable node. The
    knobs are explicit so cell-library updates can re-cost designs. *)

type params = {
  joules_per_jj_switch : float;  (** default 1.4e-21 J (adiabatic) *)
  cmos_joules_per_gate : float;  (** default 1e-15 J *)
  static_fraction : float;  (** extra AC-bias loss as a fraction of
      switching energy (default 0.1) *)
}

val default_params : params

type report = {
  jj_count : int;
  gate_count : int;  (** logic cells excluding output markers *)
  energy_per_cycle_j : float;
  power_w : float;  (** at the technology's clock frequency *)
  cmos_energy_per_cycle_j : float;  (** same logic as CMOS gates *)
  efficiency_gain : float;  (** CMOS energy / AQFP energy *)
}

val of_netlist : ?params:params -> Tech.t -> Netlist.t -> report
(** Energy of a synthesized AQFP netlist (uses the cell library's JJ
    counts; the netlist should be post-insertion so buffers and
    splitters are costed). *)

val pp : Format.formatter -> report -> unit
