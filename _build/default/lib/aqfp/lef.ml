type direction = Input | Output

type pin = { pin_name : string; dir : direction; px : float; py : float }

type macro = {
  macro_name : string;
  size_w : float;
  size_h : float;
  jj : int;
  pins : pin list;
}

let of_cell (c : Cell.t) =
  let ins =
    Array.to_list
      (Array.mapi
         (fun i px -> { pin_name = Printf.sprintf "in%d" i; dir = Input; px; py = 0.0 })
         c.Cell.in_pins)
  in
  let outs =
    Array.to_list
      (Array.mapi
         (fun i px ->
           { pin_name = Printf.sprintf "out%d" i; dir = Output; px; py = c.Cell.height })
         c.Cell.out_pins)
  in
  {
    macro_name = c.Cell.cell_name;
    size_w = c.Cell.width;
    size_h = c.Cell.height;
    jj = c.Cell.jj_count;
    pins = ins @ outs;
  }

let library_macros () = List.map (fun (_, c) -> of_cell c) Cell.library

let to_string macros =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "VERSION 5.8 ;\n";
  add "UNITS DATABASE MICRONS 1000 ; END UNITS\n\n";
  List.iter
    (fun m ->
      add "MACRO %s\n" m.macro_name;
      add "  CLASS CORE ;\n";
      add "  SIZE %.3f BY %.3f ;\n" m.size_w m.size_h;
      add "  PROPERTY jjCount %d ;\n" m.jj;
      List.iter
        (fun p ->
          add "  PIN %s\n" p.pin_name;
          add "    DIRECTION %s ;\n" (match p.dir with Input -> "INPUT" | Output -> "OUTPUT");
          add "    ORIGIN %.3f %.3f ;\n" p.px p.py;
          add "  END %s\n" p.pin_name)
        m.pins;
      add "END %s\n\n" m.macro_name)
    macros;
  add "END LIBRARY\n";
  Buffer.contents buf

let library_lef () = to_string (library_macros ())

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let of_string source =
  try
    let toks =
      ref
        (String.split_on_char '\n' source
        |> List.concat_map (fun line ->
               String.split_on_char ' ' line |> List.filter (fun t -> t <> "")))
    in
    let peek () = match !toks with [] -> "" | t :: _ -> t in
    let next () =
      match !toks with
      | [] -> fail "unexpected end of file"
      | t :: rest ->
          toks := rest;
          t
    in
    let expect t =
      let got = next () in
      if got <> t then fail "expected %S, got %S" t got
    in
    let float_tok () =
      let t = next () in
      match float_of_string_opt t with
      | Some v -> v
      | None -> fail "expected number, got %S" t
    in
    let int_tok () =
      let t = next () in
      match int_of_string_opt t with
      | Some v -> v
      | None -> fail "expected integer, got %S" t
    in
    expect "VERSION";
    let _ = next () in
    expect ";";
    expect "UNITS";
    expect "DATABASE";
    expect "MICRONS";
    let _ = int_tok () in
    expect ";";
    expect "END";
    expect "UNITS";
    let macros = ref [] in
    let rec macro_loop () =
      match peek () with
      | "MACRO" ->
          expect "MACRO";
          let macro_name = next () in
          let size_w = ref 0.0 and size_h = ref 0.0 and jj = ref 0 in
          let pins = ref [] in
          let rec body () =
            match next () with
            | "CLASS" ->
                let _ = next () in
                expect ";";
                body ()
            | "SIZE" ->
                size_w := float_tok ();
                expect "BY";
                size_h := float_tok ();
                expect ";";
                body ()
            | "PROPERTY" ->
                expect "jjCount";
                jj := int_tok ();
                expect ";";
                body ()
            | "PIN" ->
                let pin_name = next () in
                expect "DIRECTION";
                let dir =
                  match next () with
                  | "INPUT" -> Input
                  | "OUTPUT" -> Output
                  | d -> fail "bad direction %S" d
                in
                expect ";";
                expect "ORIGIN";
                let px = float_tok () in
                let py = float_tok () in
                expect ";";
                expect "END";
                expect pin_name;
                pins := { pin_name; dir; px; py } :: !pins;
                body ()
            | "END" ->
                expect macro_name
            | t -> fail "unexpected token %S in macro %s" t macro_name
          in
          body ();
          macros :=
            { macro_name; size_w = !size_w; size_h = !size_h; jj = !jj;
              pins = List.rev !pins }
            :: !macros;
          macro_loop ()
      | "END" ->
          expect "END";
          expect "LIBRARY"
      | t -> fail "expected MACRO or END LIBRARY, got %S" t
    in
    macro_loop ();
    Ok (List.rev !macros)
  with Bad msg -> Error msg

let check_against_cell m (c : Cell.t) =
  let problems = ref [] in
  let push fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if m.macro_name <> c.Cell.cell_name then
    push "name %s vs %s" m.macro_name c.Cell.cell_name;
  if Float.abs (m.size_w -. c.Cell.width) > 1e-6 then push "width mismatch";
  if Float.abs (m.size_h -. c.Cell.height) > 1e-6 then push "height mismatch";
  if m.jj <> c.Cell.jj_count then push "jj mismatch";
  let ins = List.filter (fun p -> p.dir = Input) m.pins in
  let outs = List.filter (fun p -> p.dir = Output) m.pins in
  if List.length ins <> Array.length c.Cell.in_pins then push "input pin count";
  if List.length outs <> Array.length c.Cell.out_pins then push "output pin count";
  List.iteri
    (fun i p ->
      if i < Array.length c.Cell.in_pins && Float.abs (p.px -. c.Cell.in_pins.(i)) > 1e-6
      then push "input pin %d offset" i)
    ins;
  List.iteri
    (fun i p ->
      if i < Array.length c.Cell.out_pins && Float.abs (p.px -. c.Cell.out_pins.(i)) > 1e-6
      then push "output pin %d offset" i)
    outs;
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " ps)
