(** LEF-style description of the AQFP standard-cell library.

    The paper stresses that the AQFP cell library "is under active
    development" and that a custom flow must "incorporate timely
    updates" to it. This module makes the library an artifact rather
    than code: it renders every cell as a LEF-like MACRO (SIZE +
    directed PINs at their offsets) and parses the same subset back,
    so an updated library can be dropped in as text and diffed.

    Pin geometry convention matches {!Cell}: the cell origin is its
    lower-left corner, input pins sit at y = 0 (the edge facing the
    previous clock phase) and output pins at y = height. *)

type direction = Input | Output

type pin = { pin_name : string; dir : direction; px : float; py : float }

type macro = {
  macro_name : string;
  size_w : float;
  size_h : float;
  jj : int;  (** carried as a PROPERTY — LEF extension *)
  pins : pin list;
}

val of_cell : Cell.t -> macro
(** Macro view of a library cell (pins named [in0..], [out0..]). *)

val library_macros : unit -> macro list
(** All distinct cells of {!Cell.library}. *)

val to_string : macro list -> string

val of_string : string -> (macro list, string) Stdlib.result

val library_lef : unit -> string
(** [to_string (library_macros ())]. *)

val check_against_cell : macro -> Cell.t -> (unit, string) Stdlib.result
(** Verify a parsed macro matches a library cell (size, pin count,
    positions) — the "timely update" sanity check. *)
