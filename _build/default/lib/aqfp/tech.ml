type t = {
  grid : float;
  s_min : float;
  w_max : float;
  row_gap : float;
  clock_freq_ghz : float;
  phases : int;
  signal_velocity : float;
  clock_velocity : float;
  gate_delay_ps : float;
  metal_layers : int;
}

let default =
  {
    grid = 10.0;
    s_min = 10.0;
    w_max = 300.0;
    row_gap = 30.0;
    clock_freq_ghz = 5.0;
    phases = 4;
    signal_velocity = 100.0;
    clock_velocity = 100.0;
    gate_delay_ps = 5.0;
    metal_layers = 2;
  }

let phase_window_ps t = 1000.0 /. (t.clock_freq_ghz *. float_of_int t.phases)

let snap t x = Float.round (x /. t.grid) *. t.grid

let snap_up t x = Float.of_int (int_of_float (ceil (x /. t.grid -. 1e-9))) *. t.grid

let on_grid t x = Float.abs (x -. snap t x) < 1e-6

let pp ppf t =
  Format.fprintf ppf
    "grid=%.0fum s_min=%.0fum w_max=%.0fum clock=%.1fGHz phases=%d window=%.1fps"
    t.grid t.s_min t.w_max t.clock_freq_ghz t.phases (phase_window_ps t)

let to_string t =
  String.concat "\n"
    [
      "# AQFP technology description";
      Printf.sprintf "grid = %.12g" t.grid;
      Printf.sprintf "s_min = %.12g" t.s_min;
      Printf.sprintf "w_max = %.12g" t.w_max;
      Printf.sprintf "row_gap = %.12g" t.row_gap;
      Printf.sprintf "clock_freq_ghz = %.12g" t.clock_freq_ghz;
      Printf.sprintf "phases = %d" t.phases;
      Printf.sprintf "signal_velocity = %.12g" t.signal_velocity;
      Printf.sprintf "clock_velocity = %.12g" t.clock_velocity;
      Printf.sprintf "gate_delay_ps = %.12g" t.gate_delay_ps;
      Printf.sprintf "metal_layers = %d" t.metal_layers;
      "";
    ]

let of_string source =
  let tech = ref default in
  let err = ref None in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun lineno line ->
      if !err = None then begin
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = String.trim line in
        if line <> "" then
          match String.index_opt line '=' with
          | None ->
              err := Some (Printf.sprintf "line %d: expected key = value" (lineno + 1))
          | Some eq -> (
              let key = String.trim (String.sub line 0 eq) in
              let value =
                String.trim (String.sub line (eq + 1) (String.length line - eq - 1))
              in
              let fl () =
                match float_of_string_opt value with
                | Some v when v > 0.0 -> v
                | _ ->
                    err :=
                      Some (Printf.sprintf "line %d: bad value for %s" (lineno + 1) key);
                    1.0
              in
              let it () =
                match int_of_string_opt value with
                | Some v when v > 0 -> v
                | _ ->
                    err :=
                      Some (Printf.sprintf "line %d: bad value for %s" (lineno + 1) key);
                    1
              in
              match key with
              | "grid" -> tech := { !tech with grid = fl () }
              | "s_min" -> tech := { !tech with s_min = fl () }
              | "w_max" -> tech := { !tech with w_max = fl () }
              | "row_gap" -> tech := { !tech with row_gap = fl () }
              | "clock_freq_ghz" -> tech := { !tech with clock_freq_ghz = fl () }
              | "phases" -> tech := { !tech with phases = it () }
              | "signal_velocity" -> tech := { !tech with signal_velocity = fl () }
              | "clock_velocity" -> tech := { !tech with clock_velocity = fl () }
              | "gate_delay_ps" -> tech := { !tech with gate_delay_ps = fl () }
              | "metal_layers" -> tech := { !tech with metal_layers = it () }
              | _ ->
                  err := Some (Printf.sprintf "line %d: unknown key %s" (lineno + 1) key))
      end)
    lines;
  match !err with Some e -> Error e | None -> Ok !tech

let of_file path =
  try
    let ic = open_in path in
    let len = in_channel_length ic in
    let content = really_input_string ic len in
    close_in ic;
    of_string content
  with Sys_error msg -> Error msg
