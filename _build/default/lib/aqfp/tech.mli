(** AQFP process technology parameters.

    The numbers follow what the paper states for the MIT-LL SQF5ee /
    AIST STP2 niobium processes and the updated AQFP standard cell
    library: a 10 µm manufacturing grid (cell dimensions, pin
    locations and wire turns are all multiples of 10 µm), 10 µm
    minimum spacing (cell-to-cell and wire zigzag), a maximum
    single-connection wirelength W_max, four-phase AC clocking at a
    5 GHz target, and two routing metal layers between adjacent clock
    phases. *)

type t = {
  grid : float;  (** manufacturing grid, µm (10) *)
  s_min : float;  (** minimum spacing: cells in a row, wire zigzags, µm *)
  w_max : float;  (** maximum wirelength of a single connection, µm *)
  row_gap : float;  (** initial vertical routing gap between phase rows, µm *)
  clock_freq_ghz : float;  (** target clock (paper: 5 GHz) *)
  phases : int;  (** clocking phases per cycle (4) *)
  signal_velocity : float;  (** data propagation speed on PTL wires, µm/ps *)
  clock_velocity : float;  (** clock distribution propagation speed, µm/ps *)
  gate_delay_ps : float;  (** intrinsic switching latency of one gate, ps *)
  metal_layers : int;  (** routing layers between adjacent phases (2) *)
}

val default : t
(** MIT-LL-style parameters used throughout the evaluation. *)

val phase_window_ps : t -> float
(** Time budget for one clock phase: [1000 / (freq_ghz * phases)] ps
    (50 ps at 5 GHz / 4 phases). *)

val snap : t -> float -> float
(** Round a coordinate to the manufacturing grid. *)

val snap_up : t -> float -> float
(** Round up to the next grid line. *)

val on_grid : t -> float -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Render as the [key = value] text accepted by {!of_string}. *)

val of_string : string -> (t, string) result
(** Parse a technology description: one [key = value] per line,
    [#] comments, unknown keys rejected, missing keys defaulted from
    {!default}. Keys: grid, s_min, w_max, row_gap, clock_freq_ghz,
    phases, signal_velocity, clock_velocity, gate_delay_ps,
    metal_layers. Round-trips with {!to_string}. *)

val of_file : string -> (t, string) result
