lib/circuits/circuits.ml: Array Fun Hashtbl List Netlist Option Printf Rng
