lib/circuits/circuits.mli: Netlist
