lib/circuits/datapath.ml: Array List Netlist Printf
