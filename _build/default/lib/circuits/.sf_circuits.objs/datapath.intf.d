lib/circuits/datapath.mli: Netlist
