let add2 nl k a b = Netlist.add nl k [| a; b |]

let kogge_stone_adder w =
  if w < 1 then invalid_arg "kogge_stone_adder: width must be >= 1";
  let nl = Netlist.create () in
  let a = Array.init w (fun i -> Netlist.add nl ~name:(Printf.sprintf "a%d" i) Netlist.Input [||]) in
  let b = Array.init w (fun i -> Netlist.add nl ~name:(Printf.sprintf "b%d" i) Netlist.Input [||]) in
  let cin = Netlist.add nl ~name:"cin" Netlist.Input [||] in
  let p = Array.init w (fun i -> add2 nl Netlist.Xor a.(i) b.(i)) in
  let g = Array.init w (fun i -> add2 nl Netlist.And a.(i) b.(i)) in
  (* Parallel-prefix (Kogge-Stone): after round d, position i holds the
     group generate/propagate of bits [i-2d+1 .. i]. *)
  let gg = Array.copy g and pp = Array.copy p in
  let d = ref 1 in
  while !d < w do
    let gg' = Array.copy gg and pp' = Array.copy pp in
    for i = !d to w - 1 do
      let t = add2 nl Netlist.And pp.(i) gg.(i - !d) in
      gg'.(i) <- add2 nl Netlist.Or gg.(i) t;
      pp'.(i) <- add2 nl Netlist.And pp.(i) pp.(i - !d)
    done;
    Array.blit gg' 0 gg 0 w;
    Array.blit pp' 0 pp 0 w;
    d := 2 * !d
  done;
  (* carry into bit i: c0 = cin; c_{i} = G_{i-1} | (P_{i-1} & cin) *)
  let carry = Array.make (w + 1) cin in
  for i = 1 to w do
    let t = add2 nl Netlist.And pp.(i - 1) cin in
    carry.(i) <- add2 nl Netlist.Or gg.(i - 1) t
  done;
  for i = 0 to w - 1 do
    let s = add2 nl Netlist.Xor p.(i) carry.(i) in
    ignore (Netlist.add nl ~name:(Printf.sprintf "s%d" i) Netlist.Output [| s |])
  done;
  ignore (Netlist.add nl ~name:"cout" Netlist.Output [| carry.(w) |]);
  nl

(* Carry-save reduction of weighted bit columns to one bit per weight.
   [columns.(w)] holds (bit, level) pairs of weight 2^w; compressing
   the three earliest-arriving bits first (Dadda-style scheduling)
   keeps the tree depth logarithmic. Carries that overflow the last
   column are dropped by the caller's sizing. *)
let reduce_columns ?(drop_carries_below = 0) nl columns =
  let n_cols = Array.length columns in
  let full_adder a b c =
    let ab = add2 nl Netlist.Xor a b in
    let s = add2 nl Netlist.Xor ab c in
    let t1 = add2 nl Netlist.And a b in
    let t2 = add2 nl Netlist.And ab c in
    let carry = add2 nl Netlist.Or t1 t2 in
    (s, carry)
  in
  let half_adder a b = (add2 nl Netlist.Xor a b, add2 nl Netlist.And a b) in
  let by_level col = List.sort (fun (_, l1) (_, l2) -> compare l1 l2) col in
  let rec compress w =
    if w >= n_cols then ()
    else
      match by_level columns.(w) with
      | (a, la) :: (b, lb) :: (c, lc) :: rest ->
          let s, carry = full_adder a b c in
          let lvl = 2 + max la (max lb lc) in
          columns.(w) <- (s, lvl) :: rest;
          if w + 1 < n_cols && w + 1 > drop_carries_below - 1 then
            columns.(w + 1) <- (carry, lvl) :: columns.(w + 1);
          compress w
      | [ (a, la); (b, lb) ] ->
          let s, carry = half_adder a b in
          let lvl = 1 + max la lb in
          columns.(w) <- [ (s, lvl) ];
          if w + 1 < n_cols && w + 1 > drop_carries_below - 1 then
            columns.(w + 1) <- (carry, lvl) :: columns.(w + 1);
          compress (w + 1)
      | _ -> compress (w + 1)
  in
  compress 0;
  Array.map
    (fun col -> match col with [ (bit, _) ] -> Some bit | [] -> None | _ -> assert false)
    columns

let parallel_counter ?(approx_below = 0) n =
  if n < 2 then invalid_arg "parallel_counter: need >= 2 inputs";
  let nl = Netlist.create () in
  let inputs =
    List.init n (fun i -> Netlist.add nl ~name:(Printf.sprintf "x%d" i) Netlist.Input [||])
  in
  let n_cols = 1 + int_of_float (ceil (log (float_of_int (n + 1)) /. log 2.0)) in
  let columns = Array.make n_cols [] in
  columns.(0) <- List.map (fun id -> (id, 0)) inputs;
  Array.iteri
    (fun w bit ->
      match bit with
      | Some b ->
          ignore (Netlist.add nl ~name:(Printf.sprintf "cnt%d" w) Netlist.Output [| b |])
      | None -> ())
    (reduce_columns ~drop_carries_below:approx_below nl columns);
  nl

let array_multiplier w =
  if w < 1 || w > 16 then invalid_arg "array_multiplier: width must be 1..16";
  let nl = Netlist.create () in
  let a = Array.init w (fun i -> Netlist.add nl ~name:(Printf.sprintf "a%d" i) Netlist.Input [||]) in
  let b = Array.init w (fun i -> Netlist.add nl ~name:(Printf.sprintf "b%d" i) Netlist.Input [||]) in
  (* partial products feed a carry-save reduction tree *)
  let columns = Array.make (2 * w) [] in
  for i = 0 to w - 1 do
    for j = 0 to w - 1 do
      let pp = add2 nl Netlist.And a.(i) b.(j) in
      columns.(i + j) <- (pp, 0) :: columns.(i + j)
    done
  done;
  Array.iteri
    (fun k bit ->
      match bit with
      | Some bit ->
          ignore (Netlist.add nl ~name:(Printf.sprintf "p%d" k) Netlist.Output [| bit |])
      | None ->
          (* weight never populated (can only be the top column of w=1) *)
          let zero = Netlist.add nl (Netlist.Const false) [||] in
          ignore (Netlist.add nl ~name:(Printf.sprintf "p%d" k) Netlist.Output [| zero |]))
    (reduce_columns nl columns);
  nl

(* y = (unsigned value of [bits]) >= t, for a constant t: walk from the
   MSB keeping an "equal so far" trail. *)
let gte_const nl bits t =
  let w = Array.length bits in
  if t <= 0 then Netlist.add nl (Netlist.Const true) [||]
  else if t >= 1 lsl w then Netlist.add nl (Netlist.Const false) [||]
  else begin
    (* ge = OR over positions i where t_i = 0 of (bit_i AND eq_above_i),
       plus eq over all bits *)
    let eq_trail = ref None in
    (* from MSB downward *)
    let ge = ref None in
    for i = w - 1 downto 0 do
      let t_i = (t lsr i) land 1 = 1 in
      let above = !eq_trail in
      if not t_i then begin
        (* count bit 1 here beats t when everything above matched *)
        let win =
          match above with
          | None -> bits.(i)
          | Some eq -> add2 nl Netlist.And eq bits.(i)
        in
        ge := Some (match !ge with None -> win | Some g -> add2 nl Netlist.Or g win)
      end;
      (* extend the equality trail: bit must equal t_i *)
      let here =
        if t_i then bits.(i) else Netlist.add nl Netlist.Not [| bits.(i) |]
      in
      eq_trail :=
        Some (match above with None -> here | Some eq -> add2 nl Netlist.And eq here)
    done;
    let eq_all = Option.get !eq_trail in
    match !ge with
    | None -> eq_all
    | Some g -> add2 nl Netlist.Or g eq_all
  end

let bnn_neuron n =
  if n < 2 then invalid_arg "bnn_neuron: need >= 2 synapses";
  let nl = Netlist.create () in
  let xs = Array.init n (fun i -> Netlist.add nl ~name:(Printf.sprintf "x%d" i) Netlist.Input [||]) in
  let ws = Array.init n (fun i -> Netlist.add nl ~name:(Printf.sprintf "w%d" i) Netlist.Input [||]) in
  (* binarized dot product: agreement bits, then popcount, then the
     sign threshold (more than half agree) *)
  let agree = Array.init n (fun i -> add2 nl Netlist.Xnor xs.(i) ws.(i)) in
  let n_cols = 1 + int_of_float (ceil (log (float_of_int (n + 1)) /. log 2.0)) in
  let columns = Array.make n_cols [] in
  columns.(0) <- Array.to_list (Array.map (fun id -> (id, 0)) agree);
  let count =
    reduce_columns nl columns |> Array.to_list |> List.filter_map Fun.id
    |> Array.of_list
  in
  let fire = gte_const nl count ((n / 2) + 1) in
  ignore (Netlist.add nl ~name:"fire" Netlist.Output [| fire |]);
  nl

let decoder n =
  if n < 1 || n > 10 then invalid_arg "decoder: select width must be 1..10";
  let nl = Netlist.create () in
  let sel =
    Array.init n (fun i -> Netlist.add nl ~name:(Printf.sprintf "s%d" i) Netlist.Input [||])
  in
  let nsel = Array.map (fun s -> Netlist.add nl Netlist.Not [| s |]) sel in
  let rec and_tree = function
    | [] -> invalid_arg "and_tree: empty"
    | [ x ] -> x
    | lits ->
        let rec take k = function
          | rest when k = 0 -> ([], rest)
          | [] -> ([], [])
          | x :: rest ->
              let l, r = take (k - 1) rest in
              (x :: l, r)
        in
        let half = List.length lits / 2 in
        let left, right = take half lits in
        add2 nl Netlist.And (and_tree left) (and_tree right)
  in
  for code = 0 to (1 lsl n) - 1 do
    let lits =
      List.init n (fun k -> if (code lsr k) land 1 = 1 then sel.(k) else nsel.(k))
    in
    let y = and_tree lits in
    ignore (Netlist.add nl ~name:(Printf.sprintf "y%d" code) Netlist.Output [| y |])
  done;
  nl

let sorter n =
  if n < 2 || n land (n - 1) <> 0 then
    invalid_arg "sorter: size must be a power of two >= 2";
  let nl = Netlist.create () in
  let wires =
    Array.init n (fun i -> Netlist.add nl ~name:(Printf.sprintf "x%d" i) Netlist.Input [||])
  in
  (* Batcher odd-even merge sort, iterative form. A compare-exchange on
     1-bit values sorting ones-first is (OR, AND). *)
  let compare_exchange i j =
    let hi = add2 nl Netlist.Or wires.(i) wires.(j) in
    let lo = add2 nl Netlist.And wires.(i) wires.(j) in
    wires.(i) <- hi;
    wires.(j) <- lo
  in
  let p = ref 1 in
  while !p < n do
    let k = ref !p in
    while !k >= 1 do
      let j = ref (!k mod !p) in
      while !j <= n - 1 - !k do
        let upper = min (!k - 1) (n - !j - !k - 1) in
        for i = 0 to upper do
          if (i + !j) / (2 * !p) = (i + !j + !k) / (2 * !p) then
            compare_exchange (i + !j) (i + !j + !k)
        done;
        j := !j + (2 * !k)
      done;
      k := !k / 2
    done;
    p := 2 * !p
  done;
  Array.iteri
    (fun i w ->
      ignore (Netlist.add nl ~name:(Printf.sprintf "o%d" i) Netlist.Output [| w |]))
    wires;
  nl

let iscas_like ~seed ~pi ~po ~gates ~depth =
  if pi < 2 || po < 1 || gates < po || depth < 1 then
    invalid_arg "iscas_like: bad profile";
  let rng = Rng.create seed in
  let nl = Netlist.create () in
  let inputs =
    Array.init pi (fun i -> Netlist.add nl ~name:(Printf.sprintf "G%d" i) Netlist.Input [||])
  in
  (* Distribute gates over layers, at least one per layer; random 2-in
     gates, fanins biased to the previous layer so realized depth
     tracks the requested profile. *)
  let per_layer = Array.make depth (gates / depth) in
  for i = 0 to (gates mod depth) - 1 do
    per_layer.(i) <- per_layer.(i) + 1
  done;
  (* weighted toward nand/nor-class gates like the real c-series; xor
     is rare because it is disproportionately expensive in MAJ logic *)
  let kinds =
    [| Netlist.And; Netlist.And; Netlist.Or; Netlist.Or; Netlist.Nand;
       Netlist.Nand; Netlist.Nand; Netlist.Nor; Netlist.Nor; Netlist.Xor |]
  in
  let prev_layer = ref (Array.to_list inputs) in
  let all_nodes = ref (Array.to_list inputs) in
  let last_layer = ref [] in
  for layer = 0 to depth - 1 do
    let prev = Array.of_list !prev_layer in
    let all = Array.of_list !all_nodes in
    let this_layer = ref [] in
    for _ = 1 to per_layer.(layer) do
      let pick_fanin () =
        if Rng.float rng 1.0 < 0.7 || layer = 0 then Rng.pick rng prev
        else Rng.pick rng all
      in
      let a = pick_fanin () in
      let b = pick_fanin () in
      let id =
        if a = b then Netlist.add nl Netlist.Not [| a |]
        else add2 nl (Rng.pick rng kinds) a b
      in
      this_layer := id :: !this_layer
    done;
    prev_layer := !this_layer;
    all_nodes := !this_layer @ !all_nodes;
    last_layer := !this_layer
  done;
  (* Primary outputs: prefer the final layers so depth is exercised. *)
  let candidates = Array.of_list !all_nodes in
  let chosen = Hashtbl.create po in
  let final = Array.of_list !last_layer in
  let n_final = min po (Array.length final) in
  for i = 0 to n_final - 1 do
    Hashtbl.replace chosen final.(i) ()
  done;
  while Hashtbl.length chosen < po do
    Hashtbl.replace chosen (Rng.pick rng candidates) ()
  done;
  let outs = Hashtbl.fold (fun id () acc -> id :: acc) chosen [] in
  List.iteri
    (fun i id ->
      ignore (Netlist.add nl ~name:(Printf.sprintf "PO%d" i) Netlist.Output [| id |]))
    (List.sort compare outs);
  nl

let benchmark = function
  | "adder8" -> kogge_stone_adder 8
  | "apc32" -> parallel_counter 32
  | "apc128" -> parallel_counter 128
  | "decoder" -> decoder 7
  | "sorter32" -> sorter 32
  (* depth profiles are set so the post-synthesis clock-phase count
     lands near the paper's Table II (majority/xor decomposition
     multiplies AOI depth by roughly 3) *)
  | "c432" -> iscas_like ~seed:432 ~pi:36 ~po:7 ~gates:160 ~depth:14
  | "c499" -> iscas_like ~seed:499 ~pi:41 ~po:32 ~gates:202 ~depth:9
  | "c1355" -> iscas_like ~seed:1355 ~pi:41 ~po:32 ~gates:546 ~depth:10
  | "c1908" -> iscas_like ~seed:1908 ~pi:33 ~po:25 ~gates:880 ~depth:11
  (* extras beyond the paper's table (handy workloads for the CLI) *)
  | "mult4" -> array_multiplier 4
  | "mult8" -> array_multiplier 8
  | "bnn16" -> bnn_neuron 16
  | "bnn64" -> bnn_neuron 64
  | _ -> raise Not_found

let benchmark_names =
  [ "adder8"; "apc32"; "apc128"; "decoder"; "sorter32"; "c432"; "c499"; "c1355"; "c1908" ]

module Reference = struct
  let multiply w a b =
    let mask = (1 lsl (2 * w)) - 1 in
    a * b land mask

  let add w a b cin =
    let mask = (1 lsl w) - 1 in
    let total = (a land mask) + (b land mask) + if cin then 1 else 0 in
    (total land mask, total lsr w = 1)

  let popcount n =
    let rec loop acc n = if n = 0 then acc else loop (acc + (n land 1)) (n lsr 1) in
    loop 0 n

  let bnn_fire xs ws =
    let agree = ref 0 in
    Array.iteri (fun i x -> if x = ws.(i) then incr agree) xs;
    2 * !agree > Array.length xs

  let sorted_outputs bits =
    let ones = List.length (List.filter Fun.id bits) in
    List.init (List.length bits) (fun i -> i < ones)
end
