(** Benchmark circuit generators (paper §IV "Benchmark Circuits").

    The paper evaluates on classic AQFP benchmarks — an 8-bit
    Kogge-Stone adder, 32/128-input approximate parallel counters, a
    decoder, a 32-input sorter — plus four ISCAS'85 circuits. The
    arithmetic benchmarks are generated structurally here; the ISCAS
    circuits, whose netlists are external data, are substituted by
    profile-matched synthetic DAGs (same PI/PO/gate-count/depth class;
    see DESIGN.md §1). All generators emit AOI netlists (2-input
    gates + inverters), i.e. what the Yosys stage of the paper would
    produce. *)

val kogge_stone_adder : int -> Netlist.t
(** [kogge_stone_adder w] — w-bit Kogge-Stone parallel-prefix adder
    with carry-in and carry-out: inputs [a0..a(w-1)], [b0..], [cin];
    outputs [s0..s(w-1)], [cout]. *)

val parallel_counter : ?approx_below:int -> int -> Netlist.t
(** [parallel_counter n] — population counter over [n] inputs, built
    as a tree of 3:2 compressors (full adders) followed by a ripple
    combination; outputs the count in binary (LSB first). This is the
    structure of the paper's "approximate parallel counter" apc32 /
    apc128 benchmarks.

    [approx_below] (default 0 = exact) makes the counter approximate
    in the benchmark's namesake sense: carries destined for columns
    below that weight are dropped, shrinking the compressor tree at
    the cost of under-counting. Every dropped carry removes at most
    [2^w] from the result, so the error is bounded by the number of
    compressions in the truncated columns — checked by the tests. *)

val array_multiplier : int -> Netlist.t
(** [array_multiplier w] — w-by-w unsigned array multiplier: the
    partial-product matrix reduced by the same Dadda-scheduled
    carry-save tree as the counters; outputs the 2w product bits (LSB
    first). Not a paper benchmark — included as a larger arithmetic
    workload for the examples and stress tests. *)

val bnn_neuron : int -> Netlist.t
(** [bnn_neuron n] — one binarized-neural-network neuron with [n]
    synapses (the workload class of the SuperBNN AQFP accelerator the
    paper cites as its application outlook): inputs [x0..x(n-1)] then
    weights [w0..], output [fire] = 1 iff more than half of the
    xnor(x, w) agreement bits are set (sign of the ±1 dot product).
    Built from the same compressor-tree machinery as the counters,
    plus a constant-threshold comparator. *)

val decoder : int -> Netlist.t
(** [decoder n] — n-to-2^n line decoder (balanced AND trees over the
    select literals). The paper's "decoder" benchmark is matched by
    [decoder 7]. *)

val sorter : int -> Netlist.t
(** [sorter n] — Batcher odd-even merge sorting network over [n]
    1-bit inputs ([n] a power of two); compare-exchange = (OR, AND).
    Output 0 is the largest bit. *)

val iscas_like :
  seed:int -> pi:int -> po:int -> gates:int -> depth:int -> Netlist.t
(** Synthetic DAG with the given profile: [gates] random 2-input
    AOI gates arranged in [depth] layers, every layer-to-layer edge
    chosen pseudo-randomly (deterministic in [seed]), all primary
    outputs driven. Used to stand in for the ISCAS'85 c-series. *)

val benchmark : string -> Netlist.t
(** Benchmarks by paper name: ["adder8"], ["apc32"], ["apc128"],
    ["decoder"], ["sorter32"], ["c432"], ["c499"], ["c1355"],
    ["c1908"]; plus the non-paper extras ["mult4"] and ["mult8"].
    Raises [Not_found] for unknown names. *)

val benchmark_names : string list
(** The nine names above, in the paper's Table II order. *)

(** Reference (specification-level) models used by the test suite. *)
module Reference : sig
  val add : int -> int -> int -> bool -> int * bool
  (** [add w a b cin] — expected sum/carry of the adder. *)

  val popcount : int -> int

  val multiply : int -> int -> int -> int
  (** [multiply w a b] — expected product of the w-bit multiplier. *)

  val bnn_fire : bool array -> bool array -> bool
  (** Expected neuron output: strictly more than half agreements. *)

  val sorted_outputs : bool list -> bool list
  (** Expected sorter output: all ones first. *)
end
