let add2 nl k a b = Netlist.add nl k [| a; b |]

let full_adder nl a b cin =
  let axb = add2 nl Netlist.Xor a b in
  let s = add2 nl Netlist.Xor axb cin in
  let t1 = add2 nl Netlist.And a b in
  let t2 = add2 nl Netlist.And axb cin in
  let cout = add2 nl Netlist.Or t1 t2 in
  (s, cout)

let named_inputs nl prefix w =
  Array.init w (fun i ->
      Netlist.add nl ~name:(Printf.sprintf "%s%d" prefix i) Netlist.Input [||])

let outputs nl prefix bits =
  Array.iteri
    (fun i b ->
      ignore (Netlist.add nl ~name:(Printf.sprintf "%s%d" prefix i) Netlist.Output [| b |]))
    bits

let ripple_adder w =
  if w < 1 then invalid_arg "ripple_adder: width must be >= 1";
  let nl = Netlist.create () in
  let a = named_inputs nl "a" w in
  let b = named_inputs nl "b" w in
  let cin = Netlist.add nl ~name:"cin" Netlist.Input [||] in
  let carry = ref cin in
  let sums =
    Array.init w (fun i ->
        let s, c = full_adder nl a.(i) b.(i) !carry in
        carry := c;
        s)
  in
  outputs nl "s" sums;
  ignore (Netlist.add nl ~name:"cout" Netlist.Output [| !carry |]);
  nl

(* 2:1 mux as AOI gates: y = (sel & t) | (~sel & f) *)
let mux2 nl sel t f =
  let nt = add2 nl Netlist.And sel t in
  let nsel = Netlist.add nl Netlist.Not [| sel |] in
  let nf = add2 nl Netlist.And nsel f in
  add2 nl Netlist.Or nt nf

let carry_select_adder ?(block = 4) w =
  if w < 1 then invalid_arg "carry_select_adder: width must be >= 1";
  if block < 1 then invalid_arg "carry_select_adder: block must be >= 1";
  let nl = Netlist.create () in
  let a = named_inputs nl "a" w in
  let b = named_inputs nl "b" w in
  let cin = Netlist.add nl ~name:"cin" Netlist.Input [||] in
  let sums = Array.make w cin in
  let carry = ref cin in
  let pos = ref 0 in
  while !pos < w do
    let len = min block (w - !pos) in
    (* compute this block under both carry assumptions *)
    let run assumed =
      let c = ref assumed in
      let ss =
        Array.init len (fun k ->
            let s, c' = full_adder nl a.(!pos + k) b.(!pos + k) !c in
            c := c';
            s)
      in
      (ss, !c)
    in
    let zero = Netlist.add nl (Netlist.Const false) [||] in
    let one = Netlist.add nl (Netlist.Const true) [||] in
    let s0, c0 = run zero in
    let s1, c1 = run one in
    (* select on the real incoming carry *)
    for k = 0 to len - 1 do
      sums.(!pos + k) <- mux2 nl !carry s1.(k) s0.(k)
    done;
    carry := mux2 nl !carry c1 c0;
    pos := !pos + len
  done;
  outputs nl "s" sums;
  ignore (Netlist.add nl ~name:"cout" Netlist.Output [| !carry |]);
  nl

let subtractor w =
  if w < 1 then invalid_arg "subtractor: width must be >= 1";
  let nl = Netlist.create () in
  let a = named_inputs nl "a" w in
  let b = named_inputs nl "b" w in
  (* a - b = a + ~b + 1 *)
  let one = Netlist.add nl (Netlist.Const true) [||] in
  let carry = ref one in
  let diffs =
    Array.init w (fun i ->
        let nb = Netlist.add nl Netlist.Not [| b.(i) |] in
        let s, c = full_adder nl a.(i) nb !carry in
        carry := c;
        s)
  in
  outputs nl "d" diffs;
  ignore (Netlist.add nl ~name:"bout" Netlist.Output [| !carry |]);
  nl

let comparator w =
  if w < 1 then invalid_arg "comparator: width must be >= 1";
  let nl = Netlist.create () in
  let a = named_inputs nl "a" w in
  let b = named_inputs nl "b" w in
  (* walk from the MSB: gt/lt latch at the first difference *)
  let gt = ref (Netlist.add nl (Netlist.Const false) [||]) in
  let lt = ref (Netlist.add nl (Netlist.Const false) [||]) in
  let eq = ref (Netlist.add nl (Netlist.Const true) [||]) in
  for i = w - 1 downto 0 do
    let nb = Netlist.add nl Netlist.Not [| b.(i) |] in
    let na = Netlist.add nl Netlist.Not [| a.(i) |] in
    let a_gt_b = add2 nl Netlist.And a.(i) nb in
    let a_lt_b = add2 nl Netlist.And na b.(i) in
    let bit_eq = add2 nl Netlist.Xnor a.(i) b.(i) in
    gt := add2 nl Netlist.Or !gt (add2 nl Netlist.And !eq a_gt_b);
    lt := add2 nl Netlist.Or !lt (add2 nl Netlist.And !eq a_lt_b);
    eq := add2 nl Netlist.And !eq bit_eq
  done;
  ignore (Netlist.add nl ~name:"lt" Netlist.Output [| !lt |]);
  ignore (Netlist.add nl ~name:"eq" Netlist.Output [| !eq |]);
  ignore (Netlist.add nl ~name:"gt" Netlist.Output [| !gt |]);
  nl

let log2 n =
  let rec go k acc = if acc >= n then k else go (k + 1) (acc * 2) in
  go 0 1

let barrel_shifter w =
  if w < 2 || w land (w - 1) <> 0 then
    invalid_arg "barrel_shifter: width must be a power of two >= 2";
  let nl = Netlist.create () in
  let x = named_inputs nl "x" w in
  let sel = named_inputs nl "s" (log2 w) in
  let zero = Netlist.add nl (Netlist.Const false) [||] in
  let stage = ref x in
  Array.iteri
    (fun k s ->
      let shift = 1 lsl k in
      let cur = !stage in
      stage :=
        Array.init w (fun i ->
            let shifted = if i >= shift then cur.(i - shift) else zero in
            mux2 nl s shifted cur.(i)))
    sel;
  outputs nl "y" !stage;
  nl

let priority_encoder n =
  if n < 2 || n land (n - 1) <> 0 then
    invalid_arg "priority_encoder: size must be a power of two >= 2";
  let nl = Netlist.create () in
  let d = named_inputs nl "d" n in
  let bits = log2 n in
  (* highest set wins: for output bit k, OR over inputs i whose index
     has bit k set AND no higher input is set *)
  let no_higher = Array.make n (Netlist.add nl (Netlist.Const true) [||]) in
  for i = n - 2 downto 0 do
    let ni = Netlist.add nl Netlist.Not [| d.(i + 1) |] in
    no_higher.(i) <- add2 nl Netlist.And no_higher.(i + 1) ni
  done;
  let winner = Array.init n (fun i -> add2 nl Netlist.And d.(i) no_higher.(i)) in
  let out_bits =
    Array.init bits (fun k ->
        let contributors =
          List.filteri (fun i _ -> (i lsr k) land 1 = 1) (Array.to_list winner)
        in
        match contributors with
        | [] -> Netlist.add nl (Netlist.Const false) [||]
        | first :: rest -> List.fold_left (fun acc c -> add2 nl Netlist.Or acc c) first rest)
  in
  outputs nl "y" out_bits;
  let valid =
    Array.fold_left (fun acc di -> add2 nl Netlist.Or acc di) d.(0)
      (Array.sub d 1 (n - 1))
  in
  ignore (Netlist.add nl ~name:"valid" Netlist.Output [| valid |]);
  nl

let mux_tree n =
  if n < 2 || n land (n - 1) <> 0 then
    invalid_arg "mux_tree: size must be a power of two >= 2";
  let nl = Netlist.create () in
  let d = named_inputs nl "d" n in
  let sel = named_inputs nl "s" (log2 n) in
  let stage = ref (Array.to_list d) in
  Array.iter
    (fun s ->
      let rec pairs = function
        | f :: t :: rest -> mux2 nl s t f :: pairs rest
        | [] -> []
        | [ _ ] -> invalid_arg "mux_tree: internal"
      in
      stage := pairs !stage)
    sel;
  (match !stage with
  | [ y ] -> ignore (Netlist.add nl ~name:"y" Netlist.Output [| y |])
  | _ -> assert false);
  nl

let parity n =
  if n < 1 then invalid_arg "parity: need >= 1 input";
  let nl = Netlist.create () in
  let d = named_inputs nl "d" n in
  let p =
    Array.fold_left (fun acc x -> add2 nl Netlist.Xor acc x) d.(0)
      (Array.sub d 1 (n - 1))
  in
  ignore (Netlist.add nl ~name:"p" Netlist.Output [| p |]);
  nl

module Ref = struct
  let subtract w a b =
    let mask = (1 lsl w) - 1 in
    let d = (a - b) land mask in
    (d, a >= b)

  let compare_u _w a b = compare a b

  let shift_left w x s = (x lsl s) land ((1 lsl w) - 1)

  let priority n v =
    let rec go i = if i < 0 then None else if (v lsr i) land 1 = 1 then Some i else go (i - 1) in
    go (n - 1)

  let mux _n v s = (v lsr s) land 1 = 1

  let parity v =
    let rec go acc v = if v = 0 then acc else go (acc <> (v land 1 = 1)) (v lsr 1) in
    go false v
end
