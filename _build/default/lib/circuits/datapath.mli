(** Parameterized combinational datapath generators beyond the paper's
    benchmark set — the building blocks a user of the flow reaches for
    when assembling real designs (the paper's outlook: RISC-V CPUs and
    accelerators). All emit AOI netlists ready for {!Synth_flow.run};
    each has a specification-level reference in {!Reference} and an
    exhaustive or randomized test.

    Bit order is LSB-first everywhere, matching {!Circuits}. *)

val ripple_adder : int -> Netlist.t
(** [ripple_adder w] — the compact (deep) counterpart of
    {!Circuits.kogge_stone_adder}: inputs [a0..], [b0..], [cin];
    outputs [s0..], [cout]. Useful as the area-end of the adder
    area/delay tradeoff. *)

val carry_select_adder : ?block:int -> int -> Netlist.t
(** [carry_select_adder w] — ripple blocks of [block] (default 4) bits
    computed for both carry-ins, selected by the incoming carry: the
    classic middle point of the tradeoff. Same ports as the other
    adders. *)

val subtractor : int -> Netlist.t
(** [subtractor w] — two's-complement [a - b]: outputs [d0..d(w-1)]
    and [bout] (1 = no borrow, i.e. a >= b). *)

val comparator : int -> Netlist.t
(** [comparator w] — unsigned compare of [a] and [b]: outputs [lt],
    [eq], [gt] (exactly one is high). *)

val barrel_shifter : int -> Netlist.t
(** [barrel_shifter w] — logical left shift of a [w]-bit word ([w] a
    power of two) by a [log2 w]-bit amount: inputs [x0..], [s0..];
    outputs [y0..]. Built as log stages of 2:1 muxes. *)

val priority_encoder : int -> Netlist.t
(** [priority_encoder n] — index of the highest set input among [n]
    ([n] a power of two): outputs [y0..y(log2 n - 1)] plus [valid]. *)

val mux_tree : int -> Netlist.t
(** [mux_tree n] — [n]-to-1 one-bit multiplexer ([n] a power of two):
    inputs [d0..d(n-1)] then selects [s0..]; output [y]. *)

val parity : int -> Netlist.t
(** [parity n] — xor-reduce of [n] inputs; output [p]. *)

(** References for the test suite. *)
module Ref : sig
  val subtract : int -> int -> int -> int * bool
  val compare_u : int -> int -> int -> int (* -1 / 0 / 1 *)
  val shift_left : int -> int -> int -> int
  val priority : int -> int -> int option
  val mux : int -> int -> int -> bool
  val parity : int -> bool
end
