lib/core/chip_report.ml: Array Buffer Cell Energy Float Flow Format Geom Hashtbl Layout List Option Printf Problem Sta String Table
