lib/core/chip_report.mli: Energy Flow Sta
