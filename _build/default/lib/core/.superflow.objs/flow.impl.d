lib/core/flow.ml: Array Bench_parser Bufferline Congestion Def Detailed Drc Energy Format Layout List Netlist Placer Problem Router Sta Synth_flow Sys Tech Verilog
