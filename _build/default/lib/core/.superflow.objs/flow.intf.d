lib/core/flow.mli: Drc Energy Format Layout Netlist Placer Problem Router Sta Stdlib Synth_flow Tech
