lib/core/report.ml: Array Buffer Circuits Detailed Float Flow Format Global Hashtbl Legalize List Option Placer Printf Problem Router Sta Stats String Synth_flow Table Tech
