lib/core/report.mli: Placer
