type cell_class_row = {
  class_name : string;
  count : int;
  jj : int;
  area_um2 : float;
}

type t = {
  design_cells : int;
  design_nets : int;
  phases : int;
  die_area_mm2 : float;
  utilization : float;
  by_class : cell_class_row list;
  wirelength_m1 : float;
  wirelength_m2 : float;
  vias : int;
  sta : Sta.report;
  energy : Energy.report;
}

let of_flow (r : Flow.result) =
  let p = r.Flow.problem in
  let layout = r.Flow.layout in
  let classes : (string, cell_class_row) Hashtbl.t = Hashtbl.create 16 in
  let cell_area = ref 0.0 in
  Array.iter
    (fun c ->
      let lib = c.Problem.lib in
      let name = lib.Cell.cell_name in
      let area = lib.Cell.width *. lib.Cell.height in
      cell_area := !cell_area +. area;
      let cur =
        Option.value
          ~default:{ class_name = name; count = 0; jj = 0; area_um2 = 0.0 }
          (Hashtbl.find_opt classes name)
      in
      Hashtbl.replace classes name
        {
          cur with
          count = cur.count + 1;
          jj = cur.jj + lib.Cell.jj_count;
          area_um2 = cur.area_um2 +. area;
        })
    p.Problem.cells;
  let by_class =
    Hashtbl.fold (fun _ row acc -> row :: acc) classes []
    |> List.sort (fun a b -> compare b.area_um2 a.area_um2)
  in
  let m1, m2 =
    Array.fold_left
      (fun (m1, m2) (w : Layout.wire) ->
        let len = Geom.dist_manhattan w.Layout.a w.Layout.b in
        if w.Layout.layer = 10 then (m1 +. len, m2) else (m1, m2 +. len))
      (0.0, 0.0) layout.Layout.wires
  in
  let die_area_mm2 = Geom.area layout.Layout.die /. 1e6 in
  {
    design_cells = Array.length p.Problem.cells;
    design_nets = Array.length p.Problem.nets;
    phases = p.Problem.n_rows;
    die_area_mm2;
    utilization = !cell_area /. Float.max 1.0 (Geom.area layout.Layout.die);
    by_class;
    wirelength_m1 = m1;
    wirelength_m2 = m2;
    vias = Array.length layout.Layout.vias;
    sta = r.Flow.sta;
    energy = r.Flow.energy;
  }

let render t =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "=== SuperFlow design report ===\n\n";
  add "cells: %d   nets: %d   clock phases: %d\n" t.design_cells t.design_nets t.phases;
  add "die: %.2f mm2   utilization: %.0f%%\n\n" t.die_area_mm2 (100.0 *. t.utilization);
  let tbl = Table.create ~headers:[ "cell"; "count"; "JJs"; "area (um2)"; "area %" ] in
  Table.set_align tbl [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ];
  let total_area =
    List.fold_left (fun acc r -> acc +. r.area_um2) 0.0 t.by_class
  in
  List.iter
    (fun r ->
      Table.add_row tbl
        [
          r.class_name;
          Table.fmt_int r.count;
          Table.fmt_int r.jj;
          Table.fmt_float ~dec:0 r.area_um2;
          Table.fmt_float (100.0 *. r.area_um2 /. Float.max 1.0 total_area);
        ])
    t.by_class;
  Buffer.add_string buf (Table.render tbl);
  add "\nwiring: metal1 %.0f um, metal2 %.0f um, %d vias\n"
    t.wirelength_m1 t.wirelength_m2 t.vias;
  add "timing: %s\n" (Format.asprintf "%a" Sta.pp_report t.sta);
  add "energy: %s\n" (Format.asprintf "%a" Energy.pp t.energy);
  Buffer.contents buf

let print t = print_string (render t)

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_html ?svg ?(title = "SuperFlow design report") t =
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>%s</title>\n"
    (html_escape title);
  add
    "<style>body{font-family:system-ui,sans-serif;margin:2rem;max-width:70rem}\n\
     table{border-collapse:collapse;margin:1rem 0}\n\
     td,th{border:1px solid #ccc;padding:0.3rem 0.7rem;text-align:right}\n\
     th{background:#f0f0f0}td:first-child,th:first-child{text-align:left}\n\
     .kpi{display:inline-block;margin:0 2rem 1rem 0}.kpi b{font-size:1.5rem}\n\
     svg{border:1px solid #ddd;max-width:100%%;height:auto}</style></head><body>\n";
  add "<h1>%s</h1>\n" (html_escape title);
  add "<div>";
  let kpi label value = add "<span class=\"kpi\">%s<br><b>%s</b></span>" label value in
  kpi "cells" (string_of_int t.design_cells);
  kpi "nets" (string_of_int t.design_nets);
  kpi "clock phases" (string_of_int t.phases);
  kpi "die" (Printf.sprintf "%.2f mm&sup2;" t.die_area_mm2);
  kpi "utilization" (Printf.sprintf "%.0f%%" (100.0 *. t.utilization));
  kpi "WNS"
    (if Sta.meets_timing t.sta then Printf.sprintf "+%.1f ps" t.sta.Sta.wns_ps
     else Printf.sprintf "%.1f ps" t.sta.Sta.wns_ps);
  kpi "energy/cycle" (Printf.sprintf "%.2e J" t.energy.Energy.energy_per_cycle_j);
  add "</div>\n";
  add "<h2>Area by cell class</h2>\n<table><tr><th>cell</th><th>count</th><th>JJs</th><th>area (&micro;m&sup2;)</th></tr>\n";
  List.iter
    (fun r ->
      add "<tr><td>%s</td><td>%d</td><td>%d</td><td>%.0f</td></tr>\n"
        (html_escape r.class_name) r.count r.jj r.area_um2)
    t.by_class;
  add "</table>\n";
  add "<h2>Wiring</h2><p>metal1 %.0f &micro;m &middot; metal2 %.0f &micro;m &middot; %d vias</p>\n"
    t.wirelength_m1 t.wirelength_m2 t.vias;
  add "<h2>Timing</h2><p>%s</p>\n"
    (html_escape (Format.asprintf "%a" Sta.pp_report t.sta));
  add "<h2>Energy</h2><p>%s</p>\n"
    (html_escape (Format.asprintf "%a" Energy.pp t.energy));
  (match svg with
  | Some svg_text ->
      add "<h2>Layout</h2>\n%s\n" svg_text
  | None -> ());
  add "</body></html>\n";
  Buffer.contents buf
