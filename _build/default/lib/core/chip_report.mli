(** Full-design signoff report: the consolidated view a designer reads
    after [Flow.run] — area breakdown by cell kind, wirelength by
    metal layer, clock-phase utilization, timing summary with slack
    histogram, and the energy estimate. Rendered as ASCII tables by
    the CLI's [report] subcommand. *)

type cell_class_row = {
  class_name : string;
  count : int;
  jj : int;
  area_um2 : float;
}

type t = {
  design_cells : int;
  design_nets : int;
  phases : int;
  die_area_mm2 : float;
  utilization : float;  (** cell area / die area *)
  by_class : cell_class_row list;  (** descending by area *)
  wirelength_m1 : float;
  wirelength_m2 : float;
  vias : int;
  sta : Sta.report;
  energy : Energy.report;
}

val of_flow : Flow.result -> t

val render : t -> string

val print : t -> unit

val to_html : ?svg:string -> ?title:string -> t -> string
(** Self-contained HTML signoff page: the same numbers as {!render}
    as styled tables, with the layout SVG (from {!Svg.render})
    embedded inline when provided. CLI: [superflow report --html]. *)
