lib/layout/def.ml: Array Buffer Cell Float Geom Hashtbl List Printf Problem Router String
