lib/layout/def.mli: Geom Problem Router Stdlib
