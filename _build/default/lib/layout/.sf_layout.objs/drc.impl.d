lib/layout/drc.ml: Array Cell Float Format Geom Hashtbl Layout List Option Printf Problem Tech
