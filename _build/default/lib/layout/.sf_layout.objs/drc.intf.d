lib/layout/drc.mli: Format Geom Layout Problem
