lib/layout/gds.ml: Buffer Bytes Char Float Int64 List Printf String
