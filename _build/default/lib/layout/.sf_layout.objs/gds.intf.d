lib/layout/gds.mli:
