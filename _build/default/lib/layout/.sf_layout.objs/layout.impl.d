lib/layout/layout.ml: Array Cell Format Gds Geom Hashtbl List Problem Router Tech
