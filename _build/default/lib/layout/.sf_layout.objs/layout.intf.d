lib/layout/layout.mli: Cell Format Gds Geom Problem Router Tech
