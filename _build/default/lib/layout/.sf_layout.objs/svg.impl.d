lib/layout/svg.ml: Array Buffer Cell Geom Layout Printf Problem
