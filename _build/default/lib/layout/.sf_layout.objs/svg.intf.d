lib/layout/svg.mli: Layout Problem
