type component = {
  comp_name : string;
  comp_cell : string;
  comp_x : float;
  comp_y : float;
}

type routed_segment = { seg_layer : string; seg_points : (float * float) list }

type def_net = {
  net_name : string;
  net_pins : (string * string) list;
  net_route : routed_segment list;
}

type t = {
  design : string;
  die : Geom.rect;
  components : component list;
  nets : def_net list;
}

let dbu = 1000.0

let of_design ?(design = "top") p (routed : Router.result) =
  let comp_name ci = Printf.sprintf "c%d" p.Problem.cells.(ci).Problem.node in
  let components =
    Array.to_list
      (Array.mapi
         (fun ci c ->
           {
             comp_name = comp_name ci;
             comp_cell = c.Problem.lib.Cell.cell_name;
             comp_x = c.Problem.x;
             comp_y = Problem.row_top p c.Problem.row;
           })
         p.Problem.cells)
  in
  let nets =
    Array.to_list
      (Array.mapi
         (fun ni e ->
           let route = routed.Router.routes.(ni) in
           (* split polyline into per-direction segments like DEF's
              NEW-layer continuations *)
           let rec segs = function
             | (x1, y1) :: ((x2, y2) :: _ as rest) ->
                 let layer = if y1 = y2 then "metal1" else "metal2" in
                 { seg_layer = layer; seg_points = [ (x1, y1); (x2, y2) ] } :: segs rest
             | _ -> []
           in
           {
             net_name = Printf.sprintf "n%d" ni;
             net_pins =
               [
                 (comp_name e.Problem.src, Printf.sprintf "out%d" e.Problem.src_pin);
                 (comp_name e.Problem.dst, Printf.sprintf "in%d" e.Problem.dst_pin);
               ];
             net_route = segs route.Router.points;
           })
         p.Problem.nets)
  in
  let die =
    Geom.rect 0.0 0.0
      (Float.max 1.0 (Problem.row_width p))
      (Float.max 1.0 (Problem.row_top p (p.Problem.n_rows - 1) +. p.Problem.row_height))
  in
  { design; die; components; nets }

let coord x = string_of_int (int_of_float (Float.round (x *. dbu)))

let to_string t =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "VERSION 5.8 ;\n";
  add "DESIGN %s ;\n" t.design;
  add "UNITS DISTANCE MICRONS %d ;\n" (int_of_float dbu);
  add "DIEAREA ( %s %s ) ( %s %s ) ;\n" (coord t.die.Geom.lx) (coord t.die.Geom.ly)
    (coord t.die.Geom.hx) (coord t.die.Geom.hy);
  add "COMPONENTS %d ;\n" (List.length t.components);
  List.iter
    (fun c ->
      add "- %s %s + PLACED ( %s %s ) N ;\n" c.comp_name c.comp_cell (coord c.comp_x)
        (coord c.comp_y))
    t.components;
  add "END COMPONENTS\n";
  add "NETS %d ;\n" (List.length t.nets);
  List.iter
    (fun n ->
      add "- %s" n.net_name;
      List.iter (fun (c, pin) -> add " ( %s %s )" c pin) n.net_pins;
      add "\n";
      List.iteri
        (fun i s ->
          add "  %s %s" (if i = 0 then "+ ROUTED" else "  NEW") s.seg_layer;
          List.iter (fun (x, y) -> add " ( %s %s )" (coord x) (coord y)) s.seg_points;
          add "\n")
        n.net_route;
      add " ;\n")
    t.nets;
  add "END NETS\n";
  add "END DESIGN\n";
  Buffer.contents buf

(* ---- parser ---- *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let tokens_of_string s =
  String.split_on_char '\n' s
  |> List.concat_map (fun line ->
         String.split_on_char ' ' line |> List.filter (fun t -> t <> ""))

let of_string source =
  try
    let toks = ref (tokens_of_string source) in
    let peek () = match !toks with [] -> "" | t :: _ -> t in
    let next () =
      match !toks with
      | [] -> fail "unexpected end of file"
      | t :: rest ->
          toks := rest;
          t
    in
    let expect t =
      let got = next () in
      if got <> t then fail "expected %S, got %S" t got
    in
    let num () =
      let t = next () in
      match int_of_string_opt t with
      | Some v -> v
      | None -> fail "expected number, got %S" t
    in
    let micron_scale = ref dbu in
    let um () = float_of_int (num ()) /. !micron_scale in
    let paren_pair () =
      expect "(";
      let x = um () in
      let y = um () in
      expect ")";
      (x, y)
    in
    expect "VERSION";
    let _version = next () in
    expect ";";
    expect "DESIGN";
    let design = next () in
    expect ";";
    expect "UNITS";
    expect "DISTANCE";
    expect "MICRONS";
    micron_scale := float_of_int (num ());
    expect ";";
    expect "DIEAREA";
    let lx, ly = paren_pair () in
    let hx, hy = paren_pair () in
    expect ";";
    expect "COMPONENTS";
    let n_comps = num () in
    expect ";";
    let components = ref [] in
    for _ = 1 to n_comps do
      expect "-";
      let comp_name = next () in
      let comp_cell = next () in
      expect "+";
      expect "PLACED";
      let comp_x, comp_y = paren_pair () in
      expect "N";
      expect ";";
      components := { comp_name; comp_cell; comp_x; comp_y } :: !components
    done;
    expect "END";
    expect "COMPONENTS";
    expect "NETS";
    let n_nets = num () in
    expect ";";
    let nets = ref [] in
    for _ = 1 to n_nets do
      expect "-";
      let net_name = next () in
      let pins = ref [] in
      while peek () = "(" do
        expect "(";
        let c = next () in
        let pin = next () in
        expect ")";
        pins := (c, pin) :: !pins
      done;
      let route = ref [] in
      let read_segment () =
        let seg_layer = next () in
        let points = ref [] in
        while peek () = "(" do
          points := paren_pair () :: !points
        done;
        route := { seg_layer; seg_points = List.rev !points } :: !route
      in
      if peek () = "+" then begin
        expect "+";
        expect "ROUTED";
        read_segment ();
        while peek () = "NEW" do
          expect "NEW";
          read_segment ()
        done
      end;
      expect ";";
      nets :=
        { net_name; net_pins = List.rev !pins; net_route = List.rev !route }
        :: !nets
    done;
    expect "END";
    expect "NETS";
    expect "END";
    expect "DESIGN";
    Ok
      {
        design;
        die = Geom.rect lx ly hx hy;
        components = List.rev !components;
        nets = List.rev !nets;
      }
  with
  | Bad msg -> Error msg
  | Invalid_argument msg -> Error msg

let write_file path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let read_file path =
  try
    let ic = open_in path in
    let len = in_channel_length ic in
    let content = really_input_string ic len in
    close_in ic;
    of_string content
  with Sys_error msg -> Error msg

let apply_placement p def =
  (* index problem cells by their DEF component name *)
  let by_name = Hashtbl.create 256 in
  Array.iter
    (fun c -> Hashtbl.replace by_name (Printf.sprintf "c%d" c.Problem.node) c)
    p.Problem.cells;
  let placed = ref 0 in
  let err = ref None in
  List.iter
    (fun comp ->
      if !err = None then
        match Hashtbl.find_opt by_name comp.comp_name with
        | None -> err := Some (Printf.sprintf "unknown component %s" comp.comp_name)
        | Some c ->
            if comp.comp_cell <> c.Problem.lib.Cell.cell_name then
              err :=
                Some
                  (Printf.sprintf "component %s is a %s here, %s in the DEF"
                     comp.comp_name c.Problem.lib.Cell.cell_name comp.comp_cell)
            else begin
              c.Problem.x <- comp.comp_x;
              incr placed
            end)
    def.components;
  match !err with Some e -> Error e | None -> Ok !placed
