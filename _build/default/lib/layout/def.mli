(** DEF-style design exchange (simplified).

    The paper notes its physical data is "referenced in the layout
    file, compatible with most layout tools". Besides GDSII, this
    module emits (and parses back) a simplified DEF text with the
    placement and routing of a design: die area, one COMPONENTS entry
    per placed cell, one NETS entry per point-to-point connection with
    its ROUTED polyline per metal layer. Distances are written in DEF
    database units (1000 per µm).

    The subset is deliberately small — enough to round-trip this
    flow's own results and to be eyeballed/diffed in code review.
    Writer and parser are inverse on that subset (tested). *)

type component = {
  comp_name : string;
  comp_cell : string;  (** library cell name *)
  comp_x : float;  (** µm *)
  comp_y : float;
}

type routed_segment = { seg_layer : string; seg_points : (float * float) list }

type def_net = {
  net_name : string;
  net_pins : (string * string) list;  (** (component, pin) *)
  net_route : routed_segment list;
}

type t = {
  design : string;
  die : Geom.rect;
  components : component list;
  nets : def_net list;
}

val of_design : ?design:string -> Problem.t -> Router.result -> t
(** Capture a placed-and-routed design. *)

val to_string : t -> string

val of_string : string -> (t, string) Stdlib.result

val write_file : string -> t -> unit

val read_file : string -> (t, string) Stdlib.result

val apply_placement : Problem.t -> t -> (int, string) Stdlib.result
(** Restore cell positions from a DEF dump produced by {!of_design}
    on the same netlist (components are matched by their [c<node>]
    names). Returns the number of cells placed; unknown components or
    off-netlist names are errors. Rows (y coordinates) must match the
    problem's geometry — only x is restored. Run
    {!Legalize.run} afterwards if the source was edited by hand. *)
