(** Design Rule Check engine (the flow's KLayout substitute,
    paper §III-E).

    Checks a {!Layout.t} against the AQFP process rules and returns
    every violation with its location, so the flow driver can adjust
    placement/routing and re-check:

    - [cell-overlap]: two cells' bodies intersect;
    - [cell-spacing]: same-row neighbors neither abut nor keep s_min;
    - [off-grid]: a cell origin or wire endpoint off the 10 µm grid;
    - [wire-overlap]: two same-layer collinear wires of different nets
      share centerline extent;
    - [wire-spacing]: two same-layer parallel wires of different nets
      run closer than s_min (centerline) with overlapping extent;
    - [zigzag-spacing]: a wire shorter than s_min between two bends
      (the paper's zigzag rule);
    - [via-alignment]: a via not placed on a wire corner of its net;
    - [density]: metal density above [max_density] inside any window
      (metal-layer density rule). *)

type violation = { rule : string; at : Geom.point; detail : string }

type options = {
  max_density : float;  (** fraction, default 0.9 *)
  density_window : float;  (** µm, default 200 *)
}

val default_options : options

val check : ?options:options -> Layout.t -> violation list
(** Empty list = clean layout. *)

val gap_hints : Problem.t -> violation list -> int list
(** Row gaps implicated by wire violations (by y coordinate) — the
    flow driver expands these and re-routes. *)

val pp_violation : Format.formatter -> violation -> unit
