type element =
  | Boundary of { layer : int; points : (float * float) list }
  | Path of { layer : int; width : float; points : (float * float) list }
  | Sref of { sname : string; x : float; y : float }
  | Text of { layer : int; x : float; y : float; text : string }

type structure = { sname : string; elements : element list }

type lib = { libname : string; structures : structure list }

(* database unit = 1 nm; user unit = 1 um *)
let dbu_per_um = 1000.0

(* ---- GDSII 8-byte real (excess-64, base-16) ---- *)

let gds_real_of_float v =
  if v = 0.0 then 0L
  else begin
    let sign = v < 0.0 in
    let a = ref (Float.abs v) in
    let exp = ref 64 in
    while !a >= 1.0 do
      a := !a /. 16.0;
      incr exp
    done;
    while !a < 0.0625 && !exp > 0 do
      a := !a *. 16.0;
      decr exp
    done;
    let mant = Int64.of_float (Float.round (!a *. 72057594037927936.0 (* 2^56 *))) in
    let mant, exp =
      if mant = 72057594037927936L then (4503599627370496L (* 2^52 = 2^56/16 *), !exp + 1)
      else (mant, !exp)
    in
    let bits = Int64.logor (Int64.shift_left (Int64.of_int exp) 56) mant in
    if sign then Int64.logor bits Int64.min_int else bits
  end

let float_of_gds_real bits =
  if bits = 0L then 0.0
  else begin
    let sign = Int64.compare bits 0L < 0 in
    let exp = Int64.to_int (Int64.logand (Int64.shift_right_logical bits 56) 0x7FL) in
    let mant = Int64.logand bits 0xFFFFFFFFFFFFFFL in
    let m = Int64.to_float mant /. 72057594037927936.0 in
    let v = m *. (16.0 ** float_of_int (exp - 64)) in
    if sign then -.v else v
  end

(* ---- record-level writer ---- *)

let rt_header = 0x00
let rt_bgnlib = 0x01
let rt_libname = 0x02
let rt_units = 0x03
let rt_endlib = 0x04
let rt_bgnstr = 0x05
let rt_strname = 0x06
let rt_endstr = 0x07
let rt_boundary = 0x08
let rt_path = 0x09
let rt_sref = 0x0A
let rt_text = 0x0C
let rt_layer = 0x0D
let rt_datatype = 0x0E
let rt_width = 0x0F
let rt_xy = 0x10
let rt_endel = 0x11
let rt_sname = 0x12
let rt_texttype = 0x16
let rt_string = 0x19

let dt_none = 0x00
let dt_int16 = 0x02
let dt_int32 = 0x03
let dt_real8 = 0x05
let dt_ascii = 0x06

let add_u16 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let add_i32 buf v =
  Buffer.add_char buf (Char.chr ((v asr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((v asr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v asr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let add_i64 buf v =
  for shift = 56 downto 0 do
    if shift mod 8 = 0 then
      Buffer.add_char buf
        (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v shift) 0xFFL)))
  done

let record buf rtype dtype payload_len fill =
  add_u16 buf (4 + payload_len);
  Buffer.add_char buf (Char.chr rtype);
  Buffer.add_char buf (Char.chr dtype);
  fill buf

let record_none buf rtype = record buf rtype dt_none 0 (fun _ -> ())

let record_i16s buf rtype values =
  record buf rtype dt_int16 (2 * List.length values) (fun b ->
      List.iter (add_u16 b) values)

let record_i32s buf rtype values =
  record buf rtype dt_int32 (4 * List.length values) (fun b ->
      List.iter (add_i32 b) values)

let record_string buf rtype s =
  let padded = if String.length s mod 2 = 1 then s ^ "\000" else s in
  record buf rtype dt_ascii (String.length padded) (fun b -> Buffer.add_string b padded)

let dbu x = int_of_float (Float.round (x *. dbu_per_um))

let xy_record buf points =
  record buf rt_xy dt_int32
    (8 * List.length points)
    (fun b ->
      List.iter
        (fun (x, y) ->
          add_i32 b (dbu x);
          add_i32 b (dbu y))
        points)

(* fixed deterministic timestamp: 2024-01-01 00:00:00 *)
let timestamp = [ 2024; 1; 1; 0; 0; 0 ]

let write_element buf = function
  | Boundary { layer; points } ->
      record_none buf rt_boundary;
      record_i16s buf rt_layer [ layer ];
      record_i16s buf rt_datatype [ 0 ];
      (* GDSII boundaries repeat the first point at the end *)
      let closed =
        match points with
        | [] -> []
        | first :: _ -> points @ [ first ]
      in
      xy_record buf closed;
      record_none buf rt_endel
  | Path { layer; width; points } ->
      record_none buf rt_path;
      record_i16s buf rt_layer [ layer ];
      record_i16s buf rt_datatype [ 0 ];
      record_i32s buf rt_width [ dbu width ];
      xy_record buf points;
      record_none buf rt_endel
  | Sref { sname; x; y } ->
      record_none buf rt_sref;
      record_string buf rt_sname sname;
      xy_record buf [ (x, y) ];
      record_none buf rt_endel
  | Text { layer; x; y; text } ->
      record_none buf rt_text;
      record_i16s buf rt_layer [ layer ];
      record_i16s buf rt_texttype [ 0 ];
      xy_record buf [ (x, y) ];
      record_string buf rt_string text;
      record_none buf rt_endel

let to_bytes lib =
  let buf = Buffer.create (1 lsl 16) in
  record_i16s buf rt_header [ 600 ];
  record_i16s buf rt_bgnlib (timestamp @ timestamp);
  record_string buf rt_libname lib.libname;
  record buf rt_units dt_real8 16 (fun b ->
      (* user unit in db units; db unit in meters *)
      add_i64 b (gds_real_of_float (1.0 /. dbu_per_um));
      add_i64 b (gds_real_of_float 1e-9));
  List.iter
    (fun s ->
      record_i16s buf rt_bgnstr (timestamp @ timestamp);
      record_string buf rt_strname s.sname;
      List.iter (write_element buf) s.elements;
      record_none buf rt_endstr)
    lib.structures;
  record_none buf rt_endlib;
  Buffer.to_bytes buf

(* ---- reader ---- *)

exception Bad of string

type raw_record = { rtype : int; data : string }

let parse_records data =
  let n = Bytes.length data in
  let records = ref [] in
  let pos = ref 0 in
  while !pos + 4 <= n do
    let len = (Char.code (Bytes.get data !pos) lsl 8) lor Char.code (Bytes.get data (!pos + 1)) in
    if len < 4 then raise (Bad (Printf.sprintf "bad record length %d at %d" len !pos));
    if !pos + len > n then raise (Bad "truncated record");
    let rtype = Char.code (Bytes.get data (!pos + 2)) in
    let payload = Bytes.sub_string data (!pos + 4) (len - 4) in
    records := { rtype; data = payload } :: !records;
    pos := !pos + len
  done;
  List.rev !records

let get_i16 s off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]

let get_i32 s off =
  let v =
    (Char.code s.[off] lsl 24)
    lor (Char.code s.[off + 1] lsl 16)
    lor (Char.code s.[off + 2] lsl 8)
    lor Char.code s.[off + 3]
  in
  (* sign-extend from 32 bits *)
  (v lxor 0x80000000) - 0x80000000

let get_string s =
  match String.index_opt s '\000' with
  | Some i -> String.sub s 0 i
  | None -> s

let get_xy s =
  let n = String.length s / 8 in
  List.init n (fun i ->
      let x = get_i32 s (8 * i) and y = get_i32 s ((8 * i) + 4) in
      (float_of_int x /. dbu_per_um, float_of_int y /. dbu_per_um))

let of_bytes data =
  try
    let records = parse_records data in
    let libname = ref "" in
    let structures = ref [] in
    let rec lib_level = function
      | [] -> raise (Bad "missing ENDLIB")
      | r :: rest when r.rtype = rt_libname ->
          libname := get_string r.data;
          lib_level rest
      | r :: rest when r.rtype = rt_bgnstr -> structure rest
      | r :: _ when r.rtype = rt_endlib -> ()
      | _ :: rest -> lib_level rest
    and structure records =
      let sname = ref "" in
      let elements = ref [] in
      let rec loop = function
        | [] -> raise (Bad "missing ENDSTR")
        | r :: rest when r.rtype = rt_strname ->
            sname := get_string r.data;
            loop rest
        | r :: rest when r.rtype = rt_endstr ->
            structures := { sname = !sname; elements = List.rev !elements } :: !structures;
            lib_level rest
        | r :: rest
          when r.rtype = rt_boundary || r.rtype = rt_path || r.rtype = rt_sref
               || r.rtype = rt_text ->
            element r.rtype rest
        | _ :: rest -> loop rest
      and element kind records =
        let layer = ref 0 and width = ref 0.0 and points = ref [] in
        let sname_ref = ref "" and text = ref "" in
        let rec el = function
          | [] -> raise (Bad "missing ENDEL")
          | r :: rest when r.rtype = rt_endel ->
              let e =
                if kind = rt_boundary then
                  (* drop the closing repeat of the first point *)
                  let pts =
                    match (!points, List.rev !points) with
                    | first :: _ :: _, last :: rev_tl when first = last ->
                        List.rev rev_tl
                    | _ -> !points
                  in
                  Boundary { layer = !layer; points = pts }
                else if kind = rt_path then
                  Path { layer = !layer; width = !width; points = !points }
                else if kind = rt_sref then
                  match !points with
                  | [ (x, y) ] -> Sref { sname = !sname_ref; x; y }
                  | _ -> raise (Bad "SREF needs one point")
                else
                  match !points with
                  | [ (x, y) ] -> Text { layer = !layer; x; y; text = !text }
                  | _ -> raise (Bad "TEXT needs one point")
              in
              elements := e :: !elements;
              loop rest
          | r :: rest ->
              if r.rtype = rt_layer then layer := get_i16 r.data 0
              else if r.rtype = rt_width then
                width := float_of_int (get_i32 r.data 0) /. dbu_per_um
              else if r.rtype = rt_xy then points := get_xy r.data
              else if r.rtype = rt_sname then sname_ref := get_string r.data
              else if r.rtype = rt_string then text := get_string r.data;
              el rest
        in
        el records
      in
      loop records
    in
    (match records with
    | r :: rest when r.rtype = rt_header -> lib_level rest
    | _ -> raise (Bad "missing HEADER"));
    Ok { libname = !libname; structures = List.rev !structures }
  with
  | Bad msg -> Error msg
  | Invalid_argument msg -> Error msg

let write_file path lib =
  let oc = open_out_bin path in
  output_bytes oc (to_bytes lib);
  close_out oc

let read_file path =
  try
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let data = really_input_string ic len in
    close_in ic;
    of_bytes (Bytes.of_string data)
  with Sys_error msg -> Error msg
