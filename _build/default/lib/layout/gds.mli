(** GDSII stream format writer and reader.

    Implements the subset of the GDSII binary format the flow needs:
    HEADER/BGNLIB/LIBNAME/UNITS, structure definitions
    (BGNSTR/STRNAME/ENDSTR) containing BOUNDARY, PATH, SREF and TEXT
    elements, and ENDLIB — enough for KLayout or any other layout
    tool to open the result. Database unit is 1 nm, user unit 1 µm.

    Floating-point records use the GDSII 8-byte excess-64 base-16
    real format; both directions are implemented and round-trip
    tested. Coordinates are int32 database units on disk and µm
    floats in the API. *)

type element =
  | Boundary of { layer : int; points : (float * float) list }
      (** closed polygon; first point need not be repeated (the writer
          closes it) *)
  | Path of { layer : int; width : float; points : (float * float) list }
  | Sref of { sname : string; x : float; y : float }
  | Text of { layer : int; x : float; y : float; text : string }

type structure = { sname : string; elements : element list }

type lib = { libname : string; structures : structure list }

val to_bytes : lib -> bytes

val of_bytes : bytes -> (lib, string) result
(** Parse a GDSII stream produced by this writer or any conforming
    tool (unknown record types inside elements are skipped). *)

val write_file : string -> lib -> unit

val read_file : string -> (lib, string) result

val gds_real_of_float : float -> int64
(** 8-byte excess-64 encoding (exposed for tests). *)

val float_of_gds_real : int64 -> float
