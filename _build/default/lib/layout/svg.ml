let cell_color (c : Cell.t) =
  match c.Cell.cell_name with
  | "buf" -> "#9fc5e8"
  | "not" -> "#6fa8dc"
  | "const" -> "#cccccc"
  | "spl2" | "spl3" -> "#ffd966"
  | "maj3" -> "#e06666"
  | "and2" | "or2" | "nand2" | "nor2" | "xor2" | "xnor2" -> "#93c47d"
  | "inport" | "outport" -> "#b4a7d6"
  | _ -> "#eeeeee"

let layer_color = function
  | 10 -> "#1155cc" (* metal1, horizontal *)
  | 11 -> "#38761d" (* metal2, vertical *)
  | 21 -> "#cc0000" (* AC1 *)
  | 22 -> "#e69138" (* AC2 *)
  | 23 -> "#000000" (* DC *)
  | _ -> "#999999"

let render ?(scale = 0.2) (t : Layout.t) =
  let die = t.Layout.die in
  (* include the bias trunk that sits right of the die *)
  let margin = 80.0 in
  let w = Geom.width die +. (2.0 *. margin) in
  let h = Geom.height die +. (2.0 *. margin) in
  let buf = Buffer.create (1 lsl 16) in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" viewBox=\"%.1f %.1f %.1f %.1f\">\n"
    (w *. scale) (h *. scale)
    (die.Geom.lx -. margin)
    (die.Geom.ly -. margin)
    w h;
  add "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"#fafafa\"/>\n"
    (die.Geom.lx -. margin)
    (die.Geom.ly -. margin)
    w h;
  (* bias first so signal geometry draws over it *)
  Array.iter
    (fun (wire : Layout.wire) ->
      add
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"%s\" stroke-width=\"3\" stroke-opacity=\"0.25\"/>\n"
        wire.Layout.a.Geom.x wire.Layout.a.Geom.y wire.Layout.b.Geom.x
        wire.Layout.b.Geom.y
        (layer_color wire.Layout.layer))
    t.Layout.bias;
  Array.iter
    (fun (pc : Layout.placed_cell) ->
      add
        "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"%s\" stroke=\"#444444\" stroke-width=\"0.5\"/>\n"
        pc.Layout.origin.Geom.x pc.Layout.origin.Geom.y pc.Layout.lib.Cell.width
        pc.Layout.lib.Cell.height
        (cell_color pc.Layout.lib))
    t.Layout.cells;
  Array.iter
    (fun (wire : Layout.wire) ->
      add
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"%s\" stroke-width=\"2\"/>\n"
        wire.Layout.a.Geom.x wire.Layout.a.Geom.y wire.Layout.b.Geom.x
        wire.Layout.b.Geom.y
        (layer_color wire.Layout.layer))
    t.Layout.wires;
  Array.iter
    (fun (v : Layout.via) ->
      add "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.5\" fill=\"#000000\"/>\n"
        v.Layout.at.Geom.x v.Layout.at.Geom.y)
    t.Layout.vias;
  add "</svg>\n";
  Buffer.contents buf

let write_file path ?scale t =
  let oc = open_out path in
  output_string oc (render ?scale t);
  close_out oc

let render_placement ?(scale = 0.2) p =
  let margin = 40.0 in
  let width = Problem.row_width p +. (2.0 *. margin) in
  let height =
    Problem.row_top p (p.Problem.n_rows - 1) +. p.Problem.row_height +. (2.0 *. margin)
  in
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" viewBox=\"%.1f %.1f %.1f %.1f\">\n"
    (width *. scale) (height *. scale) (-.margin) (-.margin) width height;
  add "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"#fafafa\"/>\n"
    (-.margin) (-.margin) width height;
  Array.iter
    (fun c ->
      let y = Problem.row_top p c.Problem.row in
      add
        "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"%s\" stroke=\"#444444\" stroke-width=\"0.5\"/>\n"
        c.Problem.x y c.Problem.lib.Cell.width c.Problem.lib.Cell.height
        (cell_color c.Problem.lib))
    p.Problem.cells;
  add "</svg>\n";
  Buffer.contents buf
