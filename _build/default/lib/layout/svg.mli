(** SVG rendering of a layout — a quick visual check of placement and
    routing without a GDS viewer (the repository's stand-in for the
    paper's Fig. 5 screenshot).

    Cells are drawn as fills colored by kind (buffers, splitters,
    logic, majority, I/O), signal wires as thin lines colored by metal
    layer, vias as dots, and the clock serpentines as translucent
    lines. Output is standalone SVG 1.1. *)

val render : ?scale:float -> Layout.t -> string
(** [render layout] — [scale] is pixels per µm (default 0.2; the
    result carries a viewBox, so any scale renders correctly). *)

val write_file : string -> ?scale:float -> Layout.t -> unit

val render_placement : ?scale:float -> Problem.t -> string
(** Cells-only view of a placement (no routing yet) — the picture to
    look at between the placer and the router. *)
