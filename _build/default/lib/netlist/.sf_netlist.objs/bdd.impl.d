lib/netlist/bdd.ml: Array Hashtbl List Netlist
