lib/netlist/bdd.mli: Netlist
