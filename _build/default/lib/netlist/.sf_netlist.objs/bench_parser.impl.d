lib/netlist/bench_parser.ml: Array Buffer Hashtbl List Netlist Option Printf String
