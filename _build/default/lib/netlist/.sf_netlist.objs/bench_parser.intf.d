lib/netlist/bench_parser.mli: Netlist
