lib/netlist/fault.ml: Array Format Fun List Netlist Rng Sim
