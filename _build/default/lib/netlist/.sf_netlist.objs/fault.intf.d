lib/netlist/fault.mli: Format Netlist
