lib/netlist/netlist.ml: Array Buffer Format List Printf Queue String Vec
