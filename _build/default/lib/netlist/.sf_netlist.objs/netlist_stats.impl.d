lib/netlist/netlist_stats.ml: Array Format Hashtbl List Netlist Option Stats
