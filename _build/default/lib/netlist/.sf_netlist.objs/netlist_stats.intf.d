lib/netlist/netlist_stats.mli: Format Netlist
