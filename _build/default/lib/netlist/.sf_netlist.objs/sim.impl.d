lib/netlist/sim.ml: Array Int64 List Netlist Rng
