lib/netlist/sim.mli: Netlist
