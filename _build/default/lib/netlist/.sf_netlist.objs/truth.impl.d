lib/netlist/truth.ml: Array String
