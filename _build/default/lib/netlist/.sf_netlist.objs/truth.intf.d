lib/netlist/truth.mli:
