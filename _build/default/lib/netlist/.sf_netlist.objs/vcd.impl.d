lib/netlist/vcd.ml: Array Buffer Char Hashtbl List Netlist Printf String
