lib/netlist/vcd.mli: Netlist
