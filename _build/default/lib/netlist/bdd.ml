(* ROBDD with a unique table (hash-consing) and a memoized ternary
   if-then-else as the single connective. Nodes are integers into
   growable arrays; 0 and 1 are the terminals. *)

exception Limit

type manager = {
  n_vars : int;
  max_nodes : int;
  mutable var_of : int array; (* node -> splitting variable *)
  mutable low_of : int array;
  mutable high_of : int array;
  mutable next : int;
  unique : (int * int * int, int) Hashtbl.t; (* (var, low, high) -> node *)
  ite_memo : (int * int * int, int) Hashtbl.t;
}

type node = { mgr : manager; id : int }

let terminal_var = max_int

let manager ?(max_nodes = 1_000_000) n_vars =
  let cap = 1024 in
  let m =
    {
      n_vars;
      max_nodes;
      var_of = Array.make cap terminal_var;
      low_of = Array.make cap 0;
      high_of = Array.make cap 0;
      next = 2;
      unique = Hashtbl.create 1024;
      ite_memo = Hashtbl.create 4096;
    }
  in
  (* ids 0 and 1 are the terminals *)
  m

let zero m = { mgr = m; id = 0 }
let one m = { mgr = m; id = 1 }

let grow m =
  let cap = Array.length m.var_of in
  let cap' = 2 * cap in
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  m.var_of <- extend m.var_of terminal_var;
  m.low_of <- extend m.low_of 0;
  m.high_of <- extend m.high_of 0

let mk m v low high =
  if low = high then low
  else
    match Hashtbl.find_opt m.unique (v, low, high) with
    | Some id -> id
    | None ->
        if m.next >= m.max_nodes then raise Limit;
        if m.next >= Array.length m.var_of then grow m;
        let id = m.next in
        m.next <- id + 1;
        m.var_of.(id) <- v;
        m.low_of.(id) <- low;
        m.high_of.(id) <- high;
        Hashtbl.replace m.unique (v, low, high) id;
        id

let top_var m id = if id < 2 then terminal_var else m.var_of.(id)

let rec ite m f g h =
  (* terminal cases *)
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else
    match Hashtbl.find_opt m.ite_memo (f, g, h) with
    | Some r -> r
    | None ->
        let v =
          min (top_var m f) (min (top_var m g) (top_var m h))
        in
        let cof node side =
          if node < 2 || m.var_of.(node) <> v then node
          else if side then m.high_of.(node)
          else m.low_of.(node)
        in
        let hi = ite m (cof f true) (cof g true) (cof h true) in
        let lo = ite m (cof f false) (cof g false) (cof h false) in
        let r = mk m v lo hi in
        Hashtbl.replace m.ite_memo (f, g, h) r;
        r

let check_mgr a b =
  if a.mgr != b.mgr then invalid_arg "Bdd: nodes from different managers"

let var m k =
  if k < 0 || k >= m.n_vars then invalid_arg "Bdd.var";
  { mgr = m; id = mk m k 0 1 }

let bnot m a = { mgr = m; id = ite m a.id 0 1 }
let band m a b = check_mgr a b; { mgr = m; id = ite m a.id b.id 0 }
let bor m a b = check_mgr a b; { mgr = m; id = ite m a.id 1 b.id }
let bxor m a b = check_mgr a b; { mgr = m; id = ite m a.id (ite m b.id 0 1) b.id }

let bmaj m a b c =
  check_mgr a b;
  check_mgr b c;
  let ab = band m a b in
  let ac = band m a c in
  let bc = band m b c in
  bor m ab (bor m ac bc)

let equal a b = a.mgr == b.mgr && a.id = b.id

let size m = m.next

let sat_count m node =
  let memo = Hashtbl.create 256 in
  (* count over variables >= v *)
  let rec count id v =
    if v >= m.n_vars then (if id = 1 then 1.0 else 0.0)
    else if id = 0 then 0.0
    else if id = 1 then 2.0 ** float_of_int (m.n_vars - v)
    else
      match Hashtbl.find_opt memo (id, v) with
      | Some c -> c
      | None ->
          let nv = top_var m id in
          let c =
            if nv > v then 2.0 *. count id (v + 1)
            else count m.low_of.(id) (v + 1) +. count m.high_of.(id) (v + 1)
          in
          Hashtbl.replace memo (id, v) c;
          c
  in
  count node.id 0

let any_sat m node =
  if node.id = 0 then None
  else begin
    let assignment = Array.make m.n_vars false in
    let rec walk id =
      if id < 2 then ()
      else begin
        let v = m.var_of.(id) in
        if m.high_of.(id) <> 0 then begin
          assignment.(v) <- true;
          walk m.high_of.(id)
        end
        else walk m.low_of.(id)
      end
    in
    walk node.id;
    Some assignment
  end

let eval node inputs =
  let m = node.mgr in
  let rec go id =
    if id = 0 then false
    else if id = 1 then true
    else if inputs.(m.var_of.(id)) then go m.high_of.(id)
    else go m.low_of.(id)
  in
  go node.id

let of_netlist m nl =
  let inputs = Netlist.inputs nl in
  if List.length inputs <> m.n_vars then
    invalid_arg "Bdd.of_netlist: input count does not match manager";
  let values = Array.make (Netlist.size nl) 0 in
  List.iteri (fun k id -> values.(id) <- (var m k).id) inputs;
  let order = Netlist.topo_order nl in
  Array.iter
    (fun id ->
      let f = Netlist.fanins nl id in
      let v k = values.(f.(k)) in
      let i n = { mgr = m; id = n } in
      let result =
        match Netlist.kind nl id with
        | Netlist.Input -> values.(id)
        | Const b -> if b then 1 else 0
        | Buf | Output | Splitter _ -> v 0
        | Not -> (bnot m (i (v 0))).id
        | And -> (band m (i (v 0)) (i (v 1))).id
        | Or -> (bor m (i (v 0)) (i (v 1))).id
        | Nand -> (bnot m (band m (i (v 0)) (i (v 1)))).id
        | Nor -> (bnot m (bor m (i (v 0)) (i (v 1)))).id
        | Xor -> (bxor m (i (v 0)) (i (v 1))).id
        | Xnor -> (bnot m (bxor m (i (v 0)) (i (v 1)))).id
        | Maj -> (bmaj m (i (v 0)) (i (v 1)) (i (v 2))).id
      in
      values.(id) <- result)
    order;
  Array.of_list
    (List.map (fun id -> { mgr = m; id = values.(id) }) (Netlist.outputs nl))

type verdict = Equivalent | Different of bool array | Too_large

let check_equivalence ?(max_nodes = 1_000_000) nl_a nl_b =
  let ins_a = List.length (Netlist.inputs nl_a) in
  let ins_b = List.length (Netlist.inputs nl_b) in
  let outs_a = List.length (Netlist.outputs nl_a) in
  let outs_b = List.length (Netlist.outputs nl_b) in
  if ins_a <> ins_b || outs_a <> outs_b then Different [||]
  else
    try
      let m = manager ~max_nodes ins_a in
      let fa = of_netlist m nl_a in
      let fb = of_netlist m nl_b in
      let rec compare_outputs k =
        if k >= Array.length fa then Equivalent
        else if equal fa.(k) fb.(k) then compare_outputs (k + 1)
        else
          let diff = bxor m fa.(k) fb.(k) in
          match any_sat m diff with
          | Some cex -> Different cex
          | None -> compare_outputs (k + 1)
      in
      compare_outputs 0
    with Limit -> Too_large
