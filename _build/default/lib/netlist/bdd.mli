(** Reduced ordered binary decision diagrams, and formal combinational
    equivalence checking built on them.

    The synthesis stages' correctness oracle so far is simulation
    ({!Sim.equivalent}: exhaustive to 14 inputs, sampled beyond). This
    module adds a formal oracle: canonical ROBDDs make equivalence a
    pointer comparison, and inequivalence yields a concrete
    counterexample input vector. Node count is capped so pathological
    orderings degrade into an explicit [`Too_large] instead of eating
    the machine; callers fall back to simulation. *)

type manager
(** Hash-consed node store for one variable order. *)

type node
(** A BDD rooted in some manager. Physical equality = functional
    equality for nodes of the same manager. *)

exception Limit
(** Raised when the manager exceeds its node budget. *)

val manager : ?max_nodes:int -> int -> manager
(** [manager n] for functions over [n] variables (order = index
    order). [max_nodes] defaults to 1_000_000. *)

val zero : manager -> node
val one : manager -> node
val var : manager -> int -> node

val bnot : manager -> node -> node
val band : manager -> node -> node -> node
val bor : manager -> node -> node -> node
val bxor : manager -> node -> node -> node
val bmaj : manager -> node -> node -> node -> node

val equal : node -> node -> bool
(** Canonical, so this is [==]. *)

val size : manager -> int
(** Live nodes in the manager. *)

val sat_count : manager -> node -> float
(** Number of satisfying assignments (of the manager's [n] vars). *)

val any_sat : manager -> node -> bool array option
(** A satisfying assignment, or [None] for the zero function. *)

val eval : node -> bool array -> bool

val of_netlist : manager -> Netlist.t -> node array
(** One BDD per primary output, inputs mapped to variables in
    {!Netlist.inputs} order. Raises [Limit] if the budget trips and
    [Invalid_argument] if input counts mismatch the manager. *)

type verdict =
  | Equivalent
  | Different of bool array  (** a counterexample input vector *)
  | Too_large  (** budget exceeded — fall back to simulation *)

val check_equivalence : ?max_nodes:int -> Netlist.t -> Netlist.t -> verdict
(** Formal equivalence of two netlists with matching input/output
    arities (mismatched arities are [Different] with a zero vector
    only when output counts differ — arity mismatch returns
    [Different [||]]). *)
