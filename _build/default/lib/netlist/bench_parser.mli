(** Parser for the ISCAS'85 [.bench] netlist format.

    Supports the combinational subset used by the c-series benchmarks:
    [INPUT(x)], [OUTPUT(x)], and assignments
    [y = OP(a, b, ...)] with [OP] one of AND/OR/NAND/NOR/XOR/XNOR/
    NOT/BUF/BUFF. N-ary gates are decomposed into balanced trees of
    2-input gates (the AOI form the rest of the flow expects);
    an n-ary NAND/NOR becomes a 2-input tree followed by one inverted
    root gate, which preserves the function. [#] starts a comment.

    Sequential elements ([DFF]) are rejected: AQFP gate-level
    pipelining has no equivalent of CMOS registers at this level. *)

val parse : string -> (Netlist.t, string) result
(** Parse source text. [Error] carries a message with a line number. *)

val parse_file : string -> (Netlist.t, string) result

val to_bench : Netlist.t -> string
(** Render an AOI netlist back to [.bench] text (round-trip tested).
    Gates beyond the AOI subset ([Maj], [Splitter]) are rejected with
    [Invalid_argument]. *)
