type fault = { node : int; stuck_at : bool }

let pp_fault ppf f =
  Format.fprintf ppf "node %d stuck-at-%d" f.node (if f.stuck_at then 1 else 0)

let all_faults nl =
  Netlist.fold nl
    (fun acc nd ->
      match nd.Netlist.kind with
      | Netlist.Output -> acc
      | _ ->
          { node = nd.Netlist.id; stuck_at = false }
          :: { node = nd.Netlist.id; stuck_at = true }
          :: acc)
    []
  |> List.rev

let word_bits = 62
let word_mask = (1 lsl word_bits) - 1

(* Bit-parallel simulation with one node's value pinned. *)
let eval_words_faulty nl ~fault input_words =
  let inputs = Netlist.inputs nl in
  let values = Array.make (Netlist.size nl) 0 in
  List.iteri (fun i id -> values.(id) <- input_words.(i)) inputs;
  let order = Netlist.topo_order nl in
  let pinned = if fault.stuck_at then word_mask else 0 in
  Array.iter
    (fun id ->
      let f = Netlist.fanins nl id in
      let v k = values.(f.(k)) in
      let result =
        match Netlist.kind nl id with
        | Netlist.Input -> values.(id)
        | Const b -> if b then word_mask else 0
        | Buf | Output | Splitter _ -> v 0
        | Not -> lnot (v 0) land word_mask
        | And -> v 0 land v 1
        | Or -> v 0 lor v 1
        | Nand -> lnot (v 0 land v 1) land word_mask
        | Nor -> lnot (v 0 lor v 1) land word_mask
        | Xor -> v 0 lxor v 1
        | Xnor -> lnot (v 0 lxor v 1) land word_mask
        | Maj -> (v 0 land v 1) lor (v 0 land v 2) lor (v 1 land v 2)
      in
      values.(id) <- (if id = fault.node then pinned else result))
    order;
  Array.of_list (List.map (fun id -> values.(id)) (Netlist.outputs nl))

let words_of_vectors nl vectors =
  let n_in = List.length (Netlist.inputs nl) in
  List.iter
    (fun v ->
      if Array.length v <> n_in then invalid_arg "Fault: vector arity mismatch")
    vectors;
  (* pack up to 62 vectors per word column *)
  let rec chunks = function
    | [] -> []
    | vs ->
        let batch = List.filteri (fun i _ -> i < word_bits) vs in
        let rest = List.filteri (fun i _ -> i >= word_bits) vs in
        let words =
          Array.init n_in (fun k ->
              List.fold_left
                (fun (acc, bit) v ->
                  ((if v.(k) then acc lor (1 lsl bit) else acc), bit + 1))
                (0, 0) batch
              |> fst)
        in
        (words, List.length batch) :: chunks rest
  in
  chunks vectors

let detected_by_words nl fault (words, n_used) good_outputs =
  let mask = if n_used >= word_bits then word_mask else (1 lsl n_used) - 1 in
  let bad = eval_words_faulty nl ~fault words in
  let differs = ref false in
  Array.iteri
    (fun i g -> if (g lxor bad.(i)) land mask <> 0 then differs := true)
    good_outputs;
  !differs

let faulty_response nl fault vector =
  let words = Array.map (fun b -> if b then 1 else 0) vector in
  Array.map (fun w -> w land 1 = 1) (eval_words_faulty nl ~fault words)

let detects nl fault vector =
  let words = Array.map (fun b -> if b then 1 else 0) vector in
  let good = Sim.eval_words nl words in
  detected_by_words nl fault (words, 1) good

let coverage nl vectors =
  let faults = all_faults nl in
  let batches =
    List.map (fun (w, n) -> (w, n, Sim.eval_words nl w)) (words_of_vectors nl vectors)
  in
  let undetected =
    List.filter
      (fun fault ->
        not
          (List.exists
             (fun (w, n, good) -> detected_by_words nl fault (w, n) good)
             batches))
      faults
  in
  let total = List.length faults in
  let det = total - List.length undetected in
  ((if total = 0 then 1.0 else float_of_int det /. float_of_int total), undetected)

type tests = {
  vectors : bool array list;
  achieved : float;
  undetected : fault list;
}

let generate ?(target = 0.99) ?(max_vectors = 2000) ?(seed = 1) nl =
  let rng = Rng.create seed in
  let n_in = List.length (Netlist.inputs nl) in
  let faults = ref (all_faults nl) in
  let total = float_of_int (List.length !faults) in
  let kept = ref [] in
  let n_kept = ref 0 in
  let stall = ref 0 in
  let continue = ref (total > 0.0) in
  while !continue do
    (* one batch of up to 62 random vectors *)
    let batch_size = min word_bits (max_vectors - !n_kept) in
    if batch_size <= 0 then continue := false
    else begin
      let batch =
        List.init batch_size (fun _ -> Array.init n_in (fun _ -> Rng.bool rng))
      in
      let words =
        Array.init n_in (fun k ->
            List.fold_left
              (fun (acc, bit) v ->
                ((if v.(k) then acc lor (1 lsl bit) else acc), bit + 1))
              (0, 0) batch
            |> fst)
      in
      let good = Sim.eval_words nl words in
      (* which vector detects which fault: per fault, find the lowest
         differing bit and keep only those vectors *)
      let useful_bits = ref 0 in
      faults :=
        List.filter
          (fun fault ->
            let bad = eval_words_faulty nl ~fault words in
            let diff = ref 0 in
            Array.iteri (fun i g -> diff := !diff lor (g lxor bad.(i))) good;
            let mask = (1 lsl batch_size) - 1 in
            let diff = !diff land mask in
            if diff = 0 then true (* still undetected *)
            else begin
              (* keep the first vector that exposes this fault *)
              let bit =
                let rec lowest k = if (diff lsr k) land 1 = 1 then k else lowest (k + 1) in
                lowest 0
              in
              useful_bits := !useful_bits lor (1 lsl bit);
              false
            end)
          !faults;
      List.iteri
        (fun bit v ->
          if (!useful_bits lsr bit) land 1 = 1 then begin
            kept := v :: !kept;
            incr n_kept
          end)
        batch;
      if !useful_bits = 0 then incr stall else stall := 0;
      let achieved = 1.0 -. (float_of_int (List.length !faults) /. total) in
      (* a long streak of useless batches means what is left is
         redundant (or astronomically hard) — stop *)
      if achieved >= target || !n_kept >= max_vectors || !faults = [] || !stall >= 20
      then continue := false
    end
  done;
  let achieved =
    if total = 0.0 then 1.0
    else 1.0 -. (float_of_int (List.length !faults) /. total)
  in
  { vectors = List.rev !kept; achieved; undetected = !faults }

let diagnose nl vectors observed =
  if List.length vectors <> List.length observed then
    invalid_arg "Fault.diagnose: vector/response count mismatch";
  let n_out = List.length (Netlist.outputs nl) in
  List.iter
    (fun o ->
      if Array.length o <> n_out then
        invalid_arg "Fault.diagnose: response arity mismatch")
    observed;
  let batches = words_of_vectors nl vectors in
  (* flatten observed responses in the same chunk order *)
  let rec obs_chunks obs =
    match obs with
    | [] -> []
    | _ ->
        let batch = List.filteri (fun i _ -> i < word_bits) obs in
        let rest = List.filteri (fun i _ -> i >= word_bits) obs in
        let words =
          Array.init n_out (fun k ->
              List.fold_left
                (fun (acc, bit) o ->
                  ((if o.(k) then acc lor (1 lsl bit) else acc), bit + 1))
                (0, 0) batch
              |> fst)
        in
        words :: obs_chunks rest
  in
  let observed_words = obs_chunks observed in
  List.filter
    (fun fault ->
      List.for_all2
        (fun (words, n_used) obs ->
          let mask = if n_used >= word_bits then word_mask else (1 lsl n_used) - 1 in
          let bad = eval_words_faulty nl ~fault words in
          Array.for_all Fun.id
            (Array.mapi (fun i b -> (b lxor obs.(i)) land mask = 0) bad))
        batches observed_words)
    (all_faults nl)
