(** Stuck-at fault simulation and greedy test-pattern generation.

    Fabricated superconducting dies need manufacturing tests like any
    chip; the classical single-stuck-at model carries over to AQFP
    directly (a JJ stuck in one flux state pins its gate's output).
    This module grades test-vector sets by fault coverage and
    generates compact vector sets greedily:

    - a {e fault} pins one gate output to 0 or 1;
    - a vector {e detects} a fault iff any primary output differs
      between the good and the faulted machine;
    - generation draws random vector batches (bit-parallel, 62 vectors
      per word pass), keeps each vector that newly detects at least
      one fault, and drops detected faults, until a coverage target or
      a vector budget is reached.

    Faults that no vector can detect are {e redundant} — they witness
    untestable logic (e.g. constant-valued internal nets), which the
    test suite exercises explicitly. *)

type fault = { node : int; stuck_at : bool }

val all_faults : Netlist.t -> fault list
(** Both polarities on every logic node (inputs included — a stuck
    input is a broken DC/SFQ converter; output markers excluded). *)

val detects : Netlist.t -> fault -> bool array -> bool
(** [detects nl fault vector] — single-vector check. *)

val faulty_response : Netlist.t -> fault -> bool array -> bool array
(** Outputs of the faulted machine on one vector (simulates a
    defective die; used by diagnosis and its tests). *)

val coverage : Netlist.t -> bool array list -> float * fault list
(** Fraction of {!all_faults} detected by the vector set, plus the
    faults that remain undetected. *)

type tests = {
  vectors : bool array list;
  achieved : float;  (** final fault coverage, 0..1 *)
  undetected : fault list;
}

val generate : ?target:float -> ?max_vectors:int -> ?seed:int -> Netlist.t -> tests
(** Greedy generation ([target] defaults to 0.99, [max_vectors] to
    2000). Deterministic in [seed]. *)

val diagnose :
  Netlist.t -> bool array list -> bool array list -> fault list
(** Fault dictionary lookup: given the applied [vectors] and the
    {e observed} output responses of a failing die, return the
    single-stuck-at faults whose simulated responses match every
    observation. An empty list means no single fault explains the
    behaviour (multiple defects, or a fault class outside the model);
    the healthy response matches no fault only when the die actually
    failed somewhere. *)

val pp_fault : Format.formatter -> fault -> unit
