type t = {
  nodes : int;
  inputs : int;
  outputs : int;
  gates : int;
  gate_mix : (string * int) list;
  depth : int;
  width_per_level : int array;
  width_max : int;
  width_mean : float;
  width_cv : float;
  fanout_max : int;
  fanout_mean : float;
  fanout_histogram : (int * int) list;
}

let analyze nl =
  let nl = Netlist.copy nl in
  let depth = Netlist.levelize nl in
  let mix : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let gates = ref 0 in
  let widths = Array.make (depth + 1) 0 in
  Netlist.iter nl (fun nd ->
      match nd.Netlist.kind with
      | Netlist.Output -> ()
      | k ->
          let level = nd.Netlist.phase in
          if level >= 0 && level <= depth then widths.(level) <- widths.(level) + 1;
          (match k with
          | Netlist.Input -> ()
          | _ ->
              incr gates;
              let name = Netlist.kind_name k in
              Hashtbl.replace mix name
                (1 + Option.value ~default:0 (Hashtbl.find_opt mix name))));
  let gate_mix =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) mix []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let counts = Netlist.fanout_counts nl in
  let fan_hist : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let fan_sum = ref 0 and fan_n = ref 0 and fan_max = ref 0 in
  Netlist.iter nl (fun nd ->
      match nd.Netlist.kind with
      | Netlist.Output -> ()
      | _ ->
          let f = counts.(nd.Netlist.id) in
          fan_sum := !fan_sum + f;
          incr fan_n;
          if f > !fan_max then fan_max := f;
          Hashtbl.replace fan_hist f
            (1 + Option.value ~default:0 (Hashtbl.find_opt fan_hist f)));
  let widths_f = Array.map float_of_int widths in
  let mean = Stats.mean widths_f in
  {
    nodes = Netlist.size nl;
    inputs = List.length (Netlist.inputs nl);
    outputs = List.length (Netlist.outputs nl);
    gates = !gates;
    gate_mix;
    depth;
    width_per_level = widths;
    width_max = Array.fold_left max 0 widths;
    width_mean = mean;
    width_cv = (if mean > 0.0 then Stats.stddev widths_f /. mean else 0.0);
    fanout_max = !fan_max;
    fanout_mean =
      (if !fan_n = 0 then 0.0 else float_of_int !fan_sum /. float_of_int !fan_n);
    fanout_histogram =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) fan_hist []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
  }

let pp ppf s =
  Format.fprintf ppf "@[<v>nodes %d (in %d, out %d, gates %d), depth %d@,"
    s.nodes s.inputs s.outputs s.gates s.depth;
  Format.fprintf ppf "levels: max %d, mean %.1f, cv %.2f@," s.width_max
    s.width_mean s.width_cv;
  Format.fprintf ppf "fanout: max %d, mean %.2f@," s.fanout_max s.fanout_mean;
  Format.fprintf ppf "mix:";
  List.iter (fun (k, n) -> Format.fprintf ppf " %s=%d" k n) s.gate_mix;
  Format.fprintf ppf "@]"
