(** Structural netlist analyses: the numbers a synthesis engineer
    looks at before blaming the placer — gate mix, logic-depth
    profile, fan-out distribution, and how evenly the pipeline's
    phases are populated (AQFP-specific: row-width variance is what
    stretches placements). *)

type t = {
  nodes : int;
  inputs : int;
  outputs : int;
  gates : int;  (** logic cells (everything but IO markers) *)
  gate_mix : (string * int) list;  (** kind name → count, descending *)
  depth : int;  (** longest input-to-output path, in levels *)
  width_per_level : int array;  (** nodes at each level *)
  width_max : int;
  width_mean : float;
  width_cv : float;  (** coefficient of variation of level widths —
      high values predict placement stretch *)
  fanout_max : int;
  fanout_mean : float;
  fanout_histogram : (int * int) list;  (** fan-out value → node count *)
}

val analyze : Netlist.t -> t

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable rendering. *)
