let word_bits = 62

let eval_words nl input_words =
  let inputs = Netlist.inputs nl in
  if List.length inputs <> Array.length input_words then
    invalid_arg "Sim.eval_words: input arity mismatch";
  let values = Array.make (Netlist.size nl) 0 in
  List.iteri (fun i id -> values.(id) <- input_words.(i)) inputs;
  let order = Netlist.topo_order nl in
  let mask = (1 lsl word_bits) - 1 in
  Array.iter
    (fun id ->
      let f = Netlist.fanins nl id in
      let v k = values.(f.(k)) in
      let result =
        match Netlist.kind nl id with
        | Netlist.Input -> values.(id)
        | Const b -> if b then mask else 0
        | Buf | Output | Splitter _ -> v 0
        | Not -> lnot (v 0) land mask
        | And -> v 0 land v 1
        | Or -> v 0 lor v 1
        | Nand -> lnot (v 0 land v 1) land mask
        | Nor -> lnot (v 0 lor v 1) land mask
        | Xor -> v 0 lxor v 1
        | Xnor -> lnot (v 0 lxor v 1) land mask
        | Maj -> (v 0 land v 1) lor (v 0 land v 2) lor (v 1 land v 2)
      in
      values.(id) <- result)
    order;
  Array.of_list (List.map (fun id -> values.(id)) (Netlist.outputs nl))

let eval nl inputs =
  let words = Array.map (fun b -> if b then 1 else 0) inputs in
  Array.map (fun w -> w land 1 = 1) (eval_words nl words)

let signature ?(vectors = 256) ?(seed = 42) nl =
  let rng = Rng.create seed in
  let n_in = List.length (Netlist.inputs nl) in
  let rounds = (vectors + word_bits - 1) / word_bits in
  let acc = ref [] in
  for _ = 1 to rounds do
    let input_words =
      Array.init n_in (fun _ ->
          Int64.to_int (Int64.shift_right_logical (Rng.bits64 rng) 2))
    in
    let outs = eval_words nl input_words in
    acc := Array.to_list outs @ !acc
  done;
  Array.of_list (List.rev !acc)

let exhaustive_equal nl_a nl_b n_in =
  (* Pack assignments bit-parallel: var k's word alternates in blocks
     of 2^k, exactly like Truth.var but spread across several rounds
     when 2^n exceeds the word size. *)
  let total = 1 lsl n_in in
  let ok = ref true in
  let base = ref 0 in
  while !ok && !base < total do
    let chunk = min word_bits (total - !base) in
    let words =
      Array.init n_in (fun k ->
          let w = ref 0 in
          for b = 0 to chunk - 1 do
            if ((!base + b) lsr k) land 1 = 1 then w := !w lor (1 lsl b)
          done;
          !w)
    in
    let mask = (1 lsl chunk) - 1 in
    let oa = eval_words nl_a words and ob = eval_words nl_b words in
    Array.iteri (fun i wa -> if wa land mask <> ob.(i) land mask then ok := false) oa;
    base := !base + chunk
  done;
  !ok

let equivalent ?(vectors = 512) ?(seed = 42) nl_a nl_b =
  let ins_a = List.length (Netlist.inputs nl_a) in
  let ins_b = List.length (Netlist.inputs nl_b) in
  let outs_a = List.length (Netlist.outputs nl_a) in
  let outs_b = List.length (Netlist.outputs nl_b) in
  if ins_a <> ins_b || outs_a <> outs_b then false
  else if ins_a <= 14 then exhaustive_equal nl_a nl_b ins_a
  else signature ~vectors ~seed nl_a = signature ~vectors ~seed nl_b
