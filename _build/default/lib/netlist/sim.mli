(** Netlist simulation.

    Bit-parallel evaluation: each node carries a 62-bit word, so one
    pass simulates up to 62 input vectors. The synthesis stages use
    [equivalent] as their functional-correctness oracle (the converted
    and buffered netlists must compute the same outputs as the AOI
    input for every sampled vector). *)

val eval : Netlist.t -> bool array -> bool array
(** [eval nl inputs] — single-vector simulation. [inputs] are in
    {!Netlist.inputs} order; the result is in {!Netlist.outputs}
    order. *)

val eval_words : Netlist.t -> int array -> int array
(** Bit-parallel variant: each input is a word of vectors. *)

val signature : ?vectors:int -> ?seed:int -> Netlist.t -> int array
(** Output response to a deterministic pseudo-random stimulus set
    ([vectors] defaults to 256). Two netlists with the same
    input/output arity and the same signature agree on every sampled
    vector. *)

val equivalent : ?vectors:int -> ?seed:int -> Netlist.t -> Netlist.t -> bool
(** Random-simulation equivalence over matching input/output counts.
    Also does exhaustive comparison when the input count is <= 14. *)
