type t = int

let num_vars_max = 6

(* For n = 6 the table needs 64 bits; OCaml ints have 63, so the n = 6
   mask saturates to all usable bits. The synthesis code only ever uses
   n <= 3; larger n serve simulation-style checks in tests. *)
let mask n =
  if n < 0 || n > num_vars_max then invalid_arg "Truth.mask";
  if n = num_vars_max then -1 else (1 lsl (1 lsl n)) - 1

let var k n =
  if k < 0 || k >= n then invalid_arg "Truth.var";
  let bits = 1 lsl n in
  let tt = ref 0 in
  for i = 0 to bits - 1 do
    if (i lsr k) land 1 = 1 then tt := !tt lor (1 lsl i)
  done;
  !tt

let const b n = if b then mask n else 0

let not_ n tt = lnot tt land mask n

let and_ = ( land )
let or_ = ( lor )
let xor = ( lxor )

let maj a b c = (a land b) lor (a land c) lor (b land c)

let eval tt inputs =
  let idx = ref 0 in
  Array.iteri (fun k b -> if b then idx := !idx lor (1 lsl k)) inputs;
  (tt lsr !idx) land 1 = 1

let of_fun n f =
  let bits = 1 lsl n in
  let tt = ref 0 in
  let inputs = Array.make n false in
  for i = 0 to bits - 1 do
    for k = 0 to n - 1 do
      inputs.(k) <- (i lsr k) land 1 = 1
    done;
    if f inputs then tt := !tt lor (1 lsl i)
  done;
  !tt

let equal_on n a b = a land mask n = b land mask n

let depends_on n tt k =
  if k < 0 || k >= n then invalid_arg "Truth.depends_on";
  let bits = 1 lsl n in
  let differs = ref false in
  for i = 0 to bits - 1 do
    if (i lsr k) land 1 = 0 then begin
      let j = i lor (1 lsl k) in
      if (tt lsr i) land 1 <> (tt lsr j) land 1 then differs := true
    end
  done;
  !differs

let support_size n tt =
  let count = ref 0 in
  for k = 0 to n - 1 do
    if depends_on n tt k then incr count
  done;
  !count

let to_string n tt =
  String.init (1 lsl n) (fun i -> if (tt lsr i) land 1 = 1 then '1' else '0')
