(** Truth tables for boolean functions of up to 6 variables, packed
    into the low [2^n] bits of an [int]. Bit [i] holds the function
    value on the input assignment whose variable [k] equals bit [k] of
    [i].

    The majority-mapping database ({!Sf_synth.Maj_db}) and the
    Karnaugh-style matching step of the AOI→MAJ converter are built on
    this module. *)

type t = int

val num_vars_max : int
(** 6 — beyond this an [int] no longer holds the table. *)

val mask : int -> t
(** [mask n] = all-ones table on [n] variables. *)

val var : int -> int -> t
(** [var k n] — projection of variable [k] among [n] variables. *)

val const : bool -> int -> t

val not_ : int -> t -> t
(** Complement within [n] variables: [not_ n tt]. *)

val and_ : t -> t -> t

val or_ : t -> t -> t

val xor : t -> t -> t

val maj : t -> t -> t -> t
(** Bitwise 3-input majority. *)

val eval : t -> bool array -> bool
(** [eval tt inputs] looks up the function value. *)

val of_fun : int -> (bool array -> bool) -> t
(** [of_fun n f] tabulates [f] over all [2^n] assignments. *)

val equal_on : int -> t -> t -> bool
(** Equality restricted to [n] variables. *)

val depends_on : int -> t -> int -> bool
(** [depends_on n tt k] — does the function depend on variable [k]? *)

val support_size : int -> t -> int
(** Number of variables the function actually depends on. *)

val to_string : int -> t -> string
(** Binary string, LSB (assignment 0) first. *)
