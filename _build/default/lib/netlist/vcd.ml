(* VCD identifier codes: printable ASCII 33..126, shortest-first. *)
let code_of_index i =
  let base = 94 in
  let rec go i acc =
    let c = Char.chr (33 + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let signal_values nl inputs =
  (* evaluate once, returning the value of EVERY node *)
  let values = Array.make (Netlist.size nl) false in
  List.iteri (fun i id -> values.(id) <- inputs.(i)) (Netlist.inputs nl);
  let order = Netlist.topo_order nl in
  Array.iter
    (fun id ->
      let f = Netlist.fanins nl id in
      let v k = values.(f.(k)) in
      let r =
        match Netlist.kind nl id with
        | Netlist.Input -> values.(id)
        | Const b -> b
        | Buf | Output | Splitter _ -> v 0
        | Not -> not (v 0)
        | And -> v 0 && v 1
        | Or -> v 0 || v 1
        | Nand -> not (v 0 && v 1)
        | Nor -> not (v 0 || v 1)
        | Xor -> v 0 <> v 1
        | Xnor -> v 0 = v 1
        | Maj -> (v 0 && v 1) || (v 0 && v 2) || (v 1 && v 2)
      in
      values.(id) <- r)
    order;
  values

let of_vectors ?(dump_internal = false) ?(timescale = "1ns") nl vectors =
  let n_in = List.length (Netlist.inputs nl) in
  List.iter
    (fun v ->
      if Array.length v <> n_in then invalid_arg "Vcd.of_vectors: vector arity mismatch")
    vectors;
  (* traced signals: (node id, vcd name) *)
  let traced = ref [] in
  let name_of nd =
    match nd.Netlist.name with
    | Some s ->
        String.map (fun c -> if c = ' ' then '_' else c) s
    | None -> Printf.sprintf "n%d" nd.Netlist.id
  in
  Netlist.iter nl (fun nd ->
      let wanted =
        match nd.Netlist.kind with
        | Netlist.Input | Netlist.Output -> true
        | _ -> dump_internal
      in
      if wanted then traced := (nd.Netlist.id, name_of nd) :: !traced);
  let traced = List.rev !traced in
  let codes = List.mapi (fun i (id, name) -> (id, name, code_of_index i)) traced in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "$date superflow simulation $end\n";
  add "$version superflow 0.1.0 $end\n";
  add "$timescale %s $end\n" timescale;
  add "$scope module superflow $end\n";
  List.iter (fun (_, name, code) -> add "$var wire 1 %s %s $end\n" code name) codes;
  add "$upscope $end\n$enddefinitions $end\n";
  let last = Hashtbl.create (List.length codes) in
  List.iteri
    (fun t vector ->
      let values = signal_values nl vector in
      add "#%d\n" t;
      List.iter
        (fun (id, _, code) ->
          let v = values.(id) in
          let changed =
            match Hashtbl.find_opt last code with
            | Some prev -> prev <> v
            | None -> true
          in
          if changed then begin
            Hashtbl.replace last code v;
            add "%c%s\n" (if v then '1' else '0') code
          end)
        codes)
    vectors;
  add "#%d\n" (List.length vectors);
  Buffer.contents buf

let write_file path ?dump_internal ?timescale nl vectors =
  let oc = open_out path in
  output_string oc (of_vectors ?dump_internal ?timescale nl vectors);
  close_out oc
