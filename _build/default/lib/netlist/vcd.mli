(** VCD (Value Change Dump) export of simulation traces.

    Runs a vector sequence through {!Sim} and emits the standard VCD
    text that waveform viewers (GTKWave & co.) read: one timestep per
    input vector, with primary inputs, primary outputs, and —
    optionally — every internal node as signals. Signals are named
    after the netlist names where present.

    AQFP note: the simulation is zero-delay combinational; one VCD
    timestep corresponds to one full wave through the gate-level
    pipeline, not one clock phase. *)

val of_vectors :
  ?dump_internal:bool ->
  ?timescale:string ->
  Netlist.t ->
  bool array list ->
  string
(** [of_vectors nl vectors] — VCD text for the run. [dump_internal]
    (default false) also traces internal gates; [timescale] defaults
    to ["1ns"]. Raises [Invalid_argument] on vector arity mismatch. *)

val write_file :
  string -> ?dump_internal:bool -> ?timescale:string -> Netlist.t ->
  bool array list -> unit
