lib/place/baselines.ml: Array Cell Clocking Detailed Float Global Legalize Problem Quadratic Stats
