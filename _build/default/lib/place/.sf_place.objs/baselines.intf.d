lib/place/baselines.mli: Problem
