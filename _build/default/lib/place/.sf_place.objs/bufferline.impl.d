lib/place/bufferline.ml: Array Float Hashtbl Legalize List Netlist Problem Tech
