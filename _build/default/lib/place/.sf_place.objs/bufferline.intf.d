lib/place/bufferline.mli: Netlist Problem
