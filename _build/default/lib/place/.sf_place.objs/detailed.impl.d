lib/place/detailed.ml: Array Cell Clocking Float List Problem Tech
