lib/place/detailed.mli: Problem
