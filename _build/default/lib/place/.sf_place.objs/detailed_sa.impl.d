lib/place/detailed_sa.ml: Array Cell Float List Place_cost Problem Rng Tech
