lib/place/detailed_sa.mli: Place_cost Problem
