lib/place/global.ml: Array Cell Float Format Legalize List Problem Quadratic Rng Tech Wa_model
