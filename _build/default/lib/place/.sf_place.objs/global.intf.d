lib/place/global.mli: Problem
