lib/place/legalize.ml: Array Cell Float List Problem Tech
