lib/place/legalize.mli: Problem
