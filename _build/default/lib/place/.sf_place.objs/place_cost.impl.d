lib/place/place_cost.ml: Array Cell Clocking Float Problem Tech
