lib/place/place_cost.mli: Problem
