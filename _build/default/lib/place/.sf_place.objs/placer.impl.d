lib/place/placer.ml: Array Baselines Cell Detailed Float Format Global Legalize List Problem Row_dp Sys Tech
