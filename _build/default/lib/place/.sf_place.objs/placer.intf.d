lib/place/placer.mli: Format Problem
