lib/place/problem.ml: Array Cell Clocking Float Format List Netlist Option Printf String Tech
