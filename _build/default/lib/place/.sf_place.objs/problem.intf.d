lib/place/problem.mli: Cell Format Netlist Tech
