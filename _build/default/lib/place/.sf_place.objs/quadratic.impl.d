lib/place/quadratic.ml: Array Cell Float Problem
