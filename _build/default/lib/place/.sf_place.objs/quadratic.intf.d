lib/place/quadratic.mli: Problem
