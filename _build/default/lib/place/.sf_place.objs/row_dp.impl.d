lib/place/row_dp.ml: Array Cell Float List Problem Tech
