lib/place/row_dp.mli: Problem
