lib/place/wa_model.ml: Array Cell Float Problem Tech
