lib/place/wa_model.mli: Problem Tech
