let gordian p =
  Quadratic.solve p ~net_weight:(fun _ -> 1.0);
  Legalize.run p;
  (* the published GORDIAN-style flow stops at legalized quadratic
     placement plus a greedy same-size cleanup; no timing objective *)
  let opts =
    {
      Detailed.default_options with
      lambda_t = 0.0;
      lambda_wmax = 0.0;
      lambda_slack = 0.0;
      mixed_size = false;
      window = 1;
      max_passes = 4;
    }
  in
  ignore (Detailed.run ~options:opts p)

let taas ?(reweight_rounds = 3) p =
  let n_nets = Array.length p.Problem.nets in
  let weights = Array.make n_nets 1.0 in
  for _round = 1 to reweight_rounds do
    Quadratic.solve p ~net_weight:(fun i -> weights.(i));
    (* reweight by the four-phase timing cost of the current solution *)
    let row_width = Float.max 1.0 (Problem.row_width p) in
    let costs =
      Array.map
        (fun e ->
          let sc = p.Problem.cells.(e.Problem.src) in
          let xs = sc.Problem.x +. sc.Problem.lib.Cell.out_pins.(e.Problem.src_pin) in
          let dc = p.Problem.cells.(e.Problem.dst) in
          let pins = dc.Problem.lib.Cell.in_pins in
          let xd = dc.Problem.x +. pins.(e.Problem.dst_pin mod Array.length pins) in
          Clocking.timing_cost p.Problem.tech ~row_width ~phase:sc.Problem.row
            ~x_start:xs ~x_end:xd ~alpha:2.0)
        p.Problem.nets
    in
    let avg = Float.max 1e-9 (Stats.mean costs) in
    Array.iteri (fun i c -> weights.(i) <- 1.0 +. Float.min 4.0 (c /. avg)) costs
  done;
  (* a short timing-aware adjustment phase; candidates remain
     size-matched (the restriction SuperFlow's Fig. 4 lifts) *)
  Global.barycenter_sweeps ~sweeps:10 ~timing_bias:0.05 ~timing_weight:0.05 p;
  let opts =
    {
      Detailed.default_options with
      lambda_t = 0.3;
      lambda_wmax = 2.0;
      lambda_slack = 5.0;
      mixed_size = false;
      window = 2;
      max_passes = 6;
    }
  in
  ignore (Detailed.run ~options:opts p)
