(** Baseline placers the paper compares against in Table III.

    {b GORDIAN-based} (Li et al., DATE'21 [8]): quadratic wirelength
    placement, wirelength only — no timing term. Followed by the same
    Tetris legalization and a wirelength-only shift pass restricted to
    equal-size swaps. It achieves good wirelength but, as the paper
    observes, poor timing on large circuits.

    {b TAAS} (Dong et al., DAC'22 [10]): timing-aware analytical
    placement — the quadratic engine with per-net weights iteratively
    increased on nets with high four-phase timing cost, trading a
    little wirelength for better slack. Detailed improvement remains
    size-matched (contrast with SuperFlow's mixed-cell-size swaps,
    Fig. 4). *)

val gordian : Problem.t -> unit
(** Run the GORDIAN-based baseline: positions end legalized. *)

val taas : ?reweight_rounds:int -> Problem.t -> unit
(** Run the TAAS baseline: positions end legalized.
    [reweight_rounds] (default 3) quadratic solves with timing-derived
    net reweighting in between. *)
