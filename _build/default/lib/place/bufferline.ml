let insert nl p =
  let tech = p.Problem.tech in
  let n_rows = p.Problem.n_rows in
  (* buffer lines needed below each row *)
  let lines = Array.make (max 1 (n_rows - 1)) 0 in
  (* every hop of a split connection still crosses one full row pitch
     vertically, so the horizontal budget per hop is w_max minus the
     pitch (plus one grid of legalization slack) *)
  let hop_pitch = p.Problem.row_height +. tech.Tech.row_gap in
  let budget = Float.max tech.Tech.grid (tech.Tech.w_max -. hop_pitch -. tech.Tech.grid) in
  Array.iter
    (fun e ->
      let r = p.Problem.cells.(e.Problem.src).Problem.row in
      if r < Array.length lines && Problem.net_length p e > tech.Tech.w_max then begin
        let hdx = Float.abs (Problem.net_dx p e) in
        let need = max 1 (int_of_float (ceil (hdx /. budget)) - 1) in
        if need > lines.(r) then lines.(r) <- need
      end)
    p.Problem.nets;
  let total = Array.fold_left ( + ) 0 lines in
  if total = 0 then (nl, p, 0)
  else begin
    (* row shift: new row index of an old row *)
    let shift = Array.make (n_rows + 1) 0 in
    for r = 1 to n_rows do
      shift.(r) <- shift.(r - 1) + if r - 1 < Array.length lines then lines.(r - 1) else 0
    done;
    let new_row old_row = old_row + shift.(old_row) in
    (* rebuild netlist with buffer chains; remember each new node's x *)
    let nl2 = Netlist.create () in
    let id_map = Array.make (Netlist.size nl) (-1) in
    let node_x : (int, float) Hashtbl.t = Hashtbl.create 256 in
    (* cell positions by originating node *)
    let x_of_node = Array.make (Netlist.size nl) 0.0 in
    Array.iter
      (fun c -> x_of_node.(c.Problem.node) <- c.Problem.x)
      p.Problem.cells;
    (* primary inputs first, in their original order *)
    List.iter
      (fun iid ->
        let nd = Netlist.node nl iid in
        let id = Netlist.add nl2 ?name:nd.Netlist.name Netlist.Input [||] in
        Netlist.set_phase nl2 id (new_row nd.Netlist.phase);
        Hashtbl.replace node_x id x_of_node.(iid);
        id_map.(iid) <- id)
      (Netlist.inputs nl);
    let rebuffered_fanins old_id nd =
      Array.map
        (fun u ->
          let u_row = Netlist.phase nl u in
              (* edges cross the gap below the source's cell row *)
              let gap = u_row in
              let need = if gap < Array.length lines then lines.(gap) else 0 in
              let src_new = id_map.(u) in
              if need = 0 then src_new
              else begin
                let x_u = x_of_node.(u) in
                let x_v = x_of_node.(old_id) in
                let cur = ref src_new in
                for j = 1 to need do
                  let b = Netlist.add nl2 Netlist.Buf [| !cur |] in
                  let frac = float_of_int j /. float_of_int (need + 1) in
                  Hashtbl.replace node_x b
                    (Tech.snap tech (x_u +. (frac *. (x_v -. x_u))));
                  Netlist.set_phase nl2 b (Netlist.phase nl2 !cur + 1);
                  cur := b
                done;
                !cur
              end)
        nd.Netlist.fanins
    in
    let order = Netlist.topo_order nl in
    Array.iter
      (fun old_id ->
        let nd = Netlist.node nl old_id in
        match nd.Netlist.kind with
        | Netlist.Input | Netlist.Output -> () (* handled separately *)
        | kind ->
            let fanins = rebuffered_fanins old_id nd in
            let id = Netlist.add nl2 ?name:nd.Netlist.name kind fanins in
            Netlist.set_phase nl2 id (new_row nd.Netlist.phase);
            Hashtbl.replace node_x id x_of_node.(old_id);
            id_map.(old_id) <- id)
      order;
    (* primary outputs last, in their original order; markers mirror
       their (possibly re-buffered) driver's phase *)
    List.iter
      (fun oid ->
        let nd = Netlist.node nl oid in
        let fanins = rebuffered_fanins oid nd in
        let id = Netlist.add nl2 ?name:nd.Netlist.name Netlist.Output fanins in
        Netlist.set_phase nl2 id (Netlist.phase nl2 fanins.(0));
        Hashtbl.replace node_x id x_of_node.(oid);
        id_map.(oid) <- id)
      (Netlist.outputs nl);
    let p2 = Problem.of_netlist tech nl2 in
    Array.iter
      (fun c ->
        match Hashtbl.find_opt node_x c.Problem.node with
        | Some x -> c.Problem.x <- x
        | None -> ())
      p2.Problem.cells;
    Legalize.run p2;
    (nl2, p2, total)
  end
