(** Max-wirelength buffer-line insertion (paper §II-C(ii)).

    When a placed connection exceeds W_max, AQFP requires an entire
    row of buffers between the two clock phases (a partial row would
    unbalance the pipeline: inserting a full row adds exactly one
    phase to {e every} path, preserving balance). This module performs
    the insertion for real: for every row gap whose longest crossing
    net needs k = ceil(Lmax / w_max) - 1 intermediate hops, each net
    crossing that gap is re-threaded through a chain of k buffers
    living in k new rows.

    The returned problem keeps the old cells at their placed
    positions (rows renumbered); the new buffers start at the midpoint
    of their connection and the new rows are legalized. *)

val insert : Netlist.t -> Problem.t -> Netlist.t * Problem.t * int
(** [insert nl placed] — [nl] must be the netlist [placed] was built
    from. Returns the expanded netlist, a placed problem for it, and
    the number of buffer lines inserted (0 returns fresh copies of
    the inputs' current state). *)
