(** Detailed placement (paper §III-C3, Fig. 4).

    Local search over a legalized placement that keeps legality
    invariant while lowering a combined wirelength + timing cost:

    - {e shift} moves slide one cell inside the free slot between its
      row neighbors toward the cost-minimizing position (candidates:
      the connection-median, abutting either neighbor, or one [s_min]
      away from either neighbor — the only positions the spacing rule
      allows near the boundaries);
    - {e swap} moves exchange two cells within a row window. With
      [mixed_size = true] (SuperFlow's contribution) the candidates
      may have different widths, accepted whenever both fit their new
      slots; with [mixed_size = false] only equal-width cells swap,
      reproducing the restricted placers of Fig. 4(a) for the
      ablation bench.

    Moves are accepted only when they strictly reduce cost, so the
    search monotonically improves and terminates. *)

type options = {
  lambda_t : float;  (** timing weight relative to wirelength; the
      timing term is Eq. (2) normalized by the row width so both terms
      are in µm *)
  lambda_wmax : float;  (** penalty per µm a net exceeds [w_max] —
      drives down the buffer-line count directly *)
  lambda_slack : float;  (** penalty per ps of per-net timing
      violation (the exact STA slack formula); 0 disables *)
  mixed_size : bool;
  window : int;  (** swap-candidate distance within the row order *)
  max_passes : int;
  seed : int;
}

val default_options : options

val run : ?options:options -> Problem.t -> int
(** Improve the placement in place; returns the number of accepted
    moves. Requires and preserves legality. *)

val cost : Problem.t -> lambda_t:float -> lambda_wmax:float -> lambda_slack:float -> float
(** The cost the search minimizes (exposed for tests: [run] never
    increases it). *)
