(** Simulated-annealing detailed placement.

    A third refinement strategy next to the greedy swap search
    ({!Detailed}) and the exact per-row DP ({!Row_dp}): Metropolis
    moves (random slides within a cell's free slot and random
    same-row swaps, mixed-size allowed) under a geometric cooling
    schedule, with the same cost model ({!Place_cost}).

    Annealing can escape the local optima the greedy search settles
    into, at the price of runtime and non-monotone intermediate
    states; the bench's placement ablation compares the three. The
    final state is the best legal state visited, so the result never
    regresses the input. *)

type options = {
  sweeps : int;  (** moves per cell per temperature step *)
  t_steps : int;  (** temperature steps *)
  t_start_frac : float;  (** initial temperature as a fraction of the
      mean |net cost| — scale-free across designs *)
  cooling : float;  (** geometric decay per step *)
  weights : Place_cost.weights;
  seed : int;
}

val default_options : options

val run : ?options:options -> Problem.t -> int
(** Anneal in place; returns accepted moves. Requires and preserves
    legality; the returned placement is the best state encountered
    (never worse than the input under {!Place_cost.total}). *)
