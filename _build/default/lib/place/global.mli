(** Analytical global placement (paper §III-C2).

    The CPU stand-in for the paper's DREAMPlace engine, in three
    phases, with the row (clock phase) of every cell fixed throughout:

    1. a quadratic wirelength solve (conjugate gradient) as warm
       start;
    2. Adam gradient descent on the smooth objective of Eq. (3): WA
       wirelength + λ_t · four-phase timing (Eq. 2) + λ_w ·
       max-wirelength penalty + an annealed row-density penalty,
       with DREAMPlace-style gradient-norm calibration of the λs;
    3. iterated barycenter-ordering / Abacus-legalization sweeps that
       carry the continuous solution into a legal placement, choosing
       the best legal state under the wirelength+timing cost.

    The result is legal (spacing/grid) and ready for detailed
    placement. *)

type options = {
  iterations : int;  (** Adam steps *)
  learning_rate : float;  (** µm per step scale *)
  timing_weight : float;  (** relative timing-term weight after
      gradient normalization; 0 disables timing awareness *)
  wmax_weight : float;
  density_anneal : float;  (** density-weight growth per Adam step *)
  seed : int;
  verbose : bool;
}

val default_options : options

val run : ?options:options -> Problem.t -> unit
(** Optimize cell positions in place; ends legalized. *)

val barycenter_sweeps :
  ?sweeps:int -> ?timing_bias:float -> ?timing_weight:float -> Problem.t -> unit
(** Phase 3 alone (exposed for the baseline placers and tests): each
    sweep recomputes every cell's barycenter (optionally nudged
    against the timing gradient by [timing_bias]), re-sorts each row,
    legalizes, and keeps the best legal state under
    [hpwl + timing_weight * timing / row_width]. *)
