(** Tetris-like row legalization (paper §III-C2).

    Cells keep their row; within each row they are sorted by their
    (continuous) global-placement position and packed left to right on
    the manufacturing grid, preserving relative order and enforcing
    the AQFP spacing rule: two horizontal neighbors either abut
    exactly or keep at least [s_min]. Positions only ever move right
    of the running cursor, so the result is overlap-free by
    construction. Dead space the greedy sweep introduces is later
    recovered by detailed placement's shift moves. *)

val run : Problem.t -> unit
(** Legalize in place. Postcondition: [Problem.check_legal] holds. *)

val legalize_row : Problem.t -> int -> unit
(** Legalize a single row (used by detailed placement to repair a row
    after an aggressive move). *)
