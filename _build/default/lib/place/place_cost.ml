type weights = { lambda_t : float; lambda_wmax : float; lambda_slack : float }

let default_weights = { lambda_t = 0.3; lambda_wmax = 5.0; lambda_slack = 20.0 }

let net_cost p w ~row_width e =
  let tech = p.Problem.tech in
  let len = Problem.net_length p e in
  let excess = Float.max 0.0 (len -. tech.Tech.w_max) in
  let sc = p.Problem.cells.(e.Problem.src) in
  let xs = sc.Problem.x +. sc.Problem.lib.Cell.out_pins.(e.Problem.src_pin) in
  let dc = p.Problem.cells.(e.Problem.dst) in
  let pins = dc.Problem.lib.Cell.in_pins in
  let xd = dc.Problem.x +. pins.(e.Problem.dst_pin mod Array.length pins) in
  let timing =
    Clocking.timing_cost tech ~row_width ~phase:sc.Problem.row ~x_start:xs
      ~x_end:xd ~alpha:2.0
  in
  let violation =
    if w.lambda_slack = 0.0 then 0.0
    else begin
      let base =
        match ((sc.Problem.row mod 4) + 4) mod 4 with
        | 0 -> xd -. xs
        | 1 -> xd +. xs
        | 2 -> -.xd +. xs
        | 3 -> (2.0 *. row_width) -. xd -. xs
        | _ -> assert false
      in
      let slack =
        Tech.phase_window_ps tech -. tech.Tech.gate_delay_ps
        -. (len /. tech.Tech.signal_velocity)
        -. (Float.max 0.0 base /. tech.Tech.clock_velocity)
      in
      Float.max 0.0 (-.slack)
    end
  in
  len
  +. (w.lambda_t *. timing /. Float.max 1.0 row_width)
  +. (w.lambda_wmax *. excess)
  +. (w.lambda_slack *. violation)

let total p w =
  let row_width = Float.max 1.0 (Problem.row_width p) in
  Array.fold_left (fun acc e -> acc +. net_cost p w ~row_width e) 0.0 p.Problem.nets

let cell_nets p =
  let m = Array.make (Array.length p.Problem.cells) [] in
  Array.iteri
    (fun ni e ->
      m.(e.Problem.src) <- ni :: m.(e.Problem.src);
      if e.Problem.dst <> e.Problem.src then m.(e.Problem.dst) <- ni :: m.(e.Problem.dst))
    p.Problem.nets;
  m
