(** The detailed-placement cost model, shared by the greedy search
    ({!Detailed}), the per-row DP ({!Row_dp} uses a specialized
    moving-endpoint form of the same formula) and the simulated
    annealer ({!Detailed_sa}):

    net cost = manhattan length
             + λ_t · Eq.(2) timing / row_width
             + λ_wmax · max(0, length − w_max)
             + λ_slack · max(0, −slack_ps)          *)

type weights = { lambda_t : float; lambda_wmax : float; lambda_slack : float }

val default_weights : weights

val net_cost : Problem.t -> weights -> row_width:float -> Problem.net -> float

val total : Problem.t -> weights -> float
(** Σ over all nets at the current positions. *)

val cell_nets : Problem.t -> int list array
(** Net indices touching each cell. *)
