(** Placement drivers: the three pipelines compared in Table III. *)

type algorithm = Superflow | Gordian | Taas

val algorithm_name : algorithm -> string

type result = {
  algorithm : algorithm;
  hpwl : float;  (** µm *)
  buffer_lines : int;  (** max-wirelength buffer rows (Table III "Buffers") *)
  timing_cost : float;  (** Eq. (2) total, µm² *)
  runtime_s : float;
  moves : int;  (** detailed-placement moves accepted (SuperFlow only) *)
}

val place : ?seed:int -> algorithm -> Problem.t -> result
(** Run one placement pipeline on the problem (mutates positions;
    result is legalized — checked). SuperFlow = timing-aware
    analytical global placement + Tetris legalization + mixed-size
    detailed placement. *)

val pp_result : Format.formatter -> result -> unit
