(** AQFP row-wise placement problem (paper §III-C1).

    A placement instance is derived from a balanced AQFP netlist:
    every node (including input/output ports) becomes a cell whose
    row equals its clock phase; a net is one point-to-point fan-in
    connection (AQFP fan-out is 1 after splitter insertion, so every
    net has exactly two pins). Placement only optimizes the x
    coordinate of each cell — the row is fixed by the clocking
    architecture.

    Geometry: row [r]'s top edge sits at [y = r * row_pitch]; cells
    are top-aligned within their row (their input pins face the
    previous phase above). All coordinates are µm. *)

type cell = {
  node : int;  (** originating netlist node id *)
  kind : Netlist.kind;
  lib : Cell.t;  (** library cell (dimensions, pins, JJs) *)
  row : int;  (** clock phase *)
  mutable x : float;  (** lower-left x, µm *)
}

type net = {
  src : int;  (** driving cell index *)
  dst : int;  (** sinking cell index *)
  src_pin : int;  (** output-pin index on the driver *)
  dst_pin : int;  (** fan-in index on the sink *)
}

type t = {
  tech : Tech.t;
  cells : cell array;
  nets : net array;
  n_rows : int;
  row_cells : int array array;  (** cell indices per row *)
  mutable row_gaps : float array;  (** routing gap below each row, µm
      (initially [tech.row_gap]; grown by the router's space expansion) *)
  row_height : float;  (** uniform row height (max cell height), µm *)
}

val of_netlist : Tech.t -> Netlist.t -> t
(** Build an instance from a balanced AQFP netlist (raises
    [Invalid_argument] if the netlist is not balanced). Cells receive
    an initial left-packed position within their row. *)

val row_pitch : t -> int -> float
(** Vertical pitch below row [r]: [row_height + row_gaps.(r)]. *)

val row_top : t -> int -> float
(** y coordinate of row [r]'s top edge (accumulates expanded gaps). *)

val row_width : t -> float
(** Current chip width: max over rows of occupied extent (µm). *)

val pin_x : t -> int -> [ `Src | `Dst ] -> float
(** Absolute x of a net's driver or sink pin. *)

val net_dx : t -> net -> float
(** Signed horizontal pin distance [x_dst - x_src] of a net. *)

val net_dy : t -> net -> float
(** Vertical pin distance of a net (driver's bottom edge to sink's top
    edge; positive). *)

val hpwl : t -> float
(** Total placement wirelength Σ |dx|, µm. Placement only moves cells
    horizontally (rows are pinned to clock phases), so, as in the
    paper's Table III, the metric is the horizontal span; the vertical
    component is fixed by the row structure and is accounted for in
    {!net_length} (used for the max-wirelength rule and routing). *)

val net_length : t -> net -> float
(** Manhattan length |dx| + dy of one net. *)

val timing_cost : t -> ?alpha:float -> unit -> float
(** The paper's Eq. (2) four-phase timing cost summed over all nets
    (α defaults to 2). *)

val buffer_lines : t -> int
(** Rows of max-wirelength buffers that would have to be inserted:
    for each adjacent row pair, [max(0, ceil(Lmax / w_max) - 1)]
    where [Lmax] is the longest net crossing that gap (paper
    §II-C(ii); the "Buffers" column of Table III). *)

val max_net_length : t -> float

val check_legal : t -> (unit, string) result
(** Verify spacing/overlap/grid constraints of the current positions:
    no two cells in a row overlap, horizontal neighbors either abut or
    keep [s_min], and every x is on the manufacturing grid. *)

val copy_positions : t -> float array

val restore_positions : t -> float array -> unit

val jj_count : t -> int
(** Total JJs over all placed cells. *)

val pp_summary : Format.formatter -> t -> unit
