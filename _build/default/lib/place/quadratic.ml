let spread_anchors p =
  let anchors = Array.make (Array.length p.Problem.cells) 0.0 in
  (* estimated chip width: widest row at abutted packing + slack *)
  let est_width =
    Array.fold_left
      (fun acc row ->
        let w =
          Array.fold_left
            (fun a ci -> a +. p.Problem.cells.(ci).Problem.lib.Cell.width)
            0.0 row
        in
        Float.max acc w)
      1.0 p.Problem.row_cells
  in
  let est_width = est_width *. 1.2 in
  Array.iter
    (fun row ->
      let n = Array.length row in
      Array.iteri
        (fun i ci ->
          let c = p.Problem.cells.(ci) in
          anchors.(ci) <-
            (est_width *. (float_of_int i +. 0.5) /. float_of_int (max 1 n))
            -. (c.Problem.lib.Cell.width /. 2.0))
        row)
    p.Problem.row_cells;
  anchors

(* y := A x where A is the quadratic form's Hessian (Laplacian of the
   weighted net graph + anchor diagonal). *)
let apply p ~net_weight ~anchor_weight x y =
  Array.fill y 0 (Array.length y) 0.0;
  Array.iteri
    (fun ni e ->
      let w = net_weight ni in
      let s = e.Problem.src and d = e.Problem.dst in
      let diff = x.(s) -. x.(d) in
      y.(s) <- y.(s) +. (w *. diff);
      y.(d) <- y.(d) -. (w *. diff))
    p.Problem.nets;
  Array.iteri (fun i xi -> y.(i) <- y.(i) +. (anchor_weight *. xi)) x

(* right-hand side: anchor pull + pin-offset corrections *)
let rhs p ~net_weight ~anchor_weight anchors =
  let b = Array.map (fun a -> anchor_weight *. a) anchors in
  Array.iteri
    (fun ni e ->
      let w = net_weight ni in
      let sc = p.Problem.cells.(e.Problem.src) in
      let dc = p.Problem.cells.(e.Problem.dst) in
      let o_s = sc.Problem.lib.Cell.out_pins.(e.Problem.src_pin) in
      let pins = dc.Problem.lib.Cell.in_pins in
      let o_d = pins.(e.Problem.dst_pin mod Array.length pins) in
      (* net term: w (x_s + o_s - x_d - o_d)^2; offset constant moves
         to the rhs *)
      let off = o_s -. o_d in
      b.(e.Problem.src) <- b.(e.Problem.src) -. (w *. off);
      b.(e.Problem.dst) <- b.(e.Problem.dst) +. (w *. off))
    p.Problem.nets;
  b

let solve ?(iterations = 200) ?(anchor_weight = 0.01) p ~net_weight =
  let n = Array.length p.Problem.cells in
  if n > 0 then begin
    let anchors = spread_anchors p in
    let x = Array.map (fun c -> c.Problem.x) p.Problem.cells in
    let b = rhs p ~net_weight ~anchor_weight anchors in
    let ax = Array.make n 0.0 in
    apply p ~net_weight ~anchor_weight x ax;
    let r = Array.init n (fun i -> b.(i) -. ax.(i)) in
    let d = Array.copy r in
    let q = Array.make n 0.0 in
    let dot a b =
      let acc = ref 0.0 in
      Array.iteri (fun i ai -> acc := !acc +. (ai *. b.(i))) a;
      !acc
    in
    let rr = ref (dot r r) in
    let k = ref 0 in
    while !k < iterations && !rr > 1e-6 do
      apply p ~net_weight ~anchor_weight d q;
      let alpha = !rr /. Float.max 1e-30 (dot d q) in
      for i = 0 to n - 1 do
        x.(i) <- x.(i) +. (alpha *. d.(i));
        r.(i) <- r.(i) -. (alpha *. q.(i))
      done;
      let rr' = dot r r in
      let beta = rr' /. Float.max 1e-30 !rr in
      for i = 0 to n - 1 do
        d.(i) <- r.(i) +. (beta *. d.(i))
      done;
      rr := rr';
      incr k
    done;
    Array.iteri
      (fun i c -> c.Problem.x <- Float.max 0.0 x.(i))
      p.Problem.cells
  end
