(** Matrix-free quadratic placement engine shared by the GORDIAN-based
    and TAAS baseline placers.

    Minimizes Σ_e w_e (x_src + o_src − x_dst − o_dst)² + a Σ_i (x_i −
    anchor_i)² over cell x positions, where [o] are pin offsets. The
    anchor term (a weak pull toward an even spread inside each row)
    plays the role of GORDIAN's partitioning constraints: without it
    the unconstrained quadratic form is singular and all cells
    collapse to a point. Solved by conjugate gradient on the normal
    equations, which are symmetric positive definite thanks to the
    anchors. *)

val solve :
  ?iterations:int ->
  ?anchor_weight:float ->
  Problem.t ->
  net_weight:(int -> float) ->
  unit
(** [solve p ~net_weight] updates cell positions in place;
    [net_weight i] weighs net [i] (1.0 = plain wirelength). Positions
    are continuous; run {!Legalize.run} afterwards. *)

val spread_anchors : Problem.t -> float array
(** The anchor positions used: cells evenly spread across their row in
    current row order. *)
