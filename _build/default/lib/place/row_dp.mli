(** Optimal single-row placement by shortest path (paper §III-C3).

    The paper notes that because AQFP cells live in dedicated rows, "a
    straightforward method is to transform detailed placement to the
    shortest path problem" (citing Dhar et al.). This module is that
    transform, exact for one row at a time: with the cell order fixed
    and every other row frozen, the optimal grid positions of a row's
    cells minimize

      Σ_cells Σ_nets (|dx| + λ_t·Eq.(2)/row_width + λ_wmax·excess +
                      λ_slack·violation)

    subject to the AQFP spacing rule. The DP state is (cell index,
    grid position); the spacing rule makes exactly two transition
    classes legal — abut the previous cell, or leave at least s_min —
    and a running prefix-minimum over the second class keeps the whole
    sweep O(cells × positions).

    Since the current placement is itself a feasible solution of the
    DP, a sweep never increases the cost; it is used as the polish
    pass after the swap-based {!Detailed} search. *)

type options = {
  lambda_t : float;
  lambda_wmax : float;
  lambda_slack : float;
  margin : float;  (** extra µm of position domain beyond the row width *)
  passes : int;  (** alternating bottom-up/top-down row sweeps *)
}

val default_options : options

val optimize_row : ?options:options -> Problem.t -> int -> bool
(** Optimally re-place one row (fixed order, everything else frozen).
    Returns true if the row changed. Preserves legality. *)

val run : ?options:options -> Problem.t -> int
(** Sweep all rows for [passes] passes; returns the number of row
    improvements. Requires and preserves legality. *)
