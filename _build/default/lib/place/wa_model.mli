(** Smooth placement objective: weighted-average (WA) wirelength model
    plus the four-phase timing cost and the max-wirelength penalty of
    the paper's Eq. (3), with analytic gradients with respect to each
    cell's x coordinate.

    The WA model replaces the non-smooth HPWL max/min with
    exponentially-weighted averages (smoothing parameter [gamma], µm):
    larger [gamma] = smoother but less accurate. This is the same
    model DREAMPlace uses; with AQFP's 2-pin nets it degenerates to a
    smooth |dx|. *)

type weights = {
  lambda_t : float;  (** timing-cost weight (λ_t of Eq. 1) *)
  lambda_w : float;  (** max-wirelength penalty weight (λ_w of Eq. 3) *)
  lambda_d : float;  (** row-density (overlap) penalty weight *)
  gamma : float;  (** WA smoothing, µm *)
  alpha : float;  (** timing exponent (paper sets 2) *)
}

val default_weights : Tech.t -> weights

val cost_and_grad : Problem.t -> weights -> float array -> float * float array
(** [cost_and_grad p w xs] evaluates the full objective at cell
    positions [xs] (indexed like [p.cells]) and returns the cost and
    its gradient. [xs] is not modified; the problem's stored positions
    are ignored. *)

val wa_wirelength : Problem.t -> gamma:float -> float array -> float
(** The WA wirelength term alone (for tests: must upper-bound HPWL and
    approach it as gamma shrinks). *)
