lib/route/congestion.ml: Array Float List Problem Table Tech
