lib/route/congestion.mli: Problem
