lib/route/router.ml: Array Cell Float Hashtbl List Option Pqueue Printf Problem String Sys Tech
