lib/route/router.mli: Problem Stdlib
