(** Routing-demand estimation before routing.

    The router grows a channel lazily: fail, expand by s_min, retry —
    which re-routes the whole pair per step. Channel demand is
    predictable from the placement, so this module sizes channels
    up-front: for each row gap it computes the {e channel density}
    (the maximum number of nets whose horizontal spans cover a common
    x), which lower-bounds the horizontal tracks needed, and widens
    the gap to fit that many tracks before the router starts. The
    router's expansion loop remains as the safety net for what the
    estimate misses (via detours, pin congestion).

    This is a deliberate extension beyond the paper (which only
    expands reactively); the bench's router ablation quantifies the
    saved expansions. *)

val channel_density : Problem.t -> int -> int
(** [channel_density p r] — maximum overlap count of the horizontal
    spans of the nets crossing gap [r]. *)

val densities : Problem.t -> int array
(** Per-gap channel densities (length [n_rows - 1]). *)

val preexpand : ?slack_tracks:int -> ?demand_factor:float -> Problem.t -> int
(** Widen each row gap so it offers at least
    [demand_factor * density + slack_tracks] horizontal tracks
    (defaults 0.85 and 0: density is a worst-case bound, and most nets
    share tracks over disjoint spans, so provisioning a fraction and
    letting reactive expansion absorb the rest gives the best
    wirelength/runtime balance). Returns the number of gaps widened;
    gaps never shrink. *)

val report : Problem.t -> string
(** ASCII per-gap demand/capacity table (CLI and debugging aid). *)
