lib/rtl/verilog.ml: Array Hashtbl List Netlist Printf Result String
