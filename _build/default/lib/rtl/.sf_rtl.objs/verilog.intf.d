lib/rtl/verilog.mli: Netlist
