lib/rtl/verilog_writer.ml: Array Buffer Hashtbl List Netlist Printf String
