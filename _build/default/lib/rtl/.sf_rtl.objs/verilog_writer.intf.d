lib/rtl/verilog_writer.mli: Netlist
