(* Lexer *)

type token =
  | T_ident of string
  | T_number of int
  | T_literal of bool list (* bit literal, LSB first *)
  | T_kw of string
  | T_sym of char
  | T_eof

exception Error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

let keywords =
  [ "module"; "endmodule"; "input"; "output"; "wire"; "assign";
    "and"; "or"; "nand"; "nor"; "xor"; "xnor"; "not"; "buf";
    (* recognized but unsupported — rejected with a clear message *)
    "always"; "reg"; "initial"; "case"; "if"; "else"; "begin"; "end";
    "posedge"; "negedge"; "parameter"; "function" ]

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c || c = '$'

type lexer = { src : string; mutable pos : int; mutable line : int }

let rec skip_ws lx =
  let n = String.length lx.src in
  if lx.pos >= n then ()
  else
    match lx.src.[lx.pos] with
    | ' ' | '\t' | '\r' ->
        lx.pos <- lx.pos + 1;
        skip_ws lx
    | '\n' ->
        lx.pos <- lx.pos + 1;
        lx.line <- lx.line + 1;
        skip_ws lx
    | '/' when lx.pos + 1 < n && lx.src.[lx.pos + 1] = '/' ->
        while lx.pos < n && lx.src.[lx.pos] <> '\n' do
          lx.pos <- lx.pos + 1
        done;
        skip_ws lx
    | '/' when lx.pos + 1 < n && lx.src.[lx.pos + 1] = '*' ->
        lx.pos <- lx.pos + 2;
        let rec close () =
          if lx.pos + 1 >= n then fail "line %d: unterminated comment" lx.line
          else if lx.src.[lx.pos] = '*' && lx.src.[lx.pos + 1] = '/' then
            lx.pos <- lx.pos + 2
          else begin
            if lx.src.[lx.pos] = '\n' then lx.line <- lx.line + 1;
            lx.pos <- lx.pos + 1;
            close ()
          end
        in
        close ();
        skip_ws lx
    | _ -> ()

let read_number lx =
  let start = lx.pos in
  while lx.pos < String.length lx.src && is_digit lx.src.[lx.pos] do
    lx.pos <- lx.pos + 1
  done;
  int_of_string (String.sub lx.src start (lx.pos - start))

let next_token lx =
  skip_ws lx;
  let n = String.length lx.src in
  if lx.pos >= n then T_eof
  else
    let c = lx.src.[lx.pos] in
    if is_ident_start c then begin
      let start = lx.pos in
      while lx.pos < n && is_ident_char lx.src.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      let word = String.sub lx.src start (lx.pos - start) in
      if List.mem word keywords then T_kw word else T_ident word
    end
    else if is_digit c then begin
      let value = read_number lx in
      if lx.pos < n && lx.src.[lx.pos] = '\'' then begin
        lx.pos <- lx.pos + 1;
        if lx.pos >= n || (lx.src.[lx.pos] <> 'b' && lx.src.[lx.pos] <> 'B') then
          fail "line %d: only binary literals (N'b...) are supported" lx.line;
        lx.pos <- lx.pos + 1;
        let bits = ref [] in
        while
          lx.pos < n
          && (lx.src.[lx.pos] = '0' || lx.src.[lx.pos] = '1' || lx.src.[lx.pos] = '_')
        do
          (match lx.src.[lx.pos] with
          | '0' -> bits := false :: !bits
          | '1' -> bits := true :: !bits
          | _ -> ());
          lx.pos <- lx.pos + 1
        done;
        (* source is MSB first; !bits is already reversed = LSB first *)
        let bits = !bits in
        if List.length bits <> value then
          fail "line %d: literal width %d does not match %d digits" lx.line value
            (List.length bits);
        T_literal bits
      end
      else T_number value
    end
    else begin
      lx.pos <- lx.pos + 1;
      T_sym c
    end

(* Parser state: one-token lookahead. *)

type parser_state = { lx : lexer; mutable tok : token }

let advance ps = ps.tok <- next_token ps.lx

let expect_sym ps c =
  match ps.tok with
  | T_sym s when s = c -> advance ps
  | _ -> fail "line %d: expected '%c'" ps.lx.line c

let expect_kw ps kw =
  match ps.tok with
  | T_kw k when k = kw -> advance ps
  | _ -> fail "line %d: expected '%s'" ps.lx.line kw

let expect_ident ps =
  match ps.tok with
  | T_ident id ->
      advance ps;
      id
  | T_kw k -> fail "line %d: keyword '%s' used as identifier" ps.lx.line k
  | _ -> fail "line %d: expected identifier" ps.lx.line

(* AST *)

type expr =
  | E_ref of string (* whole signal (scalar or vector) *)
  | E_bit of string * int
  | E_const of bool list (* LSB first; scalar constant = single bit *)
  | E_not of expr
  | E_and of expr * expr
  | E_or of expr * expr
  | E_xor of expr * expr
  | E_concat of expr list (* verilog order: head = MSB *)
  | E_repl of int * expr

type stmt =
  | S_assign of string * int option * expr (* lhs, optional bit index *)
  | S_gate of string * string list (* primitive kind, out :: inputs *)
  | S_inst of string * string * (string * int option) list
      (* submodule name, instance name, positional connections
         (signal, optional bit-select) *)

type decl = { dname : string; width : int } (* width >= 1; bit i = name[i] *)

type modul = {
  mname : string;
  ports : string list;
  inputs : decl list;
  outputs : decl list;
  wires : decl list;
  stmts : stmt list;
}

let parse_range ps =
  match ps.tok with
  | T_sym '[' ->
      advance ps;
      let msb = match ps.tok with
        | T_number v -> advance ps; v
        | _ -> fail "line %d: expected number in range" ps.lx.line
      in
      expect_sym ps ':';
      let lsb = match ps.tok with
        | T_number v -> advance ps; v
        | _ -> fail "line %d: expected number in range" ps.lx.line
      in
      expect_sym ps ']';
      if lsb <> 0 then fail "line %d: only [msb:0] ranges are supported" ps.lx.line;
      msb + 1
  | _ -> 1

let rec parse_primary ps =
  match ps.tok with
  | T_sym '{' ->
      advance ps;
      (* either a concatenation {a, b, ...} or a replication {N{x}} *)
      (match ps.tok with
      | T_number n ->
          advance ps;
          expect_sym ps '{';
          let e = parse_or ps in
          expect_sym ps '}';
          expect_sym ps '}';
          E_repl (n, e)
      | _ ->
          let rec items acc =
            let e = parse_or ps in
            match ps.tok with
            | T_sym ',' ->
                advance ps;
                items (e :: acc)
            | T_sym '}' ->
                advance ps;
                List.rev (e :: acc)
            | _ -> fail "line %d: expected ',' or '}' in concatenation" ps.lx.line
          in
          E_concat (items []))
  | T_sym '(' ->
      advance ps;
      let e = parse_or ps in
      expect_sym ps ')';
      e
  | T_sym '~' ->
      advance ps;
      E_not (parse_primary ps)
  | T_literal bits ->
      advance ps;
      E_const bits
  | T_ident id ->
      advance ps;
      (match ps.tok with
      | T_sym '[' ->
          advance ps;
          let idx = match ps.tok with
            | T_number v -> advance ps; v
            | _ -> fail "line %d: expected bit index" ps.lx.line
          in
          expect_sym ps ']';
          E_bit (id, idx)
      | _ -> E_ref id)
  | _ -> fail "line %d: expected expression" ps.lx.line

and parse_and ps =
  let rec loop acc =
    match ps.tok with
    | T_sym '&' ->
        advance ps;
        loop (E_and (acc, parse_primary ps))
    | _ -> acc
  in
  loop (parse_primary ps)

and parse_xor ps =
  let rec loop acc =
    match ps.tok with
    | T_sym '^' ->
        advance ps;
        loop (E_xor (acc, parse_and ps))
    | _ -> acc
  in
  loop (parse_and ps)

and parse_or ps =
  let rec loop acc =
    match ps.tok with
    | T_sym '|' ->
        advance ps;
        loop (E_or (acc, parse_xor ps))
    | _ -> acc
  in
  loop (parse_xor ps)

let parse_decl_names ps =
  let rec loop acc =
    let name = expect_ident ps in
    match ps.tok with
    | T_sym ',' ->
        advance ps;
        loop (name :: acc)
    | _ -> List.rev (name :: acc)
  in
  loop []

let parse_module ps =
  expect_kw ps "module";
  let module_name = expect_ident ps in
  expect_sym ps '(';
  let ports =
    match ps.tok with
    | T_sym ')' -> []
    | _ -> parse_decl_names ps
  in
  expect_sym ps ')';
  expect_sym ps ';';
  let inputs = ref [] and outputs = ref [] and wires = ref [] in
  let stmts = ref [] in
  let rec body () =
    match ps.tok with
    | T_kw "endmodule" -> advance ps
    | T_kw (("input" | "output" | "wire") as dk) ->
        advance ps;
        let width = parse_range ps in
        let names = parse_decl_names ps in
        expect_sym ps ';';
        let decls = List.map (fun dname -> { dname; width }) names in
        (match dk with
        | "input" -> inputs := !inputs @ decls
        | "output" -> outputs := !outputs @ decls
        | _ -> wires := !wires @ decls);
        body ()
    | T_kw "assign" ->
        advance ps;
        let lhs = expect_ident ps in
        let idx =
          match ps.tok with
          | T_sym '[' ->
              advance ps;
              let i = match ps.tok with
                | T_number v -> advance ps; v
                | _ -> fail "line %d: expected bit index" ps.lx.line
              in
              expect_sym ps ']';
              Some i
          | _ -> None
        in
        expect_sym ps '=';
        let e = parse_or ps in
        expect_sym ps ';';
        stmts := S_assign (lhs, idx, e) :: !stmts;
        body ()
    | T_kw (("and" | "or" | "nand" | "nor" | "xor" | "xnor" | "not" | "buf") as g) ->
        advance ps;
        (* optional instance name *)
        (match ps.tok with T_ident _ -> advance ps | _ -> ());
        expect_sym ps '(';
        let args = parse_decl_names ps in
        expect_sym ps ')';
        expect_sym ps ';';
        stmts := S_gate (g, args) :: !stmts;
        body ()
    | T_ident sub ->
        (* positional submodule instantiation: sub u1 (a, b[0], y); *)
        advance ps;
        let iname = expect_ident ps in
        expect_sym ps '(';
        let rec conns acc =
          let name = expect_ident ps in
          let idx =
            match ps.tok with
            | T_sym '[' ->
                advance ps;
                let i =
                  match ps.tok with
                  | T_number v ->
                      advance ps;
                      v
                  | _ -> fail "line %d: expected bit index" ps.lx.line
                in
                expect_sym ps ']';
                Some i
            | _ -> None
          in
          match ps.tok with
          | T_sym ',' ->
              advance ps;
              conns ((name, idx) :: acc)
          | _ -> List.rev ((name, idx) :: acc)
        in
        let args = conns [] in
        expect_sym ps ')';
        expect_sym ps ';';
        stmts := S_inst (sub, iname, args) :: !stmts;
        body ()
    | T_eof -> fail "line %d: missing endmodule" ps.lx.line
    | T_kw kw -> fail "line %d: unsupported construct '%s'" ps.lx.line kw
    | _ -> fail "line %d: unexpected token" ps.lx.line
  in
  body ();
  {
    mname = module_name;
    ports;
    inputs = !inputs;
    outputs = !outputs;
    wires = !wires;
    stmts = List.rev !stmts;
  }

(* A source file holds one or more modules; the LAST one is the top. *)
let parse_source src =
  let ps = { lx = { src; pos = 0; line = 1 }; tok = T_eof } in
  advance ps;
  let rec loop acc =
    match ps.tok with
    | T_eof ->
        if acc = [] then fail "no module found";
        List.rev acc
    | _ -> loop (parse_module ps :: acc)
  in
  loop []

(* Elaboration: resolve each signal bit to a netlist node, lazily, so
   statement order does not matter (like real HDL). [elab_module]
   emits one module's logic into a shared netlist, given pre-resolved
   nodes for its input ports, and returns the nodes of its output
   ports — instantiation is flattening by recursion. *)

type instance_info = { sub : modul; conns : (string * int option) list }

let rec elab_module ~modules ~depth nl m (input_nodes : int array array) :
    int array array =
  if depth > 64 then fail "instantiation of %s too deep (recursive modules?)" m.mname;
  let widths = Hashtbl.create 16 in
  List.iter
    (fun d ->
      if Hashtbl.mem widths d.dname then
        fail "%s: duplicate declaration %s" m.mname d.dname;
      Hashtbl.replace widths d.dname d.width)
    (m.inputs @ m.outputs @ m.wires);
  List.iter
    (fun p ->
      if not (Hashtbl.mem widths p) then fail "%s: port %s undeclared" m.mname p)
    m.ports;
  let width_of name =
    match Hashtbl.find_opt widths name with
    | Some w -> w
    | None -> fail "%s: undeclared signal %s" m.mname name
  in
  (* Driver table: (name, bit) -> how to compute it. *)
  let drivers :
      ( string * int,
        [ `Expr of expr * int
        | `Gate of string * string list
        | `Inst of string * int (* instance id, output-port bit offset *) ] )
      Hashtbl.t =
    Hashtbl.create 64
  in
  let declare_driver name bit d =
    if Hashtbl.mem drivers (name, bit) then
      fail "%s: multiple drivers for %s[%d]" m.mname name bit;
    Hashtbl.replace drivers (name, bit) d
  in
  let instances : (string, instance_info) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (function
      | S_assign (lhs, Some i, e) ->
          if i >= width_of lhs then
            fail "%s: assign index %s[%d] out of range" m.mname lhs i;
          declare_driver lhs i (`Expr (e, -1))
      | S_assign (lhs, None, e) ->
          let w = width_of lhs in
          (* static width check: every vector operand must match the lhs *)
          let rec concat_width = function
            | E_ref name -> width_of name
            | E_bit _ -> 1
            | E_const bits -> List.length bits
            | E_not a -> concat_width a
            | E_and (a, b) | E_or (a, b) | E_xor (a, b) ->
                max (concat_width a) (concat_width b)
            | E_concat parts ->
                List.fold_left (fun acc p -> acc + concat_width p) 0 parts
            | E_repl (n, a) -> n * concat_width a
          in
          let rec check = function
            | E_ref name ->
                let wr = width_of name in
                if wr <> 1 && w = 1 then
                  fail "vector %s used in scalar assign to %s" name lhs;
                if wr <> 1 && wr <> w then
                  fail "width mismatch: %s is %d bits, %s is %d" name wr lhs w
            | E_bit (name, _) -> ignore (width_of name)
            | E_const bits ->
                let wl = List.length bits in
                if wl <> 1 && wl <> w then
                  fail "literal width %d does not match %s" wl lhs
            | E_not a -> check a
            | E_and (a, b) | E_or (a, b) | E_xor (a, b) ->
                check a;
                check b
            | E_concat _ as c ->
                let wc = concat_width c in
                if wc <> w then fail "concatenation is %d bits but %s is %d" wc lhs w
            | E_repl (_, _) as r ->
                let wr = concat_width r in
                if wr <> 1 && wr <> w then
                  fail "replication is %d bits but %s is %d" wr lhs w
          in
          check e;
          for i = 0 to w - 1 do
            declare_driver lhs i (`Expr (e, i))
          done
      | S_gate (g, out :: ins) ->
          if width_of out <> 1 then fail "gate output %s must be scalar" out;
          List.iter
            (fun i -> if width_of i <> 1 then fail "gate input %s must be scalar" i)
            ins;
          if ins = [] then fail "gate %s has no inputs" g;
          declare_driver out 0 (`Gate (g, ins))
      | S_gate (_, []) -> fail "gate with no connections"
      | S_inst (sub_name, iname, conns) ->
          let sub =
            match Hashtbl.find_opt modules sub_name with
            | Some sub -> sub
            | None -> fail "%s: unknown module %s" m.mname sub_name
          in
          if Hashtbl.mem instances iname then
            fail "%s: duplicate instance name %s" m.mname iname;
          if List.length conns <> List.length sub.ports then
            fail "%s: instance %s connects %d ports, %s has %d" m.mname iname
              (List.length conns) sub_name (List.length sub.ports);
          Hashtbl.replace instances iname { sub; conns };
          (* output ports of the submodule drive the connected parent
             signals; record the bit offset into the sub's flattened
             output vector *)
          let conn_width (name, idx) =
            match idx with
            | Some i ->
                if i >= width_of name then
                  fail "%s: bit select %s[%d] out of range" m.mname name i;
                1
            | None -> width_of name
          in
          let offset = ref 0 in
          List.iter2
            (fun port conn ->
              let cname, cidx = conn in
              match List.find_opt (fun d -> d.dname = port) sub.outputs with
              | Some d ->
                  if conn_width conn <> d.width then
                    fail "%s: instance %s port %s is %d bits, signal %s is %d"
                      m.mname iname port d.width cname (conn_width conn);
                  for bit = 0 to d.width - 1 do
                    let target_bit =
                      match cidx with Some i -> i | None -> bit
                    in
                    declare_driver cname target_bit (`Inst (iname, !offset + bit))
                  done;
                  offset := !offset + d.width
              | None -> (
                  (* must be an input port; width checked at resolution *)
                  match List.find_opt (fun d -> d.dname = port) sub.inputs with
                  | Some d ->
                      if conn_width conn <> d.width then
                        fail "%s: instance %s port %s is %d bits, signal %s is %d"
                          m.mname iname port d.width cname (conn_width conn)
                  | None -> fail "%s: %s has no port %s" m.mname sub_name port))
            sub.ports conns)
    m.stmts;
  (* Input ports come pre-resolved from the caller. *)
  let resolved : (string * int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun k d ->
      let nodes = input_nodes.(k) in
      if Array.length nodes <> d.width then
        fail "%s: input %s expects %d bits, got %d" m.mname d.dname d.width
          (Array.length nodes);
      Array.iteri (fun i id -> Hashtbl.replace resolved (d.dname, i) id) nodes)
    m.inputs;
  let inst_results : (string, int array) Hashtbl.t = Hashtbl.create 8 in
  let rec tree mk = function
    | [] -> assert false
    | [ x ] -> x
    | ids ->
        let rec take k = function
          | rest when k = 0 -> ([], rest)
          | [] -> ([], [])
          | x :: rest ->
              let l, r = take (k - 1) rest in
              (x :: l, r)
        in
        let half = List.length ids / 2 in
        let l, r = take half ids in
        mk (tree mk l) (tree mk r)
  in
  let rec resolve_bit stack name bit =
    match Hashtbl.find_opt resolved (name, bit) with
    | Some id -> id
    | None ->
        if List.mem (name, bit) stack then
          fail "combinational cycle through %s[%d]" name bit;
        let stack = (name, bit) :: stack in
        let id =
          match Hashtbl.find_opt drivers (name, bit) with
          | None -> fail "signal %s[%d] is never driven" name bit
          | Some (`Expr (e, vec_bit)) -> elab_expr stack vec_bit e
          | Some (`Gate (g, ins)) ->
              let in_ids = List.map (fun i -> resolve_bit stack i 0) ins in
              let mk2 k a b = Netlist.add nl k [| a; b |] in
              (match (g, in_ids) with
              | "not", [ a ] -> Netlist.add nl Netlist.Not [| a |]
              | "buf", [ a ] -> Netlist.add nl Netlist.Buf [| a |]
              | "not", _ | "buf", _ -> fail "%s takes exactly one input" g
              | "and", ids -> tree (mk2 Netlist.And) ids
              | "or", ids -> tree (mk2 Netlist.Or) ids
              | "xor", ids -> tree (mk2 Netlist.Xor) ids
              | "nand", [ a; b ] -> Netlist.add nl Netlist.Nand [| a; b |]
              | "nor", [ a; b ] -> Netlist.add nl Netlist.Nor [| a; b |]
              | "xnor", [ a; b ] -> Netlist.add nl Netlist.Xnor [| a; b |]
              | "nand", ids -> Netlist.add nl Netlist.Not [| tree (mk2 Netlist.And) ids |]
              | "nor", ids -> Netlist.add nl Netlist.Not [| tree (mk2 Netlist.Or) ids |]
              | "xnor", ids -> Netlist.add nl Netlist.Not [| tree (mk2 Netlist.Xor) ids |]
              | _ -> fail "unknown gate %s" g)
          | Some (`Inst (iname, out_offset)) ->
              let outs = elab_instance stack iname in
              outs.(out_offset)
        in
        Hashtbl.replace resolved (name, bit) id;
        id
  (* flatten one instance on first demand: resolve its input
     connections in the parent, recurse, memoize the flattened output
     bit vector *)
  and elab_instance stack iname =
    match Hashtbl.find_opt inst_results iname with
    | Some outs -> outs
    | None ->
        let info = Hashtbl.find instances iname in
        let sub = info.sub in
        let inputs =
          List.map
            (fun d ->
              (* positional: find the connection bound to this input *)
              let cname, cidx =
                let rec find ports conns =
                  match (ports, conns) with
                  | p :: _, c :: _ when p = d.dname -> c
                  | _ :: ps, _ :: cs -> find ps cs
                  | _ -> fail "instance %s: no connection for %s" iname d.dname
                in
                find sub.ports info.conns
              in
              Array.init d.width (fun bit ->
                  let src_bit = match cidx with Some i -> i | None -> bit in
                  resolve_bit stack cname src_bit))
            sub.inputs
        in
        let outs_nested =
          elab_module ~modules ~depth:(depth + 1) nl sub (Array.of_list inputs)
        in
        let outs = Array.concat (Array.to_list outs_nested) in
        Hashtbl.replace inst_results iname outs;
        outs
  (* static width of an expression: scalars are 1; vectors carry their
     declared width; concatenations sum *)
  and expr_width e =
    match e with
    | E_ref name -> width_of name
    | E_bit _ -> 1
    | E_const bits -> List.length bits
    | E_not a -> expr_width a
    | E_and (a, b) | E_or (a, b) | E_xor (a, b) -> max (expr_width a) (expr_width b)
    | E_concat parts -> List.fold_left (fun acc p -> acc + expr_width p) 0 parts
    | E_repl (n, a) -> n * expr_width a
  (* vec_bit = -1 means "scalar context"; otherwise select that bit of
     vector operands (bitwise semantics of assigns). *)
  and elab_expr stack vec_bit e =
    let mk2 k a b = Netlist.add nl k [| a; b |] in
    match e with
    | E_ref name ->
        let w = width_of name in
        if w = 1 then resolve_bit stack name 0
        else if vec_bit < 0 then fail "vector %s used in scalar context" name
        else if vec_bit >= w then fail "width mismatch on %s" name
        else resolve_bit stack name vec_bit
    | E_bit (name, i) ->
        if i >= width_of name then fail "bit select %s[%d] out of range" name i;
        resolve_bit stack name i
    | E_const bits ->
        let b =
          match bits with
          | [ b ] -> b
          | _ when vec_bit >= 0 && vec_bit < List.length bits -> List.nth bits vec_bit
          | _ -> fail "literal width mismatch"
        in
        Netlist.add nl (Netlist.Const b) [||]
    | E_not a -> Netlist.add nl Netlist.Not [| elab_expr stack vec_bit a |]
    | E_and (a, b) -> mk2 Netlist.And (elab_expr stack vec_bit a) (elab_expr stack vec_bit b)
    | E_or (a, b) -> mk2 Netlist.Or (elab_expr stack vec_bit a) (elab_expr stack vec_bit b)
    | E_xor (a, b) -> mk2 Netlist.Xor (elab_expr stack vec_bit a) (elab_expr stack vec_bit b)
    | E_concat parts ->
        (* verilog lists the MSB first, so walk from the tail (LSB) *)
        let k = if vec_bit < 0 then 0 else vec_bit in
        let rec select parts_lsb_first k =
          match parts_lsb_first with
          | [] -> fail "concatenation bit %d out of range" vec_bit
          | p :: rest ->
              let w = expr_width p in
              if k < w then elab_expr stack (if w = 1 then -1 else k) p
              else select rest (k - w)
        in
        select (List.rev parts) k
    | E_repl (n, a) ->
        let w = expr_width a in
        if n <= 0 then fail "replication count must be positive";
        let k = if vec_bit < 0 then 0 else vec_bit in
        if k >= n * w then fail "replication bit %d out of range" vec_bit;
        elab_expr stack (if w = 1 then -1 else k mod w) a
  in
  Array.of_list
    (List.map
       (fun d -> Array.init d.width (fun i -> resolve_bit [] d.dname i))
       m.outputs)

let elaborate_program mods =
  let modules = Hashtbl.create 8 in
  List.iter
    (fun m ->
      if Hashtbl.mem modules m.mname then fail "duplicate module %s" m.mname;
      Hashtbl.replace modules m.mname m)
    mods;
  let top = List.nth mods (List.length mods - 1) in
  let nl = Netlist.create () in
  let input_nodes =
    Array.of_list
      (List.map
         (fun d ->
           Array.init d.width (fun i ->
               let pin_name =
                 if d.width = 1 then d.dname else Printf.sprintf "%s[%d]" d.dname i
               in
               Netlist.add nl ~name:pin_name Netlist.Input [||]))
         top.inputs)
  in
  let outs = elab_module ~modules ~depth:0 nl top input_nodes in
  List.iteri
    (fun k d ->
      Array.iteri
        (fun i driver ->
          let pin_name =
            if d.width = 1 then d.dname else Printf.sprintf "%s[%d]" d.dname i
          in
          ignore (Netlist.add nl ~name:pin_name Netlist.Output [| driver |]))
        outs.(k))
    top.outputs;
  nl

let parse src =
  try Ok (elaborate_program (parse_source src)) with
  | Error msg -> Result.Error msg
  | Invalid_argument msg -> Result.Error msg

let parse_file path =
  try
    let ic = open_in path in
    let len = in_channel_length ic in
    let content = really_input_string ic len in
    close_in ic;
    parse content
  with Sys_error msg -> Result.Error msg
