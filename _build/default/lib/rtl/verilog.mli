(** RTL frontend: a structural-Verilog-subset parser and elaborator.

    This is the repository's substitute for the Yosys step of the
    paper's flow (DESIGN.md §1): it turns RTL text into the AOI
    netlist the AQFP synthesis stages consume.

    Supported subset (combinational, single module):
    - [module]/[endmodule] with a port list;
    - [input]/[output]/[wire] declarations, scalar or vector
      [\[msb:lsb\]];
    - continuous assignments [assign lhs = expr;] where [expr] uses
      [~ & | ^], parentheses, bit-selects [x\[i\]], the literals
      [1'b0]/[1'b1], and sized binary vector literals [4'b1010];
      vector operands are applied bitwise and widths must match;
    - gate primitives: [and/or/nand/nor/xor/xnor/not/buf name(out,
      in...);] with 2..n inputs (n-ary gates are decomposed into
      balanced 2-input trees).

    - module hierarchy: a source file may define several modules; the
      {e last} one is the top, and positional instantiation
      ([sub u1(a, b, y);]) flattens recursively at elaboration (with a
      depth guard against recursive instantiation);
    - concatenation [{a, b}] and replication [{4{x}}] in expressions.

    Not supported (rejected with a message): [always], [reg],
    arithmetic operators. AQFP logic is gate-level pipelined;
    sequential RTL has no direct counterpart at this level of the
    flow. *)

val parse : string -> (Netlist.t, string) result
(** Elaborate Verilog source into an AOI netlist. Vector ports expand
    to one netlist input/output per bit, named [port\[i\]]. *)

val parse_file : string -> (Netlist.t, string) result
