(** Structural-Verilog netlist writer.

    The flow's remaining interchange direction: dump a netlist back as
    Verilog. AOI gates are written as the standard gate primitives
    ([and]/[or]/[not]/...), which this library's own {!Verilog} parser
    reads back (round-trip tested); AQFP-specific cells (majority,
    splitters, constants) are written as named cell instances in the
    AQFP library ([maj3 u7 (a, b, c, y);]), matching the LEF macros of
    {!Lef} — readable by any tool that knows the library, though not
    by the primitive-only parser here. *)

val to_verilog : ?module_name:string -> Netlist.t -> string
(** Render a netlist. Signal names use the node names where present
    and [n<id>] otherwise. *)

val is_roundtrippable : Netlist.t -> bool
(** True iff the netlist uses only primitives the {!Verilog} parser
    accepts (pure AOI, no constants). *)
