lib/synth/aoi_to_maj.ml: Array Cell Hashtbl List Maj_db Netlist Option
