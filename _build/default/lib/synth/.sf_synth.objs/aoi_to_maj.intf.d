lib/synth/aoi_to_maj.mli: Netlist
