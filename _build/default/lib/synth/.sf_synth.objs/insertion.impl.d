lib/synth/insertion.ml: Array Cell List Netlist
