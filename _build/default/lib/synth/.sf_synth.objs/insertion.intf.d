lib/synth/insertion.mli: Netlist
