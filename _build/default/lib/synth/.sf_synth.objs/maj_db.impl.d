lib/synth/maj_db.ml: Array Fun Lazy List Option Truth
