lib/synth/maj_db.mli: Truth
