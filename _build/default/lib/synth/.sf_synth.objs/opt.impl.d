lib/synth/opt.ml: Array Hashtbl List Netlist
