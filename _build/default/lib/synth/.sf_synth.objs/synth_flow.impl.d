lib/synth/synth_flow.ml: Aoi_to_maj Cell Format Insertion Opt
