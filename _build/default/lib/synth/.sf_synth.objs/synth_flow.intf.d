lib/synth/synth_flow.mli: Aoi_to_maj Format Insertion Netlist Opt
