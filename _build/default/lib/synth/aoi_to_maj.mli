(** AOI-to-majority netlist conversion (paper §III-B1).

    The converter views the AOI netlist as a directed graph, finds
    feasible nets of up to three independent parents by a bottom-up
    cut enumeration (the DFS of the paper, generalized to standard
    3-feasible cuts), checks each cut's function against the
    precomputed majority database ({!Maj_db} — the exhaustive form of
    the paper's Karnaugh-map matching), and selects a cover that
    minimizes total JJ cost using an area-flow heuristic that accounts
    for sharing. The selected implementations are instantiated into a
    fresh netlist with structural hashing; majority gates whose
    operands include constants degenerate into the cheaper and2/or2
    library cells, and double-negations collapse.

    The result computes the same function as the input (checked by the
    test suite with exhaustive/random simulation) and contains only
    [Input]/[Output]/[Const]/[Buf]/[Not]/[And]/[Or]/[Maj] nodes. *)

val convert : Netlist.t -> Netlist.t
(** Convert an AOI netlist to a majority-based netlist: the cheaper
    (by JJ count) of the cut-collapsing cover and the per-gate
    mapping — on rare share-heavy structures the per-gate map wins. *)

val cuts_per_node : int
(** Cut-set width kept per node during enumeration (pruning bound). *)

type stats = {
  aoi_gates : int;  (** logic gates in the input *)
  maj_gates : int;  (** majority-class gates in the result *)
  jj_before : int;  (** JJ cost if the AOI netlist were built directly *)
  jj_after : int;  (** JJ cost of the converted netlist *)
}

val convert_with_stats : Netlist.t -> Netlist.t * stats

val convert_naive : Netlist.t -> Netlist.t
(** Per-gate mapping baseline: every AOI gate is replaced by its own
    database implementation without any multi-gate cut collapsing —
    the "no Karnaugh matching" arm of the synthesis ablation. Same
    correctness guarantees as {!convert}. *)
