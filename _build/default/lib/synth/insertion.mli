(** Splitter and buffer insertion (paper §III-B2).

    AQFP gates drive exactly one fan-out; gates with more consumers
    need splitter cells (chosen by fan-out count, up to the library's
    3-output splitter, wider fan-outs becoming balanced splitter
    trees). Because every gate occupies one clock phase, all fan-ins
    of a gate must arrive with equal delay; after splitter insertion
    the stage re-levelizes the netlist and inserts buffer chains on
    every connection that spans more than one phase. Primary outputs
    are additionally padded to the final phase so the whole design
    retires in lock-step.

    Post-conditions (all checked by the test suite):
    - every non-splitter node has at most one consumer;
    - a [Splitter k] node has exactly [k] consumers;
    - the netlist is phase-balanced ({!Netlist.is_balanced});
    - the function computed is unchanged. *)

type stats = {
  splitters : int;  (** splitter cells inserted *)
  buffers : int;  (** balancing buffers inserted *)
  delay : int;  (** clock phases of the balanced design *)
  jj : int;  (** total JJ count after insertion *)
  nets : int;  (** point-to-point connections after insertion *)
}

val insert : ?max_arity:int -> Netlist.t -> Netlist.t
(** Insert splitters and path-balancing buffers into a majority-based
    netlist. The input is not modified. [max_arity] (default: the
    library's widest splitter, 3) caps the splitter fan-out — 2 forces
    binary trees, the arm of the splitter-arity ablation. *)

val insert_with_stats : ?max_arity:int -> Netlist.t -> Netlist.t * stats

val insert_ladder_with_stats : Netlist.t -> Netlist.t * stats
(** Joint splitter/buffer insertion with sharing: one distribution
    ladder per signal instead of per-edge buffer chains, following
    the optimal-insertion literature the paper cites ([5], [7]).
    Consumers of one signal at different depths share regeneration
    cells, which costs markedly fewer buffers than {!insert}. Same
    post-conditions. *)

val count_nets : Netlist.t -> int
(** Point-to-point connections: the sum of fan-in arities. *)
