(** Minimal majority-network database for 3-input boolean functions.

    The paper's Karnaugh-map matching step (§III-B1) decides, for each
    feasible 3-input net of the AOI netlist, whether it maps to one
    majority gate or to two-level majority logic, picking the most
    resource-efficient variant. This module precomputes the answer
    exhaustively: for every one of the 256 truth tables over
    (v0,v1,v2) it stores a cheapest implementation as a network of
    3-input majority gates whose operands are literals (possibly
    negated), constants, or earlier gate outputs (possibly negated —
    a negation costs one 2-JJ inverter cell).

    Costs follow the AQFP cell library: 6 JJ per majority gate (an
    and2/or2 standard cell — a majority with a built-in constant —
    costs the same 6 JJ), 2 JJ per explicit inverter. Ties are broken
    by logic depth (clock phases), matching the paper's goal of
    minimizing both JJ count and delay. *)

type operand =
  | Var of int * bool  (** [Var (k, neg)] — input variable 0..2 *)
  | Cst of bool
  | Gate of int * bool  (** output of an earlier gate in [gates] *)

type gate = { a : operand; b : operand; c : operand }
(** One 3-input majority gate. *)

type impl = {
  gates : gate array;  (** topological order *)
  out : operand;  (** the implemented function's source *)
  jj : int;  (** total JJ cost *)
  depth : int;  (** majority levels (inverters are free in depth) *)
}

val lookup : Truth.t -> impl
(** Implementation of a 3-variable truth table (only the low 8 bits of
    the argument are considered). Total: every function has an entry. *)

val cost : Truth.t -> int
(** JJ cost of [lookup]. *)

val eval_impl : impl -> bool array -> bool
(** Evaluate an implementation on concrete inputs (used by tests to
    validate the database against its truth tables). *)

val max_gates : unit -> int
(** Largest gate count over all 256 entries. *)

val coverage : unit -> int
(** Number of truth tables with an implementation (always 256; exposed
    for the test suite). *)
