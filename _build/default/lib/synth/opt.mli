(** AOI netlist optimization, run before majority conversion.

    A single bottom-up rewriting pass with structural hashing,
    iterated to a fixpoint:

    - {e constant folding}: gates with constant operands collapse
      ([and(x,0) = 0], [or(x,1) = 1], [xor(x,0) = x], ...);
    - {e boolean identities}: idempotence ([and(x,x) = x]),
      complementation ([and(x,~x) = 0], [xor(x,x) = 0]), double
      negation, buffer collapsing;
    - {e common-subexpression elimination}: structurally identical
      gates (commutative operands sorted) share one node;
    - {e dead-node sweep}: only logic reachable from the primary
      outputs survives.

    Primary inputs and outputs keep their order and names, so the
    result is drop-in equivalent (verified by the test suite through
    exhaustive/random simulation). *)

val optimize : Netlist.t -> Netlist.t
(** Full fixpoint optimization of an AOI netlist. Raises
    [Invalid_argument] on majority/splitter nodes (those appear only
    after conversion, where this pass does not apply). *)

type stats = { nodes_before : int; nodes_after : int; iterations : int }

val optimize_with_stats : Netlist.t -> Netlist.t * stats
