(** Static timing analysis for placed AQFP designs.

    AQFP is gate-level pipelined: every connection must deliver its
    pulse within one clock-phase window (paper §II-B). For a net
    leaving a cell in phase row [r] at horizontal position [x_s] and
    entering its sink in row [r+1] at [x_e]:

    - the budget is the phase window (50 ps at 5 GHz, 4 phases);
    - the data flight time is [manhattan_length / v_signal] plus the
      gate's intrinsic switching delay;
    - the zigzag clock distribution introduces skew between the
      launching and capturing rows; its unfavorable component is the
      Eq. (2) base divided by the clock velocity (a connection that
      "flows with" the serpentine clock gains time; one that fights it
      loses time).

    slack = window − gate_delay − flight − max(0, skew).

    The worst negative slack (WNS) over all nets is the Table III
    timing metric; designs with positive WNS meet the target clock. *)

type net_timing = {
  net : int;  (** net index in the problem *)
  slack_ps : float;
  flight_ps : float;
  skew_ps : float;
}

type report = {
  wns_ps : float;  (** worst slack (positive = timing met) *)
  tns_ps : float;  (** total negative slack (<= 0) *)
  violations : int;  (** nets with negative slack *)
  worst : net_timing list;  (** up to 10 worst nets, ascending slack *)
}

val net_slack_ps : Problem.t -> row_width:float -> int -> net_timing
(** Timing of one net at the current placement. *)

val analyze : Problem.t -> report
(** Full-design STA at the problem's technology target. *)

val meets_timing : report -> bool
(** True iff WNS is non-negative (the paper prints '-' in this case). *)

val pp_report : Format.formatter -> report -> unit

val slack_histogram : ?buckets:int -> Problem.t -> (float * float * int) array
(** [(lo, hi, count)] buckets over all net slacks, equal-width between
    the worst and best slack. Used by the CLI timing report. *)

val per_row_wns : Problem.t -> float array
(** Worst slack of the nets leaving each row — localizes which clock
    phases are critical (row gaps the router may want to relax). *)

val pp_histogram : Format.formatter -> (float * float * int) array -> unit

val analyze_routed : Problem.t -> Router.result -> report
(** Post-route STA: identical model, but each net's flight time uses
    its {e actual routed length} (detours and via zigzags included)
    instead of the Manhattan estimate. This is the timing the chip
    ships with; [analyze] is the placement-time view. *)

type yield = {
  samples : int;
  pass : int;  (** samples meeting timing *)
  yield_fraction : float;
  wns_mean_ps : float;
  wns_stddev_ps : float;
}

val monte_carlo :
  ?samples:int -> ?sigma_ps:float -> ?seed:int -> Problem.t -> yield
(** Process-variation timing yield: every cell's switching delay is
    drawn per sample from N(gate_delay_ps, sigma_ps) — the JJ
    critical-current spread of a real superconducting process — and
    the design passes when its worst slack stays non-negative.
    [sigma_ps] defaults to 10% of the nominal gate delay. *)

val fmax_ghz : Problem.t -> float
(** Maximum clock frequency at which the current placement meets
    timing. Slack is linear in the phase window, so the exact answer
    is [1000 / (phases * K)] where [K] is the largest per-net
    gate-delay + flight + skew (ps). *)
