lib/util/geom.mli: Format
