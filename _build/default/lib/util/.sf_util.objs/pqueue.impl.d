lib/util/pqueue.ml:
