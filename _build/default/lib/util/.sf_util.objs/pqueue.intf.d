lib/util/pqueue.mli:
