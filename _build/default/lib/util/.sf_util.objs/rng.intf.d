lib/util/rng.mli:
