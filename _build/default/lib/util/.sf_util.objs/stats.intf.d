lib/util/stats.mli:
