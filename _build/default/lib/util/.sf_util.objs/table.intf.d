lib/util/table.mli:
