lib/util/vec.mli:
