type 'a node =
  | Empty
  | Node of { prio : float; value : 'a; children : 'a node list }

type 'a t = { mutable root : 'a node; mutable size : int }

let create () = { root = Empty; size = 0 }

let is_empty q = q.size = 0

let length q = q.size

let meld a b =
  match (a, b) with
  | Empty, n | n, Empty -> n
  | Node na, Node nb ->
      if na.prio <= nb.prio then
        Node { na with children = b :: na.children }
      else Node { nb with children = a :: nb.children }

(* Two-pass pairing: meld adjacent pairs left-to-right, then meld the
   results right-to-left. This is what gives the amortized bounds. *)
let rec meld_pairs = function
  | [] -> Empty
  | [ n ] -> n
  | a :: b :: rest -> meld (meld a b) (meld_pairs rest)

let push q prio value =
  q.root <- meld q.root (Node { prio; value; children = [] });
  q.size <- q.size + 1

let pop q =
  match q.root with
  | Empty -> None
  | Node { prio; value; children } ->
      q.root <- meld_pairs children;
      q.size <- q.size - 1;
      Some (prio, value)

let peek q =
  match q.root with
  | Empty -> None
  | Node { prio; value; _ } -> Some (prio, value)

let clear q =
  q.root <- Empty;
  q.size <- 0
