(** Mutable min-priority queue over float priorities (pairing heap).

    Used by the A* router and by placement sweeps. Operations are
    amortized O(log n) for [pop] and O(1) for [push]. The queue does not
    support decrease-key; push duplicates and skip stale entries instead
    (the standard lazy-deletion idiom for A-star search). *)

type 'a t

val create : unit -> 'a t
(** A fresh empty queue. *)

val is_empty : 'a t -> bool

val length : 'a t -> int
(** Number of elements currently queued (including duplicates). *)

val push : 'a t -> float -> 'a -> unit
(** [push q prio x] inserts [x] with priority [prio]. Lower priorities
    pop first. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element, or [None] if empty. *)

val peek : 'a t -> (float * 'a) option
(** Return the minimum-priority element without removing it. *)

val clear : 'a t -> unit
