type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64: tiny state, passes BigCrush, and trivially portable —
   exactly what reproducible experiments need. *)
let bits64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* shift by 2 so the value fits OCaml's 63-bit int without wrapping *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let gaussian t =
  let u1 = max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let split t = { state = bits64 t }
