(** Deterministic pseudo-random generator (splitmix64 core).

    All randomized parts of the flow (synthetic ISCAS profiles, placer
    perturbations, property-test inputs) draw from an explicit [t] so
    that every experiment is reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] — same seed, same stream, on every platform. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val bits64 : t -> int64
(** Next raw 64-bit state output. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val split : t -> t
(** Derive an independent generator (for parallel-safe sub-streams). *)
