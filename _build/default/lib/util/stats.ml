let sum a = Array.fold_left ( +. ) 0.0 a

let mean a = if Array.length a = 0 then 0.0 else sum a /. float_of_int (Array.length a)

let geomean a =
  if Array.length a = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. log x) a;
    exp (!acc /. float_of_int (Array.length a))
  end

let minimum a = Array.fold_left Float.min infinity a
let maximum a = Array.fold_left Float.max neg_infinity a

let stddev a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let m = mean a in
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) a;
    sqrt (!acc /. float_of_int n)
  end

let ratio_geomean num den =
  if Array.length num <> Array.length den then
    invalid_arg "Stats.ratio_geomean: length mismatch";
  let ratios = ref [] in
  Array.iteri
    (fun i n -> if den.(i) <> 0.0 then ratios := (n /. den.(i)) :: !ratios)
    num;
  geomean (Array.of_list !ratios)

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let pos = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = min (n - 1) (lo + 1) in
  let frac = pos -. float_of_int lo in
  (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
