(** Small numeric summaries used by the benchmark reporter. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val geomean : float array -> float
(** Geometric mean of positive values; 0 for an empty array. *)

val minimum : float array -> float

val maximum : float array -> float

val sum : float array -> float

val stddev : float array -> float
(** Population standard deviation. *)

val ratio_geomean : float array -> float array -> float
(** [ratio_geomean num den] — geometric mean of pairwise ratios
    [num.(i) /. den.(i)]; pairs where the denominator is zero are
    skipped. Used for the "Average" normalization row of Table III. *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [0,100], linear interpolation. *)
