type align = Left | Right

type row = Cells of string list | Sep

type t = {
  headers : string list;
  arity : int;
  mutable rows : row list; (* reversed *)
  mutable aligns : align list;
}

let create ~headers =
  let arity = List.length headers in
  { headers; arity; rows = []; aligns = List.map (fun _ -> Right) headers }

let set_align t aligns =
  if List.length aligns <> t.arity then
    invalid_arg "Table.set_align: arity mismatch";
  t.aligns <- aligns

let add_row t cells =
  if List.length cells <> t.arity then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let pad align w s =
  let n = String.length s in
  if n >= w then s
  else
    let fill = String.make (w - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (function
      | Sep -> ()
      | Cells cs ->
          List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cs)
    rows;
  let buf = Buffer.create 1024 in
  let hline () =
    Array.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let line aligns cells =
    List.iteri
      (fun i (a, c) -> Buffer.add_string buf ("| " ^ pad a widths.(i) c ^ " "))
      (List.combine aligns cells);
    Buffer.add_string buf "|\n"
  in
  hline ();
  line (List.map (fun _ -> Left) t.headers) t.headers;
  hline ();
  List.iter
    (function Sep -> hline () | Cells cs -> line t.aligns cs)
    rows;
  hline ();
  Buffer.contents buf

let print t = print_string (render t)

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + 4) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_float ?(dec = 1) x = Printf.sprintf "%.*f" dec x
