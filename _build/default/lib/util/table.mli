(** ASCII table renderer for experiment reports.

    The bench harness prints every reproduced paper table through this
    module so Tables II/III/IV share one look. *)

type align = Left | Right

type t

val create : headers:string list -> t
(** New table; every row added later must have the same arity. *)

val set_align : t -> align list -> unit
(** Per-column alignment; default is [Right] for all columns. *)

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] on arity mismatch. *)

val add_sep : t -> unit
(** Horizontal separator before the next row. *)

val render : t -> string

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val fmt_int : int -> string
(** Thousands-separated integer, e.g. [12,345]. *)

val fmt_float : ?dec:int -> float -> string
(** Fixed-point float, default 1 decimal. *)
