(** Disjoint-set forest over integer elements [0 .. n-1], with path
    compression and union by rank. Used for connectivity checks in the
    router and DRC net extraction. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> unit
(** Merge the two sets. No-op if already merged. *)

val same : t -> int -> int -> bool
(** [same t a b] iff [a] and [b] are in the same set. *)

val count : t -> int
(** Number of distinct sets remaining. *)
