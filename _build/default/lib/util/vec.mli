(** Growable array (OCaml 5.1 has no [Dynarray]; this is the subset the
    flow needs). Elements are stored contiguously; indices are stable.
    Not thread-safe. *)

type 'a t

val create : unit -> 'a t

val make : int -> 'a -> 'a t
(** [make n x] is a vector of length [n] filled with [x]. *)

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> int
(** Append an element; returns its index. *)

val pop : 'a t -> 'a option
(** Remove and return the last element. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val map : ('a -> 'b) -> 'a t -> 'b t

val exists : ('a -> bool) -> 'a t -> bool

val to_array : 'a t -> 'a array

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val clear : 'a t -> unit
