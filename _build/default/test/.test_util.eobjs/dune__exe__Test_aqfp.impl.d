test/test_aqfp.ml: Alcotest Array Cell Circuits Clocking Energy Lef List Netlist Printf Synth_flow Tech
