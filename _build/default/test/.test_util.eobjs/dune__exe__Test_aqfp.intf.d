test/test_aqfp.mli:
