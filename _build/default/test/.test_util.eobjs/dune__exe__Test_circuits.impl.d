test/test_circuits.ml: Alcotest Array Bench_parser Circuits Filename Fun Gen List Netlist Printf QCheck QCheck_alcotest Rng Sim Synth_flow Sys
