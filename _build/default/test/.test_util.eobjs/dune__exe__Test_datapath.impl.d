test/test_datapath.ml: Alcotest Array Circuits Datapath Flow Fun List Netlist Printf QCheck QCheck_alcotest Sim Synth_flow
