test/test_flow.ml: Alcotest Array Chip_report Circuits Drc Filename Flow Gds List Netlist Placer Problem Report Router Sim String Svg Synth_flow Sys
