test/test_fuzz.ml: Alcotest Bench_parser Bytes Char Circuits Def Gds Gen Layout Lef Placer Problem QCheck QCheck_alcotest Rng Router String Synth_flow Tech Verilog
