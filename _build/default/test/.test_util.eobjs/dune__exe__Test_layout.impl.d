test/test_layout.ml: Alcotest Array Bytes Circuits Def Drc Filename Float Gds Geom Layout List Placer Printf Problem QCheck QCheck_alcotest Router String Svg Synth_flow Sys Tech
