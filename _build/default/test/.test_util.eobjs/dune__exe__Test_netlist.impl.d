test/test_netlist.ml: Alcotest Array Bdd Bench_parser Circuits Fault Fun List Netlist Netlist_stats Printf QCheck QCheck_alcotest Sim String Synth_flow Truth Vcd
