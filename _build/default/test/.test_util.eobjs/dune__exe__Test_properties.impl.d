test/test_properties.ml: Alcotest Array Bufferline Circuits Def Fault Float Geom List Maj_db Netlist Opt Placer Problem QCheck QCheck_alcotest Rng Router Sim Synth_flow Tech Truth Vec
