test/test_regression.ml: Alcotest Aoi_to_maj Array Cell Circuits Congestion Fault List Placer Printf Problem Router Sta Stats Synth_flow Tech
