test/test_route.ml: Alcotest Array Circuits Congestion Float List Netlist Placer Problem QCheck QCheck_alcotest Router String Synth_flow Tech
