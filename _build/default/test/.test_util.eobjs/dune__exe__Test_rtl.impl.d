test/test_rtl.ml: Alcotest Array Circuits List Netlist Sim String Synth_flow Verilog Verilog_writer
