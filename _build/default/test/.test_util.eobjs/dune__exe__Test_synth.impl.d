test/test_synth.ml: Alcotest Aoi_to_maj Array Bdd Cell Circuits Insertion List Maj_db Netlist Opt Printf QCheck QCheck_alcotest Sim Synth_flow Truth
