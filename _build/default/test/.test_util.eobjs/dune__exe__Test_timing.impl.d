test/test_timing.ml: Alcotest Array Circuits List Netlist Placer Problem Router Sta Synth_flow Tech
