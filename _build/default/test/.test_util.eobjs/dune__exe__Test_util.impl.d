test/test_util.ml: Alcotest Array Fun Geom List Option Pqueue QCheck QCheck_alcotest Rng Stats String Table Union_find Vec
