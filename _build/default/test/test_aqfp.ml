(* Tests for the AQFP technology model: process parameters, cell
   library, clocking. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

(* ---------- Tech ---------- *)

let test_phase_window () =
  (* 5 GHz, 4 phases -> 50 ps per phase *)
  checkf "window" 50.0 (Tech.phase_window_ps Tech.default)

let test_snap () =
  let t = Tech.default in
  checkf "snap down" 10.0 (Tech.snap t 12.0);
  checkf "snap up" 20.0 (Tech.snap t 17.0);
  checkf "snap_up" 20.0 (Tech.snap_up t 12.0);
  checkf "snap_up exact" 10.0 (Tech.snap_up t 10.0);
  checkb "on grid" true (Tech.on_grid t 120.0);
  checkb "off grid" false (Tech.on_grid t 125.0)

let test_default_is_mitll_like () =
  let t = Tech.default in
  checkf "grid 10um" 10.0 t.Tech.grid;
  checkf "s_min 10um" 10.0 t.Tech.s_min;
  checki "4 phases" 4 t.Tech.phases;
  checkf "5GHz" 5.0 t.Tech.clock_freq_ghz;
  checki "2 metal layers" 2 t.Tech.metal_layers

(* ---------- Cell ---------- *)

let test_paper_dimensions () =
  (* buffers 40x30, majority gates 60x70 (paper §III-C3) *)
  let buf = Cell.of_kind Netlist.Buf in
  checkf "buf w" 40.0 buf.Cell.width;
  checkf "buf h" 30.0 buf.Cell.height;
  let maj = Cell.of_kind Netlist.Maj in
  checkf "maj w" 60.0 maj.Cell.width;
  checkf "maj h" 70.0 maj.Cell.height

let test_jj_counts () =
  (* buffer is a 2-JJ SQUID; everything is a multiple of 2 *)
  checki "buf" 2 (Cell.jj_of_kind Netlist.Buf);
  checki "not" 2 (Cell.jj_of_kind Netlist.Not);
  checki "maj" 6 (Cell.jj_of_kind Netlist.Maj);
  checki "and" 6 (Cell.jj_of_kind Netlist.And);
  checki "spl2" 4 (Cell.jj_of_kind (Netlist.Splitter 2));
  checki "spl3" 6 (Cell.jj_of_kind (Netlist.Splitter 3));
  List.iter
    (fun (_, c) -> checki "even JJs" 0 (c.Cell.jj_count mod 2))
    Cell.library

let test_pins_match_arity () =
  List.iter
    (fun kind ->
      let c = Cell.of_kind kind in
      checki
        (Netlist.kind_name kind ^ " in pins")
        (Netlist.arity kind)
        (Array.length c.Cell.in_pins))
    [ Netlist.Buf; Netlist.Not; Netlist.And; Netlist.Or; Netlist.Maj;
      Netlist.Splitter 2; Netlist.Splitter 3 ]

let test_splitter_outputs () =
  checki "spl2 outs" 2 (Array.length (Cell.of_kind (Netlist.Splitter 2)).Cell.out_pins);
  checki "spl3 outs" 3 (Array.length (Cell.of_kind (Netlist.Splitter 3)).Cell.out_pins);
  checkb "invalid splitter" true
    (try
       ignore (Cell.of_kind (Netlist.Splitter 5));
       false
     with Invalid_argument _ -> true)

let test_pins_on_grid_and_inside () =
  List.iter
    (fun (_, c) ->
      Array.iter
        (fun px ->
          checkb "pin on grid" true (Tech.on_grid Tech.default px);
          checkb "pin inside cell" true (px > 0.0 && px < c.Cell.width))
        (Array.append c.Cell.in_pins c.Cell.out_pins);
      checkb "width on grid" true (Tech.on_grid Tech.default c.Cell.width);
      checkb "height on grid" true (Tech.on_grid Tech.default c.Cell.height))
    Cell.library

let test_netlist_jj_count () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Input [||] in
  let b = Netlist.add nl Netlist.Input [||] in
  let m = Netlist.add nl Netlist.And [| a; b |] in
  ignore (Netlist.add nl Netlist.Output [| m |]);
  (* 2 inports (2 each) + and2 (6) + output marker (0) *)
  checki "jj sum" 10 (Cell.netlist_jj_count nl)

let test_tech_roundtrip () =
  let custom = { Tech.default with Tech.w_max = 500.0; clock_freq_ghz = 3.0 } in
  match Tech.of_string (Tech.to_string custom) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      checkf "w_max" 500.0 parsed.Tech.w_max;
      checkf "clock" 3.0 parsed.Tech.clock_freq_ghz;
      checkf "grid preserved" custom.Tech.grid parsed.Tech.grid

let test_tech_partial_and_comments () =
  match Tech.of_string "# custom
w_max = 450

phases = 4
" with
  | Error e -> Alcotest.fail e
  | Ok t ->
      checkf "w_max set" 450.0 t.Tech.w_max;
      checkf "rest defaulted" Tech.default.Tech.grid t.Tech.grid

let test_tech_rejects () =
  (match Tech.of_string "frobnicate = 3" with
  | Ok _ -> Alcotest.fail "accepted unknown key"
  | Error _ -> ());
  (match Tech.of_string "w_max = banana" with
  | Ok _ -> Alcotest.fail "accepted bad value"
  | Error _ -> ());
  match Tech.of_string "w_max = -5" with
  | Ok _ -> Alcotest.fail "accepted negative"
  | Error _ -> ()

(* ---------- LEF library exchange ---------- *)

let test_lef_roundtrip () =
  let macros = Lef.library_macros () in
  let text = Lef.to_string macros in
  match Lef.of_string text with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      checki "macro count" (List.length macros) (List.length parsed);
      List.iter2
        (fun a b ->
          Alcotest.(check string) "name" a.Lef.macro_name b.Lef.macro_name;
          checki "pins" (List.length a.Lef.pins) (List.length b.Lef.pins);
          checki "jj" a.Lef.jj b.Lef.jj)
        macros parsed

let test_lef_matches_library () =
  let parsed =
    match Lef.of_string (Lef.library_lef ()) with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  List.iter
    (fun m ->
      match List.assoc_opt m.Lef.macro_name Cell.library with
      | None -> Alcotest.failf "unknown macro %s" m.Lef.macro_name
      | Some c -> (
          match Lef.check_against_cell m c with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s: %s" m.Lef.macro_name e))
    parsed

let test_lef_detects_drift () =
  let m = Lef.of_cell (Cell.of_kind Netlist.Buf) in
  let drifted = { m with Lef.size_w = m.Lef.size_w +. 10.0 } in
  match Lef.check_against_cell drifted (Cell.of_kind Netlist.Buf) with
  | Ok () -> Alcotest.fail "drift not detected"
  | Error _ -> ()

let test_lef_rejects_garbage () =
  match Lef.of_string "MACRO oops" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ()

(* ---------- Energy ---------- *)

let test_energy_basic () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Input [||] in
  let b = Netlist.add nl Netlist.Input [||] in
  let m = Netlist.add nl Netlist.And [| a; b |] in
  ignore (Netlist.add nl Netlist.Output [| m |]);
  let r = Energy.of_netlist Tech.default nl in
  checki "jj" 10 r.Energy.jj_count;
  checki "gates" 1 r.Energy.gate_count;
  checkb "positive energy" true (r.Energy.energy_per_cycle_j > 0.0);
  checkb "positive power" true (r.Energy.power_w > 0.0)

let test_energy_gain_order_of_magnitude () =
  (* the paper's 10^4 - 10^5 claim should hold for any real design *)
  let aqfp = Synth_flow.run_quiet (Circuits.benchmark "adder8") in
  let r = Energy.of_netlist Tech.default aqfp in
  checkb
    (Printf.sprintf "gain %.0f in 1e4..1e6" r.Energy.efficiency_gain)
    true
    (r.Energy.efficiency_gain > 1e4 && r.Energy.efficiency_gain < 1e6)

let test_energy_scales_with_size () =
  let small = Synth_flow.run_quiet (Circuits.kogge_stone_adder 2) in
  let large = Synth_flow.run_quiet (Circuits.kogge_stone_adder 8) in
  let e_small = (Energy.of_netlist Tech.default small).Energy.energy_per_cycle_j in
  let e_large = (Energy.of_netlist Tech.default large).Energy.energy_per_cycle_j in
  checkb "larger design burns more" true (e_large > e_small)

let test_energy_params () =
  let aqfp = Synth_flow.run_quiet (Circuits.kogge_stone_adder 2) in
  let base = Energy.of_netlist Tech.default aqfp in
  let doubled =
    Energy.of_netlist
      ~params:{ Energy.default_params with Energy.joules_per_jj_switch = 2.8e-21 }
      Tech.default aqfp
  in
  Alcotest.(check (float 1e-30)) "linear in switch energy"
    (2.0 *. base.Energy.energy_per_cycle_j) doubled.Energy.energy_per_cycle_j

(* ---------- Clocking ---------- *)

let test_directions_alternate () =
  checkb "row0 rightward" true (Clocking.direction 0 = Clocking.Rightward);
  checkb "row1 leftward" true (Clocking.direction 1 = Clocking.Leftward);
  checkb "row2 rightward" true (Clocking.direction 2 = Clocking.Rightward)

let test_clock_arrival () =
  let t = Tech.default in
  (* rightward row: arrival grows with x *)
  let a0 = Clocking.clock_arrival_ps t ~row_width:1000.0 ~phase:0 ~x:0.0 in
  let a1 = Clocking.clock_arrival_ps t ~row_width:1000.0 ~phase:0 ~x:1000.0 in
  checkb "monotone" true (a1 > a0);
  (* leftward row: reversed *)
  let b0 = Clocking.clock_arrival_ps t ~row_width:1000.0 ~phase:1 ~x:0.0 in
  let b1 = Clocking.clock_arrival_ps t ~row_width:1000.0 ~phase:1 ~x:1000.0 in
  checkb "reversed" true (b0 > b1)

let test_eq2_cases () =
  let t = Tech.default in
  let cost phase xs xe =
    Clocking.timing_cost t ~row_width:1000.0 ~phase ~x_start:xs ~x_end:xe ~alpha:2.0
  in
  (* phase 0: (xe - xs)^2 when positive *)
  checkf "case0" 10000.0 (cost 0 100.0 200.0);
  checkf "case0 clamped" 0.0 (cost 0 200.0 100.0);
  (* phase 1: (xe + xs)^2 *)
  checkf "case1" 90000.0 (cost 1 100.0 200.0);
  (* phase 2: (xs - xe)^2 when positive *)
  checkf "case2" 10000.0 (cost 2 200.0 100.0);
  checkf "case2 clamped" 0.0 (cost 2 100.0 200.0);
  (* phase 3: (2W - xe - xs)^2 *)
  checkf "case3" (1700.0 *. 1700.0) (cost 3 100.0 200.0);
  (* periodicity *)
  checkf "phase 4 = phase 0" (cost 0 100.0 200.0) (cost 4 100.0 200.0)

let test_alpha_modulates () =
  let t = Tech.default in
  let c1 = Clocking.timing_cost t ~row_width:1000.0 ~phase:1 ~x_start:10.0 ~x_end:10.0 ~alpha:1.0 in
  let c2 = Clocking.timing_cost t ~row_width:1000.0 ~phase:1 ~x_start:10.0 ~x_end:10.0 ~alpha:2.0 in
  checkf "alpha1" 20.0 c1;
  checkf "alpha2" 400.0 c2

let () =
  Alcotest.run "sf_aqfp"
    [
      ( "tech",
        [
          Alcotest.test_case "phase window" `Quick test_phase_window;
          Alcotest.test_case "snap" `Quick test_snap;
          Alcotest.test_case "defaults" `Quick test_default_is_mitll_like;
        ] );
      ( "cell",
        [
          Alcotest.test_case "paper dimensions" `Quick test_paper_dimensions;
          Alcotest.test_case "jj counts" `Quick test_jj_counts;
          Alcotest.test_case "pins match arity" `Quick test_pins_match_arity;
          Alcotest.test_case "splitters" `Quick test_splitter_outputs;
          Alcotest.test_case "pins on grid" `Quick test_pins_on_grid_and_inside;
          Alcotest.test_case "netlist jj" `Quick test_netlist_jj_count;
        ] );
      ( "tech_file",
        [
          Alcotest.test_case "roundtrip" `Quick test_tech_roundtrip;
          Alcotest.test_case "partial" `Quick test_tech_partial_and_comments;
          Alcotest.test_case "rejects" `Quick test_tech_rejects;
        ] );
      ( "lef",
        [
          Alcotest.test_case "roundtrip" `Quick test_lef_roundtrip;
          Alcotest.test_case "matches library" `Quick test_lef_matches_library;
          Alcotest.test_case "detects drift" `Quick test_lef_detects_drift;
          Alcotest.test_case "rejects garbage" `Quick test_lef_rejects_garbage;
        ] );
      ( "energy",
        [
          Alcotest.test_case "basic" `Quick test_energy_basic;
          Alcotest.test_case "gain magnitude" `Quick test_energy_gain_order_of_magnitude;
          Alcotest.test_case "scales" `Quick test_energy_scales_with_size;
          Alcotest.test_case "params" `Quick test_energy_params;
        ] );
      ( "clocking",
        [
          Alcotest.test_case "directions" `Quick test_directions_alternate;
          Alcotest.test_case "arrival" `Quick test_clock_arrival;
          Alcotest.test_case "eq2" `Quick test_eq2_cases;
          Alcotest.test_case "alpha" `Quick test_alpha_modulates;
        ] );
    ]
