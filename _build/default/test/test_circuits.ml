(* Functional correctness of the benchmark circuit generators: each
   generator is checked against its specification-level reference. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let bits_of_int w n = Array.init w (fun i -> (n lsr i) land 1 = 1)

let int_of_bits bits =
  Array.to_list bits
  |> List.mapi (fun i b -> if b then 1 lsl i else 0)
  |> List.fold_left ( + ) 0

(* ---------- Kogge-Stone adder ---------- *)

let check_adder w trials seed =
  let nl = Circuits.kogge_stone_adder w in
  (match Netlist.validate nl with Ok _ -> () | Error e -> Alcotest.fail e);
  let rng = Rng.create seed in
  for _ = 1 to trials do
    let a = Rng.int rng (1 lsl w) and b = Rng.int rng (1 lsl w) in
    let cin = Rng.bool rng in
    let inputs = Array.concat [ bits_of_int w a; bits_of_int w b; [| cin |] ] in
    let outs = Sim.eval nl inputs in
    let sum_bits = Array.sub outs 0 w and cout = outs.(w) in
    let expect_sum, expect_cout = Circuits.Reference.add w a b cin in
    checki (Printf.sprintf "sum %d+%d" a b) expect_sum (int_of_bits sum_bits);
    checkb "cout" expect_cout cout
  done

let test_adder8_exhaustive_corners () =
  let nl = Circuits.kogge_stone_adder 8 in
  List.iter
    (fun (a, b, cin) ->
      let inputs = Array.concat [ bits_of_int 8 a; bits_of_int 8 b; [| cin |] ] in
      let outs = Sim.eval nl inputs in
      let expect_sum, expect_cout = Circuits.Reference.add 8 a b cin in
      checki "corner sum" expect_sum (int_of_bits (Array.sub outs 0 8));
      checkb "corner cout" expect_cout outs.(8))
    [
      (0, 0, false); (255, 255, true); (255, 1, false); (128, 128, false);
      (170, 85, true); (1, 254, true);
    ]

let test_adder_widths () =
  check_adder 4 50 1;
  check_adder 8 100 2;
  check_adder 16 50 3

let test_adder2_exhaustive () =
  let nl = Circuits.kogge_stone_adder 2 in
  for a = 0 to 3 do
    for b = 0 to 3 do
      List.iter
        (fun cin ->
          let inputs = Array.concat [ bits_of_int 2 a; bits_of_int 2 b; [| cin |] ] in
          let outs = Sim.eval nl inputs in
          let expect_sum, expect_cout = Circuits.Reference.add 2 a b cin in
          checki "sum2" expect_sum (int_of_bits (Array.sub outs 0 2));
          checkb "cout2" expect_cout outs.(2))
        [ false; true ]
    done
  done

(* ---------- Parallel counter ---------- *)

let check_counter n trials seed =
  let nl = Circuits.parallel_counter n in
  (match Netlist.validate nl with Ok _ -> () | Error e -> Alcotest.fail e);
  let n_out = List.length (Netlist.outputs nl) in
  let rng = Rng.create seed in
  for _ = 1 to trials do
    let inputs = Array.init n (fun _ -> Rng.bool rng) in
    let outs = Sim.eval nl inputs in
    let expect = Array.to_list inputs |> List.filter Fun.id |> List.length in
    checki (Printf.sprintf "count of %d" n) expect (int_of_bits outs);
    checki "output bits" n_out (Array.length outs)
  done

let test_counter_small_exhaustive () =
  let nl = Circuits.parallel_counter 5 in
  for v = 0 to 31 do
    let inputs = bits_of_int 5 v in
    let outs = Sim.eval nl inputs in
    checki "popcount5" (Circuits.Reference.popcount v) (int_of_bits outs)
  done

let test_counter_sizes () =
  check_counter 8 100 4;
  check_counter 32 60 5;
  check_counter 128 20 6

let test_counter_all_ones_zeros () =
  List.iter
    (fun n ->
      let nl = Circuits.parallel_counter n in
      let outs1 = Sim.eval nl (Array.make n true) in
      checki "all ones" n (int_of_bits outs1);
      let outs0 = Sim.eval nl (Array.make n false) in
      checki "all zeros" 0 (int_of_bits outs0))
    [ 3; 7; 32 ]

let test_counter_approximate_mode () =
  (* approximate counters undercount by a bounded amount and are never
     above the true count; approx_below = 0 stays exact *)
  let n = 16 in
  let exact = Circuits.parallel_counter ~approx_below:0 n in
  let approx = Circuits.parallel_counter ~approx_below:2 n in
  checkb "approx is smaller" true (Netlist.size approx <= Netlist.size exact);
  let rng = Rng.create 17 in
  let max_err = ref 0 in
  for _ = 1 to 300 do
    let inputs = Array.init n (fun _ -> Rng.bool rng) in
    let true_count = Array.to_list inputs |> List.filter Fun.id |> List.length in
    checki "exact mode" true_count (int_of_bits (Sim.eval exact inputs));
    let approx_count = int_of_bits (Sim.eval approx inputs) in
    checkb "never overcounts" true (approx_count <= true_count);
    if true_count - approx_count > !max_err then max_err := true_count - approx_count
  done;
  (* dropped carries all have weight < 2^2; with 16 inputs the
     truncated columns host well under 8 compressions *)
  checkb (Printf.sprintf "error bounded (saw %d)" !max_err) true (!max_err <= 16)

(* ---------- Multiplier ---------- *)

let test_multiplier_small_exhaustive () =
  List.iter
    (fun w ->
      let nl = Circuits.array_multiplier w in
      (match Netlist.validate nl with Ok _ -> () | Error e -> Alcotest.fail e);
      for a = 0 to (1 lsl w) - 1 do
        for b = 0 to (1 lsl w) - 1 do
          let inputs = Array.append (bits_of_int w a) (bits_of_int w b) in
          let outs = Sim.eval nl inputs in
          checki
            (Printf.sprintf "%d*%d" a b)
            (Circuits.Reference.multiply w a b)
            (int_of_bits outs)
        done
      done)
    [ 1; 2; 3; 4 ]

let test_multiplier_random_8 () =
  let nl = Circuits.array_multiplier 8 in
  let rng = Rng.create 77 in
  for _ = 1 to 60 do
    let a = Rng.int rng 256 and b = Rng.int rng 256 in
    let inputs = Array.append (bits_of_int 8 a) (bits_of_int 8 b) in
    let outs = Sim.eval nl inputs in
    checki (Printf.sprintf "%d*%d" a b) (a * b) (int_of_bits outs)
  done

let test_multiplier_through_synthesis () =
  let nl = Circuits.array_multiplier 4 in
  let aqfp = Synth_flow.run_quiet nl in
  checkb "balanced" true (Netlist.is_balanced aqfp);
  checkb "equivalent" true (Sim.equivalent nl aqfp)

(* ---------- BNN neuron ---------- *)

let test_bnn_exhaustive_small () =
  List.iter
    (fun n ->
      let nl = Circuits.bnn_neuron n in
      (match Netlist.validate nl with Ok _ -> () | Error e -> Alcotest.fail e);
      for v = 0 to (1 lsl (2 * n)) - 1 do
        let xs = Array.init n (fun i -> (v lsr i) land 1 = 1) in
        let ws = Array.init n (fun i -> (v lsr (n + i)) land 1 = 1) in
        let r = Sim.eval nl (Array.append xs ws) in
        checkb
          (Printf.sprintf "bnn%d v=%d" n v)
          (Circuits.Reference.bnn_fire xs ws)
          r.(0)
      done)
    [ 2; 3; 5 ]

let test_bnn_random_large () =
  let nl = Circuits.bnn_neuron 64 in
  let rng = Rng.create 31 in
  for _ = 1 to 50 do
    let xs = Array.init 64 (fun _ -> Rng.bool rng) in
    let ws = Array.init 64 (fun _ -> Rng.bool rng) in
    let r = Sim.eval nl (Array.append xs ws) in
    checkb "bnn64" (Circuits.Reference.bnn_fire xs ws) r.(0)
  done

let test_bnn_through_synthesis () =
  let nl = Circuits.bnn_neuron 8 in
  let aqfp = Synth_flow.run_quiet nl in
  checkb "balanced" true (Netlist.is_balanced aqfp);
  checkb "equivalent" true (Sim.equivalent nl aqfp)

(* ---------- Decoder ---------- *)

let test_decoder_one_hot () =
  List.iter
    (fun n ->
      let nl = Circuits.decoder n in
      checki "outputs" (1 lsl n) (List.length (Netlist.outputs nl));
      for code = 0 to (1 lsl n) - 1 do
        let outs = Sim.eval nl (bits_of_int n code) in
        Array.iteri
          (fun i v -> checkb (Printf.sprintf "dec%d out%d" code i) (i = code) v)
          outs
      done)
    [ 2; 3; 5 ]

let test_decoder7_spot () =
  let nl = Circuits.decoder 7 in
  let outs = Sim.eval nl (bits_of_int 7 93) in
  Array.iteri (fun i v -> checkb "one-hot 93" (i = 93) v) outs

(* ---------- Sorter ---------- *)

let check_sorter n trials seed =
  let nl = Circuits.sorter n in
  (match Netlist.validate nl with Ok _ -> () | Error e -> Alcotest.fail e);
  let rng = Rng.create seed in
  for _ = 1 to trials do
    let inputs = Array.init n (fun _ -> Rng.bool rng) in
    let outs = Sim.eval nl inputs in
    let expect = Circuits.Reference.sorted_outputs (Array.to_list inputs) in
    Alcotest.(check (list bool)) "sorted" expect (Array.to_list outs)
  done

let test_sorter_small_exhaustive () =
  let nl = Circuits.sorter 4 in
  for v = 0 to 15 do
    let inputs = bits_of_int 4 v in
    let outs = Sim.eval nl inputs in
    let expect = Circuits.Reference.sorted_outputs (Array.to_list inputs) in
    Alcotest.(check (list bool)) "sorted4" expect (Array.to_list outs)
  done

let test_sorter_sizes () =
  check_sorter 8 100 7;
  check_sorter 32 60 8

let test_sorter_rejects_non_power_of_two () =
  checkb "raises" true
    (try
       ignore (Circuits.sorter 12);
       false
     with Invalid_argument _ -> true)

(* ---------- ISCAS-like profiles ---------- *)

let test_iscas_profiles () =
  List.iter
    (fun (name, pi, po) ->
      let nl = Circuits.benchmark name in
      (match Netlist.validate nl with Ok _ -> () | Error e -> Alcotest.fail e);
      checki (name ^ " pi") pi (List.length (Netlist.inputs nl));
      checki (name ^ " po") po (List.length (Netlist.outputs nl)))
    [ ("c432", 36, 7); ("c499", 41, 32); ("c1355", 41, 32); ("c1908", 33, 25) ]

let test_iscas_deterministic () =
  let a = Circuits.benchmark "c432" and b = Circuits.benchmark "c432" in
  checkb "same netlist across calls" true (Sim.equivalent a b);
  checki "same size" (Netlist.size a) (Netlist.size b)

let test_iscas_depth_scales () =
  let shallow = Circuits.iscas_like ~seed:1 ~pi:10 ~po:4 ~gates:100 ~depth:5 in
  let deep = Circuits.iscas_like ~seed:1 ~pi:10 ~po:4 ~gates:100 ~depth:25 in
  let d1 = Netlist.levelize shallow and d2 = Netlist.levelize deep in
  checkb "deep profile is deeper" true (d2 > d1)

let test_benchmark_names () =
  checki "nine benchmarks" 9 (List.length Circuits.benchmark_names);
  List.iter
    (fun name ->
      let nl = Circuits.benchmark name in
      checkb (name ^ " nonempty") true (Netlist.size nl > 0))
    Circuits.benchmark_names;
  checkb "unknown raises" true
    (try
       ignore (Circuits.benchmark "nonesuch");
       false
     with Not_found -> true)

(* ---------- shipped benchmark files ---------- *)

let benchmarks_dir () =
  (* tests run from the build sandbox; walk up to the source tree *)
  let rec find dir depth =
    if depth > 6 then None
    else
      let candidate = Filename.concat dir "benchmarks" in
      if Sys.file_exists (Filename.concat candidate "adder8.bench") then Some candidate
      else find (Filename.concat dir "..") (depth + 1)
  in
  find "." 0

let test_shipped_bench_files_match_generators () =
  match benchmarks_dir () with
  | None -> () (* running outside the repo tree; nothing to check *)
  | Some dir ->
      List.iter
        (fun name ->
          let path = Filename.concat dir (name ^ ".bench") in
          match Bench_parser.parse_file path with
          | Error e -> Alcotest.failf "%s: %s" name e
          | Ok from_file ->
              checkb (name ^ " matches generator") true
                (Sim.equivalent from_file (Circuits.benchmark name)))
        Circuits.benchmark_names

(* ---------- Properties ---------- *)

let prop_adder_random =
  QCheck.Test.make ~name:"adder matches integer addition" ~count:100
    QCheck.(triple (int_bound 255) (int_bound 255) bool)
    (fun (a, b, cin) ->
      let nl = Circuits.kogge_stone_adder 8 in
      let inputs = Array.concat [ bits_of_int 8 a; bits_of_int 8 b; [| cin |] ] in
      let outs = Sim.eval nl inputs in
      let expect_sum, expect_cout = Circuits.Reference.add 8 a b cin in
      int_of_bits (Array.sub outs 0 8) = expect_sum && outs.(8) = expect_cout)

let prop_sorter_is_popcount_preserving =
  QCheck.Test.make ~name:"sorter preserves popcount" ~count:100
    QCheck.(list_of_size (Gen.return 8) bool)
    (fun bits ->
      let nl = Circuits.sorter 8 in
      let outs = Sim.eval nl (Array.of_list bits) in
      let ones l = List.length (List.filter Fun.id l) in
      ones (Array.to_list outs) = ones bits)

let () =
  Alcotest.run "sf_circuits"
    [
      ( "adder",
        [
          Alcotest.test_case "corners" `Quick test_adder8_exhaustive_corners;
          Alcotest.test_case "widths" `Quick test_adder_widths;
          Alcotest.test_case "2-bit exhaustive" `Quick test_adder2_exhaustive;
          QCheck_alcotest.to_alcotest prop_adder_random;
        ] );
      ( "counter",
        [
          Alcotest.test_case "exhaustive small" `Quick test_counter_small_exhaustive;
          Alcotest.test_case "sizes" `Quick test_counter_sizes;
          Alcotest.test_case "extremes" `Quick test_counter_all_ones_zeros;
          Alcotest.test_case "approximate mode" `Quick test_counter_approximate_mode;
        ] );
      ( "multiplier",
        [
          Alcotest.test_case "exhaustive small" `Quick test_multiplier_small_exhaustive;
          Alcotest.test_case "random 8-bit" `Quick test_multiplier_random_8;
          Alcotest.test_case "through synthesis" `Slow test_multiplier_through_synthesis;
        ] );
      ( "bnn",
        [
          Alcotest.test_case "exhaustive small" `Quick test_bnn_exhaustive_small;
          Alcotest.test_case "random 64" `Quick test_bnn_random_large;
          Alcotest.test_case "through synthesis" `Quick test_bnn_through_synthesis;
        ] );
      ( "decoder",
        [
          Alcotest.test_case "one-hot" `Quick test_decoder_one_hot;
          Alcotest.test_case "decoder7 spot" `Quick test_decoder7_spot;
        ] );
      ( "sorter",
        [
          Alcotest.test_case "exhaustive small" `Quick test_sorter_small_exhaustive;
          Alcotest.test_case "sizes" `Quick test_sorter_sizes;
          Alcotest.test_case "non-power-of-two" `Quick test_sorter_rejects_non_power_of_two;
          QCheck_alcotest.to_alcotest prop_sorter_is_popcount_preserving;
        ] );
      ( "shipped_files",
        [ Alcotest.test_case "match generators" `Slow test_shipped_bench_files_match_generators ] );
      ( "iscas",
        [
          Alcotest.test_case "profiles" `Quick test_iscas_profiles;
          Alcotest.test_case "deterministic" `Quick test_iscas_deterministic;
          Alcotest.test_case "depth scales" `Quick test_iscas_depth_scales;
          Alcotest.test_case "all benchmarks" `Quick test_benchmark_names;
        ] );
    ]
