(* Functional correctness of the datapath generators, each against its
   reference, plus a spot check through the full synthesis flow. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let bits_of w v = Array.init w (fun i -> (v lsr i) land 1 = 1)

let int_of bits =
  Array.to_list bits
  |> List.mapi (fun i b -> if b then 1 lsl i else 0)
  |> List.fold_left ( + ) 0

(* ---------- adders agree with each other and the reference ---------- *)

let test_ripple_exhaustive () =
  let nl = Datapath.ripple_adder 3 in
  for a = 0 to 7 do
    for b = 0 to 7 do
      List.iter
        (fun cin ->
          let outs = Sim.eval nl (Array.concat [ bits_of 3 a; bits_of 3 b; [| cin |] ]) in
          let expect_sum, expect_cout = Circuits.Reference.add 3 a b cin in
          checki "sum" expect_sum (int_of (Array.sub outs 0 3));
          checkb "cout" expect_cout outs.(3))
        [ false; true ]
    done
  done

let test_adders_equivalent () =
  (* ripple, carry-select and Kogge-Stone compute the same function *)
  List.iter
    (fun w ->
      let ks = Circuits.kogge_stone_adder w in
      checkb "ripple = kogge-stone" true (Sim.equivalent (Datapath.ripple_adder w) ks);
      checkb "carry-select = kogge-stone" true
        (Sim.equivalent (Datapath.carry_select_adder w) ks);
      checkb "carry-select block=2" true
        (Sim.equivalent (Datapath.carry_select_adder ~block:2 w) ks))
    [ 4; 8 ]

let test_adder_depth_tradeoff () =
  (* the architectural point: ripple is deepest, kogge-stone shallowest *)
  let depth nl = Netlist.levelize (Netlist.copy nl) in
  let w = 16 in
  let ripple = depth (Datapath.ripple_adder w) in
  let ks = depth (Circuits.kogge_stone_adder w) in
  checkb (Printf.sprintf "ripple %d > kogge-stone %d" ripple ks) true (ripple > ks)

(* ---------- subtractor ---------- *)

let test_subtractor_exhaustive () =
  let nl = Datapath.subtractor 4 in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let outs = Sim.eval nl (Array.append (bits_of 4 a) (bits_of 4 b)) in
      let expect_d, expect_ge = Datapath.Ref.subtract 4 a b in
      checki (Printf.sprintf "%d-%d" a b) expect_d (int_of (Array.sub outs 0 4));
      checkb "no-borrow flag" expect_ge outs.(4)
    done
  done

(* ---------- comparator ---------- *)

let test_comparator_exhaustive () =
  let nl = Datapath.comparator 3 in
  for a = 0 to 7 do
    for b = 0 to 7 do
      let outs = Sim.eval nl (Array.append (bits_of 3 a) (bits_of 3 b)) in
      let lt, eq, gt = (outs.(0), outs.(1), outs.(2)) in
      checkb "lt" (a < b) lt;
      checkb "eq" (a = b) eq;
      checkb "gt" (a > b) gt;
      checkb "one-hot" true
        (List.length (List.filter Fun.id [ lt; eq; gt ]) = 1)
    done
  done

(* ---------- barrel shifter ---------- *)

let test_barrel_shifter_exhaustive () =
  let w = 8 in
  let nl = Datapath.barrel_shifter w in
  for x = 0 to 255 do
    if x mod 7 = 0 then
      for s = 0 to w - 1 do
        let outs = Sim.eval nl (Array.append (bits_of w x) (bits_of 3 s)) in
        checki
          (Printf.sprintf "%d<<%d" x s)
          (Datapath.Ref.shift_left w x s)
          (int_of outs)
      done
  done

(* ---------- priority encoder ---------- *)

let test_priority_encoder_exhaustive () =
  let n = 8 in
  let nl = Datapath.priority_encoder n in
  for v = 0 to 255 do
    let outs = Sim.eval nl (bits_of n v) in
    let y = int_of (Array.sub outs 0 3) in
    let valid = outs.(3) in
    match Datapath.Ref.priority n v with
    | Some idx ->
        checkb "valid" true valid;
        checki "index" idx y
    | None -> checkb "invalid" false valid
  done

(* ---------- mux tree ---------- *)

let test_mux_tree_exhaustive () =
  let n = 8 in
  let nl = Datapath.mux_tree n in
  for v = 0 to 255 do
    if v mod 5 = 0 then
      for s = 0 to n - 1 do
        let outs = Sim.eval nl (Array.append (bits_of n v) (bits_of 3 s)) in
        checkb "mux" (Datapath.Ref.mux n v s) outs.(0)
      done
  done

(* ---------- parity ---------- *)

let test_parity_exhaustive () =
  let nl = Datapath.parity 6 in
  for v = 0 to 63 do
    let outs = Sim.eval nl (bits_of 6 v) in
    checkb "parity" (Datapath.Ref.parity v) outs.(0)
  done

(* ---------- through the flow ---------- *)

let test_datapath_through_synthesis () =
  List.iter
    (fun (label, nl) ->
      let aqfp = Synth_flow.run_quiet nl in
      checkb (label ^ " balanced") true (Netlist.is_balanced aqfp);
      checkb (label ^ " equivalent") true (Sim.equivalent nl aqfp))
    [
      ("carry_select8", Datapath.carry_select_adder 8);
      ("comparator4", Datapath.comparator 4);
      ("barrel8", Datapath.barrel_shifter 8);
      ("prio8", Datapath.priority_encoder 8);
    ]

let test_datapath_full_flow () =
  let r = Flow.run (Datapath.comparator 4) in
  checkb "drc clean" true (r.Flow.violations = []);
  checkb "equivalent" true (Sim.equivalent (Datapath.comparator 4) r.Flow.aqfp_netlist)

let prop_carry_select_blocks =
  QCheck.Test.make ~name:"carry-select equals reference for any block size" ~count:20
    QCheck.(pair (int_range 1 6) (int_range 2 10))
    (fun (block, w) ->
      Sim.equivalent
        (Datapath.carry_select_adder ~block w)
        (Circuits.kogge_stone_adder w))

let () =
  Alcotest.run "datapath"
    [
      ( "adders",
        [
          Alcotest.test_case "ripple exhaustive" `Quick test_ripple_exhaustive;
          Alcotest.test_case "architectures agree" `Quick test_adders_equivalent;
          Alcotest.test_case "depth tradeoff" `Quick test_adder_depth_tradeoff;
          QCheck_alcotest.to_alcotest prop_carry_select_blocks;
        ] );
      ( "blocks",
        [
          Alcotest.test_case "subtractor" `Quick test_subtractor_exhaustive;
          Alcotest.test_case "comparator" `Quick test_comparator_exhaustive;
          Alcotest.test_case "barrel shifter" `Quick test_barrel_shifter_exhaustive;
          Alcotest.test_case "priority encoder" `Quick test_priority_encoder_exhaustive;
          Alcotest.test_case "mux tree" `Quick test_mux_tree_exhaustive;
          Alcotest.test_case "parity" `Quick test_parity_exhaustive;
        ] );
      ( "flow",
        [
          Alcotest.test_case "through synthesis" `Quick test_datapath_through_synthesis;
          Alcotest.test_case "full flow" `Quick test_datapath_full_flow;
        ] );
    ]
