(* Parser robustness: every text/binary reader in the repo must return
   [Error] on malformed input — never raise, never loop. Inputs are
   random garbage, truncations of valid documents, and valid documents
   with random mutations. *)

let to_alco = QCheck_alcotest.to_alcotest

let no_exception f =
  match f () with
  | Ok _ | Error _ -> true
  | exception Stack_overflow -> false
  | exception _ -> false

let arb_garbage =
  QCheck.(
    string_gen_of_size (Gen.int_range 0 400)
      (Gen.map Char.chr (Gen.int_range 1 126)))

(* a valid instance of each format, used for truncation/mutation *)
let valid_verilog =
  "module m(a, b, y);\n  input [1:0] a;\n  input b;\n  output y;\n  assign y = a[0] & b;\nendmodule\n"

let valid_bench = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n"

let valid_tech = Tech.to_string Tech.default

let valid_lef = Lef.library_lef ()

let valid_def =
  let aoi = Circuits.kogge_stone_adder 2 in
  let aqfp = Synth_flow.run_quiet aoi in
  let p = Problem.of_netlist Tech.default aqfp in
  ignore (Placer.place Placer.Superflow p);
  let r = Router.route_all p in
  Def.to_string (Def.of_design p r)

let valid_gds =
  let aoi = Circuits.kogge_stone_adder 2 in
  let aqfp = Synth_flow.run_quiet aoi in
  let p = Problem.of_netlist Tech.default aqfp in
  ignore (Placer.place Placer.Superflow p);
  let r = Router.route_all p in
  Bytes.to_string (Gds.to_bytes (Layout.to_gds (Layout.build p r)))

let truncate_mutate valid rng =
  let n = String.length valid in
  match Rng.int rng 3 with
  | 0 ->
      (* truncation *)
      String.sub valid 0 (Rng.int rng (max 1 n))
  | 1 ->
      (* single byte mutation *)
      let b = Bytes.of_string valid in
      let i = Rng.int rng (max 1 n) in
      Bytes.set b i (Char.chr (1 + Rng.int rng 125));
      Bytes.to_string b
  | _ ->
      (* splice two random halves *)
      let i = Rng.int rng (max 1 n) and j = Rng.int rng (max 1 n) in
      String.sub valid 0 i ^ String.sub valid j (n - j)

let fuzz_parser name parse valid =
  QCheck.Test.make ~name ~count:150
    QCheck.(pair arb_garbage (int_bound 1_000_000))
    (fun (garbage, seed) ->
      let rng = Rng.create seed in
      no_exception (fun () -> parse garbage)
      && no_exception (fun () -> parse (truncate_mutate valid rng)))

let fuzz_verilog = fuzz_parser "verilog parser never raises" Verilog.parse valid_verilog
let fuzz_bench = fuzz_parser "bench parser never raises" Bench_parser.parse valid_bench
let fuzz_tech = fuzz_parser "tech parser never raises" Tech.of_string valid_tech
let fuzz_lef = fuzz_parser "lef parser never raises" Lef.of_string valid_lef
let fuzz_def = fuzz_parser "def parser never raises" Def.of_string valid_def

let fuzz_gds =
  QCheck.Test.make ~name:"gds reader never raises" ~count:150
    QCheck.(pair arb_garbage (int_bound 1_000_000))
    (fun (garbage, seed) ->
      let rng = Rng.create seed in
      no_exception (fun () -> Gds.of_bytes (Bytes.of_string garbage))
      && no_exception (fun () ->
             Gds.of_bytes (Bytes.of_string (truncate_mutate valid_gds rng))))

(* valid inputs stay accepted after the fuzz campaign (sanity that the
   fixtures really are valid) *)
let test_fixtures_valid () =
  let ok = function Ok _ -> true | Error _ -> false in
  Alcotest.(check bool) "verilog" true (ok (Verilog.parse valid_verilog));
  Alcotest.(check bool) "bench" true (ok (Bench_parser.parse valid_bench));
  Alcotest.(check bool) "tech" true (ok (Tech.of_string valid_tech));
  Alcotest.(check bool) "lef" true (ok (Lef.of_string valid_lef));
  Alcotest.(check bool) "def" true (ok (Def.of_string valid_def));
  Alcotest.(check bool) "gds" true (ok (Gds.of_bytes (Bytes.of_string valid_gds)))

let () =
  Alcotest.run "fuzz"
    [
      ( "parsers",
        [
          Alcotest.test_case "fixtures valid" `Quick test_fixtures_valid;
          to_alco fuzz_verilog;
          to_alco fuzz_bench;
          to_alco fuzz_tech;
          to_alco fuzz_lef;
          to_alco fuzz_def;
          to_alco fuzz_gds;
        ] );
    ]
