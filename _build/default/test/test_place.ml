(* Tests for the placement stack: problem construction, the WA model
   and its gradients, global placement, legalization, detailed
   placement, the baselines, and buffer-line insertion. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let small_problem () =
  let aoi = Circuits.kogge_stone_adder 4 in
  let aqfp = Synth_flow.run_quiet aoi in
  Problem.of_netlist Tech.default aqfp

let medium_problem () =
  let aoi = Circuits.benchmark "apc32" in
  let aqfp = Synth_flow.run_quiet aoi in
  Problem.of_netlist Tech.default aqfp

(* ---------- Problem ---------- *)

let test_problem_structure () =
  let p = small_problem () in
  checkb "has cells" true (Array.length p.Problem.cells > 0);
  checkb "has nets" true (Array.length p.Problem.nets > 0);
  (* every net spans exactly one row *)
  Array.iter
    (fun e ->
      let sr = p.Problem.cells.(e.Problem.src).Problem.row in
      let dr = p.Problem.cells.(e.Problem.dst).Problem.row in
      checki "adjacent rows" (sr + 1) dr)
    p.Problem.nets;
  (* initial placement is legal *)
  (match Problem.check_legal p with Ok () -> () | Error e -> Alcotest.fail e)

let test_problem_rejects_unbalanced () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Input [||] in
  let x = Netlist.add nl Netlist.Not [| a |] in
  let y = Netlist.add nl Netlist.And [| x; a |] in
  ignore (Netlist.add nl Netlist.Output [| y |]);
  ignore (Netlist.levelize nl);
  checkb "raises" true
    (try
       ignore (Problem.of_netlist Tech.default nl);
       false
     with Invalid_argument _ -> true)

let test_hpwl_positive_and_consistent () =
  let p = small_problem () in
  let h = Problem.hpwl p in
  checkb "non-negative" true (h >= 0.0);
  (* moving one cell by +10 changes HPWL by at most 10 * (number of its nets) *)
  let c = p.Problem.cells.(0) in
  let nets_of_c =
    Array.to_list p.Problem.nets
    |> List.filter (fun e -> e.Problem.src = 0 || e.Problem.dst = 0)
    |> List.length
  in
  c.Problem.x <- c.Problem.x +. 10.0;
  let h' = Problem.hpwl p in
  checkb "bounded change" true
    (Float.abs (h' -. h) <= (10.0 *. float_of_int nets_of_c) +. 1e-6)

let test_buffer_lines_counting () =
  let p = small_problem () in
  (* stretch one net beyond w_max: put its driver far right *)
  let e = p.Problem.nets.(0) in
  let src = p.Problem.cells.(e.Problem.src) in
  src.Problem.x <- 10_000.0;
  checkb "buffer lines appear" true (Problem.buffer_lines p > 0)

let test_check_legal_detects () =
  let p = small_problem () in
  (* create an overlap in row of cell 0 *)
  let c0 = p.Problem.cells.(p.Problem.row_cells.(2).(0)) in
  let c1 = p.Problem.cells.(p.Problem.row_cells.(2).(1)) in
  c1.Problem.x <- c0.Problem.x +. 10.0;
  (match Problem.check_legal p with
  | Ok () -> Alcotest.fail "overlap not detected"
  | Error _ -> ());
  (* fix overlap but violate spacing *)
  c1.Problem.x <- c0.Problem.x +. c0.Problem.lib.Cell.width +. 5.0;
  (match Problem.check_legal p with
  | Ok () -> Alcotest.fail "spacing not detected"
  | Error _ -> ())

(* ---------- WA model ---------- *)

let test_wa_upper_bounds_hpwl () =
  let p = medium_problem () in
  let xs = Problem.copy_positions p in
  let hpwl = Problem.hpwl p in
  let wa2 = Wa_model.wa_wirelength p ~gamma:2.0 xs in
  let wa20 = Wa_model.wa_wirelength p ~gamma:20.0 xs in
  (* WA underestimates |dx| but approaches it as gamma shrinks *)
  checkb "wa2 close to hpwl" true (Float.abs (wa2 -. hpwl) /. Float.max 1.0 hpwl < 0.2);
  checkb "smaller gamma tighter" true
    (Float.abs (wa2 -. hpwl) <= Float.abs (wa20 -. hpwl) +. 1e-6)

let test_gradient_matches_finite_difference () =
  let p = small_problem () in
  let w = Wa_model.default_weights Tech.default in
  let w = { w with Wa_model.lambda_t = 0.01; lambda_w = 0.5; lambda_d = 0.1 } in
  let xs = Problem.copy_positions p in
  let _, grad = Wa_model.cost_and_grad p w xs in
  let rng = Rng.create 11 in
  for _ = 1 to 12 do
    let i = Rng.int rng (Array.length xs) in
    let h = 1e-3 in
    let save = xs.(i) in
    xs.(i) <- save +. h;
    let cp, _ = Wa_model.cost_and_grad p w xs in
    xs.(i) <- save -. h;
    let cm, _ = Wa_model.cost_and_grad p w xs in
    xs.(i) <- save;
    let fd = (cp -. cm) /. (2.0 *. h) in
    let ok =
      Float.abs (fd -. grad.(i)) <= 1e-3 +. (0.05 *. Float.max (Float.abs fd) (Float.abs grad.(i)))
    in
    checkb (Printf.sprintf "grad[%d] fd=%.4f got=%.4f" i fd grad.(i)) true ok
  done

(* ---------- Legalize ---------- *)

let scramble p seed =
  let rng = Rng.create seed in
  Array.iter
    (fun c -> c.Problem.x <- Rng.float rng 2000.0)
    p.Problem.cells

let test_legalize_produces_legal () =
  let p = medium_problem () in
  scramble p 3;
  Legalize.run p;
  match Problem.check_legal p with Ok () -> () | Error e -> Alcotest.fail e

let test_legalize_preserves_order () =
  let p = small_problem () in
  scramble p 4;
  (* record pre-legalization order *)
  let order_of r =
    let o = Array.copy p.Problem.row_cells.(r) in
    Array.sort (fun a b -> compare p.Problem.cells.(a).Problem.x p.Problem.cells.(b).Problem.x) o;
    o
  in
  let before = Array.init p.Problem.n_rows order_of in
  Legalize.run p;
  let after = Array.init p.Problem.n_rows order_of in
  for r = 0 to p.Problem.n_rows - 1 do
    checkb "order kept" true (before.(r) = after.(r))
  done

let prop_legalize_always_legal =
  QCheck.Test.make ~name:"legalization always yields a legal placement" ~count:25
    QCheck.(int_bound 100_000)
    (fun seed ->
      let p = small_problem () in
      scramble p seed;
      Legalize.run p;
      match Problem.check_legal p with Ok () -> true | Error _ -> false)

(* ---------- Detailed ---------- *)

let test_detailed_improves_and_stays_legal () =
  let p = medium_problem () in
  Quadratic.solve p ~net_weight:(fun _ -> 1.0);
  Legalize.run p;
  let opts = Detailed.default_options in
  let before =
    Detailed.cost p ~lambda_t:opts.Detailed.lambda_t
      ~lambda_wmax:opts.Detailed.lambda_wmax ~lambda_slack:opts.Detailed.lambda_slack
  in
  let moves = Detailed.run p in
  let after =
    Detailed.cost p ~lambda_t:opts.Detailed.lambda_t
      ~lambda_wmax:opts.Detailed.lambda_wmax ~lambda_slack:opts.Detailed.lambda_slack
  in
  checkb "made moves" true (moves > 0);
  checkb "cost not increased" true (after <= before +. 1e-6);
  (match Problem.check_legal p with Ok () -> () | Error e -> Alcotest.fail e)

let test_detailed_mixed_beats_matched () =
  (* the Fig. 4 claim: allowing mixed-size candidates reaches equal or
     better cost than size-matched-only swapping *)
  let run mixed =
    let p = medium_problem () in
    Quadratic.solve p ~net_weight:(fun _ -> 1.0);
    Legalize.run p;
    ignore
      (Detailed.run ~options:{ Detailed.default_options with mixed_size = mixed } p);
    Detailed.cost p ~lambda_t:0.3 ~lambda_wmax:5.0 ~lambda_slack:20.0
  in
  checkb "mixed <= matched" true (run true <= run false +. 1e-6)

(* ---------- Row_dp ---------- *)

let test_row_dp_never_worsens () =
  let p = medium_problem () in
  Quadratic.solve p ~net_weight:(fun _ -> 1.0);
  Legalize.run p;
  let opts = Row_dp.default_options in
  let cost () =
    Detailed.cost p ~lambda_t:opts.Row_dp.lambda_t
      ~lambda_wmax:opts.Row_dp.lambda_wmax ~lambda_slack:opts.Row_dp.lambda_slack
  in
  let before = cost () in
  let improved = Row_dp.run p in
  let after = cost () in
  checkb "rows improved" true (improved > 0);
  checkb "cost not increased" true (after <= before +. 1e-6);
  (match Problem.check_legal p with Ok () -> () | Error e -> Alcotest.fail e)

let test_row_dp_single_row_optimal_vs_shifts () =
  (* the DP is exact for a fixed order, so repeated shift moves cannot
     beat it on the same row *)
  let p = medium_problem () in
  Quadratic.solve p ~net_weight:(fun _ -> 1.0);
  Legalize.run p;
  ignore (Row_dp.run p);
  let opts = Row_dp.default_options in
  let cost () =
    Detailed.cost p ~lambda_t:opts.Row_dp.lambda_t
      ~lambda_wmax:opts.Row_dp.lambda_wmax ~lambda_slack:opts.Row_dp.lambda_slack
  in
  let after_dp = cost () in
  (* shift-only detailed pass (window 0 disables swaps) *)
  let shift_opts =
    {
      Detailed.default_options with
      Detailed.window = 0;
      lambda_t = opts.Row_dp.lambda_t;
      lambda_wmax = opts.Row_dp.lambda_wmax;
      lambda_slack = opts.Row_dp.lambda_slack;
    }
  in
  ignore (Detailed.run ~options:shift_opts p);
  let after_shifts = cost () in
  checkb "shifts cannot find big gains after DP" true
    (after_shifts >= after_dp -. (0.01 *. after_dp))

let test_row_dp_converges () =
  (* repeated sweeps reach a fixpoint: each per-row solve is exact, so
     once no row improves, running again changes nothing *)
  let p = small_problem () in
  Quadratic.solve p ~net_weight:(fun _ -> 1.0);
  Legalize.run p;
  let rec settle k =
    if k = 0 then Alcotest.fail "row DP did not converge in 12 sweeps"
    else if Row_dp.run ~options:{ Row_dp.default_options with Row_dp.passes = 1 } p > 0
    then settle (k - 1)
  in
  settle 12;
  checki "fixpoint" 0
    (Row_dp.run ~options:{ Row_dp.default_options with Row_dp.passes = 1 } p)

(* ---------- Detailed_sa ---------- *)

let test_sa_never_regresses_and_stays_legal () =
  let p = medium_problem () in
  Quadratic.solve p ~net_weight:(fun _ -> 1.0);
  Legalize.run p;
  let w = Place_cost.default_weights in
  let before = Place_cost.total p w in
  let moves = Detailed_sa.run p in
  let after = Place_cost.total p w in
  checkb "made moves" true (moves > 0);
  checkb "best-state result never worse" true (after <= before +. 1e-6);
  (match Problem.check_legal p with Ok () -> () | Error e -> Alcotest.fail e)

let test_sa_deterministic () =
  let run () =
    let p = medium_problem () in
    Quadratic.solve p ~net_weight:(fun _ -> 1.0);
    Legalize.run p;
    ignore (Detailed_sa.run ~options:{ Detailed_sa.default_options with seed = 3 } p);
    Problem.hpwl p
  in
  Alcotest.(check (float 1e-9)) "same result" (run ()) (run ())

(* ---------- Global & baselines ---------- *)

let test_global_beats_initial () =
  let p = medium_problem () in
  let initial = Problem.hpwl p in
  Global.run p;
  checkb "legal" true (Problem.check_legal p = Ok ());
  checkb "improved" true (Problem.hpwl p < initial)

let test_all_placers_legal () =
  List.iter
    (fun alg ->
      let p = medium_problem () in
      let r = Placer.place alg p in
      checkb (Placer.algorithm_name alg ^ " legal") true (Problem.check_legal p = Ok ());
      checkb "hpwl positive" true (r.Placer.hpwl > 0.0))
    [ Placer.Gordian; Placer.Taas; Placer.Superflow ]

let test_superflow_timing_beats_gordian () =
  let aoi = Circuits.benchmark "apc32" in
  let aqfp = Synth_flow.run_quiet aoi in
  let wns alg =
    let p = Problem.of_netlist Tech.default aqfp in
    ignore (Placer.place alg p);
    (Sta.analyze p).Sta.wns_ps
  in
  checkb "superflow wns >= gordian wns" true (wns Placer.Superflow >= wns Placer.Gordian)

let test_placer_deterministic () =
  let run () =
    let p = medium_problem () in
    let r = Placer.place ~seed:5 Placer.Superflow p in
    r.Placer.hpwl
  in
  Alcotest.(check (float 1e-9)) "same result" (run ()) (run ())

(* ---------- Bufferline ---------- *)

let test_bufferline_noop_when_short () =
  let aoi = Circuits.kogge_stone_adder 2 in
  let aqfp = Synth_flow.run_quiet aoi in
  let p = Problem.of_netlist Tech.default aqfp in
  ignore (Placer.place Placer.Superflow p);
  if Problem.buffer_lines p = 0 then begin
    let _, _, lines = Bufferline.insert aqfp p in
    checki "no lines" 0 lines
  end

let test_bufferline_inserts_and_balances () =
  let aoi = Circuits.benchmark "apc32" in
  let aqfp = Synth_flow.run_quiet aoi in
  let p = Problem.of_netlist Tech.default aqfp in
  ignore (Placer.place Placer.Gordian p);
  let expected = Problem.buffer_lines p in
  let nl2, p2, lines = Bufferline.insert aqfp p in
  checkb "lines inserted when counting says so" true (expected = 0 || lines > 0);
  if lines > 0 then begin
    checkb "netlist grew" true (Netlist.size nl2 > Netlist.size aqfp);
    checkb "balanced" true (Netlist.is_balanced nl2);
    checkb "equivalent" true (Sim.equivalent aqfp nl2);
    checkb "legal" true (Problem.check_legal p2 = Ok ());
    (* the line count follows the placement-time estimate, and the
       re-threaded design does not need more lines than were inserted
       (a crowded buffer row can displace some hops, which is physical:
       a full line holds one buffer per crossing net) *)
    checkb "residual below inserted" true (Problem.buffer_lines p2 < lines);
    checkb "lengths under control" true
      (Problem.max_net_length p2
      <= Float.max (2.5 *. Problem.max_net_length p) (Problem.max_net_length p +. 500.0))
  end

let () =
  Alcotest.run "sf_place"
    [
      ( "problem",
        [
          Alcotest.test_case "structure" `Quick test_problem_structure;
          Alcotest.test_case "rejects unbalanced" `Quick test_problem_rejects_unbalanced;
          Alcotest.test_case "hpwl" `Quick test_hpwl_positive_and_consistent;
          Alcotest.test_case "buffer lines" `Quick test_buffer_lines_counting;
          Alcotest.test_case "check_legal" `Quick test_check_legal_detects;
        ] );
      ( "wa_model",
        [
          Alcotest.test_case "wa bounds hpwl" `Quick test_wa_upper_bounds_hpwl;
          Alcotest.test_case "gradient" `Quick test_gradient_matches_finite_difference;
        ] );
      ( "legalize",
        [
          Alcotest.test_case "legal" `Quick test_legalize_produces_legal;
          Alcotest.test_case "order preserved" `Quick test_legalize_preserves_order;
          QCheck_alcotest.to_alcotest prop_legalize_always_legal;
        ] );
      ( "detailed",
        [
          Alcotest.test_case "improves" `Quick test_detailed_improves_and_stays_legal;
          Alcotest.test_case "mixed beats matched" `Slow test_detailed_mixed_beats_matched;
        ] );
      ( "detailed_sa",
        [
          Alcotest.test_case "never regresses" `Quick test_sa_never_regresses_and_stays_legal;
          Alcotest.test_case "deterministic" `Quick test_sa_deterministic;
        ] );
      ( "row_dp",
        [
          Alcotest.test_case "never worsens" `Quick test_row_dp_never_worsens;
          Alcotest.test_case "optimal vs shifts" `Slow test_row_dp_single_row_optimal_vs_shifts;
          Alcotest.test_case "converges" `Quick test_row_dp_converges;
        ] );
      ( "placers",
        [
          Alcotest.test_case "global beats initial" `Quick test_global_beats_initial;
          Alcotest.test_case "all legal" `Slow test_all_placers_legal;
          Alcotest.test_case "timing ordering" `Slow test_superflow_timing_beats_gordian;
          Alcotest.test_case "deterministic" `Slow test_placer_deterministic;
        ] );
      ( "bufferline",
        [
          Alcotest.test_case "noop" `Quick test_bufferline_noop_when_short;
          Alcotest.test_case "insert+balance" `Slow test_bufferline_inserts_and_balances;
        ] );
    ]
