(* Cross-module property-based tests: randomized invariants that
   complement the per-module unit suites. *)

let to_alco = QCheck_alcotest.to_alcotest

(* ---------- geometry ---------- *)

let arb_rect =
  QCheck.(
    map
      (fun (x, y, w, h) -> Geom.rect_of_size ~x ~y ~w:(w +. 1.0) ~h:(h +. 1.0))
      (quad (float_bound_inclusive 500.0) (float_bound_inclusive 500.0)
         (float_bound_inclusive 200.0) (float_bound_inclusive 200.0)))

let prop_union_contains =
  QCheck.Test.make ~name:"rect union contains both rects" ~count:200
    QCheck.(pair arb_rect arb_rect)
    (fun (a, b) ->
      let u = Geom.union_rect a b in
      u.Geom.lx <= a.Geom.lx && u.Geom.lx <= b.Geom.lx
      && u.Geom.hx >= a.Geom.hx && u.Geom.hx >= b.Geom.hx
      && u.Geom.ly <= a.Geom.ly && u.Geom.hy >= b.Geom.hy)

let prop_intersection_inside =
  QCheck.Test.make ~name:"rect intersection is inside both" ~count:200
    QCheck.(pair arb_rect arb_rect)
    (fun (a, b) ->
      match Geom.intersection a b with
      | None -> not (Geom.overlaps a b)
      | Some i ->
          i.Geom.lx >= a.Geom.lx && i.Geom.hx <= a.Geom.hx
          && i.Geom.lx >= b.Geom.lx && i.Geom.hx <= b.Geom.hx
          && Geom.area i >= 0.0)

let prop_overlap_symmetric =
  QCheck.Test.make ~name:"overlap and distance are symmetric" ~count:200
    QCheck.(pair arb_rect arb_rect)
    (fun (a, b) ->
      Geom.overlaps a b = Geom.overlaps b a
      && Float.abs (Geom.dist_rect a b -. Geom.dist_rect b a) < 1e-9)

let prop_overlap_iff_zero_dist =
  QCheck.Test.make ~name:"overlapping rects are at zero distance" ~count:200
    QCheck.(pair arb_rect arb_rect)
    (fun (a, b) -> (not (Geom.overlaps a b)) || Geom.dist_rect a b = 0.0)

(* ---------- vec as a list model ---------- *)

let prop_vec_model =
  QCheck.Test.make ~name:"vec behaves like a list" ~count:200
    QCheck.(list int)
    (fun xs ->
      let v = Vec.create () in
      List.iter (fun x -> ignore (Vec.push v x)) xs;
      Vec.to_list v = xs
      && Vec.length v = List.length xs
      && Vec.fold ( + ) 0 v = List.fold_left ( + ) 0 xs)

(* ---------- truth tables ---------- *)

let arb_tt3 = QCheck.int_bound 255

let prop_truth_de_morgan =
  QCheck.Test.make ~name:"truth tables satisfy De Morgan" ~count:200
    QCheck.(pair arb_tt3 arb_tt3)
    (fun (a, b) ->
      Truth.not_ 3 (Truth.and_ a b)
      = Truth.or_ (Truth.not_ 3 a) (Truth.not_ 3 b)
      && Truth.not_ 3 (Truth.or_ a b)
         = Truth.and_ (Truth.not_ 3 a) (Truth.not_ 3 b))

let prop_truth_maj_self_dual =
  QCheck.Test.make ~name:"majority is self-dual" ~count:200
    QCheck.(triple arb_tt3 arb_tt3 arb_tt3)
    (fun (a, b, c) ->
      let m = Truth.mask 3 in
      Truth.not_ 3 (Truth.maj (a land m) (b land m) (c land m))
      = Truth.maj (Truth.not_ 3 (a land m)) (Truth.not_ 3 (b land m))
          (Truth.not_ 3 (c land m)))

(* ---------- maj database vs truth semantics ---------- *)

let prop_majdb_cost_invariant_under_negation =
  QCheck.Test.make ~name:"negating a function costs at most one inverter" ~count:100
    arb_tt3
    (fun tt ->
      let c1 = Maj_db.cost tt and c2 = Maj_db.cost (Truth.not_ 3 tt) in
      abs (c1 - c2) <= 2)

(* ---------- tech description ---------- *)

let prop_tech_roundtrip =
  QCheck.Test.make ~name:"tech description round-trips" ~count:100
    QCheck.(pair (float_range 50.0 2000.0) (float_range 1.0 10.0))
    (fun (w_max, ghz) ->
      let t = { Tech.default with Tech.w_max; clock_freq_ghz = ghz } in
      match Tech.of_string (Tech.to_string t) with
      | Ok t' ->
          Float.abs (t'.Tech.w_max -. w_max) < 1e-4
          && Float.abs (t'.Tech.clock_freq_ghz -. ghz) < 1e-4
      | Error _ -> false)

(* ---------- end-to-end pipeline invariants on random circuits ---------- *)

let prop_full_pipeline_on_random_circuits =
  QCheck.Test.make ~name:"synthesize+place+insert preserves everything" ~count:8
    QCheck.(int_bound 100_000)
    (fun seed ->
      let aoi = Circuits.iscas_like ~seed ~pi:6 ~po:3 ~gates:30 ~depth:5 in
      let aqfp = Synth_flow.run_quiet aoi in
      let p = Problem.of_netlist Tech.default aqfp in
      ignore (Placer.place Placer.Superflow p);
      let nl2, p2, _lines = Bufferline.insert aqfp p in
      Sim.equivalent aoi nl2
      && Netlist.is_balanced nl2
      && Problem.check_legal p2 = Ok ())

let prop_def_roundtrip_random =
  QCheck.Test.make ~name:"DEF round-trips across placements" ~count:5
    QCheck.(int_bound 1000)
    (fun seed ->
      let aoi = Circuits.kogge_stone_adder 2 in
      let aqfp = Synth_flow.run_quiet aoi in
      let p = Problem.of_netlist Tech.default aqfp in
      ignore (Placer.place ~seed Placer.Superflow p);
      let routed = Router.route_all p in
      let def = Def.of_design p routed in
      match Def.of_string (Def.to_string def) with
      | Ok def2 ->
          List.length def.Def.components = List.length def2.Def.components
          && List.length def.Def.nets = List.length def2.Def.nets
      | Error _ -> false)

let prop_fault_coverage_monotone =
  QCheck.Test.make ~name:"adding vectors never lowers fault coverage" ~count:10
    QCheck.(int_bound 1000)
    (fun seed ->
      let nl = Circuits.kogge_stone_adder 2 in
      let rng = Rng.create seed in
      let n_in = List.length (Netlist.inputs nl) in
      let vecs k = List.init k (fun _ -> Array.init n_in (fun _ -> Rng.bool rng)) in
      let v5 = vecs 5 in
      let v10 = v5 @ vecs 5 in
      let c5, _ = Fault.coverage nl v5 in
      let c10, _ = Fault.coverage nl v10 in
      c10 >= c5 -. 1e-12)

let prop_opt_never_grows =
  QCheck.Test.make ~name:"optimization never grows a netlist" ~count:30
    QCheck.(int_bound 100_000)
    (fun seed ->
      let nl = Circuits.iscas_like ~seed ~pi:8 ~po:4 ~gates:50 ~depth:6 in
      Netlist.size (Opt.optimize nl) <= Netlist.size nl)

let () =
  Alcotest.run "properties"
    [
      ( "geometry",
        [
          to_alco prop_union_contains;
          to_alco prop_intersection_inside;
          to_alco prop_overlap_symmetric;
          to_alco prop_overlap_iff_zero_dist;
        ] );
      ("containers", [ to_alco prop_vec_model ]);
      ( "boolean",
        [
          to_alco prop_truth_de_morgan;
          to_alco prop_truth_maj_self_dual;
          to_alco prop_majdb_cost_invariant_under_negation;
        ] );
      ("tech", [ to_alco prop_tech_roundtrip ]);
      ( "pipeline",
        [
          to_alco prop_full_pipeline_on_random_circuits;
          to_alco prop_def_roundtrip_random;
          to_alco prop_fault_coverage_monotone;
          to_alco prop_opt_never_grows;
        ] );
    ]
