(* Quality-regression guards: generous metric windows around the
   currently-achieved results on small benchmarks. A correctness bug
   usually trips the unit suites; these catch silent QUALITY
   regressions (a placer that legalizes but scatters, a router that
   routes but detours 3x, a mapper that forgets to share logic).

   The windows are deliberately loose (roughly +/- 30-50% around
   today's numbers) so tuning work doesn't turn them red, while
   order-of-magnitude regressions do. *)

let checkb = Alcotest.(check bool)

let within label lo hi v =
  checkb (Printf.sprintf "%s = %.1f in [%.1f, %.1f]" label v lo hi) true
    (v >= lo && v <= hi)

let test_synthesis_quality () =
  let _, r = Synth_flow.run (Circuits.benchmark "adder8") in
  within "adder8 JJs" 1000.0 3000.0 (float_of_int r.Synth_flow.jjs);
  within "adder8 nets" 400.0 1400.0 (float_of_int r.Synth_flow.nets);
  within "adder8 delay" 12.0 30.0 (float_of_int r.Synth_flow.delay)

let test_placement_quality () =
  let aqfp = Synth_flow.run_quiet (Circuits.benchmark "adder8") in
  let p = Problem.of_netlist Tech.default aqfp in
  let res = Placer.place Placer.Superflow p in
  (* today: ~89k um, 10 lines, wns ~ -26ps *)
  within "adder8 hpwl" 30_000.0 140_000.0 res.Placer.hpwl;
  within "adder8 buffer lines" 0.0 20.0 (float_of_int res.Placer.buffer_lines);
  let sta = Sta.analyze p in
  within "adder8 wns" (-45.0) 30.0 sta.Sta.wns_ps

let test_placement_beats_baselines_often () =
  (* SuperFlow's headline claim, kept as a regression: over the small
     circuits its HPWL geomean is at least as good as both baselines *)
  let geomean alg =
    let values =
      List.map
        (fun name ->
          let aqfp = Synth_flow.run_quiet (Circuits.benchmark name) in
          let p = Problem.of_netlist Tech.default aqfp in
          (Placer.place alg p).Placer.hpwl)
        [ "adder8"; "apc32"; "decoder" ]
    in
    Stats.geomean (Array.of_list values)
  in
  let sf = geomean Placer.Superflow in
  checkb "superflow <= gordian (hpwl geomean)" true (sf <= geomean Placer.Gordian *. 1.02);
  checkb "superflow <= taas (hpwl geomean)" true (sf <= geomean Placer.Taas *. 1.02)

let test_routing_quality () =
  let aqfp = Synth_flow.run_quiet (Circuits.benchmark "adder8") in
  let p = Problem.of_netlist Tech.default aqfp in
  ignore (Placer.place Placer.Superflow p);
  ignore (Congestion.preexpand p);
  let r = Router.route_all p in
  (* today: ~200k um against an ~130k lower bound *)
  let lower =
    Array.fold_left (fun acc e -> acc +. Problem.net_length p e) 0.0 p.Problem.nets
  in
  within "adder8 routed/manhattan ratio" 1.0 2.0 (r.Router.wirelength /. lower);
  within "adder8 expansions" 0.0 60.0 (float_of_int r.Router.expansions)

let test_test_generation_quality () =
  let aqfp = Synth_flow.run_quiet (Circuits.kogge_stone_adder 4) in
  let t = Fault.generate ~seed:1 aqfp in
  within "fault coverage" 0.9 1.0 t.Fault.achieved;
  within "vector count" 1.0 120.0 (float_of_int (List.length t.Fault.vectors))

let test_synthesis_saves_vs_naive () =
  (* the MAJ cut mapping should keep saving JJs vs per-gate mapping *)
  let nl = Circuits.benchmark "apc32" in
  let smart = Cell.netlist_jj_count (Aoi_to_maj.convert nl) in
  let naive = Cell.netlist_jj_count (Aoi_to_maj.convert_naive nl) in
  within "apc32 mapping saving" 0.05 0.6
    (float_of_int (naive - smart) /. float_of_int naive)

let () =
  Alcotest.run "regression"
    [
      ( "quality",
        [
          Alcotest.test_case "synthesis" `Quick test_synthesis_quality;
          Alcotest.test_case "placement" `Quick test_placement_quality;
          Alcotest.test_case "placement vs baselines" `Slow test_placement_beats_baselines_often;
          Alcotest.test_case "routing" `Quick test_routing_quality;
          Alcotest.test_case "test generation" `Quick test_test_generation_quality;
          Alcotest.test_case "mapping saving" `Quick test_synthesis_saves_vs_naive;
        ] );
    ]
