(* Tests for the Verilog-subset RTL frontend. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let parse_ok src =
  match Verilog.parse src with Ok nl -> nl | Error e -> Alcotest.fail e

let test_scalar_assign () =
  let nl =
    parse_ok
      {|
module m(a, b, c, y);
  input a, b, c;
  output y;
  assign y = (a & b) | ~c;
endmodule
|}
  in
  checki "inputs" 3 (List.length (Netlist.inputs nl));
  checki "outputs" 1 (List.length (Netlist.outputs nl));
  List.iter
    (fun (a, b, c) ->
      let r = Sim.eval nl [| a; b; c |] in
      checkb "function" ((a && b) || not c) r.(0))
    [ (false, false, false); (true, true, true); (true, false, true); (false, true, false) ]

let test_operator_precedence () =
  (* & binds tighter than ^ binds tighter than | *)
  let nl =
    parse_ok
      "module m(a,b,c,y); input a,b,c; output y; assign y = a | b & c; endmodule"
  in
  List.iter
    (fun (a, b, c) ->
      let r = Sim.eval nl [| a; b; c |] in
      checkb "precedence" (a || (b && c)) r.(0))
    [ (true, false, false); (false, true, false); (false, true, true) ]

let test_vectors_bitwise () =
  let nl =
    parse_ok
      {|
module m(a, b, y);
  input [3:0] a;
  input [3:0] b;
  output [3:0] y;
  assign y = a ^ b;
endmodule
|}
  in
  checki "inputs" 8 (List.length (Netlist.inputs nl));
  checki "outputs" 4 (List.length (Netlist.outputs nl));
  let r = Sim.eval nl [| true; false; true; false; true; true; false; false |] in
  (* a = 0101 (lsb first: a0=1,a1=0,a2=1,a3=0), b: b0=1,b1=1,b2=0,b3=0 *)
  Alcotest.(check (list bool)) "xor" [ false; true; true; false ] (Array.to_list r)

let test_bit_select () =
  let nl =
    parse_ok
      {|
module m(a, y);
  input [2:0] a;
  output y;
  assign y = a[0] & a[2];
endmodule
|}
  in
  let r = Sim.eval nl [| true; false; true |] in
  checkb "bit select" true r.(0);
  let r = Sim.eval nl [| true; true; false |] in
  checkb "bit select 2" false r.(0)

let test_wires_and_order_independence () =
  let nl =
    parse_ok
      {|
module m(a, b, y);
  input a, b;
  output y;
  wire t;
  assign y = t | b;
  assign t = a & b;
endmodule
|}
  in
  let r = Sim.eval nl [| true; true |] in
  checkb "wire" true r.(0)

let test_gate_primitives () =
  let nl =
    parse_ok
      {|
module m(a, b, c, y);
  input a, b, c;
  output y;
  wire t1, t2;
  and g1(t1, a, b, c);
  not g2(t2, c);
  or g3(y, t1, t2);
endmodule
|}
  in
  List.iter
    (fun (a, b, c) ->
      let r = Sim.eval nl [| a; b; c |] in
      checkb "primitives" ((a && b && c) || not c) r.(0))
    [ (true, true, true); (false, false, false); (true, true, false) ]

let test_literals () =
  let nl =
    parse_ok
      {|
module m(a, y, z);
  input a;
  output y, z;
  assign y = a & 1'b1;
  assign z = a ^ 1'b0;
endmodule
|}
  in
  let r = Sim.eval nl [| true |] in
  checkb "and true" true r.(0);
  checkb "xor false" true r.(1)

let test_vector_literal () =
  let nl =
    parse_ok
      {|
module m(a, y);
  input [3:0] a;
  output [3:0] y;
  assign y = a ^ 4'b1010;
endmodule
|}
  in
  (* 4'b1010 has msb-first digits 1,0,1,0 -> bit0=0 bit1=1 bit2=0 bit3=1 *)
  let r = Sim.eval nl [| false; false; false; false |] in
  Alcotest.(check (list bool)) "literal bits" [ false; true; false; true ] (Array.to_list r)

let test_concatenation () =
  let nl =
    parse_ok
      {|
module m(a, b, y);
  input [1:0] a;
  input [1:0] b;
  output [3:0] y;
  assign y = {a, b};
endmodule
|}
  in
  (* {a, b}: a is the MSB half, b the LSB half *)
  let r = Sim.eval nl [| true; false; false; true |] in
  (* a = 01 (a0=1,a1=0), b = 10 (b0=0,b1=1) -> y = a:b = 0110 -> bits y0=0,y1=1,y2=1,y3=0 *)
  Alcotest.(check (list bool)) "concat" [ false; true; true; false ] (Array.to_list r)

let test_replication () =
  let nl =
    parse_ok
      {|
module m(a, s, y);
  input [3:0] a;
  input s;
  output [3:0] y;
  assign y = a & {4{s}};
endmodule
|}
  in
  let r = Sim.eval nl [| true; false; true; true; true |] in
  Alcotest.(check (list bool)) "mask on" [ true; false; true; true ] (Array.to_list r);
  let r = Sim.eval nl [| true; false; true; true; false |] in
  Alcotest.(check (list bool)) "mask off" [ false; false; false; false ] (Array.to_list r)

let test_concat_mixed_elements () =
  let nl =
    parse_ok
      {|
module m(a, y);
  input [1:0] a;
  output [3:0] y;
  assign y = {1'b1, a[0], a};
endmodule
|}
  in
  (* concat parts MSB-first: 1'b1, a[0], a (widths 1,1,2); reading
     from the LSB side: y0=a0, y1=a1, y2=a[0], y3=1 *)
  let r = Sim.eval nl [| true; false |] in
  Alcotest.(check (list bool)) "mixed" [ true; false; true; true ] (Array.to_list r)

let test_comments () =
  let nl =
    parse_ok
      {|
// leading comment
module m(a, y); /* block
   comment */ input a;
  output y;
  assign y = ~a; // trailing
endmodule
|}
  in
  checkb "not" true (Sim.eval nl [| false |]).(0)

let expect_error src frag =
  match Verilog.parse src with
  | Ok _ -> Alcotest.fail ("expected failure mentioning " ^ frag)
  | Error msg ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
        loop 0
      in
      checkb ("error mentions " ^ frag ^ ": " ^ msg) true (contains msg frag)

let test_concat_width_mismatch () =
  expect_error
    "module m(a, y); input [1:0] a; output [2:0] y; assign y = {a, a}; endmodule"
    "concatenation"

let test_errors () =
  expect_error "module m(a, y); input a; output y; assign y = a + a; endmodule" "expected";
  expect_error "module m(a, y); input a; output y; always @(a) y = a; endmodule" "always";
  expect_error "module m(a, y); input a; output y; assign y = b; endmodule" "undeclared";
  expect_error "module m(a, y); input a; output y; endmodule" "never driven";
  expect_error
    "module m(a, y); input a; output y; assign y = t; wire t; assign t = y; endmodule"
    "cycle";
  expect_error
    "module m(a, y); input a; output y; assign y = a; assign y = ~a; endmodule"
    "multiple drivers";
  expect_error "module m(a, y); input a; output y; assign y = a" "expected"

let test_multibit_mismatch () =
  expect_error
    "module m(a, y); input [3:0] a; output y; assign y = a; endmodule"
    "scalar"

let test_matches_handbuilt_adder () =
  (* a 2-bit ripple adder in RTL vs the generator-built Kogge-Stone *)
  let nl =
    parse_ok
      {|
module add2(a, b, cin, s, cout);
  input [1:0] a;
  input [1:0] b;
  input cin;
  output [1:0] s;
  output cout;
  wire c1;
  assign s[0] = a[0] ^ b[0] ^ cin;
  assign c1 = (a[0] & b[0]) | (cin & (a[0] ^ b[0]));
  assign s[1] = a[1] ^ b[1] ^ c1;
  assign cout = (a[1] & b[1]) | (c1 & (a[1] ^ b[1]));
endmodule
|}
  in
  (* input order differs from the generator (a0,a1,b0,b1,cin here) so
     compare by direct evaluation. *)
  for v = 0 to 31 do
    let a0 = v land 1 = 1 and a1 = v land 2 = 2 in
    let b0 = v land 4 = 4 and b1 = v land 8 = 8 in
    let cin = v land 16 = 16 in
    let a = (if a0 then 1 else 0) + if a1 then 2 else 0 in
    let b = (if b0 then 1 else 0) + if b1 then 2 else 0 in
    let expect_sum, expect_cout = Circuits.Reference.add 2 a b cin in
    let r = Sim.eval nl [| a0; a1; b0; b1; cin |] in
    let sum = (if r.(0) then 1 else 0) + if r.(1) then 2 else 0 in
    checki "rtl adder sum" expect_sum sum;
    checkb "rtl adder cout" expect_cout r.(2)
  done

(* ---------- Hierarchy ---------- *)

let test_hierarchy_basic () =
  let nl =
    parse_ok
      {|
module half_adder(a, b, s, c);
  input a, b;
  output s, c;
  assign s = a ^ b;
  assign c = a & b;
endmodule

module full_adder(a, b, cin, s, cout);
  input a, b, cin;
  output s, cout;
  wire s1, c1, c2;
  half_adder ha1(a, b, s1, c1);
  half_adder ha2(s1, cin, s, c2);
  assign cout = c1 | c2;
endmodule
|}
  in
  checki "inputs" 3 (List.length (Netlist.inputs nl));
  checki "outputs" 2 (List.length (Netlist.outputs nl));
  for v = 0 to 7 do
    let a = v land 1 = 1 and b = v land 2 = 2 and cin = v land 4 = 4 in
    let r = Sim.eval nl [| a; b; cin |] in
    let total = (if a then 1 else 0) + (if b then 1 else 0) + if cin then 1 else 0 in
    checkb "sum" (total land 1 = 1) r.(0);
    checkb "carry" (total >= 2) r.(1)
  done

let test_hierarchy_vector_ports () =
  let nl =
    parse_ok
      {|
module inverter4(x, y);
  input [3:0] x;
  output [3:0] y;
  assign y = ~x;
endmodule

module top(a, z);
  input [3:0] a;
  output [3:0] z;
  wire [3:0] t;
  inverter4 u1(a, t);
  inverter4 u2(t, z);
endmodule
|}
  in
  let r = Sim.eval nl [| true; false; true; false |] in
  Alcotest.(check (list bool)) "double inversion"
    [ true; false; true; false ] (Array.to_list r)

let test_hierarchy_nested_two_levels () =
  let nl =
    parse_ok
      {|
module n1(a, y);
  input a; output y;
  assign y = ~a;
endmodule
module n2(a, y);
  input a; output y;
  wire t;
  n1 u(a, t);
  n1 v(t, y);
endmodule
module n3(a, y);
  input a; output y;
  wire t;
  n2 u(a, t);
  n1 w(t, y);
endmodule
|}
  in
  (* three inversions total *)
  checkb "three inversions of 1 is 0" false (Sim.eval nl [| true |]).(0);
  checkb "three inversions of 0 is 1" true (Sim.eval nl [| false |]).(0)

let test_hierarchy_errors () =
  expect_error
    "module top(a, y); input a; output y; nonexistent u(a, y); endmodule"
    "unknown module";
  expect_error
    {|
module sub(a, y); input a; output y; assign y = a; endmodule
module top(a, y); input a; output y; sub u(a); endmodule
|}
    "connects";
  expect_error
    {|
module sub(a, y); input [1:0] a; output y; assign y = a[0]; endmodule
module top(a, y); input a; output y; sub u(a, y); endmodule
|}
    "bits";
  (* recursive instantiation is caught *)
  expect_error
    {|
module loop(a, y); input a; output y; wire t; loop u(a, t); assign y = t; endmodule
|}
    "deep"

(* ---------- Verilog writer ---------- *)

let test_writer_roundtrip_aoi () =
  let nl = Circuits.kogge_stone_adder 4 in
  checkb "adder is roundtrippable" true (Verilog_writer.is_roundtrippable nl);
  let text = Verilog_writer.to_verilog nl in
  match Verilog.parse text with
  | Error e -> Alcotest.fail e
  | Ok nl2 ->
      checki "inputs" (List.length (Netlist.inputs nl)) (List.length (Netlist.inputs nl2));
      checki "outputs" (List.length (Netlist.outputs nl)) (List.length (Netlist.outputs nl2));
      checkb "equivalent" true (Sim.equivalent nl nl2)

let test_writer_roundtrip_random () =
  for seed = 1 to 10 do
    let nl = Circuits.iscas_like ~seed ~pi:6 ~po:3 ~gates:25 ~depth:5 in
    let text = Verilog_writer.to_verilog nl in
    match Verilog.parse text with
    | Error e -> Alcotest.fail e
    | Ok nl2 -> checkb "equivalent" true (Sim.equivalent nl nl2)
  done

let test_writer_aqfp_cells () =
  let aqfp = Synth_flow.run_quiet (Circuits.kogge_stone_adder 2) in
  checkb "aqfp not primitive-only" false (Verilog_writer.is_roundtrippable aqfp);
  let text = Verilog_writer.to_verilog ~module_name:"adder2_aqfp" aqfp in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
    loop 0
  in
  checkb "module name" true (contains text "module adder2_aqfp");
  checkb "maj cells" true (contains text "maj3 ");
  checkb "splitters" true (contains text "spl");
  checkb "ends" true (contains text "endmodule")

let test_writer_sanitizes_names () =
  let nl = Netlist.create () in
  let a = Netlist.add nl ~name:"a[0]" Netlist.Input [||] in
  let y = Netlist.add nl Netlist.Not [| a |] in
  ignore (Netlist.add nl ~name:"y[0]" Netlist.Output [| y |]);
  let text = Verilog_writer.to_verilog nl in
  match Verilog.parse text with
  | Error e -> Alcotest.fail e
  | Ok nl2 -> checkb "equivalent" true (Sim.equivalent nl nl2)

let () =
  Alcotest.run "sf_rtl"
    [
      ( "verilog",
        [
          Alcotest.test_case "scalar assign" `Quick test_scalar_assign;
          Alcotest.test_case "precedence" `Quick test_operator_precedence;
          Alcotest.test_case "vectors" `Quick test_vectors_bitwise;
          Alcotest.test_case "bit select" `Quick test_bit_select;
          Alcotest.test_case "wires/order" `Quick test_wires_and_order_independence;
          Alcotest.test_case "gate primitives" `Quick test_gate_primitives;
          Alcotest.test_case "literals" `Quick test_literals;
          Alcotest.test_case "vector literal" `Quick test_vector_literal;
          Alcotest.test_case "concatenation" `Quick test_concatenation;
          Alcotest.test_case "replication" `Quick test_replication;
          Alcotest.test_case "concat mixed" `Quick test_concat_mixed_elements;
          Alcotest.test_case "concat width" `Quick test_concat_width_mismatch;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "width mismatch" `Quick test_multibit_mismatch;
          Alcotest.test_case "rtl adder" `Quick test_matches_handbuilt_adder;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "full adder from half adders" `Quick test_hierarchy_basic;
          Alcotest.test_case "vector ports" `Quick test_hierarchy_vector_ports;
          Alcotest.test_case "nested" `Quick test_hierarchy_nested_two_levels;
          Alcotest.test_case "errors" `Quick test_hierarchy_errors;
        ] );
      ( "writer",
        [
          Alcotest.test_case "roundtrip aoi" `Quick test_writer_roundtrip_aoi;
          Alcotest.test_case "roundtrip random" `Quick test_writer_roundtrip_random;
          Alcotest.test_case "aqfp cells" `Quick test_writer_aqfp_cells;
          Alcotest.test_case "sanitized names" `Quick test_writer_sanitizes_names;
        ] );
    ]
