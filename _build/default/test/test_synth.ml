(* Tests for the majority database, the AOI->MAJ converter, and
   splitter/buffer insertion — including the central invariant that
   synthesis preserves the computed function. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------- Maj_db ---------- *)

let test_db_total () = checki "256 entries" 256 (Maj_db.coverage ())

let test_db_implementations_correct () =
  (* Every entry's implementation evaluates to its truth table. *)
  for tt = 0 to 255 do
    let impl = Maj_db.lookup tt in
    for idx = 0 to 7 do
      let inputs = Array.init 3 (fun k -> (idx lsr k) land 1 = 1) in
      let got = Maj_db.eval_impl impl inputs in
      let expect = (tt lsr idx) land 1 = 1 in
      checkb (Printf.sprintf "tt=%d idx=%d" tt idx) expect got
    done
  done

let test_db_known_costs () =
  let v0 = Truth.var 0 3 and v1 = Truth.var 1 3 in
  (* a plain variable is free *)
  checki "wire" 0 (Maj_db.cost v0);
  (* single negation = one inverter *)
  checki "inverter" 2 (Maj_db.cost (Truth.not_ 3 v0));
  (* and2 / or2 are single 6-JJ cells *)
  checki "and2" 6 (Maj_db.cost (Truth.and_ v0 v1));
  checki "or2" 6 (Maj_db.cost (Truth.or_ v0 v1));
  (* a full majority is a single cell *)
  checki "maj3" 6 (Maj_db.cost (Truth.maj v0 v1 (Truth.var 2 3)));
  (* nand2 = and2 + output inverter *)
  checki "nand2" 8 (Maj_db.cost (Truth.not_ 3 (Truth.and_ v0 v1)))

let test_db_xor_within_two_levels () =
  let v0 = Truth.var 0 3 and v1 = Truth.var 1 3 and v2 = Truth.var 2 3 in
  let xor2 = Truth.xor v0 v1 in
  let impl = Maj_db.lookup xor2 in
  checkb "xor2 needs >1 gate" true (Array.length impl.Maj_db.gates >= 2);
  let xor3 = Truth.xor (Truth.xor v0 v1) v2 in
  let impl3 = Maj_db.lookup xor3 in
  checkb "xor3 exists" true (impl3.Maj_db.jj > 0);
  checkb "db stays shallow" true (Maj_db.max_gates () <= 8)

let test_db_depth_bound () =
  for tt = 0 to 255 do
    let impl = Maj_db.lookup tt in
    checkb "depth bounded" true (impl.Maj_db.depth <= 4)
  done

(* ---------- Opt ---------- *)

let test_opt_constant_folding () =
  let nl = Netlist.create () in
  let a = Netlist.add nl ~name:"a" Netlist.Input [||] in
  let zero = Netlist.add nl (Netlist.Const false) [||] in
  let one = Netlist.add nl (Netlist.Const true) [||] in
  let g1 = Netlist.add nl Netlist.And [| a; zero |] in
  (* = 0 *)
  let g2 = Netlist.add nl Netlist.Or [| g1; one |] in
  (* = 1 *)
  let g3 = Netlist.add nl Netlist.Xor [| g2; a |] in
  (* = ~a *)
  ignore (Netlist.add nl ~name:"y" Netlist.Output [| g3 |]);
  let opt, stats = Opt.optimize_with_stats nl in
  checkb "shrunk" true (stats.Opt.nodes_after < stats.Opt.nodes_before);
  checkb "equivalent" true (Sim.equivalent nl opt);
  (* ~a is 1 input + 1 not + 1 output = 3 nodes *)
  checkb "tiny result" true (Netlist.size opt <= 3)

let test_opt_identities () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Input [||] in
  let b = Netlist.add nl Netlist.Input [||] in
  let na = Netlist.add nl Netlist.Not [| a |] in
  let nna = Netlist.add nl Netlist.Not [| na |] in
  (* double negation *)
  let aa = Netlist.add nl Netlist.And [| nna; a |] in
  (* and(x,x) = x *)
  let contradiction = Netlist.add nl Netlist.And [| aa; na |] in
  (* and(a,~a) = 0 *)
  let y = Netlist.add nl Netlist.Or [| contradiction; b |] in
  (* or(0,b) = b *)
  ignore (Netlist.add nl Netlist.Output [| y |]);
  let opt = Opt.optimize nl in
  checkb "equivalent" true (Sim.equivalent nl opt);
  (* result should be just a wire from b *)
  let gates =
    Netlist.count_kind opt (function
      | Netlist.Input | Netlist.Output | Netlist.Const _ -> false
      | _ -> true)
  in
  checki "no gates left" 0 gates

let test_opt_cse () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Input [||] in
  let b = Netlist.add nl Netlist.Input [||] in
  (* two copies of the same expression, with commuted operands *)
  let g1 = Netlist.add nl Netlist.And [| a; b |] in
  let g2 = Netlist.add nl Netlist.And [| b; a |] in
  let y = Netlist.add nl Netlist.Xor [| g1; g2 |] in
  (* xor(x,x) = 0 after CSE *)
  ignore (Netlist.add nl Netlist.Output [| y |]);
  let opt = Opt.optimize nl in
  checkb "equivalent" true (Sim.equivalent nl opt);
  checkb "collapsed to constant" true
    (let driver = (Netlist.fanins opt (List.hd (Netlist.outputs opt))).(0) in
     Netlist.kind opt driver = Netlist.Const false)

let test_opt_dead_code () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Input [||] in
  let b = Netlist.add nl Netlist.Input [||] in
  let used = Netlist.add nl Netlist.And [| a; b |] in
  let dead = Netlist.add nl Netlist.Or [| a; b |] in
  let _dead2 = Netlist.add nl Netlist.Not [| dead |] in
  ignore (Netlist.add nl Netlist.Output [| used |]);
  let opt = Opt.optimize nl in
  checkb "equivalent" true (Sim.equivalent nl opt);
  checki "dead removed" 4 (Netlist.size opt)

let test_opt_preserves_io () =
  let nl = Circuits.benchmark "adder8" in
  let opt = Opt.optimize nl in
  checki "inputs" (List.length (Netlist.inputs nl)) (List.length (Netlist.inputs opt));
  checki "outputs" (List.length (Netlist.outputs nl)) (List.length (Netlist.outputs opt));
  checkb "equivalent" true (Sim.equivalent nl opt)

let prop_opt_equivalence =
  QCheck.Test.make ~name:"optimization preserves function on random DAGs" ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
      let nl = Circuits.iscas_like ~seed ~pi:6 ~po:3 ~gates:30 ~depth:5 in
      let opt = Opt.optimize nl in
      Sim.equivalent nl opt && Netlist.size opt <= Netlist.size nl)

let prop_opt_idempotent =
  QCheck.Test.make ~name:"optimization is idempotent" ~count:20
    QCheck.(int_bound 100_000)
    (fun seed ->
      let nl = Circuits.iscas_like ~seed ~pi:5 ~po:2 ~gates:20 ~depth:4 in
      let once = Opt.optimize nl in
      let twice = Opt.optimize once in
      Netlist.size twice = Netlist.size once)

(* ---------- Aoi_to_maj ---------- *)

let equivalent_after_convert nl =
  let maj = Aoi_to_maj.convert nl in
  (match Netlist.validate maj with Ok _ -> () | Error e -> Alcotest.fail e);
  Sim.equivalent nl maj

let test_convert_preserves_function_small () =
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Input [||] in
  let b = Netlist.add nl Netlist.Input [||] in
  let c = Netlist.add nl Netlist.Input [||] in
  let ab = Netlist.add nl Netlist.And [| a; b |] in
  let abc = Netlist.add nl Netlist.Or [| ab; c |] in
  let y = Netlist.add nl Netlist.Xor [| abc; a |] in
  ignore (Netlist.add nl Netlist.Output [| y |]);
  checkb "equivalent" true (equivalent_after_convert nl)

let test_convert_preserves_function_benchmarks () =
  List.iter
    (fun name ->
      let nl = Circuits.benchmark name in
      checkb (name ^ " equivalent") true (equivalent_after_convert nl))
    [ "adder8"; "apc32"; "c432" ]

let test_convert_only_maj_kinds () =
  let nl = Circuits.benchmark "adder8" in
  let maj = Aoi_to_maj.convert nl in
  Netlist.iter maj (fun nd ->
      match nd.Netlist.kind with
      | Netlist.Input | Netlist.Output | Netlist.Const _ | Netlist.Buf
      | Netlist.Not | Netlist.And | Netlist.Or | Netlist.Maj -> ()
      | k -> Alcotest.failf "unexpected kind %s" (Netlist.kind_name k))

let test_convert_produces_majority_gates () =
  (* a 3-input carry function should collapse into real majority use *)
  let nl = Circuits.benchmark "apc32" in
  let maj = Aoi_to_maj.convert nl in
  let n_maj = Netlist.count_kind maj (fun k -> k = Netlist.Maj) in
  checkb "some majority gates" true (n_maj > 0)

let test_convert_saves_resources () =
  let nl = Circuits.benchmark "apc32" in
  let _, stats = Aoi_to_maj.convert_with_stats nl in
  checkb "jj after <= before" true
    (stats.Aoi_to_maj.jj_after <= stats.Aoi_to_maj.jj_before);
  checkb "gate count sane" true (stats.Aoi_to_maj.maj_gates > 0)

let test_convert_idempotent_inputs () =
  (* inputs/outputs survive with names and order *)
  let nl = Circuits.benchmark "adder8" in
  let maj = Aoi_to_maj.convert nl in
  checki "inputs" (List.length (Netlist.inputs nl)) (List.length (Netlist.inputs maj));
  checki "outputs" (List.length (Netlist.outputs nl)) (List.length (Netlist.outputs maj))

let prop_convert_random_dags =
  QCheck.Test.make ~name:"conversion preserves function on random DAGs" ~count:30
    QCheck.(int_bound 10_000)
    (fun seed ->
      let nl = Circuits.iscas_like ~seed ~pi:6 ~po:3 ~gates:25 ~depth:5 in
      equivalent_after_convert nl)

let test_naive_mapping_equivalent () =
  List.iter
    (fun name ->
      let nl = Circuits.benchmark name in
      let naive = Aoi_to_maj.convert_naive nl in
      (match Netlist.validate naive with Ok _ -> () | Error e -> Alcotest.fail e);
      checkb (name ^ " naive equivalent") true (Sim.equivalent nl naive))
    [ "adder8"; "apc32" ]

let test_cut_mapping_beats_naive () =
  (* the whole point of the Karnaugh/cut collapsing: fewer JJs *)
  List.iter
    (fun name ->
      let nl = Circuits.benchmark name in
      let smart = Aoi_to_maj.convert nl in
      let naive = Aoi_to_maj.convert_naive nl in
      let jj n = Cell.netlist_jj_count n in
      checkb
        (Printf.sprintf "%s: smart %d <= naive %d JJs" name (jj smart) (jj naive))
        true
        (jj smart <= jj naive))
    [ "adder8"; "apc32"; "decoder"; "c432" ]

(* ---------- Insertion ---------- *)

let fanout_legal nl =
  let counts = Netlist.fanout_counts nl in
  let ok = ref true in
  Netlist.iter nl (fun nd ->
      match nd.Netlist.kind with
      | Netlist.Splitter k ->
          if counts.(nd.Netlist.id) <> k then ok := false
      | Netlist.Output -> ()
      | _ -> if counts.(nd.Netlist.id) > 1 then ok := false);
  !ok

let test_insertion_invariants () =
  List.iter
    (fun name ->
      let aoi = Circuits.benchmark name in
      let maj = Aoi_to_maj.convert aoi in
      let aqfp = Insertion.insert maj in
      (match Netlist.validate aqfp with Ok _ -> () | Error e -> Alcotest.fail e);
      checkb (name ^ " fanout legal") true (fanout_legal aqfp);
      checkb (name ^ " balanced") true (Netlist.is_balanced aqfp);
      checkb (name ^ " equivalent") true (Sim.equivalent aoi aqfp))
    [ "adder8"; "apc32"; "decoder" ]

let test_insertion_splitter_tree_for_wide_fanout () =
  (* one input feeding 10 consumers must produce a splitter tree *)
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Input [||] in
  let b = Netlist.add nl Netlist.Input [||] in
  for _ = 1 to 10 do
    let g = Netlist.add nl Netlist.And [| a; b |] in
    ignore (Netlist.add nl Netlist.Output [| g |])
  done;
  let aqfp, stats = Insertion.insert_with_stats nl in
  checkb "several splitters" true (stats.Insertion.splitters >= 8);
  checkb "fanout legal" true (fanout_legal aqfp);
  checkb "balanced" true (Netlist.is_balanced aqfp)

let test_insertion_no_op_on_chain () =
  (* a pure chain needs no splitters and no buffers *)
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Input [||] in
  let x = Netlist.add nl Netlist.Not [| a |] in
  let y = Netlist.add nl Netlist.Buf [| x |] in
  ignore (Netlist.add nl Netlist.Output [| y |]);
  let _, stats = Insertion.insert_with_stats nl in
  checki "no splitters" 0 stats.Insertion.splitters;
  checki "no buffers" 0 stats.Insertion.buffers

let test_insertion_outputs_aligned () =
  let aoi = Circuits.benchmark "adder8" in
  let aqfp = Synth_flow.run_quiet aoi in
  let phases =
    List.map (fun o -> Netlist.phase aqfp (Netlist.fanins aqfp o).(0)) (Netlist.outputs aqfp)
  in
  (match phases with
  | p :: rest -> List.iter (fun q -> checki "aligned outputs" p q) rest
  | [] -> Alcotest.fail "no outputs")

let test_insertion_stats_consistent () =
  let aoi = Circuits.benchmark "apc32" in
  let aqfp, report = Synth_flow.run aoi in
  checki "nets = edge count" (Insertion.count_nets aqfp) report.Synth_flow.nets;
  checki "jjs" (Cell.netlist_jj_count aqfp) report.Synth_flow.jjs;
  checkb "jj > nets (paper invariant)" true (report.Synth_flow.jjs > report.Synth_flow.nets / 2)

let test_insertion_arity_ablation () =
  let maj = Aoi_to_maj.convert (Circuits.benchmark "apc32") in
  let aoi = Circuits.benchmark "apc32" in
  let nl2, s2 = Insertion.insert_with_stats ~max_arity:2 maj in
  let nl3, s3 = Insertion.insert_with_stats ~max_arity:3 maj in
  (* both stay correct *)
  checkb "binary equivalent" true (Sim.equivalent aoi nl2);
  checkb "binary balanced" true (Netlist.is_balanced nl2);
  (* binary trees need at least as many splitter cells, and never a
     shorter pipeline *)
  checkb "binary needs >= splitters" true
    (s2.Insertion.splitters >= s3.Insertion.splitters);
  checkb "binary no shallower" true (s2.Insertion.delay >= s3.Insertion.delay);
  ignore nl3

let test_ladder_insertion_invariants () =
  List.iter
    (fun name ->
      let aoi = Circuits.benchmark name in
      let maj = Aoi_to_maj.convert aoi in
      let aqfp, stats = Insertion.insert_ladder_with_stats maj in
      (match Netlist.validate aqfp with Ok _ -> () | Error e -> Alcotest.fail e);
      checkb (name ^ " fanout legal") true (fanout_legal aqfp);
      checkb (name ^ " balanced") true (Netlist.is_balanced aqfp);
      checkb (name ^ " equivalent") true (Sim.equivalent aoi aqfp);
      checkb (name ^ " counted") true (stats.Insertion.jj > 0))
    [ "adder8"; "apc32"; "sorter32" ]

let test_ladder_usually_cheaper () =
  (* the sharing argument: on chain-heavy circuits ladders need fewer
     buffers than per-edge insertion *)
  List.iter
    (fun name ->
      let maj = Aoi_to_maj.convert (Circuits.benchmark name) in
      let _, per_edge = Insertion.insert_with_stats maj in
      let _, ladder = Insertion.insert_ladder_with_stats maj in
      checkb
        (Printf.sprintf "%s: ladder %d <= per-edge %d buffers" name
           ladder.Insertion.buffers per_edge.Insertion.buffers)
        true
        (ladder.Insertion.buffers <= per_edge.Insertion.buffers))
    [ "adder8"; "c432"; "sorter32" ]

let prop_ladder_preserves_function =
  QCheck.Test.make ~name:"ladder insertion preserves function" ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      let nl = Circuits.iscas_like ~seed ~pi:5 ~po:3 ~gates:20 ~depth:4 in
      let maj = Aoi_to_maj.convert nl in
      let aqfp, _ = Insertion.insert_ladder_with_stats maj in
      Sim.equivalent nl aqfp && Netlist.is_balanced aqfp && fanout_legal aqfp)

let prop_insertion_preserves_function =
  QCheck.Test.make ~name:"synthesis end-to-end preserves function" ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      let nl = Circuits.iscas_like ~seed ~pi:5 ~po:3 ~gates:20 ~depth:4 in
      let aqfp = Synth_flow.run_quiet nl in
      Sim.equivalent nl aqfp && Netlist.is_balanced aqfp)

let test_formal_equivalence_of_synthesis () =
  (* BDD-based formal check (not just simulation) that the synthesis
     chain preserves the function. Too_large is acceptable (ordering
     dependent); Different is a bug. *)
  List.iter
    (fun (name, aoi) ->
      let aqfp = Synth_flow.run_quiet aoi in
      match Bdd.check_equivalence ~max_nodes:2_000_000 aoi aqfp with
      | Bdd.Equivalent -> ()
      | Bdd.Too_large -> () (* fall back covered by simulation tests *)
      | Bdd.Different cex ->
          Alcotest.failf "%s: synthesis formally differs (cex of %d bits)" name
            (Array.length cex))
    [
      ("adder4", Circuits.kogge_stone_adder 4);
      ("mult3", Circuits.array_multiplier 3);
      ("counter8", Circuits.parallel_counter 8);
      ("random", Circuits.iscas_like ~seed:99 ~pi:8 ~po:4 ~gates:40 ~depth:6);
    ]

let test_table2_shape () =
  (* Table II reproduction sanity: JJs > nets for every benchmark, and
     sizes are in the right league (same order of magnitude class). *)
  List.iter
    (fun name ->
      let aoi = Circuits.benchmark name in
      let _, r = Synth_flow.run aoi in
      checkb (name ^ " jj>nets") true (r.Synth_flow.jjs > r.Synth_flow.nets);
      checkb (name ^ " delay sane") true (r.Synth_flow.delay > 3 && r.Synth_flow.delay < 200))
    [ "adder8"; "apc32"; "decoder" ]

let () =
  Alcotest.run "sf_synth"
    [
      ( "maj_db",
        [
          Alcotest.test_case "total" `Quick test_db_total;
          Alcotest.test_case "implementations correct" `Quick test_db_implementations_correct;
          Alcotest.test_case "known costs" `Quick test_db_known_costs;
          Alcotest.test_case "xor" `Quick test_db_xor_within_two_levels;
          Alcotest.test_case "depth bound" `Quick test_db_depth_bound;
        ] );
      ( "opt",
        [
          Alcotest.test_case "constant folding" `Quick test_opt_constant_folding;
          Alcotest.test_case "identities" `Quick test_opt_identities;
          Alcotest.test_case "cse" `Quick test_opt_cse;
          Alcotest.test_case "dead code" `Quick test_opt_dead_code;
          Alcotest.test_case "io preserved" `Quick test_opt_preserves_io;
          QCheck_alcotest.to_alcotest prop_opt_equivalence;
          QCheck_alcotest.to_alcotest prop_opt_idempotent;
        ] );
      ( "aoi_to_maj",
        [
          Alcotest.test_case "small" `Quick test_convert_preserves_function_small;
          Alcotest.test_case "benchmarks" `Slow test_convert_preserves_function_benchmarks;
          Alcotest.test_case "kinds" `Quick test_convert_only_maj_kinds;
          Alcotest.test_case "majority appears" `Quick test_convert_produces_majority_gates;
          Alcotest.test_case "saves resources" `Quick test_convert_saves_resources;
          Alcotest.test_case "io preserved" `Quick test_convert_idempotent_inputs;
          QCheck_alcotest.to_alcotest prop_convert_random_dags;
        ] );
      ( "naive_baseline",
        [
          Alcotest.test_case "equivalent" `Quick test_naive_mapping_equivalent;
          Alcotest.test_case "cut mapping wins" `Quick test_cut_mapping_beats_naive;
        ] );
      ( "insertion",
        [
          Alcotest.test_case "invariants" `Slow test_insertion_invariants;
          Alcotest.test_case "splitter tree" `Quick test_insertion_splitter_tree_for_wide_fanout;
          Alcotest.test_case "chain no-op" `Quick test_insertion_no_op_on_chain;
          Alcotest.test_case "outputs aligned" `Quick test_insertion_outputs_aligned;
          Alcotest.test_case "stats" `Quick test_insertion_stats_consistent;
          Alcotest.test_case "arity ablation" `Quick test_insertion_arity_ablation;
          Alcotest.test_case "ladder invariants" `Quick test_ladder_insertion_invariants;
          Alcotest.test_case "ladder cheaper" `Quick test_ladder_usually_cheaper;
          QCheck_alcotest.to_alcotest prop_ladder_preserves_function;
          QCheck_alcotest.to_alcotest prop_insertion_preserves_function;
          Alcotest.test_case "formal equivalence" `Quick test_formal_equivalence_of_synthesis;
          Alcotest.test_case "table2 shape" `Slow test_table2_shape;
        ] );
    ]
