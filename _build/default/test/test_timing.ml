(* Tests for the static timing engine. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let placed name alg =
  let aoi = Circuits.benchmark name in
  let aqfp = Synth_flow.run_quiet aoi in
  let p = Problem.of_netlist Tech.default aqfp in
  ignore (Placer.place alg p);
  p

let test_report_consistency () =
  let p = placed "adder8" Placer.Superflow in
  let r = Sta.analyze p in
  (* WNS is the min over all nets *)
  let row_width = Problem.row_width p in
  let min_slack = ref infinity in
  Array.iteri
    (fun ni _ ->
      let t = Sta.net_slack_ps p ~row_width ni in
      if t.Sta.slack_ps < !min_slack then min_slack := t.Sta.slack_ps)
    p.Problem.nets;
  Alcotest.(check (float 1e-6)) "wns is min" !min_slack r.Sta.wns_ps;
  checkb "tns <= 0" true (r.Sta.tns_ps <= 0.0);
  checkb "worst sorted" true
    (let rec sorted = function
       | a :: (b :: _ as rest) -> a.Sta.slack_ps <= b.Sta.slack_ps && sorted rest
       | _ -> true
     in
     sorted r.Sta.worst);
  checki "worst capped at 10" (min 10 (Array.length p.Problem.nets)) (List.length r.Sta.worst)

let test_violations_counted () =
  let p = placed "adder8" Placer.Superflow in
  let r = Sta.analyze p in
  let row_width = Problem.row_width p in
  let manual = ref 0 in
  Array.iteri
    (fun ni _ ->
      if (Sta.net_slack_ps p ~row_width ni).Sta.slack_ps < 0.0 then incr manual)
    p.Problem.nets;
  checki "violations" !manual r.Sta.violations

let test_slack_decomposition () =
  let p = placed "adder8" Placer.Superflow in
  let row_width = Problem.row_width p in
  let window = Tech.phase_window_ps Tech.default in
  Array.iteri
    (fun ni _ ->
      let t = Sta.net_slack_ps p ~row_width ni in
      checkb "flight >= 0" true (t.Sta.flight_ps >= 0.0);
      checkb "skew >= 0" true (t.Sta.skew_ps >= 0.0);
      Alcotest.(check (float 1e-6)) "decomposition"
        (window -. Tech.default.Tech.gate_delay_ps -. t.Sta.flight_ps -. t.Sta.skew_ps)
        t.Sta.slack_ps)
    p.Problem.nets

let test_shorter_nets_more_slack () =
  (* a compact placement times better than a deliberately stretched one *)
  let p = placed "apc32" Placer.Superflow in
  let good = (Sta.analyze p).Sta.wns_ps in
  Array.iteri
    (fun i c -> if i mod 2 = 0 then c.Problem.x <- c.Problem.x +. 3000.0)
    p.Problem.cells;
  let bad = (Sta.analyze p).Sta.wns_ps in
  checkb "stretching hurts" true (bad < good)

let test_timing_met_predicate () =
  (* a one-gate design at sane positions meets 5 GHz *)
  let nl = Netlist.create () in
  let a = Netlist.add nl Netlist.Input [||] in
  let b = Netlist.add nl Netlist.Buf [| a |] in
  ignore (Netlist.add nl Netlist.Output [| b |]);
  ignore (Netlist.levelize nl);
  let p = Problem.of_netlist Tech.default nl in
  let r = Sta.analyze p in
  checkb "meets timing" true (Sta.meets_timing r);
  checkb "positive wns" true (r.Sta.wns_ps > 0.0)

let test_faster_clock_tightens () =
  let aoi = Circuits.benchmark "apc32" in
  let aqfp = Synth_flow.run_quiet aoi in
  let slow_tech = { Tech.default with Tech.clock_freq_ghz = 1.0 } in
  let run tech =
    let p = Problem.of_netlist tech aqfp in
    ignore (Placer.place Placer.Superflow p);
    (Sta.analyze p).Sta.wns_ps
  in
  checkb "1 GHz slack > 5 GHz slack" true (run slow_tech > run Tech.default)

let test_fmax_exact () =
  let p = placed "apc32" Placer.Superflow in
  let fmax = Sta.fmax_ghz p in
  checkb "positive" true (fmax > 0.0);
  (* timing met exactly at fmax, violated 5% above *)
  let wns_at ghz =
    let p' = { p with Problem.tech = { Tech.default with Tech.clock_freq_ghz = ghz } } in
    (Sta.analyze p').Sta.wns_ps
  in
  checkb "met at fmax" true (wns_at fmax >= -1e-6);
  checkb "violated above" true (wns_at (fmax *. 1.05) < 0.0)

let test_post_route_sta () =
  let p = placed "adder8" Placer.Superflow in
  let pre = Sta.analyze p in
  let routed = Router.route_all p in
  let post = Sta.analyze_routed p routed in
  (* routed paths are never shorter than the Manhattan estimate, so
     post-route timing can only be equal or worse *)
  checkb "post-route wns <= placement wns" true (post.Sta.wns_ps <= pre.Sta.wns_ps +. 1e-6);
  checkb "violations monotone" true (post.Sta.violations >= pre.Sta.violations)

let test_monte_carlo_yield () =
  let p = placed "apc32" Placer.Superflow in
  (* with zero variation the yield is deterministic: 100% iff nominal
     timing is met *)
  let nominal = Sta.analyze p in
  let zero = Sta.monte_carlo ~samples:50 ~sigma_ps:0.0 p in
  checkb "zero-sigma yield is binary" true
    (zero.Sta.yield_fraction = if Sta.meets_timing nominal then 1.0 else 0.0);
  (* larger spread can only lower (or keep) the yield *)
  let tight = Sta.monte_carlo ~samples:200 ~sigma_ps:0.5 p in
  let loose = Sta.monte_carlo ~samples:200 ~sigma_ps:5.0 p in
  checkb "more variation, lower yield" true
    (loose.Sta.yield_fraction <= tight.Sta.yield_fraction +. 0.05);
  checkb "stats populated" true (tight.Sta.wns_stddev_ps >= 0.0)

let () =
  Alcotest.run "sf_timing"
    [
      ( "sta",
        [
          Alcotest.test_case "report consistency" `Quick test_report_consistency;
          Alcotest.test_case "violations counted" `Quick test_violations_counted;
          Alcotest.test_case "slack decomposition" `Quick test_slack_decomposition;
          Alcotest.test_case "stretching hurts" `Slow test_shorter_nets_more_slack;
          Alcotest.test_case "timing met" `Quick test_timing_met_predicate;
          Alcotest.test_case "clock frequency" `Slow test_faster_clock_tightens;
          Alcotest.test_case "fmax" `Quick test_fmax_exact;
          Alcotest.test_case "post-route" `Quick test_post_route_sta;
          Alcotest.test_case "monte carlo yield" `Quick test_monte_carlo_yield;
        ] );
    ]
