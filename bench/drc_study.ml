(* DRC engine benchmark: full-deck signoff over the bundled designs,
   cold and tile-cache-warm, per rule deck. Each run prints one
   machine-readable line

     BENCH_DRC {"circuit":...,"deck":...,"cold_s":...,"warm_s":...,
                "tiles":...,"checked":...,"skipped":...,"violations":...}

   so CI can track engine speed and the warm-path win over time. The
   warm run is also asserted to recompute nothing and to reproduce the
   cold report byte-for-byte — the incremental path can never drift
   from the full one.

     dune exec bench/drc_study.exe            # full circuit set
     dune exec bench/drc_study.exe -- quick   # small circuits
     dune exec bench/drc_study.exe -- check   # compared against
                                              # bench/drc_baselines.txt
                                              # (exit 1 on any drift) *)

let quick = Array.exists (fun a -> a = "quick") Sys.argv
let check = Array.exists (fun a -> a = "check") Sys.argv

let circuits =
  let named =
    List.filter
      (fun a -> List.mem a Circuits.benchmark_names)
      (Array.to_list Sys.argv)
  in
  if named <> [] then named
  else if quick || check then [ "adder8"; "apc32" ]
  else [ "adder8"; "apc32"; "decoder"; "sorter32"; "c432" ]

let layout_of name =
  let aqfp = Synth_flow.run_quiet (Circuits.benchmark name) in
  let p = Problem.of_netlist Tech.default aqfp in
  ignore (Placer.place Placer.Superflow p);
  let r = Router.route_all p in
  Layout.build p r

(* two decks: the flow's signoff deck, and a stressed one whose
   spacing limit sits above the routing pitch — every adjacent track
   pair violates, so the reporting machinery is benchmarked under
   load, not just the clean path *)
let decks =
  let d = Drc.deck_of_tech Tech.default in
  [ ("signoff", d); ("stress", { d with Drc.spacing = d.Drc.cell_spacing }) ]

let run name deck_name deck layout =
  let tbl : (string, Diag.t list) Hashtbl.t = Hashtbl.create 1024 in
  let cache = { Drc.find = Hashtbl.find_opt tbl; store = Hashtbl.replace tbl } in
  let cold, cold_s = Wallclock.time (fun () -> Drc.check ~deck ~cache layout) in
  let warm, warm_s = Wallclock.time (fun () -> Drc.check ~deck ~cache layout) in
  if warm.Drc.stats.Drc.tiles_checked <> 0 then begin
    Printf.eprintf "drc_study: %s/%s: warm run recomputed %d tile(s)\n" name
      deck_name warm.Drc.stats.Drc.tiles_checked;
    exit 1
  end;
  if
    List.map Diag.to_string warm.Drc.diags
    <> List.map Diag.to_string cold.Drc.diags
  then begin
    Printf.eprintf "drc_study: %s/%s: warm report differs from cold\n" name
      deck_name;
    exit 1
  end;
  let s = cold.Drc.stats in
  let violations = List.length cold.Drc.diags in
  Printf.printf
    "BENCH_DRC {\"circuit\":\"%s\",\"deck\":\"%s\",\"cold_s\":%.3f,\"warm_s\":%.3f,\"tiles\":%d,\"checked\":%d,\"skipped\":%d,\"violations\":%d}\n%!"
    name deck_name cold_s warm_s s.Drc.tiles_total s.Drc.tiles_checked
    warm.Drc.stats.Drc.tiles_cached violations;
  (s.Drc.tiles_total, violations)

(* ---- exact guard against committed baselines ---- *)

type baseline = { b_circuit : string; b_deck : string; b_tiles : int; b_viols : int }

let baselines_path () =
  if Sys.file_exists "bench/drc_baselines.txt" then "bench/drc_baselines.txt"
  else "drc_baselines.txt"

let load_baselines () =
  let ic = open_in (baselines_path ()) in
  let rec loop acc =
    match input_line ic with
    | exception End_of_file ->
        close_in ic;
        List.rev acc
    | line -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then loop acc
        else
          match String.split_on_char ' ' line with
          | [ c; d; t; v ] ->
              loop
                ({
                   b_circuit = c;
                   b_deck = d;
                   b_tiles = int_of_string t;
                   b_viols = int_of_string v;
                 }
                :: acc)
          | _ ->
              Printf.eprintf "drc_study: bad baseline line: %s\n" line;
              exit 1)
  in
  loop []

let () =
  let baselines = if check then load_baselines () else [] in
  let failures = ref 0 in
  List.iter
    (fun name ->
      let layout = layout_of name in
      List.iter
        (fun (deck_name, deck) ->
          let tiles, viols = run name deck_name deck layout in
          if check then
            match
              List.find_opt
                (fun b -> b.b_circuit = name && b.b_deck = deck_name)
                baselines
            with
            | None ->
                Printf.eprintf "drc_study: no baseline for %s/%s\n" name
                  deck_name;
                incr failures
            | Some b ->
                (* tile and violation counts are exact deterministic
                   quantities — any drift is a behavior change *)
                if b.b_tiles <> tiles || b.b_viols <> viols then begin
                  Printf.eprintf
                    "drc_study: %s/%s drifted: tiles %d -> %d, violations %d \
                     -> %d\n"
                    name deck_name b.b_tiles tiles b.b_viols viols;
                  incr failures
                end)
        decks)
    circuits;
  if !failures > 0 then exit 1
