(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation on this implementation (printing
   paper-vs-measured rows), renders EXPERIMENTS.md from the same data,
   and runs bechamel micro-benchmarks of each flow stage — one
   Test.make per table/figure plus per-stage micro tests.

     dune exec bench/main.exe            # everything (several minutes)
     dune exec bench/main.exe -- quick   # small circuits only *)

open Bechamel

let quick = Array.exists (fun a -> a = "quick") Sys.argv

(* `-- negotiated` runs every routing-dependent table/ablation/micro
   benchmark with the PathFinder router instead of the sequential
   default, so QoR and speedup numbers can be compared per algorithm
   (previously several harnesses hardcoded the default). *)
let router_alg =
  if Array.exists (fun a -> a = "negotiated") Sys.argv then Router.Negotiated
  else Router.Sequential

let router_name =
  match router_alg with Router.Sequential -> "sequential" | Router.Negotiated -> "negotiated"

let table_circuits =
  if quick then [ "adder8"; "apc32"; "decoder" ] else Circuits.benchmark_names

let ablation_circuits =
  if quick then [ "adder8" ] else [ "adder8"; "apc32"; "decoder"; "sorter32" ]

(* ---- Fig. 5: full layout of apc128 ---- *)

let fig5 () =
  print_endline "Fig. 5: final AQFP layout (full flow, GDSII emission)";
  let name = if quick then "adder8" else "apc128" in
  let gds = name ^ ".gds" in
  let r = Flow.run ~router:router_alg ~gds_path:gds (Circuits.benchmark name) in
  Format.printf "%s: %a@." name Layout.pp_stats (Layout.stats r.Flow.layout);
  Format.printf "    %a@." Sta.pp_report r.Flow.sta;
  Format.printf "    DRC: %d violation(s) after %d fix round(s); GDSII: %s@.@."
    (List.length r.Flow.violations)
    r.Flow.drc_fix_rounds gds

(* ---- ablations: the design choices DESIGN.md calls out ---- *)

let ablation_timing_weight () =
  print_endline
    "Ablation: global-placement timing weight (wirelength vs slack tradeoff, apc32)";
  let aqfp = Synth_flow.run_quiet (Circuits.benchmark "apc32") in
  let t = Table.create ~headers:[ "timing weight"; "HPWL (um)"; "WNS (ps)"; "violations" ] in
  List.iter
    (fun tw ->
      let p = Problem.of_netlist Tech.default aqfp in
      Global.run ~options:{ Global.default_options with Global.timing_weight = tw } p;
      ignore (Detailed.run p);
      let sta = Sta.analyze p in
      Table.add_row t
        [
          Table.fmt_float ~dec:2 tw;
          Table.fmt_float ~dec:0 (Problem.hpwl p);
          Table.fmt_float sta.Sta.wns_ps;
          string_of_int sta.Sta.violations;
        ])
    [ 0.0; 0.02; 0.05; 0.1; 0.2 ];
  Table.print t;
  print_newline ()

let ablation_sweeps () =
  print_endline "Ablation: barycenter ordering sweeps (legal-quality convergence, apc32)";
  let aqfp = Synth_flow.run_quiet (Circuits.benchmark "apc32") in
  let t = Table.create ~headers:[ "sweeps"; "HPWL (um)" ] in
  List.iter
    (fun sweeps ->
      let p = Problem.of_netlist Tech.default aqfp in
      Quadratic.solve p ~net_weight:(fun _ -> 1.0);
      Legalize.run p;
      if sweeps > 0 then Global.barycenter_sweeps ~sweeps p;
      Table.add_row t [ string_of_int sweeps; Table.fmt_float ~dec:0 (Problem.hpwl p) ])
    [ 0; 5; 15; 30; 60 ];
  Table.print t;
  print_newline ()

let ablation_splitter_arity () =
  print_endline
    "Ablation: splitter-tree arity (binary chains vs the library's 3-output cells)";
  let t =
    Table.create
      ~headers:[ "circuit"; "arity"; "splitters"; "buffers"; "JJs"; "delay" ]
  in
  List.iter
    (fun name ->
      let maj = Aoi_to_maj.convert (Circuits.benchmark name) in
      List.iter
        (fun arity ->
          let _, s = Insertion.insert_with_stats ~max_arity:arity maj in
          Table.add_row t
            [
              name;
              string_of_int arity;
              string_of_int s.Insertion.splitters;
              string_of_int s.Insertion.buffers;
              Table.fmt_int s.Insertion.jj;
              string_of_int s.Insertion.delay;
            ])
        [ 2; 3 ])
    (if quick then [ "apc32" ] else [ "apc32"; "decoder"; "sorter32" ]);
  Table.print t;
  print_newline ()

let ablation_detailed_strategies () =
  print_endline
    "Ablation: detailed-placement strategies (greedy swaps / +row DP / simulated annealing, apc32)";
  let aqfp = Synth_flow.run_quiet (Circuits.benchmark "apc32") in
  let t = Table.create ~headers:[ "strategy"; "HPWL (um)"; "WNS (ps)"; "cost" ] in
  let base () =
    let p = Problem.of_netlist Tech.default aqfp in
    Global.run p;
    Legalize.run p;
    p
  in
  let record label p =
    let sta = Sta.analyze p in
    Table.add_row t
      [
        label;
        Table.fmt_float ~dec:0 (Problem.hpwl p);
        Table.fmt_float sta.Sta.wns_ps;
        Table.fmt_float ~dec:0 (Place_cost.total p Place_cost.default_weights);
      ]
  in
  let p = base () in
  record "none (global only)" p;
  let p = base () in
  ignore (Detailed.run p);
  record "greedy swaps" p;
  let p = base () in
  ignore (Detailed.run p);
  ignore (Row_dp.run p);
  record "swaps + row DP" p;
  let p = base () in
  ignore (Detailed.run p);
  ignore (Row_dp.run p);
  ignore (Detailed_sa.run p);
  record "swaps + DP + annealing" p;
  Table.print t;
  print_newline ()

let ablation_router_algorithm () =
  print_endline "Ablation: sequential vs negotiated-congestion routing (adder8)";
  let aqfp = Synth_flow.run_quiet (Circuits.benchmark "adder8") in
  let t =
    Table.create ~headers:[ "router"; "routed WL (um)"; "vias"; "expansions"; "time (s)" ]
  in
  List.iter
    (fun (alg, label) ->
      let p = Problem.of_netlist Tech.default aqfp in
      ignore (Placer.place Placer.Superflow p);
      let r = Router.route_all ~algorithm:alg p in
      Table.add_row t
        [
          label;
          Table.fmt_float ~dec:0 r.Router.wirelength;
          string_of_int r.Router.total_vias;
          string_of_int r.Router.expansions;
          Table.fmt_float r.Router.runtime_s;
        ])
    [ (Router.Sequential, "sequential"); (Router.Negotiated, "negotiated") ];
  Table.print t;
  print_newline ()

let ablation_via_cost () =
  print_endline "Ablation: router via cost (wirelength vs via count, adder8)";
  let aqfp = Synth_flow.run_quiet (Circuits.benchmark "adder8") in
  let t = Table.create ~headers:[ "via cost"; "routed WL (um)"; "vias"; "expansions" ] in
  List.iter
    (fun vc ->
      let p = Problem.of_netlist Tech.default aqfp in
      ignore (Placer.place Placer.Superflow p);
      let r = Router.route_all ~algorithm:router_alg ~via_cost:vc p in
      Table.add_row t
        [
          Table.fmt_float ~dec:0 vc;
          Table.fmt_float ~dec:0 r.Router.wirelength;
          string_of_int r.Router.total_vias;
          string_of_int r.Router.expansions;
        ])
    [ 5.0; 20.0; 60.0 ];
  Table.print t;
  print_newline ()

let energy_table () =
  print_endline "Extension: adiabatic energy estimates (paper SSI motivation)";
  let t =
    Table.create
      ~headers:[ "circuit"; "JJs"; "energy/cycle (J)"; "power @5GHz (W)"; "vs CMOS" ]
  in
  List.iter
    (fun name ->
      let aqfp = Synth_flow.run_quiet (Circuits.benchmark name) in
      let r = Energy.of_netlist Tech.default aqfp in
      Table.add_row t
        [
          name;
          Table.fmt_int r.Energy.jj_count;
          Printf.sprintf "%.2e" r.Energy.energy_per_cycle_j;
          Printf.sprintf "%.2e" r.Energy.power_w;
          Printf.sprintf "%.0fx" r.Energy.efficiency_gain;
        ])
    table_circuits;
  Table.print t;
  print_newline ()

let ablation_maj_mapping () =
  print_endline
    "Ablation: per-gate vs cut-collapsing majority mapping (the paper's Karnaugh step)";
  let t = Table.create ~headers:[ "circuit"; "naive JJs"; "cut-mapped JJs"; "saved" ] in
  List.iter
    (fun name ->
      let nl = Circuits.benchmark name in
      let smart = Cell.netlist_jj_count (Aoi_to_maj.convert nl) in
      let naive = Cell.netlist_jj_count (Aoi_to_maj.convert_naive nl) in
      Table.add_row t
        [
          name;
          Table.fmt_int naive;
          Table.fmt_int smart;
          Printf.sprintf "%.1f%%" (100.0 *. float_of_int (naive - smart) /. float_of_int naive);
        ])
    (if quick then [ "adder8"; "apc32" ] else [ "adder8"; "apc32"; "decoder"; "sorter32"; "c432" ]);
  Table.print t;
  print_newline ()

let ablation_row_dp () =
  print_endline
    "Ablation: shortest-path row polish (the paper's SIII-C3 transform, apc32)";
  let aqfp = Synth_flow.run_quiet (Circuits.benchmark "apc32") in
  let t = Table.create ~headers:[ "pipeline"; "HPWL (um)"; "buffer lines"; "WNS (ps)" ] in
  let run with_dp =
    let p = Problem.of_netlist Tech.default aqfp in
    Global.run p;
    Legalize.run p;
    ignore (Detailed.run p);
    if with_dp then ignore (Row_dp.run p);
    let sta = Sta.analyze p in
    Table.add_row t
      [
        (if with_dp then "swaps + row DP" else "swaps only");
        Table.fmt_float ~dec:0 (Problem.hpwl p);
        string_of_int (Problem.buffer_lines p);
        Table.fmt_float sta.Sta.wns_ps;
      ]
  in
  run false;
  run true;
  Table.print t;
  print_newline ()

let seed_stability () =
  print_endline "Robustness: SuperFlow placement across seeds (adder8)";
  let aqfp = Synth_flow.run_quiet (Circuits.benchmark "adder8") in
  let hpwls =
    List.map
      (fun seed ->
        let p = Problem.of_netlist Tech.default aqfp in
        let r = Placer.place ~seed Placer.Superflow p in
        r.Placer.hpwl)
      [ 1; 2; 3; 4; 5 ]
  in
  let arr = Array.of_list hpwls in
  Format.printf "  HPWL over 5 seeds: mean %.0f um, stddev %.0f um (%.1f%%)@.@."
    (Stats.mean arr) (Stats.stddev arr)
    (100.0 *. Stats.stddev arr /. Stats.mean arr)

let timing_yield () =
  print_endline
    "Extension: process-variation timing yield (JJ spread), clocked at 95% of each design's fmax";
  let t =
    Table.create
      ~headers:
        [ "circuit"; "clock (GHz)"; "sigma (ps)"; "yield"; "WNS mean (ps)"; "WNS sigma (ps)" ]
  in
  List.iter
    (fun name ->
      let aqfp = Synth_flow.run_quiet (Circuits.benchmark name) in
      let p = Problem.of_netlist Tech.default aqfp in
      ignore (Placer.place Placer.Superflow p);
      (* derate to the placement's own achievable clock so the yield
         question is meaningful *)
      let ghz = 0.95 *. Sta.fmax_ghz p in
      let p = { p with Problem.tech = { Tech.default with Tech.clock_freq_ghz = ghz } } in
      List.iter
        (fun sigma ->
          let y = Sta.monte_carlo ~samples:200 ~sigma_ps:sigma p in
          Table.add_row t
            [
              name;
              Table.fmt_float ~dec:2 ghz;
              Table.fmt_float sigma;
              Printf.sprintf "%.0f%%" (100.0 *. y.Sta.yield_fraction);
              Table.fmt_float y.Sta.wns_mean_ps;
              Table.fmt_float y.Sta.wns_stddev_ps;
            ])
        [ 0.2; 0.5; 2.0 ])
    (if quick then [ "adder8" ] else [ "adder8"; "apc32"; "sorter32" ]);
  Table.print t;
  print_newline ()

(* ---- multicore speedup: jobs=1 vs jobs=N over the parallel stages ----

   Also emits machine-readable BENCH_STAGE lines (one JSON object per
   line) so CI can diff per-stage timings across commits. *)

let stage_json ~circuit ~stage ~jobs ~seconds =
  Printf.printf
    "BENCH_STAGE {\"circuit\":\"%s\",\"stage\":\"%s\",\"jobs\":%d,\"seconds\":%.4f}\n"
    circuit stage jobs seconds

let speedup_table () =
  print_endline
    "Extension: multicore speedup (domain pool; results identical by construction)";
  let jn = max 4 (Domain.recommended_domain_count ()) in
  let circuits = if quick then [ "adder8"; "apc32" ] else [ "adder8"; "apc32"; "sorter32" ] in
  let t =
    Table.create
      ~headers:
        [
          "circuit";
          "stage";
          "jobs=1 (s)";
          Printf.sprintf "jobs=%d (s)" jn;
          "speedup";
          "identical";
        ]
  in
  List.iter
    (fun name ->
      let aqfp = Synth_flow.run_quiet (Circuits.benchmark name) in
      (* fresh problem per jobs setting; stage wall times + QoR *)
      let run_stages jobs =
        Parallel.set_jobs jobs;
        let p = Problem.of_netlist Tech.default aqfp in
        let _, place_s =
          Wallclock.time (fun () -> ignore (Placer.place Placer.Superflow p))
        in
        let routed, route_s =
          Wallclock.time (fun () -> Router.route_all ~algorithm:router_alg p)
        in
        let sta, sta_s = Wallclock.time (fun () -> Sta.analyze_routed p routed) in
        let layout = Layout.build p routed in
        let viols, drc_s =
          Wallclock.time (fun () -> (Drc.check layout).Drc.diags)
        in
        let check_rep, check_s =
          Wallclock.time (fun () ->
              Check.run
                [
                  Check.pass "lint" (fun () -> Lint.check aqfp);
                  Check.pass "aqfp" (fun () -> Aqfp_check.check aqfp);
                  Check.pass "place" (fun () -> Place_audit.check aqfp p);
                  Check.pass "lvs" (fun () -> Lvs.check p layout);
                ])
        in
        let metrics =
          ( Problem.hpwl p,
            routed.Router.wirelength,
            routed.Router.total_vias,
            sta.Sta.wns_ps,
            List.length viols,
            (* rendered diagnostics join the QoR identity check: the
               report must be byte-identical at any pool size *)
            Check.render_text check_rep )
        in
        ( [
            ("place", place_s);
            ("route", route_s);
            ("sta", sta_s);
            ("drc", drc_s);
            ("check", check_s);
          ],
          metrics )
      in
      let serial, m1 = run_stages 1 in
      let par, mn = run_stages jn in
      let identical = if m1 = mn then "yes" else "NO" in
      List.iter2
        (fun (stage, t1) (_, tn) ->
          stage_json ~circuit:name ~stage ~jobs:1 ~seconds:t1;
          stage_json ~circuit:name ~stage ~jobs:jn ~seconds:tn;
          Table.add_row t
            [
              name;
              stage;
              Table.fmt_float ~dec:3 t1;
              Table.fmt_float ~dec:3 tn;
              (if tn > 0.0 then Printf.sprintf "%.2fx" (t1 /. tn) else "n/a");
              identical;
            ])
        serial par)
    circuits;
  Parallel.auto_jobs ();
  Table.print t;
  print_newline ()

(* ---- cache study: cold vs warm flow through the design database ----

   Emits machine-readable BENCH_CACHE lines (one JSON object per line,
   next to BENCH_STAGE) so CI can track warm-path speedups. *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let fresh_db_dir name =
  let f = Filename.temp_file ("sfdb_bench_" ^ name) "" in
  Sys.remove f;
  f

let cache_json ~circuit ~cold_s ~warm_s ~hits ~misses =
  Printf.printf
    "BENCH_CACHE {\"circuit\":\"%s\",\"cold_s\":%.4f,\"warm_s\":%.4f,\"hits\":%d,\"misses\":%d,\"speedup\":%.1f}\n"
    circuit cold_s warm_s hits misses
    (if warm_s > 0.0 then cold_s /. warm_s else 0.0)

let cache_study () =
  print_endline
    "Extension: cold vs warm flow through the design database (sf_db)";
  let circuits =
    if quick then [ "adder8" ] else [ "adder8"; "apc32"; "decoder" ]
  in
  let t =
    Table.create
      ~headers:
        [ "circuit"; "cold (s)"; "warm (s)"; "speedup"; "warm hits"; "identical" ]
  in
  List.iter
    (fun name ->
      let dir = fresh_db_dir name in
      let db =
        match Db.open_ dir with
        | Ok db -> db
        | Error d -> failwith (Diag.to_string d)
      in
      let aoi = Circuits.benchmark name in
      let cold, cold_s =
        Wallclock.time (fun () -> Flow.run ~check:true ~db ~router:router_alg aoi)
      in
      Db.reset_log db;
      let warm, warm_s =
        Wallclock.time (fun () -> Flow.run ~check:true ~db ~router:router_alg aoi)
      in
      let hits, misses = (Db.hits db, Db.misses db) in
      (* the warm path must reproduce the cold artifacts byte for byte *)
      let identical =
        Gds.to_bytes (Layout.to_gds cold.Flow.layout)
          = Gds.to_bytes (Layout.to_gds warm.Flow.layout)
        && Check.render_text (Option.get cold.Flow.check_report)
           = Check.render_text (Option.get warm.Flow.check_report)
      in
      cache_json ~circuit:name ~cold_s ~warm_s ~hits ~misses;
      Table.add_row t
        [
          name;
          Table.fmt_float ~dec:3 cold_s;
          Table.fmt_float ~dec:3 warm_s;
          (if warm_s > 0.0 then Printf.sprintf "%.0fx" (cold_s /. warm_s)
           else "n/a");
          Printf.sprintf "%d/%d" hits (hits + misses);
          (if identical then "yes" else "NO");
        ];
      rm_rf dir)
    circuits;
  Table.print t;
  print_newline ()

(* ---- equivalence-engine study: BDD vs CDCL SAT on the synthesis
   guards, plus the proof-cache warm path ----

   Emits machine-readable BENCH_EQUIV lines (one JSON object per
   line, next to BENCH_STAGE / BENCH_CACHE) so CI can track the
   complete-proof engines: per-circuit wall time under each engine,
   how many outputs each engine failed to prove (BDD blow-up
   fallbacks / SAT budget timeouts), and the speedup of re-proving
   against a warm sf_db proof cache. *)

let count_rule rule diags =
  List.length (List.filter (fun d -> d.Diag.rule = rule) diags)

let equiv_json ~circuit ~bdd_s ~sat_s ~bdd_fallbacks ~sat_timeouts ~cold_s
    ~warm_s =
  Printf.printf
    "BENCH_EQUIV {\"circuit\":\"%s\",\"bdd_s\":%.4f,\"sat_s\":%.4f,\"bdd_fallbacks\":%d,\"sat_timeouts\":%d,\"proof_cold_s\":%.4f,\"proof_warm_s\":%.4f,\"cache_speedup\":%.1f}\n"
    circuit bdd_s sat_s bdd_fallbacks sat_timeouts cold_s warm_s
    (if warm_s > 0.0 then cold_s /. warm_s else 0.0)

let equiv_study () =
  print_endline
    "Extension: equivalence-guard engines (BDD vs CDCL SAT) and the sf_db \
     proof cache";
  let circuits =
    if quick then [ "adder8"; "decoder" ]
    else [ "adder8"; "apc32"; "decoder"; "c432"; "c499"; "c1908" ]
  in
  let t =
    Table.create
      ~headers:
        [ "circuit"; "bdd (s)"; "sat (s)"; "bdd fallback"; "sat timeout";
          "proof cold (s)"; "proof warm (s)"; "cache speedup" ]
  in
  List.iter
    (fun name ->
      let aoi = Circuits.benchmark name in
      let (_, rep_bdd), bdd_s =
        Wallclock.time (fun () -> Synth_flow.run ~check:true ~engine:`Bdd aoi)
      in
      let (_, rep_sat), sat_s =
        Wallclock.time (fun () -> Synth_flow.run ~check:true ~engine:`Sat aoi)
      in
      let bdd_fallbacks =
        count_rule "EQ-FALLBACK-01" rep_bdd.Synth_flow.guard_diags
      in
      let sat_timeouts =
        count_rule "EQ-TIMEOUT-01" rep_sat.Synth_flow.guard_diags
      in
      (* proof cache: cold stores every cone verdict, warm replays them *)
      let dir = fresh_db_dir name in
      let db =
        match Db.open_ dir with
        | Ok db -> db
        | Error d -> failwith (Diag.to_string d)
      in
      let cache =
        {
          Equiv.find = (fun k -> Db.find_proof db ~key:k);
          store = (fun k v -> Db.put_proof db ~key:k v);
        }
      in
      let (_, rep_cold), cold_s =
        Wallclock.time (fun () ->
            Synth_flow.run ~check:true ~engine:`Sat ~cache aoi)
      in
      let (_, rep_warm), warm_s =
        Wallclock.time (fun () ->
            Synth_flow.run ~check:true ~engine:`Sat ~cache aoi)
      in
      (* the warm diagnostics must reproduce the cold ones exactly *)
      assert (rep_warm.Synth_flow.guard_diags = rep_cold.Synth_flow.guard_diags);
      rm_rf dir;
      equiv_json ~circuit:name ~bdd_s ~sat_s ~bdd_fallbacks ~sat_timeouts
        ~cold_s ~warm_s;
      Table.add_row t
        [
          name;
          Table.fmt_float ~dec:3 bdd_s;
          Table.fmt_float ~dec:3 sat_s;
          Table.fmt_int bdd_fallbacks;
          Table.fmt_int sat_timeouts;
          Table.fmt_float ~dec:3 cold_s;
          Table.fmt_float ~dec:3 warm_s;
          (if warm_s > 0.0 then Printf.sprintf "%.0fx" (cold_s /. warm_s)
           else "n/a");
        ])
    circuits;
  Table.print t;
  print_newline ()

(* ---- absint study: the fast dataflow tier vs the AIG/SAT-backed
   lints, and the constant-fold effect on the equivalence cones ----

   Emits machine-readable BENCH_ABSINT lines (one JSON object per
   line, next to BENCH_STAGE / BENCH_CACHE / BENCH_EQUIV): per-circuit
   wall time of the five sf_absint passes against the fast and full
   lint tiers, the finding count, and how much the ternary-constant
   fold shrinks the live per-output cones the BDD/SAT engines would
   traverse. *)

let absint_json ~circuit ~absint_s ~fast_s ~full_s ~findings ~live_before
    ~live_after =
  Printf.printf
    "BENCH_ABSINT {\"circuit\":\"%s\",\"absint_s\":%.4f,\"fast_lint_s\":%.4f,\"full_lint_s\":%.4f,\"findings\":%d,\"cone_live_before\":%d,\"cone_live_after\":%d,\"cone_shrink_pct\":%.1f}\n"
    circuit absint_s fast_s full_s findings live_before live_after
    (if live_before > 0 then
       100.0 *. float_of_int (live_before - live_after)
       /. float_of_int live_before
     else 0.0)

let absint_study () =
  print_endline
    "Extension: abstract-interpretation tier (sf_absint) vs the AIG/SAT \
     lints, and cone constant-folding";
  let circuits =
    if quick then [ "adder8"; "decoder" ]
    else [ "adder8"; "apc32"; "decoder"; "c432"; "c499"; "c1908" ]
  in
  let t =
    Table.create
      ~headers:
        [ "circuit"; "absint (s)"; "fast lint (s)"; "full lint (s)";
          "findings"; "cone live"; "after fold"; "shrink" ]
  in
  List.iter
    (fun name ->
      let aoi = Circuits.benchmark name in
      let aqfp = Synth_flow.run_quiet aoi in
      let rep, absint_s =
        Wallclock.time (fun () -> Check.run (Absint_check.passes aqfp))
      in
      let _, fast_s =
        Wallclock.time (fun () -> Lint.check ~tier:Check.Fast aqfp)
      in
      let _, full_s =
        Wallclock.time (fun () -> Lint.check ~tier:Check.Full aqfp)
      in
      let findings = List.length rep.Check.diags in
      (* cone-size effect of the ternary-constant fold, summed over
         every primary output's extracted cone *)
      let live_before = ref 0 and live_after = ref 0 in
      List.iter
        (fun oid ->
          let c = Equiv.cone aqfp oid in
          let _, st = Const_dom.fold c in
          live_before := !live_before + st.Const_dom.live_before;
          live_after := !live_after + st.Const_dom.live_after)
        (Netlist.outputs aqfp);
      absint_json ~circuit:name ~absint_s ~fast_s ~full_s ~findings
        ~live_before:!live_before ~live_after:!live_after;
      Table.add_row t
        [
          name;
          Table.fmt_float ~dec:3 absint_s;
          Table.fmt_float ~dec:3 fast_s;
          Table.fmt_float ~dec:3 full_s;
          Table.fmt_int findings;
          Table.fmt_int !live_before;
          Table.fmt_int !live_after;
          Printf.sprintf "%.1f%%"
            (if !live_before > 0 then
               100.0
               *. float_of_int (!live_before - !live_after)
               /. float_of_int !live_before
             else 0.0);
        ])
    circuits;
  Table.print t;
  print_newline ()

let run_ablations () =
  timing_yield ();
  seed_stability ();
  ablation_maj_mapping ();
  ablation_splitter_arity ();
  ablation_timing_weight ();
  ablation_sweeps ();
  ablation_row_dp ();
  ablation_detailed_strategies ();
  ablation_router_algorithm ();
  ablation_via_cost ();
  energy_table ()

(* ---- bechamel micro-benchmarks: one per table/figure ---- *)

let micro_tests () =
  (* prebuilt inputs so the timed body is only the stage under test *)
  let aoi = Circuits.benchmark "adder8" in
  let maj = Aoi_to_maj.convert aoi in
  let aqfp = Synth_flow.run_quiet aoi in
  let placed () =
    let p = Problem.of_netlist Tech.default aqfp in
    ignore (Placer.place Placer.Superflow p);
    p
  in
  let p_placed = placed () in
  let routed = Router.route_all ~algorithm:router_alg p_placed in
  let layout = Layout.build p_placed routed in
  Test.make_grouped ~name:"superflow"
    [
      (* Table II: the synthesis stage *)
      Test.make ~name:"table2:synthesis(adder8)"
        (Staged.stage (fun () -> ignore (Synth_flow.run aoi)));
      Test.make ~name:"table2:aoi-to-maj(adder8)"
        (Staged.stage (fun () -> ignore (Aoi_to_maj.convert aoi)));
      Test.make ~name:"table2:insertion(adder8)"
        (Staged.stage (fun () -> ignore (Insertion.insert maj)));
      (* Table III: the three placement pipelines *)
      Test.make ~name:"table3:place-gordian(adder8)"
        (Staged.stage (fun () ->
             let p = Problem.of_netlist Tech.default aqfp in
             ignore (Placer.place Placer.Gordian p)));
      Test.make ~name:"table3:place-taas(adder8)"
        (Staged.stage (fun () ->
             let p = Problem.of_netlist Tech.default aqfp in
             ignore (Placer.place Placer.Taas p)));
      Test.make ~name:"table3:place-superflow(adder8)"
        (Staged.stage (fun () ->
             let p = Problem.of_netlist Tech.default aqfp in
             ignore (Placer.place Placer.Superflow p)));
      Test.make ~name:"table3:sta(adder8)"
        (Staged.stage (fun () -> ignore (Sta.analyze p_placed)));
      (* Table IV: routing *)
      Test.make ~name:"table4:route(adder8)"
        (Staged.stage (fun () ->
             let p = placed () in
             ignore (Router.route_all ~algorithm:router_alg p)));
      (* Fig. 4: detailed placement (the ablated stage) *)
      Test.make ~name:"fig4:detailed-mixed(adder8)"
        (Staged.stage (fun () ->
             let p = Problem.of_netlist Tech.default aqfp in
             Quadratic.solve p ~net_weight:(fun _ -> 1.0);
             Legalize.run p;
             ignore (Detailed.run p)));
      (* Fig. 5: layout generation + GDS serialization + DRC *)
      Test.make ~name:"fig5:gds-emit(adder8)"
        (Staged.stage (fun () -> ignore (Gds.to_bytes (Layout.to_gds layout))));
      Test.make ~name:"fig5:drc(adder8)"
        (Staged.stage (fun () -> ignore (Drc.check layout)));
    ]

let scaling_study () =
  print_endline "Extension: flow runtime scaling with design size";
  let t =
    Table.create
      ~headers:[ "circuit"; "cells"; "nets"; "synth (s)"; "place (s)"; "route (s)"; "total (s)" ]
  in
  List.iter
    (fun name ->
      let t0 = Sys.time () in
      let r = Flow.run ~router:router_alg (Circuits.benchmark name) in
      let total = Sys.time () -. t0 in
      Table.add_row t
        [
          name;
          Table.fmt_int (Array.length r.Flow.problem.Problem.cells);
          Table.fmt_int (Array.length r.Flow.problem.Problem.nets);
          Table.fmt_float ~dec:2 r.Flow.times.Flow.synth_s;
          Table.fmt_float ~dec:2 r.Flow.times.Flow.place_s;
          Table.fmt_float ~dec:2 r.Flow.times.Flow.route_s;
          Table.fmt_float ~dec:2 total;
        ])
    (if quick then [ "adder8"; "apc32" ] else [ "adder8"; "apc32"; "c432"; "sorter32"; "apc128"; "c1908" ]);
  Table.print t;
  print_newline ()

let run_micro () =
  print_endline "Micro-benchmarks (bechamel, monotonic clock):";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:20 ~quota:(Time.second 0.5) ~stabilize:false
      ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] (micro_tests ()) in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let t = Table.create ~headers:[ "stage"; "time/run" ] in
  Table.set_align t [ Table.Left; Table.Right ];
  List.iter
    (fun (name, ols) ->
      let time_ns =
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> est
        | _ -> nan
      in
      let pretty =
        if Float.is_nan time_ns then "n/a"
        else if time_ns > 1e9 then Printf.sprintf "%.2f s" (time_ns /. 1e9)
        else if time_ns > 1e6 then Printf.sprintf "%.2f ms" (time_ns /. 1e6)
        else if time_ns > 1e3 then Printf.sprintf "%.2f us" (time_ns /. 1e3)
        else Printf.sprintf "%.0f ns" time_ns
      in
      Table.add_row t [ name; pretty ])
    (List.sort compare rows);
  Table.print t;
  print_newline ()

let speedup_only = Array.exists (fun a -> a = "speedup") Sys.argv

let () =
  if speedup_only then begin
    Format.printf "SuperFlow %s — multicore speedup@.@." Flow.version;
    speedup_table ();
    exit 0
  end;
  Format.printf "SuperFlow %s — paper table regeneration%s (router=%s)@.@."
    Flow.version
    (if quick then " (quick subset)" else "")
    router_name;
  Report.print_table1 ();
  Report.print_table2 table_circuits;
  Report.print_table3 table_circuits;
  Report.print_table4 ~router:router_alg table_circuits;
  Report.print_fig4 ablation_circuits;
  fig5 ();
  Report.print_claims table_circuits;
  run_ablations ();
  scaling_study ();
  speedup_table ();
  cache_study ();
  equiv_study ();
  absint_study ();
  (* EXPERIMENTS.md from the same (memoized) measurements *)
  if not quick then begin
    let md = Report.experiments_markdown table_circuits in
    let oc = open_out "EXPERIMENTS.md" in
    output_string oc md;
    close_out oc;
    print_endline "EXPERIMENTS.md regenerated.\n"
  end;
  run_micro ()
