(* Regenerate EXPERIMENTS.md from the paper-table measurements alone,
   without the ablations and micro-benchmarks of bench/main.exe — for
   refreshing the committed file after a change to the table formats.

     dune exec bench/regen_experiments.exe *)

let () =
  let md = Report.experiments_markdown Circuits.benchmark_names in
  let oc = open_out "EXPERIMENTS.md" in
  output_string oc md;
  close_out oc;
  print_endline "EXPERIMENTS.md regenerated."
