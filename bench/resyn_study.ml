(* Resynthesis QoR benchmark. Each design runs synthesis, then the
   sf_resyn engine at full effort — twice, sharing one CEC verdict
   cache, so the second (warm) run must prove zero fresh windows.
   Each run prints one machine-readable line

     BENCH_RESYN {"circuit":...,"run":"cold"|"warm","seconds":...,
                  "jj_before":...,"jj_after":...,"depth_before":...,
                  "depth_after":...,"buffers_before":...,
                  "buffers_after":...,"maj_before":...,"maj_after":...,
                  "rounds":...,"tried":...,"accepted":...,
                  "cec_windows":...,"cec_proved":...,"cec_cached":...,
                  "cec_hit_rate":...}

   so CI can track the deltas and the cache behaviour over time.

     dune exec bench/resyn_study.exe            # every bundled design
     dune exec bench/resyn_study.exe -- quick   # CI subset
     dune exec bench/resyn_study.exe -- check   # CI subset compared against
                                                # bench/resyn_baselines.txt
                                                # (exit 1 on any QoR regression,
                                                # a worsened design, a warm
                                                # rerun that re-proves windows,
                                                # or a CEC mismatch) *)

let quick = Array.exists (fun a -> a = "quick") Sys.argv
let check = Array.exists (fun a -> a = "check") Sys.argv

let circuits =
  let named =
    List.filter
      (fun a -> List.mem a (Circuits.benchmark_names))
      (Array.to_list Sys.argv)
  in
  if named <> [] then named
  else if quick || check then [ "adder8"; "apc32"; "sorter32"; "c432" ]
  else Circuits.benchmark_names

(* in-process stand-in for the design database's proof store *)
let make_cache () =
  let tbl : (string, string) Hashtbl.t = Hashtbl.create 256 in
  {
    Resyn.find = (fun k -> Hashtbl.find_opt tbl k);
    store = (fun k v -> Hashtbl.replace tbl k v);
  }

let run_one name cache tag aqfp0 =
  let t0 = Unix.gettimeofday () in
  let aqfp1, r = Resyn.run ~effort:Resyn.Full ~cache aqfp0 in
  let seconds = Unix.gettimeofday () -. t0 in
  let hit_rate =
    if r.Resyn.cec.Resyn.windows = 0 then 1.0
    else
      float_of_int (r.Resyn.cec.Resyn.cached + r.Resyn.cec.Resyn.memoized)
      /. float_of_int r.Resyn.cec.Resyn.windows
  in
  Printf.printf
    "BENCH_RESYN {\"circuit\":\"%s\",\"run\":\"%s\",\"seconds\":%.3f,\"jj_before\":%d,\"jj_after\":%d,\"depth_before\":%d,\"depth_after\":%d,\"buffers_before\":%d,\"buffers_after\":%d,\"maj_before\":%d,\"maj_after\":%d,\"rounds\":%d,\"tried\":%d,\"accepted\":%d,\"cec_windows\":%d,\"cec_proved\":%d,\"cec_cached\":%d,\"cec_hit_rate\":%.3f}\n%!"
    name tag seconds r.Resyn.jj_before r.Resyn.jj_after r.Resyn.depth_before
    r.Resyn.depth_after r.Resyn.buffers_before r.Resyn.buffers_after
    r.Resyn.maj_before r.Resyn.maj_after r.Resyn.rounds (Resyn.rewrites_tried r)
    (Resyn.rewrites_accepted r) r.Resyn.cec.Resyn.windows
    r.Resyn.cec.Resyn.proved r.Resyn.cec.Resyn.cached hit_rate;
  (aqfp1, r)

let measure name =
  let aqfp0 = Synth_flow.run_quiet (Circuits.benchmark name) in
  let cache = make_cache () in
  let aqfp1, cold = run_one name cache "cold" aqfp0 in
  let aqfp1', warm = run_one name cache "warm" aqfp0 in
  if Netlist.struct_hash aqfp1' <> Netlist.struct_hash aqfp1 then begin
    Printf.eprintf "resyn_study: %s: warm rerun produced a different netlist\n"
      name;
    exit 1
  end;
  (aqfp0, aqfp1, cold, warm)

(* ---- QoR guard against committed baselines ---- *)

type baseline = {
  b_circuit : string;
  b_jj_before : int;
  b_jj_after : int;
  b_depth_before : int;
  b_depth_after : int;
}

let baselines_path () =
  if Sys.file_exists "bench/resyn_baselines.txt" then
    "bench/resyn_baselines.txt"
  else "resyn_baselines.txt"

let load_baselines () =
  let ic = open_in (baselines_path ()) in
  let rec loop acc =
    match input_line ic with
    | exception End_of_file ->
        close_in ic;
        List.rev acc
    | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then loop acc
        else
          let b =
            Scanf.sscanf line "%s %d %d %d %d"
              (fun b_circuit b_jj_before b_jj_after b_depth_before b_depth_after ->
                { b_circuit; b_jj_before; b_jj_after; b_depth_before; b_depth_after })
          in
          loop (b :: acc)
  in
  loop []

let check_guard () =
  let baselines = load_baselines () in
  let failures = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        incr failures;
        Printf.printf "resyn QoR guard: %s\n" m)
      fmt
  in
  let results = Hashtbl.create 16 in
  List.iter
    (fun name ->
      let aqfp0, aqfp1, cold, warm = measure name in
      (* the engine must never worsen either axis *)
      if cold.Resyn.jj_after > cold.Resyn.jj_before then
        fail "%s: JJ count worsened (%d -> %d)" name cold.Resyn.jj_before
          cold.Resyn.jj_after;
      if cold.Resyn.depth_after > cold.Resyn.depth_before then
        fail "%s: phase depth worsened (%d -> %d)" name cold.Resyn.depth_before
          cold.Resyn.depth_after;
      (* the warm rerun must serve every verdict from the cache *)
      if warm.Resyn.cec.Resyn.proved > 0 then
        fail "%s: warm rerun re-proved %d window(s)" name
          warm.Resyn.cec.Resyn.proved;
      (* end-to-end equivalence of the optimized netlist *)
      (match Cec.check aqfp0 aqfp1 with
      | Cec.Equal -> ()
      | Cec.Diff _ -> fail "%s: post-resyn netlist is NOT equivalent" name
      | Cec.Unknown _ -> fail "%s: post-resyn equivalence unknown" name);
      Hashtbl.replace results name cold)
    circuits;
  List.iter
    (fun b ->
      match Hashtbl.find_opt results b.b_circuit with
      | None ->
          Printf.printf "resyn QoR guard: %s not measured (skipped)\n" b.b_circuit
      | Some r ->
          (* committed values are a floor: never regress them *)
          if r.Resyn.jj_after > b.b_jj_after then
            fail "%s: JJ regressed vs baseline: %d vs %d" b.b_circuit
              r.Resyn.jj_after b.b_jj_after;
          if r.Resyn.depth_after > b.b_depth_after then
            fail "%s: depth regressed vs baseline: %d vs %d" b.b_circuit
              r.Resyn.depth_after b.b_depth_after)
    baselines;
  if !failures = 0 then print_endline "resyn QoR guard: OK"
  else begin
    Printf.printf "resyn QoR guard: %d violation(s)\n" !failures;
    exit 1
  end

let () =
  if check then check_guard ()
  else begin
    let improved = ref 0 in
    List.iter
      (fun name ->
        let _, _, cold, _ = measure name in
        if
          cold.Resyn.jj_after < cold.Resyn.jj_before
          || cold.Resyn.depth_after < cold.Resyn.depth_before
        then incr improved)
      circuits;
    Printf.printf "resyn_study: %d/%d designs strictly improved\n" !improved
      (List.length circuits)
  end
