(* Route-core benchmark: old (legacy) vs new (fast) search cores for
   both routing algorithms. Each run prints one machine-readable line

     BENCH_ROUTE {"circuit":...,"alg":...,"core":...,"seconds":...,
                  "wirelength":...,"vias":...,"space_expansions":...,
                  "node_expansions":...,"rounds":...,"rerouted":...}

   so CI can track the speedup and QoR drift over time.

     dune exec bench/route_study.exe            # full set (incl. apc128)
     dune exec bench/route_study.exe -- quick   # small circuits, all cores
     dune exec bench/route_study.exe -- check   # fast core only, compared
                                                # against bench/route_baselines.txt
                                                # (exit 1 on >1% QoR drift) *)

let quick = Array.exists (fun a -> a = "quick") Sys.argv
let check = Array.exists (fun a -> a = "check") Sys.argv

let circuits =
  (* explicit benchmark names on the command line win; decoder's
     negotiated routing takes minutes on either core, so the CI
     subset stops at apc32 *)
  let named =
    List.filter
      (fun a -> List.mem a (Circuits.benchmark_names))
      (Array.to_list Sys.argv)
  in
  if named <> [] then named
  else if quick || check then [ "adder8"; "apc32" ]
  else [ "adder8"; "apc32"; "decoder"; "sorter32"; "c432"; "apc128" ]

let alg_name = function
  | Router.Sequential -> "sequential"
  | Router.Negotiated -> "negotiated"

let core_name = function Router.Fast -> "fast" | Router.Legacy -> "legacy"

(* One routing run on a fresh (deterministically re-placed) problem, so
   the cores can't contaminate each other through space expansion's
   row-gap mutation. The timed region is route_all only. *)
let run name aqfp alg core =
  let p = Problem.of_netlist Tech.default aqfp in
  ignore (Placer.place Placer.Superflow p);
  let r, seconds =
    Wallclock.time (fun () -> Router.route_all ~algorithm:alg ~core p)
  in
  (match Router.check_routes p r with
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "route_study: %s %s/%s: invalid routing: %s\n" name
        (alg_name alg) (core_name core) e;
      exit 1);
  Printf.printf
    "BENCH_ROUTE {\"circuit\":\"%s\",\"alg\":\"%s\",\"core\":\"%s\",\"seconds\":%.3f,\"wirelength\":%.0f,\"vias\":%d,\"space_expansions\":%d,\"node_expansions\":%d,\"rounds\":%d,\"rerouted\":%d}\n%!"
    name (alg_name alg) (core_name core) seconds r.Router.wirelength
    r.Router.total_vias r.Router.expansions r.Router.node_expansions
    r.Router.neg_rounds r.Router.neg_rerouted;
  r

(* ---- QoR guard against committed baselines ---- *)

type baseline = {
  b_circuit : string;
  b_alg : string;
  b_wl : float;
  b_vias : int;
  b_exp : int;
}

let baselines_path () =
  (* dune exec runs from the project root; be tolerant of cwd=bench *)
  if Sys.file_exists "bench/route_baselines.txt" then
    "bench/route_baselines.txt"
  else "route_baselines.txt"

let load_baselines () =
  let ic = open_in (baselines_path ()) in
  let rec loop acc =
    match input_line ic with
    | exception End_of_file ->
        close_in ic;
        List.rev acc
    | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then loop acc
        else
          let b =
            Scanf.sscanf line "%s %s %f %d %d"
              (fun b_circuit b_alg b_wl b_vias b_exp ->
                { b_circuit; b_alg; b_wl; b_vias; b_exp })
          in
          loop (b :: acc)
  in
  loop []

(* Relative tolerance of 1% (acceptance criterion); a zero baseline
   must stay exactly zero. *)
let within_1pct actual base =
  abs_float (actual -. base) <= (0.01 *. abs_float base) +. 1e-9

let check_guard () =
  let baselines = load_baselines () in
  let failures = ref 0 in
  let results = Hashtbl.create 16 in
  List.iter
    (fun name ->
      let aqfp = Synth_flow.run_quiet (Circuits.benchmark name) in
      List.iter
        (fun alg ->
          let r = run name aqfp alg Router.Fast in
          Hashtbl.replace results (name, alg_name alg) r)
        [ Router.Sequential; Router.Negotiated ])
    circuits;
  List.iter
    (fun b ->
      match Hashtbl.find_opt results (b.b_circuit, b.b_alg) with
      | None ->
          Printf.printf "route QoR guard: %s/%s not measured (skipped)\n"
            b.b_circuit b.b_alg
      | Some r ->
          let complain what actual base =
            if not (within_1pct actual base) then begin
              incr failures;
              Printf.printf
                "route QoR guard: %s/%s %s drifted >1%%: %.0f vs baseline %.0f\n"
                b.b_circuit b.b_alg what actual base
            end
          in
          complain "wirelength" r.Router.wirelength b.b_wl;
          complain "vias" (float_of_int r.Router.total_vias)
            (float_of_int b.b_vias);
          complain "space-expansions"
            (float_of_int r.Router.expansions)
            (float_of_int b.b_exp))
    baselines;
  if !failures = 0 then print_endline "route QoR guard: OK"
  else begin
    Printf.printf "route QoR guard: %d violation(s)\n" !failures;
    exit 1
  end

let () =
  if check then check_guard ()
  else
    List.iter
      (fun name ->
        let aqfp = Synth_flow.run_quiet (Circuits.benchmark name) in
        List.iter
          (fun (alg, core) -> ignore (run name aqfp alg core))
          [
            (Router.Sequential, Router.Legacy);
            (Router.Sequential, Router.Fast);
            (Router.Negotiated, Router.Legacy);
            (Router.Negotiated, Router.Fast);
          ])
      circuits
