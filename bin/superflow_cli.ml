(* SuperFlow command-line interface.

   Subcommands mirror the flow stages:
     superflow synth   <input>          — logic synthesis report
     superflow resyn   <input> [--effort ...]  — majority resynthesis report
     superflow place   <input> [--placer ...]
     superflow route   <input>
     superflow flow    <input> [-o out.gds] [--check] [--engine ...]
     superflow check   <input> [--json] [--engine ...]  — verification gate
     superflow prove   <a> <b> [--engine ...]  — complete equivalence proof
     superflow tables                    — regenerate the paper tables
     superflow bench-list                — list built-in benchmarks

   <input> is either the name of a built-in benchmark (adder8, apc32,
   apc128, decoder, sorter32, c432, c499, c1355, c1908), a Verilog
   file (.v) or an ISCAS bench file (.bench). *)

let load_input input =
  match Circuits.benchmark input with
  | nl -> Ok nl
  | exception Not_found ->
  if Filename.check_suffix input ".v" then
    match Verilog.parse_file input with
    | Ok nl -> Ok nl
    | Error e -> Error (Printf.sprintf "%s: %s" input e)
  else if Filename.check_suffix input ".bench" then
    match Bench_parser.parse_file input with
    | Ok nl -> Ok nl
    | Error e -> Error (Printf.sprintf "%s: %s" input e)
  else
    Error
      (Printf.sprintf
         "unknown input %S (expected a benchmark name, a .v file or a .bench file)"
         input)

let placer_of_string = function
  | "superflow" -> Ok Placer.Superflow
  | "gordian" -> Ok Placer.Gordian
  | "taas" -> Ok Placer.Taas
  | s -> Error (Printf.sprintf "unknown placer %S (superflow|gordian|taas)" s)

let engine_of_string s =
  match Equiv.engine_of_name s with
  | Some e -> Ok e
  | None -> Error (Printf.sprintf "unknown engine %S (auto|bdd|sat)" s)

(* An explicit --engine sat|auto opts into the Full check tier (the
   AIG/SAT-backed lints); the default and --engine bdd stay on the
   fast dataflow tier. *)
let engine_tier_of_opt = function
  | None -> Ok (`Auto, Check.Fast)
  | Some s -> (
      match engine_of_string s with
      | Error _ as e -> e
      | Ok e ->
          Ok
            ( e,
              match e with
              | `Sat | `Auto -> Check.Full
              | `Bdd -> Check.Fast ))

let exit_err msg =
  Format.eprintf "error: %s@." msg;
  exit 1

(* ---- synth ---- *)

let cmd_synth input =
  match load_input input with
  | Error e -> exit_err e
  | Ok aoi ->
      let aqfp, report = Synth_flow.run aoi in
      Format.printf "input: %a@." Netlist.pp_stats aoi;
      Format.printf "aqfp:  %a@." Netlist.pp_stats aqfp;
      Format.printf "%a@." Synth_flow.pp_report report;
      Format.printf "energy: %a@." Energy.pp (Energy.of_netlist Tech.default aqfp);
      Format.printf "structure: %a@." Netlist_stats.pp (Netlist_stats.analyze aqfp);
      Format.printf "balanced: %b, equivalence (sampled): %b@."
        (Netlist.is_balanced aqfp)
        (Sim.equivalent aoi aqfp)

(* ---- resyn ---- *)

let cmd_resyn input effort_name =
  match (load_input input, Resyn.effort_of_string effort_name) with
  | Error e, _ | _, Error e -> exit_err e
  | Ok aoi, Ok effort ->
      let aqfp0 = Synth_flow.run_quiet aoi in
      let aqfp1, r = Resyn.run ~effort aqfp0 in
      Format.printf "before: %a@." Netlist.pp_stats aqfp0;
      Format.printf "after:  %a@." Netlist.pp_stats aqfp1;
      Format.printf
        "effort %s: jj %d -> %d, phase depth %d -> %d, buffers %d -> %d, \
         majority gates %d -> %d (%d round(s))@."
        (Resyn.effort_name r.Resyn.effort)
        r.Resyn.jj_before r.Resyn.jj_after r.Resyn.depth_before
        r.Resyn.depth_after r.Resyn.buffers_before r.Resyn.buffers_after
        r.Resyn.maj_before r.Resyn.maj_after r.Resyn.rounds;
      List.iter
        (fun p ->
          Format.printf "pass %-8s x%d: %d tried, %d accepted@." p.Resyn.pass
            p.Resyn.iterations p.Resyn.tried p.Resyn.accepted)
        r.Resyn.passes;
      let c = r.Resyn.cec in
      Format.printf
        "cec windows: %d (%d proved, %d cached, %d memoized, %d refused)@."
        c.Resyn.windows c.Resyn.proved c.Resyn.cached c.Resyn.memoized
        c.Resyn.failed;
      List.iter (fun d -> Format.printf "%a@." Diag.pp d) r.Resyn.diags

(* ---- place ---- *)

let cmd_place input placer_name =
  match (load_input input, placer_of_string placer_name) with
  | Error e, _ | _, Error e -> exit_err e
  | Ok aoi, Ok algorithm ->
      let aqfp = Synth_flow.run_quiet aoi in
      let p = Problem.of_netlist Tech.default aqfp in
      let r = Placer.place algorithm p in
      let sta = Sta.analyze p in
      Format.printf "%a@." Placer.pp_result r;
      Format.printf "%a@." Sta.pp_report sta;
      Format.printf "%a@." Problem.pp_summary p

(* ---- route ---- *)

let router_of_string = function
  | "sequential" -> Ok Router.Sequential
  | "negotiated" -> Ok Router.Negotiated
  | s -> Error (Printf.sprintf "unknown router %S (sequential|negotiated)" s)

let cmd_route input placer_name router_name jobs =
  match (load_input input, placer_of_string placer_name, router_of_string router_name) with
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> exit_err e
  | Ok aoi, Ok algorithm, Ok router_alg ->
      (match jobs with Some j -> Parallel.set_jobs j | None -> ());
      let aqfp = Synth_flow.run_quiet aoi in
      let p = Problem.of_netlist Tech.default aqfp in
      ignore (Placer.place algorithm p);
      let routed = Router.route_all ~algorithm:router_alg p in
      Format.printf
        "routed %d nets: wirelength=%.0fum vias=%d space-expansions=%d (%.1fs)@."
        (Array.length routed.Router.routes)
        routed.Router.wirelength routed.Router.total_vias
        routed.Router.expansions routed.Router.runtime_s;
      (match Router.check_routes p routed with
      | Ok () -> Format.printf "route check: clean@."
      | Error e -> Format.printf "route check: %s@." e)

(* ---- flow ---- *)

let load_tech = function
  | None -> Ok Tech.default
  | Some path -> Tech.of_file path

let stage_of_cli s =
  match Flow.stage_of_string (String.lowercase_ascii s) with
  | Ok st -> st
  | Error e -> exit_err e

let cmd_flow input placer_name router_name engine_opt resyn_name gds_out
    def_out svg_out tech_file jobs check seed db_dir from_opt to_opt resume
    check_out dsan =
  match
    ( load_input input,
      placer_of_string placer_name,
      router_of_string router_name,
      load_tech tech_file,
      engine_tier_of_opt engine_opt,
      Resyn.effort_of_string resyn_name )
  with
  | Error e, _, _, _, _, _
  | _, Error e, _, _, _, _
  | _, _, Error e, _, _, _
  | _, _, _, Error e, _, _
  | _, _, _, _, Error e, _
  | _, _, _, _, _, Error e ->
      exit_err e
  | ( Ok aoi,
      Ok algorithm,
      Ok router,
      Ok tech,
      Ok (equiv_engine, check_tier),
      Ok resyn_effort ) ->
      if db_dir = None && (from_opt <> None || resume) then
        exit_err "--from and --resume need a design database (--db DIR)";
      if dsan && db_dir <> None then
        exit_err
          "--dsan runs are never cached (a hit would mask the race being \
           hunted); drop --db";
      if resume then (
        match db_dir with
        | Some dir when not (Sys.file_exists (Filename.concat dir "meta")) ->
            exit_err
              (Printf.sprintf "--resume: %s holds no previous run to resume"
                 dir)
        | _ -> ());
      let from_stage =
        match from_opt with Some s -> stage_of_cli s | None -> Flow.Synth
      in
      let to_stage =
        match to_opt with
        | Some s -> stage_of_cli s
        | None -> if check then Flow.Check else Flow.Layout
      in
      if check && Flow.stage_rank to_stage < Flow.stage_rank Flow.Check then
        exit_err
          (Printf.sprintf "--check needs the full graph but --to %s stops early"
             (Flow.stage_name to_stage));
      let db =
        match db_dir with
        | None -> None
        | Some dir -> (
            match Db.open_ dir with
            | Ok db -> Some db
            | Error d -> exit_err (Diag.to_string d))
      in
      let run () =
        Flow.run_staged ~tech ~algorithm ~router ?seed ?jobs ?db ~from_stage
          ~to_stage ~equiv_engine ~check_tier ~resyn_effort
          ?gds_path:gds_out ?def_path:def_out aoi
      in
      let staged_res, dsan_findings =
        if dsan then Dsan.with_sanitizer ~seed:0 run else (run (), [])
      in
      let staged =
        match staged_res with
        | Ok s -> s
        | Error d -> exit_err (Diag.to_string d)
      in
      List.iter
        (fun f -> Format.eprintf "%a@." Diag.pp (Dsan.to_diag f))
        dsan_findings;
      List.iter
        (fun d -> Format.eprintf "%a@." Diag.pp d)
        staged.Flow.db_warnings;
      if db <> None then
        List.iter
          (fun (stage, outcome) ->
            match outcome with
            | Flow.Cached s ->
                Format.printf "stage %s: cache hit (%.2fs)@."
                  (Flow.stage_name stage) s
            | Flow.Computed s ->
                Format.printf "stage %s: computed (%.2fs)@."
                  (Flow.stage_name stage) s)
          staged.Flow.outcomes;
      (match staged.Flow.result with
      | Some r ->
          (match r.Flow.check_report with
          | Some rep ->
              List.iter (fun d -> Format.printf "%a@." Diag.pp d) rep.Check.diags
          | None -> ());
          (match svg_out with
          | Some path ->
              Svg.write_file path r.Flow.layout;
              Format.printf "SVG written to %s@." path
          | None -> ());
          Format.printf "%a@." Flow.pp_summary r;
          (match gds_out with
          | Some path -> Format.printf "GDSII written to %s@." path
          | None -> ());
          (match def_out with
          | Some path -> Format.printf "DEF written to %s@." path
          | None -> ());
          (match (check_out, r.Flow.check_report) with
          | Some path, Some rep ->
              let oc = open_out path in
              output_string oc (Check.render_text rep);
              close_out oc;
              Format.printf "check report written to %s@." path
          | Some _, None ->
              exit_err "--check-out needs the check stage (--check or --to check)"
          | None, _ -> ());
          (match r.Flow.check_report with
          | Some rep when not (Check.ok rep) -> exit 1
          | _ -> ())
      | None ->
          (* partial run ([--to] before layout): report what exists *)
          (match staged.Flow.synth with
          | Some (aqfp0, report) ->
              Format.printf "synthesis: %a@." Synth_flow.pp_report report;
              Format.printf "aqfp:  %a@." Netlist.pp_stats aqfp0
          | None -> ());
          (match staged.Flow.resyned with
          | Some (_, rr) when rr.Resyn.effort <> Resyn.Off ->
              Format.printf
                "resyn (%s): jj %d -> %d, depth %d -> %d, %d/%d rewrites@."
                (Resyn.effort_name rr.Resyn.effort)
                rr.Resyn.jj_before rr.Resyn.jj_after rr.Resyn.depth_before
                rr.Resyn.depth_after
                (Resyn.rewrites_accepted rr)
                (Resyn.rewrites_tried rr)
          | _ -> ());
          (match staged.Flow.placed with
          | Some (_, _, placement, buffer_lines) ->
              Format.printf "placement: %a@." Placer.pp_result placement;
              Format.printf "buffer lines: %d@." buffer_lines
          | None -> ());
          (match staged.Flow.routed with
          | Some (routing, _, violations, rounds) ->
              Format.printf
                "routing: wl=%.0fum vias=%d expansions=%d@."
                routing.Router.wirelength routing.Router.total_vias
                routing.Router.expansions;
              Format.printf "drc: %d violation(s), %d fix round(s)@."
                (List.length violations) rounds
          | None -> ());
          (match def_out with
          | Some path when staged.Flow.routed <> None ->
              Format.printf "DEF written to %s@." path
          | _ -> ()));
      if dsan_findings <> [] then begin
        Format.eprintf "dsan: %d determinism finding(s)@."
          (List.length dsan_findings);
        exit 1
      end

(* ---- check ---- *)

let cmd_check input placer_name router_name engine_opt tech_file jobs db_dir
    json dsan =
  match
    ( load_input input,
      placer_of_string placer_name,
      router_of_string router_name,
      load_tech tech_file,
      engine_tier_of_opt engine_opt )
  with
  | Error e, _, _, _, _
  | _, Error e, _, _, _
  | _, _, Error e, _, _
  | _, _, _, Error e, _
  | _, _, _, _, Error e ->
      exit_err e
  | Ok aoi, Ok algorithm, Ok router, Ok tech, Ok (equiv_engine, check_tier) ->
      if dsan && db_dir <> None then
        exit_err
          "--dsan runs are never cached (a hit would mask the race being \
           hunted); drop --db";
      let db =
        match db_dir with
        | None -> None
        | Some dir -> (
            match Db.open_ dir with
            | Ok db -> Some db
            | Error d -> exit_err (Diag.to_string d))
      in
      let run () =
        Flow.run ~tech ~algorithm ~router ?jobs ~check:true ~equiv_engine
          ~check_tier ?db aoi
      in
      let r, dsan_findings =
        if dsan then Dsan.with_sanitizer ~seed:0 run else (run (), [])
      in
      let rep =
        match r.Flow.check_report with
        | Some rep -> rep
        | None -> assert false
      in
      List.iter
        (fun f -> Format.eprintf "%a@." Diag.pp (Dsan.to_diag f))
        dsan_findings;
      print_string
        (if json then Check.render_json rep else Check.render_text rep);
      if not json then
        Format.printf "check runtime: %.2fs over %d pass(es)@."
          (Check.total_seconds rep)
          (List.length rep.Check.stats);
      if (not (Check.ok rep)) || dsan_findings <> [] then exit 1

(* ---- sanitize ---- *)

let cmd_sanitize input placer_name router_name tech_file seed schedules jobs =
  match
    ( load_input input,
      placer_of_string placer_name,
      router_of_string router_name,
      load_tech tech_file )
  with
  | Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _ | _, _, _, Error e ->
      exit_err e
  | Ok aoi, Ok algorithm, Ok router, Ok tech -> (
      match Sanitize.run ~tech ~algorithm ~router ~seed ~schedules ?jobs aoi with
      | Error d -> exit_err (Diag.to_string d)
      | Ok rep ->
          print_string (Sanitize.render_text rep);
          if rep.Sanitize.findings <> [] then exit 1)

(* ---- drc ---- *)

let cmd_drc input placer_name router_name tech_file jobs db_dir json =
  match
    ( load_input input,
      placer_of_string placer_name,
      router_of_string router_name,
      load_tech tech_file )
  with
  | Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _ | _, _, _, Error e ->
      exit_err e
  | Ok aoi, Ok algorithm, Ok router, Ok tech -> (
      let db =
        match db_dir with
        | None -> None
        | Some dir -> (
            match Db.open_ dir with
            | Ok db -> Some db
            | Error d -> exit_err (Diag.to_string d))
      in
      (* build (or load) the layout through the stage graph, then run
         the full-deck signoff with the tile cache wired to the db.
         Tile statistics go to stderr so stdout (the report) is
         byte-comparable across cold/warm and --jobs runs. *)
      match Flow.run_staged ~tech ~algorithm ~router ?jobs ?db ~to_stage:Flow.Layout aoi with
      | Error d -> exit_err (Diag.to_string d)
      | Ok staged ->
          let layout =
            match staged.Flow.built with
            | Some (layout, _, _) -> layout
            | None -> exit_err "drc: the flow produced no layout"
          in
          let cache = Option.map Flow.drc_cache_of_db db in
          let rep = Drc.check ?cache layout in
          let s = rep.Drc.stats in
          Format.eprintf "# drc: tiles total=%d checked=%d cached=%d density=%s@."
            s.Drc.tiles_total s.Drc.tiles_checked s.Drc.tiles_cached
            (if s.Drc.density_cached then "cached" else "checked");
          List.iter
            (fun d ->
              print_endline (if json then Diag.to_json d else Diag.to_string d))
            rep.Drc.diags;
          Format.printf "drc: %d violation(s)@." (List.length rep.Drc.diags);
          if rep.Drc.diags <> [] then exit 1)

(* ---- timing ---- *)

let cmd_timing input placer_name =
  match (load_input input, placer_of_string placer_name) with
  | Error e, _ | _, Error e -> exit_err e
  | Ok aoi, Ok algorithm ->
      let aqfp = Synth_flow.run_quiet aoi in
      let p = Problem.of_netlist Tech.default aqfp in
      ignore (Placer.place algorithm p);
      let sta = Sta.analyze p in
      Format.printf "%a@." Sta.pp_report sta;
      Format.printf "max frequency for this placement: %.2f GHz@.@." (Sta.fmax_ghz p);
      Format.printf "slack histogram (ps):@.%a@." Sta.pp_histogram
        (Sta.slack_histogram p);
      let per_row = Sta.per_row_wns p in
      Format.printf "most critical clock phases:@.";
      Array.to_list per_row
      |> List.mapi (fun r wns -> (r, wns))
      |> List.filter (fun (_, w) -> w < infinity)
      |> List.sort (fun (_, a) (_, b) -> compare a b)
      |> List.filteri (fun i _ -> i < 5)
      |> List.iter (fun (r, wns) -> Format.printf "  phase %d: wns %.1f ps@." r wns)

(* ---- sim ---- *)

let cmd_sim input n_vectors vcd_out =
  match load_input input with
  | Error e -> exit_err e
  | Ok aoi ->
      let rng = Rng.create 42 in
      let n_in = List.length (Netlist.inputs aoi) in
      let vectors =
        List.init n_vectors (fun _ -> Array.init n_in (fun _ -> Rng.bool rng))
      in
      List.iteri
        (fun t v ->
          let outs = Sim.eval aoi v in
          let show bits =
            String.concat ""
              (List.map (fun b -> if b then "1" else "0") (Array.to_list bits))
          in
          Format.printf "#%d  in=%s  out=%s@." t (show v) (show outs))
        vectors;
      (match vcd_out with
      | Some path ->
          Vcd.write_file path aoi vectors;
          Format.printf "VCD written to %s@." path
      | None -> ())

(* ---- verify ---- *)

let cmd_verify input_a input_b =
  match (load_input input_a, load_input input_b) with
  | Error e, _ | _, Error e -> exit_err e
  | Ok nl_a, Ok nl_b -> (
      match Bdd.check_equivalence nl_a nl_b with
      | Bdd.Equivalent ->
          Format.printf "EQUIVALENT (formally proven, BDD)@."
      | Bdd.Different cex ->
          Format.printf "DIFFERENT — counterexample inputs: %s@."
            (String.concat ""
               (List.map (fun b -> if b then "1" else "0") (Array.to_list cex)));
          exit 1
      | Bdd.Too_large ->
          let same = Sim.equivalent nl_a nl_b in
          Format.printf "%s (BDD too large; simulation%s)@."
            (if same then "equivalent" else "DIFFERENT")
            (if List.length (Netlist.inputs nl_a) <= 14 then ", exhaustive"
             else ", sampled");
          if not same then exit 1)

(* ---- prove ---- *)

let cmd_prove input_a input_b engine_opt budget json =
  let engine_name = Option.value engine_opt ~default:"auto" in
  match (load_input input_a, load_input input_b, engine_of_string engine_name)
  with
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> exit_err e
  | Ok nl_a, Ok nl_b, Ok engine ->
      let diags =
        Equiv.check_pair ~engine ?conflict_budget:budget ~stage:"prove" nl_a
          nl_b
      in
      List.iter
        (fun d ->
          if json then print_endline (Diag.to_json d)
          else Format.printf "%a@." Diag.pp d)
        diags;
      let errors = Diag.count Diag.Error diags
      and unproven = Diag.count Diag.Warning diags in
      if errors > 0 then (
        if not json then Format.printf "NOT EQUIVALENT@.";
        exit 1)
      else if unproven > 0 then (
        if not json then
          Format.printf
            "UNPROVEN — %d output(s) fell back to simulation (raise the \
             budget or try --engine sat)@."
            unproven;
        exit 2)
      else if not json then
        Format.printf "EQUIVALENT (formally proven per output, engine %s)@."
          (Equiv.engine_name engine)

(* ---- atpg ---- *)

let cmd_atpg input out_file =
  match load_input input with
  | Error e -> exit_err e
  | Ok aoi ->
      let aqfp = Synth_flow.run_quiet aoi in
      let t = Fault.generate ~seed:1 aqfp in
      Format.printf "%d vectors, %.2f%% stuck-at coverage, %d undetected fault(s)@."
        (List.length t.Fault.vectors)
        (100.0 *. t.Fault.achieved)
        (List.length t.Fault.undetected);
      (match out_file with
      | Some path ->
          let oc = open_out path in
          List.iter
            (fun v ->
              Array.iter (fun b -> output_char oc (if b then '1' else '0')) v;
              output_char oc '\n')
            t.Fault.vectors;
          close_out oc;
          Format.printf "vectors written to %s@." path
      | None -> ())

(* ---- report ---- *)

let cmd_report input placer_name html_out jobs =
  match (load_input input, placer_of_string placer_name) with
  | Error e, _ | _, Error e -> exit_err e
  | Ok aoi, Ok algorithm ->
      let r = Flow.run ~algorithm ?jobs aoi in
      let rep = Chip_report.of_flow r in
      Chip_report.print rep;
      (match html_out with
      | Some path ->
          let svg = Svg.render r.Flow.layout in
          let oc = open_out path in
          output_string oc (Chip_report.to_html ~svg ~title:("SuperFlow: " ^ input) rep);
          close_out oc;
          Format.printf "HTML report written to %s@." path
      | None -> ())

(* ---- mlint ---- *)

let cmd_mlint root json update_baseline baseline_opt =
  let known_ids = List.map (fun r -> r.Rules.id) Rules.all in
  let baseline_path =
    match baseline_opt with
    | Some p -> p
    | None -> Filename.concat root "mlint_baselines.txt"
  in
  let baseline =
    match Mlint.load_baseline baseline_path with
    | Ok lines -> lines
    | Error msg -> exit_err (Printf.sprintf "%s: %s" baseline_path msg)
  in
  let baseline = if update_baseline then [] else baseline in
  match Mlint.run ~known_ids ~baseline ~root () with
  | Error msg -> exit_err msg
  | Ok rep ->
      if update_baseline then begin
        let lines = Mlint.baseline_lines rep.Mlint.findings in
        let oc = open_out baseline_path in
        output_string oc
          "# Grandfathered SL-* errors (regenerate: superflow mlint \
           --update-baseline).\n\
           # Keep this empty or near-empty: new code fixes or sl-ignores its \
           findings.\n";
        List.iter (fun l -> output_string oc (l ^ "\n")) lines;
        close_out oc;
        Format.eprintf "%s@." (Mlint.summary rep);
        Format.printf "baseline: %d entr%s written to %s@." (List.length lines)
          (if List.length lines = 1 then "y" else "ies")
          baseline_path
      end
      else begin
        List.iter
          (fun fd ->
            print_endline
              (if json then Mlint.render_json fd else Mlint.render_text fd))
          rep.Mlint.findings;
        List.iter
          (fun e -> Format.eprintf "# mlint: stale baseline entry: %s@." e)
          rep.Mlint.stale_baseline;
        Format.eprintf "%s@." (Mlint.summary rep);
        if rep.Mlint.errors > 0 then exit 1
      end

(* ---- explain ---- *)

let cmd_explain id_opt all markdown =
  if markdown then print_string (Rules.catalog_markdown ())
  else if all then
    List.iter
      (fun r ->
        match Rules.explain r.Rules.id with
        | Ok s -> print_endline s
        | Error e -> exit_err e)
      Rules.all
  else
    match id_opt with
    | None -> exit_err "explain: give a RULE-ID, or pass --all / --markdown"
    | Some id -> (
        match Rules.explain id with
        | Ok s -> print_endline s
        | Error e -> exit_err e)

(* ---- tables ---- *)

let cmd_tables circuits =
  let names = if circuits = [] then Circuits.benchmark_names else circuits in
  Report.print_table1 ();
  Report.print_table2 names;
  Report.print_table3 names;
  Report.print_table4 names

let cmd_bench_list () =
  List.iter
    (fun name ->
      let nl = Circuits.benchmark name in
      Format.printf "%-10s %a@." name Netlist.pp_stats nl)
    Circuits.benchmark_names

(* ---- cmdliner plumbing ---- *)

open Cmdliner

let input_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"INPUT"
         ~doc:"Benchmark name, Verilog (.v) or ISCAS (.bench) file.")

let placer_arg =
  Arg.(value & opt string "superflow" & info [ "placer"; "p" ] ~docv:"PLACER"
         ~doc:"Placement algorithm: superflow, gordian or taas.")

let gds_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write the final layout as GDSII to $(docv).")

let circuits_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"CIRCUIT"
         ~doc:"Circuits to include (default: all nine benchmarks).")

let synth_cmd =
  Cmd.v (Cmd.info "synth" ~doc:"Run majority-based logic synthesis")
    Term.(const cmd_synth $ input_arg)

let resyn_cmd_effort_arg =
  Arg.(value & opt string "full" & info [ "effort" ] ~docv:"EFFORT"
         ~doc:"Resynthesis effort: none, fast or full (default full).")

let resyn_cmd =
  Cmd.v
    (Cmd.info "resyn"
       ~doc:"Synthesize, then run the cut-based majority resynthesis engine \
             and report its QoR deltas, per-pass statistics and window-CEC \
             counts.")
    Term.(const cmd_resyn $ input_arg $ resyn_cmd_effort_arg)

let place_cmd =
  Cmd.v (Cmd.info "place" ~doc:"Synthesize and place")
    Term.(const cmd_place $ input_arg $ placer_arg)

let router_arg =
  Arg.(value & opt string "sequential" & info [ "router" ] ~docv:"ROUTER"
         ~doc:"Routing algorithm: sequential or negotiated.")

let jobs_arg =
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Worker domains for the parallel stages (routing, placement \
               gradients, STA, DRC). Defaults to the $(b,SF_JOBS) environment \
               variable, then the machine's core count. Results are \
               bit-identical for every value.")

let route_cmd =
  Cmd.v (Cmd.info "route" ~doc:"Synthesize, place and route")
    Term.(const cmd_route $ input_arg $ placer_arg $ router_arg $ jobs_arg)

let def_arg =
  Arg.(value & opt (some string) None & info [ "def" ] ~docv:"FILE"
         ~doc:"Also write a DEF-style placement/routing dump to $(docv).")

let svg_arg =
  Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE"
         ~doc:"Also render the layout as SVG to $(docv).")

let tech_arg =
  Arg.(value & opt (some string) None & info [ "tech" ] ~docv:"FILE"
         ~doc:"Technology description (key = value lines; see Tech.of_string).")

let check_flag_arg =
  Arg.(value & flag & info [ "check" ]
         ~doc:"Run the static-verification gate (lint, AQFP legality, \
               equivalence guards, placement audit, route check, DRC, \
               LVS-lite) and fail on any error-severity diagnostic.")

let seed_arg =
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N"
         ~doc:"Placement seed (default 1). Part of the place stage's cache \
               key.")

let db_arg =
  Arg.(value & opt (some string) None & info [ "db" ] ~docv:"DIR"
         ~doc:"Attach a design database at $(docv) (created if missing): \
               every stage becomes content-addressed — reruns with unchanged \
               inputs load their artifacts instead of recomputing, and runs \
               killed mid-flow resume from the last persisted stage.")

let from_arg =
  Arg.(value & opt (some string) None & info [ "from" ] ~docv:"STAGE"
         ~doc:"Require every stage before $(docv) (synth, resyn, place, \
               route, layout, check) to already be in the database — fail \
               instead of recomputing. Needs --db.")

let to_arg =
  Arg.(value & opt (some string) None & info [ "to" ] ~docv:"STAGE"
         ~doc:"Stop the flow after $(docv) (synth, resyn, place, route, \
               layout, check). $(b,--to check) implies $(b,--check).")

let resume_arg =
  Arg.(value & flag & info [ "resume" ]
         ~doc:"Resume a previous (possibly interrupted) run: the database \
               given with --db must already exist; persisted stages are \
               loaded, the rest recomputed.")

let check_out_arg =
  Arg.(value & opt (some string) None & info [ "check-out" ] ~docv:"FILE"
         ~doc:"Write the check stage's text report to $(docv) (needs --check \
               or --to check).")

let engine_arg =
  Arg.(value & opt (some string) None & info [ "engine" ] ~docv:"ENGINE"
         ~doc:"Equivalence-proof engine: auto (BDD first, SAT on blow-up), \
               bdd, or sat. Part of the synth stage's cache key. Giving \
               $(b,sat) or $(b,auto) explicitly also selects the $(b,full) \
               check tier (AIG/SAT-backed lints); the default runs the fast \
               dataflow tier with engine auto.")

let resyn_effort_arg =
  Arg.(value & opt string "none" & info [ "resyn-effort" ] ~docv:"EFFORT"
         ~doc:"Cut-based majority resynthesis between mapping and placement: \
               none (identity, the default), fast (one CSE+rewrite round) or \
               full (all passes to a fixpoint). Every accepted rewrite \
               carries a window equivalence proof; part of the resyn stage's \
               cache key.")

let dsan_flag_arg =
  Arg.(value & flag & info [ "dsan" ]
         ~doc:"Arm the determinism sanitizer for this run: chunk execution \
               orders are fuzzed, tracked shared arrays check their \
               ownership discipline, and every DSAN-* finding is printed to \
               stderr (exit 1 on any). Incompatible with --db: sanitized \
               runs are never cached.")

let flow_cmd =
  Cmd.v (Cmd.info "flow" ~doc:"Full RTL-to-GDS flow")
    Term.(const cmd_flow $ input_arg $ placer_arg $ router_arg $ engine_arg
          $ resyn_effort_arg $ gds_arg $ def_arg $ svg_arg $ tech_arg
          $ jobs_arg $ check_flag_arg $ seed_arg $ db_arg $ from_arg $ to_arg
          $ resume_arg $ check_out_arg $ dsan_flag_arg)

let json_arg =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Emit diagnostics as JSON lines instead of text.")

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:"Run the full flow gated by the sf_check static verifier: \
             netlist lints, AQFP legality, per-output formal equivalence, \
             placement audit, route connectivity, DRC and LVS-lite. Exits 1 \
             on any error-severity diagnostic.")
    Term.(const cmd_check $ input_arg $ placer_arg $ router_arg $ engine_arg
          $ tech_arg $ jobs_arg $ db_arg $ json_arg $ dsan_flag_arg)

let sanitize_seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N"
         ~doc:"Schedule-fuzzer seed (default 0). Every permutation replays \
               exactly from it.")

let schedules_arg =
  Arg.(value & opt int 4 & info [ "schedules" ] ~docv:"N"
         ~doc:"Fuzzed chunk-order permutations per arm (default 4).")

let sanitize_cmd =
  Cmd.v
    (Cmd.info "sanitize"
       ~doc:"Hunt determinism bugs in the parallel substrate: run the flow \
             at jobs=1 (baseline), then under --schedules seeded \
             chunk-order permutations at jobs=1 and at --jobs, with the \
             race detector armed throughout. Artifact fingerprints \
             (volatile wall-clock fields zeroed) are compared against the \
             baseline and any divergence is binary-searched to its first \
             differing stage/slot (DSAN-SCHED-01 / DSAN-DIVERGE-01); \
             tracked shared arrays report ownership and overlap violations \
             (DSAN-OWN/WW/RW-01). Exits 1 on any finding.")
    Term.(const cmd_sanitize $ input_arg $ placer_arg $ router_arg $ tech_arg
          $ sanitize_seed_arg $ schedules_arg $ jobs_arg)

let drc_cmd =
  Cmd.v
    (Cmd.info "drc"
       ~doc:"Full-deck design-rule signoff of the routed layout: exact \
             integer-nm geometry, every DRC-* rule in the registry, tiled \
             and sharded over --jobs with byte-identical reports at any \
             pool size. With --db, tile verdicts are memoized so an ECO \
             rerun re-checks only the tiles whose geometry changed (tile \
             statistics go to stderr). Exits 1 on any violation.")
    Term.(const cmd_drc $ input_arg $ placer_arg $ router_arg $ tech_arg
          $ jobs_arg $ db_arg $ json_arg)

let timing_cmd =
  Cmd.v (Cmd.info "timing" ~doc:"Static timing analysis of a placed design")
    Term.(const cmd_timing $ input_arg $ placer_arg)

let input_b_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"INPUT2"
         ~doc:"Second design to compare.")

let sim_n_arg =
  Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Number of random vectors.")

let vcd_arg =
  Arg.(value & opt (some string) None & info [ "o"; "vcd" ] ~docv:"FILE"
         ~doc:"Write the waveform as VCD to $(docv).")

let sim_cmd =
  Cmd.v (Cmd.info "sim" ~doc:"Simulate random vectors (optionally dumping VCD)")
    Term.(const cmd_sim $ input_arg $ sim_n_arg $ vcd_arg)

let verify_cmd =
  Cmd.v (Cmd.info "verify" ~doc:"Formally check two designs for equivalence")
    Term.(const cmd_verify $ input_arg $ input_b_arg)

let budget_arg =
  Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"N"
         ~doc:"SAT conflict budget per proved pair (default 200000). \
               Exhausting it yields EQ-TIMEOUT-01 and exit code 2.")

let prove_cmd =
  Cmd.v
    (Cmd.info "prove"
       ~doc:"Prove two designs equivalent, output by output, with the \
             complete decision engines (BDD and/or CDCL SAT with AIG \
             sweeping). Exit 0: every output proven equal; 1: a proven \
             difference (with a replayed counterexample); 2: unproven \
             (engine budget exhausted).")
    Term.(const cmd_prove $ input_arg $ input_b_arg $ engine_arg $ budget_arg
          $ json_arg)

let atpg_out_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write the generated test vectors (one per line) to $(docv).")

let atpg_cmd =
  Cmd.v (Cmd.info "atpg" ~doc:"Generate stuck-at manufacturing test vectors")
    Term.(const cmd_atpg $ input_arg $ atpg_out_arg)

let html_arg =
  Arg.(value & opt (some string) None & info [ "html" ] ~docv:"FILE"
         ~doc:"Also write a self-contained HTML report (with the layout) to $(docv).")

let report_cmd =
  Cmd.v (Cmd.info "report" ~doc:"Full design signoff report (area/wiring/timing/energy)")
    Term.(const cmd_report $ input_arg $ placer_arg $ html_arg $ jobs_arg)

let mlint_root_arg =
  Arg.(value & pos 0 string "." & info [] ~docv:"ROOT"
         ~doc:"Repository root to analyze (must contain lib/; bin/ is \
               included when present). Defaults to the current directory.")

let mlint_update_arg =
  Arg.(value & flag & info [ "update-baseline" ]
         ~doc:"Rewrite the baseline file with today's unsuppressed \
               error-severity findings instead of failing on them.")

let mlint_baseline_arg =
  Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE"
         ~doc:"Baseline file of grandfathered findings (default \
               ROOT/mlint_baselines.txt).")

let mlint_cmd =
  Cmd.v
    (Cmd.info "mlint"
       ~doc:"Statically enforce the determinism/purity contract over the \
             flow's own OCaml sources: parse every lib/**/*.ml and bin/*.ml \
             with compiler-libs and evaluate the SL-* rules (unordered \
             Hashtbl iteration, wall-clock and Marshal escapes, polymorphic \
             compares, unregistered global state, swallowed exceptions, \
             unlabeled Parallel sites, stdout prints, exit in libraries, \
             unregistered diagnostic ids). Suppress single sites with \
             (* sl-ignore: SL-XXX-NN reason *) comments. Exits 1 on any \
             unsuppressed, unbaselined error.")
    Term.(const cmd_mlint $ mlint_root_arg $ json_arg $ mlint_update_arg
          $ mlint_baseline_arg)

let explain_id_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"RULE-ID"
         ~doc:"A diagnostic rule id, e.g. AI-PHASE-01 or NL-DEAD-01.")

let explain_all_arg =
  Arg.(value & flag & info [ "all" ]
         ~doc:"Explain every registered rule, in id order.")

let explain_markdown_arg =
  Arg.(value & flag & info [ "markdown" ]
         ~doc:"Emit the registry as the markdown rule-catalog table \
               (what docs/ARCHITECTURE.md embeds).")

let explain_cmd =
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Explain a diagnostic rule id from the rule registry: severity, \
             owning pass, and what the finding means. Exits 1 on an unknown \
             id.")
    Term.(const cmd_explain $ explain_id_arg $ explain_all_arg
          $ explain_markdown_arg)

let tables_cmd =
  Cmd.v (Cmd.info "tables" ~doc:"Regenerate the paper's result tables")
    Term.(const cmd_tables $ circuits_arg)

let bench_list_cmd =
  Cmd.v (Cmd.info "bench-list" ~doc:"List built-in benchmark circuits")
    Term.(const cmd_bench_list $ const ())

let main =
  Cmd.group
    (Cmd.info "superflow" ~version:Flow.version
       ~doc:"Fully-customized RTL-to-GDS design automation flow for AQFP circuits")
    [ synth_cmd; resyn_cmd; place_cmd; route_cmd; flow_cmd; check_cmd; drc_cmd;
      sanitize_cmd; mlint_cmd; explain_cmd; timing_cmd; report_cmd; sim_cmd;
      verify_cmd; prove_cmd; atpg_cmd; tables_cmd; bench_list_cmd ]

let () = exit (Cmd.eval main)
