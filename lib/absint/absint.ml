(* Monotone dataflow over the netlist DAG.

   The worklist is scheduled as topological levels: on a DAG every
   node's inputs are final before the node itself is visited, so one
   transfer per node reaches the fixpoint. Levels are a pure function
   of the netlist; inside a level the transfers are independent and
   shard over Parallel with static chunk boundaries, each lane
   writing only its own slots — results are identical at any pool
   size. *)

module type LATTICE = sig
  type fact

  val name : string
  val bot : fact
  val equal : fact -> fact -> bool
  val join : fact -> fact -> fact
end

(* Group ids by dependency depth. [deps] gives, for each node, the
   ids whose facts the node's transfer reads; depth = 1 + max depth
   of deps. [order] must list deps before dependants. *)
let levels_of ~n ~order ~deps =
  let depth = Array.make n 0 in
  let max_depth = ref 0 in
  Array.iter
    (fun i ->
      let d = ref 0 in
      List.iter (fun f -> if depth.(f) >= !d then d := depth.(f) + 1) (deps i);
      depth.(i) <- !d;
      if !d > !max_depth then max_depth := !d)
    order;
  let buckets = Array.make (!max_depth + 1) [] in
  (* fill in reverse id order so each bucket ends up id-ascending *)
  for i = n - 1 downto 0 do
    buckets.(depth.(i)) <- i :: buckets.(depth.(i))
  done;
  Array.map Array.of_list buckets

let solve ~n ~levels ~deps ~bot ~transfer =
  let facts = Array.make n bot in
  (* distinct slots per lane: data-race free, order-independent. Under
     the sanitizer, writes and the declared dep reads of each transfer
     go through a footprint-tracked view — a dep scheduled into the
     same level as its reader shows up as a same-batch RW overlap,
     which is exactly a broken level invariant. *)
  let facts_v = Dsan.wrap ~label:"absint.facts" ~mode:Dsan.Footprint facts in
  Array.iter
    (fun level ->
      let m = Array.length level in
      ignore
        (Parallel.map_chunks ~label:"absint.level" ~chunk:1024 ~n:m (fun lo hi ->
             for k = lo to hi - 1 do
               let id = level.(k) in
               if Dsan.on () then begin
                 List.iter (fun f -> ignore (Dsan.get facts_v f)) (deps id);
                 Dsan.set facts_v id (transfer id facts)
               end
               else facts.(id) <- transfer id facts
             done)))
    levels;
  facts

module Solver (L : LATTICE) = struct
  let forward nl ~transfer =
    let n = Netlist.size nl in
    let order = Netlist.topo_order nl in
    let deps i = Array.to_list (Netlist.fanins nl i) in
    let levels = levels_of ~n ~order ~deps in
    solve ~n ~levels ~deps ~bot:L.bot ~transfer

  let backward nl ~fanouts ~transfer =
    let n = Netlist.size nl in
    let order = Netlist.topo_order nl in
    let rev = Array.make n 0 in
    Array.iteri (fun k id -> rev.(n - 1 - k) <- id) order;
    let deps i = fanouts.(i) in
    let levels = levels_of ~n ~order:rev ~deps in
    solve ~n ~levels ~deps ~bot:L.bot ~transfer
end

let describe nl i =
  let base = Printf.sprintf "n%d:%s" i (Netlist.kind_name (Netlist.kind nl i)) in
  match Netlist.name nl i with
  | Some name -> Printf.sprintf "%s%S" base name
  | None -> base

let path_witness nl ids = List.map (describe nl) ids

let chase ~limit start next =
  let rec go acc i steps =
    if steps >= limit then List.rev (i :: acc)
    else
      match next i with
      | None -> List.rev (i :: acc)
      | Some j -> go (i :: acc) j (steps + 1)
  in
  go [] start 0
