(** Generic monotone dataflow framework over the netlist DAG
    ([sf_absint]).

    SuperFlow's AQFP legality rests on global dataflow invariants —
    fan-ins arriving in the same clock phase, splitter trees bounding
    fan-out, no constant or unobservable logic left by synthesis.
    This library proves such invariants in one linear-ish pass: a
    domain supplies a {!LATTICE} (bottom element, join, equality) and
    a transfer function; the {!Solver} schedules one transfer per
    node over the DAG and returns the fixpoint fact array.

    {b Determinism.} The worklist is organised as topological levels
    (every node enters the worklist exactly once, at its dependency
    depth — the DAG makes chaotic iteration unnecessary). Levels run
    in order; inside a level the nodes are independent, so their
    transfers shard over {!Parallel.map_chunks} with static chunk
    boundaries, each lane writing only its own slots of the fact
    array. A node's fact is therefore a pure function of the netlist,
    never of the pool size: results are byte-identical at any
    [--jobs] value.

    Shipped domains: {!Const_dom} (ternary constants, [AI-CONST-01]),
    {!Phase_dom} (phase-interval path balance, [AI-PHASE-01]),
    {!Load_dom} (fanout-capacity intervals through splitter trees,
    [AI-LOAD-01]), {!Obs_dom} (backward observability, consumed by
    the [NL-DEAD-01]/[NL-INPUT-01] lints and [AI-OBS-01]) and
    {!Polar_dom} (inversion parity, [AI-POLAR-01]). Every diagnostic
    they emit carries a witness — the fan-in cone path that forces
    the fact — rendered through {!Diag.t}'s witness channel. *)

module type LATTICE = sig
  type fact

  val name : string
  (** Stable domain name (used for cache keys and reports). *)

  val bot : fact
  (** The least element; every node starts here. *)

  val equal : fact -> fact -> bool

  val join : fact -> fact -> fact
  (** Least upper bound. The solver visits each DAG node once, so
      [join] is exercised inside transfer functions (merging
      predecessor facts), not by re-visits. *)
end

module Solver (L : LATTICE) : sig
  val forward :
    Netlist.t -> transfer:(int -> L.fact array -> L.fact) -> L.fact array
  (** [forward nl ~transfer] — facts flow with the signal direction:
      [transfer id facts] may read [facts.(f)] for every fan-in [f]
      of [id] (they are final when [id] is scheduled). Returns the
      fact array indexed by node id. Raises [Failure] on a
      combinational cycle (via {!Netlist.topo_order}). *)

  val backward :
    Netlist.t ->
    fanouts:int list array ->
    transfer:(int -> L.fact array -> L.fact) ->
    L.fact array
  (** [backward nl ~fanouts ~transfer] — facts flow against the
      signal direction: [transfer id facts] may read the facts of
      every consumer of [id] (pass {!Netlist.fanouts} so callers can
      share the reverse adjacency). *)
end

(** {1 Witness rendering}

    Witness steps print as [n<id>:<kind>] with the node's name
    appended when present (e.g. [n12:maj"sum3"]), source first. *)

val describe : Netlist.t -> int -> string
(** One witness step for a node. *)

val path_witness : Netlist.t -> int list -> string list
(** Render a node-id path (given source-first) into witness steps. *)

val chase : limit:int -> int -> (int -> int option) -> int list
(** [chase ~limit start next] — follow [next] from [start] until it
    returns [None] (or [limit] steps, a belt against accidental
    cycles), returning the visited ids from [start] onward. Shared by
    the domains' witness extraction. *)
