(* Ternary constants with X-propagation. *)

type value = Zero | One | Unknown

let value_name = function Zero -> "0" | One -> "1" | Unknown -> "X"

module L = struct
  type fact = value

  let name = "const"
  let bot = Unknown
  let equal = ( = )

  let join a b = if a = b then a else Unknown
end

module S = Absint.Solver (L)

let known b = if b then One else Zero

let neg = function Zero -> One | One -> Zero | Unknown -> Unknown

let and3 a b =
  match (a, b) with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | _ -> Unknown

let or3 a b =
  match (a, b) with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | _ -> Unknown

let xor3 a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> Unknown
  | x, y -> known (x <> y)

let transfer nl id facts =
  let f = Netlist.fanins nl id in
  let v k = facts.(f.(k)) in
  match Netlist.kind nl id with
  | Netlist.Input -> Unknown
  | Netlist.Const b -> known b
  | Netlist.Buf | Netlist.Output | Netlist.Splitter _ -> v 0
  | Netlist.Not -> neg (v 0)
  | Netlist.And -> and3 (v 0) (v 1)
  | Netlist.Or -> or3 (v 0) (v 1)
  | Netlist.Nand -> neg (and3 (v 0) (v 1))
  | Netlist.Nor -> neg (or3 (v 0) (v 1))
  | Netlist.Xor -> xor3 (v 0) (v 1)
  | Netlist.Xnor -> neg (xor3 (v 0) (v 1))
  | Netlist.Maj ->
      let a = v 0 and b = v 1 and c = v 2 in
      or3 (or3 (and3 a b) (and3 a c)) (and3 b c)

let solve nl = S.forward nl ~transfer:(fun id facts -> transfer nl id facts)

(* The fan-in responsible for a known fact: the leftmost fan-in that
   forces (or participates in) the constant. Chasing it terminates at
   a Const cell — the only source of known values. *)
let forcing_fanin nl facts id =
  let f = Netlist.fanins nl id in
  if Array.length f = 0 then None
  else
    let pick p =
      let r = ref None in
      Array.iter (fun fi -> if !r = None && p facts.(fi) then r := Some fi) f;
      !r
    in
    match Netlist.kind nl id with
    | Netlist.Input | Netlist.Const _ -> None
    | Netlist.Buf | Netlist.Output | Netlist.Splitter _ | Netlist.Not ->
        Some f.(0)
    | Netlist.And | Netlist.Nand -> (
        match pick (( = ) Zero) with Some fi -> Some fi | None -> pick (( <> ) Unknown))
    | Netlist.Or | Netlist.Nor -> (
        match pick (( = ) One) with Some fi -> Some fi | None -> pick (( <> ) Unknown))
    | Netlist.Xor | Netlist.Xnor | Netlist.Maj -> pick (( <> ) Unknown)

let witness nl facts id =
  let chain =
    Absint.chase ~limit:Netlist.(size nl) id (fun i ->
        if facts.(i) = Unknown then None else forcing_fanin nl facts i)
  in
  Absint.path_witness nl (List.rev chain)

let check nl =
  let facts = solve nl in
  let diags = ref [] in
  let push d = diags := d :: !diags in
  Netlist.iter nl (fun nd ->
      let i = nd.Netlist.id in
      match (nd.Netlist.kind, facts.(i)) with
      | _, Unknown | (Netlist.Input | Netlist.Const _), _ -> ()
      | Netlist.Output, v ->
          push
            (Diag.warning ~witness:(witness nl facts i) ~rule:"AI-CONST-01"
               (Diag.Node i) "primary output%s is provably constant %s"
               (match nd.Netlist.name with
               | Some n -> Printf.sprintf " %S" n
               | None -> "")
               (value_name v))
      | (Netlist.Buf | Netlist.Splitter _ | Netlist.Not), _ ->
          (* pass-through / unary of an already-known value: the root
             cause is flagged, not the whole downstream chain *)
          ()
      | ( ( Netlist.And | Netlist.Or | Netlist.Nand | Netlist.Nor
          | Netlist.Xor | Netlist.Xnor | Netlist.Maj ),
          v ) ->
          let has_unknown =
            Array.exists (fun f -> facts.(f) = Unknown) nd.Netlist.fanins
          in
          if has_unknown then
            push
              (Diag.warning ~witness:(witness nl facts i) ~rule:"AI-CONST-01"
                 (Diag.Node i)
                 "%s gate is forced constant %s (its unknown fan-in cone is \
                  provably wasted)"
                 (Netlist.kind_name nd.Netlist.kind)
                 (value_name v)));
  List.rev !diags

type fold_stats = { folded : int; live_before : int; live_after : int }

let live_count nl =
  let n = Netlist.size nl in
  let marked = Array.make n false in
  let rec visit i =
    if not marked.(i) then begin
      marked.(i) <- true;
      Array.iter visit (Netlist.fanins nl i)
    end
  in
  List.iter visit (Netlist.outputs nl);
  Array.fold_left (fun acc m -> if m then acc + 1 else acc) 0 marked

let fold nl =
  let facts = solve nl in
  let out = Netlist.copy nl in
  let live_before = live_count out in
  let folded = ref 0 in
  Netlist.iter out (fun nd ->
      let i = nd.Netlist.id in
      match (nd.Netlist.kind, facts.(i)) with
      | _, Unknown
      | (Netlist.Input | Netlist.Output | Netlist.Const _), _ ->
          ()
      | _, v ->
          Netlist.set_kind out i (Netlist.Const (v = One));
          Netlist.set_fanins out i [||];
          incr folded);
  (out, { folded = !folded; live_before; live_after = live_count out })
