(** Ternary-constant dataflow ([{0,1,X}] with X-propagation from the
    primary inputs).

    Primary inputs start at [Unknown]; [Const] generator cells are
    the only sources of known values; every gate kind has an exact
    ternary transfer (e.g. [And] is [Zero] as soon as one fan-in is
    [Zero], however unknown the other). A node whose fact is known is
    {e provably} constant for every input assignment — a sound,
    linear-time replacement for the SAT path on internal nets.

    [AI-CONST-01] (warning) fires on:
    - a logic gate forced constant while at least one fan-in is still
      unknown (the unknown cone is provably wasted), and
    - a primary output with a known value (a constant output).

    Pass-through chains ([Buf]/[Splitter]/[Not]) of an already-known
    value are deliberately not re-flagged — the root cause is. Every
    diagnostic carries the witness chain from the forcing [Const]
    generator down to the flagged node. *)

type value = Zero | One | Unknown

val value_name : value -> string

val solve : Netlist.t -> value array
(** Fixpoint facts, indexed by node id. Requires an acyclic netlist
    ([Failure] on a cycle, as {!Netlist.topo_order}). *)

val check : Netlist.t -> Diag.t list
(** The [AI-CONST-01] findings, in node-id order. *)

type fold_stats = {
  folded : int;  (** nodes rewritten to [Const] cells *)
  live_before : int;  (** nodes reachable from an output before *)
  live_after : int;  (** … and after the fold *)
}

val fold : Netlist.t -> Netlist.t * fold_stats
(** Constant folding for the equivalence engines: a copy of the
    netlist where every provably-constant internal node is replaced
    by a [Const] cell with no fan-ins. The function computed at every
    output is unchanged (the domain is sound), but the live cone the
    BDD/SAT engines traverse shrinks — the constants act as cone
    assumptions. IO markers and existing [Const] cells are kept. *)
