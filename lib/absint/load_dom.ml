(* Splitter-tree capacity intervals: [lo] observable sinks of [hi]
   structural sinks delivered by each subtree. *)

module L = struct
  type fact = int * int

  let name = "load"
  let bot = (0, 0)
  let equal = ( = )
  let join (a, b) (c, d) = (a + c, b + d)  (* tree branches sum *)
end

module S = Absint.Solver (L)

let is_splitter nl i =
  match Netlist.kind nl i with Netlist.Splitter _ -> true | _ -> false

let solve nl =
  let obs = Obs_dom.solve nl in
  let fanouts = Netlist.fanouts nl in
  let transfer id facts =
    if is_splitter nl id then
      List.fold_left
        (fun acc c ->
          let contrib =
            if is_splitter nl c then facts.(c)
            else ((if obs.(c) = Obs_dom.Observable then 1 else 0), 1)
          in
          L.join acc contrib)
        L.bot fanouts.(id)
    else ((if obs.(id) = Obs_dom.Observable then 1 else 0), 1)
  in
  S.backward nl ~fanouts ~transfer

(* Walk the tree from a wasted root down to one wasted sink. *)
let wasted_path nl facts fanouts root =
  let obs_sink c = fst facts.(c) >= snd facts.(c) in
  let next i =
    if not (is_splitter nl i) then None
    else
      let r = ref None in
      List.iter
        (fun c -> if !r = None && not (obs_sink c) then r := Some c)
        fanouts.(i);
      !r
  in
  Absint.chase ~limit:(Netlist.size nl) root next

let check nl =
  let facts = solve nl in
  let fanouts = Netlist.fanouts nl in
  let diags = ref [] in
  Netlist.iter nl (fun nd ->
      let i = nd.Netlist.id in
      match nd.Netlist.kind with
      | Netlist.Splitter k ->
          let driver_is_splitter =
            Array.length nd.Netlist.fanins > 0
            && is_splitter nl nd.Netlist.fanins.(0)
          in
          let lo, hi = facts.(i) in
          if (not driver_is_splitter) && lo < hi then
            diags :=
              Diag.warning
                ~witness:
                  (Absint.path_witness nl (wasted_path nl facts fanouts i))
                ~rule:"AI-LOAD-01" (Diag.Node i)
                "splitter tree (root arity %d) delivers %d sink(s) but only \
                 %d provably affect(s) an output — capacity wasted"
                k hi lo
              :: !diags
      | _ -> ());
  List.rev !diags
