(** Fanout-capacity intervals through splitter trees.

    AQFP bounds every gate's fan-out at 1; larger fan-outs are served
    by trees of 2..4-way splitter cells. This backward dataflow
    computes, for every node, the interval [[lo, hi]] of sinks its
    splitter subtree delivers:

    - [hi] — the structural count: real (non-splitter) consumers
      reachable through pure splitter chains;
    - [lo] — the provably-useful count: those of the [hi] sinks that
      are {!Obs_dom.Observable} (they actually affect an output).

    A legal, tight insertion yields [lo = hi] everywhere. [AI-LOAD-01]
    (warning) fires on every splitter-tree {e root} (a splitter whose
    driver is not itself a splitter) with [lo < hi]: part of the
    tree's capacity is provably wasted on sinks that cannot affect
    any output — a strictly tree-transitive upgrade of the node-local
    [NL-FANOUT-01] arity check. The witness walks the tree down to a
    wasted sink. *)

val solve : Netlist.t -> (int * int) array
(** Delivered-sink interval [(lo, hi)] per node id ([(0, 1)] or
    [(1, 1)] for non-splitter nodes: themselves as a sink). *)

val check : Netlist.t -> Diag.t list
(** The [AI-LOAD-01] findings, in node-id order. *)
