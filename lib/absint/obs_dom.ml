(* Backward observability, refined by ternary-constant facts. *)

type fact =
  | Dead of int option
  | Blocked of { blocker : int; via : int }
  | Observable

let rank = function Dead _ -> 0 | Blocked _ -> 1 | Observable -> 2

module L = struct
  type nonrec fact = fact

  let name = "obs"
  let bot = Dead None
  let equal = ( = )

  let join a b =
    if rank a > rank b then a
    else if rank b > rank a then b
    else
      match (a, b) with
      | Blocked x, Blocked y ->
          (* deterministic tie-break: nearest (smallest) blocker, then
             smallest first hop *)
          if (x.blocker, x.via) <= (y.blocker, y.via) then a else b
      | Dead (Some x), Dead (Some y) -> Dead (Some (min x y))
      | Dead None, d | d, Dead None -> d
      | _ -> a
end

module S = Absint.Solver (L)

let solve nl =
  let consts = Const_dom.solve nl in
  let fanouts = Netlist.fanouts nl in
  let transfer id facts =
    match Netlist.kind nl id with
    | Netlist.Output -> Observable
    | _ ->
        List.fold_left
          (fun acc c ->
            let edge =
              (* a provably-constant consumer passes no information:
                 every path through it is cut there *)
              if consts.(c) <> Const_dom.Unknown then
                Blocked { blocker = c; via = c }
              else
                match facts.(c) with
                | Observable -> Observable
                | Blocked { blocker; _ } -> Blocked { blocker; via = c }
                | Dead _ -> Dead (Some c)
            in
            L.join acc edge)
          L.bot fanouts.(id)
  in
  S.backward nl ~fanouts ~transfer

let witness nl facts i =
  let limit = Netlist.size nl in
  let rec go acc j steps =
    if steps >= limit then List.rev (j :: acc)
    else
      match facts.(j) with
      | Dead (Some v) -> go (j :: acc) v (steps + 1)
      | Blocked { via; blocker } ->
          if via = blocker then List.rev (blocker :: j :: acc)
          else go (j :: acc) via (steps + 1)
      | _ -> List.rev (j :: acc)
  in
  match facts.(i) with
  | Observable -> []
  | _ -> Absint.path_witness nl (go [] i 0)

let check nl =
  let facts = solve nl in
  let consts = Const_dom.solve nl in
  let diags = ref [] in
  Netlist.iter nl (fun nd ->
      let i = nd.Netlist.id in
      match (nd.Netlist.kind, facts.(i)) with
      | (Netlist.Input | Netlist.Output | Netlist.Const _), _ -> ()
      | _, Blocked { blocker; via }
        when via = blocker && consts.(i) = Const_dom.Unknown ->
          (* flag the gates feeding the blocking site directly; their
             upstream cones are implied (and stay un-spammed) *)
          diags :=
            Diag.warning ~witness:(witness nl facts i) ~rule:"AI-OBS-01"
              (Diag.Node i)
              "%s node provably does not affect any output: every path is \
               blocked at constant-valued node %d"
              (Netlist.kind_name nd.Netlist.kind)
              blocker
            :: !diags
      | _ -> ());
  List.rev !diags
