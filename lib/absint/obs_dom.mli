(** Backward observability: does a node provably affect any primary
    output?

    Backward dataflow from the output markers, refined by the
    {!Const_dom} facts: a signal dies not only when no structural
    path to an output exists, but also when every path runs through a
    consumer that is {e provably constant} (a constant gate passes no
    information — e.g. an [And] whose other fan-in is a constant 0).

    Facts, least to greatest:
    - [Dead] — no structural path to any output (the old
      reachability notion; [via] is the first hop of a chain to the
      dead end, [None] when the node has no consumers at all);
    - [Blocked] — structural paths exist, but every one is provably
      cut; [blocker] is the nearest dominating constant-valued gate
      and [via] the consumer through which it is reached;
    - [Observable] — drives at least one output along an un-blocked
      path.

    The lint pass consumes this result to upgrade [NL-DEAD-01] from
    "has no consumers" to "provably does not affect any output", with
    the blocking-gate witness in the message; the standalone
    [AI-OBS-01] (warning) pass reports the [Blocked] nodes — logic
    that looks alive by reachability but provably is not. *)

type fact =
  | Dead of int option  (** [via]: first hop towards the dead end *)
  | Blocked of { blocker : int; via : int }
  | Observable

val solve : Netlist.t -> fact array
(** Requires an acyclic netlist. The constant facts are recomputed
    internally ({!Const_dom.solve}). *)

val witness : Netlist.t -> fact array -> int -> string list
(** The chain from a non-observable node forward to its dead end or
    blocking gate (node first), for [Diag] witnesses. Empty for
    [Observable] nodes. *)

val check : Netlist.t -> Diag.t list
(** The [AI-OBS-01] findings ([Blocked] gates, excluding nodes that
    are themselves provably constant — those are [AI-CONST-01]'s),
    in node-id order. *)
