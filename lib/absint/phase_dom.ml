(* Phase-arrival intervals: structural path-balance proof. *)

module L = struct
  type fact = int * int

  let name = "phase"

  (* bot is never observed by a transfer (sources have no fan-ins) *)
  let bot = (max_int, min_int)
  let equal = ( = )
  let join (lo1, hi1) (lo2, hi2) = (min lo1 lo2, max hi1 hi2)
end

module S = Absint.Solver (L)

let transfer nl id facts =
  let f = Netlist.fanins nl id in
  match Netlist.kind nl id with
  | Netlist.Input | Netlist.Const _ -> (0, 0)
  | Netlist.Output -> facts.(f.(0))  (* marker, not a gate *)
  | _ ->
      let hull = ref facts.(f.(0)) in
      Array.iter (fun fi -> hull := L.join !hull facts.(fi)) f;
      let lo, hi = !hull in
      (lo + 1, hi + 1)

let solve nl = S.forward nl ~transfer:(fun id facts -> transfer nl id facts)

(* Longest arrival chain from a primary input/constant down to [id]:
   at each step, the leftmost fan-in on a critical (hi-preserving)
   path. *)
let longest_chain nl facts id =
  let next i =
    let f = Netlist.fanins nl i in
    if Array.length f = 0 then None
    else begin
      let _, hi = facts.(i) in
      let want = match Netlist.kind nl i with Netlist.Output -> hi | _ -> hi - 1 in
      let r = ref f.(0) in
      (try
         Array.iter
           (fun fi ->
             if snd facts.(fi) = want then begin
               r := fi;
               raise Exit
             end)
           f
       with Exit -> ());
      Some !r
    end
  in
  List.rev (Absint.chase ~limit:(Netlist.size nl) id next)

let check nl =
  let facts = solve nl in
  let diags = ref [] in
  Netlist.iter nl (fun nd ->
      let i = nd.Netlist.id in
      let f = nd.Netlist.fanins in
      if Array.length f >= 2 && nd.Netlist.kind <> Netlist.Output then begin
        let all_singleton =
          Array.for_all (fun fi -> fst facts.(fi) = snd facts.(fi)) f
        in
        if all_singleton then begin
          (* earliest reconvergence: balanced fan-in cones arriving at
             different phases *)
          let late = ref f.(0) and early = ref f.(0) in
          Array.iter
            (fun fi ->
              if snd facts.(fi) > snd facts.(!late) then late := fi;
              if snd facts.(fi) < snd facts.(!early) then early := fi)
            f;
          if snd facts.(!late) <> snd facts.(!early) then
            diags :=
              Diag.error
                ~witness:(Absint.path_witness nl (longest_chain nl facts i))
                ~rule:"AI-PHASE-01" (Diag.Node i)
                "unbalanced reconvergence: fanin %d arrives at phase %d but \
                 fanin %d at phase %d (%s gate needs all fan-ins in one phase)"
                !late (snd facts.(!late)) !early (snd facts.(!early))
                (Netlist.kind_name nd.Netlist.kind)
              :: !diags
        end
      end);
  List.rev !diags
