(** Phase-interval analysis: static proof of AQFP path balance.

    Forward dataflow where every node's fact is the interval
    [[lo, hi]] of clock-phase arrival times over all primary-input
    paths reaching it (inputs and constant generators arrive at
    phase 0; every gate, buffer and splitter adds one phase). The
    analysis is purely structural — it never reads the [phase] field
    assigned by [levelize] — so it independently cross-checks the
    insertion stage's output.

    A netlist is path-balanced iff every gate's fan-ins arrive at one
    single common phase. [AI-PHASE-01] (error) pinpoints the
    {e earliest} unbalanced reconvergences: nodes whose fan-ins each
    have singleton arrival intervals, but at different phases — the
    points where unbalance originates. Nodes merely downstream of an
    origin (fan-ins with already-widened intervals) are not
    re-flagged, so one seeded unbalance yields one diagnostic. The
    witness is the longest arrival chain from a primary input down to
    the unbalanced node; the message carries both arrival phases and
    the offending fan-in pair. *)

val solve : Netlist.t -> (int * int) array
(** Arrival interval [(lo, hi)] per node id. *)

val check : Netlist.t -> Diag.t list
(** The [AI-PHASE-01] findings (earliest unbalanced reconvergences),
    in node-id order. Empty iff the netlist is provably
    path-balanced. *)
