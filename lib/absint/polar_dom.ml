(* Inversion parity along Buf/Not/Splitter chains. *)

type fact = { root : int; inverted : bool; invs : int }

module L = struct
  type nonrec fact = fact

  let name = "polar"
  let bot = { root = -1; inverted = false; invs = 0 }
  let equal = ( = )

  (* chains have single fan-ins; a genuine merge resets to the node
     itself, which transfer expresses directly — join only breaks
     hypothetical ties deterministically *)
  let join a b = if a <= b then a else b
end

module S = Absint.Solver (L)

let solve nl =
  let transfer id facts =
    let f = Netlist.fanins nl id in
    match Netlist.kind nl id with
    | Netlist.Buf | Netlist.Splitter _ | Netlist.Output -> facts.(f.(0))
    | Netlist.Not ->
        let p = facts.(f.(0)) in
        { p with inverted = not p.inverted; invs = p.invs + 1 }
    | _ -> { root = id; inverted = false; invs = 0 }
  in
  S.forward nl ~transfer

(* The chain from a node back to its root, rendered root-first. *)
let chain_to_root nl id =
  let next i =
    match Netlist.kind nl i with
    | Netlist.Buf | Netlist.Splitter _ | Netlist.Output | Netlist.Not ->
        Some (Netlist.fanins nl i).(0)
    | _ -> None
  in
  List.rev (Absint.chase ~limit:(Netlist.size nl) id next)

let check nl =
  let facts = solve nl in
  let diags = ref [] in
  Netlist.iter nl (fun nd ->
      let i = nd.Netlist.id in
      match nd.Netlist.kind with
      | Netlist.Not ->
          let f = facts.(i) in
          if f.invs >= 2 && not f.inverted && f.root >= 0 then
            diags :=
              Diag.warning
                ~witness:(Absint.path_witness nl (chain_to_root nl i))
                ~rule:"AI-POLAR-01" (Diag.Node i)
                "inverter pair cancels: node recomputes node %d with even \
                 parity through %d inverters (AQFP inversion is free — fold \
                 the parity into the consumer)"
                f.root f.invs
              :: !diags
      | _ -> ());
  List.rev !diags
