(** Inversion-parity tracking along buffer/inverter chains.

    In AQFP, inversion is free: every cell can drive a {e negative}
    buffer, so an explicit inverter only ever needs to appear once on
    a path — a pair of inverters along one chain is pure waste (two
    cells, two clock phases, zero logic). This forward dataflow
    tracks, for every node, the nearest non-chain ancestor ([root] —
    the closest ancestor that is not a buffer, inverter or splitter),
    the inversion parity relative to it, and how many inverters the
    chain crossed.

    [AI-POLAR-01] (warning) fires on every inverter that brings its
    chain back to {e even} parity (at least two inverters deep): the
    node recomputes its root through a cancelling inverter pair. The
    witness is the chain from the root down to the flagged
    inverter. *)

type fact = {
  root : int;  (** nearest non-{Buf,Not,Splitter} ancestor (self otherwise) *)
  inverted : bool;  (** parity of inverters between [root] and the node *)
  invs : int;  (** number of inverters crossed *)
}

val solve : Netlist.t -> fact array

val check : Netlist.t -> Diag.t list
(** The [AI-POLAR-01] findings, in node-id order. *)
