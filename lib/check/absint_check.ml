(* The sf_absint dataflow analyses as Check passes, with optional
   memoization keyed by the netlist's structural hash. *)

type cache = {
  find : string -> Diag.t list option;
  store : string -> Diag.t list -> unit;
}

let domains = [ "const"; "phase"; "obs"; "load"; "polar" ]

let cache_key ~domain nl =
  "absint1:" ^ domain ^ ":" ^ Netlist.struct_hash nl

let checker = function
  | "const" -> Const_dom.check
  | "phase" -> Phase_dom.check
  | "obs" -> Obs_dom.check
  | "load" -> Load_dom.check
  | "polar" -> Polar_dom.check
  | d -> invalid_arg ("Absint_check.checker: unknown domain " ^ d)

let passes ?cache nl =
  (* all five domains need in-range fan-ins, correct arities and an
     acyclic graph; the structural lints own reporting that *)
  let sound = lazy (Netlist.validate_diags nl = []) in
  List.map
    (fun domain ->
      Check.pass ("absint-" ^ domain) (fun () ->
          if not (Lazy.force sound) then []
          else
            match cache with
            | None -> checker domain nl
            | Some c -> (
                let key = cache_key ~domain nl in
                match c.find key with
                | Some ds -> ds
                | None ->
                    let ds = checker domain nl in
                    c.store key ds;
                    ds)))
    domains
