(** The [sf_absint] dataflow analyses packaged as {!Check} passes.

    Five passes, in fixed order:
    - [absint-const] — ternary constant propagation ([AI-CONST-01]);
    - [absint-phase] — phase-interval balance ([AI-PHASE-01]);
    - [absint-obs] — backward observability ([AI-OBS-01]);
    - [absint-load] — splitter-tree capacity ([AI-LOAD-01]);
    - [absint-polar] — inversion parity ([AI-POLAR-01]).

    Every diagnostic carries a witness path. The passes need a
    structurally sound, acyclic netlist; on a broken structure they
    return no findings (the structural lints already gate the run).

    Results can be memoized through a {!cache} keyed by
    ["absint1:<domain>:" ^ Netlist.struct_hash nl] — the flow wires
    this to [sf_db]'s proof store, so a warm rerun re-solves
    nothing. A cache hit and a fresh solve render byte-identically. *)

type cache = {
  find : string -> Diag.t list option;
  store : string -> Diag.t list -> unit;
}
(** Diagnostic memo. Like {!Equiv.cache}, the checker stays decoupled
    from [sf_db]; the flow supplies an implementation backed by it. *)

val domains : string list
(** The domain names in pass order:
    [["const"; "phase"; "obs"; "load"; "polar"]]. *)

val cache_key : domain:string -> Netlist.t -> string
(** The memo key for one domain's findings on one netlist. *)

val passes : ?cache:cache -> Netlist.t -> Check.pass list
(** The five passes over [nl], each consulting (and filling) the
    cache when one is given. *)
