(* AQFP legality. The per-node scans are sharded over Parallel chunks
   and the per-chunk diagnostic lists concatenated left-to-right, so
   the report is identical at any pool size. *)

let check nl =
  let n = Netlist.size nl in
  let unset = ref false in
  Netlist.iter nl (fun nd ->
      if nd.Netlist.phase < 0 then unset := true);
  if !unset then
    List.filter_map
      (fun i ->
        if Netlist.phase nl i < 0 then
          Some
            (Diag.error ~rule:"AQFP-PHASE-00" (Diag.Node i)
               "clock phase unset (levelize never ran)")
        else None)
      (List.init n (fun i -> i))
  else begin
    let counts = Netlist.fanout_counts nl in
    let max_phase =
      Netlist.fold nl
        (fun acc nd ->
          if nd.Netlist.kind = Netlist.Output then acc
          else max acc nd.Netlist.phase)
        0
    in
    let chunks =
      Parallel.map_chunks ~label:"check.aqfp.nodes" ~chunk:4096 ~n (fun lo hi ->
          let diags = ref [] in
          let push d = diags := d :: !diags in
          for i = lo to hi - 1 do
            let nd = Netlist.node nl i in
            (match nd.Netlist.kind with
            | Netlist.Input | Netlist.Const _ | Netlist.Output -> ()
            | k ->
                (match k with
                | Netlist.Nand | Netlist.Nor | Netlist.Xor | Netlist.Xnor ->
                    push
                      (Diag.error ~rule:"AQFP-KIND-01" (Diag.Node i)
                         "non-majority gate %s survived synthesis"
                         (Netlist.kind_name k))
                | _ -> ());
                Array.iter
                  (fun f ->
                    let pf = Netlist.phase nl f in
                    if pf <> nd.Netlist.phase - 1 then
                      push
                        (Diag.error ~rule:"AQFP-PHASE-01" (Diag.Node i)
                           "fanin %d at phase %d, expected %d (gate phase %d)"
                           f pf (nd.Netlist.phase - 1) nd.Netlist.phase)
                  )
                  nd.Netlist.fanins);
            (match nd.Netlist.kind with
            | Netlist.Splitter k when k < 2 || k > 4 ->
                push
                  (Diag.error ~rule:"AQFP-SPLIT-01" (Diag.Node i)
                     "splitter arity %d outside the library's 2..4" k)
            | _ -> ());
            (match nd.Netlist.kind with
            | Netlist.Splitter _ | Netlist.Output -> ()
            | _ ->
                if counts.(i) > 1 then
                  push
                    (Diag.error ~rule:"AQFP-FANOUT-01" (Diag.Node i)
                       "%s drives %d consumers (AQFP fan-out is 1; insert a \
                        splitter)"
                       (Netlist.kind_name nd.Netlist.kind)
                       counts.(i)));
            (match nd.Netlist.kind with
            | Netlist.Output ->
                let driver = nd.Netlist.fanins.(0) in
                let pd = Netlist.phase nl driver in
                if pd <> max_phase then
                  push
                    (Diag.error ~rule:"AQFP-PHASE-02" (Diag.Node i)
                       "primary output retires at phase %d, design finishes \
                        at %d (unbalanced output)"
                       pd max_phase)
            | _ -> ())
          done;
          List.rev !diags)
    in
    Array.fold_left (fun acc ds -> acc @ ds) [] chunks
  end
