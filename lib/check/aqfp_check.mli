(** AQFP legality checks ([AQFP-*]) for a netlist {e after}
    buffer/splitter insertion (paper §III-B2's post-conditions).

    Rule catalog:
    - [AQFP-PHASE-00] (error) — a node's clock phase is unset
      (levelization never ran); the remaining phase rules are
      skipped when this fires;
    - [AQFP-PHASE-01] (error) — a gate has a fan-in that does not
      sit exactly one clock phase above it (the gate-level
      pipelining invariant);
    - [AQFP-PHASE-02] (error) — a primary output retires early: its
      driver's phase is not the design's final phase (output
      balancing, so the whole design retires in lock-step);
    - [AQFP-FANOUT-01] (error) — a non-splitter node drives more
      than one consumer (AQFP gates have fan-out 1; fan-out is the
      splitters' job);
    - [AQFP-SPLIT-01] (error) — a splitter's declared arity is
      outside the library's 2..4 range;
    - [AQFP-KIND-01] (error) — a gate kind that majority synthesis
      should have eliminated ([Nand]/[Nor]/[Xor]/[Xnor]) survives in
      the buffered netlist. *)

val check : Netlist.t -> Diag.t list
