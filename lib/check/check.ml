type tier = Fast | Full

let tier_name = function Fast -> "fast" | Full -> "full"

type pass = { name : string; run : unit -> Diag.t list }

let pass name run = { name; run }
let of_diags name diags = { name; run = (fun () -> diags) }

type pass_stat = { pass_name : string; n_diags : int; seconds : float }

type report = {
  header : (string * string) list;
  diags : Diag.t list;
  stats : pass_stat list;
}

let run ?(header = []) passes =
  let stats = ref [] and diags = ref [] in
  List.iter
    (fun p ->
      let ds, seconds =
        Wallclock.time (fun () ->
            try p.run ()
            with exn ->
              [
                Diag.error ~rule:"CHECK-CRASH-01" Diag.Global
                  "pass %S raised: %s" p.name (Printexc.to_string exn);
              ])
      in
      stats :=
        { pass_name = p.name; n_diags = List.length ds; seconds } :: !stats;
      diags := List.rev_append ds !diags)
    passes;
  { header; diags = List.rev !diags; stats = List.rev !stats }

let errors r = Diag.count Diag.Error r.diags
let warnings r = Diag.count Diag.Warning r.diags
let infos r = Diag.count Diag.Info r.diags
let ok r = errors r = 0

let summary_line r =
  Printf.sprintf "check: %d error(s), %d warning(s), %d info note(s) across %d pass(es)"
    (errors r) (warnings r) (infos r)
    (List.length r.stats)

let render_text r =
  let buf = Buffer.create 256 in
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "# %s: %s\n" k v))
    r.header;
  List.iter
    (fun d ->
      Buffer.add_string buf (Diag.to_string d);
      Buffer.add_char buf '\n')
    r.diags;
  Buffer.add_string buf (summary_line r);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let render_json r =
  let buf = Buffer.create 256 in
  if r.header <> [] then
    Buffer.add_string buf
      (Printf.sprintf "{\"header\":{%s}}\n"
         (String.concat ","
            (List.map
               (fun (k, v) -> Printf.sprintf "%S:%S" k v)
               r.header)));
  List.iter
    (fun d ->
      Buffer.add_string buf (Diag.to_json d);
      Buffer.add_char buf '\n')
    r.diags;
  Buffer.add_string buf
    (Printf.sprintf
       "{\"summary\":{\"errors\":%d,\"warnings\":%d,\"infos\":%d,\"passes\":%d}}\n"
       (errors r) (warnings r) (infos r)
       (List.length r.stats));
  Buffer.contents buf

let total_seconds r =
  List.fold_left (fun acc s -> acc +. s.seconds) 0.0 r.stats

let pp_summary ppf r = Format.pp_print_string ppf (summary_line r)
