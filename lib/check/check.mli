(** Pass-manager for the static-verification subsystem ([sf_check]).

    A {e pass} is a named analysis producing {!Diag.t} diagnostics;
    a {e report} is the ordered result of running a pass pipeline.
    Pass order is fixed by the caller, diagnostics keep their
    generation order within a pass, and every pass family shards its
    heavy inner loops over {!Parallel} with the left-to-right combine
    discipline — so a report renders byte-identically at any
    [--jobs] value.

    Pass families shipped by this library:
    - {!Lint} — structural netlist lints ([NL-*]);
    - {!Aqfp_check} — AQFP legality after buffer/splitter insertion
      ([AQFP-*]);
    - {!Equiv} — per-output formal equivalence guards ([EQ-*]);
    - {!Place_audit} — placement audit ([PL-*]);
    - {!Lvs} — layout-vs-schematic connectivity diff ([LVS-*]).

    The flow driver ([Flow.run ~check:true]) and the [superflow
    check] CLI subcommand assemble these into the standard gate. *)

type tier = Fast | Full
(** Engine tier of a gate run. [Fast] (the default flow tier) runs
    the always-on analyses — the [sf_absint] dataflow passes included
    — and skips the AIG/SAT-backed lints; [Full] (selected by
    [--engine sat|auto]) adds them. The tier is recorded in the
    report {!report.header}. *)

val tier_name : tier -> string
(** ["fast"] / ["full"]. *)

type pass

val pass : string -> (unit -> Diag.t list) -> pass
(** [pass name run] — a deferred analysis step. *)

val of_diags : string -> Diag.t list -> pass
(** A pass wrapping already-computed diagnostics (e.g. the synthesis
    stage's equivalence guards, or the flow's DRC violations). *)

type pass_stat = {
  pass_name : string;
  n_diags : int;
  seconds : float;  (** wall-clock runtime of this pass *)
}

type report = {
  header : (string * string) list;
      (** deterministic key/value context rendered before the
          diagnostics (e.g. [("tier", "fast"); ("engine", "auto")]) *)
  diags : Diag.t list;  (** all diagnostics, in pass order *)
  stats : pass_stat list;  (** one entry per pass, in run order *)
}

val run : ?header:(string * string) list -> pass list -> report
(** Run every pass in order, timing each. A pass that raises is
    converted into a single [CHECK-CRASH-01] error diagnostic rather
    than aborting the pipeline. [header] (default empty) is carried
    into the report verbatim. *)

val errors : report -> int
val warnings : report -> int
val infos : report -> int

val ok : report -> bool
(** True iff no error-severity diagnostic was produced. *)

val render_text : report -> string
(** One line per diagnostic plus a summary line. Deterministic: no
    timings, no machine-dependent content. *)

val render_json : report -> string
(** JSON-lines: one object per diagnostic, then one
    [{"summary": ...}] object with severity counts. Deterministic. *)

val total_seconds : report -> float

val pp_summary : Format.formatter -> report -> unit
(** [check: E error(s), W warning(s), I info note(s) across N passes]. *)
