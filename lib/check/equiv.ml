(* Per-output equivalence guards over pluggable engines. *)

let cone nl oid =
  (match Netlist.kind nl oid with
  | Netlist.Output -> ()
  | k ->
      invalid_arg
        (Printf.sprintf "Equiv.cone: node %d is %s, not an output" oid
           (Netlist.kind_name k)));
  let n = Netlist.size nl in
  let marked = Array.make n false in
  (* transitive fan-in; fanins may point forward (insertion rewires
     edges), so a plain DFS over ids is required, not an id sweep *)
  let rec visit i =
    if not marked.(i) then begin
      marked.(i) <- true;
      Array.iter visit (Netlist.fanins nl i)
    end
  in
  visit oid;
  List.iter (fun i -> marked.(i) <- true) (Netlist.inputs nl);
  let out = Netlist.create () in
  let map = Array.make n (-1) in
  (* two-pass build (cf. Netlist.copy): placeholders first, then the
     real, remapped fan-ins *)
  let pending = ref [] in
  Netlist.iter nl (fun nd ->
      let i = nd.Netlist.id in
      if marked.(i) then begin
        let placeholder = Array.map (fun _ -> 0) nd.Netlist.fanins in
        let id = Netlist.add out ?name:nd.Netlist.name nd.Netlist.kind placeholder in
        map.(i) <- id;
        if Array.length nd.Netlist.fanins > 0 then pending := i :: !pending
      end);
  List.iter
    (fun i ->
      let remapped = Array.map (fun f -> map.(f)) (Netlist.fanins nl i) in
      Netlist.set_fanins out map.(i) remapped)
    !pending;
  out

type engine = [ `Auto | `Bdd | `Sat ]

let engine_name = function `Auto -> "auto" | `Bdd -> "bdd" | `Sat -> "sat"

let engine_of_name = function
  | "auto" -> Some `Auto
  | "bdd" -> Some `Bdd
  | "sat" -> Some `Sat
  | _ -> None

type fallback = Bdd_budget | Sat_budget of int

type verdict =
  | Proven_equal
  | Proven_diff of bool array
  | Sampled_equal of fallback
  | Sampled_diff of fallback
  | Cex_invalid of bool array

type cache = { find : string -> string option; store : string -> string -> unit }

(* A counterexample is only reported after it actually distinguishes
   the two cones under simulation; a non-replaying cex is a solver
   bug, not a design difference. *)
let replays ca cb cex = Sim.eval ca cex <> Sim.eval cb cex

let sat_verdict ~conflict_budget ca cb =
  match Cec.check ~conflict_budget ca cb with
  | Cec.Equal -> Proven_equal
  | Cec.Diff cex ->
      if replays ca cb cex then Proven_diff cex else Cex_invalid cex
  | Cec.Unknown budget ->
      if Sim.equivalent ca cb then Sampled_equal (Sat_budget budget)
      else Sampled_diff (Sat_budget budget)

let check_cones ?(engine = `Auto) ?(max_nodes = 100_000)
    ?(conflict_budget = Cec.default_budget) ca cb =
  match engine with
  | `Sat -> sat_verdict ~conflict_budget ca cb
  | (`Bdd | `Auto) as e -> (
      match Bdd.check_equivalence ~max_nodes ca cb with
      | Bdd.Equivalent -> Proven_equal
      | Bdd.Different cex -> Proven_diff cex
      | Bdd.Too_large -> (
          match e with
          | `Auto -> sat_verdict ~conflict_budget ca cb
          | `Bdd ->
              if Sim.equivalent ca cb then Sampled_equal Bdd_budget
              else Sampled_diff Bdd_budget))

let bits v =
  String.concat "" (List.map (fun b -> if b then "1" else "0") (Array.to_list v))

let bools_of_bits s =
  Array.init (String.length s) (fun i -> s.[i] = '1')

(* Proof-cache encoding. Only proven verdicts are stored; a cached
   counterexample is replayed on the way back in, and anything
   unparseable or stale is treated as a miss. *)
let cache_key ca cb =
  "eq1:" ^ Netlist.struct_hash ca ^ ":" ^ Netlist.struct_hash cb

let encode_verdict = function
  | Proven_equal -> Some "equal"
  | Proven_diff cex -> Some ("diff:" ^ bits cex)
  | Sampled_equal _ | Sampled_diff _ | Cex_invalid _ -> None

let decode_verdict ca cb s =
  if s = "equal" then Some Proven_equal
  else if String.length s > 5 && String.sub s 0 5 = "diff:" then begin
    let cex = bools_of_bits (String.sub s 5 (String.length s - 5)) in
    if
      Array.length cex = List.length (Netlist.inputs ca) && replays ca cb cex
    then Some (Proven_diff cex)
    else None
  end
  else None

let check_pair ?(engine = `Auto) ?(max_nodes = 100_000)
    ?(conflict_budget = Cec.default_budget) ?cache ~stage before after =
  let outs_b = Array.of_list (Netlist.outputs before) in
  let outs_a = Array.of_list (Netlist.outputs after) in
  let ins_b = List.length (Netlist.inputs before) in
  let ins_a = List.length (Netlist.inputs after) in
  if ins_b <> ins_a || Array.length outs_b <> Array.length outs_a then
    [
      Diag.error ~rule:"EQ-ARITY-01" Diag.Global
        "%s: IO mismatch (%d/%d inputs, %d/%d outputs)" stage ins_b ins_a
        (Array.length outs_b) (Array.length outs_a);
    ]
  else begin
    let n = Array.length outs_b in
    (* cones are extracted (and the cache consulted) serially: the
       netlist is mutable and the cache does I/O, neither belongs in a
       worker lane. Each cone is constant-folded with the absint
       ternary facts first — sound (folding preserves the function),
       and it shrinks both the proof and the cache key's sensitivity
       to dead constant cones. *)
    let folded c = fst (Const_dom.fold c) in
    let cones =
      Array.init n (fun i ->
          ( folded (cone before outs_b.(i)),
            folded (cone after outs_a.(i)) ))
    in
    let keys =
      match cache with
      | None -> [||]
      | Some _ ->
          Array.map (fun (ca, cb) -> cache_key ca cb) cones
    in
    let cached =
      Array.init n (fun i ->
          match cache with
          | None -> None
          | Some c -> (
              match c.find keys.(i) with
              | None -> None
              | Some s ->
                  let ca, cb = cones.(i) in
                  decode_verdict ca cb s))
    in
    (* one lane per primary output, verdicts combined in output order *)
    let verdicts =
      Parallel.parallel_init ~label:"check.equiv.outputs" ~chunk:1 n (fun i ->
          match cached.(i) with
          | Some v -> v
          | None ->
              let ca, cb = cones.(i) in
              check_cones ~engine ~max_nodes ~conflict_budget ca cb)
    in
    (match cache with
    | None -> ()
    | Some c ->
        Array.iteri
          (fun i v ->
            match cached.(i) with
            | Some _ -> ()
            | None -> (
                match encode_verdict v with
                | Some s -> c.store keys.(i) s
                | None -> ()))
          verdicts);
    let diags = ref [] in
    let push d = diags := d :: !diags in
    Array.iteri
      (fun i v ->
        let oid = outs_a.(i) in
        let name =
          match Netlist.name after oid with
          | Some n -> Printf.sprintf "%S" n
          | None -> Printf.sprintf "#%d" i
        in
        match v with
        | Proven_equal -> ()
        | Proven_diff cex ->
            push
              (Diag.error ~rule:"EQ-DIFF-01" (Diag.Node oid)
                 "%s: output %s differs (counterexample inputs %s)" stage name
                 (bits cex))
        | Sampled_diff _ ->
            push
              (Diag.error ~rule:"EQ-DIFF-02" (Diag.Node oid)
                 "%s: output %s differs under simulation fallback" stage name)
        | Sampled_equal Bdd_budget ->
            push
              (Diag.warning ~rule:"EQ-FALLBACK-01" (Diag.Node oid)
                 "%s: output %s exceeded the BDD budget; equivalence sampled, \
                  not proven"
                 stage name)
        | Sampled_equal (Sat_budget budget) ->
            push
              (Diag.warning ~rule:"EQ-TIMEOUT-01" (Diag.Node oid)
                 "%s: output %s exhausted the SAT conflict budget (%d); \
                  equivalence sampled, not proven"
                 stage name budget)
        | Cex_invalid cex ->
            push
              (Diag.error ~rule:"EQ-CEX-01" (Diag.Node oid)
                 "%s: output %s: internal error — SAT counterexample %s does \
                  not replay through simulation"
                 stage name (bits cex)))
      verdicts;
    List.rev !diags
  end
