(* Per-output equivalence guards. *)

let cone nl oid =
  (match Netlist.kind nl oid with
  | Netlist.Output -> ()
  | k ->
      invalid_arg
        (Printf.sprintf "Equiv.cone: node %d is %s, not an output" oid
           (Netlist.kind_name k)));
  let n = Netlist.size nl in
  let marked = Array.make n false in
  (* transitive fan-in; fanins may point forward (insertion rewires
     edges), so a plain DFS over ids is required, not an id sweep *)
  let rec visit i =
    if not marked.(i) then begin
      marked.(i) <- true;
      Array.iter visit (Netlist.fanins nl i)
    end
  in
  visit oid;
  List.iter (fun i -> marked.(i) <- true) (Netlist.inputs nl);
  let out = Netlist.create () in
  let map = Array.make n (-1) in
  (* two-pass build (cf. Netlist.copy): placeholders first, then the
     real, remapped fan-ins *)
  let pending = ref [] in
  Netlist.iter nl (fun nd ->
      let i = nd.Netlist.id in
      if marked.(i) then begin
        let placeholder = Array.map (fun _ -> 0) nd.Netlist.fanins in
        let id = Netlist.add out ?name:nd.Netlist.name nd.Netlist.kind placeholder in
        map.(i) <- id;
        if Array.length nd.Netlist.fanins > 0 then pending := i :: !pending
      end);
  List.iter
    (fun i ->
      let remapped = Array.map (fun f -> map.(f)) (Netlist.fanins nl i) in
      Netlist.set_fanins out map.(i) remapped)
    !pending;
  out

type verdict =
  | Proven_equal
  | Proven_diff of bool array
  | Sampled_equal
  | Sampled_diff

let check_output ~max_nodes before after ob oa =
  let ca = cone before ob and cb = cone after oa in
  match Bdd.check_equivalence ~max_nodes ca cb with
  | Bdd.Equivalent -> Proven_equal
  | Bdd.Different cex -> Proven_diff cex
  | Bdd.Too_large ->
      if Sim.equivalent ca cb then Sampled_equal else Sampled_diff

let bits v =
  String.concat "" (List.map (fun b -> if b then "1" else "0") (Array.to_list v))

let check_pair ?(max_nodes = 100_000) ~stage before after =
  let outs_b = Array.of_list (Netlist.outputs before) in
  let outs_a = Array.of_list (Netlist.outputs after) in
  let ins_b = List.length (Netlist.inputs before) in
  let ins_a = List.length (Netlist.inputs after) in
  if ins_b <> ins_a || Array.length outs_b <> Array.length outs_a then
    [
      Diag.error ~rule:"EQ-ARITY-01" Diag.Global
        "%s: IO mismatch (%d/%d inputs, %d/%d outputs)" stage ins_b ins_a
        (Array.length outs_b) (Array.length outs_a);
    ]
  else begin
    (* one lane per primary output, verdicts combined in output order *)
    let verdicts =
      Parallel.parallel_init ~chunk:1 (Array.length outs_b) (fun i ->
          check_output ~max_nodes before after outs_b.(i) outs_a.(i))
    in
    let diags = ref [] in
    Array.iteri
      (fun i v ->
        let oid = outs_a.(i) in
        let name =
          match Netlist.name after oid with
          | Some n -> Printf.sprintf "%S" n
          | None -> Printf.sprintf "#%d" i
        in
        match v with
        | Proven_equal -> ()
        | Proven_diff cex ->
            diags :=
              Diag.error ~rule:"EQ-DIFF-01" (Diag.Node oid)
                "%s: output %s differs (counterexample inputs %s)" stage name
                (bits cex)
              :: !diags
        | Sampled_diff ->
            diags :=
              Diag.error ~rule:"EQ-DIFF-02" (Diag.Node oid)
                "%s: output %s differs under simulation fallback" stage name
              :: !diags
        | Sampled_equal ->
            diags :=
              Diag.info ~rule:"EQ-FALLBACK-01" (Diag.Node oid)
                "%s: output %s exceeded the BDD budget; equivalence sampled, \
                 not proven"
                stage name
              :: !diags)
      verdicts;
    List.rev !diags
  end
