(** Stage-equivalence guards ([EQ-*]): formal combinational
    equivalence between two snapshots of the same design, asserted at
    the synthesis handoffs (AOI → MAJ and MAJ → buffered AQFP inside
    [Synth_flow.run ~check:true]).

    The check is sharded per primary output over {!Parallel}: each
    lane extracts the output's logic cone from both netlists (over
    the full, shared primary-input order, so BDD variable orders
    agree) and proves the cones equal with a budgeted ROBDD
    ({!Bdd.check_equivalence}); a cone that exceeds the node budget
    falls back to {!Sim.equivalent} and reports the downgrade as an
    info-level diagnostic. Verdicts are combined in output order, so
    the report is identical at any pool size.

    Rule catalog:
    - [EQ-ARITY-01] (error) — primary input/output counts differ;
    - [EQ-DIFF-01] (error) — an output provably differs (the message
      carries the BDD counterexample input vector);
    - [EQ-DIFF-02] (error) — an output differs under the simulation
      fallback;
    - [EQ-FALLBACK-01] (info) — BDD budget exceeded for an output;
      equivalence only sampled, not proven. *)

val cone : Netlist.t -> int -> Netlist.t
(** [cone nl oid] — the sub-netlist feeding output marker [oid]: all
    primary inputs of [nl] (in order, used or not) plus the
    transitive fan-in of [oid] and the marker itself. Raises
    [Invalid_argument] if [oid] is not an [Output] node. *)

val check_pair :
  ?max_nodes:int -> stage:string -> Netlist.t -> Netlist.t -> Diag.t list
(** [check_pair ~stage before after] — per-output equivalence of two
    netlists; [stage] (e.g. ["aoi->maj"]) tags the messages.
    [max_nodes] is the per-output BDD budget (default 100_000). *)
