(** Stage-equivalence guards ([EQ-*]): formal combinational
    equivalence between two snapshots of the same design, asserted at
    the synthesis handoffs (AOI → MAJ and MAJ → buffered AQFP inside
    [Synth_flow.run ~check:true]) and available standalone through
    [superflow prove].

    The check is sharded per primary output over {!Parallel}: each
    lane proves the output's logic cone (extracted over the full,
    shared primary-input order) equal in both netlists with the
    selected {!engine}:

    - [`Bdd] — budgeted ROBDD ({!Bdd.check_equivalence}); a cone that
      exceeds the node budget falls back to {!Sim.equivalent} and
      reports the downgrade;
    - [`Sat] — SAT-sweeping CEC ({!Cec.check}), complete up to the
      conflict budget;
    - [`Auto] (default) — BDD first, SAT on [Too_large], so deep
      cones are proven rather than sampled.

    Every SAT counterexample is replayed through {!Sim.eval} before
    being reported; a cex that does not actually distinguish the two
    cones is a solver bug and surfaces as an internal-error
    diagnostic, never as a fake difference. Verdicts are combined in
    output order, so the report is byte-identical at any pool size.

    Before any engine runs, each extracted cone is constant-folded
    with the [sf_absint] ternary facts ({!Const_dom.fold}) — sound
    (folding preserves the cone's function) and strictly
    proof-shrinking: constants cut BDD variables and SAT clauses
    alike, and the cache key is computed over the folded cone.

    Proven verdicts can be memoized through a {!cache} (the flow
    wires this to [sf_db]); keys are content hashes of the two folded
    cones, so a warm rerun re-proves nothing. Cache lookups and
    stores run outside the parallel region and never affect the
    emitted diagnostics.

    Rule catalog:
    - [EQ-ARITY-01] (error) — primary input/output counts differ;
    - [EQ-DIFF-01] (error) — an output provably differs (the message
      carries the counterexample input vector);
    - [EQ-DIFF-02] (error) — an output differs under the simulation
      fallback;
    - [EQ-FALLBACK-01] (warning) — BDD budget exceeded and no
      complete engine ran; equivalence only sampled, not proven;
    - [EQ-TIMEOUT-01] (warning) — SAT conflict budget exhausted for
      an output; equivalence only sampled, not proven;
    - [EQ-CEX-01] (error) — internal: a SAT counterexample failed to
      replay through simulation. *)

type engine = [ `Auto | `Bdd | `Sat ]

val engine_name : engine -> string
(** ["auto"], ["bdd"], ["sat"] — stable names for CLI flags and cache
    key derivation. *)

val engine_of_name : string -> engine option

type fallback =
  | Bdd_budget  (** BDD node budget exceeded, no SAT engine ran *)
  | Sat_budget of int  (** SAT conflict budget (the payload) exhausted *)

type verdict =
  | Proven_equal
  | Proven_diff of bool array  (** replayed counterexample *)
  | Sampled_equal of fallback
  | Sampled_diff of fallback
  | Cex_invalid of bool array
      (** solver produced a cex that does not replay — internal error *)

type cache = {
  find : string -> string option;
  store : string -> string -> unit;
}
(** Proof-verdict memo. Only {e proven} verdicts are stored. The
    checker stays decoupled from [sf_db]; the flow supplies an
    implementation backed by it. *)

val cone : Netlist.t -> int -> Netlist.t
(** [cone nl oid] — the sub-netlist feeding output marker [oid]: all
    primary inputs of [nl] (in order, used or not) plus the
    transitive fan-in of [oid] and the marker itself. Raises
    [Invalid_argument] if [oid] is not an [Output] node. *)

val check_cones :
  ?engine:engine ->
  ?max_nodes:int ->
  ?conflict_budget:int ->
  Netlist.t ->
  Netlist.t ->
  verdict
(** Prove two single-output cones (as produced by {!cone})
    equivalent. [max_nodes] is the BDD node budget (default 100_000),
    [conflict_budget] the SAT conflict budget (default
    {!Cec.default_budget}). *)

val check_pair :
  ?engine:engine ->
  ?max_nodes:int ->
  ?conflict_budget:int ->
  ?cache:cache ->
  stage:string ->
  Netlist.t ->
  Netlist.t ->
  Diag.t list
(** [check_pair ~stage before after] — per-output equivalence of two
    netlists; [stage] (e.g. ["aoi->maj"]) tags the messages. *)
