(* Structural netlist lints. The hard errors (arity, dangling ids,
   cycles, splitter fanout) come from [Netlist.validate_diags]; this
   pass adds the style/liveness findings on top. *)

let fanout_counts_parallel nl =
  let n = Netlist.size nl in
  (* per-chunk count buffers, summed left-to-right: identical to the
     serial count at any pool size *)
  let parts =
    Parallel.map_chunks ~label:"check.lint.fanout" ~chunk:4096 ~n (fun lo hi ->
        let counts = Array.make n 0 in
        for i = lo to hi - 1 do
          Array.iter
            (fun f ->
              if f >= 0 && f < n then counts.(f) <- counts.(f) + 1)
            (Netlist.fanins nl i)
        done;
        counts)
  in
  let total = Array.make n 0 in
  Array.iter
    (fun part -> Array.iteri (fun i c -> total.(i) <- total.(i) + c) part)
    parts;
  total

let check ?(tier = Check.Full) nl =
  let structural = Netlist.validate_diags nl in
  let diags = ref [] in
  let push d = diags := d :: !diags in
  (* duplicate names *)
  let seen : (string, int) Hashtbl.t = Hashtbl.create 64 in
  Netlist.iter nl (fun nd ->
      match nd.Netlist.name with
      | None -> ()
      | Some name -> (
          match Hashtbl.find_opt seen name with
          | Some first ->
              push
                (Diag.warning ~rule:"NL-NAME-01" (Diag.Node nd.Netlist.id)
                   "name %S already used by node %d" name first)
          | None -> Hashtbl.add seen name nd.Netlist.id));
  (* AIG-backed lints: structural hashing + constant propagation find
     redundant and degenerate logic. Conversion needs a structurally
     sound netlist (in-range fan-ins, correct arities, no cycles), and
     the [Fast] tier skips it — the absint constant pass (AI-CONST-01)
     covers degenerate logic at a fraction of the cost. *)
  if structural = [] && tier = Check.Full then begin
    let aig = Aig.create ~n_inputs:(List.length (Netlist.inputs nl)) in
    let lits = Aig.add_netlist aig nl in
    (* two gates computing the same AIG literal from the same fan-ins
       are redundant copies. Buffers and splitters are exempt: in AQFP
       they legitimately replicate a signal for pipelining/fan-out. *)
    let dup : (int list * int, int) Hashtbl.t = Hashtbl.create 64 in
    Netlist.iter nl (fun nd ->
        match nd.Netlist.kind with
        | Netlist.Input | Netlist.Output | Netlist.Const _ | Netlist.Buf
        | Netlist.Splitter _ ->
            ()
        | Netlist.Not | Netlist.And | Netlist.Or | Netlist.Nand | Netlist.Nor
        | Netlist.Xor | Netlist.Xnor | Netlist.Maj -> (
            let key =
              ( List.sort Int.compare (Array.to_list nd.Netlist.fanins),
                lits.(nd.Netlist.id) )
            in
            match Hashtbl.find_opt dup key with
            | Some first ->
                push
                  (Diag.warning ~rule:"NL-DUP-01" (Diag.Node nd.Netlist.id)
                     "structurally duplicate gate: %s node recomputes node %d \
                      (same function of the same fan-ins)"
                     (Netlist.kind_name nd.Netlist.kind) first)
            | None -> Hashtbl.add dup key nd.Netlist.id));
    List.iter
      (fun oid ->
        let l = lits.(oid) in
        if l = Aig.false_lit || l = Aig.true_lit then
          push
            (Diag.warning ~rule:"NL-CONST-01" (Diag.Node oid)
               "output%s is provably constant %d"
               (match Netlist.name nl oid with
               | Some n -> Printf.sprintf " %S" n
               | None -> "")
               (l land 1)))
      (Netlist.outputs nl)
  end;
  (* liveness: with a sound structure, backward observability upgrades
     NL-DEAD-01 from "has no consumers" to "provably does not affect
     any primary output" and ships the chain to the dead end as a
     witness. Broken structure falls back to the plain fan-out scan. *)
  if structural = [] then begin
    let facts = Obs_dom.solve nl in
    Netlist.iter nl (fun nd ->
        let i = nd.Netlist.id in
        match (nd.Netlist.kind, facts.(i)) with
        | Netlist.Output, _ -> ()
        | Netlist.Input, Obs_dom.Dead None ->
            push
              (Diag.info ~rule:"NL-INPUT-01" (Diag.Node i)
                 "primary input%s is never used"
                 (match nd.Netlist.name with
                 | Some n -> Printf.sprintf " %S" n
                 | None -> ""))
        | Netlist.Input, _ -> ()
        | k, Obs_dom.Dead via ->
            push
              (Diag.warning
                 ~witness:(Obs_dom.witness nl facts i)
                 ~rule:"NL-DEAD-01" (Diag.Node i)
                 "dead logic: %s node provably does not affect any output%s"
                 (Netlist.kind_name k)
                 (match via with
                 | None -> " (no consumers)"
                 | Some _ -> " (all paths dead-end)"))
        | _ -> ())
  end
  else if
    not (List.exists (fun d -> d.Diag.rule = "NL-DANGLE-01") structural)
  then begin
    let counts = fanout_counts_parallel nl in
    Netlist.iter nl (fun nd ->
        if counts.(nd.Netlist.id) = 0 then
          match nd.Netlist.kind with
          | Netlist.Output -> ()
          | Netlist.Input ->
              push
                (Diag.info ~rule:"NL-INPUT-01" (Diag.Node nd.Netlist.id)
                   "primary input%s is never used"
                   (match nd.Netlist.name with
                   | Some n -> Printf.sprintf " %S" n
                   | None -> ""))
          | k ->
              push
                (Diag.warning ~rule:"NL-DEAD-01" (Diag.Node nd.Netlist.id)
                   "dead logic: %s node has no consumers"
                   (Netlist.kind_name k)))
  end;
  if Netlist.outputs nl = [] then
    push
      (Diag.warning ~rule:"NL-OUT-01" Diag.Global
         "netlist has no primary outputs");
  structural @ List.rev !diags
