(** Netlist lints ([NL-*]): structural problems any stage's netlist
    can exhibit, independent of AQFP legality.

    Rule catalog:
    - [NL-ARITY-01] (error) — fan-in count differs from the gate
      kind's arity (from [Netlist.validate_diags]);
    - [NL-DANGLE-01] (error) — fan-in references a node id outside
      the netlist;
    - [NL-CYCLE-01] (error) — combinational cycle;
    - [NL-FANOUT-01] (error) — a [Splitter k] drives a number of
      consumers different from [k];
    - [NL-NAME-01] (warning) — two nodes share a name;
    - [NL-DUP-01] (warning) — structurally duplicate gate: a gate
      recomputes the same AIG function of the same fan-ins as an
      earlier gate (buffers/splitters exempt — replication is their
      job);
    - [NL-CONST-01] (warning) — a primary output is provably constant
      after AIG constant propagation;
    - [NL-DEAD-01] (warning) — dead logic: backward observability
      ({!Obs_dom}) proves the node reaches no primary output, with
      the forward chain to the dead end as the diagnostic witness;
    - [NL-INPUT-01] (info) — an unused primary input;
    - [NL-OUT-01] (warning) — the netlist has no primary outputs.

    The duplicate/constant rules ride on [sf_sat]'s structurally
    hashed {!Aig}; they only run when the netlist is structurally
    sound (no [NL-ARITY-01]/[NL-DANGLE-01]/[NL-CYCLE-01]) {e and} the
    tier is {!Check.Full} — the [Fast] tier leans on the [sf_absint]
    constant pass ([AI-CONST-01]) instead, which finds the same
    degenerate logic without building the AIG.

    Fanout counting is sharded over {!Parallel} chunks with a
    deterministic combine, so large netlists lint at full core
    count with byte-identical reports. *)

val check : ?tier:Check.tier -> Netlist.t -> Diag.t list
(** [check ?tier nl] — default tier is [Full] (the standalone-lint
    behaviour); the flow gate passes its own tier through. *)
