(** Netlist lints ([NL-*]): structural problems any stage's netlist
    can exhibit, independent of AQFP legality.

    Rule catalog:
    - [NL-ARITY-01] (error) — fan-in count differs from the gate
      kind's arity (from [Netlist.validate_diags]);
    - [NL-DANGLE-01] (error) — fan-in references a node id outside
      the netlist;
    - [NL-CYCLE-01] (error) — combinational cycle;
    - [NL-FANOUT-01] (error) — a [Splitter k] drives a number of
      consumers different from [k];
    - [NL-NAME-01] (warning) — two nodes share a name;
    - [NL-DUP-01] (warning) — structurally duplicate gate: a gate
      recomputes the same AIG function of the same fan-ins as an
      earlier gate (buffers/splitters exempt — replication is their
      job);
    - [NL-CONST-01] (warning) — a primary output is provably constant
      after AIG constant propagation;
    - [NL-DEAD-01] (warning) — a logic node computes a value nobody
      consumes (dead logic);
    - [NL-INPUT-01] (info) — an unused primary input;
    - [NL-OUT-01] (warning) — the netlist has no primary outputs.

    The duplicate/constant rules ride on [sf_sat]'s structurally
    hashed {!Aig} and only run when the netlist is structurally sound
    (no [NL-ARITY-01]/[NL-DANGLE-01]/[NL-CYCLE-01]).

    Fanout counting is sharded over {!Parallel} chunks with a
    deterministic combine, so large netlists lint at full core
    count with byte-identical reports. *)

val check : Netlist.t -> Diag.t list
