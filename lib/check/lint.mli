(** Netlist lints ([NL-*]): structural problems any stage's netlist
    can exhibit, independent of AQFP legality.

    Rule catalog:
    - [NL-ARITY-01] (error) — fan-in count differs from the gate
      kind's arity (from [Netlist.validate_diags]);
    - [NL-DANGLE-01] (error) — fan-in references a node id outside
      the netlist;
    - [NL-CYCLE-01] (error) — combinational cycle;
    - [NL-FANOUT-01] (error) — a [Splitter k] drives a number of
      consumers different from [k];
    - [NL-DUP-01] (warning) — two nodes share a name;
    - [NL-DEAD-01] (warning) — a logic node computes a value nobody
      consumes (dead logic);
    - [NL-INPUT-01] (info) — an unused primary input;
    - [NL-OUT-01] (warning) — the netlist has no primary outputs.

    Fanout counting is sharded over {!Parallel} chunks with a
    deterministic combine, so large netlists lint at full core
    count with byte-identical reports. *)

val check : Netlist.t -> Diag.t list
