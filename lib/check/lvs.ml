(* LVS-lite: extract connectivity back from the drawn geometry and
   diff it against the netlist's fan-in edges.

   Geometry nodes are quantized (point, layer) pairs. Wires connect
   their two endpoints on their own layer; vias connect the two
   routing layers at one point; a cell pin is a terminal connecting
   both layers at the pin coordinate (a wire may land on a pin on
   either layer). Net labels carried by the wires are deliberately
   ignored — only geometry speaks. *)

let layer_m1 = 10
let layer_m2 = 11

(* 1 nm quantization via the shared sf_geom snap: route endpoints equal
   pin coordinates to within the router's 1e-6 um tolerance, far inside
   one quantum *)
let quant = Igeom.of_um

type pinset = { mutable srcs : int list; mutable dsts : int list }

let check p layout =
  let nets = p.Problem.nets in
  let n_nets = Array.length nets in
  (* intern quantized (x, y, layer) keys *)
  let ids : (int * int * int, int) Hashtbl.t = Hashtbl.create 4096 in
  let next = ref 0 in
  let intern key =
    match Hashtbl.find_opt ids key with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        Hashtbl.add ids key i;
        i
  in
  let key_of pt layer = (quant pt.Geom.x, quant pt.Geom.y, layer) in
  (* pass 1: intern every geometry node *)
  let wire_keys =
    Array.map
      (fun w -> (intern (key_of w.Layout.a w.Layout.layer),
                 intern (key_of w.Layout.b w.Layout.layer)))
      layout.Layout.wires
  in
  let via_keys =
    Array.map
      (fun v -> (intern (key_of v.Layout.at layer_m1),
                 intern (key_of v.Layout.at layer_m2)))
      layout.Layout.vias
  in
  (* pin coordinates, computed exactly as the router does: a driver
     pin sits on its cell's bottom edge, a sink pin on the top edge *)
  let pin_point ni side =
    let e = nets.(ni) in
    match side with
    | `Src ->
        let c = p.Problem.cells.(e.Problem.src) in
        ( Problem.pin_x p ni `Src,
          Problem.row_top p c.Problem.row +. c.Problem.lib.Cell.height )
    | `Dst ->
        let c = p.Problem.cells.(e.Problem.dst) in
        (Problem.pin_x p ni `Dst, Problem.row_top p c.Problem.row)
  in
  let pin_keys side =
    Array.init n_nets (fun ni ->
        let x, y = pin_point ni side in
        let a = intern (quant x, quant y, layer_m1) in
        let b = intern (quant x, quant y, layer_m2) in
        (a, b))
  in
  let src_keys = pin_keys `Src and dst_keys = pin_keys `Dst in
  (* pass 2: stitch *)
  let uf = Union_find.create !next in
  Array.iter (fun (a, b) -> Union_find.union uf a b) wire_keys;
  Array.iter (fun (a, b) -> Union_find.union uf a b) via_keys;
  Array.iter (fun (a, b) -> Union_find.union uf a b) src_keys;
  Array.iter (fun (a, b) -> Union_find.union uf a b) dst_keys;
  (* pass 3: component summaries (serial; Union_find.find compresses
     paths, so all finds happen before the parallel stage) *)
  let comp : (int, pinset) Hashtbl.t = Hashtbl.create 256 in
  let pins_of root =
    match Hashtbl.find_opt comp root with
    | Some ps -> ps
    | None ->
        let ps = { srcs = []; dsts = [] } in
        Hashtbl.add comp root ps;
        ps
  in
  let src_root = Array.map (fun (a, _) -> Union_find.find uf a) src_keys in
  let dst_root = Array.map (fun (a, _) -> Union_find.find uf a) dst_keys in
  Array.iteri (fun ni r -> (pins_of r).srcs <- ni :: (pins_of r).srcs) src_root;
  Array.iteri (fun ni r -> (pins_of r).dsts <- ni :: (pins_of r).dsts) dst_root;
  Hashtbl.iter
    (fun _ ps ->
      ps.srcs <- List.rev ps.srcs;
      ps.dsts <- List.rev ps.dsts)
    comp;
  (* per-component pin count and lowest involved net (for single-shot
     short reporting), materialized as arrays so the parallel lanes
     never touch the hashtable or the union-find *)
  let npins = Array.make !next 0 in
  let minnet = Array.make !next max_int in
  Hashtbl.iter
    (fun root ps ->
      npins.(root) <- List.length ps.srcs + List.length ps.dsts;
      List.iter (fun ni -> minnet.(root) <- min minnet.(root) ni) ps.srcs;
      List.iter (fun ni -> minnet.(root) <- min minnet.(root) ni) ps.dsts)
    comp;
  let comp_dsts = Array.make !next [] in
  let comp_all = Array.make !next [] in
  Hashtbl.iter
    (fun root ps ->
      comp_dsts.(root) <- ps.dsts;
      comp_all.(root) <- List.sort_uniq Int.compare (ps.srcs @ ps.dsts))
    comp;
  let node_of ni side =
    let e = nets.(ni) in
    let ci = match side with `Src -> e.Problem.src | `Dst -> e.Problem.dst in
    p.Problem.cells.(ci).Problem.node
  in
  (* pass 4: per-edge classification, sharded in net-index chunks *)
  let chunks =
    Parallel.map_chunks ~label:"check.lvs.nets" ~chunk:2048 ~n:n_nets (fun lo hi ->
        let ds = ref [] in
        let push d = ds := d :: !ds in
        for ni = lo to hi - 1 do
          let rs = src_root.(ni) and rd = dst_root.(ni) in
          (* short components report once, at their lowest net index *)
          let report_short root =
            if npins.(root) > 2 && minnet.(root) = ni then
              push
                (Diag.error ~rule:"LVS-SHORT-01" (Diag.Net ni)
                   "drawn geometry shorts %d pins together (nets %s)"
                   npins.(root)
                   (String.concat ", "
                      (List.map string_of_int comp_all.(root))))
          in
          report_short rs;
          if rd <> rs then report_short rd;
          (* open/swap classification, suppressed on shorted nets to
             avoid cascading reports *)
          if npins.(rs) <= 2 && npins.(rd) <= 2 && rs <> rd then begin
            match List.filter (fun nj -> nj <> ni) comp_dsts.(rs) with
            | nj :: _ ->
                push
                  (Diag.error ~rule:"LVS-SWAP-01" (Diag.Net ni)
                     "driver of node %d is wired to the sink of net %d \
                      (node %d) instead of node %d"
                     (node_of ni `Src) nj (node_of nj `Dst) (node_of ni `Dst))
            | [] ->
                push
                  (Diag.error ~rule:"LVS-OPEN-01" (Diag.Net ni)
                     "no drawn connection from driver node %d to sink node %d"
                     (node_of ni `Src) (node_of ni `Dst))
          end
        done;
        List.rev !ds)
  in
  let edge_diags = Array.fold_left (fun acc ds -> acc @ ds) [] chunks in
  (* floating geometry: components with wires but no pins *)
  let wire_root = Array.map (fun (a, _) -> Union_find.find uf a) wire_keys in
  let seen = Hashtbl.create 64 in
  let floats = ref [] in
  Array.iteri
    (fun wi root ->
      if npins.(root) = 0 && not (Hashtbl.mem seen root) then begin
        Hashtbl.add seen root ();
        let w = layout.Layout.wires.(wi) in
        floats :=
          Diag.warning ~rule:"LVS-FLOAT-01"
            (Diag.At (w.Layout.a.Geom.x, w.Layout.a.Geom.y))
            "drawn wires touch no pin (floating geometry)"
          :: !floats
      end)
    wire_root;
  edge_diags @ List.rev !floats
