(** LVS-lite ([LVS-*]): layout-vs-schematic connectivity diff.

    The layout is the {e drawn truth}: this pass re-extracts
    point-to-point connectivity from the routed geometry alone —
    wire segments stitched where they share an endpoint on the same
    metal layer, layers stitched where a via sits, cell pins attached
    at their exact pin coordinates — {e ignoring} the net labels the
    wires carry. The extracted (driver pin, sink pin) pairs are then
    diffed against the AQFP netlist's fan-in edges (the problem's net
    array).

    Rule catalog:
    - [LVS-OPEN-01] (error) — a schematic net whose driver pin and
      sink pin are not connected by any drawn geometry;
    - [LVS-SHORT-01] (error) — one drawn component touches more than
      two pins (reported once, at the lowest involved net index);
    - [LVS-SWAP-01] (error) — a driver pin is wired to the {e wrong}
      sink pin (the classic crossed-pair LVS finding);
    - [LVS-FLOAT-01] (warning) — drawn wires touching no pin at all.

    Extraction is a serial union-find sweep (linear in the geometry);
    the per-edge classification that follows is sharded over
    {!Parallel} in net-index chunks with a left-to-right combine, so
    the report is identical at any pool size. *)

val check : Problem.t -> Layout.t -> Diag.t list
