(* Placement audit: row/phase consistency, overlaps, spacing, grid,
   row capacity. Row-wise checks run one row per Parallel lane with
   per-row diagnostic lists combined in row order. *)

let check nl p =
  let diags = ref [] in
  let push d = diags := d :: !diags in
  (* row/phase consistency vs the netlist *)
  Array.iter
    (fun c ->
      if c.Problem.node >= 0 && c.Problem.node < Netlist.size nl then begin
        let phase = Netlist.phase nl c.Problem.node in
        let expected =
          match c.Problem.kind with
          | Netlist.Output -> phase + 1
          | _ -> phase
        in
        if c.Problem.row <> expected then
          push
            (Diag.error ~rule:"PL-ROW-01" (Diag.Node c.Problem.node)
               "cell sits in row %d but its clock phase implies row %d"
               c.Problem.row expected)
      end)
    p.Problem.cells;
  (* row_cells table consistency *)
  Array.iteri
    (fun r row ->
      Array.iter
        (fun ci ->
          let c = p.Problem.cells.(ci) in
          if c.Problem.row <> r then
            push
              (Diag.error ~rule:"PL-INDEX-01" (Diag.Node c.Problem.node)
                 "row table lists cell in row %d, cell says row %d" r
                 c.Problem.row))
        row)
    p.Problem.row_cells;
  let header = List.rev !diags in
  let die_width = Problem.row_width p in
  let s_min = p.Problem.tech.Tech.s_min in
  (* geometric checks, one row-chunk per lane *)
  let row_chunks =
    Parallel.map_chunks ~label:"check.place.rows" ~chunk:1 ~n:p.Problem.n_rows
      (fun lo hi ->
        let ds = ref [] in
        let pushd d = ds := d :: !ds in
        for r = lo to hi - 1 do
          let row = p.Problem.row_cells.(r) in
          let sorted = Array.copy row in
          Array.sort
            (fun a b -> Float.compare p.Problem.cells.(a).Problem.x p.Problem.cells.(b).Problem.x)
            sorted;
          let packed = ref 0.0 in
          Array.iter
            (fun ci ->
              let c = p.Problem.cells.(ci) in
              packed := !packed +. c.Problem.lib.Cell.width;
              if not (Tech.on_grid p.Problem.tech c.Problem.x) then
                pushd
                  (Diag.error ~rule:"PL-GRID-01" (Diag.Node c.Problem.node)
                     "cell origin x=%.3f off the %.0f um grid" c.Problem.x
                     p.Problem.tech.Tech.grid);
              if c.Problem.x < -1e-6 then
                pushd
                  (Diag.error ~rule:"PL-NEG-01" (Diag.Node c.Problem.node)
                     "cell placed at negative x=%.3f" c.Problem.x))
            sorted;
          for i = 0 to Array.length sorted - 2 do
            let a = p.Problem.cells.(sorted.(i))
            and b = p.Problem.cells.(sorted.(i + 1)) in
            let gap = b.Problem.x -. (a.Problem.x +. a.Problem.lib.Cell.width) in
            if gap < -1e-6 then
              pushd
                (Diag.error ~rule:"PL-OVERLAP-01" (Diag.Row r)
                   "cells %d and %d overlap by %.1f um" a.Problem.node
                   b.Problem.node (-.gap))
            else if gap > 1e-6 && gap < s_min -. 1e-6 then
              pushd
                (Diag.error ~rule:"PL-SPACING-01" (Diag.Row r)
                   "cells %d and %d are %.1f um apart (s_min %.1f)"
                   a.Problem.node b.Problem.node gap s_min)
          done;
          if !packed > die_width +. 1e-6 then
            pushd
              (Diag.warning ~rule:"PL-CAP-01" (Diag.Row r)
                 "row needs %.0f um of cells but the die is %.0f um wide"
                 !packed die_width)
        done;
        List.rev !ds)
  in
  header @ Array.fold_left (fun acc ds -> acc @ ds) [] row_chunks
