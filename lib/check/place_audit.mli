(** Placement audit ([PL-*]): physical-consistency checks of a
    placed {!Problem.t} against its AQFP netlist.

    Rule catalog:
    - [PL-ROW-01] (error) — a cell's row differs from its netlist
      node's clock phase (output markers sit one row below their
      driver's phase);
    - [PL-INDEX-01] (error) — the per-row cell index disagrees with
      a cell's row field;
    - [PL-OVERLAP-01] (error) — two same-row cell bodies overlap;
    - [PL-SPACING-01] (error) — same-row neighbors neither abut nor
      keep the technology's [s_min];
    - [PL-GRID-01] (error) — a cell origin off the manufacturing
      grid;
    - [PL-NEG-01] (error) — a cell placed at negative x;
    - [PL-CAP-01] (warning) — a row's packed cell width exceeds the
      die width implied by the widest row (overfull row).

    Row scans are sharded over {!Parallel} (one chunk of rows per
    lane, combined in row order), so the report is identical at any
    pool size. *)

val check : Netlist.t -> Problem.t -> Diag.t list
