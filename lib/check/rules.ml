(* The rule registry. Keep sorted by id; the CI meta-lint greps every
   rule-id-shaped string out of lib/ and fails when one is missing
   here, and [self_check] fails on duplicates / unsorted entries. *)

type entry = {
  id : string;
  severity : Diag.severity;
  pass : string;
  doc : string;
}

let e id severity pass doc = { id; severity; pass; doc }

let all =
  [
    e "AI-CONST-01" Diag.Warning "absint-const"
      "Ternary-constant dataflow proves a net constant: a logic gate is \
       forced to 0/1 while a fan-in is still unknown (its cone is wasted), \
       or a primary output is constant. Witness: the forcing chain from the \
       constant generator.";
    e "AI-LOAD-01" Diag.Warning "absint-load"
      "A splitter tree's capacity interval shows provably wasted fan-out: \
       some delivered sinks cannot affect any output. Witness: the tree \
       path down to a wasted sink.";
    e "AI-OBS-01" Diag.Warning "absint-obs"
      "Backward observability proves a gate cannot affect any primary \
       output: every path runs through a constant-valued (blocking) gate. \
       Witness: the path to the nearest blocking gate.";
    e "AI-PHASE-01" Diag.Error "absint-phase"
      "Phase-interval analysis found the earliest unbalanced reconvergence: \
       two fan-in cones of one gate arrive at different clock phases. \
       Witness: the longest arrival chain from a primary input.";
    e "AI-POLAR-01" Diag.Warning "absint-polar"
      "Inversion-parity tracking found a cancelling inverter pair along one \
       buffer chain — AQFP inversion is free, so the pair is pure area and \
       phase waste. Witness: the chain from the nearest logic root.";
    e "AQFP-FANOUT-01" Diag.Error "aqfp"
      "A non-splitter cell drives more than one consumer; AQFP fan-out is 1 \
       and larger fan-outs need a splitter tree.";
    e "AQFP-KIND-01" Diag.Error "aqfp"
      "A non-majority gate (nand/nor/xor/xnor) survived majority synthesis.";
    e "AQFP-PHASE-00" Diag.Error "aqfp"
      "A node's clock phase is unset — levelize never ran on this netlist.";
    e "AQFP-PHASE-01" Diag.Error "aqfp"
      "A gate's fan-in does not sit exactly one clock phase above it \
       (gate-level-pipelining violation after buffer insertion).";
    e "AQFP-PHASE-02" Diag.Error "aqfp"
      "A primary output retires before the design's last clock phase \
       (unbalanced output).";
    e "AQFP-SPLIT-01" Diag.Error "aqfp"
      "A splitter's arity is outside the cell library's 2..4 range.";
    e "CHECK-CRASH-01" Diag.Error "check"
      "A verification pass raised an exception; the pipeline continued and \
       reports the crash as this single diagnostic.";
    e "DB-CKSUM-01" Diag.Error "sf_db"
      "A stored artifact's MD5 checksum does not match its payload (bit rot \
       or a torn write); the entry self-heals by recomputation.";
    e "DB-DIR-01" Diag.Error "sf_db"
      "The database path exists but is not an sf_db directory.";
    e "DB-FROM-01" Diag.Error "flow"
      "--from asserts earlier stages are already cached, but a required \
       stage is missing from the database.";
    e "DB-IO-01" Diag.Error "sf_db" "An object or manifest file failed to read/write.";
    e "DB-KIND-01" Diag.Error "sf_db"
      "A stored frame carries the wrong artifact kind tag for the slot it \
       was loaded into.";
    e "DB-MAGIC-01" Diag.Error "sf_db" "A stored frame does not start with the SFDB magic.";
    e "DB-PARSE-01" Diag.Error "sf_db" "A stored frame's payload failed structural decoding.";
    e "DB-RANGE-01" Diag.Error "flow"
      "--from/--to form an empty or unusable stage range (or --from was \
       given without a database).";
    e "DB-SLOT-01" Diag.Error "sf_db" "A stage manifest is missing a required output slot.";
    e "DB-TRUNC-01" Diag.Error "sf_db" "A stored frame is shorter than its declared length.";
    e "DB-VERSION-01" Diag.Error "sf_db"
      "A stored frame's format version does not match this build (stale \
       cache after a codec bump).";
    e "DRC-AREA-01" Diag.Error "drc"
      "A single drawn metal shape is smaller than the minimum area.";
    e "DRC-CELL-OVERLAP" Diag.Error "drc" "Two placed cell bodies overlap.";
    e "DRC-CELL-SPACING" Diag.Error "drc"
      "Two cells in the same row sit closer than the minimum cell gap.";
    e "DRC-DENSITY" Diag.Error "drc"
      "A sliding window's metal density exceeds the process limit.";
    e "DRC-EOL-01" Diag.Error "drc"
      "Foreign same-layer metal intrudes into the end-of-line extension \
       region ahead of a wire's endcap.";
    e "DRC-NOTCH-01" Diag.Error "drc"
      "Same-net same-layer metal re-approaches itself closer than the notch \
       spacing without touching.";
    e "DRC-OFF-GRID" Diag.Error "drc"
      "A cell origin or wire endpoint is off the manufacturing grid.";
    e "DRC-VIA-ALIGNMENT" Diag.Error "drc"
      "A via does not join wire endpoints on both routing layers.";
    e "DRC-VIA-ENCLOSE-01" Diag.Error "drc"
      "A via cut is not enclosed by same-net metal with the required margin \
       on every routing layer (landing-pad rule).";
    e "DRC-WIDTH-01" Diag.Error "drc"
      "A drawn metal shape is narrower than the minimum width.";
    e "DRC-WIRE-OVERLAP" Diag.Error "drc"
      "Same-layer metal of two different nets overlaps (a short).";
    e "DRC-WIRE-SPACING" Diag.Error "drc"
      "Different-net same-layer metal sits closer than the minimum edge gap \
       (corner-aware Euclidean metric).";
    e "DRC-ZIGZAG-SPACING" Diag.Error "drc"
      "A via-to-via wire run is shorter than s_min (the paper's zig-zag \
       bent-wire rule).";
    e "DSAN-DIVERGE-01" Diag.Error "dsan"
      "A flow stage produced different artifact bytes at jobs=1 and jobs=k \
       (volatile wall-clock fields zeroed before comparison); the witness \
       names the first divergent stage and output slot.";
    e "DSAN-EPOCH-01" Diag.Error "dsan"
      "The router's search arena popped a state whose stamp predates the \
       current epoch: the freshness test would read dist/parent values left \
       over from a previous search.";
    e "DSAN-NEST-01" Diag.Warning "dsan"
      "A Parallel call was made from inside another call's chunk; it runs \
       inline on one lane, so the inner loop gets no speedup and its chunk \
       structure silently changes.";
    e "DSAN-OWN-01" Diag.Error "dsan"
      "A chunk wrote a tracked array outside its ownership discipline — \
       beyond its static [lo, hi) slice, or to a read-only shared input. \
       Witness: call-site label, chunk id and index.";
    e "DSAN-REDUCE-01" Diag.Error "dsan"
      "A parallel_reduce chunk partial differed from its serial replay over \
       the same elements in the same order: map/combine reads or writes \
       state that another chunk can touch.";
    e "DSAN-RW-01" Diag.Error "dsan"
      "One chunk read a tracked array index that another chunk of the same \
       batch wrote: the read's value depends on the schedule. Witness: \
       call-site label, both chunk ids and the index.";
    e "DSAN-SCHED-01" Diag.Error "dsan"
      "Output differed between the unfuzzed baseline and a seeded \
       permutation of chunk execution order; since the combine order is \
       fixed, the result depends on scheduling.";
    e "DSAN-WW-01" Diag.Error "dsan"
      "Two chunks of one batch wrote the same tracked array index: \
       last-writer-wins makes the final value schedule-dependent. Witness: \
       call-site label, both chunk ids and the index.";
    e "EQ-ARITY-01" Diag.Error "equiv"
      "The two netlists being compared have different primary input/output \
       counts; no per-output proof was attempted.";
    e "EQ-CEX-01" Diag.Error "equiv"
      "Internal error: an engine returned a counterexample that does not \
       replay through simulation.";
    e "EQ-DIFF-01" Diag.Error "equiv"
      "An output provably differs between the two netlists; the message \
       carries the replayed counterexample input vector.";
    e "EQ-DIFF-02" Diag.Error "equiv"
      "An output differs under the random-simulation fallback (no complete \
       engine finished).";
    e "EQ-FALLBACK-01" Diag.Warning "equiv"
      "The BDD node budget was exceeded and no complete engine took over; \
       equivalence was only sampled, not proven.";
    e "EQ-TIMEOUT-01" Diag.Warning "equiv"
      "The SAT conflict budget was exhausted for an output; equivalence was \
       only sampled, not proven.";
    e "LVS-FLOAT-01" Diag.Warning "lvs" "Drawn metal touches no pin of any net.";
    e "LVS-OPEN-01" Diag.Error "lvs"
      "No drawn path connects a net's driver pin to its sink pin.";
    e "LVS-SHORT-01" Diag.Error "lvs"
      "One connected component of drawn metal touches pins of more than one \
       net.";
    e "LVS-SWAP-01" Diag.Error "lvs" "A driver is wired to another net's sink.";
    e "NL-ARITY-01" Diag.Error "lint" "A gate's fan-in count does not match its kind.";
    e "NL-CONST-01" Diag.Warning "lint"
      "A primary output is provably constant (AIG constant propagation on \
       the sf_sat engine; the cheap dataflow tier reports AI-CONST-01 \
       instead).";
    e "NL-CYCLE-01" Diag.Error "lint" "The netlist has a combinational cycle.";
    e "NL-DANGLE-01" Diag.Error "lint" "A fan-in references a node id that does not exist.";
    e "NL-DEAD-01" Diag.Warning "lint"
      "Dead logic: backward observability proves the node reaches no \
       primary output. Witness: the chain forward to the dead end.";
    e "NL-DUP-01" Diag.Warning "lint"
      "A gate recomputes the same function of the same fan-ins as an \
       earlier gate (structural AIG duplicate).";
    e "NL-FANOUT-01" Diag.Error "lint"
      "A k-way splitter's real consumer count differs from k.";
    e "NL-INPUT-01" Diag.Info "lint" "A primary input is never used.";
    e "NL-NAME-01" Diag.Warning "lint" "Two nodes carry the same name.";
    e "NL-OUT-01" Diag.Warning "lint" "The netlist has no primary outputs.";
    e "PL-CAP-01" Diag.Warning "place"
      "A row's total cell demand exceeds the die width.";
    e "PL-GRID-01" Diag.Error "place" "A placed cell's x position is off the placement grid.";
    e "PL-INDEX-01" Diag.Error "place"
      "A cell's row index disagrees with the row that contains it.";
    e "PL-NEG-01" Diag.Error "place" "A placed cell has a negative x position.";
    e "PL-OVERLAP-01" Diag.Error "place" "Two placed cells in one row overlap.";
    e "PL-ROW-01" Diag.Error "place"
      "A cell's placement row differs from its clock phase (AQFP rows are \
       phases).";
    e "PL-SPACING-01" Diag.Error "place"
      "Two cells in one row sit closer than the minimum spacing.";
    e "RS-CEC-01" Diag.Warning "resyn"
      "A resynthesis rewrite's window equivalence proof failed or timed out; \
       the rewrite was refused and the original cone kept.";
    e "RT-CONN-01" Diag.Error "route" "A routed net does not connect its pins.";
    e "SL-CATCH-01" Diag.Error "mlint"
      "A catch-all exception handler (with _ ->) swallows the exception; \
       failures must surface as diagnostics or re-raise, not vanish.";
    e "SL-EXIT-01" Diag.Error "mlint"
      "A library calls exit, preempting the CLI's error handling and exit \
       codes; only bin/ may terminate the process.";
    e "SL-GLOBAL-01" Diag.Error "mlint"
      "Module-level mutable state (ref/Hashtbl.create/Buffer/...) in a \
       library that is not registered in the determinism-contract table; \
       hidden globals make stages order- and reentrancy-sensitive.";
    e "SL-HASH-01" Diag.Error "mlint"
      "Hashtbl.iter/fold/to_seq with no sort in the enclosing definition: \
       hash-bucket iteration order is unspecified, so anything derived from \
       it can differ between runs and builds.";
    e "SL-LABEL-01" Diag.Error "mlint"
      "A Parallel call site carries no ~label, so sanitizer findings and the \
       call-site inventory cannot name it (static form of sf_dsan's \
       runtime-only labeling check).";
    e "SL-MARSHAL-01" Diag.Error "mlint"
      "Marshal outside lib/db/codec.ml bypasses the versioned, checksummed \
       Codec frames the design database depends on.";
    e "SL-PARSE-01" Diag.Error "mlint"
      "A source file failed to parse (or read), so none of its contents \
       could be checked against the determinism contract.";
    e "SL-POLY-01" Diag.Warning "mlint"
      "Polymorphic compare/Stdlib.compare/Hashtbl.hash in a stage library; \
       prefer a monomorphic comparator — polymorphic compare raises on \
       closures and silently orders by representation.";
    e "SL-PRINT-01" Diag.Error "mlint"
      "A library prints to stdout; reports must be returned as strings (or \
       take a formatter) so stdout stays byte-comparable and CLI-owned.";
    e "SL-RULEID-01" Diag.Error "mlint"
      "A diagnostic-id-shaped string literal has no entry in the Rules \
       registry (subsumes the old CI grep meta-lint; superflow explain must \
       resolve every id the code can emit).";
    e "SL-TIME-01" Diag.Error "mlint"
      "Sys.time/Unix.gettimeofday/Random.self_init outside the Wallclock \
       module; wall-clock or nondeterministic seeds must never reach stage \
       outputs or cache keys.";
  ]

let find id = List.find_opt (fun r -> r.id = id) all

let explain id =
  match find id with
  | None -> Error (Printf.sprintf "unknown rule id %S" id)
  | Some r ->
      Ok
        (Printf.sprintf "%s (%s, pass %s)\n  %s" r.id
           (Diag.severity_name r.severity)
           r.pass r.doc)

let catalog_markdown () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "| rule | severity | pass | meaning |\n|---|---|---|---|\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "| `%s` | %s | `%s` | %s |\n" r.id
           (Diag.severity_name r.severity)
           r.pass r.doc))
    all;
  Buffer.contents buf

let self_check () =
  let problems = ref [] in
  let rec scan = function
    | a :: (b :: _ as rest) ->
        if a.id = b.id then
          problems := Printf.sprintf "duplicate rule id %s" a.id :: !problems
        else if a.id > b.id then
          problems :=
            Printf.sprintf "registry unsorted at %s > %s" a.id b.id
            :: !problems;
        scan rest
    | _ -> ()
  in
  scan all;
  List.iter
    (fun r ->
      if String.trim r.doc = "" then
        problems := Printf.sprintf "rule %s has no doc" r.id :: !problems)
    all;
  List.rev !problems
