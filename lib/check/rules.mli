(** The single registry of every diagnostic rule id in the flow.

    One {!entry} per stable rule id: its default severity, the pass
    (or subsystem) that owns it, and a one-line explanation. The
    registry is the source of truth for:

    - [superflow explain <RULE-ID>] — the CLI help for a diagnostic;
    - the rule-catalog section of [docs/ARCHITECTURE.md], generated
      by {!catalog_markdown} (via [superflow explain --all
      --markdown] / [make explain-all]);
    - the [sf_mlint] SL-RULEID-01 rule, which fails any rule-id
      literal in [lib/] or [bin/] that has no entry here.

    Keep it sorted and complete: a rule id used anywhere in [lib/]
    without a registry entry is a build-gate failure, not a style
    nit. *)

type entry = {
  id : string;  (** stable rule id, e.g. ["AI-PHASE-01"] *)
  severity : Diag.severity;  (** default severity when it fires *)
  pass : string;  (** owning pass / subsystem, e.g. ["absint-phase"] *)
  doc : string;  (** one-line explanation *)
}

val all : entry list
(** Every registered rule, sorted by id. *)

val find : string -> entry option

val catalog_markdown : unit -> string
(** The generated rule catalog: one markdown table grouped by owning
    pass, exactly what [docs/ARCHITECTURE.md] embeds. *)

val explain : string -> (string, string) result
(** Human-readable explanation of one rule id ([Error] text names the
    unknown id). *)

val self_check : unit -> string list
(** Registry meta-lint: duplicate ids, unsorted entries, empty docs.
    Empty list = healthy. *)
