type times = {
  synth_s : float;
  place_s : float;
  route_s : float;
  layout_s : float;
}

type result = {
  aqfp_netlist : Netlist.t;
  problem : Problem.t;
  routing : Router.result;
  layout : Layout.t;
  violations : Drc.violation list;
  synth_report : Synth_flow.report;
  placement : Placer.result;
  sta : Sta.report;
  energy : Energy.report;
  buffer_lines : int;
  drc_fix_rounds : int;
  times : times;
}

let version = "0.1.0"

let timed f =
  (* wall clock, not [Sys.time]: CPU time sums across domains and
     overstates every parallel stage *)
  let t0 = Wallclock.now_s () in
  let v = f () in
  (v, Wallclock.now_s () -. t0)

let run ?(tech = Tech.default) ?(algorithm = Placer.Superflow)
    ?(router = Router.Sequential) ?(seed = 1) ?jobs ?gds_path ?def_path aoi =
  (match jobs with Some j -> Parallel.set_jobs j | None -> ());
  (* 1. logic synthesis: AOI -> MAJ -> balanced AQFP netlist *)
  let (aqfp0, synth_report), synth_s = timed (fun () -> Synth_flow.run aoi) in
  (* 2. placement *)
  let (placement, p0), place_s =
    timed (fun () ->
        let p = Problem.of_netlist tech aqfp0 in
        let r = Placer.place ~seed algorithm p in
        (r, p))
  in
  (* 3. max-wirelength buffer-line insertion (re-threads long hops
     through whole rows of buffers, keeping the pipeline balanced) *)
  let aqfp, p, buffer_lines = Bufferline.insert aqfp0 p0 in
  (* newly inserted buffer rows start at crude midpoints; one light
     detailed pass settles them *)
  if buffer_lines > 0 then
    ignore
      (Detailed.run
         ~options:{ Detailed.default_options with max_passes = 3; window = 2 }
         p);
  (* 4. routing + DRC fix loop: violating regions get extra space.
     Channels are pre-sized from the placement's channel density so
     the router's reactive expansion loop has less to do. *)
  ignore (Congestion.preexpand p);
  let route_once () = Router.route_all ~algorithm:router p in
  let routing0, route_s = timed route_once in
  let build_layout routing = Layout.build p routing in
  let rec fix_loop routing rounds =
    let layout = build_layout routing in
    let violations = Drc.check layout in
    if violations = [] || rounds >= 3 then (routing, layout, violations, rounds)
    else begin
      let gaps = Drc.gap_hints p violations in
      if gaps = [] then (routing, layout, violations, rounds)
      else begin
        List.iter
          (fun g ->
            if g >= 0 && g < Array.length p.Problem.row_gaps then
              p.Problem.row_gaps.(g) <- p.Problem.row_gaps.(g) +. tech.Tech.s_min)
          gaps;
        let routing' = Router.route_all ~algorithm:router p in
        fix_loop routing' (rounds + 1)
      end
    end
  in
  let (routing, layout, violations, drc_fix_rounds), layout_s =
    timed (fun () -> fix_loop routing0 0)
  in
  (match gds_path with Some path -> Layout.write_gds path layout | None -> ());
  (match def_path with
  | Some path -> Def.write_file path (Def.of_design ~design:"superflow" p routing)
  | None -> ());
  (* sign-off timing uses the actual routed lengths *)
  let sta = Sta.analyze_routed p routing in
  let energy = Energy.of_netlist tech aqfp in
  {
    aqfp_netlist = aqfp;
    problem = p;
    routing;
    layout;
    violations;
    synth_report;
    placement;
    sta;
    energy;
    buffer_lines;
    drc_fix_rounds;
    times = { synth_s; place_s; route_s; layout_s };
  }

let run_verilog ?tech ?algorithm ?router ?jobs ?gds_path ?def_path source =
  match Verilog.parse source with
  | Error e -> Error e
  | Ok aoi -> Ok (run ?tech ?algorithm ?router ?jobs ?gds_path ?def_path aoi)

let run_bench_file ?tech ?algorithm ?router ?jobs ?gds_path ?def_path path =
  match Bench_parser.parse_file path with
  | Error e -> Error e
  | Ok aoi -> Ok (run ?tech ?algorithm ?router ?jobs ?gds_path ?def_path aoi)

let pp_summary ppf r =
  let s = Layout.stats r.layout in
  Format.fprintf ppf
    "@[<v>synthesis: %a@,placement: %a@,buffer lines: %d@,routing: wl=%.0fum vias=%d expansions=%d@,layout: %a@,timing: %a@,energy: %a@,drc: %d violation(s), %d fix round(s)@]"
    Synth_flow.pp_report r.synth_report Placer.pp_result r.placement
    r.buffer_lines r.routing.Router.wirelength r.routing.Router.total_vias
    r.routing.Router.expansions Layout.pp_stats s Sta.pp_report r.sta Energy.pp
    r.energy
    (List.length r.violations) r.drc_fix_rounds
