type times = {
  synth_s : float;
  place_s : float;
  route_s : float;
  layout_s : float;
  check_s : float;
}

type result = {
  aqfp_netlist : Netlist.t;
  problem : Problem.t;
  routing : Router.result;
  layout : Layout.t;
  violations : Drc.violation list;
  synth_report : Synth_flow.report;
  placement : Placer.result;
  sta : Sta.report;
  energy : Energy.report;
  buffer_lines : int;
  drc_fix_rounds : int;
  check_report : Check.report option;
  times : times;
}

(* DRC violations folded into the diagnostics vocabulary: rule ids
   become DRC-<RULE>, located at the violation coordinate *)
let diags_of_drc violations =
  List.map
    (fun v ->
      Diag.error
        ~rule:("DRC-" ^ String.uppercase_ascii v.Drc.rule)
        (Diag.At (v.Drc.at.Geom.x, v.Drc.at.Geom.y))
        "%s" v.Drc.detail)
    violations

let check_passes r =
  [
    Check.pass "lint" (fun () -> Lint.check r.aqfp_netlist);
    Check.pass "aqfp" (fun () -> Aqfp_check.check r.aqfp_netlist);
    Check.of_diags "equiv" r.synth_report.Synth_flow.guard_diags;
    Check.pass "place" (fun () -> Place_audit.check r.aqfp_netlist r.problem);
    Check.pass "route" (fun () ->
        match Router.check_routes r.problem r.routing with
        | Ok () -> []
        | Error e ->
            [ Diag.error ~rule:"RT-CONN-01" Diag.Global "%s" e ]);
    Check.of_diags "drc" (diags_of_drc r.violations);
    Check.pass "lvs" (fun () -> Lvs.check r.problem r.layout);
  ]

let version = "0.1.0"

let timed f =
  (* wall clock, not [Sys.time]: CPU time sums across domains and
     overstates every parallel stage *)
  let t0 = Wallclock.now_s () in
  let v = f () in
  (v, Wallclock.now_s () -. t0)

let run ?(tech = Tech.default) ?(algorithm = Placer.Superflow)
    ?(router = Router.Sequential) ?(seed = 1) ?jobs ?(check = false) ?gds_path
    ?def_path aoi =
  (match jobs with Some j -> Parallel.set_jobs j | None -> ());
  (* 1. logic synthesis: AOI -> MAJ -> balanced AQFP netlist *)
  let (aqfp0, synth_report), synth_s =
    timed (fun () -> Synth_flow.run ~check aoi)
  in
  (* 2. placement *)
  let (placement, p0), place_s =
    timed (fun () ->
        let p = Problem.of_netlist tech aqfp0 in
        let r = Placer.place ~seed algorithm p in
        (r, p))
  in
  (* 3. max-wirelength buffer-line insertion (re-threads long hops
     through whole rows of buffers, keeping the pipeline balanced) *)
  let aqfp, p, buffer_lines = Bufferline.insert aqfp0 p0 in
  (* newly inserted buffer rows start at crude midpoints; one light
     detailed pass settles them *)
  if buffer_lines > 0 then
    ignore
      (Detailed.run
         ~options:{ Detailed.default_options with max_passes = 3; window = 2 }
         p);
  (* 4. routing + DRC fix loop: violating regions get extra space.
     Channels are pre-sized from the placement's channel density so
     the router's reactive expansion loop has less to do. *)
  ignore (Congestion.preexpand p);
  let route_once () = Router.route_all ~algorithm:router p in
  let routing0, route_s = timed route_once in
  let build_layout routing = Layout.build p routing in
  let rec fix_loop routing rounds =
    let layout = build_layout routing in
    let violations = Drc.check layout in
    if violations = [] || rounds >= 3 then (routing, layout, violations, rounds)
    else begin
      let gaps = Drc.gap_hints p violations in
      if gaps = [] then (routing, layout, violations, rounds)
      else begin
        List.iter
          (fun g ->
            if g >= 0 && g < Array.length p.Problem.row_gaps then
              p.Problem.row_gaps.(g) <- p.Problem.row_gaps.(g) +. tech.Tech.s_min)
          gaps;
        let routing' = Router.route_all ~algorithm:router p in
        fix_loop routing' (rounds + 1)
      end
    end
  in
  let (routing, layout, violations, drc_fix_rounds), layout_s =
    timed (fun () -> fix_loop routing0 0)
  in
  (match gds_path with Some path -> Layout.write_gds path layout | None -> ());
  (match def_path with
  | Some path -> Def.write_file path (Def.of_design ~design:"superflow" p routing)
  | None -> ());
  (* sign-off timing uses the actual routed lengths *)
  let sta = Sta.analyze_routed p routing in
  let energy = Energy.of_netlist tech aqfp in
  let result0 =
    {
      aqfp_netlist = aqfp;
      problem = p;
      routing;
      layout;
      violations;
      synth_report;
      placement;
      sta;
      energy;
      buffer_lines;
      drc_fix_rounds;
      check_report = None;
      times = { synth_s; place_s; route_s; layout_s; check_s = 0.0 };
    }
  in
  if not check then result0
  else
    (* 5. the static-verification gate over every stage handoff *)
    let report, check_s = timed (fun () -> Check.run (check_passes result0)) in
    {
      result0 with
      check_report = Some report;
      times = { result0.times with check_s };
    }

let run_verilog ?tech ?algorithm ?router ?jobs ?check ?gds_path ?def_path source
    =
  match Verilog.parse source with
  | Error e -> Error e
  | Ok aoi ->
      Ok (run ?tech ?algorithm ?router ?jobs ?check ?gds_path ?def_path aoi)

let run_bench_file ?tech ?algorithm ?router ?jobs ?check ?gds_path ?def_path
    path =
  match Bench_parser.parse_file path with
  | Error e -> Error e
  | Ok aoi ->
      Ok (run ?tech ?algorithm ?router ?jobs ?check ?gds_path ?def_path aoi)

let pp_summary ppf r =
  let s = Layout.stats r.layout in
  Format.fprintf ppf
    "@[<v>synthesis: %a@,placement: %a@,buffer lines: %d@,routing: wl=%.0fum vias=%d expansions=%d@,layout: %a@,timing: %a@,energy: %a@,drc: %d violation(s), %d fix round(s)@]"
    Synth_flow.pp_report r.synth_report Placer.pp_result r.placement
    r.buffer_lines r.routing.Router.wirelength r.routing.Router.total_vias
    r.routing.Router.expansions Layout.pp_stats s Sta.pp_report r.sta Energy.pp
    r.energy
    (List.length r.violations) r.drc_fix_rounds;
  match r.check_report with
  | Some rep -> Format.fprintf ppf "@\n%a" Check.pp_summary rep
  | None -> ()
