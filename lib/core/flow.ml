type times = {
  synth_s : float;
  resyn_s : float;
  place_s : float;
  route_s : float;
  layout_s : float;
  check_s : float;
}

type result = {
  aqfp_netlist : Netlist.t;
  problem : Problem.t;
  routing : Router.result;
  layout : Layout.t;
  violations : Diag.t list;
  synth_report : Synth_flow.report;
  resyn_report : Resyn.report;
  placement : Placer.result;
  sta : Sta.report;
  energy : Energy.report;
  buffer_lines : int;
  drc_fix_rounds : int;
  check_report : Check.report option;
  times : times;
}

let check_passes ?(tier = Check.Fast) ?absint_cache r =
  [
    Check.pass "lint" (fun () -> Lint.check ~tier r.aqfp_netlist);
  ]
  @ Absint_check.passes ?cache:absint_cache r.aqfp_netlist
  @ [
      Check.pass "aqfp" (fun () -> Aqfp_check.check r.aqfp_netlist);
      Check.of_diags "equiv"
        (r.synth_report.Synth_flow.guard_diags @ r.resyn_report.Resyn.diags);
      Check.pass "place" (fun () -> Place_audit.check r.aqfp_netlist r.problem);
      Check.pass "route" (fun () ->
          match Router.check_routes r.problem r.routing with
          | Ok () -> []
          | Error e ->
              [ Diag.error ~rule:"RT-CONN-01" Diag.Global "%s" e ]);
      Check.of_diags "drc" r.violations;
      Check.pass "lvs" (fun () -> Lvs.check r.problem r.layout);
    ]

let version = "0.1.0"

let timed f =
  (* wall clock, not [Sys.time]: CPU time sums across domains and
     overstates every parallel stage *)
  let t0 = Wallclock.now_s () in
  let v = f () in
  (v, Wallclock.now_s () -. t0)

(* ---- the explicit stage graph ---- *)

type stage = Synth | Resyn | Place | Route | Layout | Check

let stages = [ Synth; Resyn; Place; Route; Layout; Check ]

let stage_name = function
  | Synth -> "synth"
  | Resyn -> "resyn"
  | Place -> "place"
  | Route -> "route"
  | Layout -> "layout"
  | Check -> "check"

let stage_of_string = function
  | "synth" -> Ok Synth
  | "resyn" -> Ok Resyn
  | "place" -> Ok Place
  | "route" -> Ok Route
  | "layout" -> Ok Layout
  | "check" -> Ok Check
  | s ->
      Error
        (Printf.sprintf
           "unknown stage %S (synth|resyn|place|route|layout|check)" s)

let stage_rank = function
  | Synth -> 0
  | Resyn -> 1
  | Place -> 2
  | Route -> 3
  | Layout -> 4
  | Check -> 5

type outcome = Cached of float | Computed of float

type staged = {
  outcomes : (stage * outcome) list;
  db_warnings : Diag.t list;
  synth : (Netlist.t * Synth_flow.report) option;
  resyned : (Netlist.t * Resyn.report) option;
  placed : (Netlist.t * Problem.t * Placer.result * int) option;
  routed : (Router.result * Problem.t * Diag.t list * int) option;
  built : (Layout.t * Sta.report * Energy.report) option;
  checked : Check.report option;
  result : result option;
}

(* engine format tag: part of every cache key, so changing the stage
   graph (not just one codec) invalidates the whole cache *)
let graph_version = "sf-flow-graph-5"

exception Stage_failed of Diag.t

let slot_err name = Codec.err ~rule:"DB-SLOT-01" "manifest lacks slot %S" name

let load_obj db codec slots name =
  match List.assoc_opt name slots with
  | None -> Error (slot_err name)
  | Some h -> (
      match Db.get_object db h with
      | Error _ as e -> e
      | Ok bytes -> codec.Artifact.decode bytes)

let scalar scalars name =
  match List.assoc_opt name scalars with
  | Some v -> Ok v
  | None -> Error (slot_err name)

let put db codec v = Db.put_object db (codec.Artifact.encode v)

(* DRC tile verdicts memoize through the proof store under their
   content-hash keys ("drct1:"/"drcd1:"), so an ECO rerun re-checks
   only the tiles whose geometry changed; decode failures (stale
   codec) degrade to a recompute-and-overwrite *)
let drc_cache_of_db dbh =
  {
    Drc.find =
      (fun k ->
        match Db.find_proof dbh ~key:k with
        | None -> None
        | Some s -> (
            match Artifact.diags.Artifact.decode s with
            | Ok ds -> Some ds
            | Error _ -> None));
    store =
      (fun k ds -> Db.put_proof dbh ~key:k (Artifact.diags.Artifact.encode ds));
  }

let run_staged ?(tech = Tech.default) ?(algorithm = Placer.Superflow)
    ?(router = Router.Sequential) ?(seed = 1) ?jobs ?db ?(from_stage = Synth)
    ?(to_stage = Layout) ?(equiv_engine = `Auto) ?(check_tier = Check.Fast)
    ?(resyn_effort = Resyn.Off) ?gds_path ?def_path aoi =
  (match jobs with Some j -> Parallel.set_jobs j | None -> ());
  (* running "to check" switches the synthesis equivalence guards on,
     exactly like [run ~check:true] *)
  let guard = stage_rank to_stage >= stage_rank Check in
  (* proof verdicts are memoized per cone pair in the database: a warm
     [--check] rerun whose synth stage somehow misses (say, a changed
     engine) still re-proves nothing that is already on disk *)
  let proof_cache =
    match db with
    | Some dbh when guard ->
        Some
          {
            Equiv.find = (fun k -> Db.find_proof dbh ~key:k);
            store = (fun k v -> Db.put_proof dbh ~key:k v);
          }
    | _ -> None
  in
  (* the absint dataflow findings memoize through the same proof
     store, keyed by the netlist's structural hash; decode failures
     (stale codec) degrade to a recompute-and-overwrite *)
  let absint_cache =
    match db with
    | Some dbh when guard ->
        Some
          {
            Absint_check.find =
              (fun k ->
                match Db.find_proof dbh ~key:k with
                | None -> None
                | Some s -> (
                    match Artifact.diags.Artifact.decode s with
                    | Ok ds -> Some ds
                    | Error _ -> None));
            store =
              (fun k ds ->
                Db.put_proof dbh ~key:k (Artifact.diags.Artifact.encode ds));
          }
    | _ -> None
  in
  if stage_rank from_stage > stage_rank to_stage then
    Error
      (Codec.err ~rule:"DB-RANGE-01" "--from %s is after --to %s"
         (stage_name from_stage) (stage_name to_stage))
  else if db = None && from_stage <> Synth then
    Error
      (Codec.err ~rule:"DB-RANGE-01"
         "--from %s needs a design database to load the earlier stages from"
         (stage_name from_stage))
  else begin
    let outcomes = ref [] in
    let note stage o = outcomes := (stage, o) :: !outcomes in
    let included stage = stage_rank stage <= stage_rank to_stage in
    (* One stage: cache lookup (when a database is attached), else
       compute and persist. [parts] builds the cache key — input
       artifact hashes plus every parameter that affects the stage;
       the worker-pool size is deliberately absent (results are
       bit-identical at any [--jobs]). Corrupt cache entries degrade
       to a miss with a warning and are overwritten. *)
    let exec ~stage ~parts ~load ~store ~compute =
      let name = stage_name stage in
      let must_hit = stage_rank stage < stage_rank from_stage in
      match db with
      | None ->
          let v, s = timed compute in
          note stage (Computed s);
          (v, [])
      | Some dbh -> (
          let key = Db.stage_key (graph_version :: name :: parts ()) in
          let cached =
            match Db.get_stage dbh ~stage:name ~key with
            | None -> None
            | Some (slots, scalars) -> (
                match timed (fun () -> load dbh slots scalars) with
                | Ok v, s -> Some (v, s, slots)
                | Error d, _ ->
                    Db.warn dbh
                      {
                        d with
                        Diag.severity = Diag.Warning;
                        message =
                          Printf.sprintf
                            "stage %s: unusable cache entry, recomputing (%s)"
                            name d.Diag.message;
                      };
                    None)
          in
          match cached with
          | Some (v, s, slots) ->
              Db.record dbh name Db.Hit s;
              note stage (Cached s);
              (v, slots)
          | None ->
              if must_hit then
                raise
                  (Stage_failed
                     (Codec.err ~rule:"DB-FROM-01"
                        "stage %s is not in the database for these inputs; \
                         rerun without --from"
                        name));
              let v, s = timed compute in
              let slots, scalars = store dbh v in
              Db.put_stage dbh ~stage:name ~key ~slots ~scalars;
              Db.record dbh name Db.Miss s;
              note stage (Computed s);
              (v, slots))
    in
    let shash slots name =
      match List.assoc_opt name slots with Some h -> h | None -> "?"
    in
    let h_aoi = lazy (Db.hash (aoi |> Artifact.netlist.Artifact.encode)) in
    let h_tech = lazy (Db.hash (tech |> Artifact.tech.Artifact.encode)) in
    try
      (* 1. logic synthesis: AOI -> MAJ -> balanced AQFP netlist *)
      let (aqfp0, synth_report), s_synth =
        exec ~stage:Synth
          ~parts:(fun () ->
            [
              Lazy.force h_aoi;
              (if guard then "guards-" ^ Equiv.engine_name equiv_engine
               else "noguards");
            ])
          ~load:(fun db slots _ ->
            match load_obj db Artifact.netlist slots "aqfp0" with
            | Error _ as e -> e
            | Ok nl -> (
                match load_obj db Artifact.synth_report slots "report" with
                | Error e -> Error e
                | Ok rep -> Ok (nl, rep)))
          ~store:(fun db (nl, rep) ->
            ( [
                ("aqfp0", put db Artifact.netlist nl);
                ("report", put db Artifact.synth_report rep);
              ],
              [] ))
          ~compute:(fun () ->
            Synth_flow.run ~check:guard ~engine:equiv_engine ?cache:proof_cache
              aoi)
      in
      (* 2. cut-based majority resynthesis over the mapped netlist —
         identity at the default [Off] effort (the stage still exists
         and caches, so the graph shape is effort-independent).
         Window-CEC verdicts memoize through the proof store; with
         guards on, the stage's own whole-netlist equivalence check
         lands in its report diagnostics (and hence the [equiv] check
         pass). *)
      let resyned =
        if not (included Resyn) then None
        else
          Some
            (exec ~stage:Resyn
               ~parts:(fun () ->
                 [
                   shash s_synth "aqfp0";
                   "effort-" ^ Resyn.effort_name resyn_effort;
                   (if guard then "guards-" ^ Equiv.engine_name equiv_engine
                    else "noguards");
                 ])
               ~load:(fun db slots _ ->
                 match load_obj db Artifact.netlist slots "aqfp1" with
                 | Error _ as e -> e
                 | Ok nl -> (
                     match
                       load_obj db Artifact.resyn_report slots "report"
                     with
                     | Error e -> Error e
                     | Ok rep -> Ok (nl, rep)))
               ~store:(fun db (nl, rep) ->
                 ( [
                     ("aqfp1", put db Artifact.netlist nl);
                     ("report", put db Artifact.resyn_report rep);
                   ],
                   [] ))
               ~compute:(fun () ->
                 let resyn_cache =
                   match db with
                   | Some dbh ->
                       Some
                         {
                           Resyn.find = (fun k -> Db.find_proof dbh ~key:k);
                           store = (fun k v -> Db.put_proof dbh ~key:k v);
                         }
                   | None -> None
                 in
                 let nl, rep =
                   Resyn.run ~effort:resyn_effort ?cache:resyn_cache aqfp0
                 in
                 let rep =
                   if guard && resyn_effort <> Resyn.Off then
                     let ds =
                       Equiv.check_pair ~engine:equiv_engine ?cache:proof_cache
                         ~stage:"resyn" aqfp0 nl
                     in
                     {
                       rep with
                       Resyn.diags =
                         List.sort Diag.compare (rep.Resyn.diags @ ds);
                     }
                   else rep
                 in
                 (nl, rep)))
      in
      (* 3. placement + max-wirelength buffer-line insertion (re-threads
         long hops through whole rows of buffers, keeping the pipeline
         balanced) + channel pre-sizing for the router *)
      let placed =
        match resyned with
        | None -> None
        | Some ((aqfp1, _), s_resyn) ->
            if not (included Place) then None
            else
          Some
            (exec ~stage:Place
               ~parts:(fun () ->
                 [
                   shash s_resyn "aqfp1";
                   Lazy.force h_tech;
                   Placer.algorithm_name algorithm;
                   string_of_int seed;
                 ])
               ~load:(fun db slots scalars ->
                 match load_obj db Artifact.netlist slots "aqfp" with
                 | Error _ as e -> e
                 | Ok aqfp -> (
                     match load_obj db Artifact.problem slots "problem" with
                     | Error _ as e -> e
                     | Ok p -> (
                         match
                           load_obj db Artifact.placement slots "placement"
                         with
                         | Error _ as e -> e
                         | Ok placement -> (
                             match scalar scalars "buffer_lines" with
                             | Error e -> Error e
                             | Ok lines -> Ok (aqfp, p, placement, lines)))))
               ~store:(fun db (aqfp, p, placement, lines) ->
                 ( [
                     ("aqfp", put db Artifact.netlist aqfp);
                     ("problem", put db Artifact.problem p);
                     ("placement", put db Artifact.placement placement);
                   ],
                   [ ("buffer_lines", lines) ] ))
               ~compute:(fun () ->
                 let p0 = Problem.of_netlist tech aqfp1 in
                 let placement = Placer.place ~seed algorithm p0 in
                 let aqfp, p, buffer_lines = Bufferline.insert aqfp1 p0 in
                 (* newly inserted buffer rows start at crude midpoints;
                    one light detailed pass settles them *)
                 if buffer_lines > 0 then
                   ignore
                     (Detailed.run
                        ~options:
                          {
                            Detailed.default_options with
                            max_passes = 3;
                            window = 2;
                          }
                        p);
                 (* pre-size channels from the placement's channel
                    density so the router's reactive expansion loop has
                    less to do *)
                 ignore (Congestion.preexpand p);
                 (aqfp, p, placement, buffer_lines)))
      in
      (* 4. routing + DRC fix loop: violating regions get extra space
         and are re-routed. The final layout of the loop is kept as an
         in-memory memo so a cold run does not rebuild it in stage 4;
         it is not persisted (stage 4 owns the layout artifact). *)
      let memo = ref None in
      let routed =
        match placed with
        | None -> None
        | Some ((_, p, _, _), s_place) ->
            if not (included Route) then None
            else
              Some
                (exec ~stage:Route
                   ~parts:(fun () ->
                     [
                       shash s_place "problem";
                       (match router with
                       | Router.Sequential -> "sequential"
                       | Router.Negotiated -> "negotiated");
                     ])
                   ~load:(fun db slots scalars ->
                     match load_obj db Artifact.routing slots "routing" with
                     | Error _ as e -> e
                     | Ok routing -> (
                         match load_obj db Artifact.problem slots "problem" with
                         | Error _ as e -> e
                         | Ok p' -> (
                             match load_obj db Artifact.drc slots "drc" with
                             | Error _ as e -> e
                             | Ok violations -> (
                                 match scalar scalars "fix_rounds" with
                                 | Error e -> Error e
                                 | Ok rounds ->
                                     Ok (routing, p', violations, rounds)))))
                   ~store:(fun db (routing, p', violations, rounds) ->
                     ( [
                         ("routing", put db Artifact.routing routing);
                         ("problem", put db Artifact.problem p');
                         ("drc", put db Artifact.drc violations);
                       ],
                       [ ("fix_rounds", rounds) ] ))
                   ~compute:(fun () ->
                     let drc_cache = Option.map drc_cache_of_db db in
                     let routing0 = Router.route_all ~algorithm:router p in
                     let rec fix_loop routing rounds =
                       let layout = Layout.build p routing in
                       let violations =
                         (Drc.check ?cache:drc_cache layout).Drc.diags
                       in
                       if violations = [] || rounds >= 3 then begin
                         memo := Some layout;
                         (routing, p, violations, rounds)
                       end
                       else begin
                         let gaps = Drc.gap_hints p violations in
                         if gaps = [] then begin
                           memo := Some layout;
                           (routing, p, violations, rounds)
                         end
                         else begin
                           List.iter
                             (fun g ->
                               if
                                 g >= 0
                                 && g < Array.length p.Problem.row_gaps
                               then
                                 p.Problem.row_gaps.(g) <-
                                   p.Problem.row_gaps.(g) +. tech.Tech.s_min)
                             gaps;
                           let routing' =
                             Router.route_all ~algorithm:router p
                           in
                           fix_loop routing' (rounds + 1)
                         end
                       end
                     in
                     fix_loop routing0 0))
      in
      (* DEF captures placement + routing; it can be written as soon as
         the route stage has run *)
      (match (def_path, routed) with
      | Some path, Some ((routing, p', _, _), _) ->
          Def.write_file path (Def.of_design ~design:"superflow" p' routing)
      | _ -> ());
      (* 5. layout assembly + sign-off timing (actual routed lengths)
         + adiabatic energy *)
      let built =
        match (placed, routed) with
        | Some ((aqfp, _, _, _), s_place), Some ((routing, p', _, _), s_route)
          ->
            if not (included Layout) then None
            else
              Some
                (exec ~stage:Layout
                   ~parts:(fun () ->
                     [
                       shash s_route "problem";
                       shash s_route "routing";
                       shash s_place "aqfp";
                     ])
                   ~load:(fun db slots _ ->
                     match load_obj db Artifact.layout slots "layout" with
                     | Error _ as e -> e
                     | Ok layout -> (
                         match load_obj db Artifact.sta slots "sta" with
                         | Error _ as e -> e
                         | Ok sta -> (
                             match load_obj db Artifact.energy slots "energy" with
                             | Error _ as e -> e
                             | Ok energy -> Ok (layout, sta, energy))))
                   ~store:(fun db (layout, sta, energy) ->
                     ( [
                         ("layout", put db Artifact.layout layout);
                         ("sta", put db Artifact.sta sta);
                         ("energy", put db Artifact.energy energy);
                       ],
                       [] ))
                   ~compute:(fun () ->
                     let layout =
                       match !memo with
                       | Some l -> l
                       | None -> Layout.build p' routing
                     in
                     let sta = Sta.analyze_routed p' routing in
                     let energy = Energy.of_netlist tech aqfp in
                     (layout, sta, energy)))
        | _ -> None
      in
      (match (gds_path, built) with
      | Some path, Some ((layout, _, _), _) -> Layout.write_gds path layout
      | _ -> ());
      let seconds stage =
        match List.assoc_opt stage !outcomes with
        | Some (Cached s) | Some (Computed s) -> s
        | None -> 0.0
      in
      (* assemble the classic flow result as soon as every physical
         stage is present *)
      let result0 =
        match (resyned, placed, routed, built) with
        | ( Some ((_, resyn_report), _),
            Some ((aqfp, _, placement, buffer_lines), _),
            Some ((routing, p', violations, rounds), _),
            Some ((layout, sta, energy), _) ) ->
            Some
              {
                aqfp_netlist = aqfp;
                problem = p';
                routing;
                layout;
                violations;
                synth_report;
                resyn_report;
                placement;
                sta;
                energy;
                buffer_lines;
                drc_fix_rounds = rounds;
                check_report = None;
                times =
                  {
                    synth_s = seconds Synth;
                    resyn_s = seconds Resyn;
                    place_s = seconds Place;
                    route_s = seconds Route;
                    layout_s = seconds Layout;
                    check_s = 0.0;
                  };
              }
        | _ -> None
      in
      (* 5. the static-verification gate over every stage handoff *)
      let checked =
        match result0 with
        | Some r0 when included Check ->
            let report, _ =
              exec ~stage:Check
                ~parts:(fun () ->
                  match (resyned, placed, routed, built) with
                  | ( Some (_, s_resyn),
                      Some (_, s_place),
                      Some (_, s_route),
                      Some (_, s_layout) ) ->
                      [
                        shash s_place "aqfp";
                        shash s_synth "report";
                        shash s_resyn "report";
                        shash s_route "problem";
                        shash s_route "routing";
                        shash s_route "drc";
                        shash s_layout "layout";
                        "tier-" ^ Check.tier_name check_tier;
                      ]
                  | _ -> assert false)
                ~load:(fun db slots _ ->
                  load_obj db Artifact.check_report slots "report")
                ~store:(fun db rep ->
                  ([ ("report", put db Artifact.check_report rep) ], []))
                ~compute:(fun () ->
                  Check.run
                    ~header:
                      [
                        ("tier", Check.tier_name check_tier);
                        ("engine", Equiv.engine_name equiv_engine);
                      ]
                    (check_passes ~tier:check_tier ?absint_cache r0))
            in
            Some report
        | _ -> None
      in
      let result =
        match result0 with
        | None -> None
        | Some r0 ->
            Some
              {
                r0 with
                check_report = checked;
                times = { r0.times with check_s = seconds Check };
              }
      in
      Ok
        {
          outcomes = List.rev !outcomes;
          db_warnings =
            (match db with Some dbh -> Db.warnings dbh | None -> []);
          synth = Some (aqfp0, synth_report);
          resyned = Option.map fst resyned;
          placed = Option.map fst placed;
          routed = Option.map fst routed;
          built = Option.map fst built;
          checked;
          result;
        }
    with Stage_failed d -> Error d
  end

let run ?tech ?algorithm ?router ?seed ?jobs ?(check = false) ?equiv_engine
    ?check_tier ?resyn_effort ?db ?gds_path ?def_path aoi =
  match
    run_staged ?tech ?algorithm ?router ?seed ?jobs ?db
      ~to_stage:(if check then Check else Layout)
      ?equiv_engine ?check_tier ?resyn_effort ?gds_path ?def_path aoi
  with
  | Ok { result = Some r; _ } -> r
  | Ok _ -> assert false (* to_stage >= Layout always yields a result *)
  | Error d -> failwith (Diag.to_string d)

let run_verilog ?tech ?algorithm ?router ?seed ?jobs ?check ?equiv_engine
    ?check_tier ?resyn_effort ?db ?gds_path ?def_path source =
  match Verilog.parse source with
  | Error e -> Error e
  | Ok aoi ->
      Ok (run ?tech ?algorithm ?router ?seed ?jobs ?check ?equiv_engine
            ?check_tier ?resyn_effort ?db ?gds_path ?def_path aoi)

let run_bench_file ?tech ?algorithm ?router ?seed ?jobs ?check ?equiv_engine
    ?check_tier ?resyn_effort ?db ?gds_path ?def_path path =
  match Bench_parser.parse_file path with
  | Error e -> Error e
  | Ok aoi ->
      Ok (run ?tech ?algorithm ?router ?seed ?jobs ?check ?equiv_engine
            ?check_tier ?resyn_effort ?db ?gds_path ?def_path aoi)

let pp_summary ppf r =
  let s = Layout.stats r.layout in
  Format.fprintf ppf "@[<v>synthesis: %a" Synth_flow.pp_report r.synth_report;
  (match r.resyn_report.Resyn.effort with
  | Resyn.Off -> ()
  | e ->
      let rr = r.resyn_report in
      Format.fprintf ppf
        "@,resyn (%s): jj %d -> %d, depth %d -> %d, %d/%d rewrites in %d \
         round(s)"
        (Resyn.effort_name e) rr.Resyn.jj_before rr.Resyn.jj_after
        rr.Resyn.depth_before rr.Resyn.depth_after
        (Resyn.rewrites_accepted rr) (Resyn.rewrites_tried rr) rr.Resyn.rounds);
  Format.fprintf ppf
    "@,placement: %a@,buffer lines: %d@,routing: wl=%.0fum vias=%d expansions=%d@,layout: %a@,timing: %a@,energy: %a@,drc: %d violation(s), %d fix round(s)@]"
    Placer.pp_result r.placement
    r.buffer_lines r.routing.Router.wirelength r.routing.Router.total_vias
    r.routing.Router.expansions Layout.pp_stats s Sta.pp_report r.sta Energy.pp
    r.energy
    (List.length r.violations) r.drc_fix_rounds;
  match r.check_report with
  | Some rep -> Format.fprintf ppf "@\n%a" Check.pp_summary rep
  | None -> ()
