(** SuperFlow: the end-to-end RTL-to-GDS driver (paper Fig. 3).

    Pipeline: AOI netlist (from the Verilog frontend, a [.bench]
    file, or a generator) → majority-based logic synthesis with
    buffer/splitter insertion → row-wise timing-aware placement →
    max-wirelength buffer-line insertion → layer-wise A* routing →
    layout generation → DRC, with an automatic fix loop (violating
    regions get extra routing space and are re-routed) → GDSII.

    Every stage's report is retained so callers (CLI, benches, tests)
    can reproduce the paper's tables from one [run]. *)

type times = {
  synth_s : float;
  resyn_s : float;  (** resynthesis stage; ~0 at [--resyn-effort none] *)
  place_s : float;
  route_s : float;
  layout_s : float;
  check_s : float;  (** static-verification gate; 0 when disabled *)
}

type result = {
  aqfp_netlist : Netlist.t;  (** after buffer-line insertion *)
  problem : Problem.t;  (** final placed problem *)
  routing : Router.result;
  layout : Layout.t;
  violations : Diag.t list;
      (** residual DRC diagnostics after the fix loop, sorted with
          {!Diag.compare} (empty = clean signoff) *)
  synth_report : Synth_flow.report;
  resyn_report : Resyn.report;
      (** the resynthesis stage's QoR deltas and CEC statistics; at
          the default [Off] effort the before/after metrics coincide *)
  placement : Placer.result;
  sta : Sta.report;
  energy : Energy.report;  (** adiabatic energy estimate of the design *)
  buffer_lines : int;
  drc_fix_rounds : int;
  check_report : Check.report option;
      (** the [sf_check] gate's findings ([run ~check:true] only):
          netlist lints, AQFP legality, synthesis equivalence guards,
          placement audit, route connectivity, DRC and LVS-lite *)
  times : times;
}

val drc_cache_of_db : Db.t -> Drc.cache
(** DRC tile-verdict memo wired to the database's proof store — what
    the [route] stage (and [superflow drc]) attach so an ECO rerun
    re-checks only the tiles whose geometry changed. *)

val check_passes :
  ?tier:Check.tier ->
  ?absint_cache:Absint_check.cache ->
  result ->
  Check.pass list
(** The standard verification pipeline over a finished flow result —
    what [run ~check:true] and [superflow check] execute: [lint],
    the five [absint-*] dataflow passes, [aqfp], [equiv] (from the
    synthesis guards), [place], [route], [drc], [lvs], in that
    order. [tier] (default [Check.Fast]) gates the AIG/SAT-backed
    lints; [absint_cache] memoizes the dataflow findings (the flow
    wires it to the database's proof store). Exposed so callers can
    re-run or extend the gate. *)

(** {1 The stage graph}

    The flow is an explicit six-stage graph — [synth → resyn → place
    → route → layout → check] — and each stage is independently
    cacheable in a {!Db.t} design database. A stage's cache key is
    the hash of its input-artifact hashes plus every parameter that
    affects its result:

    - [synth]: the AOI netlist, whether equivalence guards run
      (i.e. whether the flow ends at the [check] stage), and which
      {!Equiv.engine} proves them;
    - [resyn]: the AQFP netlist from [synth], the {!Resyn.effort},
      and the guard configuration — covers cut-based majority
      resynthesis ({!Resyn.run}); its window-CEC verdicts memoize
      into the database's proof store, so a warm rerun proves
      nothing;
    - [place]: the AQFP netlist from [resyn], the technology record,
      the placement algorithm and the seed — covers placement,
      buffer-line insertion, the settling pass and channel pre-sizing;
    - [route]: the placed problem and the routing algorithm — covers
      the DRC fix loop, so its outputs are the final routing, the
      problem with its final row gaps, the residual violations and
      the fix-round count;
    - [layout]: the routed problem, the routing and the AQFP netlist
      — covers layout assembly, sign-off STA and the energy report;
    - [check]: every artifact the verification gate reads.

    [--jobs] is deliberately absent from every key: stage results
    are bit-identical at any pool size (see {!Parallel}). *)

type stage = Synth | Resyn | Place | Route | Layout | Check

val stages : stage list
(** In dependency order. *)

val stage_name : stage -> string
val stage_of_string : string -> (stage, string) Stdlib.result
val stage_rank : stage -> int

type outcome =
  | Cached of float  (** loaded from the database, in [s] seconds *)
  | Computed of float  (** executed, in [s] seconds *)

type staged = {
  outcomes : (stage * outcome) list;  (** stages run, in order *)
  db_warnings : Diag.t list;
      (** corrupt cache entries healed by recomputation *)
  synth : (Netlist.t * Synth_flow.report) option;
  resyned : (Netlist.t * Resyn.report) option;
      (** resynthesized AQFP netlist and the stage report *)
  placed : (Netlist.t * Problem.t * Placer.result * int) option;
      (** buffered AQFP netlist, placed problem, placement report,
          buffer lines *)
  routed : (Router.result * Problem.t * Diag.t list * int) option;
      (** routing, problem with final row gaps, residual violations,
          fix rounds *)
  built : (Layout.t * Sta.report * Energy.report) option;
  checked : Check.report option;
  result : result option;  (** assembled when [to_stage >= Layout] *)
}

val run_staged :
  ?tech:Tech.t ->
  ?algorithm:Placer.algorithm ->
  ?router:Router.algorithm ->
  ?seed:int ->
  ?jobs:int ->
  ?db:Db.t ->
  ?from_stage:stage ->
  ?to_stage:stage ->
  ?equiv_engine:Equiv.engine ->
  ?check_tier:Check.tier ->
  ?resyn_effort:Resyn.effort ->
  ?gds_path:string ->
  ?def_path:string ->
  Netlist.t ->
  (staged, Diag.t) Stdlib.result
(** Run a slice of the stage graph, caching through [db] when given.

    Each stage first looks itself up in the database (key as above):
    on a hit its artifacts are loaded instead of recomputed and its
    outcome is [Cached]; on a miss it executes and persists its
    outputs. Without [db], every stage is [Computed].

    [from_stage] (default [Synth]) asserts that every earlier stage
    is already in the database — a miss there fails with [DB-FROM-01]
    rather than silently recomputing; [to_stage] (default [Layout])
    stops the graph early. [to_stage = Check] switches the synthesis
    equivalence guards on, exactly like [run ~check:true];
    [equiv_engine] (default [`Auto]) selects the guard's proof engine
    ({!Equiv.engine}) and participates in the [synth] cache key, and
    when [db] is attached the individual cone proofs memoize into the
    database's proof cache ({!Db.put_proof}). [check_tier] (default
    [Check.Fast]) selects the gate's tier — [Fast] leans on the
    [sf_absint] dataflow passes, [Full] adds the AIG/SAT-backed lints
    — participates in the [check] cache key, and is recorded in the
    report header; the absint findings memoize into the proof cache
    keyed by the netlist's structural hash. [resyn_effort] (default
    [Resyn.Off]) selects the resynthesis stage's effort and
    participates in its cache key; its window-CEC verdicts memoize
    into the proof cache. Errors: [DB-RANGE-01]
    when [from_stage] is after [to_stage] or [from_stage] is given
    without [db]. *)

val run :
  ?tech:Tech.t ->
  ?algorithm:Placer.algorithm ->
  ?router:Router.algorithm ->
  ?seed:int ->
  ?jobs:int ->
  ?check:bool ->
  ?equiv_engine:Equiv.engine ->
  ?check_tier:Check.tier ->
  ?resyn_effort:Resyn.effort ->
  ?db:Db.t ->
  ?gds_path:string ->
  ?def_path:string ->
  Netlist.t ->
  result
(** Run the full flow on an AOI netlist. [algorithm] defaults to
    [Placer.Superflow] and [router] to [Router.Sequential];
    [jobs] sets the domain-pool size for the parallel stages
    (routing, placement gradients, STA, DRC, checker) — results are
    bit-identical at every value, see {!Parallel}; [check] (default
    false) runs the {!Check} static-verification gate over every
    stage handoff and stores its report; [equiv_engine] selects the
    synthesis guards' proof engine (default [`Auto]: BDD first, SAT
    on blow-up); [db] attaches a design
    database so stages are cached ({!run_staged}); [gds_path] writes
    the final GDSII stream; [def_path] the DEF-style
    placement/routing dump. *)

val run_verilog :
  ?tech:Tech.t -> ?algorithm:Placer.algorithm -> ?router:Router.algorithm ->
  ?seed:int -> ?jobs:int -> ?check:bool -> ?equiv_engine:Equiv.engine ->
  ?check_tier:Check.tier -> ?resyn_effort:Resyn.effort -> ?db:Db.t ->
  ?gds_path:string ->
  ?def_path:string -> string -> (result, string) Stdlib.result
(** Full flow from Verilog source text. *)

val run_bench_file :
  ?tech:Tech.t -> ?algorithm:Placer.algorithm -> ?router:Router.algorithm ->
  ?seed:int -> ?jobs:int -> ?check:bool -> ?equiv_engine:Equiv.engine ->
  ?check_tier:Check.tier -> ?resyn_effort:Resyn.effort -> ?db:Db.t ->
  ?gds_path:string ->
  ?def_path:string -> string -> (result, string) Stdlib.result
(** Full flow from an ISCAS [.bench] file path. *)

val version : string

val pp_summary : Format.formatter -> result -> unit
