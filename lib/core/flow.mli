(** SuperFlow: the end-to-end RTL-to-GDS driver (paper Fig. 3).

    Pipeline: AOI netlist (from the Verilog frontend, a [.bench]
    file, or a generator) → majority-based logic synthesis with
    buffer/splitter insertion → row-wise timing-aware placement →
    max-wirelength buffer-line insertion → layer-wise A* routing →
    layout generation → DRC, with an automatic fix loop (violating
    regions get extra routing space and are re-routed) → GDSII.

    Every stage's report is retained so callers (CLI, benches, tests)
    can reproduce the paper's tables from one [run]. *)

type times = {
  synth_s : float;
  place_s : float;
  route_s : float;
  layout_s : float;
  check_s : float;  (** static-verification gate; 0 when disabled *)
}

type result = {
  aqfp_netlist : Netlist.t;  (** after buffer-line insertion *)
  problem : Problem.t;  (** final placed problem *)
  routing : Router.result;
  layout : Layout.t;
  violations : Drc.violation list;  (** remaining after the fix loop *)
  synth_report : Synth_flow.report;
  placement : Placer.result;
  sta : Sta.report;
  energy : Energy.report;  (** adiabatic energy estimate of the design *)
  buffer_lines : int;
  drc_fix_rounds : int;
  check_report : Check.report option;
      (** the [sf_check] gate's findings ([run ~check:true] only):
          netlist lints, AQFP legality, synthesis equivalence guards,
          placement audit, route connectivity, DRC and LVS-lite *)
  times : times;
}

val check_passes : result -> Check.pass list
(** The standard verification pipeline over a finished flow result —
    what [run ~check:true] and [superflow check] execute: [lint],
    [aqfp], [equiv] (from the synthesis guards), [place], [route],
    [drc], [lvs], in that order. Exposed so callers can re-run or
    extend the gate. *)

val run :
  ?tech:Tech.t ->
  ?algorithm:Placer.algorithm ->
  ?router:Router.algorithm ->
  ?seed:int ->
  ?jobs:int ->
  ?check:bool ->
  ?gds_path:string ->
  ?def_path:string ->
  Netlist.t ->
  result
(** Run the full flow on an AOI netlist. [algorithm] defaults to
    [Placer.Superflow] and [router] to [Router.Sequential];
    [jobs] sets the domain-pool size for the parallel stages
    (routing, placement gradients, STA, DRC, checker) — results are
    bit-identical at every value, see {!Parallel}; [check] (default
    false) runs the {!Check} static-verification gate over every
    stage handoff and stores its report; [gds_path] writes the final
    GDSII stream; [def_path] the DEF-style placement/routing dump. *)

val run_verilog :
  ?tech:Tech.t -> ?algorithm:Placer.algorithm -> ?router:Router.algorithm ->
  ?jobs:int -> ?check:bool -> ?gds_path:string -> ?def_path:string -> string ->
  (result, string) Stdlib.result
(** Full flow from Verilog source text. *)

val run_bench_file :
  ?tech:Tech.t -> ?algorithm:Placer.algorithm -> ?router:Router.algorithm ->
  ?jobs:int -> ?check:bool -> ?gds_path:string -> ?def_path:string -> string ->
  (result, string) Stdlib.result
(** Full flow from an ISCAS [.bench] file path. *)

val version : string

val pp_summary : Format.formatter -> result -> unit
