type synth_row = { s_name : string; jjs : int; nets : int; delay : int }

type place_row = {
  p_name : string;
  algorithm : Placer.algorithm;
  hpwl : float;
  buffers : int;
  wns : float option;
  runtime_s : float;
}

type route_row = {
  r_name : string;
  r_jjs : int;
  r_nets : int;
  routed_wl : float;
  r_jjs_resyn : int;
  r_depth_resyn : int;
  r_depth : int;
}

type fig4_row = {
  mixed : bool;
  f_hpwl : float;
  f_wns : float;
  f_violations : int;
  moves : int;
}

(* ---- paper reference values ---- *)

let paper_table2 =
  [
    ("adder8", (960, 462, 23));
    ("apc32", (746, 513, 21));
    ("apc128", (5048, 2355, 45));
    ("decoder", (2210, 989, 19));
    ("sorter32", (3788, 1474, 30));
    ("c432", (2500, 1048, 40));
    ("c499", (4946, 2202, 31));
    ("c1355", (4996, 2236, 31));
    ("c1908", (4716, 2182, 34));
  ]

let paper_table3 =
  [
    ("adder8", ((10948., 24, None), (12360., 24, None), (11850., 16, None, 12.1)));
    ("apc32", ((15915., 26, None), (15915., 26, None), (15530., 26, None, 13.8)));
    ( "apc128",
      ( (254068., 117, Some (-40.7)),
        (245416., 110, Some (-10.1)),
        (177620., 67, Some (-9.6), 374.8) ) );
    ( "decoder",
      ( (141151., 34, Some (-8.8)),
        (156213., 33, Some (-1.4)),
        (153030., 43, Some (-1.0), 162.5) ) );
    ( "sorter32",
      ( (168208., 29, Some (-6.9)),
        (180427., 29, Some (-3.3)),
        (132640., 29, Some (-2.3), 113.4) ) );
    ("c432", ((51009., 46, None), (52208., 45, None), (36050., 29, None, 50.1)));
    ( "c499",
      ( (430658., 62, Some (-29.9)),
        (431108., 62, Some (-8.9)),
        (385845., 59, Some (-6.7), 517.5) ) );
    ( "c1355",
      ( (422556., 58, Some (-31.4)),
        (426099., 58, Some (-9.1)),
        (396640., 56, Some (-8.9), 690.9) ) );
    ( "c1908",
      ( (358271., 67, Some (-25.5)),
        (361071., 66, Some (-6.9)),
        (357570., 68, Some (-6.9), 353.3) ) );
  ]

let paper_table4 =
  [
    ("adder8", (2170, 1064, 21100.));
    ("apc32", (2040, 986, 22510.));
    ("apc128", (13860, 6761, 260770.));
    ("decoder", (7896, 3807, 252050.));
    ("sorter32", (8768, 3938, 218210.));
    ("c432", (5286, 2531, 75710.));
    ("c499", (19050, 9329, 816240.));
    ("c1355", (21004, 10315, 932960.));
    ("c1908", (15408, 7574, 617350.));
  ]

(* ---- measurement (memoized: the bench harness prints tables and
   renders EXPERIMENTS.md from the same data) ---- *)

let memo (tbl : (string, 'a) Hashtbl.t) name f =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
      let v = f () in
      Hashtbl.replace tbl name v;
      v

(* memo caches keyed by benchmark name; values are deterministic functions
   of the input deck, so sharing across table calls cannot change a row.
   sl-ignore: SL-GLOBAL-01 read-through memo cache, keyed deterministically *)
let t2_cache : (string, synth_row) Hashtbl.t = Hashtbl.create 16
let t3_cache : (string, place_row list) Hashtbl.t = Hashtbl.create 16 (* sl-ignore: SL-GLOBAL-01 same memo cache as t2_cache *)
let t4_cache : (string, route_row) Hashtbl.t = Hashtbl.create 16 (* sl-ignore: SL-GLOBAL-01 same memo cache as t2_cache *)
let f4_cache : (string, fig4_row list) Hashtbl.t = Hashtbl.create 16 (* sl-ignore: SL-GLOBAL-01 same memo cache as t2_cache *)

let measure_table2 name =
  memo t2_cache name (fun () ->
      let aoi = Circuits.benchmark name in
      let _, r = Synth_flow.run aoi in
      { s_name = name; jjs = r.Synth_flow.jjs; nets = r.Synth_flow.nets;
        delay = r.Synth_flow.delay })

let wns_option sta =
  if Sta.meets_timing sta then None else Some sta.Sta.wns_ps

let measure_table3 ?(seed = 1) name =
  memo t3_cache name @@ fun () ->
  let aoi = Circuits.benchmark name in
  let aqfp = Synth_flow.run_quiet aoi in
  List.map
    (fun algorithm ->
      let p = Problem.of_netlist Tech.default aqfp in
      let r = Placer.place ~seed algorithm p in
      let sta = Sta.analyze p in
      {
        p_name = name;
        algorithm;
        hpwl = r.Placer.hpwl;
        buffers = r.Placer.buffer_lines;
        wns = wns_option sta;
        runtime_s = r.Placer.runtime_s;
      })
    [ Placer.Gordian; Placer.Taas; Placer.Superflow ]

let router_tag = function
  | Router.Sequential -> "seq"
  | Router.Negotiated -> "neg"

let measure_table4 ?(seed = 1) ?(router = Router.Sequential) name =
  memo t4_cache (name ^ "#" ^ router_tag router) @@ fun () ->
  let aoi = Circuits.benchmark name in
  let r = Flow.run ~seed ~router aoi in
  (* the resyn-on arm: same flow with the resynthesis stage at full
     effort, so the table shows the paper numbers against both *)
  let rr = Flow.run ~seed ~router ~resyn_effort:Resyn.Full aoi in
  {
    r_name = name;
    r_jjs = Problem.jj_count r.Flow.problem;
    r_nets = Array.length r.Flow.problem.Problem.nets;
    routed_wl = r.Flow.routing.Router.wirelength;
    r_jjs_resyn = Problem.jj_count rr.Flow.problem;
    r_depth_resyn = rr.Flow.resyn_report.Resyn.depth_after;
    r_depth = rr.Flow.resyn_report.Resyn.depth_before;
  }

let measure_fig4 ?(seed = 1) name =
  memo f4_cache name @@ fun () ->
  let aoi = Circuits.benchmark name in
  let aqfp = Synth_flow.run_quiet aoi in
  List.map
    (fun mixed ->
      let p = Problem.of_netlist Tech.default aqfp in
      Global.run ~options:{ Global.default_options with seed } p;
      Legalize.run p;
      let moves =
        Detailed.run
          ~options:{ Detailed.default_options with mixed_size = mixed }
          p
      in
      let sta = Sta.analyze p in
      {
        mixed;
        f_hpwl = Problem.hpwl p;
        f_wns = sta.Sta.wns_ps;
        f_violations = sta.Sta.violations;
        moves;
      })
    [ false; true ]

(* ---- printing ---- *)

let fmt_wns = function
  | None -> "-"
  | Some w -> Printf.sprintf "%.1f" w

let print_table1 () =
  print_endline "Table I: AQFP vs CMOS (technology model used by this flow)";
  let t =
    Table.create ~headers:[ "Property"; "AQFP (this flow)"; "CMOS" ]
  in
  Table.set_align t [ Table.Left; Table.Left; Table.Left ];
  List.iter (Table.add_row t)
    [
      [ "Active component"; "Josephson junction (JJ)"; "Transistor" ];
      [ "Passive component"; "Inductor"; "Capacitor" ];
      [ "Logic gate"; "Majority-based gates"; "And, or, inverter gates" ];
      [ "Data propagation"; "Current pulse"; "Voltage level" ];
      [ "Clocking"; "Four-phase clocking"; "Synchronous" ];
      [ "Fan-out"; "= 1 (splitters)"; ">= 1" ];
      [ "Power"; "Alternating current (AC)"; "Direct current (DC)" ];
    ];
  Table.print t;
  Format.printf "technology: %a@.@." Tech.pp Tech.default

let print_table2 names =
  print_endline "Table II: majority-based logic synthesis results (paper vs measured)";
  let t =
    Table.create
      ~headers:
        [ "Circuit"; "#JJs(paper)"; "#JJs"; "#Nets(paper)"; "#Nets"; "#Delay(paper)"; "#Delay" ]
  in
  List.iter
    (fun name ->
      let m = measure_table2 name in
      let pj, pn, pd =
        match List.assoc_opt name paper_table2 with
        | Some (a, b, c) -> (string_of_int a, string_of_int b, string_of_int c)
        | None -> ("?", "?", "?")
      in
      Table.add_row t
        [ name; pj; Table.fmt_int m.jjs; pn; Table.fmt_int m.nets; pd; string_of_int m.delay ])
    names;
  Table.print t;
  print_newline ()

let print_table3 names =
  print_endline
    "Table III: placement comparison GORDIAN-based / TAAS / SuperFlow (paper vs measured)";
  let t =
    Table.create
      ~headers:
        [ "Circuit"; "Placer"; "HPWL(paper)"; "HPWL"; "Buf(paper)"; "Buf";
          "WNS(paper)"; "WNS"; "Runtime(s)" ]
  in
  List.iter
    (fun name ->
      let rows = measure_table3 name in
      let paper = List.assoc_opt name paper_table3 in
      List.iter
        (fun r ->
          let p_hpwl, p_buf, p_wns =
            match (paper, r.algorithm) with
            | Some ((h, b, w), _, _), Placer.Gordian ->
                (Table.fmt_float ~dec:0 h, string_of_int b, fmt_wns w)
            | Some (_, (h, b, w), _), Placer.Taas ->
                (Table.fmt_float ~dec:0 h, string_of_int b, fmt_wns w)
            | Some (_, _, (h, b, w, _)), Placer.Superflow ->
                (Table.fmt_float ~dec:0 h, string_of_int b, fmt_wns w)
            | None, _ -> ("?", "?", "?")
          in
          Table.add_row t
            [
              r.p_name;
              Placer.algorithm_name r.algorithm;
              p_hpwl;
              Table.fmt_float ~dec:0 r.hpwl;
              p_buf;
              string_of_int r.buffers;
              p_wns;
              fmt_wns r.wns;
              Table.fmt_float r.runtime_s;
            ])
        rows;
      Table.add_sep t)
    names;
  Table.print t;
  print_newline ()

let print_table4 ?(router = Router.Sequential) names =
  print_endline "Table IV: routing results of SuperFlow (paper vs measured)";
  let t =
    Table.create
      ~headers:
        [ "Circuit"; "#JJs(paper)"; "#JJs"; "#JJs(resyn)"; "#Nets(paper)";
          "#Nets"; "WL um(paper)"; "WL um"; "Depth"; "Depth(resyn)" ]
  in
  List.iter
    (fun name ->
      let m = measure_table4 ~router name in
      let pj, pn, pw =
        match List.assoc_opt name paper_table4 with
        | Some (a, b, c) -> (string_of_int a, string_of_int b, Table.fmt_float ~dec:0 c)
        | None -> ("?", "?", "?")
      in
      Table.add_row t
        [
          name; pj; Table.fmt_int m.r_jjs; Table.fmt_int m.r_jjs_resyn; pn;
          Table.fmt_int m.r_nets; pw; Table.fmt_float ~dec:0 m.routed_wl;
          string_of_int m.r_depth; string_of_int m.r_depth_resyn;
        ])
    names;
  Table.print t;
  print_newline ()

let print_fig4 names =
  print_endline
    "Fig. 4 ablation: detailed placement with size-matched vs mixed-size candidates";
  let t =
    Table.create
      ~headers:[ "Circuit"; "Candidates"; "HPWL"; "WNS(ps)"; "Violations"; "Moves" ]
  in
  List.iter
    (fun name ->
      List.iter
        (fun r ->
          Table.add_row t
            [
              name;
              (if r.mixed then "mixed-size" else "size-matched");
              Table.fmt_float ~dec:0 r.f_hpwl;
              Table.fmt_float r.f_wns;
              string_of_int r.f_violations;
              string_of_int r.moves;
            ])
        (measure_fig4 name);
      Table.add_sep t)
    names;
  Table.print t;
  print_newline ()

(* ---- automated claim checking ---- *)

type claim = { claim : string; holds : bool; evidence : string }

let check_claims names =
  let t3 = List.map (fun n -> (n, measure_table3 n)) names in
  let by_alg alg =
    List.map
      (fun (_, rows) -> List.find (fun r -> r.algorithm = alg) rows)
      t3
  in
  let sf = by_alg Placer.Superflow
  and taas = by_alg Placer.Taas
  and gor = by_alg Placer.Gordian in
  let geomean f rows = Stats.geomean (Array.of_list (List.map f rows)) in
  let hpwl_sf = geomean (fun r -> r.hpwl) sf in
  let hpwl_taas = geomean (fun r -> r.hpwl) taas in
  let hpwl_gor = geomean (fun r -> r.hpwl) gor in
  (* WNS: mean violation magnitude in ps (0 when timing is met) —
     the arithmetic mean matches how the paper's "Average" row treats
     mixed met/violated circuits *)
  let viol r = Float.max 0.0 (-.Option.value ~default:0.0 r.wns) in
  let mean f rows = Stats.mean (Array.of_list (List.map f rows)) in
  let wns_sf = mean viol sf
  and wns_taas = mean viol taas
  and wns_gor = mean viol gor in
  let buf_mean rows =
    Stats.mean (Array.of_list (List.map (fun r -> float_of_int r.buffers) rows))
  in
  let buf_sf = buf_mean sf and buf_taas = buf_mean taas and buf_gor = buf_mean gor in
  let t2 = List.map measure_table2 names in
  [
    {
      claim = "SuperFlow wirelength beats both baselines (geomean)";
      holds = hpwl_sf <= hpwl_taas && hpwl_sf <= hpwl_gor;
      evidence =
        Printf.sprintf "HPWL geomean: SF %.0f vs TAAS %.0f (%.1f%%), GORDIAN %.0f (%.1f%%)"
          hpwl_sf hpwl_taas
          (100.0 *. (hpwl_taas -. hpwl_sf) /. hpwl_taas)
          hpwl_gor
          (100.0 *. (hpwl_gor -. hpwl_sf) /. hpwl_gor);
    };
    {
      claim = "SuperFlow timing is best of the three (mean WNS violation)";
      holds = wns_sf <= wns_taas && wns_sf <= wns_gor;
      evidence =
        Printf.sprintf "mean WNS violation (ps): SF %.1f vs TAAS %.1f, GORDIAN %.1f"
          wns_sf wns_taas wns_gor;
    };
    {
      claim = "SuperFlow inserts the fewest buffer lines (mean)";
      holds = buf_sf <= buf_taas && buf_sf <= buf_gor;
      evidence =
        Printf.sprintf "buffer lines mean: SF %.1f vs TAAS %.1f, GORDIAN %.1f" buf_sf
          buf_taas buf_gor;
    };
    {
      claim = "synthesis yields more JJs than nets on every circuit";
      holds = List.for_all (fun r -> r.jjs > r.nets) t2;
      evidence =
        String.concat ", "
          (List.map (fun r -> Printf.sprintf "%s %d/%d" r.s_name r.jjs r.nets) t2);
    };
    {
      claim = "the wirelength-only GORDIAN baseline has the worst timing";
      holds = wns_gor >= wns_taas && wns_gor >= wns_sf;
      evidence =
        Printf.sprintf "mean WNS violation (ps): GORDIAN %.1f vs TAAS %.1f, SF %.1f"
          wns_gor wns_taas wns_sf;
    };
  ]

let print_claims names =
  print_endline "Reproduction verdicts (paper claims vs this implementation):";
  List.iter
    (fun c ->
      Printf.printf "  [%s] %s
        %s
"
        (if c.holds then "HOLDS" else "MISSES")
        c.claim c.evidence)
    (check_claims names);
  print_newline ()

(* ---- EXPERIMENTS.md rendering ---- *)

let experiments_markdown names =
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# EXPERIMENTS — paper vs measured\n\n";
  add
    "Regenerated by `dune exec bench/main.exe`. Absolute numbers differ from\n\
     the paper because every substrate here is a from-scratch simulation\n\
     (see DESIGN.md §1): the benchmark netlists are structurally regenerated\n\
     (2-3x more cells after synthesis than the authors' netlists), the cell\n\
     library is parameterized from the dimensions stated in the paper, and\n\
     runtimes are CPU-only OCaml rather than the authors' GPU-backed Python.\n\
     The *shape* — which placer wins each metric, by roughly what factor,\n\
     and where timing breaks — is the reproduction target.\n\n";
  add "## Table II — synthesis (#JJs / #Nets / #Delay)\n\n";
  add "| circuit | JJs paper | JJs here | nets paper | nets here | delay paper | delay here |\n";
  add "|---|---|---|---|---|---|---|\n";
  List.iter
    (fun name ->
      let m = measure_table2 name in
      match List.assoc_opt name paper_table2 with
      | Some (pj, pn, pd) ->
          add "| %s | %d | %d | %d | %d | %d | %d |\n" name pj m.jjs pn m.nets pd m.delay
      | None -> add "| %s | ? | %d | ? | %d | ? | %d |\n" name m.jjs m.nets m.delay)
    names;
  add "\n## Table III — placement (HPWL um / buffer lines / WNS ps)\n\n";
  add "| circuit | placer | HPWL paper | HPWL here | buf paper | buf here | WNS paper | WNS here |\n";
  add "|---|---|---|---|---|---|---|---|\n";
  List.iter
    (fun name ->
      let rows = measure_table3 name in
      let paper = List.assoc_opt name paper_table3 in
      List.iter
        (fun r ->
          let ph, pb, pw =
            match (paper, r.algorithm) with
            | Some ((h, b, w), _, _), Placer.Gordian -> (h, b, w)
            | Some (_, (h, b, w), _), Placer.Taas -> (h, b, w)
            | Some (_, _, (h, b, w, _)), Placer.Superflow -> (h, b, w)
            | None, _ -> (0., 0, None)
          in
          add "| %s | %s | %.0f | %.0f | %d | %d | %s | %s |\n" name
            (Placer.algorithm_name r.algorithm)
            ph r.hpwl pb r.buffers (fmt_wns pw) (fmt_wns r.wns))
        rows)
    names;
  add "\n## Table IV — routing (SuperFlow)\n\n";
  add
    "| circuit | JJs paper | JJs here | JJs resyn | nets paper | nets here \
     | routed WL paper | routed WL here | depth | depth resyn |\n";
  add "|---|---|---|---|---|---|---|---|---|---|\n";
  List.iter
    (fun name ->
      let m = measure_table4 name in
      match List.assoc_opt name paper_table4 with
      | Some (pj, pn, pw) ->
          add "| %s | %d | %d | %d | %d | %d | %.0f | %.0f | %d | %d |\n" name
            pj m.r_jjs m.r_jjs_resyn pn m.r_nets pw m.routed_wl m.r_depth
            m.r_depth_resyn
      | None -> ())
    names;
  add "\n## Claim verdicts\n\n";
  List.iter
    (fun c ->
      add "- **%s** — %s (%s)\n" (if c.holds then "HOLDS" else "MISSES") c.claim
        c.evidence)
    (check_claims names);
  add "\n## Fig. 4 — mixed-cell-size detailed placement ablation\n\n";
  add "| circuit | candidates | HPWL | WNS ps | violations | moves |\n";
  add "|---|---|---|---|---|---|\n";
  List.iter
    (fun name ->
      List.iter
        (fun r ->
          add "| %s | %s | %.0f | %.1f | %d | %d |\n" name
            (if r.mixed then "mixed-size" else "size-matched")
            r.f_hpwl r.f_wns r.f_violations r.moves)
        (measure_fig4 name))
    names;
  Buffer.contents buf
