(** Experiment harness: regenerates every table and figure of the
    paper's evaluation (§IV) on this implementation, printing
    paper-vs-measured rows. Used by the CLI ([superflow tables]) and
    the bench executable, which also renders EXPERIMENTS.md from the
    same data. *)

type synth_row = { s_name : string; jjs : int; nets : int; delay : int }
(** One Table II row. *)

type place_row = {
  p_name : string;
  algorithm : Placer.algorithm;
  hpwl : float;
  buffers : int;
  wns : float option;  (** [None] = timing met (the paper prints '-') *)
  runtime_s : float;
}
(** One Table III cell group. *)

type route_row = {
  r_name : string;
  r_jjs : int;
  r_nets : int;
  routed_wl : float;
  r_jjs_resyn : int;  (** placed JJ count with [--resyn-effort full] *)
  r_depth_resyn : int;  (** phase depth with resynthesis *)
  r_depth : int;  (** phase depth without (the resyn stage's before) *)
}
(** One Table IV row: the flow with the resynthesis stage off (the
    paper's configuration) and the resyn-on deltas alongside. *)

type fig4_row = {
  mixed : bool;
  f_hpwl : float;
  f_wns : float;
  f_violations : int;
  moves : int;
}
(** One arm of the Fig. 4 mixed-cell-size ablation. *)

(* Paper reference values (from the published tables). *)

val paper_table2 : (string * (int * int * int)) list
val paper_table3 :
  (string * ((float * int * float option) * (float * int * float option) * (float * int * float option * float))) list
val paper_table4 : (string * (int * int * float)) list

(* Measurement (each runs the relevant stages of this implementation). *)

val measure_table2 : string -> synth_row
val measure_table3 : ?seed:int -> string -> place_row list
(** GORDIAN-based, TAAS, SuperFlow — in that order. *)

val measure_table4 :
  ?seed:int -> ?router:Router.algorithm -> string -> route_row
(** [router] selects the routing algorithm the flow runs with
    (default [Sequential]); measurements are memoized per
    (circuit, router) pair. Each measurement runs the flow twice —
    resynthesis off (the paper's configuration) and at full effort —
    so the table carries the resyn delta. *)


val measure_fig4 : ?seed:int -> string -> fig4_row list
(** Size-matched-only vs mixed-size detailed placement. *)

(* Printing. *)

val print_table1 : unit -> unit
val print_table2 : string list -> unit
val print_table3 : string list -> unit
val print_table4 : ?router:Router.algorithm -> string list -> unit
val print_fig4 : string list -> unit

type claim = { claim : string; holds : bool; evidence : string }

val check_claims : string list -> claim list
(** Grade the paper's headline claims against this implementation's
    measurements (geometric means over the given circuits):

    - SuperFlow's wirelength beats both baselines on average (the
      paper's 12.8%);
    - SuperFlow's timing (WNS) is the best of the three on average
      (the paper's 12.1%);
    - SuperFlow inserts the fewest max-wirelength buffer lines (the
      paper's 15.3%);
    - synthesis yields more JJs than nets on every circuit (the
      Table II structural invariant);
    - the GORDIAN-style baseline, lacking a timing term, has the worst
      WNS on average. *)

val print_claims : string list -> unit

val experiments_markdown : string list -> string
(** Render the full paper-vs-measured comparison as the contents of
    EXPERIMENTS.md. *)
