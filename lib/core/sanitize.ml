(* Divergence localization for the determinism contract.

   A sanitized run executes the stage graph repeatedly — once at
   jobs=1 with the schedule fuzzer off (the baseline), then under N
   seeded schedule permutations at jobs=1 and at jobs=k — with the
   Dsan race detector armed throughout. Every run is fingerprinted as
   the ordered list of its stage artifacts' codec bytes (volatile
   wall-clock fields zeroed first: they differ between any two runs
   and would drown the signal); a fingerprint that differs from the
   baseline is localized to the first divergent (stage, slot) by
   binary search over the prefix-equality predicate and reported as
   DSAN-SCHED-01 (schedule-dependent at equal jobs) or
   DSAN-DIVERGE-01 (jobs-dependent).

   No database is ever attached: a cache hit would replay the
   baseline's artifacts and hide the very divergence being hunted. *)

type slot = { sl_stage : Flow.stage; sl_name : string; sl_digest : string }

type report = {
  findings : Dsan.finding list;  (** sorted, deduped *)
  runs : int;  (** flow executions performed *)
  slots : int;  (** artifact slots in the baseline fingerprint *)
}

let digest_of codec v = Digest.to_hex (Digest.string (codec.Artifact.encode v))

(* wall-clock fields are honest outputs but poison byte comparison *)
let still_placement (p : Placer.result) = { p with Placer.runtime_s = 0.0 }

let still_routing (r : Router.result) = { r with Router.runtime_s = 0.0 }

let still_check (r : Check.report) =
  {
    r with
    Check.stats =
      List.map (fun s -> { s with Check.seconds = 0.0 }) r.Check.stats;
  }

let fingerprint (st : Flow.staged) : slot list =
  let acc = ref [] in
  let slot stage name digest =
    acc := { sl_stage = stage; sl_name = name; sl_digest = digest } :: !acc
  in
  (match st.Flow.synth with
  | None -> ()
  | Some (nl, rep) ->
      slot Flow.Synth "netlist" (digest_of Artifact.netlist nl);
      slot Flow.Synth "report" (digest_of Artifact.synth_report rep));
  (match st.Flow.resyned with
  | None -> ()
  | Some (nl, rep) ->
      slot Flow.Resyn "netlist" (digest_of Artifact.netlist nl);
      slot Flow.Resyn "report" (digest_of Artifact.resyn_report rep));
  (match st.Flow.placed with
  | None -> ()
  | Some (nl, p, pr, buffer_lines) ->
      slot Flow.Place "netlist" (digest_of Artifact.netlist nl);
      slot Flow.Place "problem" (digest_of Artifact.problem p);
      slot Flow.Place "report"
        (digest_of Artifact.placement (still_placement pr));
      slot Flow.Place "buffer-lines"
        (Digest.to_hex (Digest.string (string_of_int buffer_lines))));
  (match st.Flow.routed with
  | None -> ()
  | Some (r, p, viols, rounds) ->
      slot Flow.Route "routing" (digest_of Artifact.routing (still_routing r));
      slot Flow.Route "problem" (digest_of Artifact.problem p);
      slot Flow.Route "violations" (digest_of Artifact.diags viols);
      slot Flow.Route "fix-rounds"
        (Digest.to_hex (Digest.string (string_of_int rounds))));
  (match st.Flow.built with
  | None -> ()
  | Some (l, sta, energy) ->
      slot Flow.Layout "layout" (digest_of Artifact.layout l);
      slot Flow.Layout "sta" (digest_of Artifact.sta sta);
      slot Flow.Layout "energy" (digest_of Artifact.energy energy));
  (match st.Flow.checked with
  | None -> ()
  | Some rep ->
      slot Flow.Check "report"
        (digest_of Artifact.check_report (still_check rep)));
  List.rev !acc

(* first index where the fingerprints disagree, by binary search over
   the monotone predicate "the first [k] slots agree" — the scan a
   linear walk would do, but O(log n) digest comparisons *)
let first_divergence (a : slot list) (b : slot list) =
  let a = Array.of_list a and b = Array.of_list b in
  let n = min (Array.length a) (Array.length b) in
  let prefix_ok k =
    let ok = ref true in
    for i = 0 to k - 1 do
      if a.(i).sl_digest <> b.(i).sl_digest then ok := false
    done;
    !ok
  in
  if prefix_ok n then
    if Array.length a = Array.length b then None
    else Some (min (Array.length a) (Array.length b), None)
  else begin
    let lo = ref 0 and hi = ref n in
    (* invariant: prefix_ok lo, not (prefix_ok hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if prefix_ok mid then lo := mid else hi := mid
    done;
    Some (!lo, Some a.(!lo))
  end

let divergence_finding ~rule ~jobs ~schedule base trial =
  match first_divergence base trial with
  | None -> None
  | Some (k, slot) ->
      let where =
        match slot with
        | Some s -> Printf.sprintf "%s/%s" (Flow.stage_name s.sl_stage) s.sl_name
        | None -> "artifact count"
      in
      Some
        {
          Dsan.f_rule = rule;
          f_site = "flow";
          f_array = where;
          f_chunk_a = -1;
          f_chunk_b = -1;
          f_index = k;
          f_detail =
            Printf.sprintf
              "first divergent artifact is %s (slot %d of %d) at jobs=%d \
               under fuzzed schedule %d; earlier artifacts are byte-identical"
              where k (List.length base) jobs schedule;
        }

let run ?tech ?algorithm ?router ?flow_seed ?(to_stage = Flow.Layout)
    ?(seed = 0) ?(schedules = 4) ?(jobs = 4) aoi =
  let saved_jobs = Parallel.jobs () in
  let one_run ~jobs ~fuzz ~fuzz_seed =
    Parallel.set_jobs jobs;
    let (res : (Flow.staged, Diag.t) result), findings =
      Dsan.with_sanitizer ~seed:fuzz_seed ~fuzz (fun () ->
          Flow.run_staged ?tech ?algorithm ?router ?seed:flow_seed ~to_stage
            aoi)
    in
    match res with
    | Error d -> Error d
    | Ok st -> Ok (fingerprint st, findings)
  in
  let result =
    match one_run ~jobs:1 ~fuzz:false ~fuzz_seed:seed with
    | Error d -> Error d
    | Ok (base, base_findings) ->
        let findings = ref base_findings in
        let runs = ref 1 in
        let failure = ref None in
        (* schedule trials at jobs=1 (pure fuzz sensitivity), then at
           jobs=k (fuzz + real concurrency); trial 0 of the jobs=k arm
           is unfuzzed so a plain jobs dependence is caught even with
           --schedules 0 *)
        let trial ~jobs ~fuzz ~k ~rule =
          if !failure = None then begin
            incr runs;
            match
              one_run ~jobs ~fuzz ~fuzz_seed:(seed + (k * 0x2545f49))
            with
            | Error d -> failure := Some d
            | Ok (fp, fs) -> (
                findings := fs @ !findings;
                match divergence_finding ~rule ~jobs ~schedule:k base fp with
                | Some f -> findings := f :: !findings
                | None -> ())
          end
        in
        for k = 1 to schedules do
          trial ~jobs:1 ~fuzz:true ~k ~rule:"DSAN-SCHED-01"
        done;
        if jobs > 1 then begin
          trial ~jobs ~fuzz:false ~k:0 ~rule:"DSAN-DIVERGE-01";
          for k = 1 to schedules do
            trial ~jobs ~fuzz:true ~k ~rule:"DSAN-DIVERGE-01"
          done
        end;
        (match !failure with
        | Some d -> Error d
        | None ->
            Ok
              {
                findings = List.sort_uniq Dsan.compare_finding !findings;
                runs = !runs;
                slots = List.length base;
              })
  in
  Parallel.set_jobs saved_jobs;
  result

let render_text r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "sanitize: %d run(s), %d artifact slot(s) fingerprinted\n"
       r.runs r.slots);
  List.iter
    (fun f -> Buffer.add_string b (Dsan.finding_to_string f ^ "\n"))
    r.findings;
  Buffer.add_string b
    (if r.findings = [] then "sanitize: clean — no determinism findings\n"
     else
       Printf.sprintf "sanitize: %d finding(s)\n" (List.length r.findings));
  Buffer.contents b
