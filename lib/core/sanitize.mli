(** Divergence localization for the determinism contract
    ([superflow sanitize]).

    Executes the stage graph repeatedly with the {!Dsan} race detector
    armed — a jobs=1 un-fuzzed baseline, then [schedules] seeded
    chunk-order permutations at jobs=1 and at jobs=[k] — and compares
    each run's {e fingerprint}: the ordered list of stage-artifact
    codec bytes with volatile wall-clock fields (placement/routing
    [runtime_s], check pass [seconds]) zeroed. A differing fingerprint
    is localized to its first divergent (stage, slot) by binary search
    over the prefix-equality predicate and reported as
    [DSAN-SCHED-01] (differs at equal jobs under a permuted schedule)
    or [DSAN-DIVERGE-01] (differs between jobs=1 and jobs=k).

    No database is attached to the runs: a cache hit would replay the
    baseline's artifacts and mask the divergence being hunted. *)

type slot = {
  sl_stage : Flow.stage;
  sl_name : string;  (** output slot within the stage, e.g. ["problem"] *)
  sl_digest : string;  (** hex digest of the artifact's codec bytes *)
}

type report = {
  findings : Dsan.finding list;  (** sorted, deduped; [[]] = clean *)
  runs : int;  (** flow executions performed *)
  slots : int;  (** artifact slots in the baseline fingerprint *)
}

val fingerprint : Flow.staged -> slot list
(** The run's artifacts in stage order, volatile fields zeroed. *)

val first_divergence : slot list -> slot list -> (int * slot option) option
(** [first_divergence base trial] — [None] when byte-identical;
    [Some (k, slot)] gives the first disagreeing index and the
    baseline slot there ([None] slot = one fingerprint is a strict
    prefix of the other). *)

val run :
  ?tech:Tech.t ->
  ?algorithm:Placer.algorithm ->
  ?router:Router.algorithm ->
  ?flow_seed:int ->
  ?to_stage:Flow.stage ->
  ?seed:int ->
  ?schedules:int ->
  ?jobs:int ->
  Netlist.t ->
  (report, Diag.t) result
(** Sanitize one design. [seed] (default 0) seeds the schedule
    fuzzer, [schedules] (default 4) counts permutations per arm,
    [jobs] (default 4) is the parallel arm's pool size. Restores the
    previous [Parallel] job count before returning. [Error] reports
    the first flow failure (the sanitizer cannot conclude anything
    from a crashed run). *)

val render_text : report -> string
(** Run summary, one finding per line, and a clean/finding verdict. *)
