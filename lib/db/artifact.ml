(* Stage-handoff codecs. Each [body]/[read] pair below is the payload
   format of one artifact kind; the frame (magic, kind, version,
   length, checksum) comes from Codec. Bump a codec's version whenever
   its payload layout changes — stale artifacts then fail loudly with
   DB-VERSION-01 instead of decoding garbage. *)

open Codec

type 'a codec = {
  kind : string;
  version : int;
  encode : 'a -> string;
  decode : string -> ('a, Diag.t) result;
}

let make ~kind ~version body read =
  {
    kind;
    version;
    encode = (fun v -> Codec.encode ~kind ~version (fun b -> body b v));
    decode = (fun bytes -> Codec.decode ~kind ~version read bytes);
  }

let save c path v = save_file path (c.encode v)

let load c path =
  match load_file path with Error _ as e -> e | Ok bytes -> c.decode bytes

(* ---- netlist ---- *)

let w_kind b = function
  | Netlist.Input -> w_u8 b 0
  | Netlist.Output -> w_u8 b 1
  | Netlist.Const false -> w_u8 b 2
  | Netlist.Const true -> w_u8 b 3
  | Netlist.Buf -> w_u8 b 4
  | Netlist.Not -> w_u8 b 5
  | Netlist.And -> w_u8 b 6
  | Netlist.Or -> w_u8 b 7
  | Netlist.Nand -> w_u8 b 8
  | Netlist.Nor -> w_u8 b 9
  | Netlist.Xor -> w_u8 b 10
  | Netlist.Xnor -> w_u8 b 11
  | Netlist.Maj -> w_u8 b 12
  | Netlist.Splitter k ->
      w_u8 b 13;
      w_int b k

let r_kind r =
  match r_u8 r with
  | 0 -> Netlist.Input
  | 1 -> Netlist.Output
  | 2 -> Netlist.Const false
  | 3 -> Netlist.Const true
  | 4 -> Netlist.Buf
  | 5 -> Netlist.Not
  | 6 -> Netlist.And
  | 7 -> Netlist.Or
  | 8 -> Netlist.Nand
  | 9 -> Netlist.Nor
  | 10 -> Netlist.Xor
  | 11 -> Netlist.Xnor
  | 12 -> Netlist.Maj
  | 13 -> Netlist.Splitter (r_int r)
  | t -> raise (Corrupt (Printf.sprintf "unknown gate-kind tag %d" t))

let netlist_body b nl =
  w_int b (Netlist.size nl);
  Netlist.iter nl (fun nd ->
      w_kind b nd.Netlist.kind;
      w_array (fun b f -> w_int b f) b nd.Netlist.fanins;
      w_opt w_string b nd.Netlist.name;
      w_int b nd.Netlist.phase)

let netlist_read r =
  let n = r_int r in
  if n < 0 then raise (Corrupt "negative node count");
  let nl = Netlist.create () in
  let fixups = ref [] in
  for id = 0 to n - 1 do
    let kind = r_kind r in
    let fanins = r_array (fun r -> r_int r) r in
    Array.iter
      (fun f ->
        if f < 0 || f >= n then
          raise (Corrupt (Printf.sprintf "node %d: fanin %d out of range" id f)))
      fanins;
    let name = r_opt r_string r in
    let phase = r_int r in
    (* fan-ins may point forward (insertion rewires edges), so add a
       placeholder first and wire the real fan-ins afterwards — the
       same two-pass scheme as [Netlist.copy] *)
    let placeholder = Array.map (fun f -> if f < id then f else 0) fanins in
    let id' = Netlist.add nl ?name kind placeholder in
    if id' <> id then raise (Corrupt "node id drift during rebuild");
    Netlist.set_phase nl id phase;
    fixups := (id, fanins) :: !fixups
  done;
  List.iter (fun (id, fanins) -> Netlist.set_fanins nl id fanins) !fixups;
  nl

let netlist = make ~kind:"netlist" ~version:1 netlist_body netlist_read

(* ---- technology ---- *)

let tech_body b t =
  w_f64 b t.Tech.grid;
  w_f64 b t.Tech.s_min;
  w_f64 b t.Tech.w_max;
  w_f64 b t.Tech.row_gap;
  w_f64 b t.Tech.clock_freq_ghz;
  w_int b t.Tech.phases;
  w_f64 b t.Tech.signal_velocity;
  w_f64 b t.Tech.clock_velocity;
  w_f64 b t.Tech.gate_delay_ps;
  w_int b t.Tech.metal_layers

let tech_read r =
  let grid = r_f64 r in
  let s_min = r_f64 r in
  let w_max = r_f64 r in
  let row_gap = r_f64 r in
  let clock_freq_ghz = r_f64 r in
  let phases = r_int r in
  let signal_velocity = r_f64 r in
  let clock_velocity = r_f64 r in
  let gate_delay_ps = r_f64 r in
  let metal_layers = r_int r in
  {
    Tech.grid;
    s_min;
    w_max;
    row_gap;
    clock_freq_ghz;
    phases;
    signal_velocity;
    clock_velocity;
    gate_delay_ps;
    metal_layers;
  }

let tech = make ~kind:"tech" ~version:1 tech_body tech_read

(* ---- library cells (embedded in problem/layout payloads) ---- *)

let cell_body b c =
  w_string b c.Cell.cell_name;
  w_f64 b c.Cell.width;
  w_f64 b c.Cell.height;
  w_int b c.Cell.jj_count;
  w_array w_f64 b c.Cell.in_pins;
  w_array w_f64 b c.Cell.out_pins

let cell_read r =
  let cell_name = r_string r in
  let width = r_f64 r in
  let height = r_f64 r in
  let jj_count = r_int r in
  let in_pins = r_array r_f64 r in
  let out_pins = r_array r_f64 r in
  { Cell.cell_name; width; height; jj_count; in_pins; out_pins }

(* ---- placement problem ---- *)

let problem_body b p =
  tech_body b p.Problem.tech;
  w_array
    (fun b (c : Problem.cell) ->
      w_int b c.Problem.node;
      w_kind b c.Problem.kind;
      cell_body b c.Problem.lib;
      w_int b c.Problem.row;
      w_f64 b c.Problem.x)
    b p.Problem.cells;
  w_array
    (fun b (n : Problem.net) ->
      w_int b n.Problem.src;
      w_int b n.Problem.dst;
      w_int b n.Problem.src_pin;
      w_int b n.Problem.dst_pin)
    b p.Problem.nets;
  w_int b p.Problem.n_rows;
  w_array (w_array (fun b i -> w_int b i)) b p.Problem.row_cells;
  w_array w_f64 b p.Problem.row_gaps;
  w_f64 b p.Problem.row_height

let problem_read r =
  let tech = tech_read r in
  let cells =
    r_array
      (fun r ->
        let node = r_int r in
        let kind = r_kind r in
        let lib = cell_read r in
        let row = r_int r in
        let x = r_f64 r in
        { Problem.node; kind; lib; row; x })
      r
  in
  let nets =
    r_array
      (fun r ->
        let src = r_int r in
        let dst = r_int r in
        let src_pin = r_int r in
        let dst_pin = r_int r in
        { Problem.src; dst; src_pin; dst_pin })
      r
  in
  let n_rows = r_int r in
  let row_cells = r_array (r_array (fun r -> r_int r)) r in
  let row_gaps = r_array r_f64 r in
  let row_height = r_f64 r in
  { Problem.tech; cells; nets; n_rows; row_cells; row_gaps; row_height }

let problem = make ~kind:"problem" ~version:1 problem_body problem_read

(* ---- placement report ---- *)

let algorithm_tag = function
  | Placer.Superflow -> 0
  | Placer.Gordian -> 1
  | Placer.Taas -> 2

let algorithm_of_tag = function
  | 0 -> Placer.Superflow
  | 1 -> Placer.Gordian
  | 2 -> Placer.Taas
  | t -> raise (Corrupt (Printf.sprintf "unknown placer tag %d" t))

let placement =
  make ~kind:"placement" ~version:1
    (fun b (p : Placer.result) ->
      w_u8 b (algorithm_tag p.Placer.algorithm);
      w_f64 b p.Placer.hpwl;
      w_int b p.Placer.buffer_lines;
      w_f64 b p.Placer.timing_cost;
      w_f64 b p.Placer.runtime_s;
      w_int b p.Placer.moves)
    (fun r ->
      let algorithm = algorithm_of_tag (r_u8 r) in
      let hpwl = r_f64 r in
      let buffer_lines = r_int r in
      let timing_cost = r_f64 r in
      let runtime_s = r_f64 r in
      let moves = r_int r in
      { Placer.algorithm; hpwl; buffer_lines; timing_cost; runtime_s; moves })

(* ---- routing ---- *)

let routing =
  make ~kind:"routing" ~version:2
    (fun b (res : Router.result) ->
      w_array
        (fun b (rt : Router.route) ->
          w_int b rt.Router.net;
          w_list (w_pair w_f64 w_f64) b rt.Router.points;
          w_int b rt.Router.vias;
          w_f64 b rt.Router.length)
        b res.Router.routes;
      w_int b res.Router.expansions;
      w_int b res.Router.node_expansions;
      w_int b res.Router.neg_rounds;
      w_int b res.Router.neg_rerouted;
      w_f64 b res.Router.wirelength;
      w_int b res.Router.total_vias;
      w_f64 b res.Router.runtime_s)
    (fun r ->
      let routes =
        r_array
          (fun r ->
            let net = r_int r in
            let points = r_list (r_pair r_f64 r_f64) r in
            let vias = r_int r in
            let length = r_f64 r in
            { Router.net; points; vias; length })
          r
      in
      let expansions = r_int r in
      let node_expansions = r_int r in
      let neg_rounds = r_int r in
      let neg_rerouted = r_int r in
      let wirelength = r_f64 r in
      let total_vias = r_int r in
      let runtime_s = r_f64 r in
      {
        Router.routes;
        expansions;
        node_expansions;
        neg_rounds;
        neg_rerouted;
        wirelength;
        total_vias;
        runtime_s;
      })

(* ---- layout ---- *)

let w_point b (p : Geom.point) =
  w_f64 b p.Geom.x;
  w_f64 b p.Geom.y

let r_point r =
  let x = r_f64 r in
  let y = r_f64 r in
  { Geom.x; y }

let w_wire b (w : Layout.wire) =
  w_int b w.Layout.net;
  w_int b w.Layout.layer;
  w_point b w.Layout.a;
  w_point b w.Layout.b

let r_wire r =
  let net = r_int r in
  let layer = r_int r in
  let a = r_point r in
  let b = r_point r in
  { Layout.net; layer; a; b }

let layout =
  make ~kind:"layout" ~version:1
    (fun b (l : Layout.t) ->
      tech_body b l.Layout.tech;
      w_array
        (fun b (c : Layout.placed_cell) ->
          cell_body b c.Layout.lib;
          w_int b c.Layout.node;
          w_opt w_string b c.Layout.name;
          w_point b c.Layout.origin)
        b l.Layout.cells;
      w_array w_wire b l.Layout.wires;
      w_array
        (fun b (v : Layout.via) ->
          w_int b v.Layout.net;
          w_point b v.Layout.at)
        b l.Layout.vias;
      w_array w_wire b l.Layout.bias;
      w_f64 b l.Layout.die.Geom.lx;
      w_f64 b l.Layout.die.Geom.ly;
      w_f64 b l.Layout.die.Geom.hx;
      w_f64 b l.Layout.die.Geom.hy)
    (fun r ->
      let tech = tech_read r in
      let cells =
        r_array
          (fun r ->
            let lib = cell_read r in
            let node = r_int r in
            let name = r_opt r_string r in
            let origin = r_point r in
            { Layout.lib; node; name; origin })
          r
      in
      let wires = r_array r_wire r in
      let vias =
        r_array
          (fun r ->
            let net = r_int r in
            let at = r_point r in
            { Layout.net; at })
          r
      in
      let bias = r_array r_wire r in
      let lx = r_f64 r in
      let ly = r_f64 r in
      let hx = r_f64 r in
      let hy = r_f64 r in
      {
        Layout.tech;
        cells;
        wires;
        vias;
        bias;
        die = { Geom.lx; ly; hx; hy };
      })

(* ---- timing ---- *)

let sta =
  make ~kind:"sta" ~version:1
    (fun b (s : Sta.report) ->
      w_f64 b s.Sta.wns_ps;
      w_f64 b s.Sta.tns_ps;
      w_int b s.Sta.violations;
      w_list
        (fun b (nt : Sta.net_timing) ->
          w_int b nt.Sta.net;
          w_f64 b nt.Sta.slack_ps;
          w_f64 b nt.Sta.flight_ps;
          w_f64 b nt.Sta.skew_ps)
        b s.Sta.worst)
    (fun r ->
      let wns_ps = r_f64 r in
      let tns_ps = r_f64 r in
      let violations = r_int r in
      let worst =
        r_list
          (fun r ->
            let net = r_int r in
            let slack_ps = r_f64 r in
            let flight_ps = r_f64 r in
            let skew_ps = r_f64 r in
            { Sta.net; slack_ps; flight_ps; skew_ps })
          r
      in
      { Sta.wns_ps; tns_ps; violations; worst })

(* ---- energy ---- *)

let energy =
  make ~kind:"energy" ~version:1
    (fun b (e : Energy.report) ->
      w_int b e.Energy.jj_count;
      w_int b e.Energy.gate_count;
      w_f64 b e.Energy.energy_per_cycle_j;
      w_f64 b e.Energy.power_w;
      w_f64 b e.Energy.cmos_energy_per_cycle_j;
      w_f64 b e.Energy.efficiency_gain)
    (fun r ->
      let jj_count = r_int r in
      let gate_count = r_int r in
      let energy_per_cycle_j = r_f64 r in
      let power_w = r_f64 r in
      let cmos_energy_per_cycle_j = r_f64 r in
      let efficiency_gain = r_f64 r in
      {
        Energy.jj_count;
        gate_count;
        energy_per_cycle_j;
        power_w;
        cmos_energy_per_cycle_j;
        efficiency_gain;
      })

(* ---- diagnostics (embedded in reports) ---- *)

let w_severity b = function
  | Diag.Error -> w_u8 b 0
  | Diag.Warning -> w_u8 b 1
  | Diag.Info -> w_u8 b 2

let r_severity r =
  match r_u8 r with
  | 0 -> Diag.Error
  | 1 -> Diag.Warning
  | 2 -> Diag.Info
  | t -> raise (Corrupt (Printf.sprintf "unknown severity tag %d" t))

let w_loc b = function
  | Diag.Node i ->
      w_u8 b 0;
      w_int b i
  | Diag.Net i ->
      w_u8 b 1;
      w_int b i
  | Diag.Row i ->
      w_u8 b 2;
      w_int b i
  | Diag.At (x, y) ->
      w_u8 b 3;
      w_f64 b x;
      w_f64 b y
  | Diag.Global -> w_u8 b 4

let r_loc r =
  match r_u8 r with
  | 0 -> Diag.Node (r_int r)
  | 1 -> Diag.Net (r_int r)
  | 2 -> Diag.Row (r_int r)
  | 3 ->
      let x = r_f64 r in
      let y = r_f64 r in
      Diag.At (x, y)
  | 4 -> Diag.Global
  | t -> raise (Corrupt (Printf.sprintf "unknown location tag %d" t))

let w_diag b (d : Diag.t) =
  w_string b d.Diag.rule;
  w_severity b d.Diag.severity;
  w_loc b d.Diag.loc;
  w_string b d.Diag.message;
  w_list w_string b d.Diag.witness

let r_diag r =
  let rule = r_string r in
  let severity = r_severity r in
  let loc = r_loc r in
  let message = r_string r in
  let witness = r_list r_string r in
  { Diag.rule; severity; loc; message; witness }

(* bare diagnostic lists: the absint memo entries in the proof store *)
let diags =
  make ~kind:"diags" ~version:1
    (fun b ds -> w_list w_diag b ds)
    (fun r -> r_list r_diag r)

(* ---- synthesis report ---- *)

let synth_report =
  (* v2: embedded diagnostics gained the witness field *)
  make ~kind:"synth-report" ~version:2
    (fun b (s : Synth_flow.report) ->
      w_int b s.Synth_flow.jjs;
      w_int b s.Synth_flow.nets;
      w_int b s.Synth_flow.delay;
      w_int b s.Synth_flow.opt_stats.Opt.nodes_before;
      w_int b s.Synth_flow.opt_stats.Opt.nodes_after;
      w_int b s.Synth_flow.opt_stats.Opt.iterations;
      w_int b s.Synth_flow.maj_stats.Aoi_to_maj.aoi_gates;
      w_int b s.Synth_flow.maj_stats.Aoi_to_maj.maj_gates;
      w_int b s.Synth_flow.maj_stats.Aoi_to_maj.jj_before;
      w_int b s.Synth_flow.maj_stats.Aoi_to_maj.jj_after;
      w_int b s.Synth_flow.ins_stats.Insertion.splitters;
      w_int b s.Synth_flow.ins_stats.Insertion.buffers;
      w_int b s.Synth_flow.ins_stats.Insertion.delay;
      w_int b s.Synth_flow.ins_stats.Insertion.jj;
      w_int b s.Synth_flow.ins_stats.Insertion.nets;
      w_list w_diag b s.Synth_flow.guard_diags)
    (fun r ->
      let jjs = r_int r in
      let nets = r_int r in
      let delay = r_int r in
      let nodes_before = r_int r in
      let nodes_after = r_int r in
      let iterations = r_int r in
      let opt_stats = { Opt.nodes_before; nodes_after; iterations } in
      let aoi_gates = r_int r in
      let maj_gates = r_int r in
      let jj_before = r_int r in
      let jj_after = r_int r in
      let maj_stats = { Aoi_to_maj.aoi_gates; maj_gates; jj_before; jj_after } in
      let splitters = r_int r in
      let buffers = r_int r in
      let delay' = r_int r in
      let jj = r_int r in
      let nets' = r_int r in
      let ins_stats =
        { Insertion.splitters; buffers; delay = delay'; jj; nets = nets' }
      in
      let guard_diags = r_list r_diag r in
      {
        Synth_flow.jjs;
        nets;
        delay;
        opt_stats;
        maj_stats;
        ins_stats;
        guard_diags;
      })

(* ---- resynthesis report ---- *)

let effort_tag = function Resyn.Off -> 0 | Resyn.Fast -> 1 | Resyn.Full -> 2

let effort_of_tag = function
  | 0 -> Resyn.Off
  | 1 -> Resyn.Fast
  | 2 -> Resyn.Full
  | t -> raise (Corrupt (Printf.sprintf "unknown resyn effort tag %d" t))

let resyn_report =
  make ~kind:"resyn-report" ~version:1
    (fun b (s : Resyn.report) ->
      w_u8 b (effort_tag s.Resyn.effort);
      w_int b s.Resyn.rounds;
      w_int b s.Resyn.maj_before;
      w_int b s.Resyn.maj_after;
      w_int b s.Resyn.jj_before;
      w_int b s.Resyn.jj_after;
      w_int b s.Resyn.depth_before;
      w_int b s.Resyn.depth_after;
      w_int b s.Resyn.buffers_before;
      w_int b s.Resyn.buffers_after;
      w_int b s.Resyn.splitters_before;
      w_int b s.Resyn.splitters_after;
      w_list
        (fun b (p : Resyn.pass_stat) ->
          w_string b p.Resyn.pass;
          w_int b p.Resyn.iterations;
          w_int b p.Resyn.tried;
          w_int b p.Resyn.accepted)
        b s.Resyn.passes;
      w_int b s.Resyn.cec.Resyn.windows;
      w_int b s.Resyn.cec.Resyn.proved;
      w_int b s.Resyn.cec.Resyn.cached;
      w_int b s.Resyn.cec.Resyn.memoized;
      w_int b s.Resyn.cec.Resyn.failed;
      w_list w_diag b s.Resyn.diags)
    (fun r ->
      let effort = effort_of_tag (r_u8 r) in
      let rounds = r_int r in
      let maj_before = r_int r in
      let maj_after = r_int r in
      let jj_before = r_int r in
      let jj_after = r_int r in
      let depth_before = r_int r in
      let depth_after = r_int r in
      let buffers_before = r_int r in
      let buffers_after = r_int r in
      let splitters_before = r_int r in
      let splitters_after = r_int r in
      let passes =
        r_list
          (fun r ->
            let pass = r_string r in
            let iterations = r_int r in
            let tried = r_int r in
            let accepted = r_int r in
            { Resyn.pass; iterations; tried; accepted })
          r
      in
      let windows = r_int r in
      let proved = r_int r in
      let cached = r_int r in
      let memoized = r_int r in
      let failed = r_int r in
      let cec = { Resyn.windows; proved; cached; memoized; failed } in
      let diags = r_list r_diag r in
      {
        Resyn.effort;
        rounds;
        maj_before;
        maj_after;
        jj_before;
        jj_after;
        depth_before;
        depth_after;
        buffers_before;
        buffers_after;
        splitters_before;
        splitters_after;
        passes;
        cec;
        diags;
      })

(* ---- checker report ---- *)

let check_report =
  (* v2: report header (tier/engine) + diagnostic witnesses *)
  make ~kind:"check-report" ~version:2
    (fun b (rep : Check.report) ->
      w_list
        (fun b (k, v) ->
          w_string b k;
          w_string b v)
        b rep.Check.header;
      w_list w_diag b rep.Check.diags;
      w_list
        (fun b (s : Check.pass_stat) ->
          w_string b s.Check.pass_name;
          w_int b s.Check.n_diags;
          w_f64 b s.Check.seconds)
        b rep.Check.stats)
    (fun r ->
      let header =
        r_list
          (fun r ->
            let k = r_string r in
            let v = r_string r in
            (k, v))
          r
      in
      let diags = r_list r_diag r in
      let stats =
        r_list
          (fun r ->
            let pass_name = r_string r in
            let n_diags = r_int r in
            let seconds = r_f64 r in
            { Check.pass_name; n_diags; seconds })
          r
      in
      { Check.header; diags; stats })

(* ---- DRC violations ---- *)

let drc =
  (* v2: full witness-carrying diagnostics (the old ad-hoc
     rule/point/detail triple is gone with the string-rule checker) *)
  make ~kind:"drc" ~version:2
    (fun b ds -> w_list w_diag b ds)
    (fun r -> r_list r_diag r)
