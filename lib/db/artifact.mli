(** Versioned binary codecs for every stage handoff of the flow.

    One [encode_x] / [decode_x] / [save_x] / [load_x] quartet per
    artifact: the AOI/MAJ/AQFP netlist IR, the placement problem (with
    its technology and cell library embedded), the placement /
    routing / STA / energy / synthesis / checker reports, the DRC
    violation list and the assembled layout.

    Guarantees (tested property-style over the bundled benchmarks):
    - {e exact round-trip}: [decode (encode x)] rebuilds a value whose
      re-encoding is byte-identical to the first encoding — floats
      travel as IEEE-754 bit patterns, never through text;
    - {e loud failure}: corrupt, truncated or version-skewed bytes
      produce a structured [DB-*] {!Diag.t} error (see {!Codec}),
      never an exception escape;
    - {e versioning}: each kind carries its own format version;
      bumping it invalidates old artifacts (and, transitively, every
      cache entry keyed on them). *)

type 'a codec = {
  kind : string;  (** frame kind tag, e.g. ["netlist"] *)
  version : int;
  encode : 'a -> string;  (** sealed frame bytes *)
  decode : string -> ('a, Diag.t) result;
}

val save : 'a codec -> string -> 'a -> unit
(** [save c path v] — atomic file write of [c.encode v]. *)

val load : 'a codec -> string -> ('a, Diag.t) result

val netlist : Netlist.t codec
val tech : Tech.t codec
val problem : Problem.t codec
val placement : Placer.result codec
val routing : Router.result codec
val layout : Layout.t codec
val sta : Sta.report codec
val energy : Energy.report codec
val synth_report : Synth_flow.report codec
val resyn_report : Resyn.report codec
val check_report : Check.report codec
val drc : Diag.t list codec

val diags : Diag.t list codec
(** A bare diagnostic list — the payload of the [sf_absint] memo
    entries in the proof store. *)
