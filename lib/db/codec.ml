(* Binary primitives + the sealed artifact frame. Everything is
   fixed-width little-endian so encoding is deterministic and
   re-encoding a decoded value reproduces the input bytes exactly. *)

let err ~rule fmt = Diag.error ~rule Diag.Global fmt

(* ---- writing ---- *)

type writer = Buffer.t

let writer () = Buffer.create 4096
let w_bool b v = Buffer.add_uint8 b (if v then 1 else 0)

let w_u8 b v =
  if v < 0 || v > 255 then invalid_arg "Codec.w_u8";
  Buffer.add_uint8 b v

let w_int b v = Buffer.add_int64_le b (Int64.of_int v)
let w_f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let w_string b s =
  w_int b (String.length s);
  Buffer.add_string b s

let w_opt f b = function
  | None -> w_bool b false
  | Some v ->
      w_bool b true;
      f b v

let w_array f b a =
  w_int b (Array.length a);
  Array.iter (f b) a

let w_list f b l =
  w_int b (List.length l);
  List.iter (f b) l

let w_pair fa fb b (x, y) =
  fa b x;
  fb b y

let contents = Buffer.contents

(* ---- reading ---- *)

type reader = { buf : string; mutable pos : int; limit : int }

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let need r n =
  if n < 0 || r.pos + n > r.limit then
    corrupt "payload truncated at byte %d (need %d of %d)" r.pos n r.limit

let r_u8 r =
  need r 1;
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> corrupt "bad bool byte %d" v

let r_int r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.buf r.pos) in
  r.pos <- r.pos + 8;
  v

let r_f64 r =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_le r.buf r.pos) in
  r.pos <- r.pos + 8;
  v

let r_string r =
  let n = r_int r in
  need r n;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let r_opt f r = if r_bool r then Some (f r) else None

(* every element is at least one byte, so a length beyond the
   remaining payload can only come from corruption — checking here
   keeps a flipped length byte from attempting a giant allocation *)
let r_len r =
  let n = r_int r in
  if n < 0 || n > r.limit - r.pos then corrupt "bad collection length %d" n;
  n

let r_array f r =
  let n = r_len r in
  Array.init n (fun _ -> f r)

let r_list f r =
  let n = r_len r in
  List.init n (fun _ -> f r)

let r_pair fa fb r =
  let x = fa r in
  let y = fb r in
  (x, y)

(* ---- container frames ---- *)

let magic = "SFDB"

let seal ~kind ~version payload =
  let b = Buffer.create (String.length payload + 64) in
  Buffer.add_string b magic;
  Buffer.add_uint16_le b (String.length kind);
  Buffer.add_string b kind;
  Buffer.add_uint16_le b version;
  Buffer.add_int64_le b (Int64.of_int (String.length payload));
  Buffer.add_string b payload;
  Buffer.add_string b (Digest.string payload);
  Buffer.contents b

let split bytes =
  let total = String.length bytes in
  if total < 4 || String.sub bytes 0 4 <> magic then
    Error (err ~rule:"DB-MAGIC-01" "not an sf_db artifact (bad magic)")
  else if total < 6 then
    Error (err ~rule:"DB-TRUNC-01" "artifact truncated inside the header")
  else
    let klen = String.get_uint16_le bytes 4 in
    let header = 4 + 2 + klen + 2 + 8 in
    if total < header then
      Error (err ~rule:"DB-TRUNC-01" "artifact truncated inside the header")
    else
      let kind = String.sub bytes 6 klen in
      let version = String.get_uint16_le bytes (6 + klen) in
      let plen = Int64.to_int (String.get_int64_le bytes (8 + klen)) in
      if plen < 0 || total <> header + plen + 16 then
        Error
          (err ~rule:"DB-TRUNC-01"
             "%S artifact truncated: %d payload byte(s) expected, %d present"
             kind plen
             (max 0 (total - header - 16)))
      else
        let payload = String.sub bytes header plen in
        let checksum = String.sub bytes (header + plen) 16 in
        if Digest.string payload <> checksum then
          Error
            (err ~rule:"DB-CKSUM-01" "%S artifact failed its checksum" kind)
        else Ok (kind, version, payload)

let encode ~kind ~version f =
  let b = writer () in
  f b;
  seal ~kind ~version (contents b)

let decode ~kind ~version f bytes =
  match split bytes with
  | Error _ as e -> e
  | Ok (k, v, payload) ->
      if k <> kind then
        Error
          (err ~rule:"DB-KIND-01" "expected a %S artifact, found %S" kind k)
      else if v <> version then
        Error
          (err ~rule:"DB-VERSION-01"
             "%S artifact has format version %d, this build reads %d" kind v
             version)
      else begin
        let r = { buf = payload; pos = 0; limit = String.length payload } in
        match f r with
        | value ->
            if r.pos <> r.limit then
              Error
                (err ~rule:"DB-PARSE-01"
                   "%S artifact has %d trailing byte(s)" kind (r.limit - r.pos))
            else Ok value
        | exception Corrupt msg ->
            Error (err ~rule:"DB-PARSE-01" "%S artifact: %s" kind msg)
        | exception exn ->
            Error
              (err ~rule:"DB-PARSE-01" "%S artifact: %s" kind
                 (Printexc.to_string exn))
      end

(* ---- files ---- *)

let save_file path bytes =
  let dir = Filename.dirname path in
  let tmp =
    Filename.temp_file ~temp_dir:dir "." (Filename.basename path ^ ".tmp")
  in
  let oc = open_out_bin tmp in
  output_string oc bytes;
  close_out oc;
  Sys.rename tmp path

let load_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error (err ~rule:"DB-IO-01" "%s" msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | bytes -> Ok bytes
          | exception End_of_file ->
              Error (err ~rule:"DB-IO-01" "%s: unreadable" path))
