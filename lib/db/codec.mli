(** Deterministic binary codec primitives and the sf_db artifact
    container.

    Every persisted artifact is one {e sealed} frame:

    {v
    "SFDB"            magic, 4 bytes
    u16le             kind length, then the kind bytes (e.g. "netlist")
    u16le             format version of that kind
    i64le             payload length in bytes
    payload           kind-specific body (the combinators below)
    16 bytes          MD5 of the payload
    v}

    Integers are fixed-width little-endian (OCaml ints as i64), floats
    are their IEEE-754 bit patterns — encoding is a pure function of
    the value, so [encode (decode (encode x)) = encode x] exactly.

    Loading never lets an exception escape: a corrupt, truncated,
    mis-typed or version-skewed frame comes back as a structured
    {!Diag.t} error with a stable [DB-*] rule id ([DB-MAGIC-01],
    [DB-KIND-01], [DB-VERSION-01], [DB-TRUNC-01], [DB-CKSUM-01],
    [DB-PARSE-01], [DB-IO-01]). *)

(** {1 Writing} *)

type writer

val writer : unit -> writer
val w_bool : writer -> bool -> unit
val w_u8 : writer -> int -> unit
val w_int : writer -> int -> unit
val w_f64 : writer -> float -> unit
val w_string : writer -> string -> unit
val w_opt : (writer -> 'a -> unit) -> writer -> 'a option -> unit
val w_array : (writer -> 'a -> unit) -> writer -> 'a array -> unit
val w_list : (writer -> 'a -> unit) -> writer -> 'a list -> unit
val w_pair :
  (writer -> 'a -> unit) -> (writer -> 'b -> unit) -> writer -> 'a * 'b -> unit
val contents : writer -> string

(** {1 Reading} *)

type reader

exception Corrupt of string
(** Raised by the [r_*] primitives on malformed payload bytes; callers
    outside this module never see it — {!decode} converts it into a
    [DB-PARSE-01] diagnostic. *)

val r_bool : reader -> bool
val r_u8 : reader -> int
val r_int : reader -> int
val r_f64 : reader -> float
val r_string : reader -> string
val r_opt : (reader -> 'a) -> reader -> 'a option
val r_array : (reader -> 'a) -> reader -> 'a array
val r_list : (reader -> 'a) -> reader -> 'a list
val r_pair : (reader -> 'a) -> (reader -> 'b) -> reader -> 'a * 'b

(** {1 Container frames} *)

val seal : kind:string -> version:int -> string -> string
(** Frame a payload: magic, kind, version, length, payload, checksum. *)

val split : string -> (string * int * string, Diag.t) result
(** Open any frame: [(kind, version, payload)] after validating magic,
    completeness and checksum. *)

val encode : kind:string -> version:int -> (writer -> unit) -> string
(** Build a payload with a fresh writer and {!seal} it. *)

val decode :
  kind:string -> version:int -> (reader -> 'a) -> string -> ('a, Diag.t) result
(** Open a frame, check its kind and version against the expectation,
    then run the payload decoder. Trailing payload bytes, [Corrupt],
    and any exception the decoder raises all come back as structured
    errors. *)

(** {1 Files} *)

val save_file : string -> string -> unit
(** Atomic write: the bytes land under a temporary name in the target
    directory and are renamed into place, so a killed process never
    leaves a half-written artifact. *)

val load_file : string -> (string, Diag.t) result
(** Read a whole file; missing/unreadable files are a [DB-IO-01]
    error, not an exception. *)

val err : rule:string -> ('a, unit, string, Diag.t) format4 -> 'a
(** A [DB-*] error diagnostic (severity [Error], location [Global]). *)
