(* Content-addressed artifact store + stage-cache manifests. *)

type outcome = Hit | Miss

type t = {
  dir : string;
  mutable log : (string * outcome * float) list; (* reversed *)
  mutable warns : Diag.t list; (* reversed *)
}

let format_stamp = "sf_db 1\n"

let ( / ) = Filename.concat

let mkdir_p path =
  if not (Sys.file_exists path) then begin
    let parent = Filename.dirname path in
    if parent <> path && not (Sys.file_exists parent) then
      ignore (Sys.command (Printf.sprintf "mkdir -p %s" (Filename.quote parent)));
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ dir =
  let meta = dir / "meta" in
  if Sys.file_exists dir && not (Sys.is_directory dir) then
    Error (Codec.err ~rule:"DB-DIR-01" "%s exists and is not a directory" dir)
  else if Sys.file_exists meta then begin
    match Codec.load_file meta with
    | Error _ as e -> e |> Result.map (fun _ -> assert false)
    | Ok stamp ->
        if stamp <> format_stamp then
          Error
            (Codec.err ~rule:"DB-VERSION-01"
               "%s: unsupported database format %S" dir (String.trim stamp))
        else Ok { dir; log = []; warns = [] }
  end
  else if
    Sys.file_exists dir && Sys.readdir dir <> [||]
  then
    Error
      (Codec.err ~rule:"DB-DIR-01"
         "%s is a non-empty directory without an sf_db format stamp" dir)
  else begin
    mkdir_p dir;
    mkdir_p (dir / "objects");
    mkdir_p (dir / "stages");
    Codec.save_file meta format_stamp;
    Ok { dir; log = []; warns = [] }
  end

let dir t = t.dir

let hash bytes = Digest.to_hex (Digest.string bytes)

let stage_key parts =
  let b = Buffer.create 128 in
  List.iter
    (fun p ->
      Buffer.add_string b (string_of_int (String.length p));
      Buffer.add_char b ':';
      Buffer.add_string b p)
    parts;
  hash (Buffer.contents b)

let object_path t h = t.dir / "objects" / (h ^ ".sfo")

let put_object t bytes =
  let h = hash bytes in
  let path = object_path t h in
  (* an existing file only counts if its bytes still match the content
     address — this is what heals an object a previous run (or a
     crash) left corrupt *)
  let intact =
    Sys.file_exists path
    && match Codec.load_file path with Ok b -> hash b = h | Error _ -> false
  in
  if not intact then Codec.save_file path bytes;
  h

let get_object t h =
  match Codec.load_file (object_path t h) with
  | Error d ->
      Error
        { d with Diag.message = Printf.sprintf "object %s: %s" h d.Diag.message }
  | Ok bytes ->
      if hash bytes <> h then
        Error
          (Codec.err ~rule:"DB-CKSUM-01"
             "object %s does not match its content address" h)
      else Ok bytes

(* manifests are plain artifacts of their own kind *)

let manifest_path t ~stage ~key = t.dir / "stages" / (stage ^ "." ^ key ^ ".sfm")

let manifest_bytes slots scalars =
  Codec.encode ~kind:"manifest" ~version:1 (fun b ->
      Codec.w_list (Codec.w_pair Codec.w_string Codec.w_string) b slots;
      Codec.w_list
        (Codec.w_pair Codec.w_string (fun b i -> Codec.w_int b i))
        b scalars)

let manifest_decode bytes =
  Codec.decode ~kind:"manifest" ~version:1
    (fun r ->
      let slots = Codec.r_list (Codec.r_pair Codec.r_string Codec.r_string) r in
      let scalars =
        Codec.r_list (Codec.r_pair Codec.r_string (fun r -> Codec.r_int r)) r
      in
      (slots, scalars))
    bytes

let warn t d = t.warns <- d :: t.warns
let warnings t = List.rev t.warns

let put_stage t ~stage ~key ~slots ~scalars =
  Codec.save_file (manifest_path t ~stage ~key) (manifest_bytes slots scalars)

let get_stage t ~stage ~key =
  let path = manifest_path t ~stage ~key in
  if not (Sys.file_exists path) then None
  else
    match Result.bind (Codec.load_file path) manifest_decode with
    | Ok entry -> Some entry
    | Error d ->
        (* self-healing: report, then let the stage recompute and
           overwrite the bad entry *)
        warn t
          {
            d with
            Diag.severity = Diag.Warning;
            message =
              Printf.sprintf "stage %s: corrupt cache entry ignored (%s)" stage
                d.Diag.message;
          };
        None

let record t stage outcome seconds =
  t.log <- (stage, outcome, seconds) :: t.log

let outcomes t = List.rev t.log

let hits t =
  List.length (List.filter (fun (_, o, _) -> o = Hit) t.log)

let misses t =
  List.length (List.filter (fun (_, o, _) -> o = Miss) t.log)

let reset_log t =
  t.log <- [];
  t.warns <- []

(* Proof-verdict memos: tiny manifests under the "proof" stage whose
   single slot points at the verdict bytes in the object store (all
   "equal" proofs share one object). The caller's key is an arbitrary
   content-derived string; it is hashed into the manifest name. *)

let put_proof t ~key verdict =
  let h = put_object t verdict in
  put_stage t ~stage:"proof" ~key:(hash key) ~slots:[ ("verdict", h) ]
    ~scalars:[]

let find_proof t ~key =
  match get_stage t ~stage:"proof" ~key:(hash key) with
  | None -> None
  | Some (slots, _) -> (
      match List.assoc_opt "verdict" slots with
      | None -> None
      | Some h -> (
          match get_object t h with Ok v -> Some v | Error _ -> None))
