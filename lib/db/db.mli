(** The persistent design database: a content-addressed object store
    plus stage-cache manifests, backing incremental flows.

    On-disk layout of a database directory:

    {v
    DIR/
      meta                     format stamp ("sf_db 1"), checked on open
      objects/<md5>.sfo        immutable artifacts, content-addressed
                               (the md5 is over the full sealed frame)
      stages/<stage>.<key>.sfm one manifest per cached stage execution:
                               output-slot -> object hash, plus small
                               scalar outputs (e.g. DRC fix rounds)
    v}

    A stage's [key] is the MD5 of its input-artifact hashes and every
    parameter that affects its result (see {!stage_key}); the worker
    pool size ([--jobs]) is {e never} part of a key because stage
    results are bit-identical at any pool size. All writes are atomic
    (temp file + rename), so a run killed mid-flow leaves only whole
    artifacts behind and the next run resumes from the last persisted
    stage.

    Corrupt cache entries are self-healing: a manifest or object that
    fails validation is reported as a {!warnings} diagnostic and
    treated as a miss, so the stage recomputes and overwrites it. *)

type t

type outcome = Hit | Miss

val open_ : string -> (t, Diag.t) result
(** Open (creating if needed) a database directory. Fails with
    [DB-DIR-01] when the path exists but is not an sf_db directory,
    or with [DB-VERSION-01] on a format-stamp mismatch. *)

val dir : t -> string

val hash : string -> string
(** MD5 of the given bytes, in hex — the content address. *)

val stage_key : string list -> string
(** Cache key from an ordered list of parts (input hashes and
    parameter strings); parts are length-prefixed before hashing so
    distinct lists never collide by concatenation. *)

val put_object : t -> string -> string
(** Store sealed artifact bytes, returning their hash. Existing
    objects are not rewritten (content-addressing makes them
    immutable). *)

val get_object : t -> string -> (string, Diag.t) result

val put_stage :
  t ->
  stage:string ->
  key:string ->
  slots:(string * string) list ->
  scalars:(string * int) list ->
  unit
(** Record a stage execution: named output objects plus scalar
    outputs. *)

val get_stage :
  t ->
  stage:string ->
  key:string ->
  ((string * string) list * (string * int) list) option
(** Look up a cached stage execution. [None] on a genuine miss {e or}
    on a corrupt manifest (which is also recorded via {!warnings}). *)

(** {1 Proof cache} *)

val put_proof : t -> key:string -> string -> unit
(** Memoize an equivalence-proof verdict under a caller-chosen
    content-derived key (the equivalence engine keys on the hashes of
    the two cones). Verdict bytes land in the object store, so
    identical verdicts are shared. *)

val find_proof : t -> key:string -> string option
(** Look up a memoized verdict; [None] on a miss or any corrupt
    entry (which self-heals like every other stage entry). *)

(** {1 Run log} *)

val record : t -> string -> outcome -> float -> unit
(** Append a stage outcome (and its load/compute seconds) to the run
    log. Called by the flow engine. *)

val outcomes : t -> (string * outcome * float) list
(** Stage outcomes in run order since {!open_} / {!reset_log}. *)

val hits : t -> int
val misses : t -> int
val reset_log : t -> unit

val warn : t -> Diag.t -> unit
val warnings : t -> Diag.t list
(** Non-fatal findings (corrupt entries healed by recomputation), in
    occurrence order. *)
