(* Determinism sanitizer and data-race detector for the Parallel
   substrate.

   The flow's contract is byte-identical output at any --jobs. The
   jobs=1-vs-4 cmp tests enforce it end-to-end but cannot localize a
   violation, and a race that needs an unlucky schedule can survive
   them for months. This module attacks the contract from inside:

   - schedule fuzzing: a seeded permutation of each batch's chunk
     execution order (the combine order never moves, so any output
     difference under a permuted schedule is a proven bug);
   - write-set race detection: {!Tracked_array} views attribute every
     access to the chunk that made it and report ownership violations
     and cross-chunk write-write / read-write overlaps with witnesses;
   - a combine/grouping audit for [parallel_reduce] (serial replay,
     wired in Parallel itself) plus nested-call and stale-epoch checks.

   Everything is gated on one atomic flag, so with the sanitizer off a
   tracked access costs a single load-and-branch. *)

type finding = {
  f_rule : string;
  f_site : string;  (* Parallel call-site label, or "-" *)
  f_array : string;  (* tracked array label, or "-" *)
  f_chunk_a : int;  (* -1 when not chunk-specific *)
  f_chunk_b : int;
  f_index : int;  (* -1 when not index-specific *)
  f_detail : string;
}

let compare_finding a b = Stdlib.compare a b

let finding_to_string f =
  let b = Buffer.create 80 in
  Buffer.add_string b (Printf.sprintf "%s at %s" f.f_rule f.f_site);
  if f.f_array <> "-" then Buffer.add_string b (" array " ^ f.f_array);
  if f.f_chunk_a >= 0 then
    if f.f_chunk_b >= 0 && f.f_chunk_b <> f.f_chunk_a then
      Buffer.add_string b
        (Printf.sprintf " chunks %d/%d" f.f_chunk_a f.f_chunk_b)
    else Buffer.add_string b (Printf.sprintf " chunk %d" f.f_chunk_a);
  if f.f_index >= 0 then Buffer.add_string b (Printf.sprintf " index %d" f.f_index);
  Buffer.add_string b (": " ^ f.f_detail);
  Buffer.contents b

let to_diag f =
  let witness =
    List.filter
      (fun s -> s <> "")
      [
        "site " ^ f.f_site;
        (if f.f_array <> "-" then "array " ^ f.f_array else "");
        (if f.f_chunk_a >= 0 then
           if f.f_chunk_b >= 0 && f.f_chunk_b <> f.f_chunk_a then
             Printf.sprintf "chunks %d and %d" f.f_chunk_a f.f_chunk_b
           else Printf.sprintf "chunk %d" f.f_chunk_a
         else "");
        (if f.f_index >= 0 then Printf.sprintf "index %d" f.f_index else "");
      ]
  in
  let ctor = if f.f_rule = "DSAN-NEST-01" then Diag.warning else Diag.error in
  ctor ~witness ~rule:f.f_rule Diag.Global "%s" f.f_detail

(* ---- session state ----

   One global session at a time (the sanitizer wraps whole flow runs).
   [active] is the fast-path gate; [mutex] orders everything else.
   Tracked accesses from worker domains happen strictly between
   [h_batch_start] and [h_batch_end] on the submitting domain, and the
   pool's own synchronization gives the happens-before edges. *)

(* sanitizer arm/disarm flag, read-only on the hot path.
   sl-ignore: SL-GLOBAL-01 listed in the determinism-contract table *)
let active = Atomic.make false

let on () = Atomic.get active

type fp = { reads : (int, unit) Hashtbl.t; writes : (int, unit) Hashtbl.t }

type session = {
  mutex : Mutex.t;
  seed : int;
  fuzz : bool;
  mutable batch_counter : int;
  mutable findings : finding list;
  mutable batch_label : string;
  (* batch-end analyzers for tracked arrays touched this batch:
     label-keyed so one array wrapped twice is analyzed once *)
  mutable analyzers : (string * (string -> finding list)) list;
  (* (rule, site, array, chunk) combos already reported — immediate
     ownership findings would otherwise flood (one per element) *)
  dedup : (string * string * string * int, unit) Hashtbl.t;
}

(* the one live sanitizer session, guarded by its mutex.
   sl-ignore: SL-GLOBAL-01 listed in the determinism-contract table *)
let session : session option ref = ref None

let with_session f = match !session with None -> () | Some s -> f s

let push_finding s f =
  Mutex.lock s.mutex;
  s.findings <- f :: s.findings;
  Mutex.unlock s.mutex

let push_finding_once s f =
  let key = (f.f_rule, f.f_site, f.f_array, f.f_chunk_a) in
  Mutex.lock s.mutex;
  if not (Hashtbl.mem s.dedup key) then begin
    Hashtbl.add s.dedup key ();
    s.findings <- f :: s.findings
  end;
  Mutex.unlock s.mutex

let record ~rule ?(site = "-") ?(array_label = "-") ?(chunk = -1) ?(index = -1)
    detail =
  with_session (fun s ->
      push_finding_once s
        {
          f_rule = rule;
          f_site = site;
          f_array = array_label;
          f_chunk_a = chunk;
          f_chunk_b = -1;
          f_index = index;
          f_detail = detail;
        })

(* ---- tracked array views ---- *)

type mode = Slice | Read_only | Footprint

type 'a t = {
  t_label : string;
  t_mode : mode;
  data : 'a array;
  foot : (int, fp) Hashtbl.t;  (* chunk -> footprint (Footprint mode) *)
}

(* deterministic batch-end overlap analysis: for every index written
   by two chunks report WW; for every index written by one chunk and
   read by another report RW. One finding per (rule, chunk pair),
   witnessed by the smallest offending index. *)
let analyze_footprints tr site =
  let chunks =
    Hashtbl.fold (fun c _ acc -> c :: acc) tr.foot [] |> List.sort compare
  in
  let writer : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let out : (string * int * int, int) Hashtbl.t = Hashtbl.create 8 in
  let note rule a b ix =
    let a, b = (min a b, max a b) in
    match Hashtbl.find_opt out (rule, a, b) with
    | Some ix' when ix' <= ix -> ()
    | _ -> Hashtbl.replace out (rule, a, b) ix
  in
  let sorted_keys h =
    Hashtbl.fold (fun k () acc -> k :: acc) h [] |> List.sort compare
  in
  List.iter
    (fun c ->
      let fpc = Hashtbl.find tr.foot c in
      List.iter
        (fun ix ->
          (match Hashtbl.find_opt writer ix with
          | Some c' when c' <> c -> note "DSAN-WW-01" c' c ix
          | Some _ -> ()
          | None -> Hashtbl.add writer ix c))
        (sorted_keys fpc.writes))
    chunks;
  List.iter
    (fun c ->
      let fpc = Hashtbl.find tr.foot c in
      List.iter
        (fun ix ->
          match Hashtbl.find_opt writer ix with
          | Some c' when c' <> c -> note "DSAN-RW-01" c' c ix
          | _ -> ())
        (sorted_keys fpc.reads))
    chunks;
  Hashtbl.reset tr.foot;
  Hashtbl.fold
    (fun (rule, a, b) ix acc ->
      {
        f_rule = rule;
        f_site = site;
        f_array = tr.t_label;
        f_chunk_a = a;
        f_chunk_b = b;
        f_index = ix;
        f_detail =
          (if rule = "DSAN-WW-01" then
             Printf.sprintf
               "chunks %d and %d both wrote %s.(%d): last-writer-wins \
                depends on the schedule"
               a b tr.t_label ix
           else
             Printf.sprintf
               "chunk %d wrote %s.(%d) while chunk %d read it: the read's \
                value depends on the schedule"
               a tr.t_label ix b);
      }
      :: acc)
    out []
  |> List.sort compare_finding

let chunk_fp s tr c =
  match Hashtbl.find_opt tr.foot c with
  | Some fp -> fp
  | None ->
      (* creation is racy across chunks, hence the lock; after that the
         footprint is only touched by the one domain running chunk [c] *)
      Mutex.lock s.mutex;
      let fp =
        match Hashtbl.find_opt tr.foot c with
        | Some fp -> fp
        | None ->
            let fp = { reads = Hashtbl.create 64; writes = Hashtbl.create 64 } in
            Hashtbl.add tr.foot c fp;
            if not (List.mem_assoc tr.t_label s.analyzers) then
              s.analyzers <- (tr.t_label, analyze_footprints tr) :: s.analyzers;
            fp
      in
      Mutex.unlock s.mutex;
      fp

let own_violation s tr (cc : Parallel.chunk_ctx) ix what =
  push_finding_once s
    {
      f_rule = "DSAN-OWN-01";
      f_site = cc.Parallel.cc_label;
      f_array = tr.t_label;
      f_chunk_a = cc.Parallel.cc_chunk;
      f_chunk_b = -1;
      f_index = ix;
      f_detail =
        Printf.sprintf "chunk %d (owns [%d,%d)) %s %s.(%d)"
          cc.Parallel.cc_chunk cc.Parallel.cc_lo cc.Parallel.cc_hi what
          tr.t_label ix;
    }

let note_get tr ix =
  with_session (fun s ->
      match Parallel.current_chunk () with
      | None -> ()
      | Some cc -> (
          match tr.t_mode with
          | Slice | Read_only -> ()
          | Footprint ->
              let fp = chunk_fp s tr cc.Parallel.cc_chunk in
              Hashtbl.replace fp.reads ix ()))

let note_set tr ix =
  with_session (fun s ->
      match Parallel.current_chunk () with
      | None -> ()
      | Some cc -> (
          match tr.t_mode with
          | Slice ->
              if ix < cc.Parallel.cc_lo || ix >= cc.Parallel.cc_hi then
                own_violation s tr cc ix "wrote outside its slice:"
          | Read_only -> own_violation s tr cc ix "wrote to read-only view:"
          | Footprint ->
              let fp = chunk_fp s tr cc.Parallel.cc_chunk in
              Hashtbl.replace fp.writes ix ()))

let wrap ~label ~mode data =
  { t_label = label; t_mode = mode; data; foot = Hashtbl.create 8 }

let get tr ix =
  if Atomic.get active then note_get tr ix;
  tr.data.(ix)

let set tr ix v =
  if Atomic.get active then note_set tr ix;
  tr.data.(ix) <- v

let unsafe_data tr = tr.data

let length tr = Array.length tr.data

(* ---- the hooks ---- *)

let fnv_hash s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Int64.to_int !h land max_int

let hooks_of s =
  {
    Parallel.h_batch_start =
      (fun ~label ~n_chunks:_ ->
        s.batch_counter <- s.batch_counter + 1;
        s.batch_label <- label);
    h_permute =
      (fun ~label order ->
        if s.fuzz then begin
          (* a fresh stream per (seed, site, batch ordinal): two calls
             to the same site get different orders, and everything
             replays exactly from the seed *)
          let rng =
            Rng.create (s.seed lxor fnv_hash label lxor (s.batch_counter * 7919))
          in
          Rng.shuffle rng order;
          (* push toward adversarial lane assignment: reversing the
             shuffled tail makes the last-queued chunks (which land on
             the caller's lane first) vary run to run as well *)
          let n = Array.length order in
          if n >= 4 && Rng.bool rng then begin
            let half = n / 2 in
            for i = 0 to (half / 2) - 1 do
              let j = half + i and k = n - 1 - i in
              let t = order.(j) in
              order.(j) <- order.(k);
              order.(k) <- t
            done
          end
        end);
    h_batch_end =
      (fun ~label ->
        let anas = s.analyzers in
        s.analyzers <- [];
        List.iter
          (fun (_, analyze) ->
            let fs = analyze label in
            List.iter (fun f -> push_finding s f) fs)
          anas;
        s.batch_label <- "-");
    h_nested =
      (fun ~label ~outer ->
        push_finding_once s
          {
            f_rule = "DSAN-NEST-01";
            f_site = outer;
            f_array = "-";
            f_chunk_a = -1;
            f_chunk_b = -1;
            f_index = -1;
            f_detail =
              Printf.sprintf
                "parallel call %S made from inside a chunk of %S runs \
                 inline on one lane; hoist it or fuse the loops"
                label outer;
          });
    h_reduce_mismatch =
      (fun ~label ~chunk ->
        push_finding_once s
          {
            f_rule = "DSAN-REDUCE-01";
            f_site = label;
            f_array = "-";
            f_chunk_a = chunk;
            f_chunk_b = -1;
            f_index = -1;
            f_detail =
              Printf.sprintf
                "reduce chunk %d produced a different partial when \
                 replayed serially: map/combine reads state another \
                 chunk can write"
                chunk;
          });
  }

let start ?(seed = 0) ?(fuzz = true) () =
  if !session <> None then invalid_arg "Dsan.start: session already active";
  let s =
    {
      mutex = Mutex.create ();
      seed;
      fuzz;
      batch_counter = 0;
      findings = [];
      batch_label = "-";
      analyzers = [];
      dedup = Hashtbl.create 16;
    }
  in
  session := Some s;
  Parallel.set_hooks (Some (hooks_of s));
  Atomic.set active true

let stop () =
  match !session with
  | None -> []
  | Some s ->
      Atomic.set active false;
      Parallel.set_hooks None;
      session := None;
      List.sort_uniq compare_finding s.findings

let findings () =
  match !session with
  | None -> []
  | Some s ->
      Mutex.lock s.mutex;
      let fs = s.findings in
      Mutex.unlock s.mutex;
      List.sort_uniq compare_finding fs

(* ---- schedule fuzz-compare driver ---- *)

let with_sanitizer ?seed ?fuzz f =
  start ?seed ?fuzz ();
  let r = try f () with e -> ignore (stop ()); raise e in
  (r, stop ())

let schedule_check ?(seed = 0) ?(schedules = 4) ~equal f =
  let baseline, base_findings = with_sanitizer ~seed ~fuzz:false f in
  let findings = ref base_findings in
  for k = 1 to schedules do
    let r, fs = with_sanitizer ~seed:(seed + (k * 0x9e3779b9)) ~fuzz:true f in
    findings := fs @ !findings;
    if not (equal baseline r) then
      findings :=
        {
          f_rule = "DSAN-SCHED-01";
          f_site = "-";
          f_array = "-";
          f_chunk_a = -1;
          f_chunk_b = -1;
          f_index = -1;
          f_detail =
            Printf.sprintf
              "output differs under fuzzed schedule %d of %d (seed %d): \
               the result depends on chunk execution order"
              k schedules (seed + (k * 0x9e3779b9));
        }
        :: !findings
  done;
  (baseline, List.sort_uniq compare_finding !findings)
