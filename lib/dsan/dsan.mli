(** Determinism sanitizer and data-race detector for the
    {!Parallel} substrate.

    The flow's contract is byte-identical output at any [--jobs]; the
    end-to-end jobs=1-vs-4 comparison tests enforce it but can neither
    localize a violation nor catch one that needs an unlucky schedule.
    This module attacks the contract from inside a run:

    - {e schedule fuzzing}: a seeded permutation of each batch's chunk
      execution order (the combine order never moves, so any output
      difference under a permuted schedule is a proven determinism
      bug);
    - {e write-set race detection}: {!wrap}ped array views attribute
      every access to the chunk that made it, reporting ownership
      violations ([DSAN-OWN-01]) and cross-chunk write-write /
      read-write overlaps ([DSAN-WW-01] / [DSAN-RW-01]) with witnesses
      (call-site label, chunk ids, index);
    - a combine/grouping audit for [parallel_reduce]
      ([DSAN-REDUCE-01], serial replay comparison, wired inside
      [Parallel]), nested-call detection ([DSAN-NEST-01]) and
      stale-arena-epoch checks ([DSAN-EPOCH-01], via {!record}).

    All checks are gated on one atomic flag ({!on}); with the
    sanitizer off a tracked access costs a single load-and-branch and
    the flow's output is untouched. *)

(** {1 Findings} *)

type finding = {
  f_rule : string;  (** stable [DSAN-*] rule id *)
  f_site : string;  (** [Parallel] call-site label, or ["-"] *)
  f_array : string;  (** tracked-array label, or ["-"] *)
  f_chunk_a : int;  (** first involved chunk, or [-1] *)
  f_chunk_b : int;  (** second involved chunk, or [-1] *)
  f_index : int;  (** witnessing array index, or [-1] *)
  f_detail : string;  (** human-readable explanation *)
}

val compare_finding : finding -> finding -> int

val finding_to_string : finding -> string
(** One line, e.g.
    ["DSAN-WW-01 at drc.tiles array tile.bins chunks 2/5 index 17: …"]. *)

val to_diag : finding -> Diag.t
(** Render as a structured diagnostic ([DSAN-NEST-01] is a warning,
    everything else an error). *)

(** {1 Session control} *)

val start : ?seed:int -> ?fuzz:bool -> unit -> unit
(** Activate the sanitizer: install the [Parallel] hooks and arm the
    tracked-array checks. [fuzz] (default [true]) enables the seeded
    schedule permutation. Raises [Invalid_argument] if a session is
    already active. *)

val stop : unit -> finding list
(** Deactivate and return the session's findings, sorted and deduped.
    Idempotent ([[]] when no session is active). *)

val on : unit -> bool
(** Fast-path gate: [true] between {!start} and {!stop}. *)

val findings : unit -> finding list
(** Findings accumulated so far in the active session. *)

val record :
  rule:string ->
  ?site:string ->
  ?array_label:string ->
  ?chunk:int ->
  ?index:int ->
  string ->
  unit
(** Report a finding from instrumented flow code (e.g. the router's
    arena epoch check emits [DSAN-EPOCH-01] through this). Deduped per
    (rule, site, array, chunk); a no-op when no session is active. *)

val with_sanitizer :
  ?seed:int -> ?fuzz:bool -> (unit -> 'a) -> 'a * finding list
(** [with_sanitizer f] runs [f] under {!start}/{!stop} and returns its
    result with the findings. The session is stopped even if [f]
    raises (the findings are then discarded with the exception). *)

val schedule_check :
  ?seed:int -> ?schedules:int -> equal:('a -> 'a -> bool) -> (unit -> 'a) -> 'a * finding list
(** [schedule_check ~equal f] runs [f] once un-fuzzed as the baseline,
    then [schedules] (default 4) more times under distinct seeded
    schedule permutations, comparing each result to the baseline with
    [equal]. Any difference yields a [DSAN-SCHED-01] finding; race
    findings from all runs are merged in. Returns the baseline result
    and the combined findings. *)

(** {1 Tracked array views} *)

type mode =
  | Slice
      (** chunks own exactly their static [\[lo, hi)] index range:
          a write outside it is an immediate [DSAN-OWN-01] *)
  | Read_only
      (** shared input: any write from inside a chunk is an immediate
          [DSAN-OWN-01] *)
  | Footprint
      (** exact per-chunk read/write sets, analyzed at batch end for
          cross-chunk WW ([DSAN-WW-01]) and RW ([DSAN-RW-01])
          overlaps *)

type 'a t
(** An ownership-checked view of an ['a array]. The view aliases the
    underlying array (no copy); {!get}/{!set} check the sanitizer flag
    and delegate. *)

val wrap : label:string -> mode:mode -> 'a array -> 'a t

val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

val unsafe_data : 'a t -> 'a array
(** The underlying array, for serial phases (merge loops, result
    extraction) where per-element checking is pointless. *)

val length : 'a t -> int
