type point = { x : float; y : float }
type rect = { lx : float; ly : float; hx : float; hy : float }

let pt x y = { x; y }

let rect lx ly hx hy =
  if hx < lx || hy < ly then invalid_arg "Geom.rect: negative extent";
  { lx; ly; hx; hy }

let rect_of_size ~x ~y ~w ~h = rect x y (x +. w) (y +. h)

let width r = r.hx -. r.lx
let height r = r.hy -. r.ly
let area r = width r *. height r

let center r = { x = (r.lx +. r.hx) /. 2.0; y = (r.ly +. r.hy) /. 2.0 }

let translate r dx dy =
  { lx = r.lx +. dx; ly = r.ly +. dy; hx = r.hx +. dx; hy = r.hy +. dy }

let overlaps a b = a.lx < b.hx && b.lx < a.hx && a.ly < b.hy && b.ly < a.hy

let contains r p = p.x >= r.lx && p.x < r.hx && p.y >= r.ly && p.y < r.hy

let intersection a b =
  let lx = Float.max a.lx b.lx and ly = Float.max a.ly b.ly in
  let hx = Float.min a.hx b.hx and hy = Float.min a.hy b.hy in
  if hx >= lx && hy >= ly then Some { lx; ly; hx; hy } else None

let union_rect a b =
  { lx = Float.min a.lx b.lx;
    ly = Float.min a.ly b.ly;
    hx = Float.max a.hx b.hx;
    hy = Float.max a.hy b.hy }

let dist_manhattan a b = Float.abs (a.x -. b.x) +. Float.abs (a.y -. b.y)

let gap_1d al ah bl bh =
  if bh < al then al -. bh else if ah < bl then bl -. ah else 0.0

let dist_rect a b =
  gap_1d a.lx a.hx b.lx b.hx +. gap_1d a.ly a.hy b.ly b.hy

let spacing_x a b =
  if a.lx <= b.lx then b.lx -. a.hx else a.lx -. b.hx

let pp_rect ppf r =
  Format.fprintf ppf "[%.1f,%.1f %.1fx%.1f]" r.lx r.ly (width r) (height r)

let pp_point ppf p = Format.fprintf ppf "(%.1f,%.1f)" p.x p.y
