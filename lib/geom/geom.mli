(** 2-D geometry on micrometre coordinates.

    Layout geometry throughout the flow uses floats in µm. Rectangles
    are axis-aligned, closed on the low edge and open on the high edge
    for overlap purposes (two abutting cells do not "overlap"). *)

type point = { x : float; y : float }

type rect = { lx : float; ly : float; hx : float; hy : float }
(** Invariant: [lx <= hx] and [ly <= hy]. *)

val pt : float -> float -> point

val rect : float -> float -> float -> float -> rect
(** [rect lx ly hx hy]; raises [Invalid_argument] if degenerate
    (negative extent). *)

val rect_of_size : x:float -> y:float -> w:float -> h:float -> rect

val width : rect -> float

val height : rect -> float

val area : rect -> float

val center : rect -> point

val translate : rect -> float -> float -> rect

val overlaps : rect -> rect -> bool
(** Strict interior intersection: abutting rectangles don't overlap. *)

val contains : rect -> point -> bool

val intersection : rect -> rect -> rect option

val union_rect : rect -> rect -> rect
(** Bounding box of the two. *)

val dist_manhattan : point -> point -> float

val dist_rect : rect -> rect -> float
(** Minimum Manhattan gap between two rectangles; 0 when they touch or
    overlap. *)

val spacing_x : rect -> rect -> float
(** Horizontal free space between two rectangles ([-] if overlapping in
    x); used by spacing DRC. *)

val pp_rect : Format.formatter -> rect -> unit

val pp_point : Format.formatter -> point -> unit
