let nm_per_um = 1000

let of_um x = int_of_float (Float.round (x *. float_of_int nm_per_um))

let to_um n = float_of_int n /. float_of_int nm_per_um

let um_str n = Printf.sprintf "%.3f" (to_um n)

type irect = { lx : int; ly : int; hx : int; hy : int }

let rect x1 y1 x2 y2 =
  { lx = min x1 x2; ly = min y1 y2; hx = max x1 x2; hy = max y1 y2 }

let width r = r.hx - r.lx
let height r = r.hy - r.ly
let area r = width r * height r

let expand r d = { lx = r.lx - d; ly = r.ly - d; hx = r.hx + d; hy = r.hy + d }

let overlaps a b = a.lx < b.hx && b.lx < a.hx && a.ly < b.hy && b.ly < a.hy

let touches a b = a.lx <= b.hx && b.lx <= a.hx && a.ly <= b.hy && b.ly <= a.hy

let inter a b =
  let lx = max a.lx b.lx and ly = max a.ly b.ly in
  let hx = min a.hx b.hx and hy = min a.hy b.hy in
  if lx <= hx && ly <= hy then Some { lx; ly; hx; hy } else None

let inter_area a b =
  let w = min a.hx b.hx - max a.lx b.lx in
  let h = min a.hy b.hy - max a.ly b.ly in
  if w > 0 && h > 0 then w * h else 0

let contains outer inner =
  outer.lx <= inner.lx && outer.ly <= inner.ly && inner.hx <= outer.hx
  && inner.hy <= outer.hy

let contains_pt r x y = r.lx <= x && x < r.hx && r.ly <= y && y < r.hy

let gap_1d al ah bl bh = if bh < al then al - bh else if ah < bl then bl - ah else 0

let gap_x a b = gap_1d a.lx a.hx b.lx b.hx
let gap_y a b = gap_1d a.ly a.hy b.ly b.hy

let sep2 a b =
  let dx = gap_x a b and dy = gap_y a b in
  (dx * dx) + (dy * dy)

(* midpoint of the overlap (or gap) interval of the two projections;
   integer halving is fine — the point only has to be deterministic and
   lie between the shapes *)
let approach_1d al ah bl bh =
  if bh < al then (bh + al) / 2
  else if ah < bl then (ah + bl) / 2
  else (max al bl + min ah bh) / 2

let approach a b =
  (approach_1d a.lx a.hx b.lx b.hx, approach_1d a.ly a.hy b.ly b.hy)

let on_grid ~grid x = x mod grid = 0

(* closed 1-D cover: the union of [ivs] contains every point of
   [lo, hi] (touching intervals chain) *)
let union_covers lo hi ivs =
  let ivs = List.filter (fun (l, h) -> h >= lo && l <= hi) ivs in
  let cmp_iv (l1, h1) (l2, h2) =
    match Int.compare l1 l2 with 0 -> Int.compare h1 h2 | c -> c
  in
  match List.sort cmp_iv ivs with
  | [] -> false
  | (l0, h0) :: rest ->
      if l0 > lo then false
      else
        let rec go reach = function
          | [] -> reach >= hi
          | (l, h) :: tl ->
              if l > reach then false else go (max reach h) tl
        in
        go h0 rest

(* Scanline cover test. Vertical slab edges only occur at rectangle
   x-coordinates, so inside each open slab the covering set is constant
   and the 2-D question reduces to a 1-D union per slab; the closed
   boundary lines come for free because the rects covering each open
   slab are themselves closed. *)
let covered target by =
  let by = List.filter (fun r -> touches r target) by in
  if target.lx = target.hx then
    (* degenerate vertical line *)
    union_covers target.ly target.hy
      (List.filter_map
         (fun r ->
           if r.lx <= target.lx && target.lx <= r.hx then Some (r.ly, r.hy)
           else None)
         by)
  else begin
    let xs =
      List.concat_map (fun r -> [ r.lx; r.hx ]) by
      |> List.filter (fun x -> x > target.lx && x < target.hx)
      |> List.sort_uniq Int.compare
    in
    let xs = (target.lx :: xs) @ [ target.hx ] in
    let rec slabs = function
      | x0 :: (x1 :: _ as rest) ->
          let ivs =
            List.filter_map
              (fun r -> if r.lx <= x0 && r.hx >= x1 then Some (r.ly, r.hy) else None)
              by
          in
          union_covers target.ly target.hy ivs && slabs rest
      | _ -> true
    in
    slabs xs
  end
