(** Exact geometry on integer nanometre coordinates.

    The float µm world ({!Geom}) is where layout is assembled; DRC and
    LVS convert once at the boundary ([of_um]) and then reason with
    exact integer arithmetic — no epsilons, no accumulated rounding.
    One unit is 1 nm, so the ±2^62 range covers ±4.6 m of silicon. *)

val nm_per_um : int
(** 1000. *)

val of_um : float -> int
(** Round a µm coordinate to the nearest nanometre. *)

val to_um : int -> float

val um_str : int -> string
(** Render a nm coordinate as µm with three decimals ("12.345"). *)

type irect = { lx : int; ly : int; hx : int; hy : int }
(** Closed-interval rectangle in nm; invariant [lx <= hx && ly <= hy].
    Zero width or height is allowed (degenerate shapes keep their
    identity through the pipeline and fail width/area rules instead of
    being silently dropped). *)

val rect : int -> int -> int -> int -> irect
(** Normalizes argument order: [rect x1 y1 x2 y2] takes opposite
    corners in any order. *)

val width : irect -> int
val height : irect -> int
val area : irect -> int
(** Exact area in nm². Fits: a 2 mm × 2 mm rect is 4·10^12 < 2^62. *)

val expand : irect -> int -> irect
(** Grow (or shrink, negative) by [d] on every side. *)

val overlaps : irect -> irect -> bool
(** Positive-area intersection (shared edges/corners do not count). *)

val touches : irect -> irect -> bool
(** Closed intersection: true also when only edges/corners are shared. *)

val inter : irect -> irect -> irect option
(** Closed intersection rectangle (possibly degenerate), if any. *)

val inter_area : irect -> irect -> int
(** Area of the intersection, 0 when disjoint or merely touching. *)

val contains : irect -> irect -> bool
(** [contains outer inner]: closed containment. *)

val contains_pt : irect -> int -> int -> bool
(** Half-open membership ([lx <= x < hx]) — used for tile ownership so
    every point belongs to exactly one tile. *)

val gap_x : irect -> irect -> int
(** Separation of the x-projections; 0 when they overlap or touch. *)

val gap_y : irect -> irect -> int

val sep2 : irect -> irect -> int
(** Squared Euclidean separation [gap_x² + gap_y²] — the corner-aware
    spacing metric: for laterally overlapping shapes it reduces to the
    squared edge gap, for diagonal neighbours it measures the true
    corner-to-corner distance. *)

val approach : irect -> irect -> int * int
(** Canonical closest-approach point of two rectangles: the midpoint of
    the gap (or overlap) interval in each axis. Deterministic and
    symmetric; used to anchor pair violations to a unique tile. *)

val on_grid : grid:int -> int -> bool
(** [x] is a multiple of [grid] (exact; grid > 0). *)

val covered : irect -> irect list -> bool
(** [covered target by]: the union of [by] covers every point of
    [target] (closed semantics). Recursive rectangle subtraction;
    intended for small candidate sets (via enclosure checks). *)
