(* Centered interval tree: each interval lives in exactly one node (the
   highest whose center it straddles), so queries report without
   duplicates and in a deterministic structural order. *)

type node = {
  center : int;
  left : t;
  right : t;
  by_lo : (int * int * int) array; (* (lo, hi, idx), lo ascending *)
  by_hi : (int * int * int) array; (* (hi, lo, idx), hi descending *)
}

and t = Leaf | Node of node

let build intervals =
  let all =
    Array.to_list (Array.mapi (fun i (lo, hi) -> (min lo hi, max lo hi, i)) intervals)
  in
  let rec make = function
    | [] -> Leaf
    | ivs ->
        (* median of endpoints keeps the tree balanced enough *)
        let pts = List.concat_map (fun (lo, hi, _) -> [ lo; hi ]) ivs in
        let sorted = List.sort Int.compare pts in
        let center = List.nth sorted (List.length sorted / 2) in
        let here, left, right =
          List.fold_left
            (fun (here, left, right) ((lo, hi, _) as iv) ->
              if hi < center then (here, iv :: left, right)
              else if lo > center then (here, left, iv :: right)
              else (iv :: here, left, right))
            ([], [], []) ivs
        in
        (* straddling intervals always exist (the median endpoint's own
           interval straddles), so both sides strictly shrink *)
        Node
          {
            center;
            left = make (List.rev left);
            right = make (List.rev right);
            by_lo =
              Array.of_list
                (List.sort
                   (fun (a, _, i) (b, _, j) ->
                     match Int.compare a b with 0 -> Int.compare i j | c -> c)
                   here);
            by_hi =
              Array.of_list
                (List.map (fun (lo, hi, i) -> (hi, lo, i)) here
                |> List.sort (fun (a, _, i) (b, _, j) ->
                       match Int.compare b a with
                       | 0 -> Int.compare j i
                       | c -> c));
          }
  in
  make all

let rec stab t x f =
  match t with
  | Leaf -> ()
  | Node n ->
      if x < n.center then begin
        let k = Array.length n.by_lo in
        let i = ref 0 in
        while !i < k && (let lo, _, _ = n.by_lo.(!i) in lo <= x) do
          let _, _, idx = n.by_lo.(!i) in
          f idx;
          incr i
        done;
        stab n.left x f
      end
      else if x > n.center then begin
        let k = Array.length n.by_hi in
        let i = ref 0 in
        while !i < k && (let hi, _, _ = n.by_hi.(!i) in hi >= x) do
          let _, _, idx = n.by_hi.(!i) in
          f idx;
          incr i
        done;
        stab n.right x f
      end
      else Array.iter (fun (_, _, idx) -> f idx) n.by_lo

let rec query t lo hi f =
  match t with
  | Leaf -> ()
  | Node n ->
      Array.iter
        (fun (l, h, idx) -> if l <= hi && h >= lo then f idx)
        n.by_lo;
      if lo < n.center then query n.left lo hi f;
      if hi > n.center then query n.right lo hi f
