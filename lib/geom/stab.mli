(** Interval stabbing: which of n closed intervals contain a point /
    meet a range? Build O(n log n), query O(log n + k). Used by the DRC
    enclosure and end-of-line rules to find the metal shapes whose
    x-extent reaches a probe region. *)

type t

val build : (int * int) array -> t
(** Intervals are closed [(lo, hi)]; reversed endpoints are swapped.
    Reported values are indices into the build array. *)

val stab : t -> int -> (int -> unit) -> unit
(** Every interval containing the point, each exactly once,
    deterministic order. *)

val query : t -> int -> int -> (int -> unit) -> unit
(** Every interval intersecting the closed range [lo, hi]. *)
