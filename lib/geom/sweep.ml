(* Plane sweep for all close pairs of rectangles.

   Rectangles are processed left to right (by low-x, index as the tie
   break). Before inserting rect i the active set is pruned of every
   rect whose right edge is more than [dist] behind i's left edge; the
   survivors are exactly the rects with x-separation < dist from i.
   The active set is an ordered map keyed by (low-y, index), so the
   y-candidates come from one contiguous key range:

     j.hy > i.ly - dist  implies  j.ly > i.ly - dist - max_h

   where max_h is the tallest rectangle in the input. Both maps cost
   O(log n) per operation, for O(n log n + k) overall with k the
   number of reported pairs (plus the usual slack when heights vary
   wildly — cells and wires here are within one order of magnitude).

   The sweep is deterministic: same input array, same callback order. *)

module M = Map.Make (struct
  type t = int * int

  let compare (a, b) (c, d) =
    match Int.compare a c with 0 -> Int.compare b d | e -> e
end)

let close_pairs ~dist (rects : Igeom.irect array) f =
  let n = Array.length rects in
  if n > 1 then begin
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        match Int.compare rects.(a).Igeom.lx rects.(b).Igeom.lx with
        | 0 -> Int.compare a b
        | c -> c)
      order;
    let max_h = ref 0 in
    Array.iter (fun r -> max_h := max !max_h (Igeom.height r)) rects;
    let max_h = !max_h in
    (* active: (ly, idx) -> idx  |  expiry: (hx, idx) -> (ly, idx) *)
    let active = ref M.empty and expiry = ref M.empty in
    Array.iter
      (fun i ->
        let ri = rects.(i) in
        (* retire rects too far left to matter: keep j iff j.hx > i.lx - dist *)
        let rec retire () =
          match M.min_binding_opt !expiry with
          | Some ((hx, _), akey) when hx <= ri.Igeom.lx - dist ->
              expiry := M.remove (hx, snd akey) !expiry;
              active := M.remove akey !active;
              retire ()
          | _ -> ()
        in
        retire ();
        (* y-range query over the survivors *)
        let lo = (ri.Igeom.ly - dist - max_h, min_int) in
        let seq = M.to_seq_from lo !active in
        let rec scan s =
          match s () with
          | Seq.Nil -> ()
          | Seq.Cons (((ly, _), j), tl) ->
              if ly >= ri.Igeom.hy + dist then ()
              else begin
                let rj = rects.(j) in
                if
                  Igeom.gap_x ri rj < dist && Igeom.gap_y ri rj < dist
                then f (min i j) (max i j);
                scan tl
              end
        in
        scan seq;
        active := M.add (ri.Igeom.ly, i) i !active;
        expiry := M.add (ri.Igeom.hx, i) (ri.Igeom.ly, i) !expiry)
      order
  end
