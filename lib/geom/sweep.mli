(** Scanline all-pairs proximity over axis-aligned rectangles. *)

val close_pairs : dist:int -> Igeom.irect array -> (int -> int -> unit) -> unit
(** [close_pairs ~dist rects f] calls [f i j] (with [i < j]) exactly
    once for every unordered pair whose projections are separated by
    strictly less than [dist] in {e both} axes — i.e. every pair whose
    expanded bounding boxes meet. Overlapping and touching pairs have
    separation 0 and are always reported (for [dist > 0]). The caller
    refines with the exact metric it wants ({!Igeom.sep2},
    {!Igeom.overlaps}, …). O(n log n + k); deterministic callback
    order. *)
