type t = {
  x0 : int;
  y0 : int;
  size : int;
  halo : int;
  nx : int;
  ny : int;
}

(* The grid is anchored at the bbox corner rounded *down* to a tile
   multiple, so a small geometry change that does not cross a multiple
   leaves every other tile's footprint (and hence its content hash)
   untouched. *)
let floor_to m x = if x >= 0 then x / m * m else -(((-x) + m - 1) / m * m)

let make ~bbox ~size ~halo =
  if size <= 0 then invalid_arg "Tile.make: size must be positive";
  let x0 = floor_to size bbox.Igeom.lx and y0 = floor_to size bbox.Igeom.ly in
  let span_x = max 1 (bbox.Igeom.hx - x0) and span_y = max 1 (bbox.Igeom.hy - y0) in
  let nx = (span_x + size - 1) / size and ny = (span_y + size - 1) / size in
  { x0; y0; size; halo; nx = max 1 nx; ny = max 1 ny }

let count t = t.nx * t.ny

let proper t i =
  let ix = i mod t.nx and iy = i / t.nx in
  {
    Igeom.lx = t.x0 + (ix * t.size);
    ly = t.y0 + (iy * t.size);
    hx = t.x0 + ((ix + 1) * t.size);
    hy = t.y0 + ((iy + 1) * t.size);
  }

let with_halo t i = Igeom.expand (proper t i) t.halo

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

let owner t x y =
  let ix = clamp 0 (t.nx - 1) ((x - t.x0) / t.size) in
  let iy = clamp 0 (t.ny - 1) ((y - t.y0) / t.size) in
  (iy * t.nx) + ix

let iter_touching t r f =
  (* tiles whose halo rect meets [r] = tiles whose proper rect meets
     [r] expanded by the halo (closed, so shapes on a halo boundary
     are still binned — ownership, not binning, dedups) *)
  let g = Igeom.expand r t.halo in
  let ix0 = clamp 0 (t.nx - 1) ((g.Igeom.lx - t.x0) / t.size) in
  let ix1 = clamp 0 (t.nx - 1) ((g.Igeom.hx - t.x0) / t.size) in
  let iy0 = clamp 0 (t.ny - 1) ((g.Igeom.ly - t.y0) / t.size) in
  let iy1 = clamp 0 (t.ny - 1) ((g.Igeom.hy - t.y0) / t.size) in
  for iy = iy0 to iy1 do
    for ix = ix0 to ix1 do
      let i = (iy * t.nx) + ix in
      if Igeom.touches (with_halo t i) r then f i
    done
  done
