(** Tile partition of a layout's bounding box, with halos.

    Tiles are a [size]×[size] grid anchored at the bbox corner rounded
    down to a tile multiple (stable under small bbox drift). Every
    shape is binned into each tile whose halo rectangle it meets;
    every violation is *owned* by the single tile whose proper
    rectangle contains its canonical point. With the halo at least as
    large as the longest rule interaction distance, the owner tile is
    guaranteed to see every shape involved — the soundness argument of
    the tiled DRC (see docs/ARCHITECTURE.md). *)

type t = {
  x0 : int;
  y0 : int;
  size : int;
  halo : int;
  nx : int;
  ny : int;
}

val make : bbox:Igeom.irect -> size:int -> halo:int -> t

val count : t -> int

val proper : t -> int -> Igeom.irect
(** Tile [i]'s own footprint (half-open ownership via
    {!Igeom.contains_pt}). *)

val with_halo : t -> int -> Igeom.irect
(** Footprint grown by the halo: the geometry a tile gets to see. *)

val owner : t -> int -> int -> int
(** Index of the unique tile owning point (x, y); coordinates outside
    the grid clamp to the border tiles. *)

val iter_touching : t -> Igeom.irect -> (int -> unit) -> unit
(** Every tile whose halo rectangle meets the rectangle (closed test),
    in row-major order. *)
