type violation = { rule : string; at : Geom.point; detail : string }

type options = { max_density : float; density_window : float }

let default_options = { max_density = 0.9; density_window = 200.0 }

let eps = 1e-6

let pp_violation ppf v =
  Format.fprintf ppf "%s at %a: %s" v.rule Geom.pp_point v.at v.detail

let cell_rect (pc : Layout.placed_cell) =
  Geom.rect_of_size ~x:pc.Layout.origin.Geom.x ~y:pc.Layout.origin.Geom.y
    ~w:pc.Layout.lib.Cell.width ~h:pc.Layout.lib.Cell.height

(* ---- cell rules: group cells by row (same top edge) ---- *)

let check_cells t push =
  let tech = t.Layout.tech in
  let groups : (float, Layout.placed_cell list) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun pc ->
      let key = pc.Layout.origin.Geom.y in
      let cur = Option.value ~default:[] (Hashtbl.find_opt groups key) in
      Hashtbl.replace groups key (pc :: cur))
    t.Layout.cells;
  Hashtbl.iter
    (fun _ row ->
      let sorted =
        List.sort (fun a b -> compare a.Layout.origin.Geom.x b.Layout.origin.Geom.x) row
      in
      let rec scan = function
        | a :: (b :: _ as rest) ->
            let ra = cell_rect a and rb = cell_rect b in
            let gap = rb.Geom.lx -. ra.Geom.hx in
            if gap < -.eps then
              push "cell-overlap"
                (Geom.pt rb.Geom.lx rb.Geom.ly)
                (Printf.sprintf "cells %d/%d overlap by %.1fum" a.Layout.node
                   b.Layout.node (-.gap))
            else if gap > eps && gap < t.Layout.tech.Tech.s_min -. eps then
              push "cell-spacing"
                (Geom.pt rb.Geom.lx rb.Geom.ly)
                (Printf.sprintf "cells %d/%d gap %.1fum < s_min" a.Layout.node
                   b.Layout.node gap);
            scan rest
        | _ -> ()
      in
      scan sorted)
    groups;
  Array.iter
    (fun pc ->
      if not (Tech.on_grid tech pc.Layout.origin.Geom.x && Tech.on_grid tech pc.Layout.origin.Geom.y)
      then
        push "off-grid" pc.Layout.origin
          (Printf.sprintf "cell %d origin off the %.0fum grid" pc.Layout.node
             tech.Tech.grid))
    t.Layout.cells

(* ---- wire rules ---- *)

type span = { fixed : float; lo : float; hi : float; net : int; layer : int }

let spans_of_wires t horizontal =
  Array.to_list t.Layout.wires
  |> List.filter_map (fun (w : Layout.wire) ->
         let is_h = w.Layout.a.Geom.y = w.Layout.b.Geom.y in
         if is_h = horizontal then
           let fixed = if horizontal then w.Layout.a.Geom.y else w.Layout.a.Geom.x in
           let c1 = if horizontal then w.Layout.a.Geom.x else w.Layout.a.Geom.y in
           let c2 = if horizontal then w.Layout.b.Geom.x else w.Layout.b.Geom.y in
           Some
             {
               fixed;
               lo = Float.min c1 c2;
               hi = Float.max c1 c2;
               net = w.Layout.net;
               layer = w.Layout.layer;
             }
         else None)

(* Sharded rule check: run [find lo hi emit] on fixed index chunks
   across the domain pool; each chunk records its violations locally
   and they are replayed into [push] in chunk order, so the report is
   identical to a serial scan at any jobs count. *)
let sharded_check ~chunk ~n push find =
  let parts =
    Parallel.map_chunks ~chunk ~n (fun lo hi ->
        let acc = ref [] in
        let emit rule at detail = acc := (rule, at, detail) :: !acc in
        find lo hi emit;
        List.rev !acc)
  in
  Array.iter (List.iter (fun (rule, at, detail) -> push rule at detail)) parts

let check_wire_geometry t push =
  let tech = t.Layout.tech in
  let s_min = tech.Tech.s_min in
  let check_direction horizontal =
    let spans =
      spans_of_wires t horizontal
      |> List.sort (fun a b -> compare (a.fixed, a.lo) (b.fixed, b.lo))
    in
    let arr = Array.of_list spans in
    let n = Array.length arr in
    (* the sorted-span sweep only ever looks forward from i, so the
       outer loop shards cleanly over the pool *)
    sharded_check ~chunk:512 ~n push (fun lo hi emit ->
        for i = lo to hi - 1 do
          let a = arr.(i) in
          let j = ref (i + 1) in
          while !j < n && arr.(!j).fixed -. a.fixed < s_min -. eps do
            let b = arr.(!j) in
            if b.net <> a.net && a.layer = b.layer then begin
              let overlap = Float.min a.hi b.hi -. Float.max a.lo b.lo in
              if overlap > eps then begin
                let x, y =
                  if horizontal then (Float.max a.lo b.lo, b.fixed)
                  else (b.fixed, Float.max a.lo b.lo)
                in
                if Float.abs (b.fixed -. a.fixed) < eps then
                  emit "wire-overlap" (Geom.pt x y)
                    (Printf.sprintf "nets %d/%d share a track" a.net b.net)
                else
                  emit "wire-spacing" (Geom.pt x y)
                    (Printf.sprintf "nets %d/%d %.1fum apart" a.net b.net
                       (Float.abs (b.fixed -. a.fixed)))
              end
            end;
            incr j
          done
        done)
  in
  check_direction true;
  check_direction false;
  sharded_check ~chunk:1024 ~n:(Array.length t.Layout.wires) push
    (fun lo hi emit ->
      for i = lo to hi - 1 do
        let w = t.Layout.wires.(i) in
        List.iter
          (fun (p : Geom.point) ->
            if not (Tech.on_grid tech p.Geom.x && Tech.on_grid tech p.Geom.y) then
              emit "off-grid" p
                (Printf.sprintf "net %d wire endpoint off grid" w.Layout.net))
          [ w.Layout.a; w.Layout.b ]
      done)

(* zigzag: a segment between two vias of its net must be >= s_min *)
let check_zigzag t push =
  let via_set : (int * int * int, unit) Hashtbl.t = Hashtbl.create 256 in
  let key net (p : Geom.point) =
    (net, int_of_float (Float.round p.Geom.x), int_of_float (Float.round p.Geom.y))
  in
  Array.iter (fun (v : Layout.via) -> Hashtbl.replace via_set (key v.Layout.net v.Layout.at) ())
    t.Layout.vias;
  (* the via table is read-only from here on, so wires shard freely *)
  sharded_check ~chunk:1024 ~n:(Array.length t.Layout.wires) push
    (fun lo hi emit ->
      for i = lo to hi - 1 do
        let w = t.Layout.wires.(i) in
        let len = Geom.dist_manhattan w.Layout.a w.Layout.b in
        if
          len > eps
          && len < t.Layout.tech.Tech.s_min -. eps
          && Hashtbl.mem via_set (key w.Layout.net w.Layout.a)
          && Hashtbl.mem via_set (key w.Layout.net w.Layout.b)
        then
          emit "zigzag-spacing" w.Layout.a
            (Printf.sprintf "net %d bend-to-bend run %.1fum < s_min" w.Layout.net
               len)
      done)

(* vias must land on an endpoint of wires of both layers of their net *)
let check_vias t push =
  let ends : (int * int * int, int list) Hashtbl.t = Hashtbl.create 1024 in
  let key net (p : Geom.point) =
    (net, int_of_float (Float.round p.Geom.x), int_of_float (Float.round p.Geom.y))
  in
  Array.iter
    (fun (w : Layout.wire) ->
      List.iter
        (fun p ->
          let k = key w.Layout.net p in
          let cur = Option.value ~default:[] (Hashtbl.find_opt ends k) in
          Hashtbl.replace ends k (w.Layout.layer :: cur))
        [ w.Layout.a; w.Layout.b ])
    t.Layout.wires;
  sharded_check ~chunk:1024 ~n:(Array.length t.Layout.vias) push
    (fun lo hi emit ->
      for i = lo to hi - 1 do
        let v = t.Layout.vias.(i) in
        let layers =
          Option.value ~default:[]
            (Hashtbl.find_opt ends (key v.Layout.net v.Layout.at))
          |> List.sort_uniq compare
        in
        if List.length layers < 2 then
          emit "via-alignment" v.Layout.at
            (Printf.sprintf "net %d via does not join two layers" v.Layout.net)
      done)

let check_density t options push =
  let window = options.density_window in
  let die = t.Layout.die in
  let nx = max 1 (int_of_float (ceil (Geom.width die /. window))) in
  let ny = max 1 (int_of_float (ceil (Geom.height die /. window))) in
  let area = Array.make (nx * ny) 0.0 in
  Array.iter
    (fun (w : Layout.wire) ->
      let len = Geom.dist_manhattan w.Layout.a w.Layout.b in
      let mid_x = (w.Layout.a.Geom.x +. w.Layout.b.Geom.x) /. 2.0 in
      let mid_y = (w.Layout.a.Geom.y +. w.Layout.b.Geom.y) /. 2.0 in
      let ix = min (nx - 1) (max 0 (int_of_float ((mid_x -. die.Geom.lx) /. window))) in
      let iy = min (ny - 1) (max 0 (int_of_float ((mid_y -. die.Geom.ly) /. window))) in
      area.((iy * nx) + ix) <- area.((iy * nx) + ix) +. (len *. Layout.wire_width))
    t.Layout.wires;
  Array.iteri
    (fun idx a ->
      let density = a /. (window *. window) in
      if density > options.max_density then begin
        let ix = idx mod nx and iy = idx / nx in
        push "density"
          (Geom.pt
             (die.Geom.lx +. ((float_of_int ix +. 0.5) *. window))
             (die.Geom.ly +. ((float_of_int iy +. 0.5) *. window)))
          (Printf.sprintf "metal density %.0f%% > %.0f%%" (100.0 *. density)
             (100.0 *. options.max_density))
      end)
    area

let check ?(options = default_options) t =
  let violations = ref [] in
  let push rule at detail = violations := { rule; at; detail } :: !violations in
  check_cells t push;
  check_wire_geometry t push;
  check_zigzag t push;
  check_vias t push;
  check_density t options push;
  List.rev !violations

let gap_hints p violations =
  let find_gap y =
    let rec loop r =
      if r >= p.Problem.n_rows - 1 then p.Problem.n_rows - 2
      else if y < Problem.row_top p (r + 1) then r
      else loop (r + 1)
    in
    loop 0
  in
  violations
  |> List.filter (fun v ->
         v.rule = "wire-overlap" || v.rule = "wire-spacing" || v.rule = "density"
         || v.rule = "zigzag-spacing")
  |> List.map (fun v -> find_gap v.at.Geom.y)
  |> List.sort_uniq compare
