(* Tile-incremental, exact-integer DRC. See drc.mli for the rule list
   and the caching contract; docs/ARCHITECTURE.md for the tile/halo
   soundness argument. *)

type deck = {
  spacing : int;
  notch : int;
  min_width : int;
  min_area : int;
  eol : int;
  cell_spacing : int;
  zigzag : int;
  via_cut : int;
  via_enclosure : int;
  grid : int;
  max_density : float;
  density_window : int;
  tile : int;
}

let half_width = Igeom.of_um Layout.wire_width / 2

let deck_of_tech (tech : Tech.t) =
  let s_min = Igeom.of_um tech.Tech.s_min in
  let w = 2 * half_width in
  {
    spacing = s_min - w;
    notch = s_min - w;
    min_width = w;
    (* the smallest drawable shape (a degenerate segment's endcap
       square) sits exactly at the limit *)
    min_area = w * w;
    eol = s_min - w;
    cell_spacing = s_min;
    zigzag = s_min;
    via_cut = 500;
    via_enclosure = 500;
    grid = Igeom.of_um tech.Tech.grid;
    max_density = 0.9;
    density_window = 200 * Igeom.nm_per_um;
    tile = 120 * Igeom.nm_per_um;
  }

type cache = {
  find : string -> Diag.t list option;
  store : string -> Diag.t list -> unit;
}

type stats = {
  tiles_total : int;
  tiles_checked : int;
  tiles_cached : int;
  density_cached : bool;
}

type report = { diags : Diag.t list; stats : stats }

(* ---- shape extraction (µm floats -> nm ints, once) ---- *)

type kind = Kcell | Kwire | Kvia

type shape = {
  kind : kind;
  layer : int;
  net : int; (* cells: node id *)
  r : Igeom.irect; (* drawn extent; wires include square endcaps *)
  ax : int;
  ay : int; (* wire endpoint a / via center / cell origin *)
  bx : int;
  by : int; (* wire endpoint b (= a for cells and vias) *)
}

let extract d (t : Layout.t) =
  let nm = Igeom.of_um in
  let cells =
    Array.map
      (fun (pc : Layout.placed_cell) ->
        let x = nm pc.Layout.origin.Geom.x and y = nm pc.Layout.origin.Geom.y in
        let w = nm pc.Layout.lib.Cell.width and h = nm pc.Layout.lib.Cell.height in
        {
          kind = Kcell;
          layer = Layout.layer_outline;
          net = pc.Layout.node;
          r = { Igeom.lx = x; ly = y; hx = x + w; hy = y + h };
          ax = x;
          ay = y;
          bx = x;
          by = y;
        })
      t.Layout.cells
  in
  let wires =
    Array.map
      (fun (w : Layout.wire) ->
        let ax = nm w.Layout.a.Geom.x and ay = nm w.Layout.a.Geom.y in
        let bx = nm w.Layout.b.Geom.x and by = nm w.Layout.b.Geom.y in
        {
          kind = Kwire;
          layer = w.Layout.layer;
          net = w.Layout.net;
          r =
            {
              Igeom.lx = min ax bx - half_width;
              ly = min ay by - half_width;
              hx = max ax bx + half_width;
              hy = max ay by + half_width;
            };
          ax;
          ay;
          bx;
          by;
        })
      t.Layout.wires
  in
  let vias =
    Array.map
      (fun (v : Layout.via) ->
        let x = nm v.Layout.at.Geom.x and y = nm v.Layout.at.Geom.y in
        {
          kind = Kvia;
          layer = Layout.layer_via;
          net = v.Layout.net;
          r =
            {
              Igeom.lx = x - d.via_cut;
              ly = y - d.via_cut;
              hx = x + d.via_cut;
              hy = y + d.via_cut;
            };
          ax = x;
          ay = y;
          bx = x;
          by = y;
        })
      t.Layout.vias
  in
  Array.concat [ cells; wires; vias ]

(* shapes compare structurally = by content, never by input position;
   everything downstream (pair order, messages, tile hashes) depends
   only on content, which is what makes tile verdicts cacheable *)
let sort_shapes a =
  let a = Array.copy a in
  (* the whole point is structural order over the full shape record.
     sl-ignore: SL-POLY-01 every field compares structurally, no floats *)
  Array.sort Stdlib.compare a;
  a

(* ---- rule emitters (shared verbatim by engine and brute force) ---- *)

let um = Igeom.um_str

let at px py = Diag.At (Igeom.to_um px, Igeom.to_um py)

let layer_str l =
  if l = Layout.layer_m1 then "m1"
  else if l = Layout.layer_m2 then "m2"
  else Printf.sprintf "layer%d" l

let rect_str (r : Igeom.irect) =
  Printf.sprintf "[%s,%s %s,%s]" (um r.Igeom.lx) (um r.Igeom.ly) (um r.Igeom.hx)
    (um r.Igeom.hy)

let wit s =
  match s.kind with
  | Kcell -> Printf.sprintf "cell %d %s" s.net (rect_str s.r)
  | Kwire -> Printf.sprintf "net %d %s %s" s.net (layer_str s.layer) (rect_str s.r)
  | Kvia -> Printf.sprintf "net %d via %s" s.net (rect_str s.r)

(* [a] precedes [b] in content order. Every emitted triple carries the
   violation's canonical nm point, which the tiled engine uses for
   ownership. *)
let pair_diags d a b push =
  match (a.kind, b.kind) with
  | Kcell, Kcell ->
      let px, py = Igeom.approach a.r b.r in
      if Igeom.overlaps a.r b.r then
        push
          ( px,
            py,
            Diag.error ~rule:"DRC-CELL-OVERLAP" ~witness:[ wit a; wit b ]
              (at px py) "cells %d/%d overlap" a.net b.net )
      else
        let gx = Igeom.gap_x a.r b.r and gy = Igeom.gap_y a.r b.r in
        if gy = 0 && gx > 0 && gx < d.cell_spacing then
          push
            ( px,
              py,
              Diag.error ~rule:"DRC-CELL-SPACING" ~witness:[ wit a; wit b ]
                (at px py) "cells %d/%d gap %sum < s_min %sum" a.net b.net
                (um gx) (um d.cell_spacing) )
  | Kwire, Kwire when a.layer = b.layer ->
      let px, py = Igeom.approach a.r b.r in
      if a.net <> b.net then begin
        if Igeom.overlaps a.r b.r then
          push
            ( px,
              py,
              Diag.error ~rule:"DRC-WIRE-OVERLAP" ~witness:[ wit a; wit b ]
                (at px py) "nets %d/%d short: %s metal overlaps" a.net b.net
                (layer_str a.layer) )
        else if Igeom.sep2 a.r b.r < d.spacing * d.spacing then
          push
            ( px,
              py,
              Diag.error ~rule:"DRC-WIRE-SPACING" ~witness:[ wit a; wit b ]
                (at px py) "nets %d/%d %.3fum apart (< %sum)" a.net b.net
                (sqrt (float_of_int (Igeom.sep2 a.r b.r)) /. 1000.0)
                (um d.spacing) )
      end
      else if
        (not (Igeom.touches a.r b.r)) && Igeom.sep2 a.r b.r < d.notch * d.notch
      then
        push
          ( px,
            py,
            Diag.error ~rule:"DRC-NOTCH-01" ~witness:[ wit a; wit b ] (at px py)
              "net %d notch %.3fum < %sum" a.net
              (sqrt (float_of_int (Igeom.sep2 a.r b.r)) /. 1000.0)
              (um d.notch) )
  | _ -> ()

(* neighbourhood oracles: the tiled engine answers from tile-local
   indexes, the brute-force reference from naive global scans *)
type view = {
  wire_layers_at : int -> int -> int -> int list; (* net x y -> layers *)
  via_at : int -> int -> int -> bool;
  wires_near : int -> Igeom.irect -> shape list; (* layer probe -> content order *)
}

let shape_diags d view s push =
  let off_grid x y = not (Igeom.on_grid ~grid:d.grid x && Igeom.on_grid ~grid:d.grid y) in
  match s.kind with
  | Kcell ->
      if off_grid s.ax s.ay then
        push
          ( s.ax,
            s.ay,
            Diag.error ~rule:"DRC-OFF-GRID" ~witness:[ wit s ] (at s.ax s.ay)
              "cell %d origin off the %sum grid" s.net (um d.grid) )
  | Kvia ->
      let layers = view.wire_layers_at s.net s.ax s.ay in
      if List.length layers < 2 then
        push
          ( s.ax,
            s.ay,
            Diag.error ~rule:"DRC-VIA-ALIGNMENT" ~witness:[ wit s ]
              (at s.ax s.ay) "net %d via does not join two layers" s.net );
      List.iter
        (fun l ->
          let req = Igeom.expand s.r d.via_enclosure in
          let covers =
            view.wires_near l req
            |> List.filter (fun w -> w.net = s.net)
            |> List.map (fun w -> w.r)
          in
          if not (Igeom.covered req covers) then
            push
              ( s.ax,
                s.ay,
                Diag.error ~rule:"DRC-VIA-ENCLOSE-01" ~witness:[ wit s ]
                  (at s.ax s.ay)
                  "net %d via cut not enclosed by %s metal (%sum margin)" s.net
                  (layer_str l) (um d.via_enclosure) ))
        [ Layout.layer_m1; Layout.layer_m2 ]
  | Kwire ->
      List.iter
        (fun (x, y) ->
          if off_grid x y then
            push
              ( x,
                y,
                Diag.error ~rule:"DRC-OFF-GRID" ~witness:[ wit s ] (at x y)
                  "net %d wire endpoint off grid" s.net ))
        (List.sort_uniq
           (fun (x1, y1) (x2, y2) ->
             match Int.compare x1 x2 with 0 -> Int.compare y1 y2 | c -> c)
           [ (s.ax, s.ay); (s.bx, s.by) ]);
      let cx = (s.r.Igeom.lx + s.r.Igeom.hx) / 2
      and cy = (s.r.Igeom.ly + s.r.Igeom.hy) / 2 in
      let wmin = min (Igeom.width s.r) (Igeom.height s.r) in
      if wmin < d.min_width then
        push
          ( cx,
            cy,
            Diag.error ~rule:"DRC-WIDTH-01" ~witness:[ wit s ] (at cx cy)
              "net %d drawn width %sum < %sum" s.net (um wmin) (um d.min_width)
          );
      if Igeom.area s.r < d.min_area then
        push
          ( cx,
            cy,
            Diag.error ~rule:"DRC-AREA-01" ~witness:[ wit s ] (at cx cy)
              "net %d shape area %.3fum2 below minimum" s.net
              (float_of_int (Igeom.area s.r) /. 1e6) );
      let len = abs (s.bx - s.ax) + abs (s.by - s.ay) in
      if
        len > 0 && len < d.zigzag
        && view.via_at s.net s.ax s.ay
        && view.via_at s.net s.bx s.by
      then
        push
          ( s.ax,
            s.ay,
            Diag.error ~rule:"DRC-ZIGZAG-SPACING" ~witness:[ wit s ]
              (at s.ax s.ay) "net %d bend-to-bend run %sum < s_min" s.net
              (um len) );
      (* end-of-line: foreign same-layer metal in the extension region
         ahead of each endcap *)
      let horiz = s.ay = s.by and vert = s.ax = s.bx in
      if horiz <> vert then begin
        let r = s.r in
        let ends =
          if horiz then
            [
              ( (max s.ax s.bx, s.ay),
                { r with Igeom.lx = r.Igeom.hx; hx = r.Igeom.hx + d.eol } );
              ( (min s.ax s.bx, s.ay),
                { r with Igeom.lx = r.Igeom.lx - d.eol; hx = r.Igeom.lx } );
            ]
          else
            [
              ( (s.ax, max s.ay s.by),
                { r with Igeom.ly = r.Igeom.hy; hy = r.Igeom.hy + d.eol } );
              ( (s.ax, min s.ay s.by),
                { r with Igeom.ly = r.Igeom.ly - d.eol; hy = r.Igeom.ly } );
            ]
        in
        List.iter
          (fun ((ex, ey), probe) ->
            view.wires_near s.layer probe
            |> List.iter (fun o ->
                   if o.net <> s.net && Igeom.overlaps o.r probe then
                     push
                       ( ex,
                         ey,
                         Diag.error ~rule:"DRC-EOL-01" ~witness:[ wit s; wit o ]
                           (at ex ey)
                           "net %d line end sees net %d metal within %sum" s.net
                           o.net (um d.eol) )))
          ends
      end

(* ---- oracle construction ---- *)

let endpoint_tables shapes =
  let ends : (int * int * int, int list) Hashtbl.t = Hashtbl.create 256 in
  let vias : (int * int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun s ->
      match s.kind with
      | Kwire ->
          List.iter
            (fun k ->
              let cur = Option.value ~default:[] (Hashtbl.find_opt ends k) in
              Hashtbl.replace ends k (s.layer :: cur))
            [ (s.net, s.ax, s.ay); (s.net, s.bx, s.by) ]
      | Kvia -> Hashtbl.replace vias (s.net, s.ax, s.ay) ()
      | Kcell -> ())
    shapes;
  let wire_layers_at net x y =
    Option.value ~default:[] (Hashtbl.find_opt ends (net, x, y))
    |> List.sort_uniq Int.compare
  in
  let via_at net x y = Hashtbl.mem vias (net, x, y) in
  (wire_layers_at, via_at)

(* the engine's view: interval-stabbing over the x-extents of each
   routing layer's wires, y filtered exactly *)
let tile_view (shapes : shape array) =
  let wire_layers_at, via_at = endpoint_tables shapes in
  let tree_of layer =
    let idxs = ref [] in
    Array.iteri
      (fun i s -> if s.kind = Kwire && s.layer = layer then idxs := i :: !idxs)
      shapes;
    let idxs = Array.of_list (List.rev !idxs) in
    let tree =
      Stab.build
        (Array.map (fun i -> (shapes.(i).r.Igeom.lx, shapes.(i).r.Igeom.hx)) idxs)
    in
    (idxs, tree)
  in
  let m1 = tree_of Layout.layer_m1 and m2 = tree_of Layout.layer_m2 in
  let wires_near layer (probe : Igeom.irect) =
    let idxs, tree =
      if layer = Layout.layer_m1 then m1
      else if layer = Layout.layer_m2 then m2
      else tree_of layer
    in
    let hits = ref [] in
    Stab.query tree probe.Igeom.lx probe.Igeom.hx (fun k ->
        let i = idxs.(k) in
        let r = shapes.(i).r in
        if r.Igeom.ly <= probe.Igeom.hy && r.Igeom.hy >= probe.Igeom.ly then
          hits := i :: !hits);
    List.sort Int.compare !hits |> List.map (fun i -> shapes.(i))
  in
  { wire_layers_at; via_at; wires_near }

let naive_view (shapes : shape array) =
  let wire_layers_at, via_at = endpoint_tables shapes in
  let wires_near layer probe =
    Array.to_list shapes
    |> List.filter (fun s ->
           s.kind = Kwire && s.layer = layer && Igeom.touches s.r probe)
  in
  { wire_layers_at; via_at; wires_near }

(* ---- density: a global sliding-window pass over the wire shapes ----

   Windows step by half a window across the metal bounding box, with a
   final right/top-aligned window so the box edges are always covered.
   Exact clipped rectangle areas; overlapping wires double-count (a
   conservative over-estimate, as in the original checker). *)

let anchors d lo hi =
  let w = d.density_window in
  let step = max 1 (w / 2) in
  if hi - lo <= w then [ lo ]
  else begin
    let acc = ref [] and p = ref lo in
    while !p + w < hi do
      acc := !p :: !acc;
      p := !p + step
    done;
    List.rev ((hi - w) :: !acc)
  end

let density_diags d (shapes : shape array) push =
  let wires = Array.to_list shapes |> List.filter (fun s -> s.kind = Kwire) in
  match wires with
  | [] -> ()
  | w0 :: _ ->
      let bbox =
        List.fold_left
          (fun (acc : Igeom.irect) s ->
            {
              Igeom.lx = min acc.Igeom.lx s.r.Igeom.lx;
              ly = min acc.Igeom.ly s.r.Igeom.ly;
              hx = max acc.Igeom.hx s.r.Igeom.hx;
              hy = max acc.Igeom.hy s.r.Igeom.hy;
            })
          w0.r wires
      in
      let win = d.density_window in
      let denom = float_of_int win *. float_of_int win in
      List.iter
        (fun ay ->
          List.iter
            (fun ax ->
              let window =
                { Igeom.lx = ax; ly = ay; hx = ax + win; hy = ay + win }
              in
              let area =
                List.fold_left
                  (fun acc s -> acc + Igeom.inter_area s.r window)
                  0 wires
              in
              let density = float_of_int area /. denom in
              if density > d.max_density then begin
                let cx = ax + (win / 2) and cy = ay + (win / 2) in
                push
                  ( cx,
                    cy,
                    Diag.error ~rule:"DRC-DENSITY"
                      ~witness:[ Printf.sprintf "window %s" (rect_str window) ]
                      (at cx cy) "metal density %.0f%% > %.0f%%"
                      (100.0 *. density)
                      (100.0 *. d.max_density) )
              end)
            (anchors d bbox.Igeom.lx bbox.Igeom.hx))
        (anchors d bbox.Igeom.ly bbox.Igeom.hy)

(* ---- content hashing for the tile cache ---- *)

let deck_fingerprint d =
  Printf.sprintf "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.6f,%d,%d" d.spacing d.notch
    d.min_width d.min_area d.eol d.cell_spacing d.zigzag d.via_cut
    d.via_enclosure d.grid d.max_density d.density_window d.tile

let add_shape buf s =
  Buffer.add_string buf
    (Printf.sprintf "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d;"
       (match s.kind with Kcell -> 0 | Kwire -> 1 | Kvia -> 2)
       s.layer s.net s.r.Igeom.lx s.r.Igeom.ly s.r.Igeom.hx s.r.Igeom.hy s.ax
       s.ay s.bx s.by)

let tile_key d tiling i (locals : shape array) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (deck_fingerprint d);
  let p = Tile.proper tiling i in
  Buffer.add_string buf
    (Printf.sprintf "|%d,%d,%d,%d|" p.Igeom.lx p.Igeom.ly p.Igeom.hx p.Igeom.hy);
  Array.iter (add_shape buf) locals;
  "drct1:" ^ Digest.to_hex (Digest.string (Buffer.contents buf))

let density_key d (shapes : shape array) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (deck_fingerprint d);
  Buffer.add_char buf '|';
  Array.iter (fun s -> if s.kind = Kwire then add_shape buf s) shapes;
  "drcd1:" ^ Digest.to_hex (Digest.string (Buffer.contents buf))

(* ---- the tiled engine ---- *)

let halo_of d =
  List.fold_left max 0
    [
      d.cell_spacing;
      d.spacing;
      d.notch;
      d.zigzag + d.via_cut;
      d.eol + half_width;
      d.via_cut + d.via_enclosure;
    ]

let pair_dist d = max d.cell_spacing (max d.spacing d.notch)

let compute_tile d tiling (ls : shape array) i =
  let acc = ref [] in
  let push (px, py, diag) =
    if Tile.owner tiling px py = i then acc := diag :: !acc
  in
  let rects = Array.map (fun s -> s.r) ls in
  Sweep.close_pairs ~dist:(pair_dist d) rects (fun a b ->
      pair_diags d ls.(a) ls.(b) push);
  let view = tile_view ls in
  Array.iter (fun s -> shape_diags d view s push) ls;
  List.sort Diag.compare (List.rev !acc)

let check ?deck ?cache (t : Layout.t) =
  let d = match deck with Some d -> d | None -> deck_of_tech t.Layout.tech in
  let shapes = sort_shapes (extract d t) in
  if Array.length shapes = 0 then
    {
      diags = [];
      stats =
        {
          tiles_total = 0;
          tiles_checked = 0;
          tiles_cached = 0;
          density_cached = false;
        };
    }
  else begin
    let bbox =
      Array.fold_left
        (fun (acc : Igeom.irect) s ->
          {
            Igeom.lx = min acc.Igeom.lx s.r.Igeom.lx;
            ly = min acc.Igeom.ly s.r.Igeom.ly;
            hx = max acc.Igeom.hx s.r.Igeom.hx;
            hy = max acc.Igeom.hy s.r.Igeom.hy;
          })
        shapes.(0).r shapes
    in
    let tiling = Tile.make ~bbox ~size:d.tile ~halo:(halo_of d) in
    let ntiles = Tile.count tiling in
    let bins = Array.make ntiles [] in
    Array.iter
      (fun s -> Tile.iter_touching tiling s.r (fun i -> bins.(i) <- s :: bins.(i)))
      shapes;
    (* binned in content order because [shapes] is sorted *)
    let locals = Array.map (fun l -> Array.of_list (List.rev l)) bins in
    let cached = Array.make ntiles None in
    let keys = Array.make ntiles "" in
    (match cache with
    | None -> ()
    | Some c ->
        for i = 0 to ntiles - 1 do
          keys.(i) <- tile_key d tiling i locals.(i);
          cached.(i) <- c.find keys.(i)
        done);
    (* only cache misses hit the pool; results replayed in tile order.
       The tile bins and cache slots are shared inputs — the sanitizer
       sees them as read-only views *)
    let locals_v = Dsan.wrap ~label:"drc.tile.bins" ~mode:Dsan.Read_only locals in
    let cached_v = Dsan.wrap ~label:"drc.tile.cache" ~mode:Dsan.Read_only cached in
    let parts =
      Parallel.map_chunks ~label:"drc.tiles" ~chunk:4 ~n:ntiles (fun lo hi ->
          let out = ref [] in
          for i = lo to hi - 1 do
            if Dsan.get cached_v i = None then
              out := (i, compute_tile d tiling (Dsan.get locals_v i) i) :: !out
          done;
          List.rev !out)
    in
    let tile_diags = Array.make ntiles [] in
    let checked = ref 0 in
    Array.iter
      (fun part ->
        List.iter
          (fun (i, ds) ->
            incr checked;
            tile_diags.(i) <- ds;
            match cache with Some c -> c.store keys.(i) ds | None -> ())
          part)
      parts;
    Array.iteri
      (fun i c -> match c with Some ds -> tile_diags.(i) <- ds | None -> ())
      cached;
    let dkey = lazy (density_key d shapes) in
    let density_cached = ref false in
    let density =
      match
        match cache with Some c -> c.find (Lazy.force dkey) | None -> None
      with
      | Some ds ->
          density_cached := true;
          ds
      | None ->
          let acc = ref [] in
          density_diags d shapes (fun (_, _, diag) -> acc := diag :: !acc);
          let ds = List.rev !acc in
          (match cache with
          | Some c -> c.store (Lazy.force dkey) ds
          | None -> ());
          ds
    in
    let diags =
      List.sort Diag.compare
        (List.concat (Array.to_list tile_diags) @ density)
    in
    {
      diags;
      stats =
        {
          tiles_total = ntiles;
          tiles_checked = !checked;
          tiles_cached = ntiles - !checked;
          density_cached = !density_cached;
        };
    }
  end

(* ---- the O(n²) reference: same emitters, no search structures ---- *)

let check_brute ?deck (t : Layout.t) =
  let d = match deck with Some d -> d | None -> deck_of_tech t.Layout.tech in
  let shapes = sort_shapes (extract d t) in
  let acc = ref [] in
  let push (_, _, diag) = acc := diag :: !acc in
  let n = Array.length shapes in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      pair_diags d shapes.(i) shapes.(j) push
    done
  done;
  let view = naive_view shapes in
  Array.iter (fun s -> shape_diags d view s push) shapes;
  density_diags d shapes push;
  List.sort Diag.compare !acc

(* ---- hints for the flow's fix loop ---- *)

let hint_rules =
  [
    "DRC-DENSITY";
    "DRC-EOL-01";
    "DRC-NOTCH-01";
    "DRC-WIRE-OVERLAP";
    "DRC-WIRE-SPACING";
    "DRC-ZIGZAG-SPACING";
  ]

let gap_hints p diags =
  let find_gap y =
    let rec loop r =
      if r >= p.Problem.n_rows - 1 then p.Problem.n_rows - 2
      else if y < Problem.row_top p (r + 1) then r
      else loop (r + 1)
    in
    loop 0
  in
  diags
  |> List.filter (fun (dg : Diag.t) -> List.mem dg.Diag.rule hint_rules)
  |> List.filter_map (fun (dg : Diag.t) ->
         match dg.Diag.loc with
         | Diag.At (_, y) -> Some (find_gap y)
         | _ -> None)
  |> List.sort_uniq Int.compare
