(** Design Rule Check engine (the flow's KLayout substitute,
    paper §III-E).

    A declarative rule deck evaluated exactly, on integer-nanometre
    geometry ({!Igeom}): layout shapes are snapped once at the
    boundary and every rule below is integer arithmetic — no float
    epsilons. Violations are witness-carrying {!Diag.t}s whose rule
    ids live in the [lib/check] registry ([superflow explain DRC-...]):

    - [DRC-CELL-OVERLAP], [DRC-CELL-SPACING]: cell body overlap /
      sub-minimum same-row gap;
    - [DRC-OFF-GRID]: cell origin or wire endpoint off the routing grid;
    - [DRC-WIRE-OVERLAP]: different nets share same-layer metal (short);
    - [DRC-WIRE-SPACING]: different-net same-layer metal closer than
      the minimum edge gap (corner-aware Euclidean metric);
    - [DRC-NOTCH-01]: same-net same-layer metal re-approaching itself;
    - [DRC-WIDTH-01], [DRC-AREA-01]: drawn width / single-shape area
      minima;
    - [DRC-EOL-01]: foreign metal inside a line-end's extension region;
    - [DRC-ZIGZAG-SPACING]: a via-to-via run shorter than s_min
      (the paper's zigzag rule);
    - [DRC-VIA-ALIGNMENT]: a via that does not join wire endpoints on
      both routing layers;
    - [DRC-VIA-ENCLOSE-01]: a via cut not enclosed by same-net metal
      with the required margin on each layer;
    - [DRC-DENSITY]: sliding-window metal density above the limit.

    The check is tiled: shapes are binned into fixed-size tiles with a
    halo at least as large as the longest rule interaction distance,
    tiles are checked independently (sharded over {!Parallel}, results
    combined in tile order — byte-identical at any jobs count), and
    each violation is emitted only by the tile owning its canonical
    point. With a {!cache} attached, a tile's verdict is memoized under
    a content hash of the deck and the geometry in tile+halo, so an ECO
    rerun re-checks only the tiles whose geometry actually changed. *)

type deck = {
  spacing : int;  (** diff-net same-layer min edge gap, nm *)
  notch : int;  (** same-net same-layer min edge gap, nm *)
  min_width : int;  (** min drawn width, nm *)
  min_area : int;  (** min single-shape area, nm² *)
  eol : int;  (** end-of-line clearance ahead of a line end, nm *)
  cell_spacing : int;  (** min same-row cell gap (s_min), nm *)
  zigzag : int;  (** min via-to-via run (s_min), nm *)
  via_cut : int;  (** via cut half-size, nm *)
  via_enclosure : int;  (** metal margin required around the cut, nm *)
  grid : int;  (** manufacturing grid, nm *)
  max_density : float;  (** window metal-area fraction limit *)
  density_window : int;  (** density window edge, nm *)
  tile : int;  (** tile edge for the incremental partition, nm *)
}

val deck_of_tech : Tech.t -> deck
(** The AQFP deck the flow signs off against, derived from the
    technology: edge gaps are [s_min] minus the drawn wire width, the
    grid is the routing grid, density 90% over 200 µm windows. *)

type cache = {
  find : string -> Diag.t list option;
  store : string -> Diag.t list -> unit;
}
(** Tile-verdict memo, keyed by content-hash strings. [lib/layout]
    cannot see [sf_db], so the flow injects closures wired to the
    database's proof store (exactly like the absint cache). *)

type stats = {
  tiles_total : int;
  tiles_checked : int;  (** recomputed this run *)
  tiles_cached : int;  (** served from the cache *)
  density_cached : bool;
}

type report = { diags : Diag.t list; stats : stats }

val check : ?deck:deck -> ?cache:cache -> Layout.t -> report
(** Full-deck signoff. [report.diags] is sorted with {!Diag.compare};
    an empty list is a clean layout. Without [?deck] the deck derives
    from [layout.tech]. *)

val check_brute : ?deck:deck -> Layout.t -> Diag.t list
(** O(n²) reference implementation sharing only the per-rule emitters
    with {!check} — no sweep, no tiles, no cache. The property tests
    hold {!check} to byte-equality against it. *)

val gap_hints : Problem.t -> Diag.t list -> int list
(** Row gaps implicated by located wire-congestion diagnostics
    ([DRC-WIRE-SPACING]/[-OVERLAP], [DRC-NOTCH-01], [DRC-EOL-01],
    [DRC-ZIGZAG-SPACING], [DRC-DENSITY]) — the flow driver widens
    these and re-routes. Matches on registry rule ids, not prose. *)
