type placed_cell = {
  lib : Cell.t;
  node : int;
  name : string option;
  origin : Geom.point;
}

type wire = { net : int; layer : int; a : Geom.point; b : Geom.point }

type via = { net : int; at : Geom.point }

type t = {
  tech : Tech.t;
  cells : placed_cell array;
  wires : wire array;
  vias : via array;
  bias : wire array;  (* clock/power distribution: two AC serpentines
                         and a DC trunk (paper Fig. 2) *)
  die : Geom.rect;
}

let wire_width = 2.0

let layer_outline = 1
let layer_jj = 2
let layer_pin = 3
let layer_m1 = 10
let layer_m2 = 11
let layer_via = 12
let layer_label = 20
let layer_ac1 = 21
let layer_ac2 = 22
let layer_dc = 23

(* The four-phase excitation (paper Fig. 2): every row carries both AC
   bias lines; each line snakes to the next row at alternating ends,
   and one DC trunk runs down the right edge. *)
let build_bias p =
  let width = Problem.row_width p +. 40.0 in
  let bias = ref [] in
  let add net layer x1 y1 x2 y2 =
    bias := { net; layer; a = Geom.pt x1 y1; b = Geom.pt x2 y2 } :: !bias
  in
  let line_y r frac = Problem.row_top p r +. (frac *. p.Problem.row_height) in
  for r = 0 to p.Problem.n_rows - 1 do
    let y1 = line_y r (1.0 /. 3.0) and y2 = line_y r (2.0 /. 3.0) in
    add (-1) layer_ac1 0.0 y1 width y1;
    add (-2) layer_ac2 0.0 y2 width y2;
    if r + 1 < p.Problem.n_rows then begin
      (* serpentine hop to the next row at alternating ends *)
      let x = if r mod 2 = 0 then width else 0.0 in
      add (-1) layer_ac1 x y1 x (line_y (r + 1) (1.0 /. 3.0));
      add (-2) layer_ac2 x y2 x (line_y (r + 1) (2.0 /. 3.0))
    end
  done;
  (* DC trunk along the right edge *)
  let y_top = 0.0 and y_bot = Problem.row_top p (p.Problem.n_rows - 1) +. p.Problem.row_height in
  add (-3) layer_dc (width +. 20.0) y_top (width +. 20.0) y_bot;
  Array.of_list (List.rev !bias)

let build p (routed : Router.result) =
  let cells =
    Array.map
      (fun c ->
        {
          lib = c.Problem.lib;
          node = c.Problem.node;
          name = None;
          origin =
            Geom.pt c.Problem.x (Problem.row_top p c.Problem.row);
        })
      p.Problem.cells
  in
  let wires = ref [] and vias = ref [] in
  Array.iter
    (fun rt ->
      let rec segments = function
        | (x1, y1) :: ((x2, y2) :: tail as rest) ->
            let layer = if y1 = y2 then layer_m1 else layer_m2 in
            wires :=
              { net = rt.Router.net; layer; a = Geom.pt x1 y1; b = Geom.pt x2 y2 }
              :: !wires;
            (match tail with
            | (_, y3) :: _ ->
                (* interior corner: layer change -> via *)
                if (y1 = y2) <> (y2 = y3) then
                  vias := { net = rt.Router.net; at = Geom.pt x2 y2 } :: !vias
            | [] -> ());
            segments rest
        | _ -> ()
      in
      segments rt.Router.points)
    routed.Router.routes;
  let die =
    Array.fold_left
      (fun acc c ->
        Geom.union_rect acc
          (Geom.rect_of_size ~x:c.origin.Geom.x ~y:c.origin.Geom.y
             ~w:c.lib.Cell.width ~h:c.lib.Cell.height))
      (Geom.rect 0.0 0.0 1.0 1.0) cells
  in
  {
    tech = p.Problem.tech;
    cells;
    wires = Array.of_list !wires;
    vias = Array.of_list !vias;
    bias = build_bias p;
    die;
  }

(* one GDS structure per distinct library cell: outline, a box per
   2-JJ SQUID, and pin markers *)
let cell_structure (c : Cell.t) =
  let outline =
    Gds.Boundary
      {
        layer = layer_outline;
        points =
          [ (0.0, 0.0); (c.Cell.width, 0.0); (c.Cell.width, c.Cell.height); (0.0, c.Cell.height) ];
      }
  in
  let n_squids = c.Cell.jj_count / 2 in
  let jjs =
    List.init n_squids (fun i ->
        let pitch = c.Cell.width /. float_of_int (n_squids + 1) in
        let cx = pitch *. float_of_int (i + 1) in
        let cy = c.Cell.height /. 2.0 in
        Gds.Boundary
          {
            layer = layer_jj;
            points =
              [ (cx -. 2.0, cy -. 2.0); (cx +. 2.0, cy -. 2.0);
                (cx +. 2.0, cy +. 2.0); (cx -. 2.0, cy +. 2.0) ];
          })
  in
  let pin_box x y =
    Gds.Boundary
      {
        layer = layer_pin;
        points = [ (x -. 1.0, y -. 1.0); (x +. 1.0, y -. 1.0); (x +. 1.0, y +. 1.0); (x -. 1.0, y +. 1.0) ];
      }
  in
  let in_pins = Array.to_list (Array.map (fun px -> pin_box px 0.0) c.Cell.in_pins) in
  let out_pins =
    Array.to_list (Array.map (fun px -> pin_box px c.Cell.height) c.Cell.out_pins)
  in
  { Gds.sname = c.Cell.cell_name; elements = (outline :: jjs) @ in_pins @ out_pins }

let to_gds ?(libname = "SUPERFLOW") t =
  let used : (string, Cell.t) Hashtbl.t = Hashtbl.create 16 in
  Array.iter (fun pc -> Hashtbl.replace used pc.lib.Cell.cell_name pc.lib) t.cells;
  let cell_structs =
    Hashtbl.fold (fun _ c acc -> cell_structure c :: acc) used []
    |> List.sort (fun a b -> String.compare a.Gds.sname b.Gds.sname)
  in
  let srefs =
    Array.to_list
      (Array.map
         (fun pc ->
           Gds.Sref
             { sname = pc.lib.Cell.cell_name; x = pc.origin.Geom.x; y = pc.origin.Geom.y })
         t.cells)
  in
  let wires =
    Array.to_list
      (Array.map
         (fun w ->
           Gds.Path
             {
               layer = w.layer;
               width = wire_width;
               points = [ (w.a.Geom.x, w.a.Geom.y); (w.b.Geom.x, w.b.Geom.y) ];
             })
         t.wires)
  in
  let vias =
    Array.to_list
      (Array.map
         (fun v ->
           let x = v.at.Geom.x and y = v.at.Geom.y in
           Gds.Boundary
             {
               layer = layer_via;
               points =
                 [ (x -. 1.5, y -. 1.5); (x +. 1.5, y -. 1.5); (x +. 1.5, y +. 1.5); (x -. 1.5, y +. 1.5) ];
             })
         t.vias)
  in
  let labels =
    Array.to_list t.cells
    |> List.filter_map (fun pc ->
           match pc.name with
           | Some n ->
               Some
                 (Gds.Text
                    { layer = layer_label; x = pc.origin.Geom.x; y = pc.origin.Geom.y; text = n })
           | None -> None)
  in
  let bias =
    Array.to_list
      (Array.map
         (fun w ->
           Gds.Path
             {
               layer = w.layer;
               width = 3.0;
               points = [ (w.a.Geom.x, w.a.Geom.y); (w.b.Geom.x, w.b.Geom.y) ];
             })
         t.bias)
  in
  let top = { Gds.sname = "TOP"; elements = srefs @ wires @ vias @ bias @ labels } in
  { Gds.libname; structures = cell_structs @ [ top ] }

let write_gds path t = Gds.write_file path (to_gds t)

type stats = {
  n_cells : int;
  n_wires : int;
  n_vias : int;
  total_jj : int;
  wirelength : float;
  bias_wirelength : float;
  die_area_mm2 : float;
}

let stats t =
  {
    n_cells = Array.length t.cells;
    n_wires = Array.length t.wires;
    n_vias = Array.length t.vias;
    total_jj = Array.fold_left (fun acc c -> acc + c.lib.Cell.jj_count) 0 t.cells;
    wirelength =
      Array.fold_left
        (fun acc w -> acc +. Geom.dist_manhattan w.a w.b)
        0.0 t.wires;
    bias_wirelength =
      Array.fold_left
        (fun acc w -> acc +. Geom.dist_manhattan w.a w.b)
        0.0 t.bias;
    die_area_mm2 = Geom.area t.die /. 1e6;
  }

let pp_stats ppf s =
  Format.fprintf ppf "cells=%d wires=%d vias=%d jj=%d wl=%.0fum bias=%.0fum die=%.2fmm2"
    s.n_cells s.n_wires s.n_vias s.total_jj s.wirelength s.bias_wirelength
    s.die_area_mm2
