(** Physical layout assembly (paper §III-E).

    Combines a placed problem and a routing result into concrete
    geometry — placed library cells, wire centerlines with their metal
    layer, and vias — and renders it as a GDSII library: one structure
    per AQFP standard cell (outline, JJ markers, pin markers) plus a
    TOP structure instantiating every cell by SREF and drawing every
    wire as a PATH.

    GDS layer map: 1 outline, 2 JJ, 3 pins, 10 metal-1 (horizontal
    wiring), 11 metal-2 (vertical wiring), 12 via, 20 labels,
    21/22 AC clock serpentines, 23 DC trunk. *)

type placed_cell = {
  lib : Cell.t;
  node : int;  (** originating netlist node *)
  name : string option;
  origin : Geom.point;  (** lower-left (row-local top edge is +y down;
      the GDS writer flips nothing — viewers show the die mirrored,
      which is harmless) *)
}

type wire = {
  net : int;
  layer : int;  (** 10 = horizontal metal, 11 = vertical metal *)
  a : Geom.point;
  b : Geom.point;
}

type via = { net : int; at : Geom.point }

type t = {
  tech : Tech.t;
  cells : placed_cell array;
  wires : wire array;
  vias : via array;
  bias : wire array;
      (** clock/power distribution (paper Fig. 2): both AC excitation
          lines serpentine through every row (layers 21/22), plus a DC
          trunk (layer 23). Kept separate from signal wires so signal
          metrics and DRC exclusivity are unaffected. *)
  die : Geom.rect;
}

val wire_width : float
(** Drawn PTL width, µm (2.0). *)

val layer_outline : int
val layer_jj : int
val layer_pin : int
val layer_m1 : int
val layer_m2 : int
val layer_via : int
val layer_label : int
val layer_ac1 : int
val layer_ac2 : int
val layer_dc : int
(** The GDS layer map above, as constants (DRC and the writers share
    them). *)

val build : Problem.t -> Router.result -> t
(** Assemble geometry. Wire segments come from the route polylines:
    horizontal runs on metal 1, vertical runs on metal 2, a via at
    every interior corner. *)

val to_gds : ?libname:string -> t -> Gds.lib

val write_gds : string -> t -> unit

type stats = {
  n_cells : int;
  n_wires : int;
  n_vias : int;
  total_jj : int;
  wirelength : float;  (** signal wiring only, µm *)
  bias_wirelength : float;  (** clock/power serpentines, µm *)
  die_area_mm2 : float;
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
