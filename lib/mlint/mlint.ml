type finding = {
  rule : string;
  severity : Diag.severity;
  path : string;
  line : int;
  col : int;
  message : string;
  snippet : string;
}

type report = {
  findings : finding list;
  errors : int;
  warnings : int;
  suppressed : int;
  baselined : int;
  stale_baseline : string list;
  files : int;
}

(* ---- rule table ---- *)

let rules =
  [
    ("SL-CATCH-01", Diag.Error);
    ("SL-EXIT-01", Diag.Error);
    ("SL-GLOBAL-01", Diag.Error);
    ("SL-HASH-01", Diag.Error);
    ("SL-LABEL-01", Diag.Error);
    ("SL-MARSHAL-01", Diag.Error);
    ("SL-PARSE-01", Diag.Error);
    ("SL-POLY-01", Diag.Warning);
    ("SL-PRINT-01", Diag.Error);
    ("SL-RULEID-01", Diag.Error);
    ("SL-TIME-01", Diag.Error);
  ]

let rule_ids = List.map fst rules

let severity_of rule =
  match List.assoc_opt rule rules with Some s -> s | None -> Diag.Error

(* ---- path scopes ---- *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let in_lib p = starts_with "lib/" p

(* the libraries that implement flow stages: where the determinism
   contract is strictest (their outputs are cached, proved and
   byte-compared) *)
let stage_dirs =
  [ "lib/absint/"; "lib/check/"; "lib/geom/"; "lib/layout/"; "lib/place/";
    "lib/resyn/"; "lib/route/"; "lib/sat/"; "lib/synth/"; "lib/timing/" ]

let in_stage p = List.exists (fun d -> starts_with d p) stage_dirs

(* presentation modules whose whole contract is stdout (the CLI calls
   them to print the paper tables and reports) *)
let presentation =
  [ "lib/core/report.ml"; "lib/core/chip_report.ml"; "lib/util/table.ml" ]

let wallclock = "lib/util/wallclock.ml"
let codec = "lib/db/codec.ml"

(* ---- SL-RULEID-01 shape ---- *)

let first_segment s =
  match String.index_opt s '-' with
  | Some i -> String.sub s 0 i
  | None -> s

let digit_suffixed s =
  match String.rindex_opt s '-' with
  | None -> false
  | Some i ->
      let last = String.sub s (i + 1) (String.length s - i - 1) in
      last <> "" && String.for_all (fun c -> c >= '0' && c <= '9') last

(* ---- per-file evaluation ---- *)

let parse_structure (src : Sl_source.t) =
  let lb = Lexing.from_string src.Sl_source.text in
  Lexing.set_filename lb src.Sl_source.path;
  match Parse.implementation lb with
  | str -> Ok str
  | exception Syntaxerr.Error err ->
      let loc = Syntaxerr.location_of_error err in
      Error (loc.Location.loc_start.Lexing.pos_lnum, "syntax error")
  | exception exn -> Error (1, Printexc.to_string exn)

let finding src ~rule ~line ~col fmt =
  Printf.ksprintf
    (fun message ->
      { rule; severity = severity_of rule; path = src.Sl_source.path; line; col;
        message; snippet = Sl_source.snippet src ~line })
    fmt

let eval_site src ~known_ids ~known_prefixes ~sorted_items (s : Sl_scan.site) =
  let p = src.Sl_source.path in
  let f ~rule fmt = finding src ~rule ~line:s.Sl_scan.line ~col:s.Sl_scan.col fmt in
  match s.Sl_scan.fact with
  | Sl_scan.Hashtbl_iter fn ->
      if List.mem s.Sl_scan.item sorted_items then None
      else
        Some
          (f ~rule:"SL-HASH-01"
             "Hashtbl.%s iterates in hash-bucket order and no sort appears in \
              the enclosing definition; order-dependent results break \
              byte-identical reports"
             fn)
  | Sl_scan.Time_call fn ->
      if p = wallclock then None
      else
        Some
          (f ~rule:"SL-TIME-01"
             "%s outside the Wallclock module; time must never reach a stage \
              output or cache key"
             fn)
  | Sl_scan.Marshal_use fn ->
      if p = codec then None
      else
        Some
          (f ~rule:"SL-MARSHAL-01"
             "%s bypasses the versioned Codec frames (lib/db/codec.ml is the \
              only allowed user)"
             fn)
  | Sl_scan.Poly_use fn ->
      if not (in_stage p) then None
      else
        Some
          (f ~rule:"SL-POLY-01"
             "polymorphic %s in a stage library; prefer a monomorphic \
              comparator (Int.compare, String.compare, a record comparator)"
             fn)
  | Sl_scan.Global_mut (name, creator) ->
      if not (in_lib p) then None
      else
        Some
          (f ~rule:"SL-GLOBAL-01"
             "module-level mutable state `%s` (%s); register it in the \
              determinism-contract table (sl-ignore with a reason) or move it \
              into the call graph"
             name creator)
  | Sl_scan.Catch_all ->
      Some
        (f ~rule:"SL-CATCH-01"
           "catch-all handler drops the exception; match the exceptions you \
            mean or re-raise")
  | Sl_scan.Unlabeled_parallel fn ->
      Some
        (f ~rule:"SL-LABEL-01"
           "Parallel.%s call site carries no ~label; sanitizer findings and \
            the call-site inventory cannot name it"
           fn)
  | Sl_scan.Print_call fn ->
      if (not (in_lib p)) || List.mem p presentation then None
      else
        Some
          (f ~rule:"SL-PRINT-01"
             "%s writes to stdout from a library; return a string or take a \
              formatter"
             fn)
  | Sl_scan.Exit_call ->
      if not (in_lib p) then None
      else
        Some
          (f ~rule:"SL-EXIT-01"
             "exit from a library preempts the CLI's error handling and exit \
              codes")
  | Sl_scan.Rule_string id ->
      if List.mem id known_ids then None
      else if digit_suffixed id || List.mem (first_segment id) known_prefixes
      then
        Some
          (f ~rule:"SL-RULEID-01"
             "diagnostic id %S has no entry in the Rules registry" id)
      else None
  | Sl_scan.Sort_call -> None

let check_source ~known_ids (src : Sl_source.t) =
  let known_prefixes =
    List.sort_uniq String.compare (List.map first_segment known_ids)
  in
  let raw =
    match parse_structure src with
    | Error (line, what) ->
        [ finding src ~rule:"SL-PARSE-01" ~line ~col:0
            "file does not parse (%s); nothing in it can be checked" what ]
    | Ok str ->
        let sites = Sl_scan.scan str in
        let sorted_items =
          List.filter_map
            (fun (s : Sl_scan.site) ->
              match s.Sl_scan.fact with
              | Sl_scan.Sort_call -> Some s.Sl_scan.item
              | _ -> None)
            sites
          |> List.sort_uniq Int.compare
        in
        List.filter_map
          (eval_site src ~known_ids ~known_prefixes ~sorted_items)
          sites
  in
  let supp = ref 0 in
  let kept =
    List.filter
      (fun fd ->
        if Sl_source.suppressed src ~rule:fd.rule ~line:fd.line then begin
          incr supp;
          false
        end
        else true)
      raw
  in
  (kept, !supp)

(* ---- baseline ---- *)

let parse_baseline_line ln =
  let ln = String.trim ln in
  if ln = "" || ln.[0] = '#' then None
  else
    match List.filter (fun s -> s <> "") (String.split_on_char ' ' ln) with
    | [ rule; at ] -> (
        match String.rindex_opt at ':' with
        | None -> None
        | Some i -> (
            let path = String.sub at 0 i
            and lno = String.sub at (i + 1) (String.length at - i - 1) in
            match int_of_string_opt lno with
            | Some l -> Some (rule, path, l)
            | None -> None))
    | _ -> None

let baseline_lines findings =
  List.filter_map
    (fun fd ->
      if fd.severity = Diag.Error then
        Some (Printf.sprintf "%s %s:%d" fd.rule fd.path fd.line)
      else None)
    findings

let load_baseline path =
  if not (Sys.file_exists path) then Ok []
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | text ->
        Ok
          (List.filter
             (fun l -> String.trim l <> "")
             (String.split_on_char '\n' text))
    | exception Sys_error msg -> Error msg

(* ---- driver ---- *)

let compare_finding a b =
  let c = String.compare a.path b.path in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let discover root =
  let out = ref [] in
  let rec walk rel =
    match Sys.readdir (Filename.concat root rel) with
    | entries ->
        Array.sort String.compare entries;
        Array.iter
          (fun e ->
            let r = rel ^ "/" ^ e in
            if Sys.is_directory (Filename.concat root r) then walk r
            else if Filename.check_suffix e ".ml" then out := r :: !out)
          entries
    | exception Sys_error _ -> ()
  in
  walk "lib";
  walk "bin";
  List.sort String.compare !out

let run ~known_ids ?(baseline = []) ~root () =
  if not (Sys.is_directory (Filename.concat root "lib")) then
    Error (Printf.sprintf "%s: no lib/ directory to analyze" root)
  else begin
    let files = discover root in
    let suppressed = ref 0 in
    let all =
      List.concat_map
        (fun rel ->
          match Sl_source.load ~root ~rel with
          | Error msg ->
              [ { rule = "SL-PARSE-01"; severity = Diag.Error; path = rel;
                  line = 1; col = 0;
                  message = Printf.sprintf "cannot read file: %s" msg;
                  snippet = "" } ]
          | Ok src ->
              let kept, supp = check_source ~known_ids src in
              suppressed := !suppressed + supp;
              kept)
        files
    in
    let entries = List.filter_map parse_baseline_line baseline in
    let used = Array.make (List.length entries) false in
    let baselined = ref 0 in
    let kept =
      List.filter
        (fun fd ->
          let hit = ref false in
          List.iteri
            (fun i (rule, path, line) ->
              if (not !hit) && rule = fd.rule && path = fd.path && line = fd.line
              then begin
                hit := true;
                used.(i) <- true
              end)
            entries;
          if !hit then incr baselined;
          not !hit)
        all
    in
    let stale =
      List.filteri (fun i _ -> not used.(i)) entries
      |> List.map (fun (rule, path, line) ->
             Printf.sprintf "%s %s:%d" rule path line)
    in
    let findings = List.sort compare_finding kept in
    Ok
      {
        findings;
        errors = List.length (List.filter (fun f -> f.severity = Diag.Error) findings);
        warnings =
          List.length (List.filter (fun f -> f.severity = Diag.Warning) findings);
        suppressed = !suppressed;
        baselined = !baselined;
        stale_baseline = stale;
        files = List.length files;
      }
  end

(* ---- rendering ---- *)

let to_diag fd =
  let mk =
    match fd.severity with
    | Diag.Error -> Diag.error
    | Diag.Warning -> Diag.warning
    | Diag.Info -> Diag.info
  in
  mk
    ~witness:(if fd.snippet = "" then [] else [ fd.snippet ])
    ~rule:fd.rule Diag.Global "%s:%d:%d: %s" fd.path fd.line fd.col fd.message

let render_text fd = Diag.to_string (to_diag fd)
let render_json fd = Diag.to_json (to_diag fd)

let summary r =
  Printf.sprintf
    "# mlint: %d file(s), %d finding(s): %d error(s), %d warning(s); %d \
     suppressed, %d baselined"
    r.files
    (List.length r.findings)
    r.errors r.warnings r.suppressed r.baselined
