(** [sf_mlint] — the self-hosted static analyzer that turns the flow's
    determinism contract (docs/ARCHITECTURE.md) from prose into a
    merge gate.

    Every [lib/**/*.ml] and [bin/*.ml] file is parsed with
    [compiler-libs] ([Parse.implementation]) and checked against the
    SL-* rules: unordered [Hashtbl] iteration feeding outputs,
    wall-clock and nondeterministic-seed primitives outside
    [Wallclock], [Marshal] bypassing the versioned [Codec] frames,
    polymorphic compares in stage libraries, unregistered module-level
    mutable state, exception-swallowing catch-alls, unlabeled
    [Parallel] call sites, stdout prints and [exit] in libraries, and
    diagnostic-id literals missing from the [Rules] registry.

    Findings render through the {!Diag} machinery (one line of text or
    JSON each, [file:line:col] in the message, the offending source
    line as the witness). Per-site suppression is a
    [(* sl-ignore: SL-XXX-NN reason *)] comment on or above the
    offending line; grandfathered findings live in a committed
    baseline file. Only error-severity findings gate. *)

type finding = {
  rule : string;
  severity : Diag.severity;
  path : string;  (** root-relative, '/'-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  message : string;
  snippet : string;  (** the trimmed offending source line *)
}

type report = {
  findings : finding list;  (** unsuppressed, unbaselined, sorted *)
  errors : int;  (** error-severity findings among [findings] *)
  warnings : int;
  suppressed : int;  (** findings silenced by [sl-ignore] comments *)
  baselined : int;  (** findings silenced by the baseline file *)
  stale_baseline : string list;  (** baseline entries that matched nothing *)
  files : int;  (** files scanned *)
}

val rules : (string * Diag.severity) list
(** Every SL-* rule id with its severity, sorted by id. Each must have
    a matching entry in the [sf_check] [Rules] registry (and vice
    versa for the ["mlint"] pass) — [test_mlint.ml] locks the two
    together. *)

val rule_ids : string list

val check_source :
  known_ids:string list -> Sl_source.t -> finding list * int
(** Analyze one loaded source; returns the unsuppressed findings (in
    source order) and the count of sl-ignore-suppressed ones.
    [known_ids] feeds SL-RULEID-01. *)

val run :
  known_ids:string list ->
  ?baseline:string list ->
  root:string ->
  unit ->
  (report, string) result
(** Analyze [root/lib/**/*.ml] and [root/bin/*.ml]. [baseline] is the
    raw line list of a baseline file ([SL-XXX-NN path:line] entries;
    blank and [#] lines ignored). [Error] means [root] has no [lib/]
    directory. *)

val load_baseline : string -> (string list, string) result
(** Read a baseline file into raw lines; missing file = [Ok []]. *)

val baseline_lines : finding list -> string list
(** Serialize the error-severity findings as baseline entries
    (warnings never gate, so they are never grandfathered). *)

val to_diag : finding -> Diag.t
val render_text : finding -> string
val render_json : finding -> string

val summary : report -> string
(** One [# mlint: ...] counters line (stderr material, so stdout stays
    byte-comparable across runs). *)
