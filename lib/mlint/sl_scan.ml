open Parsetree

type fact =
  | Hashtbl_iter of string
  | Sort_call
  | Time_call of string
  | Marshal_use of string
  | Poly_use of string
  | Global_mut of string * string
  | Catch_all
  | Unlabeled_parallel of string
  | Print_call of string
  | Exit_call
  | Rule_string of string

type site = { fact : fact; line : int; col : int; item : int }

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply _ -> [ "<apply>" ]

let dotted l = String.concat "." l

(* string literals shaped like diagnostic ids: >= 2 dash-separated
   [A-Z0-9] segments, alphabetic first segment, no empty segment *)
let idish s =
  let segs = String.split_on_char '-' s in
  let all p seg = seg <> "" && String.for_all p seg in
  match segs with
  | first :: (_ :: _ as rest) ->
      all (fun c -> c >= 'A' && c <= 'Z') first
      && String.length first >= 2
      && List.for_all
           (all (fun c -> (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')))
           rest
  | _ -> false

let parallel_fns =
  [ "map_chunks"; "parallel_init"; "parallel_map"; "parallel_iter"; "parallel_reduce" ]

let stdout_printers =
  [ "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_int"; "print_float"; "print_bytes" ]

let classify path =
  match path with
  | [ "Hashtbl"; (("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values") as f) ] ->
      Some (Hashtbl_iter f)
  | [ ("List" | "Array" | "ListLabels" | "ArrayLabels");
      ("sort" | "sort_uniq" | "stable_sort" | "fast_sort") ] ->
      Some Sort_call
  | [ "Sys"; "time" ] -> Some (Time_call "Sys.time")
  | [ "Unix"; (("gettimeofday" | "time" | "times") as f) ] -> Some (Time_call ("Unix." ^ f))
  | [ "Random"; "self_init" ] -> Some (Time_call "Random.self_init")
  | "Marshal" :: _ :: _ -> Some (Marshal_use (dotted path))
  | [ "compare" ] | [ "Stdlib"; "compare" ] | [ "Pervasives"; "compare" ] ->
      Some (Poly_use (dotted path))
  | [ "Hashtbl"; (("hash" | "seeded_hash") as f) ] -> Some (Poly_use ("Hashtbl." ^ f))
  | [ f ] when List.mem f stdout_printers -> Some (Print_call f)
  | [ ("Printf" | "Format"); "printf" ] -> Some (Print_call (dotted path))
  | [ "exit" ] | [ "Stdlib"; "exit" ] -> Some Exit_call
  | _ -> None

let mutable_creators =
  [ [ "ref" ]; [ "Hashtbl"; "create" ]; [ "Buffer"; "create" ];
    [ "Array"; "make" ]; [ "Array"; "create_float" ]; [ "Bytes"; "create" ];
    [ "Bytes"; "make" ]; [ "Atomic"; "make" ]; [ "Queue"; "create" ];
    [ "Stack"; "create" ] ]

let rec pattern_name p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p', _) -> pattern_name p'
  | _ -> None

let is_any p = match p.ppat_desc with Ppat_any -> true | _ -> false

let scan (str : structure) : site list =
  let sites = ref [] in
  let item = ref (-1) in
  let add fact (loc : Location.t) =
    let p = loc.Location.loc_start in
    sites :=
      { fact; line = p.Lexing.pos_lnum; col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
        item = !item }
      :: !sites
  in
  let expr_hook (it : Ast_iterator.iterator) (e : expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match classify (flatten txt) with
        | Some f -> add f e.pexp_loc
        | None -> ())
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Ldot (Longident.Lident "Parallel", fn); _ }; _ },
          args )
      when List.mem fn parallel_fns ->
        if
          not
            (List.exists
               (fun (l, _) -> l = Asttypes.Labelled "label")
               args)
        then add (Unlabeled_parallel fn) e.pexp_loc
    | Pexp_try (_, cases) ->
        List.iter
          (fun c -> if is_any c.pc_lhs then add Catch_all c.pc_lhs.ppat_loc)
          cases
    | Pexp_match (_, cases) ->
        List.iter
          (fun c ->
            match c.pc_lhs.ppat_desc with
            | Ppat_exception p when is_any p -> add Catch_all c.pc_lhs.ppat_loc
            | _ -> ())
          cases
    | Pexp_constant (Pconst_string (s, sloc, _)) ->
        if idish s then add (Rule_string s) sloc
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let structure_item_hook (it : Ast_iterator.iterator) (si : structure_item) =
    (match si.pstr_desc with
    | Pstr_value (_, bindings) ->
        List.iter
          (fun vb ->
            match vb.pvb_expr.pexp_desc with
            | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
              when List.mem (flatten txt) mutable_creators ->
                let name = Option.value ~default:"_" (pattern_name vb.pvb_pat) in
                add (Global_mut (name, dotted (flatten txt))) vb.pvb_loc
            | _ -> ())
          bindings
    | _ -> ());
    Ast_iterator.default_iterator.structure_item it si
  in
  let it =
    { Ast_iterator.default_iterator with
      expr = expr_hook; structure_item = structure_item_hook }
  in
  List.iteri
    (fun i si ->
      item := i;
      it.Ast_iterator.structure_item it si)
    str;
  List.rev !sites
