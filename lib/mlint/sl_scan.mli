(** Single-pass Parsetree traversal collecting the syntactic facts the
    SL-* rules evaluate.

    The scan is purely syntactic: module paths are matched as written
    ([Hashtbl.iter] is recognized, an aliased [module H = Hashtbl] is
    not), which keeps the analyzer honest about what it can and cannot
    see — the determinism contract asks call sites to be greppable,
    and the rules enforce the greppable form. *)

type fact =
  | Hashtbl_iter of string
      (** [Hashtbl.iter]/[fold]/[to_seq*] mention — hash-bucket order *)
  | Sort_call  (** a [List]/[Array] sort function mention *)
  | Time_call of string  (** wall-clock / nondeterministic-seed primitive *)
  | Marshal_use of string  (** any [Marshal.*] mention *)
  | Poly_use of string
      (** polymorphic [compare] / [Stdlib.compare] / [Hashtbl.hash] *)
  | Global_mut of string * string
      (** module-level [let name = ref/Hashtbl.create/Buffer.create/...]:
          binding name, creator path *)
  | Catch_all  (** [with _ ->] (or [exception _] match case) *)
  | Unlabeled_parallel of string
      (** a [Parallel.<fn>] application with no [~label] argument *)
  | Print_call of string  (** stdout printer mention *)
  | Exit_call  (** [exit] mention *)
  | Rule_string of string
      (** a string literal shaped like a diagnostic rule id *)

type site = {
  fact : fact;
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  item : int;  (** ordinal of the enclosing top-level structure item *)
}

val scan : Parsetree.structure -> site list
(** Sites in traversal order. *)

val idish : string -> bool
(** Is a string literal shaped like a rule id ([A-Z0-9] segments
    joined by single dashes, alphabetic first segment)? Exposed for
    the tests. *)
