type t = {
  path : string;
  text : string;
  lines : string array;
  supp : string list array;
}

let split_lines text = Array.of_list (String.split_on_char '\n' text)

let marker = "sl-ignore:"

let is_id_char c = (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '-'

(* rule ids following an [sl-ignore:] marker: consecutive tokens made
   of [A-Z0-9-] that contain a dash; the first other token starts the
   free-form reason *)
let ids_after line pos =
  let n = String.length line in
  let rec skip_ws i = if i < n && (line.[i] = ' ' || line.[i] = '\t') then skip_ws (i + 1) else i in
  let rec token_end i = if i < n && is_id_char line.[i] then token_end (i + 1) else i in
  let rec collect acc i =
    let i = skip_ws i in
    let j = token_end i in
    if j > i && String.contains (String.sub line i (j - i)) '-' then
      let j' = if j < n && line.[j] = ',' then j + 1 else j in
      collect (String.sub line i (j - i) :: acc) j'
    else List.rev acc
  in
  collect [] pos

let find_sub line sub from =
  let n = String.length line and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = sub then Some i
    else go (i + 1)
  in
  go from

let line_suppressions line =
  let rec go acc from =
    match find_sub line marker from with
    | None -> acc
    | Some i -> go (acc @ ids_after line (i + String.length marker)) (i + String.length marker)
  in
  go [] 0

let of_string ~path text =
  let lines = split_lines text in
  let supp = Array.map line_suppressions lines in
  { path; text; lines; supp }

let load ~root ~rel =
  let full = Filename.concat root rel in
  match In_channel.with_open_bin full In_channel.input_all with
  | text -> Ok (of_string ~path:rel text)
  | exception Sys_error msg -> Error msg

let line t n = if n >= 1 && n <= Array.length t.lines then t.lines.(n - 1) else ""

let snippet t ~line:n =
  let s = String.trim (line t n) in
  if String.length s <= 96 then s else String.sub s 0 93 ^ "..."

let supp_at t n =
  if n >= 1 && n <= Array.length t.supp then t.supp.(n - 1) else []

let suppressed t ~rule ~line =
  List.mem rule (supp_at t line) || List.mem rule (supp_at t (line - 1))
