(** One source file under analysis: raw text, a line table, and the
    [(* sl-ignore: SL-XXX-NN reason *)] suppression comments.

    Suppressions are purely lexical: a marker on line [l] suppresses
    the named rules on line [l] (trailing comment) and on line
    [l + 1] (comment on its own line above the offending code). The
    reason text after the rule ids is free-form and encouraged — it is
    what a reviewer reads instead of the deleted finding. *)

type t = {
  path : string;  (** root-relative, '/'-separated *)
  text : string;
  lines : string array;  (** 0-based storage; use {!line} (1-based) *)
  supp : string list array;  (** rules suppressed *at* each 1-based line *)
}

val of_string : path:string -> string -> t

val load : root:string -> rel:string -> (t, string) result
(** Read [root/rel]. [Error] carries the system message. *)

val line : t -> int -> string
(** 1-based; out-of-range lines are [""]. *)

val snippet : t -> line:int -> string
(** The trimmed source line, truncated to 96 chars — the witness text
    embedded in a diagnostic. *)

val suppressed : t -> rule:string -> line:int -> bool
(** Is [rule] suppressed at [line] (marker on the same or the
    preceding line)? *)
