let strip s = String.trim s

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '[' || c = ']'

let split_args s =
  String.split_on_char ',' s |> List.map strip |> List.filter (fun x -> x <> "")

exception Parse_error of string

let fail lineno fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error (Printf.sprintf "line %d: %s" lineno msg))) fmt

(* A statement as it appears in the file, before id resolution. *)
type stmt =
  | S_input of string
  | S_output of string
  | S_gate of string * string * string list (* target, op, args *)

let parse_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = strip line in
  if line = "" then None
  else
    let upper = String.uppercase_ascii line in
    let paren_arg () =
      match (String.index_opt line '(', String.rindex_opt line ')') with
      | Some i, Some j when j > i -> strip (String.sub line (i + 1) (j - i - 1))
      | _ -> fail lineno "malformed parenthesis"
    in
    if String.length upper >= 6 && String.sub upper 0 6 = "INPUT(" then
      Some (S_input (paren_arg ()))
    else if String.length upper >= 7 && String.sub upper 0 7 = "OUTPUT(" then
      Some (S_output (paren_arg ()))
    else
      match String.index_opt line '=' with
      | None -> fail lineno "expected INPUT/OUTPUT/assignment, got %S" line
      | Some eq ->
          let target = strip (String.sub line 0 eq) in
          if target = "" || not (String.for_all is_ident_char target) then
            fail lineno "bad target name %S" target;
          let rhs = strip (String.sub line (eq + 1) (String.length line - eq - 1)) in
          (match (String.index_opt rhs '(', String.rindex_opt rhs ')') with
          | Some i, Some j when j > i ->
              let op = String.uppercase_ascii (strip (String.sub rhs 0 i)) in
              let args = split_args (String.sub rhs (i + 1) (j - i - 1)) in
              Some (S_gate (target, op, args))
          | _ -> fail lineno "malformed gate expression %S" rhs)

(* Balanced 2-input tree over [ids] with constructor [mk]. *)
let rec tree mk = function
  | [] -> invalid_arg "tree: empty"
  | [ x ] -> x
  | ids ->
      let n = List.length ids in
      let rec take k = function
        | rest when k = 0 -> ([], rest)
        | [] -> ([], [])
        | x :: rest ->
            let l, r = take (k - 1) rest in
            (x :: l, r)
      in
      let left, right = take (n / 2) ids in
      mk (tree mk left) (tree mk right)

let build stmts =
  let nl = Netlist.create () in
  let env = Hashtbl.create 64 in
  (* Two passes: declare inputs first, then resolve gates in dependency
     order (bench files may use names before defining them). *)
  let gates = Hashtbl.create 64 in
  let gate_order = ref [] in
  let outputs = ref [] in
  List.iter
    (fun (lineno, stmt) ->
      match stmt with
      | S_input name ->
          if Hashtbl.mem env name then fail lineno "duplicate input %s" name;
          Hashtbl.replace env name (Netlist.add nl ~name Netlist.Input [||])
      | S_output name -> outputs := (lineno, name) :: !outputs
      | S_gate (target, op, args) ->
          if Hashtbl.mem gates target then fail lineno "duplicate gate %s" target;
          Hashtbl.replace gates target (lineno, op, args);
          gate_order := target :: !gate_order)
    stmts;
  (* [lineno] is the line of the statement referencing [name], so
     "undefined signal" and "cycle" errors point at the use site *)
  let rec resolve ?(stack = []) ~lineno name =
    match Hashtbl.find_opt env name with
    | Some id -> id
    | None -> (
        if List.mem name stack then fail lineno "cycle through %s" name;
        match Hashtbl.find_opt gates name with
        | None -> fail lineno "undefined signal %s" name
        | Some (lineno, op, args) ->
            let stack = name :: stack in
            let arg_ids = List.map (resolve ~stack ~lineno) args in
            let check_arity n =
              if List.length arg_ids <> n then
                fail lineno "%s expects %d args, got %d" op n (List.length arg_ids)
            in
            let check_nary () =
              if arg_ids = [] then fail lineno "%s needs at least one arg" op
            in
            let mk2 k a b = Netlist.add nl k [| a; b |] in
            let id =
              match op with
              | "NOT" | "INV" ->
                  check_arity 1;
                  Netlist.add nl ~name Netlist.Not [| List.hd arg_ids |]
              | "BUF" | "BUFF" ->
                  check_arity 1;
                  Netlist.add nl ~name Netlist.Buf [| List.hd arg_ids |]
              | "AND" ->
                  check_nary ();
                  if List.length arg_ids = 1 then
                    Netlist.add nl ~name Netlist.Buf [| List.hd arg_ids |]
                  else tree (mk2 Netlist.And) arg_ids
              | "OR" ->
                  check_nary ();
                  if List.length arg_ids = 1 then
                    Netlist.add nl ~name Netlist.Buf [| List.hd arg_ids |]
                  else tree (mk2 Netlist.Or) arg_ids
              | "XOR" ->
                  check_nary ();
                  if List.length arg_ids = 1 then
                    Netlist.add nl ~name Netlist.Buf [| List.hd arg_ids |]
                  else tree (mk2 Netlist.Xor) arg_ids
              | "NAND" ->
                  check_nary ();
                  if List.length arg_ids = 2 then
                    Netlist.add nl ~name Netlist.Nand
                      [| List.nth arg_ids 0; List.nth arg_ids 1 |]
                  else
                    let conj = tree (mk2 Netlist.And) arg_ids in
                    Netlist.add nl ~name Netlist.Not [| conj |]
              | "NOR" ->
                  check_nary ();
                  if List.length arg_ids = 2 then
                    Netlist.add nl ~name Netlist.Nor
                      [| List.nth arg_ids 0; List.nth arg_ids 1 |]
                  else
                    let disj = tree (mk2 Netlist.Or) arg_ids in
                    Netlist.add nl ~name Netlist.Not [| disj |]
              | "XNOR" ->
                  check_nary ();
                  if List.length arg_ids = 2 then
                    Netlist.add nl ~name Netlist.Xnor
                      [| List.nth arg_ids 0; List.nth arg_ids 1 |]
                  else
                    let x = tree (mk2 Netlist.Xor) arg_ids in
                    Netlist.add nl ~name Netlist.Not [| x |]
              | "DFF" | "DFFSR" -> fail lineno "sequential element %s unsupported" op
              | _ -> fail lineno "unknown gate %s" op
            in
            Hashtbl.replace env name id;
            id)
  in
  List.iter
    (fun name ->
      match Hashtbl.find_opt gates name with
      | Some (lineno, _, _) -> ignore (resolve ~lineno name)
      | None -> ())
    (List.rev !gate_order);
  List.iter
    (fun (lineno, name) ->
      match Hashtbl.find_opt env name with
      | Some id -> ignore (Netlist.add nl ~name Netlist.Output [| id |])
      | None -> fail lineno "output %s never defined" name)
    (List.rev !outputs);
  nl

let parse source =
  let lines = String.split_on_char '\n' source in
  try
    let stmts =
      List.filteri (fun _ _ -> true) lines
      |> List.mapi (fun i l -> (i + 1, parse_line (i + 1) l))
      |> List.filter_map (fun (i, s) -> Option.map (fun s -> (i, s)) s)
    in
    Ok (build stmts)
  with Parse_error msg -> Error msg

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  parse content

let to_bench nl =
  let buf = Buffer.create 1024 in
  let node_name id =
    match Netlist.name nl id with Some s -> s | None -> Printf.sprintf "n%d" id
  in
  List.iter
    (fun id -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (node_name id)))
    (Netlist.inputs nl);
  List.iter
    (fun id ->
      let driver = (Netlist.fanins nl id).(0) in
      Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (node_name driver)))
    (Netlist.outputs nl);
  Netlist.iter nl (fun nd ->
      let args () =
        String.concat ", " (Array.to_list (Array.map node_name nd.Netlist.fanins))
      in
      let emit op =
        Buffer.add_string buf
          (Printf.sprintf "%s = %s(%s)\n" (node_name nd.Netlist.id) op (args ()))
      in
      match nd.Netlist.kind with
      | Netlist.Input | Netlist.Output -> ()
      | Netlist.Not -> emit "NOT"
      | Netlist.Buf -> emit "BUFF"
      | Netlist.And -> emit "AND"
      | Netlist.Or -> emit "OR"
      | Netlist.Nand -> emit "NAND"
      | Netlist.Nor -> emit "NOR"
      | Netlist.Xor -> emit "XOR"
      | Netlist.Xnor -> emit "XNOR"
      | Netlist.Const _ | Netlist.Maj | Netlist.Splitter _ ->
          invalid_arg "Bench_parser.to_bench: netlist is not pure AOI");
  Buffer.contents buf
