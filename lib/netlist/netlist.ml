type kind =
  | Input
  | Output
  | Const of bool
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Maj
  | Splitter of int

let kind_name = function
  | Input -> "input"
  | Output -> "output"
  | Const false -> "const0"
  | Const true -> "const1"
  | Buf -> "buf"
  | Not -> "not"
  | And -> "and"
  | Or -> "or"
  | Nand -> "nand"
  | Nor -> "nor"
  | Xor -> "xor"
  | Xnor -> "xnor"
  | Maj -> "maj"
  | Splitter k -> Printf.sprintf "spl%d" k

let arity = function
  | Input | Const _ -> 0
  | Output | Buf | Not | Splitter _ -> 1
  | And | Or | Nand | Nor | Xor | Xnor -> 2
  | Maj -> 3

type node = {
  id : int;
  mutable kind : kind;
  mutable fanins : int array;
  mutable name : string option;
  mutable phase : int;
}

type t = {
  nodes : node Vec.t;
  mutable input_ids : int list; (* reversed *)
  mutable output_ids : int list; (* reversed *)
}

let create () =
  { nodes = Vec.create (); input_ids = []; output_ids = [] }

let size t = Vec.length t.nodes

let node t i = Vec.get t.nodes i

let add t ?name k fanins =
  if Array.length fanins <> arity k then
    invalid_arg
      (Printf.sprintf "Netlist.add: %s expects %d fanins, got %d"
         (kind_name k) (arity k) (Array.length fanins));
  let n = size t in
  Array.iter
    (fun f ->
      if f < 0 || f >= n then
        invalid_arg (Printf.sprintf "Netlist.add: dangling fanin %d" f))
    fanins;
  let id = Vec.push t.nodes { id = n; kind = k; fanins; name; phase = -1 } in
  (match k with
  | Input -> t.input_ids <- id :: t.input_ids
  | Output -> t.output_ids <- id :: t.output_ids
  | _ -> ());
  id

let kind t i = (node t i).kind
let fanins t i = (node t i).fanins
let phase t i = (node t i).phase
let set_phase t i p = (node t i).phase <- p
let set_fanins t i f = (node t i).fanins <- f
let name t i = (node t i).name

let set_kind t i k =
  let nd = node t i in
  (match (nd.kind, k) with
  | Output, _ | _, Output | Input, _ | _, Input ->
      invalid_arg "Netlist.set_kind: cannot retype IO nodes"
  | _ -> ());
  nd.kind <- k

let inputs t = List.rev t.input_ids
let outputs t = List.rev t.output_ids

let iter t f = Vec.iter f t.nodes
let fold t f acc = Vec.fold f acc t.nodes

let fanout_counts t =
  let counts = Array.make (size t) 0 in
  iter t (fun nd ->
      Array.iter (fun f -> counts.(f) <- counts.(f) + 1) nd.fanins);
  counts

let fanouts t =
  let outs = Array.make (size t) [] in
  iter t (fun nd ->
      Array.iter (fun f -> outs.(f) <- nd.id :: outs.(f)) nd.fanins);
  Array.map List.rev outs

let topo_order t =
  let n = size t in
  let indeg = Array.make n 0 in
  let outs = fanouts t in
  iter t (fun nd -> indeg.(nd.id) <- Array.length nd.fanins);
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then Queue.add i queue
  done;
  let order = Array.make n 0 in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order.(!k) <- i;
    incr k;
    List.iter
      (fun o ->
        indeg.(o) <- indeg.(o) - 1;
        if indeg.(o) = 0 then Queue.add o queue)
      outs.(i)
  done;
  if !k <> n then failwith "Netlist.topo_order: combinational cycle";
  order

let levelize t =
  let order = topo_order t in
  let maxp = ref 0 in
  Array.iter
    (fun i ->
      let nd = node t i in
      let p =
        match nd.kind with
        | Input | Const _ -> 0
        | Output ->
            (* output markers mirror their driver's phase *)
            phase t nd.fanins.(0)
        | _ ->
            1 + Array.fold_left (fun acc f -> max acc (phase t f)) (-1) nd.fanins
      in
      nd.phase <- p;
      if nd.kind <> Output then maxp := max !maxp p)
    order;
  !maxp

let is_balanced t =
  let ok = ref true in
  iter t (fun nd ->
      match nd.kind with
      | Input | Const _ | Output -> ()
      | _ ->
          Array.iter
            (fun f -> if phase t f <> nd.phase - 1 then ok := false)
            nd.fanins);
  !ok

let max_fanout t = Array.fold_left max 0 (fanout_counts t)

let count_kind t p =
  fold t (fun acc nd -> if p nd.kind then acc + 1 else acc) 0

let validate_diags t =
  let diags = ref [] in
  let push d = diags := d :: !diags in
  let dangling = ref false in
  iter t (fun nd ->
      if Array.length nd.fanins <> arity nd.kind then
        push
          (Diag.error ~rule:"NL-ARITY-01" (Diag.Node nd.id)
             "%s expects %d fanin(s), has %d" (kind_name nd.kind)
             (arity nd.kind)
             (Array.length nd.fanins));
      Array.iter
        (fun f ->
          if f < 0 || f >= size t then begin
            dangling := true;
            push
              (Diag.error ~rule:"NL-DANGLE-01" (Diag.Node nd.id)
                 "dangling fanin id %d (netlist has %d nodes)" f (size t))
          end)
        nd.fanins);
  (* fanout-dependent checks need in-range fanin ids *)
  if not !dangling then begin
    let counts = fanout_counts t in
    iter t (fun nd ->
        match nd.kind with
        | Splitter k when counts.(nd.id) <> k ->
            push
              (Diag.error ~rule:"NL-FANOUT-01" (Diag.Node nd.id)
                 "splitter declares %d outputs but drives %d consumer(s)" k
                 counts.(nd.id))
        | _ -> ());
    try ignore (topo_order t)
    with Failure msg -> push (Diag.error ~rule:"NL-CYCLE-01" Diag.Global "%s" msg)
  end;
  List.rev !diags

let validate t =
  match validate_diags t with
  | [] ->
      Ok
        (Printf.sprintf "%d nodes, %d inputs, %d outputs" (size t)
           (List.length (inputs t))
           (List.length (outputs t)))
  | ds -> Error (String.concat "; " (List.map (fun d -> d.Diag.message) ds))

let copy t =
  (* fan-ins may reference later ids (edge rewiring during insertion
     creates forward references), so build placeholders first and wire
     the real fan-ins in a second pass *)
  let t' = create () in
  iter t (fun nd ->
      let placeholder = Array.map (fun f -> if f < nd.id then f else 0) nd.fanins in
      let id = add t' ?name:nd.name nd.kind placeholder in
      (node t' id).phase <- nd.phase);
  iter t (fun nd -> set_fanins t' nd.id (Array.copy nd.fanins));
  t'

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph netlist {\n  rankdir=TB;\n";
  iter t (fun nd ->
      let label =
        match nd.name with
        | Some s -> Printf.sprintf "%s\\n%s" s (kind_name nd.kind)
        | None -> Printf.sprintf "%d:%s" nd.id (kind_name nd.kind)
      in
      Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" nd.id label);
      Array.iter
        (fun f -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" f nd.id))
        nd.fanins);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp_stats ppf t =
  Format.fprintf ppf "nodes=%d inputs=%d outputs=%d maj=%d buf=%d spl=%d"
    (size t)
    (List.length (inputs t))
    (List.length (outputs t))
    (count_kind t (fun k -> k = Maj))
    (count_kind t (fun k -> k = Buf))
    (count_kind t (function Splitter _ -> true | _ -> false))

let commutative = function
  | And | Or | Nand | Nor | Xor | Xnor | Maj -> true
  | Input | Output | Const _ | Buf | Not | Splitter _ -> false

let struct_hash t =
  (* canonical structural dump: kinds + fan-in wiring in id order;
     names and phases deliberately excluded so that relabeled but
     identically-wired netlists hash alike, and commutative fan-ins
     sorted so operand order does not defeat the hash *)
  let buf = Buffer.create 1024 in
  iter t (fun nd ->
      Buffer.add_string buf (kind_name nd.kind);
      let fanins =
        if commutative nd.kind && Array.length nd.fanins > 1 then begin
          let fs = Array.copy nd.fanins in
          Array.sort compare fs;
          fs
        end
        else nd.fanins
      in
      Array.iter
        (fun f ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int f))
        fanins;
      Buffer.add_char buf '\n');
  Digest.to_hex (Digest.string (Buffer.contents buf))
