(** Logic netlist intermediate representation.

    A netlist is a mutable DAG of gates identified by dense integer
    ids. The same IR carries the design through every stage:

    - after RTL elaboration it is an {e AOI netlist} (2-input
      and/or/nand/nor/xor/xnor + inverters);
    - after majority conversion it is a {e MAJ netlist} (3-input
      majority gates, with and/or kept as majority shorthands);
    - after buffer/splitter insertion it is a legal {e AQFP netlist}
      (every fan-out is 1, every gate's fan-ins sit exactly one clock
      phase above it).

    Since AQFP connections are point-to-point, a "net" in the physical
    stages is one (driver, sink) fan-in edge of this graph. *)

type kind =
  | Input  (** primary input (no fan-in) *)
  | Output  (** primary output marker (one fan-in, no logic) *)
  | Const of bool  (** constant generator cell *)
  | Buf  (** AQFP buffer (also used for path balancing) *)
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Maj  (** 3-input majority *)
  | Splitter of int  (** 1-input, [k]-output fan-out cell, k in 2..4 *)

val kind_name : kind -> string

val arity : kind -> int
(** Required fan-in count of the gate kind ([Input] and [Const] are 0). *)

type t

type node = private {
  id : int;
  mutable kind : kind;
  mutable fanins : int array;
  mutable name : string option;
  mutable phase : int;  (** clock-phase depth; -1 until levelized *)
}

val create : unit -> t

val add : t -> ?name:string -> kind -> int array -> int
(** [add nl kind fanins] appends a gate and returns its id. Checks the
    arity of [kind] against [fanins]. Fan-in ids must already exist. *)

val size : t -> int
(** Number of nodes (including inputs/outputs/dead nodes). *)

val node : t -> int -> node

val kind : t -> int -> kind

val fanins : t -> int -> int array

val phase : t -> int -> int

val set_phase : t -> int -> int -> unit

val set_fanins : t -> int -> int array -> unit

val set_kind : t -> int -> kind -> unit

val name : t -> int -> string option

val inputs : t -> int list
(** Primary input ids in creation order. *)

val outputs : t -> int list
(** [Output] node ids in creation order. *)

val iter : t -> (node -> unit) -> unit

val fold : t -> ('acc -> node -> 'acc) -> 'acc -> 'acc

val fanout_counts : t -> int array
(** [counts.(i)] = number of fan-in references to node [i]. *)

val fanouts : t -> int list array
(** Reverse adjacency: ids of the consumers of each node. *)

val topo_order : t -> int array
(** Topological order (fan-ins before fan-outs). Raises [Failure] on a
    combinational cycle. *)

val levelize : t -> int
(** Assign [phase] = longest distance from any primary input (inputs
    and constants get phase 0) and return the maximum phase. This is
    the clock-phase count of the design {e before} path balancing. *)

val is_balanced : t -> bool
(** True iff every gate with fan-ins has all fan-ins at exactly
    [phase - 1] (the AQFP gate-level-pipelining invariant). Requires a
    prior [levelize]. [Output] nodes are exempt (they are markers, not
    gates). *)

val max_fanout : t -> int

val count_kind : t -> (kind -> bool) -> int

val validate_diags : t -> Diag.t list
(** Structural sanity as checker diagnostics: arities ([NL-ARITY-01]),
    dangling fan-in ids ([NL-DANGLE-01]), combinational cycles
    ([NL-CYCLE-01]) and [Splitter k] nodes whose real consumer count
    differs from [k] ([NL-FANOUT-01]). Empty list = structurally
    sound. The checker's netlist-lint pass builds on this. *)

val validate : t -> (string, string) result
(** [validate_diags] folded back into the legacy shape: [Ok summary]
    when no diagnostics fire, [Error] joining their messages
    otherwise. *)

val copy : t -> t

val commutative : kind -> bool
(** Whether a gate's function is invariant under fan-in permutation
    ([And]/[Or]/[Nand]/[Nor]/[Xor]/[Xnor]/[Maj]). Structural hashing
    and CSE sort such fan-ins into a canonical order. *)

val struct_hash : t -> string
(** Hex digest of the netlist's structure: node kinds and fan-in
    wiring in id order, with names and phases excluded and
    {!commutative} fan-ins sorted — so [maj(a,b,c)] and [maj(c,a,b)]
    hash alike and operand order cannot defeat duplicate detection.
    Two netlists with equal [struct_hash] are isomorphic as labeled
    DAGs up to commutative operand order. Used as the proof-cache key
    by the equivalence engines. *)

val to_dot : t -> string
(** Graphviz dump for debugging. *)

val pp_stats : Format.formatter -> t -> unit
