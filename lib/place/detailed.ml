type options = {
  lambda_t : float;
  lambda_wmax : float;
  lambda_slack : float;
  mixed_size : bool;
  window : int;
  max_passes : int;
  seed : int;
}

let default_options =
  {
    lambda_t = 0.3;
    lambda_wmax = 5.0;
    lambda_slack = 20.0;
    mixed_size = true;
    window = 3;
    max_passes = 8;
    seed = 7;
  }

let net_cost p ~lambda_t ~lambda_wmax ~lambda_slack ~row_width e =
  let tech = p.Problem.tech in
  let len = Problem.net_length p e in
  let excess = Float.max 0.0 (len -. tech.Tech.w_max) in
  let sc = p.Problem.cells.(e.Problem.src) in
  let xs = sc.Problem.x +. sc.Problem.lib.Cell.out_pins.(e.Problem.src_pin) in
  let dc = p.Problem.cells.(e.Problem.dst) in
  let pins = dc.Problem.lib.Cell.in_pins in
  let xd = dc.Problem.x +. pins.(e.Problem.dst_pin mod Array.length pins) in
  let t =
    Clocking.timing_cost tech ~row_width ~phase:sc.Problem.row
      ~x_start:xs ~x_end:xd ~alpha:2.0
  in
  (* direct slack surrogate: the exact per-net STA formula, penalizing
     only violations (this is what lowers WNS, beyond the smooth Eq. 2
     pressure) *)
  let violation =
    if lambda_slack = 0.0 then 0.0
    else begin
      let base =
        match ((sc.Problem.row mod 4) + 4) mod 4 with
        | 0 -> xd -. xs
        | 1 -> xd +. xs
        | 2 -> -.xd +. xs
        | 3 -> (2.0 *. row_width) -. xd -. xs
        | _ -> assert false
      in
      let slack =
        Tech.phase_window_ps tech -. tech.Tech.gate_delay_ps
        -. (len /. tech.Tech.signal_velocity)
        -. (Float.max 0.0 base /. tech.Tech.clock_velocity)
      in
      Float.max 0.0 (-.slack)
    end
  in
  len
  +. (lambda_t *. t /. Float.max 1.0 row_width)
  +. (lambda_wmax *. excess)
  +. (lambda_slack *. violation)

let cost p ~lambda_t ~lambda_wmax ~lambda_slack =
  let row_width = Problem.row_width p in
  Array.fold_left
    (fun acc e -> acc +. net_cost p ~lambda_t ~lambda_wmax ~lambda_slack ~row_width e)
    0.0 p.Problem.nets

(* nets touching each cell, computed once *)
let cell_nets p =
  let m = Array.make (Array.length p.Problem.cells) [] in
  Array.iteri
    (fun ni e ->
      m.(e.Problem.src) <- ni :: m.(e.Problem.src);
      if e.Problem.dst <> e.Problem.src then m.(e.Problem.dst) <- ni :: m.(e.Problem.dst))
    p.Problem.nets;
  m

let gap_legal s_min g = g > -1e-6 && (g < 1e-6 || g >= s_min -. 1e-6)

let run ?(options = default_options) p =
  let tech = p.Problem.tech in
  let s_min = tech.Tech.s_min in
  let nets_of = cell_nets p in
  let accepted = ref 0 in
  (* per-row order sorted by x (legal placements are strictly ordered) *)
  let orders =
    Array.map
      (fun row ->
        let o = Array.copy row in
        Array.sort (fun a b -> Float.compare p.Problem.cells.(a).Problem.x p.Problem.cells.(b).Problem.x) o;
        o)
      p.Problem.row_cells
  in
  let eval_nets ~row_width nets =
    List.fold_left
      (fun acc ni ->
        acc
        +. net_cost p ~lambda_t:options.lambda_t ~lambda_wmax:options.lambda_wmax
             ~lambda_slack:options.lambda_slack ~row_width p.Problem.nets.(ni))
      0.0 nets
  in
  let union_nets a b =
    List.sort_uniq Int.compare (nets_of.(a) @ nets_of.(b))
  in
  (* preferred x for a cell: mean of its net partners' pin positions *)
  let desired_x c ci =
    let sum = ref 0.0 and count = ref 0 in
    List.iter
      (fun ni ->
        let e = p.Problem.nets.(ni) in
        let partner_pin =
          if e.Problem.src = ci then Problem.pin_x p ni `Dst else Problem.pin_x p ni `Src
        in
        let own_offset =
          if e.Problem.src = ci then c.Problem.lib.Cell.out_pins.(e.Problem.src_pin)
          else
            let pins = c.Problem.lib.Cell.in_pins in
            pins.(e.Problem.dst_pin mod Array.length pins)
        in
        sum := !sum +. (partner_pin -. own_offset);
        incr count)
      nets_of.(ci);
    if !count = 0 then c.Problem.x else !sum /. float_of_int !count
  in
  let try_shift ~row_width order i =
    let ci = order.(i) in
    let c = p.Problem.cells.(ci) in
    let w = c.Problem.lib.Cell.width in
    let lo =
      if i = 0 then 0.0
      else
        let prev = p.Problem.cells.(order.(i - 1)) in
        prev.Problem.x +. prev.Problem.lib.Cell.width
    in
    let hi =
      if i = Array.length order - 1 then infinity
      else p.Problem.cells.(order.(i + 1)).Problem.x
    in
    let desired = Tech.snap tech (desired_x c ci) in
    let candidates =
      [ lo; lo +. s_min; desired ]
      @ (if hi < infinity then [ hi -. w; hi -. w -. s_min ] else [])
    in
    let legal x =
      x >= -1e-6
      && (i = 0 || gap_legal s_min (x -. lo))
      && (hi = infinity || gap_legal s_min (hi -. (x +. w)))
      && Tech.on_grid tech x
    in
    let old_x = c.Problem.x in
    let base = eval_nets ~row_width nets_of.(ci) in
    let best = ref None in
    List.iter
      (fun x ->
        let x = Tech.snap tech x in
        if legal x && Float.abs (x -. old_x) > 1e-6 then begin
          c.Problem.x <- x;
          let v = eval_nets ~row_width nets_of.(ci) in
          c.Problem.x <- old_x;
          match !best with
          | Some (bv, _) when bv <= v -> ()
          | _ -> if v < base -. 1e-9 then best := Some (v, x)
        end)
      candidates;
    match !best with
    | Some (_, x) ->
        c.Problem.x <- x;
        incr accepted;
        true
    | None -> false
  in
  let try_swap ~row_width order i j =
    let ci = order.(i) and cj = order.(j) in
    let a = p.Problem.cells.(ci) and b = p.Problem.cells.(cj) in
    let wa = a.Problem.lib.Cell.width and wb = b.Problem.lib.Cell.width in
    if (not options.mixed_size) && wa <> wb then false
    else begin
      (* b takes a's left edge; a keeps b's right edge *)
      let xa_old = a.Problem.x and xb_old = b.Problem.x in
      let xb_new = xa_old in
      let xa_new = xb_old +. wb -. wa in
      (* legality around slot i (now holding b) and slot j (now a) *)
      let lo_i =
        if i = 0 then 0.0
        else
          let prev = p.Problem.cells.(order.(i - 1)) in
          prev.Problem.x +. prev.Problem.lib.Cell.width
      in
      let hi_i =
        if j = i + 1 then xa_new
        else p.Problem.cells.(order.(i + 1)).Problem.x
      in
      let lo_j =
        if j = i + 1 then xb_new +. wb
        else
          let prev = p.Problem.cells.(order.(j - 1)) in
          prev.Problem.x +. prev.Problem.lib.Cell.width
      in
      let hi_j =
        if j = Array.length order - 1 then infinity
        else p.Problem.cells.(order.(j + 1)).Problem.x
      in
      let ok =
        xa_new >= -1e-6 && xb_new >= -1e-6
        && (i = 0 || gap_legal s_min (xb_new -. lo_i))
        && gap_legal s_min (hi_i -. (xb_new +. wb))
        && gap_legal s_min (xa_new -. lo_j)
        && (hi_j = infinity || gap_legal s_min (hi_j -. (xa_new +. wa)))
        && Tech.on_grid tech xa_new && Tech.on_grid tech xb_new
      in
      if not ok then false
      else begin
        let nets = union_nets ci cj in
        let base = eval_nets ~row_width nets in
        a.Problem.x <- xa_new;
        b.Problem.x <- xb_new;
        let v = eval_nets ~row_width nets in
        if v < base -. 1e-9 then begin
          let tmp = order.(i) in
          order.(i) <- order.(j);
          order.(j) <- tmp;
          incr accepted;
          true
        end
        else begin
          a.Problem.x <- xa_old;
          b.Problem.x <- xb_old;
          false
        end
      end
    end
  in
  let pass () =
    let before = !accepted in
    let row_width = Problem.row_width p in
    Array.iter
      (fun order ->
        let n = Array.length order in
        for i = 0 to n - 1 do
          ignore (try_shift ~row_width order i);
          for d = 1 to options.window do
            if i + d < n then ignore (try_swap ~row_width order i (i + d))
          done
        done)
      orders;
    !accepted > before
  in
  let continue = ref true in
  let passes = ref 0 in
  while !continue && !passes < options.max_passes do
    incr passes;
    continue := pass ()
  done;
  !accepted
