type options = {
  sweeps : int;
  t_steps : int;
  t_start_frac : float;
  cooling : float;
  weights : Place_cost.weights;
  seed : int;
}

let default_options =
  {
    sweeps = 4;
    t_steps = 30;
    t_start_frac = 0.3;
    cooling = 0.82;
    weights = Place_cost.default_weights;
    seed = 17;
  }

let gap_legal s_min g = g > -1e-6 && (g < 1e-6 || g >= s_min -. 1e-6)

let run ?(options = default_options) p =
  let tech = p.Problem.tech in
  let s_min = tech.Tech.s_min in
  let rng = Rng.create options.seed in
  let nets_of = Place_cost.cell_nets p in
  let n_cells = Array.length p.Problem.cells in
  if n_cells = 0 then 0
  else begin
    (* per-row order arrays, kept sorted by x *)
    let orders =
      Array.map
        (fun row ->
          let o = Array.copy row in
          Array.sort
            (fun a b -> Float.compare p.Problem.cells.(a).Problem.x p.Problem.cells.(b).Problem.x)
            o;
          o)
        p.Problem.row_cells
    in
    let row_width = ref (Float.max 1.0 (Problem.row_width p)) in
    let eval_nets nets =
      List.fold_left
        (fun acc ni ->
          acc
          +. Place_cost.net_cost p options.weights ~row_width:!row_width
               p.Problem.nets.(ni))
        0.0 nets
    in
    (* temperature scale from the current mean net cost *)
    let mean_cost =
      Place_cost.total p options.weights /. float_of_int (Array.length p.Problem.nets)
    in
    let accepted = ref 0 in
    let best_cost = ref (Place_cost.total p options.weights) in
    let best = ref (Problem.copy_positions p) in
    let temp = ref (options.t_start_frac *. mean_cost) in
    let metropolis delta =
      delta < 0.0
      || (!temp > 1e-12 && Rng.float rng 1.0 < exp (-.delta /. !temp))
    in
    (* random slide of one cell inside its free slot *)
    let try_slide order i =
      let ci = order.(i) in
      let c = p.Problem.cells.(ci) in
      let w = c.Problem.lib.Cell.width in
      let lo =
        if i = 0 then 0.0
        else
          let prev = p.Problem.cells.(order.(i - 1)) in
          prev.Problem.x +. prev.Problem.lib.Cell.width
      in
      let hi =
        if i = Array.length order - 1 then c.Problem.x +. 300.0
        else p.Problem.cells.(order.(i + 1)).Problem.x
      in
      let span = hi -. w -. lo in
      if span < 0.0 then false
      else begin
        let x = Tech.snap tech (lo +. Rng.float rng (Float.max 1.0 span)) in
        let legal =
          x >= -1e-6
          && (i = 0 || gap_legal s_min (x -. lo))
          && gap_legal s_min (hi -. (x +. w))
        in
        if not legal then false
        else begin
          let old_x = c.Problem.x in
          let before = eval_nets nets_of.(ci) in
          c.Problem.x <- x;
          let after = eval_nets nets_of.(ci) in
          if metropolis (after -. before) then begin
            incr accepted;
            true
          end
          else begin
            c.Problem.x <- old_x;
            false
          end
        end
      end
    in
    (* swap two cells (mixed sizes allowed) within a small window *)
    let try_swap order i =
      let n = Array.length order in
      let d = 1 + Rng.int rng 3 in
      let j = i + d in
      if j >= n then false
      else begin
        let ci = order.(i) and cj = order.(j) in
        let a = p.Problem.cells.(ci) and b = p.Problem.cells.(cj) in
        let wa = a.Problem.lib.Cell.width and wb = b.Problem.lib.Cell.width in
        let xa_old = a.Problem.x and xb_old = b.Problem.x in
        let xb_new = xa_old in
        let xa_new = xb_old +. wb -. wa in
        let lo_i =
          if i = 0 then 0.0
          else
            let prev = p.Problem.cells.(order.(i - 1)) in
            prev.Problem.x +. prev.Problem.lib.Cell.width
        in
        let hi_i = if j = i + 1 then xa_new else p.Problem.cells.(order.(i + 1)).Problem.x in
        let lo_j =
          if j = i + 1 then xb_new +. wb
          else
            let prev = p.Problem.cells.(order.(j - 1)) in
            prev.Problem.x +. prev.Problem.lib.Cell.width
        in
        let hi_j =
          if j = n - 1 then infinity else p.Problem.cells.(order.(j + 1)).Problem.x
        in
        let ok =
          xa_new >= -1e-6 && xb_new >= -1e-6
          && (i = 0 || gap_legal s_min (xb_new -. lo_i))
          && gap_legal s_min (hi_i -. (xb_new +. wb))
          && gap_legal s_min (xa_new -. lo_j)
          && (hi_j = infinity || gap_legal s_min (hi_j -. (xa_new +. wa)))
          && Tech.on_grid tech xa_new && Tech.on_grid tech xb_new
        in
        if not ok then false
        else begin
          let nets = List.sort_uniq Int.compare (nets_of.(ci) @ nets_of.(cj)) in
          let before = eval_nets nets in
          a.Problem.x <- xa_new;
          b.Problem.x <- xb_new;
          let after = eval_nets nets in
          if metropolis (after -. before) then begin
            let tmp = order.(i) in
            order.(i) <- order.(j);
            order.(j) <- tmp;
            incr accepted;
            true
          end
          else begin
            a.Problem.x <- xa_old;
            b.Problem.x <- xb_old;
            false
          end
        end
      end
    in
    for _step = 1 to options.t_steps do
      for _sweep = 1 to options.sweeps do
        Array.iter
          (fun order ->
            let n = Array.length order in
            if n > 0 then begin
              let i = Rng.int rng n in
              if Rng.bool rng then ignore (try_slide order i)
              else ignore (try_swap order i)
            end)
          orders
      done;
      row_width := Float.max 1.0 (Problem.row_width p);
      let cost = Place_cost.total p options.weights in
      if cost < !best_cost then begin
        best_cost := cost;
        best := Problem.copy_positions p
      end;
      temp := !temp *. options.cooling
    done;
    Problem.restore_positions p !best;
    !accepted
  end
