type options = {
  iterations : int;
  learning_rate : float;
  timing_weight : float;
  wmax_weight : float;
  density_anneal : float;
  seed : int;
  verbose : bool;
}

let default_options =
  {
    iterations = 150;
    learning_rate = 2.0;
    timing_weight = 0.05;
    wmax_weight = 1.0;
    density_anneal = 1.02;
    seed = 1;
    verbose = false;
  }

(* Gradient-magnitude normalization (DREAMPlace-style): scale each
   secondary term so its initial gradient norm is a chosen fraction of
   the wirelength gradient norm. *)
let norm1 g = Array.fold_left (fun acc x -> acc +. Float.abs x) 0.0 g

let calibrate p base_weights opts xs =
  let wl_only =
    { base_weights with Wa_model.lambda_t = 0.0; lambda_w = 0.0; lambda_d = 0.0 }
  in
  let _, g_wl = Wa_model.cost_and_grad p wl_only xs in
  let probe w =
    let _, g = Wa_model.cost_and_grad p w xs in
    let iso = Array.mapi (fun i x -> x -. g_wl.(i)) g in
    norm1 iso
  in
  let n_wl = Float.max 1e-9 (norm1 g_wl) in
  let n_t =
    probe { base_weights with Wa_model.lambda_t = 1.0; lambda_w = 0.0; lambda_d = 0.0 }
  in
  let n_w =
    probe { base_weights with Wa_model.lambda_t = 0.0; lambda_w = 1.0; lambda_d = 0.0 }
  in
  let n_d =
    probe { base_weights with Wa_model.lambda_t = 0.0; lambda_w = 0.0; lambda_d = 1.0 }
  in
  let safe num = if num < 1e-9 then 1.0 else n_wl /. num in
  {
    base_weights with
    Wa_model.lambda_t = opts.timing_weight *. safe n_t;
    lambda_w = opts.wmax_weight *. safe n_w;
    lambda_d = 0.2 *. safe n_d;
  }

(* One Adam refinement phase over continuous positions. *)
let adam_refine p options =
  let n = Array.length p.Problem.cells in
  let xs = Problem.copy_positions p in
  let rng = Rng.create options.seed in
  Array.iteri (fun i x -> xs.(i) <- x +. Rng.float rng 1.0) xs;
  let weights = ref (calibrate p (Wa_model.default_weights p.Problem.tech) options xs) in
  let m = Array.make n 0.0 and v = Array.make n 0.0 in
  let beta1 = 0.9 and beta2 = 0.999 and eps = 1e-8 in
  for it = 1 to options.iterations do
    let _, grad = Wa_model.cost_and_grad p !weights xs in
    let b1t = 1.0 -. (beta1 ** float_of_int it) in
    let b2t = 1.0 -. (beta2 ** float_of_int it) in
    for i = 0 to n - 1 do
      m.(i) <- (beta1 *. m.(i)) +. ((1.0 -. beta1) *. grad.(i));
      v.(i) <- (beta2 *. v.(i)) +. ((1.0 -. beta2) *. grad.(i) *. grad.(i));
      let mh = m.(i) /. b1t and vh = v.(i) /. b2t in
      xs.(i) <- xs.(i) -. (options.learning_rate *. mh /. (sqrt vh +. eps));
      if xs.(i) < 0.0 then xs.(i) <- 0.0
    done;
    weights :=
      { !weights with Wa_model.lambda_d = !weights.Wa_model.lambda_d *. options.density_anneal }
  done;
  Problem.restore_positions p xs

(* nets touching each cell *)
let cell_nets p =
  let m = Array.make (Array.length p.Problem.cells) [] in
  Array.iteri
    (fun ni e ->
      m.(e.Problem.src) <- ni :: m.(e.Problem.src);
      if e.Problem.dst <> e.Problem.src then m.(e.Problem.dst) <- ni :: m.(e.Problem.dst))
    p.Problem.nets;
  m

(* Desired position of a cell: barycenter of partner pins, optionally
   biased against the four-phase timing gradient. *)
let desired_positions p nets_of ~timing_bias =
  let n = Array.length p.Problem.cells in
  let row_width = Float.max 1.0 (Problem.row_width p) in
  (* each cell's target is a pure function of current positions, so
     cells fan out over the pool; fixed chunking keeps the result
     identical at every jobs count *)
  Parallel.parallel_init ~label:"place.desired" ~chunk:256 n (fun ci ->
    let c = p.Problem.cells.(ci) in
    match nets_of.(ci) with
    | [] -> c.Problem.x
    | nets ->
        let sum = ref 0.0 and count = ref 0 in
        let tgrad = ref 0.0 in
        List.iter
          (fun ni ->
            let e = p.Problem.nets.(ni) in
            let is_src = e.Problem.src = ci in
            let partner_pin =
              if is_src then Problem.pin_x p ni `Dst else Problem.pin_x p ni `Src
            in
            let own_offset =
              if is_src then c.Problem.lib.Cell.out_pins.(e.Problem.src_pin)
              else
                let pins = c.Problem.lib.Cell.in_pins in
                pins.(e.Problem.dst_pin mod Array.length pins)
            in
            sum := !sum +. (partner_pin -. own_offset);
            incr count;
            if timing_bias > 0.0 then begin
              let sc = p.Problem.cells.(e.Problem.src) in
              let xs_pin = Problem.pin_x p ni `Src and xd_pin = Problem.pin_x p ni `Dst in
              let base, dbs, dbd =
                match ((sc.Problem.row mod 4) + 4) mod 4 with
                | 0 -> (xd_pin -. xs_pin, -1.0, 1.0)
                | 1 -> (xd_pin +. xs_pin, 1.0, 1.0)
                | 2 -> (-.xd_pin +. xs_pin, 1.0, -1.0)
                | 3 -> ((2.0 *. row_width) -. xd_pin -. xs_pin, -1.0, -1.0)
                | _ -> assert false
              in
              if base > 0.0 then
                tgrad := !tgrad +. (base *. if is_src then dbs else dbd)
            end)
          nets;
        let bary = !sum /. float_of_int !count in
        (* the timing gradient has µm·µm units; dividing by net count
           and damping turns it into a bounded positional nudge *)
        let nudge = timing_bias *. !tgrad /. float_of_int !count in
        let nudge = Float.max (-50.0) (Float.min 50.0 nudge) in
        Float.max 0.0 (bary -. nudge))

let sweep_cost p ~timing_weight =
  let tc = Problem.timing_cost p () in
  let rw = Float.max 1.0 (Problem.row_width p) in
  let w_max = p.Problem.tech.Tech.w_max in
  let excess =
    Array.fold_left
      (fun acc e -> acc +. Float.max 0.0 (Problem.net_length p e -. w_max))
      0.0 p.Problem.nets
  in
  Problem.hpwl p +. (timing_weight *. tc /. rw) +. (5.0 *. excess)

(* Iterated barycenter ordering + Abacus legalization, row by row in
   alternating directions (Gauss-Seidel style — each row reads the
   already-updated neighbors, which kills the even/odd oscillation a
   simultaneous update suffers from). Every sweep ends legal; the best
   legal state encountered wins. *)
let barycenter_sweeps ?(sweeps = 40) ?(timing_bias = 0.0) ?(timing_weight = 0.0) p =
  let nets_of = cell_nets p in
  let best_cost = ref infinity in
  let best = ref (Problem.copy_positions p) in
  let desired = desired_positions p nets_of ~timing_bias in
  let relax_row damping r =
    Array.iter
      (fun ci ->
        let c = p.Problem.cells.(ci) in
        let d = desired.(ci) in
        c.Problem.x <- (damping *. c.Problem.x) +. ((1.0 -. damping) *. d))
      p.Problem.row_cells.(r);
    Legalize.legalize_row p r
  in
  for sweep = 1 to sweeps do
    let damping = if sweep <= 2 then 0.0 else 0.3 in
    (* refresh desired from current state, then relax rows in one
       direction; alternate directions between sweeps *)
    let refresh () =
      let d = desired_positions p nets_of ~timing_bias in
      Array.blit d 0 desired 0 (Array.length d)
    in
    if sweep mod 2 = 1 then
      for r = 0 to p.Problem.n_rows - 1 do
        refresh ();
        relax_row damping r
      done
    else
      for r = p.Problem.n_rows - 1 downto 0 do
        refresh ();
        relax_row damping r
      done;
    let cost = sweep_cost p ~timing_weight in
    if cost < !best_cost then begin
      best_cost := cost;
      best := Problem.copy_positions p
    end
  done;
  Problem.restore_positions p !best

let run ?(options = default_options) p =
  if Array.length p.Problem.cells > 0 then begin
    (* 1. quadratic warm start *)
    Quadratic.solve p ~net_weight:(fun _ -> 1.0);
    (* 2. nonlinear refinement on the continuous solution (WA model,
       Eq. 2 timing, max-wirelength penalty, annealed density) *)
    adam_refine p options;
    (* 3. ordering/legalization sweeps retain the analytical quality
       in a legal placement; timing bias mirrors the objective *)
    barycenter_sweeps ~sweeps:60 ~timing_bias:(options.timing_weight *. 2.0)
      ~timing_weight:options.timing_weight p;
    if options.verbose then
      Format.eprintf "global done: hpwl=%.0f@." (Problem.hpwl p)
  end
