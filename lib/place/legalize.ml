(* Abacus-style row legalization: cells keep the left-to-right order
   of their (continuous) positions; overlapping runs are merged into
   clusters whose placement minimizes the total squared displacement
   (the optimal cluster start is the mean of desired-start values).
   Because every cell width is a multiple of the 10 µm grid and
   cluster starts are snapped to it, inter-cell gaps are grid
   multiples, which makes the AQFP "abut or >= s_min" spacing rule
   hold automatically whenever s_min equals the grid pitch. *)

type cluster = {
  mutable q : float; (* optimal (continuous) start *)
  mutable w : float; (* total width *)
  mutable sum : float; (* sum of (desired - offset-in-cluster) *)
  mutable n : int;
  mutable members : int list; (* cell indices, reversed *)
}

let legalize_row p r =
  let tech = p.Problem.tech in
  let order = Array.copy p.Problem.row_cells.(r) in
  Array.sort
    (fun a b -> Float.compare p.Problem.cells.(a).Problem.x p.Problem.cells.(b).Problem.x)
    order;
  let clusters : cluster list ref = ref [] in
  let rec merge_overlaps = function
    | c2 :: c1 :: rest when c1.q +. c1.w > c2.q ->
        (* c1 is left of c2 in the row; absorb c2 into c1 *)
        c1.sum <- c1.sum +. c2.sum -. (float_of_int c2.n *. c1.w);
        c1.n <- c1.n + c2.n;
        c1.members <- c2.members @ c1.members;
        c1.w <- c1.w +. c2.w;
        c1.q <- c1.sum /. float_of_int c1.n;
        if c1.q < 0.0 then c1.q <- 0.0;
        merge_overlaps (c1 :: rest)
    | cs -> cs
  in
  Array.iter
    (fun ci ->
      let c = p.Problem.cells.(ci) in
      let cluster =
        {
          q = Float.max 0.0 c.Problem.x;
          w = c.Problem.lib.Cell.width;
          sum = c.Problem.x;
          n = 1;
          members = [ ci ];
        }
      in
      clusters := merge_overlaps (cluster :: !clusters))
    order;
  (* emit left to right, snapping starts to the grid *)
  let cursor = ref 0.0 in
  List.iter
    (fun cl ->
      let start = Float.max !cursor (Float.max 0.0 (Tech.snap tech cl.q)) in
      let x = ref start in
      List.iter
        (fun ci ->
          let c = p.Problem.cells.(ci) in
          c.Problem.x <- !x;
          x := !x +. c.Problem.lib.Cell.width)
        (List.rev cl.members);
      cursor := !x)
    (List.rev !clusters)

let run p =
  for r = 0 to p.Problem.n_rows - 1 do
    legalize_row p r
  done
