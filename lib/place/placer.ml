type algorithm = Superflow | Gordian | Taas

let algorithm_name = function
  | Superflow -> "SuperFlow"
  | Gordian -> "GORDIAN-based"
  | Taas -> "TAAS"

type result = {
  algorithm : algorithm;
  hpwl : float;
  buffer_lines : int;
  timing_cost : float;
  runtime_s : float;
  moves : int;
}

(* One full SuperFlow placement from one seed: timing-aware global
   placement, legalization, then the swap search and the exact per-row
   DP alternated to a fixpoint, closed by a slack/W_max-focused
   polish. *)
let superflow_run_once ~seed p =
  Global.run ~options:{ Global.default_options with seed } p;
  Legalize.run p;
  let total = ref 0 in
  let rec refine round =
    let moved = Detailed.run p + Row_dp.run p in
    total := !total + moved;
    if moved > 0 && round < 3 then refine (round + 1)
  in
  refine 1;
  let slack_opts =
    { Detailed.default_options with Detailed.lambda_slack = 120.0; lambda_wmax = 20.0 }
  in
  total := !total + Detailed.run ~options:slack_opts p;
  total :=
    !total
    + Row_dp.run
        ~options:
          { Row_dp.default_options with Row_dp.lambda_slack = 120.0; lambda_wmax = 20.0 }
        p;
  !total

(* the worst per-net timing violation at the current positions, in ps *)
let worst_violation p =
  let row_width = Float.max 1.0 (Problem.row_width p) in
  let tech = p.Problem.tech in
  Array.fold_left
    (fun acc e ->
      let sc = p.Problem.cells.(e.Problem.src) in
      let xs = sc.Problem.x +. sc.Problem.lib.Cell.out_pins.(e.Problem.src_pin) in
      let dc = p.Problem.cells.(e.Problem.dst) in
      let pins = dc.Problem.lib.Cell.in_pins in
      let xd = dc.Problem.x +. pins.(e.Problem.dst_pin mod Array.length pins) in
      let base =
        match ((sc.Problem.row mod 4) + 4) mod 4 with
        | 0 -> xd -. xs
        | 1 -> xd +. xs
        | 2 -> -.xd +. xs
        | 3 -> (2.0 *. row_width) -. xd -. xs
        | _ -> assert false
      in
      let slack =
        Tech.phase_window_ps tech -. tech.Tech.gate_delay_ps
        -. (Problem.net_length p e /. tech.Tech.signal_velocity)
        -. (Float.max 0.0 base /. tech.Tech.clock_velocity)
      in
      Float.max acc (-.slack))
    0.0 p.Problem.nets

(* Multi-start: the pipeline is cheap relative to the paper's
   runtimes, so run it from a few seeds and keep the best placement —
   worst violation first, wirelength as the tie-breaker. *)
let superflow_pipeline ~seed p =
  let best = ref None in
  let moves = ref 0 in
  List.iter
    (fun s ->
      let m = superflow_run_once ~seed:s p in
      moves := !moves + m;
      let score = (Float.round (worst_violation p *. 10.0), Problem.hpwl p) in
      match !best with
      | Some (best_score, _) when best_score <= score -> ()
      | _ -> best := Some (score, Problem.copy_positions p))
    [ seed; seed + 37; seed + 101 ];
  (match !best with
  | Some (_, xs) -> Problem.restore_positions p xs
  | None -> ());
  !moves

let place ?(seed = 1) algorithm p =
  let t0 = Wallclock.now_s () in
  let moves =
    match algorithm with
    | Gordian ->
        Baselines.gordian p;
        0
    | Taas ->
        Baselines.taas p;
        0
    | Superflow ->
        superflow_pipeline ~seed p
  in
  (match Problem.check_legal p with
  | Ok () -> ()
  | Error msg -> failwith ("Placer: illegal result: " ^ msg));
  {
    algorithm;
    hpwl = Problem.hpwl p;
    buffer_lines = Problem.buffer_lines p;
    timing_cost = Problem.timing_cost p ();
    runtime_s = Wallclock.now_s () -. t0;
    moves;
  }

let pp_result ppf r =
  Format.fprintf ppf "%s: hpwl=%.0fum buffers=%d timing=%.0f (%.1fs, %d moves)"
    (algorithm_name r.algorithm) r.hpwl r.buffer_lines r.timing_cost r.runtime_s
    r.moves
