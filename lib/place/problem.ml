type cell = {
  node : int;
  kind : Netlist.kind;
  lib : Cell.t;
  row : int;
  mutable x : float;
}

type net = { src : int; dst : int; src_pin : int; dst_pin : int }

type t = {
  tech : Tech.t;
  cells : cell array;
  nets : net array;
  n_rows : int;
  row_cells : int array array;
  mutable row_gaps : float array;
  row_height : float;
}

let of_netlist tech nl =
  if not (Netlist.is_balanced nl) then
    invalid_arg "Problem.of_netlist: netlist is not phase-balanced";
  let n = Netlist.size nl in
  (* Output markers live one row below their driver so every net spans
     exactly one row gap. *)
  let row_of = Array.make n 0 in
  let max_row = ref 0 in
  Netlist.iter nl (fun nd ->
      let r =
        match nd.Netlist.kind with
        | Netlist.Output -> nd.Netlist.phase + 1
        | _ -> nd.Netlist.phase
      in
      row_of.(nd.Netlist.id) <- r;
      if r > !max_row then max_row := r);
  let cell_index = Array.make n (-1) in
  let cells = Array.make n None in
  let k = ref 0 in
  Netlist.iter nl (fun nd ->
      cell_index.(nd.Netlist.id) <- !k;
      cells.(!k) <-
        Some
          {
            node = nd.Netlist.id;
            kind = nd.Netlist.kind;
            lib = Cell.of_kind nd.Netlist.kind;
            row = row_of.(nd.Netlist.id);
            x = 0.0;
          };
      incr k);
  let cells = Array.map Option.get cells in
  (* Nets: one per fan-in edge. Splitter output pins are allocated in
     consumer order. *)
  let out_pin_next = Array.make n 0 in
  let nets = ref [] in
  Netlist.iter nl (fun nd ->
      Array.iteri
        (fun dst_pin f ->
          let src_pin = out_pin_next.(f) in
          out_pin_next.(f) <- src_pin + 1;
          nets :=
            {
              src = cell_index.(f);
              dst = cell_index.(nd.Netlist.id);
              src_pin;
              dst_pin;
            }
            :: !nets)
        nd.Netlist.fanins);
  let nets = Array.of_list (List.rev !nets) in
  (* guard: a cell never drives more nets than it has output pins *)
  Array.iter
    (fun e ->
      let c = cells.(e.src) in
      if e.src_pin >= Array.length c.lib.Cell.out_pins then
        invalid_arg
          (Printf.sprintf "Problem.of_netlist: node %d (%s) drives %d+ nets"
             c.node (Netlist.kind_name c.kind) (e.src_pin + 1)))
    nets;
  let n_rows = !max_row + 1 in
  let row_cells = Array.make n_rows [] in
  Array.iteri (fun i c -> row_cells.(c.row) <- i :: row_cells.(c.row)) cells;
  let row_cells = Array.map (fun l -> Array.of_list (List.rev l)) row_cells in
  let row_height =
    Array.fold_left (fun acc c -> Float.max acc c.lib.Cell.height) 0.0 cells
  in
  let t =
    {
      tech;
      cells;
      nets;
      n_rows;
      row_cells;
      row_gaps = Array.make n_rows tech.Tech.row_gap;
      row_height;
    }
  in
  (* initial left-packed placement on the grid *)
  Array.iter
    (fun row ->
      let x = ref 0.0 in
      Array.iter
        (fun ci ->
          let c = t.cells.(ci) in
          c.x <- !x;
          x := Tech.snap_up tech (!x +. c.lib.Cell.width))
        row)
    t.row_cells;
  t

let row_pitch t r = t.row_height +. t.row_gaps.(r)

let row_top t r =
  let y = ref 0.0 in
  for i = 0 to r - 1 do
    y := !y +. row_pitch t i
  done;
  !y

let row_width t =
  Array.fold_left
    (fun acc c -> Float.max acc (c.x +. c.lib.Cell.width))
    0.0 t.cells

let pin_x t ni side =
  let e = t.nets.(ni) in
  match side with
  | `Src ->
      let c = t.cells.(e.src) in
      c.x +. c.lib.Cell.out_pins.(e.src_pin)
  | `Dst ->
      let c = t.cells.(e.dst) in
      let pins = c.lib.Cell.in_pins in
      c.x +. pins.(e.dst_pin mod Array.length pins)

let net_dx t e =
  let sc = t.cells.(e.src) and dc = t.cells.(e.dst) in
  let xs = sc.x +. sc.lib.Cell.out_pins.(e.src_pin) in
  let pins = dc.lib.Cell.in_pins in
  let xd = dc.x +. pins.(e.dst_pin mod Array.length pins) in
  xd -. xs

let net_dy t e =
  let sc = t.cells.(e.src) and dc = t.cells.(e.dst) in
  (* driver bottom edge to sink top edge *)
  let y_src = row_top t sc.row +. sc.lib.Cell.height in
  let y_dst = row_top t dc.row in
  Float.max 0.0 (y_dst -. y_src)

let net_length t e = Float.abs (net_dx t e) +. net_dy t e

(* Placement optimizes x only (rows are fixed by clocking), so the
   reported HPWL is the horizontal span, like the paper's Table III. *)
let hpwl t = Array.fold_left (fun acc e -> acc +. Float.abs (net_dx t e)) 0.0 t.nets

let timing_cost t ?(alpha = 2.0) () =
  let w = row_width t in
  (* hot inside the detailed-placement sweeps: map-reduce over fixed
     net chunks, partial sums combined left-to-right so the value does
     not depend on the domain count *)
  let parts =
    Parallel.map_chunks ~label:"place.timing" ~chunk:2048 ~n:(Array.length t.nets)
      (fun lo hi ->
        let acc = ref 0.0 in
        for i = lo to hi - 1 do
          let e = t.nets.(i) in
          let sc = t.cells.(e.src) in
          let xs = sc.x +. sc.lib.Cell.out_pins.(e.src_pin) in
          let dc = t.cells.(e.dst) in
          let pins = dc.lib.Cell.in_pins in
          let xd = dc.x +. pins.(e.dst_pin mod Array.length pins) in
          acc :=
            !acc
            +. Clocking.timing_cost t.tech ~row_width:w ~phase:sc.row
                 ~x_start:xs ~x_end:xd ~alpha
        done;
        !acc)
  in
  Array.fold_left ( +. ) 0.0 parts

let max_net_length t =
  Array.fold_left (fun acc e -> Float.max acc (net_length t e)) 0.0 t.nets

let buffer_lines t =
  let w_max = t.tech.Tech.w_max in
  let worst = Array.make (max 1 (t.n_rows - 1)) 0.0 in
  Array.iter
    (fun e ->
      let r = t.cells.(e.src).row in
      if r < Array.length worst then
        worst.(r) <- Float.max worst.(r) (net_length t e))
    t.nets;
  Array.fold_left
    (fun acc lmax -> acc + max 0 (int_of_float (ceil (lmax /. w_max)) - 1))
    0 worst

let check_legal t =
  let problems = ref [] in
  let push fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  Array.iteri
    (fun r row ->
      let sorted = Array.copy row in
      Array.sort (fun a b -> Float.compare t.cells.(a).x t.cells.(b).x) sorted;
      for i = 0 to Array.length sorted - 2 do
        let a = t.cells.(sorted.(i)) and b = t.cells.(sorted.(i + 1)) in
        let gap = b.x -. (a.x +. a.lib.Cell.width) in
        if gap < -1e-6 then push "row %d: cells %d/%d overlap (gap %.1f)" r a.node b.node gap
        else if gap > 1e-6 && gap < t.tech.Tech.s_min -. 1e-6 then
          push "row %d: cells %d/%d spacing %.1f < s_min" r a.node b.node gap
      done;
      Array.iter
        (fun ci ->
          let c = t.cells.(ci) in
          if not (Tech.on_grid t.tech c.x) then push "cell %d off grid (%.2f)" c.node c.x;
          if c.x < -1e-6 then push "cell %d negative x" c.node)
        row)
    t.row_cells;
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " ps)

let copy_positions t = Array.map (fun c -> c.x) t.cells

let restore_positions t xs = Array.iteri (fun i c -> c.x <- xs.(i)) t.cells

let jj_count t =
  Array.fold_left (fun acc c -> acc + c.lib.Cell.jj_count) 0 t.cells

let pp_summary ppf t =
  Format.fprintf ppf "cells=%d nets=%d rows=%d width=%.0fum hpwl=%.0fum"
    (Array.length t.cells) (Array.length t.nets) t.n_rows (row_width t) (hpwl t)
