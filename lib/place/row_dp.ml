type options = {
  lambda_t : float;
  lambda_wmax : float;
  lambda_slack : float;
  margin : float;
  passes : int;
}

let default_options =
  { lambda_t = 0.3; lambda_wmax = 5.0; lambda_slack = 20.0; margin = 300.0; passes = 2 }

(* Everything needed to cost one net as a function of the moving
   cell's x: the other endpoint is frozen. *)
type net_view = {
  own_offset : float;  (** pin offset on the moving cell *)
  partner : float;  (** absolute x of the frozen pin *)
  moving_is_src : bool;
  phase : int;  (** the driving cell's row (selects the Eq. 2 case) *)
  dy : float;
}

let net_views p nets_of ci =
  let c = p.Problem.cells.(ci) in
  List.map
    (fun ni ->
      let e = p.Problem.nets.(ni) in
      let moving_is_src = e.Problem.src = ci in
      let own_offset =
        if moving_is_src then c.Problem.lib.Cell.out_pins.(e.Problem.src_pin)
        else
          let pins = c.Problem.lib.Cell.in_pins in
          pins.(e.Problem.dst_pin mod Array.length pins)
      in
      let partner =
        if moving_is_src then Problem.pin_x p ni `Dst else Problem.pin_x p ni `Src
      in
      {
        own_offset;
        partner;
        moving_is_src;
        phase = p.Problem.cells.(e.Problem.src).Problem.row;
        dy = Problem.net_dy p e;
      })
    nets_of.(ci)

let net_cost tech opts ~row_width v x =
  let pin = x +. v.own_offset in
  let xs, xd = if v.moving_is_src then (pin, v.partner) else (v.partner, pin) in
  let len = Float.abs (xd -. xs) +. v.dy in
  let base =
    match ((v.phase mod 4) + 4) mod 4 with
    | 0 -> xd -. xs
    | 1 -> xd +. xs
    | 2 -> -.xd +. xs
    | 3 -> (2.0 *. row_width) -. xd -. xs
    | _ -> assert false
  in
  let timing = Float.max 0.0 base ** 2.0 in
  let excess = Float.max 0.0 (len -. tech.Tech.w_max) in
  let violation =
    if opts.lambda_slack = 0.0 then 0.0
    else
      let slack =
        Tech.phase_window_ps tech -. tech.Tech.gate_delay_ps
        -. (len /. tech.Tech.signal_velocity)
        -. (Float.max 0.0 base /. tech.Tech.clock_velocity)
      in
      Float.max 0.0 (-.slack)
  in
  len
  +. (opts.lambda_t *. timing /. Float.max 1.0 row_width)
  +. (opts.lambda_wmax *. excess)
  +. (opts.lambda_slack *. violation)

(* nets touching each cell, computed per call (rows are optimized one
   at a time, so this is cheap relative to the DP itself) *)
let cell_nets p =
  let m = Array.make (Array.length p.Problem.cells) [] in
  Array.iteri
    (fun ni e ->
      m.(e.Problem.src) <- ni :: m.(e.Problem.src);
      if e.Problem.dst <> e.Problem.src then m.(e.Problem.dst) <- ni :: m.(e.Problem.dst))
    p.Problem.nets;
  m

let optimize_row_with ?(options = default_options) p nets_of r =
  let tech = p.Problem.tech in
  let grid = tech.Tech.grid in
  let order = Array.copy p.Problem.row_cells.(r) in
  Array.sort
    (fun a b -> Float.compare p.Problem.cells.(a).Problem.x p.Problem.cells.(b).Problem.x)
    order;
  let n = Array.length order in
  if n = 0 then false
  else begin
    let row_width = Float.max 1.0 (Problem.row_width p) in
    let positions = int_of_float ((row_width +. options.margin) /. grid) + 1 in
    let smin_g = int_of_float (tech.Tech.s_min /. grid +. 0.5) in
    let views = Array.map (fun ci -> Array.of_list (net_views p nets_of ci)) order in
    let cost i x_g =
      let x = float_of_int x_g *. grid in
      Array.fold_left
        (fun acc v -> acc +. net_cost tech options ~row_width v x)
        0.0 views.(i)
    in
    (* current total, for the improvement decision *)
    let old_total =
      let acc = ref 0.0 in
      Array.iteri
        (fun i ci ->
          let x = p.Problem.cells.(ci).Problem.x in
          acc :=
            !acc
            +. Array.fold_left
                 (fun a v -> a +. net_cost tech options ~row_width v x)
                 0.0 views.(i))
        order;
      !acc
    in
    (* DP over (cell, left-edge grid position) *)
    let prev = Array.make positions infinity in
    let parent = Array.make_matrix n positions (-1) in
    for x = 0 to positions - 1 do
      prev.(x) <- cost 0 x
    done;
    let prefix_min = Array.make positions 0 in
    for i = 1 to n - 1 do
      let w_prev_g =
        int_of_float (p.Problem.cells.(order.(i - 1)).Problem.lib.Cell.width /. grid +. 0.5)
      in
      (* prefix argmin of prev *)
      let best_so_far = ref 0 in
      for x = 0 to positions - 1 do
        if prev.(x) < prev.(!best_so_far) then best_so_far := x;
        prefix_min.(x) <- !best_so_far
      done;
      let cur = Array.make positions infinity in
      for x = 0 to positions - 1 do
        let xa = x - w_prev_g in
        let xg = x - w_prev_g - smin_g in
        let via_abut = if xa >= 0 then prev.(xa) else infinity in
        let via_gap = if xg >= 0 then prev.(prefix_min.(xg)) else infinity in
        if via_abut < infinity || via_gap < infinity then begin
          if via_abut <= via_gap then begin
            cur.(x) <- cost i x +. via_abut;
            parent.(i).(x) <- xa
          end
          else begin
            cur.(x) <- cost i x +. via_gap;
            parent.(i).(x) <- prefix_min.(xg)
          end
        end
      done;
      Array.blit cur 0 prev 0 positions
    done;
    (* best end position, then backtrack *)
    let best_end = ref 0 in
    for x = 1 to positions - 1 do
      if prev.(x) < prev.(!best_end) then best_end := x
    done;
    let new_total = prev.(!best_end) in
    if new_total < old_total -. 1e-6 then begin
      let xs = Array.make n 0 in
      let pos = ref !best_end in
      for i = n - 1 downto 0 do
        xs.(i) <- !pos;
        if i > 0 then pos := parent.(i).(!pos)
      done;
      Array.iteri
        (fun i ci -> p.Problem.cells.(ci).Problem.x <- float_of_int xs.(i) *. grid)
        order;
      true
    end
    else false
  end

let optimize_row ?options p r =
  let nets_of = cell_nets p in
  optimize_row_with ?options p nets_of r

let run ?(options = default_options) p =
  let nets_of = cell_nets p in
  let improved = ref 0 in
  for pass = 1 to options.passes do
    if pass mod 2 = 1 then
      for r = 0 to p.Problem.n_rows - 1 do
        if optimize_row_with ~options p nets_of r then incr improved
      done
    else
      for r = p.Problem.n_rows - 1 downto 0 do
        if optimize_row_with ~options p nets_of r then incr improved
      done
  done;
  !improved
