type weights = {
  lambda_t : float;
  lambda_w : float;
  lambda_d : float;
  gamma : float;
  alpha : float;
}

let default_weights tech =
  {
    lambda_t = 1.0;
    lambda_w = 1.0;
    lambda_d = 1.0;
    gamma = 2.0 *. tech.Tech.grid;
    alpha = 2.0;
  }

(* pin positions go through a getter so [cost_and_grad] can hand the
   chunks a sanitizer-tracked read-only view of [xs] *)
let src_pin_x p e get =
  let c = p.Problem.cells.(e.Problem.src) in
  get e.Problem.src +. c.Problem.lib.Cell.out_pins.(e.Problem.src_pin)

let dst_pin_x p e get =
  let c = p.Problem.cells.(e.Problem.dst) in
  let pins = c.Problem.lib.Cell.in_pins in
  get e.Problem.dst +. pins.(e.Problem.dst_pin mod Array.length pins)

(* Smooth two-pin |b - a| via the WA estimator, with d/da and d/db.
   For two pins the WA max/min expressions reduce to logistic blends. *)
let wa_abs gamma a b =
  let d = b -. a in
  (* max ~ (a e^{a/g} + b e^{b/g}) / (e^{a/g} + e^{b/g}); organize via
     the difference to stay numerically stable. *)
  let s = 1.0 /. (1.0 +. exp (-.d /. gamma)) in
  (* s = sigma(d/gamma); wa_max = a + d*s ; wa_min = a + d*(1-s) *)
  let value = d *. (2.0 *. s -. 1.0) in
  (* d(value)/dd = (2s - 1) + 2 d s(1-s)/gamma *)
  let dvalue_dd = (2.0 *. s -. 1.0) +. (2.0 *. d *. s *. (1.0 -. s) /. gamma) in
  (value, -.dvalue_dd, dvalue_dd)

let wa_wirelength p ~gamma xs =
  let get i = xs.(i) in
  Array.fold_left
    (fun acc e ->
      let xa = src_pin_x p e get and xb = dst_pin_x p e get in
      let v, _, _ = wa_abs gamma xa xb in
      acc +. v)
    0.0 p.Problem.nets

let timing_base phase ~row_width ~xs_pin ~xd_pin =
  (* Eq. (2) base and its (d/dxs, d/dxd) *)
  match ((phase mod 4) + 4) mod 4 with
  | 0 -> (xd_pin -. xs_pin, -1.0, 1.0)
  | 1 -> (xd_pin +. xs_pin, 1.0, 1.0)
  | 2 -> (-.xd_pin +. xs_pin, 1.0, -1.0)
  | 3 -> ((2.0 *. row_width) -. xd_pin -. xs_pin, -1.0, -1.0)
  | _ -> assert false

let cost_and_grad p w xs =
  let n = Array.length xs in
  let grad = Array.make n 0.0 in
  let cost = ref 0.0 in
  let row_width = Problem.row_width p in
  (* wirelength + timing + max-wirelength: map-reduce over net chunks.
     Each chunk accumulates into its own cost cell and full-size
     gradient buffer; buffers are summed left-to-right afterwards, so
     the result is independent of how many domains ran the chunks.
     (Chunk size is fixed, never derived from the pool size — that is
     the determinism contract of [Parallel.map_chunks].) *)
  let xs_view = Dsan.wrap ~label:"place.xs" ~mode:Dsan.Read_only xs in
  let get i = Dsan.get xs_view i in
  let net_chunk lo hi =
    let ccost = ref 0.0 in
    let cgrad = Array.make n 0.0 in
    for i = lo to hi - 1 do
      let e = p.Problem.nets.(i) in
      let xa = src_pin_x p e get and xb = dst_pin_x p e get in
      let v, dva, dvb = wa_abs w.gamma xa xb in
      ccost := !ccost +. v;
      cgrad.(e.Problem.src) <- cgrad.(e.Problem.src) +. dva;
      cgrad.(e.Problem.dst) <- cgrad.(e.Problem.dst) +. dvb;
      (* timing *)
      let phase = p.Problem.cells.(e.Problem.src).Problem.row in
      let base, dbs, dbd = timing_base phase ~row_width ~xs_pin:xa ~xd_pin:xb in
      if base > 0.0 then begin
        let t = base ** w.alpha in
        let dt = w.alpha *. (base ** (w.alpha -. 1.0)) in
        ccost := !ccost +. (w.lambda_t *. t);
        cgrad.(e.Problem.src) <- cgrad.(e.Problem.src) +. (w.lambda_t *. dt *. dbs);
        cgrad.(e.Problem.dst) <- cgrad.(e.Problem.dst) +. (w.lambda_t *. dt *. dbd)
      end;
      (* max-wirelength penalty on |dx| + dy *)
      let dy = Problem.net_dy p e in
      let len = Float.abs (xb -. xa) +. dy in
      let excess = len -. p.Problem.tech.Tech.w_max in
      if excess > 0.0 then begin
        ccost := !ccost +. (w.lambda_w *. excess *. excess);
        let sign = if xb >= xa then 1.0 else -1.0 in
        let d = 2.0 *. w.lambda_w *. excess in
        cgrad.(e.Problem.src) <- cgrad.(e.Problem.src) -. (d *. sign);
        cgrad.(e.Problem.dst) <- cgrad.(e.Problem.dst) +. (d *. sign)
      end
    done;
    (!ccost, cgrad)
  in
  let parts =
    Parallel.map_chunks ~label:"place.grad" ~chunk:1024
      ~n:(Array.length p.Problem.nets) net_chunk
  in
  Array.iter
    (fun (ccost, cgrad) ->
      cost := !cost +. ccost;
      for i = 0 to n - 1 do
        grad.(i) <- grad.(i) +. cgrad.(i)
      done)
    parts;
  (* row-density: quadratic penalty on pairwise overlap of row
     neighbors (by current order in xs) *)
  Array.iter
    (fun row ->
      let order = Array.copy row in
      Array.sort (fun a b -> Float.compare xs.(a) xs.(b)) order;
      for i = 0 to Array.length order - 2 do
        let a = order.(i) and b = order.(i + 1) in
        let wa_ = p.Problem.cells.(a).Problem.lib.Cell.width in
        let olap = xs.(a) +. wa_ -. xs.(b) in
        if olap > 0.0 then begin
          cost := !cost +. (w.lambda_d *. olap *. olap);
          let d = 2.0 *. w.lambda_d *. olap in
          grad.(a) <- grad.(a) +. d;
          grad.(b) <- grad.(b) -. d
        end
      done)
    p.Problem.row_cells;
  (!cost, grad)
