type t = {
  out : Netlist.t;
  hash : (Netlist.kind * int list, int) Hashtbl.t;
}

let create () = { out = Netlist.create (); hash = Hashtbl.create 256 }
let netlist t = t.out

let input t ?name () = Netlist.add t.out ?name Netlist.Input [||]
let output t ?name driver = ignore (Netlist.add t.out ?name Netlist.Output [| driver |])

let hashed t kind fanins =
  let key_fanins =
    if Netlist.commutative kind then List.sort Int.compare fanins else fanins
  in
  match Hashtbl.find_opt t.hash (kind, key_fanins) with
  | Some id -> id
  | None ->
      let id = Netlist.add t.out kind (Array.of_list fanins) in
      Hashtbl.replace t.hash (kind, key_fanins) id;
      id

let const t b = hashed t (Netlist.Const b) []

let is_const t id =
  match Netlist.kind t.out id with Netlist.Const b -> Some b | _ -> None

let not_ t a =
  match Netlist.kind t.out a with
  | Netlist.Not -> (Netlist.fanins t.out a).(0)
  | Netlist.Const b -> const t (not b)
  | _ -> hashed t Netlist.Not [ a ]

(* a and b are provably complementary signals *)
let complements t a b =
  (Netlist.kind t.out a = Netlist.Not && (Netlist.fanins t.out a).(0) = b)
  || (Netlist.kind t.out b = Netlist.Not && (Netlist.fanins t.out b).(0) = a)

let gate2 t kind a b =
  match kind with
  | Netlist.And | Netlist.Or -> (
      let absorbing = kind = Netlist.Or in
      match (is_const t a, is_const t b) with
      | Some ka, Some kb ->
          const t (if kind = Netlist.And then ka && kb else ka || kb)
      | Some k, None -> if k = absorbing then const t k else b
      | None, Some k -> if k = absorbing then const t k else a
      | None, None ->
          if a = b then a
          else if complements t a b then const t absorbing
          else hashed t kind [ a; b ])
  | _ -> hashed t kind [ a; b ]

let maj t a b c =
  (* duplicate / complementary operand collapses first *)
  if a = b then a
  else if a = c then a
  else if b = c then b
  else if complements t a b then c
  else if complements t a c then b
  else if complements t b c then a
  else
    let consts, sigs =
      List.partition_map
        (fun s ->
          match is_const t s with
          | Some k -> Either.Left k
          | None -> Either.Right s)
        [ a; b; c ]
    in
    match (consts, sigs) with
    | [], _ -> hashed t Netlist.Maj [ a; b; c ]
    | [ k ], [ x; y ] -> gate2 t (if k then Netlist.Or else Netlist.And) x y
    | [ k1; k2 ], [ x ] -> if k1 = k2 then const t k1 else x
    | [ k1; k2; k3 ], [] -> const t ((k1 && k2) || (k1 && k3) || (k2 && k3))
    | _ -> assert false

let instantiate t (impl : Maj_db.impl) leaf_ids =
  let n_leaves = Array.length leaf_ids in
  let gate_ids = Array.make (Array.length impl.Maj_db.gates) (-1) in
  let resolve = function
    | Maj_db.Cst b -> const t b
    | Maj_db.Var (k, neg) ->
        if k >= n_leaves then const t neg (* don't-care input *)
        else if neg then not_ t leaf_ids.(k)
        else leaf_ids.(k)
    | Maj_db.Gate (i, neg) ->
        if neg then not_ t gate_ids.(i) else gate_ids.(i)
  in
  Array.iteri
    (fun i (g : Maj_db.gate) ->
      gate_ids.(i) <- maj t (resolve g.Maj_db.a) (resolve g.Maj_db.b) (resolve g.Maj_db.c))
    impl.Maj_db.gates;
  resolve impl.Maj_db.out
