(** Structurally-hashed netlist construction for the rewriting
    passes.

    Every constructor returns an existing node when a structurally
    identical one was already built — commutative fan-ins
    ([And]/[Or]/[Maj]) compare in sorted order, double negations
    collapse, constants fold ([and(x,0) = 0], [maj(x,y,1) = or],
    [maj(x,~x,y) = y], ...) — so rebuilding a netlist through a
    builder {e is} common-subexpression elimination. All methods are
    deterministic; a builder is single-domain (never shared across
    parallel chunks). *)

type t

val create : unit -> t

val netlist : t -> Netlist.t
(** The netlist under construction (live view). *)

val input : t -> ?name:string -> unit -> int
val output : t -> ?name:string -> int -> unit
val const : t -> bool -> int

val not_ : t -> int -> int
(** Complement with double-negation collapse and constant folding. *)

val gate2 : t -> Netlist.kind -> int -> int -> int
(** 2-input gate with idempotence/constant/complement folding for
    [And]/[Or]; other kinds hash structurally. *)

val maj : t -> int -> int -> int -> int
(** 3-input majority: duplicate operands collapse
    ([maj(a,a,b) = a]), complementary operands cancel
    ([maj(a,~a,b) = b]), constant operands degrade to [And]/[Or]. *)

val instantiate : t -> Maj_db.impl -> int array -> int
(** Realize a database implementation over concrete leaf signals
    (variables beyond the leaf count are don't-care and feed a
    constant, as in {!Aoi_to_maj}). *)

val is_const : t -> int -> bool option
(** [Some b] when the node is (or folded to) the constant [b]. *)
