let maj_jj = Cell.jj_of_kind Netlist.Maj
let inverter_jj = Cell.jj_of_kind Netlist.Not
let buffer_jj = Cell.jj_of_kind Netlist.Buf
let const_cell_jj = Cell.jj_of_kind (Netlist.Const false)

let operand_inverters = function
  | Maj_db.Var (_, true) | Maj_db.Gate (_, true) -> 1
  | Maj_db.Var (_, false) | Maj_db.Gate (_, false) | Maj_db.Cst _ -> 0

let impl_jj (impl : Maj_db.impl) =
  let gates =
    Array.fold_left
      (fun acc (g : Maj_db.gate) ->
        acc + maj_jj
        + inverter_jj
          * (operand_inverters g.Maj_db.a + operand_inverters g.Maj_db.b
           + operand_inverters g.Maj_db.c))
      0 impl.Maj_db.gates
  in
  gates
  +
  match impl.Maj_db.out with
  | Maj_db.Cst _ -> const_cell_jj
  | Maj_db.Var (_, n) | Maj_db.Gate (_, n) -> if n then inverter_jj else 0

(* The balanced splitter tree [Insertion.insert] builds: [min 3 k]
   ways at the root, consumers distributed round-robin into the
   branches. Pure recursion (no memo table) so parallel chunks may
   call it freely. *)
let rec tree k =
  if k <= 1 then (0, 0)
  else begin
    let ways = min Cell.max_splitter_outputs k in
    let jj = ref (Cell.jj_of_kind (Netlist.Splitter ways)) in
    let depth = ref 0 in
    for i = 0 to ways - 1 do
      let size = (k / ways) + if i < k mod ways then 1 else 0 in
      let j, d = tree size in
      jj := !jj + j;
      depth := max !depth d
    done;
    (!jj, 1 + !depth)
  end

let splitter_tree_jj k = fst (tree k)
let splitter_tree_depth k = snd (tree k)

let levels nl =
  let n = Netlist.size nl in
  let fanout = Netlist.fanout_counts nl in
  let lv = Array.make n 0 in
  Array.iter
    (fun id ->
      match Netlist.kind nl id with
      | Netlist.Input | Netlist.Const _ -> ()
      | Netlist.Output -> lv.(id) <- lv.((Netlist.fanins nl id).(0))
      | _ ->
          lv.(id) <-
            Array.fold_left
              (fun acc f -> max acc (lv.(f) + splitter_tree_depth fanout.(f) + 1))
              1 (Netlist.fanins nl id))
    (Netlist.topo_order nl);
  lv

let projected nl =
  let fanout = Netlist.fanout_counts nl in
  let lv = levels nl in
  let depth =
    Netlist.fold nl
      (fun acc nd ->
        match nd.Netlist.kind with
        | Netlist.Output -> acc
        | _ -> max acc lv.(nd.Netlist.id))
      0
  in
  let jj =
    Netlist.fold nl
      (fun acc nd ->
        let id = nd.Netlist.id in
        let cells = Cell.jj_of_kind nd.Netlist.kind + splitter_tree_jj fanout.(id) in
        let buffers =
          match nd.Netlist.kind with
          | Netlist.Input | Netlist.Const _ -> 0
          | Netlist.Output ->
              let f = nd.Netlist.fanins.(0) in
              max 0 (depth - lv.(f) - splitter_tree_depth fanout.(f))
          | _ ->
              Array.fold_left
                (fun b f ->
                  b + max 0 (lv.(id) - lv.(f) - splitter_tree_depth fanout.(f) - 1))
                0 nd.Netlist.fanins
        in
        acc + cells + (buffer_jj * buffers))
      0
  in
  (jj, depth)
