(** Resynthesis cost model: uniform implementation pricing plus a
    fast projection of post-insertion JJ count and phase depth.

    Pass-level accept/reject always re-runs the real
    {!Insertion} strategies (exact); this module's [projected]
    estimate steers the {e local} choices inside a pass — which cut
    to pick, which chain shape to build, which driver to duplicate —
    where rebuilding the whole netlist per alternative would be
    quadratic. The projection mirrors the per-edge insertion
    strategy: balanced ≤3-way splitter trees under every multi-fanout
    driver (each tree level occupies a clock phase) and a 2-JJ buffer
    per phase gap on every edge, with primary outputs padded to the
    final phase. *)

val impl_jj : Maj_db.impl -> int
(** Uniform JJ price of a database implementation: 6 per majority
    gate, 2 per complemented [Var]/[Gate] operand occurrence
    (constant operands fold into the cell; a bare constant output
    costs one 2-JJ constant cell). Matches {!Maj_db}'s own
    accounting and prices NPN-transported implementations
    ({!Npn.uncanon}) on the same scale. *)

val splitter_tree_jj : int -> int
(** JJ cost of the balanced splitter tree serving [k] consumers of
    one driver (0 for [k <= 1]) — the shape
    {!Insertion.insert} builds. *)

val splitter_tree_depth : int -> int
(** Clock phases the same tree occupies between driver and
    consumers. *)

val levels : Netlist.t -> int array
(** Splitter-aware structural levels of a majority netlist:
    inputs/constants at 0, each gate one past its deepest fan-in
    {e plus} that fan-in's projected splitter-tree depth, outputs at
    their driver's level. Deterministic. *)

val projected : Netlist.t -> int * int
(** [(jj, depth)] estimate of the netlist after buffer/splitter
    insertion. Monotone enough to rank local alternatives; the pass
    manager never trusts it for final acceptance. *)
