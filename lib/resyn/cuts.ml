let cuts_per_node = 8

type cut = { leaves : int array; tt : int }

let trivial v = { leaves = [| v |]; tt = 0b10 }

let is_trivial v c =
  Array.length c.leaves = 1 && c.leaves.(0) = v && c.tt land 3 = 0b10

(* Re-express [tt] (over [old_leaves]) in terms of [new_leaves]
   (a superset, both sorted, |new| <= 3). *)
let expand old_leaves tt new_leaves =
  let n_new = Array.length new_leaves in
  let pos_of leaf =
    let rec find i = if new_leaves.(i) = leaf then i else find (i + 1) in
    find 0
  in
  let map = Array.map pos_of old_leaves in
  let tt' = ref 0 in
  for idx = 0 to (1 lsl n_new) - 1 do
    let old_idx = ref 0 in
    Array.iteri
      (fun old_var new_var ->
        if (idx lsr new_var) land 1 = 1 then old_idx := !old_idx lor (1 lsl old_var))
      map;
    if (tt lsr !old_idx) land 1 = 1 then tt' := !tt' lor (1 lsl idx)
  done;
  !tt'

let merge_leaves a b =
  let uniq = List.sort_uniq Int.compare (Array.to_list a @ Array.to_list b) in
  if List.length uniq <= 3 then Some (Array.of_list uniq) else None

let width_mask leaves = (1 lsl (1 lsl Array.length leaves)) - 1

let apply2 op ta tb mask =
  (match op with
  | Netlist.And -> ta land tb
  | Netlist.Or -> ta lor tb
  | Netlist.Nand -> lnot (ta land tb)
  | Netlist.Nor -> lnot (ta lor tb)
  | Netlist.Xor -> ta lxor tb
  | Netlist.Xnor -> lnot (ta lxor tb)
  | _ -> invalid_arg "Cuts.apply2")
  land mask

let tt3 c =
  let nvars = Array.length c.leaves in
  let tt = ref 0 in
  for idx = 0 to 7 do
    let small = idx land ((1 lsl nvars) - 1) in
    if (c.tt lsr small) land 1 = 1 then tt := !tt lor (1 lsl idx)
  done;
  !tt

let node_cuts nl cuts id =
  let base = [ trivial id ] in
  let fanin k = (Netlist.fanins nl id).(k) in
  let merged =
    match Netlist.kind nl id with
    | Netlist.Input | Netlist.Const _ | Netlist.Output -> []
    | Netlist.Not ->
        List.map
          (fun c -> { c with tt = lnot c.tt land width_mask c.leaves })
          cuts.(fanin 0)
    | Netlist.Buf | Netlist.Splitter _ -> cuts.(fanin 0)
    | ( Netlist.And | Netlist.Or | Netlist.Nand | Netlist.Nor | Netlist.Xor
      | Netlist.Xnor ) as op ->
        List.concat_map
          (fun c1 ->
            List.filter_map
              (fun c2 ->
                match merge_leaves c1.leaves c2.leaves with
                | None -> None
                | Some leaves ->
                    let t1 = expand c1.leaves c1.tt leaves in
                    let t2 = expand c2.leaves c2.tt leaves in
                    Some { leaves; tt = apply2 op t1 t2 (width_mask leaves) })
              cuts.(fanin 1))
          cuts.(fanin 0)
    | Netlist.Maj ->
        List.concat_map
          (fun c1 ->
            List.concat_map
              (fun c2 ->
                match merge_leaves c1.leaves c2.leaves with
                | None -> []
                | Some l12 ->
                    List.filter_map
                      (fun c3 ->
                        match merge_leaves l12 c3.leaves with
                        | None -> None
                        | Some leaves ->
                            let t1 = expand c1.leaves c1.tt leaves in
                            let t2 = expand c2.leaves c2.tt leaves in
                            let t3 = expand c3.leaves c3.tt leaves in
                            let tt =
                              (t1 land t2) lor (t1 land t3) lor (t2 land t3)
                            in
                            Some { leaves; tt = tt land width_mask leaves })
                      cuts.(fanin 2))
              cuts.(fanin 1))
          cuts.(fanin 0)
  in
  (* dedupe preserving first occurrence, then cap at [cuts_per_node]
     keeping the trivial cut plus the widest merges *)
  let seen = Hashtbl.create 16 in
  let all =
    List.filter
      (fun c ->
        let key = (Array.to_list c.leaves, c.tt) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      (base @ merged)
  in
  if List.length all <= cuts_per_node then all
  else
    let rest =
      List.tl all
      |> List.stable_sort (fun a b ->
             Int.compare (Array.length b.leaves) (Array.length a.leaves))
    in
    List.hd all :: List.filteri (fun i _ -> i < cuts_per_node - 1) rest

let enumerate nl =
  let n = Netlist.size nl in
  let cuts = Array.make n [] in
  let level = Array.make n 0 in
  let max_level = ref 0 in
  Array.iter
    (fun id ->
      (match Netlist.kind nl id with
      | Netlist.Input | Netlist.Const _ -> ()
      | _ ->
          level.(id) <-
            1 + Array.fold_left (fun acc f -> max acc level.(f)) 0 (Netlist.fanins nl id));
      if level.(id) > !max_level then max_level := level.(id))
    (Netlist.topo_order nl);
  let buckets = Array.make (!max_level + 1) [] in
  for id = n - 1 downto 0 do
    buckets.(level.(id)) <- id :: buckets.(level.(id))
  done;
  (* level-synchronous: a node's cuts read only strictly shallower
     nodes, so each level shards over the pool with ordered combine *)
  for l = 0 to !max_level do
    let ids = Array.of_list buckets.(l) in
    let results =
      Parallel.parallel_map ~label:"resyn.cuts" (fun id -> node_cuts nl cuts id) ids
    in
    Array.iteri (fun i id -> cuts.(id) <- results.(i)) ids
  done;
  cuts
