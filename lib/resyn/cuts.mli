(** Deterministic k-feasible cut enumeration (k = 3) over a mapped
    majority netlist.

    A cut of node [v] is a set of at most 3 leaves such that every
    path from a primary input to [v] crosses a leaf; the cut carries
    the truth table of [v] as a function of its leaves. Enumeration
    is the classical bottom-up merge — a gate's cuts are the unions
    of one cut per fan-in, capped at 3 leaves — with the trivial cut
    [{v}] always kept first and at most {!cuts_per_node} cuts per
    node (trivial plus the widest merges, the most collapsible ones).

    Determinism and parallelism: cuts depend only on strictly
    shallower nodes, so nodes are processed level-synchronously —
    each level shards over {!Parallel.parallel_map} (ordered
    combine), making the result bit-identical at any [--jobs]. *)

type cut = {
  leaves : int array;  (** sorted ascending, [1 <= length <= 3] *)
  tt : int;  (** truth table of the node over [leaves], in order *)
}

val cuts_per_node : int
(** 8 — the per-node cap, matching {!Aoi_to_maj}. *)

val tt3 : cut -> Truth.t
(** The cut function padded to the 3-variable space of {!Maj_db}
    (missing variables replicated, i.e. don't-care). *)

val trivial : int -> cut
(** [{v}] with the identity table. *)

val is_trivial : int -> cut -> bool

val enumerate : Netlist.t -> cut list array
(** Per-node cut lists, trivial first. Gates ([Maj]/[And]/[Or]/
    [Not]; [Buf]/[Splitter] pass through), inputs, constants and
    outputs get only the trivial cut. The netlist must be acyclic. *)
