type transform = { perm : int array; phase : int; out_neg : bool }

let identity = { perm = [| 0; 1; 2 |]; phase = 0; out_neg = false }

let perms =
  [|
    [| 0; 1; 2 |];
    [| 0; 2; 1 |];
    [| 1; 0; 2 |];
    [| 1; 2; 0 |];
    [| 2; 0; 1 |];
    [| 2; 1; 0 |];
  |]

let apply t f =
  Truth.of_fun 3 (fun ys ->
      let xs = Array.make 3 false in
      for j = 0 to 2 do
        let k = t.perm.(j) in
        xs.(k) <- ys.(j) <> (t.phase land (1 lsl k) <> 0)
      done;
      Truth.eval f xs <> t.out_neg)

let canon f =
  let f = f land 255 in
  let best = ref (f, identity) in
  Array.iter
    (fun perm ->
      for phase = 0 to 7 do
        List.iter
          (fun out_neg ->
            let t = { perm; phase; out_neg } in
            let g = apply t f in
            if g < fst !best then best := (g, t))
          [ false; true ]
      done)
    perms;
  !best

let map_operand t = function
  | Maj_db.Var (j, neg) ->
      let k = t.perm.(j) in
      Maj_db.Var (k, neg <> (t.phase land (1 lsl k) <> 0))
  | (Maj_db.Cst _ | Maj_db.Gate _) as op -> op

let negate_operand = function
  | Maj_db.Var (k, n) -> Maj_db.Var (k, not n)
  | Maj_db.Cst b -> Maj_db.Cst (not b)
  | Maj_db.Gate (i, n) -> Maj_db.Gate (i, not n)

let uncanon t (impl : Maj_db.impl) =
  let gates =
    Array.map
      (fun (g : Maj_db.gate) ->
        {
          Maj_db.a = map_operand t g.Maj_db.a;
          b = map_operand t g.Maj_db.b;
          c = map_operand t g.Maj_db.c;
        })
      impl.Maj_db.gates
  in
  let out = map_operand t impl.Maj_db.out in
  let out = if t.out_neg then negate_operand out else out in
  let impl' = { impl with Maj_db.gates; out } in
  { impl' with Maj_db.jj = Cost.impl_jj impl' }

let classes () =
  let seen = Hashtbl.create 32 in
  for f = 0 to 255 do
    Hashtbl.replace seen (fst (canon f)) ()
  done;
  Hashtbl.length seen
