(** NPN canonicalization of 3-variable truth tables.

    Two functions are NPN-equivalent when one becomes the other by
    permuting inputs (P), complementing some inputs (N) and possibly
    complementing the output (N). The 256 3-variable truth tables
    collapse into 14 NPN classes; canonicalizing a cut's function lets
    the rewriter consult {!Maj_db} through the class representative
    and carry its (often cheaper) implementation back through the
    inverse transform — input/output complements are just [neg] flags
    on {!Maj_db.operand}s, so the transport is exact.

    Everything here is a pure table computation: deterministic by
    construction. *)

type transform = {
  perm : int array;
      (** [perm.(j)] = the original variable read at canonical
          position [j] (a bijection on [0..2]) *)
  phase : int;  (** bit [k] set: original variable [k] enters complemented *)
  out_neg : bool;  (** the canonical function is the complement *)
}

val identity : transform

val apply : transform -> Truth.t -> Truth.t
(** [apply t f] is the function [g] with
    [g y = f x XOR t.out_neg] where [x.(t.perm.(j)) = y.(j) XOR]
    bit [t.perm.(j)] of [t.phase]. *)

val canon : Truth.t -> Truth.t * transform
(** The numerically smallest table over all 96 NPN transforms of [f],
    with a deterministic witness [t] such that
    [apply t f = canonical]. Only the low 8 bits of [f] are
    considered. *)

val uncanon : transform -> Maj_db.impl -> Maj_db.impl
(** Transport an implementation of the canonical representative back
    to the original function: substitute each input variable through
    [perm]/[phase] and complement the output when [out_neg] — i.e.
    [eval_impl (uncanon t impl) x = eval_impl impl y XOR t.out_neg]
    under the variable change of {!apply}. The [jj] field is
    recomputed with {!Cost.impl_jj}; [depth] is preserved (operand
    complements are free in depth). *)

val classes : unit -> int
(** Number of distinct canonical representatives over all 256 tables
    (14; exposed for the test suite). *)
