type effort = Off | Fast | Full

let effort_name = function Off -> "none" | Fast -> "fast" | Full -> "full"

let effort_of_string = function
  | "none" | "off" -> Ok Off
  | "fast" -> Ok Fast
  | "full" -> Ok Full
  | s ->
      Error
        (Printf.sprintf "unknown resyn effort %S (expected none, fast or full)" s)

type pass_stat = { pass : string; iterations : int; tried : int; accepted : int }

type cec_stats = {
  windows : int;
  proved : int;
  cached : int;
  memoized : int;
  failed : int;
}

type report = {
  effort : effort;
  rounds : int;
  maj_before : int;
  maj_after : int;
  jj_before : int;
  jj_after : int;
  depth_before : int;
  depth_after : int;
  buffers_before : int;
  buffers_after : int;
  splitters_before : int;
  splitters_after : int;
  passes : pass_stat list;
  cec : cec_stats;
  diags : Diag.t list;
}

let rewrites_tried r = List.fold_left (fun a p -> a + p.tried) 0 r.passes
let rewrites_accepted r = List.fold_left (fun a p -> a + p.accepted) 0 r.passes

type cache = Window.cache = {
  find : string -> string option;
  store : string -> string -> unit;
}

(* ---- fabric stripping and re-insertion ---- *)

let strip aqfp =
  let n = Netlist.size aqfp in
  let is_fabric id =
    match Netlist.kind aqfp id with
    | Netlist.Buf | Netlist.Splitter _ -> true
    | _ -> false
  in
  let rec resolve id =
    if is_fabric id then resolve (Netlist.fanins aqfp id).(0) else id
  in
  let out = Netlist.create () in
  let map = Array.make n (-1) in
  (* pass 1: placeholders (insertion rewires edges forward, so real
     fan-ins may not be mapped yet) *)
  Netlist.iter aqfp (fun nd ->
      if not (is_fabric nd.Netlist.id) then begin
        let ph =
          Array.map
            (fun f ->
              let r = resolve f in
              if map.(r) >= 0 then map.(r) else 0)
            nd.Netlist.fanins
        in
        map.(nd.Netlist.id) <- Netlist.add out ?name:nd.Netlist.name nd.Netlist.kind ph
      end);
  (* pass 2: the real resolved fan-ins *)
  Netlist.iter aqfp (fun nd ->
      if map.(nd.Netlist.id) >= 0 && Array.length nd.Netlist.fanins > 0 then
        Netlist.set_fanins out
          map.(nd.Netlist.id)
          (Array.map (fun f -> map.(resolve f)) nd.Netlist.fanins));
  out

let reinsert maj =
  let aqfp_edge, stats_edge = Insertion.insert_with_stats maj in
  match Insertion.insert_ladder_with_stats maj with
  | aqfp_ladder, stats_ladder
    when (stats_ladder.Insertion.jj, stats_ladder.Insertion.delay)
         < (stats_edge.Insertion.jj, stats_edge.Insertion.delay) ->
      (aqfp_ladder, stats_ladder)
  | _ -> (aqfp_edge, stats_edge)
  | exception Failure _ -> (aqfp_edge, stats_edge)

let aqfp_metrics aqfp =
  let jj = Cell.netlist_jj_count aqfp in
  let depth = Netlist.fold aqfp (fun acc nd -> max acc nd.Netlist.phase) 0 in
  (jj, depth)

let count_buffers nl = Netlist.count_kind nl (fun k -> k = Netlist.Buf)

let count_splitters nl =
  Netlist.count_kind nl (function Netlist.Splitter _ -> true | _ -> false)

let count_logic nl =
  Netlist.count_kind nl (function
    | Netlist.Input | Netlist.Output | Netlist.Const _ | Netlist.Buf
    | Netlist.Splitter _ ->
        false
    | _ -> true)

(* ---- generic rebuild through the hashing builder ----

   [custom b realize nd] may take over the realization of one gate;
   [None] falls back to the node's own function. Only logic reachable
   from the outputs is realized (dead-node sweep for free); primary
   inputs and outputs keep their order and names. *)

let rebuild_with custom nl =
  let b = Builder.create () in
  let memo = Array.make (Netlist.size nl) (-1) in
  List.iter
    (fun iid -> memo.(iid) <- Builder.input b ?name:(Netlist.name nl iid) ())
    (Netlist.inputs nl);
  let rec realize id =
    if memo.(id) >= 0 then memo.(id)
    else begin
      let nd = Netlist.node nl id in
      let result =
        match nd.Netlist.kind with
        | Netlist.Input | Netlist.Output -> assert false
        | Netlist.Const v -> Builder.const b v
        | _ -> (
            match custom b realize nd with
            | Some x -> x
            | None -> (
                let f k = realize nd.Netlist.fanins.(k) in
                match nd.Netlist.kind with
                | Netlist.Not -> Builder.not_ b (f 0)
                | Netlist.Maj -> Builder.maj b (f 0) (f 1) (f 2)
                | Netlist.And | Netlist.Or | Netlist.Nand | Netlist.Nor
                | Netlist.Xor | Netlist.Xnor ->
                    Builder.gate2 b nd.Netlist.kind (f 0) (f 1)
                | Netlist.Buf | Netlist.Splitter _ -> f 0
                | Netlist.Input | Netlist.Output | Netlist.Const _ ->
                    assert false))
      in
      memo.(id) <- result;
      result
    end
  in
  List.iter
    (fun oid ->
      Builder.output b ?name:(Netlist.name nl oid) (realize (Netlist.fanins nl oid).(0)))
    (Netlist.outputs nl);
  Builder.netlist b

(* ---- passes ---- *)

let no_custom _ _ _ = None

let pass_cse nl = rebuild_with no_custom nl
let pass_const nl = fst (Const_dom.fold nl)

let const_facts nl =
  let facts = Const_dom.solve nl in
  fun leaf ->
    match facts.(leaf) with
    | Const_dom.Zero -> Some false
    | Const_dom.One -> Some true
    | Const_dom.Unknown -> None

(* Cut-based rewriting: NPN-matched database covering under an
   area-flow score, each chosen rewrite guarded by window CEC. *)
let pass_rewrite guard diags nl =
  let n = Netlist.size nl in
  let const_leaf = const_facts nl in
  let cuts = Cuts.enumerate nl in
  let fanout = Netlist.fanout_counts nl in
  (* NPN class table, built serially before the parallel section *)
  let npn = Array.init 256 (fun f -> Npn.canon f) in
  let best_impl tt3 care =
    let best = ref None in
    let consider impl =
      let c = (Cost.impl_jj impl, impl.Maj_db.depth) in
      match !best with
      | Some (bc, _) when bc <= c -> ()
      | _ -> best := Some (c, impl)
    in
    let base = tt3 land care in
    for t' = 0 to 255 do
      if t' land care = base then begin
        consider (Maj_db.lookup t');
        let rep, tr = npn.(t') in
        consider (Npn.uncanon tr (Maj_db.lookup rep))
      end
    done;
    match !best with Some (_, i) -> i | None -> assert false
  in
  (* care set of a cut: assignments consistent with padding unused
     variables to 0 and with the Const_dom facts on known leaves *)
  let care_of leaves =
    let n_leaves = Array.length leaves in
    let care = ref 0 in
    for idx = 0 to 7 do
      let ok = ref true in
      for k = 0 to 2 do
        let bit = (idx lsr k) land 1 in
        if k >= n_leaves then begin
          if bit = 1 then ok := false
        end
        else
          match const_leaf leaves.(k) with
          | Some b -> if bit <> Bool.to_int b then ok := false
          | None -> ()
      done;
      if !ok then care := !care lor (1 lsl idx)
    done;
    !care
  in
  (* area-flow covering, level-synchronous so matching shards over
     the pool deterministically *)
  let af = Array.make n 0.0 in
  let choice = Array.make n `Keep in
  let level = Array.make n 0 in
  let max_level = ref 0 in
  Array.iter
    (fun id ->
      (match Netlist.kind nl id with
      | Netlist.Input | Netlist.Const _ -> ()
      | _ ->
          level.(id) <-
            1
            + Array.fold_left (fun acc f -> max acc level.(f)) 0 (Netlist.fanins nl id));
      if level.(id) > !max_level then max_level := level.(id))
    (Netlist.topo_order nl);
  let buckets = Array.make (!max_level + 1) [] in
  for id = n - 1 downto 0 do
    buckets.(level.(id)) <- id :: buckets.(level.(id))
  done;
  let is_gate = function
    | Netlist.Input | Netlist.Output | Netlist.Const _ | Netlist.Buf
    | Netlist.Splitter _ ->
        false
    | _ -> true
  in
  let leaf_flow leaves =
    Array.fold_left
      (fun acc leaf -> acc +. (af.(leaf) /. float_of_int (max 1 fanout.(leaf))))
      0.0 leaves
  in
  for l = 1 to !max_level do
    let ids =
      Array.of_list (List.filter (fun id -> is_gate (Netlist.kind nl id)) buckets.(l))
    in
    let results =
      Parallel.parallel_map ~label:"resyn.match"
        (fun id ->
          let keep =
            ( float_of_int (Cell.jj_of_kind (Netlist.kind nl id))
              +. leaf_flow (Netlist.fanins nl id),
              `Keep )
          in
          List.fold_left
            (fun ((best_cost, _) as best) c ->
              if Cuts.is_trivial id c then best
              else
                let impl = best_impl (Cuts.tt3 c) (care_of c.Cuts.leaves) in
                let cost =
                  float_of_int (Cost.impl_jj impl) +. leaf_flow c.Cuts.leaves
                in
                if cost < best_cost then (cost, `Rw (c, impl)) else best)
            keep cuts.(id))
        ids
    in
    Array.iteri
      (fun i id ->
        let cost, ch = results.(i) in
        af.(id) <- cost;
        choice.(id) <- ch)
      ids
  done;
  (* realization: serial, each chosen rewrite proved before it is kept *)
  let tried = ref 0 and survived = ref 0 in
  let custom b realize nd =
    match choice.(nd.Netlist.id) with
    | `Keep -> None
    | `Rw (c, impl) ->
        incr tried;
        let win_a =
          Window.cone nl ~root:nd.Netlist.id ~leaves:c.Cuts.leaves ~const_leaf
        in
        let win_b = Window.impl_window impl ~leaves:c.Cuts.leaves ~const_leaf in
        if Window.prove_equal guard win_a win_b then begin
          incr survived;
          let leaf_ids = Array.map realize c.Cuts.leaves in
          Some (Builder.instantiate b impl leaf_ids)
        end
        else begin
          diags :=
            Diag.warning ~rule:"RS-CEC-01" (Diag.Node nd.Netlist.id)
              "resyn window proof failed for node %d (cut of %d): rewrite refused"
              nd.Netlist.id
              (Array.length c.Cuts.leaves)
            :: !diags;
          None
        end
  in
  let cand = rebuild_with custom nl in
  (cand, !tried, !survived)

(* Depth-aware rebalancing of [And]/[Or] chains — the degenerate
   majority trees of this library ([maj(x,y,const)] normalizes to
   [And]/[Or] in the cse pass). Maximal single-fanout chains are
   flattened and recombined Huffman-style on projected levels. *)
let pass_balance nl =
  let fanout = Netlist.fanout_counts nl in
  let blevels : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let rec blevel out id =
    match Hashtbl.find_opt blevels id with
    | Some l -> l
    | None ->
        let l =
          match Netlist.kind out id with
          | Netlist.Input | Netlist.Const _ -> 0
          | _ ->
              1
              + Array.fold_left
                  (fun acc f -> max acc (blevel out f))
                  0 (Netlist.fanins out id)
        in
        Hashtbl.replace blevels id l;
        l
  in
  let custom b realize nd =
    match nd.Netlist.kind with
    | (Netlist.And | Netlist.Or) as k ->
        let leaves = ref [] in
        let rec collect id =
          Array.iter
            (fun f ->
              if Netlist.kind nl f = k && fanout.(f) = 1 then collect f
              else leaves := f :: !leaves)
            (Netlist.fanins nl id)
        in
        collect nd.Netlist.id;
        let ids =
          List.sort_uniq Int.compare (List.rev_map realize !leaves)
        in
        if List.length ids <= 2 then None
        else begin
          let out = Builder.netlist b in
          let cmp_level (la, a) (lb, b) =
            match Int.compare la lb with 0 -> Int.compare a b | c -> c
          in
          let pq =
            ref (List.sort cmp_level (List.map (fun id -> (blevel out id, id)) ids))
          in
          let rec combine () =
            match !pq with
            | [] -> assert false
            | [ (_, only) ] -> only
            | (la, a) :: (lb, bo) :: rest ->
                let g = Builder.gate2 b k a bo in
                let lg = 1 + max la lb in
                pq :=
                  List.merge cmp_level [ (lg, g) ] rest;
                combine ()
          in
          Some (combine ())
        end
    | _ -> None
  in
  rebuild_with custom nl

(* Splitter-load-aware restructuring: a 2-JJ driver (inverter or
   constant cell) with a wide splitter tree is cheaper as several
   copies with shallow trees. The exact accept/reject in the pass
   manager prices the duplicated driver against the tree it saves. *)
let pass_split nl =
  let cand = Netlist.copy nl in
  let n = Netlist.size nl in
  let consumers = Array.make n [] in
  Netlist.iter nl (fun nd ->
      Array.iteri
        (fun idx f -> consumers.(f) <- (nd.Netlist.id, idx) :: consumers.(f))
        nd.Netlist.fanins);
  for id = 0 to n - 1 do
    let splittable =
      match Netlist.kind nl id with
      | Netlist.Not | Netlist.Const _ -> true
      | _ -> false
    in
    let edges = List.rev consumers.(id) in
    if splittable && List.length edges >= 5 then begin
      (* groups of <= 3 consumers; the original keeps the first *)
      let rec regroup edges first =
        match edges with
        | [] -> ()
        | _ ->
            let group = List.filteri (fun i _ -> i < 3) edges in
            let rest = List.filteri (fun i _ -> i >= 3) edges in
            let target =
              if first then id
              else
                Netlist.add cand (Netlist.kind nl id)
                  (Array.copy (Netlist.fanins nl id))
            in
            if not first then
              List.iter
                (fun (c, idx) ->
                  let fanins = Array.copy (Netlist.fanins cand c) in
                  fanins.(idx) <- target;
                  Netlist.set_fanins cand c fanins)
                group;
            regroup rest false
      in
      regroup edges true
    end
  done;
  cand

(* Observability-seeded elimination: nodes [Obs_dom] proves blocked
   (their value provably never reaches an output) collapse to a
   constant; the whole-netlist CEC acceptance proof makes the
   abstract fact unconditional. *)
let pass_obs nl =
  let facts = Obs_dom.solve nl in
  let custom b _realize nd =
    match facts.(nd.Netlist.id) with
    | Obs_dom.Blocked _ -> Some (Builder.const b false)
    | Obs_dom.Dead _ | Obs_dom.Observable -> None
  in
  rebuild_with custom nl

(* ---- pass manager ---- *)

type m_state = { maj : Netlist.t; aqfp : Netlist.t; jj : int; depth : int }

type pass_kind =
  | Plain of (Netlist.t -> Netlist.t)
  | Rewriting  (** [pass_rewrite], which reports its own window counts *)

let pass_list = function
  | Off -> []
  | Fast -> [ ("cse", Plain pass_cse); ("rewrite", Rewriting) ]
  | Full ->
      [
        ("const", Plain pass_const);
        ("cse", Plain pass_cse);
        ("rewrite", Rewriting);
        ("balance", Plain pass_balance);
        ("split", Plain pass_split);
        ("obs", Plain pass_obs);
      ]

let run ?(effort = Off) ?cache aqfp0 =
  let maj0 = strip aqfp0 in
  let jj0, depth0 = aqfp_metrics aqfp0 in
  let base_report =
    {
      effort;
      rounds = 0;
      maj_before = count_logic maj0;
      maj_after = count_logic maj0;
      jj_before = jj0;
      jj_after = jj0;
      depth_before = depth0;
      depth_after = depth0;
      buffers_before = count_buffers aqfp0;
      buffers_after = count_buffers aqfp0;
      splitters_before = count_splitters aqfp0;
      splitters_after = count_splitters aqfp0;
      passes = [];
      cec = { windows = 0; proved = 0; cached = 0; memoized = 0; failed = 0 };
      diags = [];
    }
  in
  if effort = Off then (aqfp0, base_report)
  else begin
    let guard = Window.make ?cache () in
    let diags = ref [] in
    let passes = pass_list effort in
    let stats =
      List.map (fun (name, _) -> (name, ref 0, ref 0, ref 0)) passes
      (* iterations, tried, accepted *)
    in
    let state = ref { maj = maj0; aqfp = aqfp0; jj = jj0; depth = depth0 } in
    let rounds = ref 0 in
    let improving = ref true in
    let max_rounds = match effort with Fast -> 1 | _ -> max_int in
    while !improving && !rounds < max_rounds do
      incr rounds;
      improving := false;
      List.iter2
        (fun (_, p) (_, iters, tried, accepted) ->
          incr iters;
          let cur = !state in
          let cand, w_tried, w_survived =
            match p with
            | Plain f -> (f cur.maj, 0, 0)
            | Rewriting -> pass_rewrite guard diags cur.maj
          in
          let differs = Netlist.struct_hash cand <> Netlist.struct_hash cur.maj in
          tried := !tried + (match p with Rewriting -> w_tried | Plain _ -> if differs then 1 else 0);
          if differs then begin
            let aqfp', st = reinsert cand in
            let jj' = st.Insertion.jj and depth' = st.Insertion.delay in
            if
              jj' <= cur.jj && depth' <= cur.depth
              && (jj' < cur.jj || depth' < cur.depth)
              && Window.prove_equal guard cur.maj cand
            then begin
              accepted :=
                !accepted + (match p with Rewriting -> w_survived | Plain _ -> 1);
              state := { maj = cand; aqfp = aqfp'; jj = jj'; depth = depth' };
              improving := true
            end
          end)
        passes stats;
      (* every acceptance strictly shrinks jj + depth, so the loop is
         a well-founded descent *)
      ()
    done;
    let final = !state in
    let ws = Window.stats guard in
    let report =
      {
        base_report with
        rounds = !rounds;
        maj_after = count_logic final.maj;
        jj_after = final.jj;
        depth_after = final.depth;
        buffers_after = count_buffers final.aqfp;
        splitters_after = count_splitters final.aqfp;
        passes =
          List.map
            (fun (name, iters, tried, accepted) ->
              { pass = name; iterations = !iters; tried = !tried; accepted = !accepted })
            stats;
        cec =
          {
            windows = ws.Window.windows;
            proved = ws.Window.proved;
            cached = ws.Window.cached;
            memoized = ws.Window.memoized;
            failed = ws.Window.failed;
          };
        diags = List.sort Diag.compare !diags;
      }
    in
    (final.aqfp, report)
  end
