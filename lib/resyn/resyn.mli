(** [sf_resyn] — cut-based majority resynthesis between mapping and
    placement (ROADMAP item 1; the flow's [resyn] stage).

    The engine consumes the post-insertion AQFP netlist from
    {!Synth_flow}, strips the buffer/splitter fabric back to the bare
    majority netlist, iterates rewriting passes to a fixpoint under a
    pass manager, and re-runs the {!Insertion} strategies (cheaper of
    per-edge and ladder, exactly like {!Synth_flow}) to produce the
    optimized AQFP netlist. A candidate from any pass is accepted
    only when its {e exact} post-insertion cost improves — JJ count
    and phase depth pointwise no worse, at least one strictly better
    — and it is proved equivalent to its predecessor through
    {!Window.prove_equal} (SAT CEC, verdicts memoized in the design
    database). The passes, in round order at [Full] effort:

    - [const]: {!Const_dom.fold} constant propagation;
    - [cse]: rebuild through {!Builder} — canonical commutative
      operand order, double-negation collapse, majority-with-constant
      degradation, dead-logic sweep;
    - [rewrite]: k-feasible cut enumeration ({!Cuts}), NPN-canonical
      matching ({!Npn}) of every cut function against {!Maj_db}
      (don't-care-widened by {!Const_dom} facts), area-flow covering
      scored by {!Cost}, each chosen rewrite guarded by window CEC —
      a refused window falls back to the original cone and raises an
      [RS-CEC-01] warning;
    - [balance]: depth-aware rebalancing of [And]/[Or] chains (the
      degenerate majority trees of this library) by Huffman
      combination on projected levels;
    - [split]: splitter-load-aware duplication of cheap (2-JJ)
      high-fanout drivers so their splitter trees shrink;
    - [obs]: {!Obs_dom}-seeded blocked-node elimination.

    [Fast] effort is a single [cse] + [rewrite] round; [Off] returns
    the input unchanged (the stage still exists and caches). Rounds
    repeat until no pass improves; since every acceptance strictly
    shrinks [jj + depth], the fixpoint terminates and a second run
    accepts zero rewrites on the result.

    Determinism: cut enumeration and matching shard level-
    synchronously over {!Parallel} with ordered combine; realization
    and proof traffic are serial — the output netlist is
    byte-identical at any [--jobs]. *)

type effort = Off | Fast | Full

val effort_name : effort -> string
(** ["none"], ["fast"], ["full"]. *)

val effort_of_string : string -> (effort, string) result

type pass_stat = {
  pass : string;
  iterations : int;  (** times the pass ran *)
  tried : int;  (** candidate rewrites considered *)
  accepted : int;  (** rewrites in accepted candidates *)
}

type cec_stats = {
  windows : int;
  proved : int;  (** fresh SAT proofs *)
  cached : int;  (** served by the persistent proof cache *)
  memoized : int;  (** served by the in-run table *)
  failed : int;  (** refused rewrites *)
}

type report = {
  effort : effort;
  rounds : int;
  maj_before : int;  (** logic gates in the stripped majority netlist *)
  maj_after : int;
  jj_before : int;  (** post-insertion JJ count *)
  jj_after : int;
  depth_before : int;  (** post-insertion phase depth *)
  depth_after : int;
  buffers_before : int;
  buffers_after : int;
  splitters_before : int;
  splitters_after : int;
  passes : pass_stat list;  (** in pass order; stable across runs *)
  cec : cec_stats;
  diags : Diag.t list;  (** [RS-CEC-01] refusals, {!Diag.compare}-sorted *)
}

val rewrites_tried : report -> int
val rewrites_accepted : report -> int

type cache = Window.cache = {
  find : string -> string option;
  store : string -> string -> unit;
}

val strip : Netlist.t -> Netlist.t
(** Remove the buffer/splitter fabric from a post-insertion netlist:
    every [Buf]/[Splitter] is bypassed to its transitive driver,
    surviving nodes keep their relative order and names, phases
    reset to 0. Inverse of insertion up to the fabric. *)

val reinsert : Netlist.t -> Netlist.t * Insertion.stats
(** {!Synth_flow}'s insertion selection: cheaper of per-edge and
    ladder by (JJ, delay), with the ladder's failure fallback. *)

val run : ?effort:effort -> ?cache:cache -> Netlist.t -> Netlist.t * report
(** [run aqfp0] — the full stage on a post-insertion netlist.
    [effort] defaults to [Off] (identity). When nothing improves, the
    input netlist is returned {e unchanged} (same bytes), which makes
    the stage idempotent: a second run over its own output accepts 0
    rewrites. [cache] persists CEC verdicts (the flow wires it to
    {!Db.put_proof}/{!Db.find_proof}); a warm rerun proves 0 fresh
    windows. *)
