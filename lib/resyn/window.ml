type cache = {
  find : string -> string option;
  store : string -> string -> unit;
}

type stats = {
  mutable windows : int;
  mutable proved : int;
  mutable cached : int;
  mutable memoized : int;
  mutable failed : int;
}

type guard = {
  persistent : cache option;
  memo : (string, bool) Hashtbl.t;
  s : stats;
}

let make ?cache () =
  {
    persistent = cache;
    memo = Hashtbl.create 256;
    s = { windows = 0; proved = 0; cached = 0; memoized = 0; failed = 0 };
  }

let stats g = g.s

let key a b = "rs1:" ^ Netlist.struct_hash a ^ ":" ^ Netlist.struct_hash b

let prove_equal g a b =
  g.s.windows <- g.s.windows + 1;
  let k = key a b in
  match Hashtbl.find_opt g.memo k with
  | Some v ->
      g.s.memoized <- g.s.memoized + 1;
      if not v then g.s.failed <- g.s.failed + 1;
      v
  | None ->
      let remember v =
        Hashtbl.replace g.memo k v;
        if not v then g.s.failed <- g.s.failed + 1;
        v
      in
      let persisted =
        match g.persistent with None -> None | Some c -> c.find k
      in
      (match persisted with
      | Some verdict ->
          g.s.cached <- g.s.cached + 1;
          remember (verdict = "equal")
      | None ->
          if Netlist.inputs a = [] then remember false
          else begin
            match Cec.check a b with
            | Cec.Equal ->
                g.s.proved <- g.s.proved + 1;
                (match g.persistent with
                | Some c -> c.store k "equal"
                | None -> ());
                remember true
            | Cec.Diff _ ->
                (* proven non-equivalence: also worth caching *)
                (match g.persistent with
                | Some c -> c.store k "diff"
                | None -> ());
                remember false
            | Cec.Unknown _ -> remember false
          end)

let cone nl ~root ~leaves ~const_leaf =
  let w = Netlist.create () in
  let memo = Hashtbl.create 32 in
  Array.iter
    (fun leaf ->
      let id =
        match const_leaf leaf with
        | Some b -> Netlist.add w (Netlist.Const b) [||]
        | None -> Netlist.add w Netlist.Input [||]
      in
      Hashtbl.replace memo leaf id)
    leaves;
  let rec build id =
    match Hashtbl.find_opt memo id with
    | Some x -> x
    | None ->
        let fanins = Array.map build (Netlist.fanins nl id) in
        let x = Netlist.add w (Netlist.kind nl id) fanins in
        Hashtbl.replace memo id x;
        x
  in
  let driver = build root in
  ignore (Netlist.add w Netlist.Output [| driver |]);
  w

let impl_window impl ~leaves ~const_leaf =
  let b = Builder.create () in
  let leaf_ids =
    Array.map
      (fun leaf ->
        match const_leaf leaf with
        | Some v -> Builder.const b v
        | None -> Builder.input b ())
      leaves
  in
  let out = Builder.instantiate b impl leaf_ids in
  Builder.output b out;
  Builder.netlist b
