(** Window equivalence guards for accepted rewrites.

    Every local rewrite is re-proved before it is kept: the original
    fan-in cone between a node and its cut leaves (window A) is
    checked combinationally equivalent to the candidate
    implementation over the same leaves (window B) with the
    {!Cec} SAT machinery, and every whole-netlist pass candidate is
    proved against its predecessor the same way. Verdicts are
    memoized twice — an in-run table, and a persistent [find]/[store]
    cache the flow wires to the design database's proof store —
    keyed by the {!Netlist.struct_hash} pair of the two windows
    (commutative-canonical, so re-encounters hit across runs). Only
    {e proven} verdicts ([Equal], or [Diff] with a counterexample)
    are ever stored; [Unknown] is retried next time.

    Don't-care seeding: a cut leaf that {!Const_dom} proved constant
    enters {e both} windows as a [Const] cell instead of a primary
    input, so the proof is exactly the claim "equal under the
    dataflow fact" — and the matcher may pick an implementation that
    differs outside that care set. *)

type cache = {
  find : string -> string option;
  store : string -> string -> unit;
}
(** Persistent verdict store, e.g. {!Db.find_proof}/{!Db.put_proof}.
    Both directions are called serially. *)

type stats = {
  mutable windows : int;  (** pairs submitted *)
  mutable proved : int;  (** fresh SAT proofs that returned [Equal] *)
  mutable cached : int;  (** verdicts served by the persistent cache *)
  mutable memoized : int;  (** verdicts served by the in-run table *)
  mutable failed : int;  (** [Diff]/[Unknown] — the rewrite is refused *)
}

type guard

val make : ?cache:cache -> unit -> guard
val stats : guard -> stats

val prove_equal : guard -> Netlist.t -> Netlist.t -> bool
(** [true] only on a proven [Equal] verdict (fresh, in-run or
    cached). The netlists must agree in primary input/output counts;
    a window pair with zero primary inputs is refused outright
    (counted [failed]) — constant folding owns that case. *)

val cone :
  Netlist.t -> root:int -> leaves:int array ->
  const_leaf:(int -> bool option) -> Netlist.t
(** Window A: the sub-netlist between [root] and [leaves] (every
    root-to-input path must cross a leaf — the cut property). Leaves
    become primary inputs in array order, except those with a
    [const_leaf] fact, which become [Const] cells; [root] drives the
    single output. *)

val impl_window :
  Maj_db.impl -> leaves:int array ->
  const_leaf:(int -> bool option) -> Netlist.t
(** Window B: the candidate implementation instantiated over fresh
    inputs under the same leaf discipline as {!cone}. *)
