(* Channel density by sweep line: +1 at each net's left pin x, -1 just
   after its right pin x; the running maximum is the density. *)
let channel_density p r =
  let events = ref [] in
  Array.iteri
    (fun ni e ->
      if p.Problem.cells.(e.Problem.src).Problem.row = r then begin
        let xs = Problem.pin_x p ni `Src and xd = Problem.pin_x p ni `Dst in
        let lo = Float.min xs xd and hi = Float.max xs xd in
        events := (lo, 1) :: (hi +. 1e-6, -1) :: !events
      end)
    p.Problem.nets;
  let sorted =
    List.sort
      (fun (x1, d1) (x2, d2) ->
        match Float.compare x1 x2 with 0 -> Int.compare d1 d2 | c -> c)
      !events
  in
  let cur = ref 0 and best = ref 0 in
  List.iter
    (fun (_, d) ->
      cur := !cur + d;
      if !cur > !best then best := !cur)
    sorted;
  !best

let densities p =
  Array.init (max 0 (p.Problem.n_rows - 1)) (fun r -> channel_density p r)

(* A gap of height g offers about g / grid - 1 horizontal tracks (the
   boundary lines are reserved for pins and the previous pair). *)
let tracks_of_gap p r =
  let grid = p.Problem.tech.Tech.grid in
  max 0 (int_of_float (p.Problem.row_gaps.(r) /. grid) - 1)

let preexpand ?(slack_tracks = 0) ?(demand_factor = 0.85) p =
  let tech = p.Problem.tech in
  let widened = ref 0 in
  Array.iteri
    (fun r density ->
      (* channel density is a worst-case bound; most nets share tracks
         over disjoint x-ranges, so provision a fraction of it and let
         the router's reactive expansion absorb the remainder *)
      let need =
        int_of_float (ceil (demand_factor *. float_of_int density)) + slack_tracks
      in
      let have = tracks_of_gap p r in
      if need > have then begin
        p.Problem.row_gaps.(r) <-
          p.Problem.row_gaps.(r)
          +. (float_of_int (need - have) *. tech.Tech.grid);
        incr widened
      end)
    (densities p);
  !widened

let report p =
  let t = Table.create ~headers:[ "gap"; "nets"; "density"; "tracks"; "status" ] in
  let counts = Array.make (max 1 (p.Problem.n_rows - 1)) 0 in
  Array.iter
    (fun e ->
      let r = p.Problem.cells.(e.Problem.src).Problem.row in
      if r < Array.length counts then counts.(r) <- counts.(r) + 1)
    p.Problem.nets;
  Array.iteri
    (fun r density ->
      let tracks = tracks_of_gap p r in
      Table.add_row t
        [
          string_of_int r;
          string_of_int counts.(r);
          string_of_int density;
          string_of_int tracks;
          (if tracks >= density then "ok" else "tight");
        ])
    (densities p);
  Table.render t
