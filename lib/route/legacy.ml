(* The pre-arena search cores, kept verbatim as the measured baseline
   for the [route_study] bench and the old-vs-new property tests.

   These are the two float-heap A* bodies (per-net allocation of
   dist/parent arrays, Fheap open list, no window pruning) and the
   reroute-everything negotiation loop that [Search] and
   [Router.negotiate_pair] replaced. They are not used by the flow;
   [Router.route_all ~core:Legacy] selects them explicitly so the
   bench can report old-core vs new-core wall time on identical
   inputs, and tests can cross-check route validity of both cores.

   Do not "improve" this module: its value is that it stays exactly
   what shipped before the search-core overhaul. *)

open Search

(* A* for one net on the pair grid. Returns the node path (goal
   first). *)
let astar g ~via_cost ~net ~sx ~sy ~gx ~gy =
  let nx = g.nx and ny = g.ny in
  let n_states = nx * ny * 2 in
  let dist = Array.make n_states infinity in
  let parent = Array.make n_states (-1) in
  let queue = Fheap.create () in
  let state ix iy dir = (((iy * nx) + ix) * 2) + dir in
  let heuristic ix iy =
    g.grid *. float_of_int (abs (ix - gx) + abs (iy - gy))
  in
  let passable_edge owner idx = owner.(idx) = -1 || owner.(idx) = net in
  let passable_node layer idx = layer.(idx) = -1 || layer.(idx) = net in
  (* first move is forced downward out of the source pin *)
  if sy + 1 < ny then begin
    let vidx = node_index g sx sy in
    if
      passable_edge g.v_owner vidx
      && (not g.blocked.(node_index g sx (sy + 1)))
      && passable_node g.node_v (node_index g sx (sy + 1))
    then begin
      let s = state sx (sy + 1) dir_v in
      dist.(s) <- g.grid;
      parent.(s) <- -2;
      Fheap.push queue (g.grid +. heuristic sx (sy + 1)) s
    end
  end;
  let goal_state = ref (-1) in
  let continue = ref true in
  while !continue do
    match Fheap.pop queue with
    | None -> continue := false
    | Some (prio, s) ->
        let d = dist.(s) in
        if prio -. heuristic ((s / 2) mod nx) (s / 2 / nx) <= d +. 1e-9 then begin
          let node = s / 2 in
          let dir = s land 1 in
          let ix = node mod nx and iy = node / nx in
          if ix = gx && iy = gy && dir = dir_v then begin
            goal_state := s;
            continue := false
          end
          else begin
            let try_move nix niy ndir edge_owner edge_idx node_layer =
              if nix >= 0 && nix < nx && niy >= 0 && niy < ny then begin
                let nnode = node_index g nix niy in
                (* the goal node is exempt from the blocked test (it
                   sits on the region boundary anyway); a run claims
                   both of an edge's endpoints on its layer, so check
                   the departing node too *)
                let node_ok =
                  ((not g.blocked.(nnode)) || (nix = gx && niy = gy))
                  && passable_node node_layer nnode
                  && passable_node node_layer (node_index g ix iy)
                in
                if node_ok && passable_edge edge_owner edge_idx then begin
                  let turn = if dir <> ndir then via_cost else 0.0 in
                  let nd = d +. g.grid +. turn in
                  let ns = state nix niy ndir in
                  if nd < dist.(ns) -. 1e-9 then begin
                    dist.(ns) <- nd;
                    parent.(ns) <- s;
                    Fheap.push queue (nd +. heuristic nix niy) ns
                  end
                end
              end
            in
            (* right *)
            if not (g.blocked_h.(node_index g ix iy) || (ix + 1 < nx && g.blocked_h.(node_index g (ix + 1) iy))) then
              try_move (ix + 1) iy dir_h g.h_owner (node_index g ix iy) g.node_h;
            (* left *)
            if ix > 0
               && not (g.blocked_h.(node_index g ix iy) || g.blocked_h.(node_index g (ix - 1) iy))
            then
              try_move (ix - 1) iy dir_h g.h_owner (node_index g (ix - 1) iy) g.node_h;
            (* down *)
            try_move ix (iy + 1) dir_v g.v_owner (node_index g ix iy) g.node_v;
            (* up *)
            if iy > 0 then
              try_move ix (iy - 1) dir_v g.v_owner (node_index g ix (iy - 1)) g.node_v
          end
        end
  done;
  if !goal_state < 0 then None
  else begin
    (* reconstruct: list of (ix, iy, dir) from goal back to source *)
    let rec walk s acc =
      if s = -2 then acc
      else
        let node = s / 2 in
        let ix = node mod nx and iy = node / nx in
        walk parent.(s) ((ix, iy, s land 1) :: acc)
    in
    let path = walk !goal_state [] in
    Some ((sx, sy, dir_v) :: path)
  end

(* ---- negotiated-congestion (PathFinder-style) pair routing ----

   Every iteration routes all nets with shared resources allowed but
   priced (present-sharing cost that grows per round + accumulated
   history), until every edge and node-layer slot has a single
   tenant. Pin reservations stay hard. *)

type negotiation = {
  h_use : int array; (* tenants of each horizontal edge, last iteration *)
  v_use : int array;
  nh_use : int array; (* node-layer occupancy *)
  nv_use : int array;
  h_hist : float array;
  v_hist : float array;
  nh_hist : float array;
  nv_hist : float array;
  h_mine : int array; (* last-iteration user marks for self-exclusion *)
  v_mine : int array;
  nh_mine : int array;
  nv_mine : int array;
}

let make_negotiation g =
  let n = g.nx * g.ny in
  {
    h_use = Array.make n 0;
    v_use = Array.make n 0;
    nh_use = Array.make n 0;
    nv_use = Array.make n 0;
    h_hist = Array.make n 0.0;
    v_hist = Array.make n 0.0;
    nh_hist = Array.make n 0.0;
    nv_hist = Array.make n 0.0;
    h_mine = Array.make n (-1);
    v_mine = Array.make n (-1);
    nh_mine = Array.make n (-1);
    nv_mine = Array.make n (-1);
  }

(* A* where foreign usage is priced instead of forbidden; hard
   constraints remain: blocked cells, blocked_h rows, and pin
   reservations (owner arrays) of other nets. *)
let astar_negotiated g neg ~via_cost ~present ~net ~sx ~sy ~gx ~gy =
  let nx = g.nx and ny = g.ny in
  let n_states = nx * ny * 2 in
  let dist = Array.make n_states infinity in
  let parent = Array.make n_states (-1) in
  let queue = Fheap.create () in
  let state ix iy dir = (((iy * nx) + ix) * 2) + dir in
  let heuristic ix iy = g.grid *. float_of_int (abs (ix - gx) + abs (iy - gy)) in
  let hard_ok owner idx = owner.(idx) = -1 || owner.(idx) = net in
  let foreign use mine idx =
    let u = use.(idx) in
    if mine.(idx) = net then u - 1 else u
  in
  let edge_price use mine hist idx =
    (present *. float_of_int (max 0 (foreign use mine idx))) +. hist.(idx)
  in
  if sy + 1 < ny then begin
    let vidx = node_index g sx sy in
    if hard_ok g.v_owner vidx && not g.blocked.(node_index g sx (sy + 1)) then begin
      let s = state sx (sy + 1) dir_v in
      dist.(s) <- g.grid;
      parent.(s) <- -2;
      Fheap.push queue (g.grid +. heuristic sx (sy + 1)) s
    end
  end;
  let goal_state = ref (-1) in
  let continue = ref true in
  while !continue do
    match Fheap.pop queue with
    | None -> continue := false
    | Some (prio, s) ->
        let d = dist.(s) in
        if prio -. heuristic ((s / 2) mod nx) (s / 2 / nx) <= d +. 1e-9 then begin
          let node = s / 2 in
          let dir = s land 1 in
          let ix = node mod nx and iy = node / nx in
          if ix = gx && iy = gy && dir = dir_v then begin
            goal_state := s;
            continue := false
          end
          else begin
            let try_move nix niy ndir ~edge_owner ~edge_idx ~use ~mine ~hist
                ~node_use ~node_mine ~node_hist ~node_owner =
              if nix >= 0 && nix < nx && niy >= 0 && niy < ny then begin
                let nnode = node_index g nix niy in
                let here = node_index g ix iy in
                let hard =
                  ((not g.blocked.(nnode)) || (nix = gx && niy = gy))
                  && hard_ok edge_owner edge_idx
                  && hard_ok node_owner nnode && hard_ok node_owner here
                in
                if hard then begin
                  let turn = if dir <> ndir then via_cost else 0.0 in
                  let congestion =
                    edge_price use mine hist edge_idx
                    +. edge_price node_use node_mine node_hist nnode
                  in
                  let nd = d +. g.grid +. turn +. congestion in
                  let ns = state nix niy ndir in
                  if nd < dist.(ns) -. 1e-9 then begin
                    dist.(ns) <- nd;
                    parent.(ns) <- s;
                    Fheap.push queue (nd +. heuristic nix niy) ns
                  end
                end
              end
            in
            (* horizontal moves obey the blocked_h pin-edge rule *)
            if
              not
                (g.blocked_h.(node_index g ix iy)
                || (ix + 1 < nx && g.blocked_h.(node_index g (ix + 1) iy)))
            then
              try_move (ix + 1) iy dir_h ~edge_owner:g.h_owner
                ~edge_idx:(node_index g ix iy) ~use:neg.h_use ~mine:neg.h_mine
                ~hist:neg.h_hist ~node_use:neg.nh_use ~node_mine:neg.nh_mine
                ~node_hist:neg.nh_hist ~node_owner:g.node_h;
            if
              ix > 0
              && not
                   (g.blocked_h.(node_index g ix iy)
                   || g.blocked_h.(node_index g (ix - 1) iy))
            then
              try_move (ix - 1) iy dir_h ~edge_owner:g.h_owner
                ~edge_idx:(node_index g (ix - 1) iy) ~use:neg.h_use
                ~mine:neg.h_mine ~hist:neg.h_hist ~node_use:neg.nh_use
                ~node_mine:neg.nh_mine ~node_hist:neg.nh_hist ~node_owner:g.node_h;
            try_move ix (iy + 1) dir_v ~edge_owner:g.v_owner
              ~edge_idx:(node_index g ix iy) ~use:neg.v_use ~mine:neg.v_mine
              ~hist:neg.v_hist ~node_use:neg.nv_use ~node_mine:neg.nv_mine
              ~node_hist:neg.nv_hist ~node_owner:g.node_v;
            if iy > 0 then
              try_move ix (iy - 1) dir_v ~edge_owner:g.v_owner
                ~edge_idx:(node_index g ix (iy - 1)) ~use:neg.v_use
                ~mine:neg.v_mine ~hist:neg.v_hist ~node_use:neg.nv_use
                ~node_mine:neg.nv_mine ~node_hist:neg.nv_hist ~node_owner:g.node_v
          end
        end
  done;
  if !goal_state < 0 then None
  else begin
    let rec walk s acc =
      if s = -2 then acc
      else
        let node = s / 2 in
        let ix = node mod nx and iy = node / nx in
        walk parent.(s) ((ix, iy, s land 1) :: acc)
    in
    Some ((sx, sy, dir_v) :: walk !goal_state [])
  end

(* tally resource usage of a path into the negotiation state *)
let tally g neg ~net path =
  let mark use mine idx =
    if mine.(idx) <> net then begin
      mine.(idx) <- net;
      use.(idx) <- use.(idx) + 1
    end
  in
  let rec claim = function
    | (x1, y1, _) :: ((x2, y2, dir) :: _ as rest) ->
        if dir = dir_h then begin
          mark neg.h_use neg.h_mine (node_index g (min x1 x2) y1);
          mark neg.nh_use neg.nh_mine (node_index g x1 y1);
          mark neg.nh_use neg.nh_mine (node_index g x2 y2)
        end
        else begin
          mark neg.v_use neg.v_mine ((min y1 y2 * g.nx) + x1);
          mark neg.nv_use neg.nv_mine (node_index g x1 y1);
          mark neg.nv_use neg.nv_mine (node_index g x2 y2)
        end;
        claim rest
    | _ -> ()
  in
  claim path

(* One negotiation attempt for a whole pair. Returns routed paths if
   every resource ended with a single tenant. *)
let negotiate_pair g endpoints ~via_cost ~max_iterations =
  let neg = make_negotiation g in
  let n_res = g.nx * g.ny in
  let paths : (int * (int * int * int) list) list ref = ref [] in
  let present = ref (0.5 *. g.grid) in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !iter < max_iterations do
    incr iter;
    (* clear usage marks, keep history *)
    Array.fill neg.h_use 0 n_res 0;
    Array.fill neg.v_use 0 n_res 0;
    Array.fill neg.nh_use 0 n_res 0;
    Array.fill neg.nv_use 0 n_res 0;
    Array.fill neg.h_mine 0 n_res (-1);
    Array.fill neg.v_mine 0 n_res (-1);
    Array.fill neg.nh_mine 0 n_res (-1);
    Array.fill neg.nv_mine 0 n_res (-1);
    let this_round = ref [] in
    let all_routed = ref true in
    List.iter
      (fun (ni, sx, sy, gx, gy) ->
        match
          astar_negotiated g neg ~via_cost ~present:!present ~net:ni ~sx ~sy ~gx ~gy
        with
        | Some path ->
            tally g neg ~net:ni path;
            this_round := (ni, path) :: !this_round
        | None -> all_routed := false)
      endpoints;
    paths := !this_round;
    (* overuse -> history, and check convergence *)
    let overused = ref false in
    let bump use hist =
      Array.iteri
        (fun i u ->
          if u > 1 then begin
            overused := true;
            hist.(i) <- hist.(i) +. (g.grid *. float_of_int (u - 1))
          end)
        use
    in
    bump neg.h_use neg.h_hist;
    bump neg.v_use neg.v_hist;
    bump neg.nh_use neg.nh_hist;
    bump neg.nv_use neg.nv_hist;
    converged := !all_routed && not !overused;
    present := !present *. 1.6
  done;
  if !converged then Some !paths else None
