open Search

type route = {
  net : int;
  points : (float * float) list;
  vias : int;
  length : float;
}

type result = {
  routes : route array;
  expansions : int; (* space expansions: channel-growth retries *)
  node_expansions : int; (* A* states popped (0 under the Legacy core) *)
  neg_rounds : int; (* max negotiation rounds over all row pairs *)
  neg_rerouted : int; (* total net reroutes across negotiation rounds *)
  wirelength : float;
  total_vias : int;
  runtime_s : float;
}

exception Unroutable of int

(* [gap] is the pair's own routing gap (the caller tracks growth
   locally during space expansion and commits it to
   [Problem.row_gaps] once routing settles). *)
let make_grid p r ~margin ~gap : Search.grid =
  let tech = p.Problem.tech in
  let grid = tech.Tech.grid in
  let height = p.Problem.row_height +. gap in
  let width = Problem.row_width p +. margin in
  let nx = (int_of_float (width /. grid)) + 1 in
  let ny = (int_of_float (height /. grid +. 0.5)) + 1 in
  let g =
    {
      nx;
      ny;
      grid;
      blocked = Array.make (nx * ny) false;
      blocked_h = Array.make (nx * ny) false;
      h_owner = Array.make (nx * ny) (-1);
      v_owner = Array.make (nx * ny) (-1);
      node_h = Array.make (nx * ny) (-1);
      node_v = Array.make (nx * ny) (-1);
    }
  in
  (* row r's top line belongs to the previous pair; block it. The
     bottom boundary holds the sink pins: vertical arrival only. *)
  for ix = 0 to nx - 1 do
    g.blocked.(ix) <- true;
    g.blocked_h.(((ny - 1) * nx) + ix) <- true
  done;
  (* cell bodies of row r: closed in x (wires keep a full pitch away
     laterally), open in y (pins on the bottom edge stay reachable). *)
  Array.iter
    (fun ci ->
      let c = p.Problem.cells.(ci) in
      let lx = int_of_float (c.Problem.x /. grid +. 0.5) in
      let hx = int_of_float ((c.Problem.x +. c.Problem.lib.Cell.width) /. grid +. 0.5) in
      let hy = int_of_float (c.Problem.lib.Cell.height /. grid +. 0.5) in
      for ix = max 0 lx to min (nx - 1) hx do
        for iy = 1 to min (ny - 1) (hy - 1) do
          g.blocked.((iy * nx) + ix) <- true
        done;
        (* the cell's bottom edge carries its output pins: no
           horizontal runs across it *)
        if hy <= ny - 1 then g.blocked_h.((hy * nx) + ix) <- true
      done)
    p.Problem.row_cells.(r);
  g

(* Commit a routed path: claim edges and per-layer nodes. *)
let commit g ~net path =
  let rec claim = function
    | (x1, y1, _) :: ((x2, y2, dir) :: _ as rest) ->
        if dir = dir_h then begin
          let ex = min x1 x2 in
          g.h_owner.(node_index g ex y1) <- net;
          g.node_h.(node_index g x1 y1) <- net;
          g.node_h.(node_index g x2 y2) <- net
        end
        else begin
          let ey = min y1 y2 in
          g.v_owner.((ey * g.nx) + x1) <- net;
          g.node_v.(node_index g x1 y1) <- net;
          g.node_v.(node_index g x2 y2) <- net
        end;
        claim rest
    | _ -> ()
  in
  claim path

(* Convert a pair-local path to absolute coordinates; [y0] is the top
   of the pair's upper row once every pair's gap growth is known. *)
let path_to_route ~grid ~y0 ~net path =
  let coords =
    List.map (fun (ix, iy, _) -> (0.0 +. (float_of_int ix *. grid), y0 +. (float_of_int iy *. grid))) path
  in
  (* keep corners only *)
  let rec simplify = function
    | (x1, y1) :: (x2, y2) :: (x3, y3) :: rest
      when (x1 = x2 && x2 = x3) || (y1 = y2 && y2 = y3) ->
        simplify ((x1, y1) :: (x3, y3) :: rest)
    | p :: rest -> p :: simplify rest
    | [] -> []
  in
  let points = simplify coords in
  let length = grid *. float_of_int (List.length path - 1) in
  let vias = max 0 (List.length points - 2) in
  { net; points; vias; length }

(* ---- dirty-net negotiation over the shared search core ----

   PathFinder-style rip-up-and-reroute where tallies persist across
   rounds: a net reroutes only when it is dirty — it has no path yet,
   or some resource its path occupies has more than one tenant.
   Clean nets keep their paths and their tallies, so late rounds cost
   only the congested remainder instead of a full re-route of every
   net (the old core's behavior, kept in [Legacy]). *)

(* A net's tallied resources, deduplicated, encoded (idx lsl 2) lor
   kind so untallying is a flat list walk. *)
let kind_eh = 0 (* horizontal edge *)
let kind_ev = 1 (* vertical edge *)
let kind_nh = 2 (* node on the horizontal layer *)
let kind_nv = 3 (* node on the vertical layer *)

(* dedup stamps for one tally pass: a path claims both endpoints of
   every edge, so consecutive segments touch shared nodes twice *)
type neg_stamps = {
  mutable op : int;
  st_eh : int array;
  st_ev : int array;
  st_nh : int array;
  st_nv : int array;
}

let make_stamps g =
  let n = g.nx * g.ny in
  {
    op = 0;
    st_eh = Array.make n 0;
    st_ev = Array.make n 0;
    st_nh = Array.make n 0;
    st_nv = Array.make n 0;
  }

(* tally a path's resource usage; returns the deduped resource list *)
let tally g neg st path =
  st.op <- st.op + 1;
  let op = st.op in
  let res = ref [] in
  let mark stamp use kind idx =
    if stamp.(idx) <> op then begin
      stamp.(idx) <- op;
      use.(idx) <- use.(idx) + 1;
      res := ((idx lsl 2) lor kind) :: !res
    end
  in
  let rec claim = function
    | (x1, y1, _) :: ((x2, y2, dir) :: _ as rest) ->
        if dir = dir_h then begin
          mark st.st_eh neg.h_use kind_eh (node_index g (min x1 x2) y1);
          mark st.st_nh neg.nh_use kind_nh (node_index g x1 y1);
          mark st.st_nh neg.nh_use kind_nh (node_index g x2 y2)
        end
        else begin
          mark st.st_ev neg.v_use kind_ev ((min y1 y2 * g.nx) + x1);
          mark st.st_nv neg.nv_use kind_nv (node_index g x1 y1);
          mark st.st_nv neg.nv_use kind_nv (node_index g x2 y2)
        end;
        claim rest
    | _ -> ()
  in
  claim path;
  !res

let use_of_kind neg = function
  | 0 -> neg.h_use
  | 1 -> neg.v_use
  | 2 -> neg.nh_use
  | _ -> neg.nv_use

let untally neg res =
  List.iter
    (fun r ->
      let use = use_of_kind neg (r land 3) in
      let idx = r lsr 2 in
      use.(idx) <- use.(idx) - 1)
    res

(* a net is dirty when any resource it occupies is overused *)
let touches_overuse neg res =
  List.exists
    (fun r -> (use_of_kind neg (r land 3)).(r lsr 2) > 1)
    res

(* One negotiation attempt for a whole pair. Returns routed paths
   (in endpoint order) with round/reroute counts if every resource
   ended with a single tenant. *)
let negotiate_pair g arena endpoints ~via_q ~max_iterations =
  let neg = make_neg_state g in
  let st = make_stamps g in
  let eps = Array.of_list endpoints in
  let n = Array.length eps in
  (* per endpoint: its current path and deduped resource list *)
  let paths = Array.make n None in
  let present = ref (0.5 *. g.grid) in
  let converged = ref false in
  let rounds = ref 0 in
  let rerouted = ref 0 in
  while (not !converged) && !rounds < max_iterations do
    incr rounds;
    let present_q = max 1 (quantize g !present) in
    let all_routed = ref true in
    Array.iteri
      (fun i (ni, sx, sy, gx, gy) ->
        let dirty =
          match paths.(i) with
          | None -> true
          | Some (_, res) -> touches_overuse neg res
        in
        if dirty then begin
          incr rerouted;
          (match paths.(i) with
          | Some (_, res) ->
              untally neg res;
              paths.(i) <- None
          | None -> ());
          let costs = negotiated_costs g neg ~present_q ~net:ni in
          match run_bboxed arena g ~costs ~via_q ~sx ~sy ~gx ~gy with
          | Some path -> paths.(i) <- Some (path, tally g neg st path)
          | None -> all_routed := false
        end)
      eps;
    (* overuse -> history, and check convergence *)
    let overused = ref false in
    let bump use hist =
      Array.iteri
        (fun i u ->
          if u > 1 then begin
            overused := true;
            hist.(i) <- hist.(i) + (qscale * (u - 1))
          end)
        use
    in
    bump neg.h_use neg.h_hist;
    bump neg.v_use neg.v_hist;
    bump neg.nh_use neg.nh_hist;
    bump neg.nv_use neg.nv_hist;
    converged := !all_routed && not !overused;
    present := !present *. 1.6
  done;
  if !converged then begin
    let out = ref [] in
    for i = n - 1 downto 0 do
      match paths.(i) with
      | Some (path, _) ->
          let ni, _, _, _, _ = eps.(i) in
          out := (ni, path) :: !out
      | None -> assert false
    done;
    Some (!out, !rounds, !rerouted)
  end
  else None

type algorithm = Sequential | Negotiated

(* [Fast] is the arena/dial-queue core in [Search]; [Legacy] is the
   frozen pre-overhaul core, kept for benchmarking and cross-checks. *)
type core = Fast | Legacy

(* everything a finished pair hands back to the merge step: routed
   paths still in pair-local grid indices, plus the gap the pair ended
   up needing and how many expansion steps it took to get there *)
type pair_outcome = {
  pair_paths : (int * (int * int * int) list) list; (* (net, path), net order *)
  pair_gap : float;
  pair_expansions : int;
  pair_node_expansions : int;
  pair_rounds : int;
  pair_rerouted : int;
}

(* Route one row pair start to finish: ordering, pin reservation,
   claiming (or negotiation), promotion retries, space expansion. Pure
   with respect to shared state — reads only row [r]'s cells and its
   starting gap, tracks gap growth locally — so pairs can run on
   separate domains and still produce bit-identical results in any
   interleaving. *)
let route_pair p r ~nets ~via_cost ~max_expansions ~algorithm ~core ~margin =
  let tech = p.Problem.tech in
  let grid = tech.Tech.grid in
  let gap = ref p.Problem.row_gaps.(r) in
  let expansions = ref 0 in
  let arena = create_arena () in
  let rounds = ref 0 in
  let rerouted = ref 0 in
  (* a net that failed an attempt is promoted to the front of the next
     one: often it just needs first pick of the tracks, which is much
     cheaper than growing the channel *)
  let promoted : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let order_nets () =
    List.sort
      (fun a b ->
        let prio n = if Hashtbl.mem promoted n then 0 else 1 in
        match Int.compare (prio a) (prio b) with
        | 0 ->
            Float.compare
              (Float.abs (Problem.net_dx p p.Problem.nets.(a)))
              (Float.abs (Problem.net_dx p p.Problem.nets.(b)))
        | c -> c)
      nets
  in
  let rec attempt ~promotions tries =
    let nets = order_nets () in
    let g = make_grid p r ~margin ~gap:!gap in
    let via_q = quantize g via_cost in
    let to_grid_x x = int_of_float (x /. grid +. 0.5) in
    let to_grid_y y = int_of_float (y /. grid +. 0.5) in
    (* reserve every net's pin-escape edges up front so early-routed nets
       cannot wall in a later net's pins *)
    let endpoints =
      List.map
        (fun ni ->
          let e = p.Problem.nets.(ni) in
          let sc = p.Problem.cells.(e.Problem.src) in
          let sx = to_grid_x (Problem.pin_x p ni `Src) in
          let sy = to_grid_y sc.Problem.lib.Cell.height in
          let gx = to_grid_x (Problem.pin_x p ni `Dst) in
          let gy = g.ny - 1 in
          (ni, sx, sy, gx, gy))
        nets
    in
    List.iter
      (fun (ni, sx, sy, gx, gy) ->
        (* escape edges and the vertical occupancy of the pin-adjacent
           nodes: without this an earlier net's vertical run through
           (gx, gy-1) would make the final descent impossible no
           matter how much space expansion adds *)
        if sy < g.ny - 1 then begin
          g.v_owner.((sy * g.nx) + sx) <- ni;
          g.node_v.(node_index g sx sy) <- ni;
          g.node_v.(node_index g sx (sy + 1)) <- ni;
          g.node_h.(node_index g sx (sy + 1)) <- ni
        end;
        if gy > 0 then begin
          g.v_owner.(((gy - 1) * g.nx) + gx) <- ni;
          g.node_v.(node_index g gx gy) <- ni;
          g.node_v.(node_index g gx (gy - 1)) <- ni;
          g.node_h.(node_index g gx (gy - 1)) <- ni
        end)
      endpoints;
    let failed = ref None in
    let paths = ref [] in
    (match (algorithm, core) with
    | Negotiated, Fast -> (
        match negotiate_pair g arena endpoints ~via_q ~max_iterations:24 with
        | Some (routed, rds, rr) ->
            rounds := max !rounds rds;
            rerouted := !rerouted + rr;
            List.iter
              (fun (ni, path) ->
                commit g ~net:ni path;
                paths := (ni, path) :: !paths)
              routed
        | None -> (
            (* negotiation failed: fall back to sequential claiming in
               this geometry, then to space expansion *)
            match endpoints with
            | (first, _, _, _, _) :: _ -> failed := Some first
            | [] -> ()))
    | Negotiated, Legacy -> (
        match
          Legacy.negotiate_pair g endpoints ~via_cost ~max_iterations:24
        with
        | Some routed ->
            List.iter
              (fun (ni, path) ->
                commit g ~net:ni path;
                paths := (ni, path) :: !paths)
              routed
        | None -> (
            match endpoints with
            | (first, _, _, _, _) :: _ -> failed := Some first
            | [] -> ()))
    | Sequential, Fast ->
        List.iter
          (fun (ni, sx, sy, gx, gy) ->
            if !failed = None then begin
              let costs = owned_costs g ~net:ni in
              match run_bboxed arena g ~costs ~via_q ~sx ~sy ~gx ~gy with
              | Some path ->
                  commit g ~net:ni path;
                  paths := (ni, path) :: !paths
              | None -> failed := Some ni
            end)
          endpoints
    | Sequential, Legacy ->
        List.iter
          (fun (ni, sx, sy, gx, gy) ->
            if !failed = None then
              match Legacy.astar g ~via_cost ~net:ni ~sx ~sy ~gx ~gy with
              | Some path ->
                  commit g ~net:ni path;
                  paths := (ni, path) :: !paths
              | None -> failed := Some ni)
          endpoints);
    match !failed with
    | None ->
        {
          pair_paths = List.rev !paths;
          pair_gap = !gap;
          pair_expansions = !expansions;
          pair_node_expansions = arena.Search.expansions;
          pair_rounds = !rounds;
          pair_rerouted = !rerouted;
        }
    | Some ni ->
        if promotions < 3 && not (Hashtbl.mem promoted ni) then begin
          Hashtbl.replace promoted ni ();
          attempt ~promotions:(promotions + 1) tries
        end
        else begin
          if tries >= max_expansions then raise (Unroutable ni);
          incr expansions;
          gap := !gap +. tech.Tech.s_min;
          attempt ~promotions (tries + 1)
        end
  in
  attempt ~promotions:0 0

let route_all ?(via_cost = 20.0) ?(max_expansions = 400)
    ?(algorithm = Sequential) ?(core = Fast) p =
  let t0 = Wallclock.now_s () in
  let tech = p.Problem.tech in
  let grid = tech.Tech.grid in
  let margin = 30.0 *. grid in
  let n_nets = Array.length p.Problem.nets in
  let routes = Array.make n_nets None in
  (* nets grouped by source row *)
  let by_row = Array.make (max 1 p.Problem.n_rows) [] in
  Array.iteri
    (fun ni e ->
      let r = p.Problem.cells.(e.Problem.src).Problem.row in
      by_row.(r) <- ni :: by_row.(r))
    p.Problem.nets;
  let n_pairs = max 0 (p.Problem.n_rows - 1) in
  (* route all pairs concurrently (one task per pair, in row order);
     failures are captured per pair and re-raised deterministically *)
  let outcomes =
    Parallel.map_chunks ~label:"route.pairs" ~chunk:1 ~n:n_pairs (fun r _ ->
        try
          Ok
            (route_pair p r ~nets:by_row.(r) ~via_cost ~max_expansions
               ~algorithm ~core ~margin)
        with e -> Error e)
  in
  (* merge in row order: commit gap growth (raising the leftmost
     pair's failure, with earlier pairs' gaps committed, exactly like
     the serial loop did), then convert paths to absolute coordinates
     now that every row's final top is known *)
  Array.iteri
    (fun r outcome ->
      match outcome with
      | Ok oc -> p.Problem.row_gaps.(r) <- oc.pair_gap
      | Error e -> raise e)
    outcomes;
  let expansions = ref 0 in
  let node_expansions = ref 0 in
  let neg_rounds = ref 0 in
  let neg_rerouted = ref 0 in
  Array.iteri
    (fun r oc ->
      match oc with
      | Error _ -> assert false
      | Ok oc ->
          expansions := !expansions + oc.pair_expansions;
          node_expansions := !node_expansions + oc.pair_node_expansions;
          neg_rounds := max !neg_rounds oc.pair_rounds;
          neg_rerouted := !neg_rerouted + oc.pair_rerouted;
          let y0 = Problem.row_top p r in
          List.iter
            (fun (ni, path) ->
              routes.(ni) <- Some (path_to_route ~grid ~y0 ~net:ni path))
            oc.pair_paths)
    outcomes;
  let routes = Array.map Option.get routes in
  let wirelength = Array.fold_left (fun acc r -> acc +. r.length) 0.0 routes in
  let total_vias = Array.fold_left (fun acc r -> acc + r.vias) 0 routes in
  {
    routes;
    expansions = !expansions;
    node_expansions = !node_expansions;
    neg_rounds = !neg_rounds;
    neg_rerouted = !neg_rerouted;
    wirelength;
    total_vias;
    runtime_s = Wallclock.now_s () -. t0;
  }

let check_routes p result =
  let problems = ref [] in
  let push fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  let grid = p.Problem.tech.Tech.grid in
  let seg_table : (int * int * int * bool, int) Hashtbl.t = Hashtbl.create 1024 in
  Array.iter
    (fun rt ->
      let e = p.Problem.nets.(rt.net) in
      (match rt.points with
      | [] | [ _ ] -> push "net %d: degenerate route" rt.net
      | (x0, y0) :: _ ->
          let sx = Problem.pin_x p rt.net `Src in
          let sc = p.Problem.cells.(e.Problem.src) in
          let sy = Problem.row_top p sc.Problem.row +. sc.Problem.lib.Cell.height in
          if Float.abs (x0 -. sx) > 1e-6 || Float.abs (y0 -. sy) > 1e-6 then
            push "net %d: route does not start at source pin" rt.net);
      (match List.rev rt.points with
      | (xn, yn) :: _ ->
          let dx = Problem.pin_x p rt.net `Dst in
          let dc = p.Problem.cells.(e.Problem.dst) in
          let dy = Problem.row_top p dc.Problem.row in
          if Float.abs (xn -. dx) > 1e-6 || Float.abs (yn -. dy) > 1e-6 then
            push "net %d: route does not end at sink pin" rt.net
      | [] -> ());
      (* walk segments; register every grid edge *)
      let rec walk = function
        | (x1, y1) :: ((x2, y2) :: _ as rest) ->
            if x1 <> x2 && y1 <> y2 then push "net %d: diagonal segment" rt.net
            else begin
              let horizontal = y1 = y2 in
              let steps =
                int_of_float (Float.abs ((x2 -. x1) +. (y2 -. y1)) /. grid +. 0.5)
              in
              for s = 0 to steps - 1 do
                let fx = if horizontal then Float.min x1 x2 +. (float_of_int s *. grid) else x1 in
                let fy = if horizontal then y1 else Float.min y1 y2 +. (float_of_int s *. grid) in
                let key =
                  ( int_of_float (fx /. grid +. 0.5),
                    int_of_float (fy /. grid +. 0.5),
                    0,
                    horizontal )
                in
                (match Hashtbl.find_opt seg_table key with
                | Some other when other <> rt.net ->
                    push "nets %d/%d share a grid edge" rt.net other
                | _ -> ());
                Hashtbl.replace seg_table key rt.net
              done
            end;
            walk rest
        | _ -> ()
      in
      walk rt.points)
    result.routes;
  match !problems with
  | [] -> Ok ()
  | ps ->
      Error (String.concat "; " (List.filteri (fun i _ -> i < 10) (List.rev ps)))
