type route = {
  net : int;
  points : (float * float) list;
  vias : int;
  length : float;
}

type result = {
  routes : route array;
  expansions : int;
  wirelength : float;
  total_vias : int;
  runtime_s : float;
}

exception Unroutable of int

(* Directions: 0 = horizontal arrival, 1 = vertical arrival. *)
let dir_h = 0
let dir_v = 1

(* A pair grid lives in pair-local coordinates: x from 0 at the row's
   left edge, y from 0 at the top of row [r]. Keeping the grid free of
   absolute y lets every row pair be routed on its own domain — a
   pair's decisions depend only on its own row's cells and its own
   gap, never on how much space pairs above it grabbed. Absolute
   coordinates are restored after all pairs finish (see [route_all]). *)
type pair_grid = {
  nx : int;
  ny : int;
  grid : float;
  blocked : bool array; (* nodes, nx*ny *)
  blocked_h : bool array; (* nodes where horizontal runs are forbidden
                             (cell pin edges, region boundaries) *)
  h_owner : int array; (* edge (ix,iy)-(ix+1,iy) *)
  v_owner : int array; (* edge (ix,iy)-(ix,iy+1) *)
  node_h : int array; (* node used by a horizontal run of net i *)
  node_v : int array;
}

(* [gap] is the pair's own routing gap (the caller tracks growth
   locally during space expansion and commits it to
   [Problem.row_gaps] once routing settles). *)
let make_grid p r ~margin ~gap =
  let tech = p.Problem.tech in
  let grid = tech.Tech.grid in
  let height = p.Problem.row_height +. gap in
  let width = Problem.row_width p +. margin in
  let nx = (int_of_float (width /. grid)) + 1 in
  let ny = (int_of_float (height /. grid +. 0.5)) + 1 in
  let g =
    {
      nx;
      ny;
      grid;
      blocked = Array.make (nx * ny) false;
      blocked_h = Array.make (nx * ny) false;
      h_owner = Array.make (nx * ny) (-1);
      v_owner = Array.make (nx * ny) (-1);
      node_h = Array.make (nx * ny) (-1);
      node_v = Array.make (nx * ny) (-1);
    }
  in
  (* row r's top line belongs to the previous pair; block it. The
     bottom boundary holds the sink pins: vertical arrival only. *)
  for ix = 0 to nx - 1 do
    g.blocked.(ix) <- true;
    g.blocked_h.(((ny - 1) * nx) + ix) <- true
  done;
  (* cell bodies of row r: closed in x (wires keep a full pitch away
     laterally), open in y (pins on the bottom edge stay reachable). *)
  Array.iter
    (fun ci ->
      let c = p.Problem.cells.(ci) in
      let lx = int_of_float (c.Problem.x /. grid +. 0.5) in
      let hx = int_of_float ((c.Problem.x +. c.Problem.lib.Cell.width) /. grid +. 0.5) in
      let hy = int_of_float (c.Problem.lib.Cell.height /. grid +. 0.5) in
      for ix = max 0 lx to min (nx - 1) hx do
        for iy = 1 to min (ny - 1) (hy - 1) do
          g.blocked.((iy * nx) + ix) <- true
        done;
        (* the cell's bottom edge carries its output pins: no
           horizontal runs across it *)
        if hy <= ny - 1 then g.blocked_h.((hy * nx) + ix) <- true
      done)
    p.Problem.row_cells.(r);
  g

let node_index g ix iy = (iy * g.nx) + ix

(* A* for one net on the pair grid. Returns the node path (goal
   first). *)
let astar g ~via_cost ~net ~sx ~sy ~gx ~gy =
  let nx = g.nx and ny = g.ny in
  let n_states = nx * ny * 2 in
  let dist = Array.make n_states infinity in
  let parent = Array.make n_states (-1) in
  let queue = Fheap.create () in
  let state ix iy dir = (((iy * nx) + ix) * 2) + dir in
  let heuristic ix iy =
    g.grid *. float_of_int (abs (ix - gx) + abs (iy - gy))
  in
  let passable_edge owner idx = owner.(idx) = -1 || owner.(idx) = net in
  let passable_node layer idx = layer.(idx) = -1 || layer.(idx) = net in
  (* first move is forced downward out of the source pin *)
  if sy + 1 < ny then begin
    let vidx = node_index g sx sy in
    if
      passable_edge g.v_owner vidx
      && (not g.blocked.(node_index g sx (sy + 1)))
      && passable_node g.node_v (node_index g sx (sy + 1))
    then begin
      let s = state sx (sy + 1) dir_v in
      dist.(s) <- g.grid;
      parent.(s) <- -2;
      Fheap.push queue (g.grid +. heuristic sx (sy + 1)) s
    end
  end;
  let goal_state = ref (-1) in
  let continue = ref true in
  while !continue do
    match Fheap.pop queue with
    | None -> continue := false
    | Some (prio, s) ->
        let d = dist.(s) in
        if prio -. heuristic ((s / 2) mod nx) (s / 2 / nx) <= d +. 1e-9 then begin
          let node = s / 2 in
          let dir = s land 1 in
          let ix = node mod nx and iy = node / nx in
          if ix = gx && iy = gy && dir = dir_v then begin
            goal_state := s;
            continue := false
          end
          else begin
            let try_move nix niy ndir edge_owner edge_idx node_layer =
              if nix >= 0 && nix < nx && niy >= 0 && niy < ny then begin
                let nnode = node_index g nix niy in
                (* the goal node is exempt from the blocked test (it
                   sits on the region boundary anyway); a run claims
                   both of an edge's endpoints on its layer, so check
                   the departing node too *)
                let node_ok =
                  ((not g.blocked.(nnode)) || (nix = gx && niy = gy))
                  && passable_node node_layer nnode
                  && passable_node node_layer (node_index g ix iy)
                in
                if node_ok && passable_edge edge_owner edge_idx then begin
                  let turn = if dir <> ndir then via_cost else 0.0 in
                  let nd = d +. g.grid +. turn in
                  let ns = state nix niy ndir in
                  if nd < dist.(ns) -. 1e-9 then begin
                    dist.(ns) <- nd;
                    parent.(ns) <- s;
                    Fheap.push queue (nd +. heuristic nix niy) ns
                  end
                end
              end
            in
            (* right *)
            if not (g.blocked_h.(node_index g ix iy) || (ix + 1 < nx && g.blocked_h.(node_index g (ix + 1) iy))) then
              try_move (ix + 1) iy dir_h g.h_owner (node_index g ix iy) g.node_h;
            (* left *)
            if ix > 0
               && not (g.blocked_h.(node_index g ix iy) || g.blocked_h.(node_index g (ix - 1) iy))
            then
              try_move (ix - 1) iy dir_h g.h_owner (node_index g (ix - 1) iy) g.node_h;
            (* down *)
            try_move ix (iy + 1) dir_v g.v_owner (node_index g ix iy) g.node_v;
            (* up *)
            if iy > 0 then
              try_move ix (iy - 1) dir_v g.v_owner (node_index g ix (iy - 1)) g.node_v
          end
        end
  done;
  if !goal_state < 0 then None
  else begin
    (* reconstruct: list of (ix, iy, dir) from goal back to source *)
    let rec walk s acc =
      if s = -2 then acc
      else
        let node = s / 2 in
        let ix = node mod nx and iy = node / nx in
        walk parent.(s) ((ix, iy, s land 1) :: acc)
    in
    let path = walk !goal_state [] in
    Some ((sx, sy, dir_v) :: path)
  end

(* Commit a routed path: claim edges and per-layer nodes. *)
let commit g ~net path =
  let rec claim = function
    | (x1, y1, _) :: ((x2, y2, dir) :: _ as rest) ->
        if dir = dir_h then begin
          let ex = min x1 x2 in
          g.h_owner.(node_index g ex y1) <- net;
          g.node_h.(node_index g x1 y1) <- net;
          g.node_h.(node_index g x2 y2) <- net
        end
        else begin
          let ey = min y1 y2 in
          g.v_owner.((ey * g.nx) + x1) <- net;
          g.node_v.(node_index g x1 y1) <- net;
          g.node_v.(node_index g x2 y2) <- net
        end;
        claim rest
    | _ -> ()
  in
  claim path

(* Convert a pair-local path to absolute coordinates; [y0] is the top
   of the pair's upper row once every pair's gap growth is known. *)
let path_to_route ~grid ~y0 ~net path =
  let coords =
    List.map (fun (ix, iy, _) -> (0.0 +. (float_of_int ix *. grid), y0 +. (float_of_int iy *. grid))) path
  in
  (* keep corners only *)
  let rec simplify = function
    | (x1, y1) :: (x2, y2) :: (x3, y3) :: rest
      when (x1 = x2 && x2 = x3) || (y1 = y2 && y2 = y3) ->
        simplify ((x1, y1) :: (x3, y3) :: rest)
    | p :: rest -> p :: simplify rest
    | [] -> []
  in
  let points = simplify coords in
  let length = grid *. float_of_int (List.length path - 1) in
  let vias = max 0 (List.length points - 2) in
  { net; points; vias; length }

(* ---- negotiated-congestion (PathFinder-style) pair routing ----

   Alternative to the first-come-first-served claiming above: every
   iteration routes all nets with shared resources allowed but priced
   (present-sharing cost that grows per round + accumulated history),
   until every edge and node-layer slot has a single tenant. Pin
   reservations stay hard. *)

type negotiation = {
  h_use : int array; (* tenants of each horizontal edge, last iteration *)
  v_use : int array;
  nh_use : int array; (* node-layer occupancy *)
  nv_use : int array;
  h_hist : float array;
  v_hist : float array;
  nh_hist : float array;
  nv_hist : float array;
  h_mine : int array; (* last-iteration user marks for self-exclusion *)
  v_mine : int array;
  nh_mine : int array;
  nv_mine : int array;
}

let make_negotiation g =
  let n = g.nx * g.ny in
  {
    h_use = Array.make n 0;
    v_use = Array.make n 0;
    nh_use = Array.make n 0;
    nv_use = Array.make n 0;
    h_hist = Array.make n 0.0;
    v_hist = Array.make n 0.0;
    nh_hist = Array.make n 0.0;
    nv_hist = Array.make n 0.0;
    h_mine = Array.make n (-1);
    v_mine = Array.make n (-1);
    nh_mine = Array.make n (-1);
    nv_mine = Array.make n (-1);
  }

(* A* where foreign usage is priced instead of forbidden; hard
   constraints remain: blocked cells, blocked_h rows, and pin
   reservations (owner arrays) of other nets. *)
let astar_negotiated g neg ~via_cost ~present ~net ~sx ~sy ~gx ~gy =
  let nx = g.nx and ny = g.ny in
  let n_states = nx * ny * 2 in
  let dist = Array.make n_states infinity in
  let parent = Array.make n_states (-1) in
  let queue = Fheap.create () in
  let state ix iy dir = (((iy * nx) + ix) * 2) + dir in
  let heuristic ix iy = g.grid *. float_of_int (abs (ix - gx) + abs (iy - gy)) in
  let hard_ok owner idx = owner.(idx) = -1 || owner.(idx) = net in
  let foreign use mine idx =
    let u = use.(idx) in
    if mine.(idx) = net then u - 1 else u
  in
  let edge_price use mine hist idx =
    (present *. float_of_int (max 0 (foreign use mine idx))) +. hist.(idx)
  in
  if sy + 1 < ny then begin
    let vidx = node_index g sx sy in
    if hard_ok g.v_owner vidx && not g.blocked.(node_index g sx (sy + 1)) then begin
      let s = state sx (sy + 1) dir_v in
      dist.(s) <- g.grid;
      parent.(s) <- -2;
      Fheap.push queue (g.grid +. heuristic sx (sy + 1)) s
    end
  end;
  let goal_state = ref (-1) in
  let continue = ref true in
  while !continue do
    match Fheap.pop queue with
    | None -> continue := false
    | Some (prio, s) ->
        let d = dist.(s) in
        if prio -. heuristic ((s / 2) mod nx) (s / 2 / nx) <= d +. 1e-9 then begin
          let node = s / 2 in
          let dir = s land 1 in
          let ix = node mod nx and iy = node / nx in
          if ix = gx && iy = gy && dir = dir_v then begin
            goal_state := s;
            continue := false
          end
          else begin
            let try_move nix niy ndir ~edge_owner ~edge_idx ~use ~mine ~hist
                ~node_use ~node_mine ~node_hist ~node_owner =
              if nix >= 0 && nix < nx && niy >= 0 && niy < ny then begin
                let nnode = node_index g nix niy in
                let here = node_index g ix iy in
                let hard =
                  ((not g.blocked.(nnode)) || (nix = gx && niy = gy))
                  && hard_ok edge_owner edge_idx
                  && hard_ok node_owner nnode && hard_ok node_owner here
                in
                if hard then begin
                  let turn = if dir <> ndir then via_cost else 0.0 in
                  let congestion =
                    edge_price use mine hist edge_idx
                    +. edge_price node_use node_mine node_hist nnode
                  in
                  let nd = d +. g.grid +. turn +. congestion in
                  let ns = state nix niy ndir in
                  if nd < dist.(ns) -. 1e-9 then begin
                    dist.(ns) <- nd;
                    parent.(ns) <- s;
                    Fheap.push queue (nd +. heuristic nix niy) ns
                  end
                end
              end
            in
            (* horizontal moves obey the blocked_h pin-edge rule *)
            if
              not
                (g.blocked_h.(node_index g ix iy)
                || (ix + 1 < nx && g.blocked_h.(node_index g (ix + 1) iy)))
            then
              try_move (ix + 1) iy dir_h ~edge_owner:g.h_owner
                ~edge_idx:(node_index g ix iy) ~use:neg.h_use ~mine:neg.h_mine
                ~hist:neg.h_hist ~node_use:neg.nh_use ~node_mine:neg.nh_mine
                ~node_hist:neg.nh_hist ~node_owner:g.node_h;
            if
              ix > 0
              && not
                   (g.blocked_h.(node_index g ix iy)
                   || g.blocked_h.(node_index g (ix - 1) iy))
            then
              try_move (ix - 1) iy dir_h ~edge_owner:g.h_owner
                ~edge_idx:(node_index g (ix - 1) iy) ~use:neg.h_use
                ~mine:neg.h_mine ~hist:neg.h_hist ~node_use:neg.nh_use
                ~node_mine:neg.nh_mine ~node_hist:neg.nh_hist ~node_owner:g.node_h;
            try_move ix (iy + 1) dir_v ~edge_owner:g.v_owner
              ~edge_idx:(node_index g ix iy) ~use:neg.v_use ~mine:neg.v_mine
              ~hist:neg.v_hist ~node_use:neg.nv_use ~node_mine:neg.nv_mine
              ~node_hist:neg.nv_hist ~node_owner:g.node_v;
            if iy > 0 then
              try_move ix (iy - 1) dir_v ~edge_owner:g.v_owner
                ~edge_idx:(node_index g ix (iy - 1)) ~use:neg.v_use
                ~mine:neg.v_mine ~hist:neg.v_hist ~node_use:neg.nv_use
                ~node_mine:neg.nv_mine ~node_hist:neg.nv_hist ~node_owner:g.node_v
          end
        end
  done;
  if !goal_state < 0 then None
  else begin
    let rec walk s acc =
      if s = -2 then acc
      else
        let node = s / 2 in
        let ix = node mod nx and iy = node / nx in
        walk parent.(s) ((ix, iy, s land 1) :: acc)
    in
    Some ((sx, sy, dir_v) :: walk !goal_state [])
  end

(* tally resource usage of a path into the negotiation state *)
let tally g neg ~net path =
  let mark use mine idx =
    if mine.(idx) <> net then begin
      mine.(idx) <- net;
      use.(idx) <- use.(idx) + 1
    end
  in
  let rec claim = function
    | (x1, y1, _) :: ((x2, y2, dir) :: _ as rest) ->
        if dir = dir_h then begin
          mark neg.h_use neg.h_mine (node_index g (min x1 x2) y1);
          mark neg.nh_use neg.nh_mine (node_index g x1 y1);
          mark neg.nh_use neg.nh_mine (node_index g x2 y2)
        end
        else begin
          mark neg.v_use neg.v_mine ((min y1 y2 * g.nx) + x1);
          mark neg.nv_use neg.nv_mine (node_index g x1 y1);
          mark neg.nv_use neg.nv_mine (node_index g x2 y2)
        end;
        claim rest
    | _ -> ()
  in
  claim path

(* One negotiation attempt for a whole pair. Returns routed paths if
   every resource ended with a single tenant. *)
let negotiate_pair g endpoints ~via_cost ~max_iterations =
  let neg = make_negotiation g in
  let n_res = g.nx * g.ny in
  let paths : (int * (int * int * int) list) list ref = ref [] in
  let present = ref (0.5 *. g.grid) in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !iter < max_iterations do
    incr iter;
    (* clear usage marks, keep history *)
    Array.fill neg.h_use 0 n_res 0;
    Array.fill neg.v_use 0 n_res 0;
    Array.fill neg.nh_use 0 n_res 0;
    Array.fill neg.nv_use 0 n_res 0;
    Array.fill neg.h_mine 0 n_res (-1);
    Array.fill neg.v_mine 0 n_res (-1);
    Array.fill neg.nh_mine 0 n_res (-1);
    Array.fill neg.nv_mine 0 n_res (-1);
    let this_round = ref [] in
    let all_routed = ref true in
    List.iter
      (fun (ni, sx, sy, gx, gy) ->
        match
          astar_negotiated g neg ~via_cost ~present:!present ~net:ni ~sx ~sy ~gx ~gy
        with
        | Some path ->
            tally g neg ~net:ni path;
            this_round := (ni, path) :: !this_round
        | None -> all_routed := false)
      endpoints;
    paths := !this_round;
    (* overuse -> history, and check convergence *)
    let overused = ref false in
    let bump use hist =
      Array.iteri
        (fun i u ->
          if u > 1 then begin
            overused := true;
            hist.(i) <- hist.(i) +. (g.grid *. float_of_int (u - 1))
          end)
        use
    in
    bump neg.h_use neg.h_hist;
    bump neg.v_use neg.v_hist;
    bump neg.nh_use neg.nh_hist;
    bump neg.nv_use neg.nv_hist;
    converged := !all_routed && not !overused;
    present := !present *. 1.6
  done;
  if !converged then Some !paths else None

type algorithm = Sequential | Negotiated

(* everything a finished pair hands back to the merge step: routed
   paths still in pair-local grid indices, plus the gap the pair ended
   up needing and how many expansion steps it took to get there *)
type pair_outcome = {
  pair_paths : (int * (int * int * int) list) list; (* (net, path), net order *)
  pair_gap : float;
  pair_expansions : int;
}

(* Route one row pair start to finish: ordering, pin reservation,
   claiming (or negotiation), promotion retries, space expansion. Pure
   with respect to shared state — reads only row [r]'s cells and its
   starting gap, tracks gap growth locally — so pairs can run on
   separate domains and still produce bit-identical results in any
   interleaving. *)
let route_pair p r ~nets ~via_cost ~max_expansions ~algorithm ~margin =
  let tech = p.Problem.tech in
  let grid = tech.Tech.grid in
  let gap = ref p.Problem.row_gaps.(r) in
  let expansions = ref 0 in
  (* a net that failed an attempt is promoted to the front of the next
     one: often it just needs first pick of the tracks, which is much
     cheaper than growing the channel *)
  let promoted : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let order_nets () =
    List.sort
      (fun a b ->
        let prio n = if Hashtbl.mem promoted n then 0 else 1 in
        compare
          (prio a, Float.abs (Problem.net_dx p p.Problem.nets.(a)))
          (prio b, Float.abs (Problem.net_dx p p.Problem.nets.(b))))
      nets
  in
  let rec attempt ~promotions tries =
    let nets = order_nets () in
    let g = make_grid p r ~margin ~gap:!gap in
    let to_grid_x x = int_of_float (x /. grid +. 0.5) in
    let to_grid_y y = int_of_float (y /. grid +. 0.5) in
    (* reserve every net's pin-escape edges up front so early-routed nets
       cannot wall in a later net's pins *)
    let endpoints =
      List.map
        (fun ni ->
          let e = p.Problem.nets.(ni) in
          let sc = p.Problem.cells.(e.Problem.src) in
          let sx = to_grid_x (Problem.pin_x p ni `Src) in
          let sy = to_grid_y sc.Problem.lib.Cell.height in
          let gx = to_grid_x (Problem.pin_x p ni `Dst) in
          let gy = g.ny - 1 in
          (ni, sx, sy, gx, gy))
        nets
    in
    List.iter
      (fun (ni, sx, sy, gx, gy) ->
        (* escape edges and the vertical occupancy of the pin-adjacent
           nodes: without this an earlier net's vertical run through
           (gx, gy-1) would make the final descent impossible no
           matter how much space expansion adds *)
        if sy < g.ny - 1 then begin
          g.v_owner.((sy * g.nx) + sx) <- ni;
          g.node_v.(node_index g sx sy) <- ni;
          g.node_v.(node_index g sx (sy + 1)) <- ni;
          g.node_h.(node_index g sx (sy + 1)) <- ni
        end;
        if gy > 0 then begin
          g.v_owner.(((gy - 1) * g.nx) + gx) <- ni;
          g.node_v.(node_index g gx gy) <- ni;
          g.node_v.(node_index g gx (gy - 1)) <- ni;
          g.node_h.(node_index g gx (gy - 1)) <- ni
        end)
      endpoints;
    let failed = ref None in
    let paths = ref [] in
    (match algorithm with
    | Negotiated -> (
        match negotiate_pair g endpoints ~via_cost ~max_iterations:24 with
        | Some routed ->
            List.iter
              (fun (ni, path) ->
                commit g ~net:ni path;
                paths := (ni, path) :: !paths)
              routed
        | None -> (
            (* negotiation failed: fall back to sequential claiming in
               this geometry, then to space expansion *)
            match endpoints with
            | (first, _, _, _, _) :: _ -> failed := Some first
            | [] -> ()))
    | Sequential ->
        List.iter
          (fun (ni, sx, sy, gx, gy) ->
            if !failed = None then
              match astar g ~via_cost ~net:ni ~sx ~sy ~gx ~gy with
              | Some path ->
                  commit g ~net:ni path;
                  paths := (ni, path) :: !paths
              | None -> failed := Some ni)
          endpoints);
    match !failed with
    | None ->
        { pair_paths = List.rev !paths; pair_gap = !gap; pair_expansions = !expansions }
    | Some ni ->
        if promotions < 3 && not (Hashtbl.mem promoted ni) then begin
          Hashtbl.replace promoted ni ();
          attempt ~promotions:(promotions + 1) tries
        end
        else begin
          if tries >= max_expansions then raise (Unroutable ni);
          incr expansions;
          gap := !gap +. tech.Tech.s_min;
          attempt ~promotions (tries + 1)
        end
  in
  attempt ~promotions:0 0

let route_all ?(via_cost = 20.0) ?(max_expansions = 400)
    ?(algorithm = Sequential) p =
  let t0 = Wallclock.now_s () in
  let tech = p.Problem.tech in
  let grid = tech.Tech.grid in
  let margin = 30.0 *. grid in
  let n_nets = Array.length p.Problem.nets in
  let routes = Array.make n_nets None in
  (* nets grouped by source row *)
  let by_row = Array.make (max 1 p.Problem.n_rows) [] in
  Array.iteri
    (fun ni e ->
      let r = p.Problem.cells.(e.Problem.src).Problem.row in
      by_row.(r) <- ni :: by_row.(r))
    p.Problem.nets;
  let n_pairs = max 0 (p.Problem.n_rows - 1) in
  (* route all pairs concurrently (one task per pair, in row order);
     failures are captured per pair and re-raised deterministically *)
  let outcomes =
    Parallel.map_chunks ~chunk:1 ~n:n_pairs (fun r _ ->
        try
          Ok
            (route_pair p r ~nets:by_row.(r) ~via_cost ~max_expansions
               ~algorithm ~margin)
        with e -> Error e)
  in
  (* merge in row order: commit gap growth (raising the leftmost
     pair's failure, with earlier pairs' gaps committed, exactly like
     the serial loop did), then convert paths to absolute coordinates
     now that every row's final top is known *)
  Array.iteri
    (fun r outcome ->
      match outcome with
      | Ok oc -> p.Problem.row_gaps.(r) <- oc.pair_gap
      | Error e -> raise e)
    outcomes;
  let expansions = ref 0 in
  Array.iteri
    (fun r oc ->
      match oc with
      | Error _ -> assert false
      | Ok oc ->
          expansions := !expansions + oc.pair_expansions;
          let y0 = Problem.row_top p r in
          List.iter
            (fun (ni, path) ->
              routes.(ni) <- Some (path_to_route ~grid ~y0 ~net:ni path))
            oc.pair_paths)
    outcomes;
  let routes = Array.map Option.get routes in
  let wirelength = Array.fold_left (fun acc r -> acc +. r.length) 0.0 routes in
  let total_vias = Array.fold_left (fun acc r -> acc + r.vias) 0 routes in
  {
    routes;
    expansions = !expansions;
    wirelength;
    total_vias;
    runtime_s = Wallclock.now_s () -. t0;
  }

let check_routes p result =
  let problems = ref [] in
  let push fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  let grid = p.Problem.tech.Tech.grid in
  let seg_table : (int * int * int * bool, int) Hashtbl.t = Hashtbl.create 1024 in
  Array.iter
    (fun rt ->
      let e = p.Problem.nets.(rt.net) in
      (match rt.points with
      | [] | [ _ ] -> push "net %d: degenerate route" rt.net
      | (x0, y0) :: _ ->
          let sx = Problem.pin_x p rt.net `Src in
          let sc = p.Problem.cells.(e.Problem.src) in
          let sy = Problem.row_top p sc.Problem.row +. sc.Problem.lib.Cell.height in
          if Float.abs (x0 -. sx) > 1e-6 || Float.abs (y0 -. sy) > 1e-6 then
            push "net %d: route does not start at source pin" rt.net);
      (match List.rev rt.points with
      | (xn, yn) :: _ ->
          let dx = Problem.pin_x p rt.net `Dst in
          let dc = p.Problem.cells.(e.Problem.dst) in
          let dy = Problem.row_top p dc.Problem.row in
          if Float.abs (xn -. dx) > 1e-6 || Float.abs (yn -. dy) > 1e-6 then
            push "net %d: route does not end at sink pin" rt.net
      | [] -> ());
      (* walk segments; register every grid edge *)
      let rec walk = function
        | (x1, y1) :: ((x2, y2) :: _ as rest) ->
            if x1 <> x2 && y1 <> y2 then push "net %d: diagonal segment" rt.net
            else begin
              let horizontal = y1 = y2 in
              let steps =
                int_of_float (Float.abs ((x2 -. x1) +. (y2 -. y1)) /. grid +. 0.5)
              in
              for s = 0 to steps - 1 do
                let fx = if horizontal then Float.min x1 x2 +. (float_of_int s *. grid) else x1 in
                let fy = if horizontal then y1 else Float.min y1 y2 +. (float_of_int s *. grid) in
                let key =
                  ( int_of_float (fx /. grid +. 0.5),
                    int_of_float (fy /. grid +. 0.5),
                    0,
                    horizontal )
                in
                (match Hashtbl.find_opt seg_table key with
                | Some other when other <> rt.net ->
                    push "nets %d/%d share a grid edge" rt.net other
                | _ -> ());
                Hashtbl.replace seg_table key rt.net
              done
            end;
            walk rest
        | _ -> ()
      in
      walk rt.points)
    result.routes;
  match !problems with
  | [] -> Ok ()
  | ps ->
      Error (String.concat "; " (List.filteri (fun i _ -> i < 10) (List.rev ps)))
