(** Layer-wise A* routing with space expansion (paper §III-D,
    Algorithm 1).

    AQFP routing is point-to-point (splitters absorb fan-out) and the
    zigzag clocking confines every net to the two metal layers between
    its two adjacent clock phases, so the router works one row pair at
    a time — no global/detailed split. Within a pair it runs A* on a
    10 µm grid (the "dynamic step size": wires can only turn on grid
    nodes, which enforces the zigzag minimum spacing by construction):

    - horizontal segments occupy metal 1, vertical segments metal 2,
      and every 90° turn is a via (penalized in the cost);
    - grid edges and directed node usage are exclusive per layer, so
      two nets can cross (different layers) but never overlap or touch
      end-to-end;
    - cells block the grid column-closed/row-open, so wires clear cell
      bodies laterally by a full grid pitch but pins on cell edges
      remain reachable; nets leave the driver pin downward and enter
      the sink pin from above.

    If any net in a pair cannot be routed, the vertical gap below the
    upper row grows by [s_min] and the whole pair is rerouted — the
    paper's space expansion. Expanding gap [r] only shifts rows below
    it, so already-routed pairs are untouched. *)

type route = {
  net : int;  (** index into the problem's net array *)
  points : (float * float) list;  (** polyline, start pin → end pin *)
  vias : int;
  length : float;  (** µm *)
}

type result = {
  routes : route array;  (** one per net, in net order *)
  expansions : int;  (** total space-expansion steps taken *)
  node_expansions : int;
      (** A* states popped across all searches (0 under [Legacy]) *)
  neg_rounds : int;
      (** max negotiation rounds over all row pairs (0 = [Sequential]) *)
  neg_rerouted : int;
      (** total per-round net reroutes across all pairs' negotiations *)
  wirelength : float;  (** Σ route length, µm *)
  total_vias : int;
  runtime_s : float;
}

exception Unroutable of int
(** Raised (net index) if a net still fails after the expansion limit;
    with a sane placement this indicates a malformed problem. *)

type algorithm =
  | Sequential
      (** first-come first-served track claiming, short nets first,
          failed nets promoted to the front before expanding *)
  | Negotiated
      (** PathFinder-style negotiated congestion: every iteration
          routes all of a pair's nets with shared resources allowed
          but priced (growing present-sharing cost + accumulated
          history) until each edge/node-layer slot has one tenant;
          falls back to expansion when negotiation stalls *)

type core =
  | Fast
      (** the shared arena search core ({!Search}): epoch-stamped
          dist/parent arrays reused across nets, a bucketed dial
          queue over quantized integer costs, bounding-box pruning
          with full-grid fallback, and (under [Negotiated])
          dirty-net-only rip-up and reroute *)
  | Legacy
      (** the frozen pre-overhaul core ({!Legacy}): per-net float
          A* with a binary heap and reroute-everything negotiation;
          kept as the measured baseline for [route_study] and the
          old-vs-new property tests *)

val route_all :
  ?via_cost:float -> ?max_expansions:int -> ?algorithm:algorithm ->
  ?core:core -> Problem.t -> result
(** Route every net. Mutates [Problem.row_gaps] when space expansion
    is needed (so [Problem.row_top] afterwards reflects final
    geometry). [max_expansions] is per row pair (default 400);
    [core] defaults to [Fast]. *)

val check_routes : Problem.t -> result -> (unit, string) Stdlib.result
(** Validate a routing result: every route connects its net's pins,
    stays on the grid, turns only at via points, and no two routes
    share a grid edge or touch on the same layer. Used by tests and
    the DRC stage. *)
