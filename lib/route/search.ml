(* The router's shared A* search core.

   Both routing algorithms — first-come-first-served claiming
   ([Sequential]) and PathFinder-style negotiation ([Negotiated]) —
   run the same state-space search over a row pair's grid: states are
   (node, arrival direction), horizontal runs live on metal 1 and
   vertical runs on metal 2, a turn is a via. They differ only in
   what an edge or node-layer slot costs: ownership makes foreign
   resources infinitely expensive, negotiation prices them. That
   difference is captured by a {!costs} record of closures; the
   search body here is the single implementation both modes share.

   Three mechanical properties make this core fast without changing
   what it computes:

   - {b Quantized integer costs.} Every cost is an integer count of
     1/16 grid units ({!qscale}). A grid step is exactly 16 quanta,
     via penalties and congestion prices are rounded to the nearest
     quantum. Integer arithmetic removes float rounding epsilons from
     the inner loop and puts priorities on the lattice the
     {!Dqueue} dial queue needs.
   - {b An epoch-stamped arena.} [dist]/[parent] arrays are allocated
     once per row pair and invalidated by bumping a generation
     counter instead of refilling O(nx*ny*2) floats per net. The
     dial queue is likewise reused across searches.
   - {b Bounding-box pruning with provable fallback.} A net is first
     searched inside its pin bounding box widened by
     {!bbox_margin} columns. If that window search fails, the caller
     re-runs on the full grid, so a net is declared unroutable only
     when the full-grid search — exactly the pre-window behavior —
     fails. Routability is therefore unchanged; only the (rare)
     paths whose optimal detour leaves the window can differ, and
     then by at most the detour the window still admits.

   Determinism: the search is a pure function of the grid, the cost
   closures and the endpoints. Ties between equal-cost paths resolve
   by the dial queue's documented FIFO order, which depends only on
   push order — itself fixed by the (deterministic) expansion order —
   never on timing or domain count. *)

(* Directions: 0 = horizontal arrival (metal 1), 1 = vertical (metal 2). *)
let dir_h = 0
let dir_v = 1

(* A pair grid lives in pair-local coordinates: x from 0 at the row's
   left edge, y from 0 at the top of row [r]. Keeping the grid free of
   absolute y lets every row pair be routed on its own domain — a
   pair's decisions depend only on its own row's cells and its own
   gap, never on how much space pairs above it grabbed. Absolute
   coordinates are restored after all pairs finish. *)
type grid = {
  nx : int;
  ny : int;
  grid : float;
  blocked : bool array; (* nodes, nx*ny *)
  blocked_h : bool array; (* nodes where horizontal runs are forbidden
                             (cell pin edges, region boundaries) *)
  h_owner : int array; (* edge (ix,iy)-(ix+1,iy) *)
  v_owner : int array; (* edge (ix,iy)-(ix,iy+1) *)
  node_h : int array; (* node used by a horizontal run of net i *)
  node_v : int array;
}

let node_index g ix iy = (iy * g.nx) + ix

(* ---- cost quantization ---- *)

(* quanta per grid step; a power of two so grid-multiples stay exact *)
let qscale = 16

let quantize g cost = int_of_float ((cost /. g.grid *. float_of_int qscale) +. 0.5)

(* columns added around a net's pin bounding box before falling back
   to the full grid *)
let bbox_margin = 24

(* ---- cost closures ---- *)

(* Per-move pricing. Edge closures return the extra quantized cost of
   crossing an edge, or a negative value when the edge is forbidden.
   Node closures split passability (checked at both endpoints of a
   move on the move's layer) from price (charged on the entered node
   only, mirroring the original negotiated cost model). *)
type costs = {
  edge_h : int -> int;
  edge_v : int -> int;
  node_ok_h : int -> bool;
  node_ok_v : int -> bool;
  node_price_h : int -> int;
  node_price_v : int -> int;
}

(* Sequential claiming: a resource is free for its owner (or unowned)
   and forbidden for everyone else; there are no soft prices. *)
let owned_costs g ~net =
  let pass a idx = a.(idx) = -1 || a.(idx) = net in
  let zero _ = 0 in
  {
    edge_h = (fun i -> if pass g.h_owner i then 0 else -1);
    edge_v = (fun i -> if pass g.v_owner i then 0 else -1);
    node_ok_h = pass g.node_h;
    node_ok_v = pass g.node_v;
    node_price_h = zero;
    node_price_v = zero;
  }

(* Negotiation state: current tenancy counts and accumulated history,
   all in quantized units. The searching net's own usage is never in
   [*_use] (its previous path is untallied before it reroutes), so a
   slot's count is exactly its foreign tenancy. *)
type neg_state = {
  h_use : int array;
  v_use : int array;
  nh_use : int array;
  nv_use : int array;
  h_hist : int array;
  v_hist : int array;
  nh_hist : int array;
  nv_hist : int array;
}

let make_neg_state g =
  let n = g.nx * g.ny in
  {
    h_use = Array.make n 0;
    v_use = Array.make n 0;
    nh_use = Array.make n 0;
    nv_use = Array.make n 0;
    h_hist = Array.make n 0;
    v_hist = Array.make n 0;
    nh_hist = Array.make n 0;
    nv_hist = Array.make n 0;
  }

(* Negotiated pricing: hard constraints are the grid geometry and pin
   reservations (the owner arrays); foreign tenancy is priced at
   [present_q] per tenant plus accumulated history. *)
let negotiated_costs g neg ~present_q ~net =
  let hard a idx = a.(idx) = -1 || a.(idx) = net in
  {
    edge_h =
      (fun i ->
        if hard g.h_owner i then (present_q * neg.h_use.(i)) + neg.h_hist.(i)
        else -1);
    edge_v =
      (fun i ->
        if hard g.v_owner i then (present_q * neg.v_use.(i)) + neg.v_hist.(i)
        else -1);
    node_ok_h = hard g.node_h;
    node_ok_v = hard g.node_v;
    node_price_h = (fun i -> (present_q * neg.nh_use.(i)) + neg.nh_hist.(i));
    node_price_v = (fun i -> (present_q * neg.nv_use.(i)) + neg.nv_hist.(i));
  }

(* ---- the search arena ---- *)

(* One arena serves every search of a row pair: arrays sized to the
   largest grid seen so far, invalidated per search by bumping
   [epoch] (a state's [dist]/[parent] are meaningful only when its
   stamp equals the current epoch). Nothing is re-allocated when the
   pair retries after promotion or space expansion — the arrays only
   grow, by doubling, when expansion enlarges the grid. *)
type arena = {
  mutable dist : int array; (* quantized g-cost per state *)
  mutable parent : int array;
  mutable stamp : int array;
  mutable epoch : int;
  queue : Dqueue.t;
  mutable expansions : int; (* states popped fresh, cumulative *)
}

let create_arena () =
  {
    dist = [||];
    parent = [||];
    stamp = [||];
    epoch = 0;
    queue = Dqueue.create ();
    expansions = 0;
  }

let ensure_arena a n =
  if Array.length a.dist < n then begin
    let n' = max n (2 * Array.length a.dist) in
    a.dist <- Array.make n' 0;
    a.parent <- Array.make n' 0;
    (* fresh stamps are 0; the epoch is always >= 1 by then *)
    a.stamp <- Array.make n' 0
  end

(* ---- the search itself ---- *)

(* A* for one net between pin escapes, restricted to columns
   [lo_x..hi_x] (callers pass [0, nx-1] for the full grid). The first
   move is forced downward out of the source pin; the goal must be
   entered vertically. Returns the node path source-first, or [None]
   when the goal is unreachable inside the window. *)
let run a g ~costs ~via_q ~sx ~sy ~gx ~gy ~lo_x ~hi_x =
  let nx = g.nx and ny = g.ny in
  ensure_arena a (nx * ny * 2);
  a.epoch <- a.epoch + 1;
  let epoch = a.epoch in
  Dqueue.clear a.queue;
  let dist = a.dist and parent = a.parent and stamp = a.stamp in
  let heuristic ix iy = qscale * (abs (ix - gx) + abs (iy - gy)) in
  (* forced first move down out of the source pin; like the pre-arena
     cores, the seed move is never priced *)
  let seeded =
    sy + 1 < ny
    && costs.edge_v (node_index g sx sy) >= 0
    && (not g.blocked.(node_index g sx (sy + 1)))
    && costs.node_ok_v (node_index g sx (sy + 1))
  in
  let reconstruct goal_state =
    let rec walk s acc =
      if s = -2 then acc
      else
        let node = s lsr 1 in
        let ix = node mod nx and iy = node / nx in
        walk parent.(s) ((ix, iy, s land 1) :: acc)
    in
    Some ((sx, sy, dir_v) :: walk goal_state [])
  in
  (* straight-shot early exit: when the pins share a column and the
     whole descent is passable at zero price, that path costs exactly
     the Manhattan lower bound with zero vias — with via_q > 0 every
     other path is strictly costlier, so it is the unique optimum and
     the search can be skipped entirely *)
  let straight_shot () =
    sx = gx && via_q > 0 && seeded
    && begin
         let ok = ref true in
         let iy = ref (sy + 1) in
         while !ok && !iy < gy do
           let n = node_index g sx !iy in
           let nn = n + nx in
           if
             costs.edge_v n <> 0
             || (g.blocked.(nn) && not (!iy + 1 = gy))
             || (not (costs.node_ok_v nn))
             || costs.node_price_v nn <> 0
           then ok := false;
           incr iy
         done;
         !ok
       end
  in
  if not seeded then None
  else if gy > sy && straight_shot () then begin
    a.expansions <- a.expansions + (gy - sy);
    let rec steps iy acc =
      if iy <= sy then acc else steps (iy - 1) ((sx, iy, dir_v) :: acc)
    in
    Some ((sx, sy, dir_v) :: steps gy [])
  end
  else begin
    let s0 = (node_index g sx (sy + 1) * 2) + dir_v in
    dist.(s0) <- qscale;
    parent.(s0) <- -2;
    stamp.(s0) <- epoch;
    Dqueue.push a.queue (qscale + heuristic sx (sy + 1)) s0;
    let goal_state = ref (-1) in
    let continue = ref true in
    while !continue do
      match Dqueue.pop a.queue with
      | None -> continue := false
      | Some (key, s) ->
          let node = s lsr 1 in
          let dir = s land 1 in
          let ix = node mod nx and iy = node / nx in
          (* the queue is cleared per search, so every popped state
             must carry the current epoch; a stale stamp means the
             freshness test below is about to read another search's
             dist value *)
          if Dsan.on () && stamp.(s) <> epoch then
            Dsan.record ~rule:"DSAN-EPOCH-01" ~site:"route.pairs"
              ~array_label:"search.arena" ~index:s
              (Printf.sprintf
                 "popped state %d carries stamp %d but the arena is at \
                  epoch %d: stale dist/parent from a previous search"
                 s stamp.(s) epoch);
          (* an entry is fresh iff its key is the state's current
             f-value; improvements strictly lower f, so stale entries
             compare greater and are skipped exactly *)
          if key = dist.(s) + heuristic ix iy then begin
            a.expansions <- a.expansions + 1;
            let d = dist.(s) in
            if ix = gx && iy = gy && dir = dir_v then begin
              goal_state := s;
              continue := false
            end
            else begin
              let try_move nix niy ndir edge_price node_ok node_price =
                (* the goal node is exempt from the blocked test (it
                   sits on the region boundary anyway); a run claims
                   both of an edge's endpoints on its layer, so check
                   the departing node too *)
                let nnode = (niy * nx) + nix in
                if
                  edge_price >= 0
                  && ((not g.blocked.(nnode)) || (nix = gx && niy = gy))
                  && node_ok nnode && node_ok node
                then begin
                  let turn = if dir <> ndir then via_q else 0 in
                  let nd = d + qscale + turn + edge_price + node_price nnode in
                  let ns = (nnode * 2) + ndir in
                  if stamp.(ns) <> epoch || nd < dist.(ns) then begin
                    dist.(ns) <- nd;
                    parent.(ns) <- s;
                    stamp.(ns) <- epoch;
                    Dqueue.push a.queue (nd + heuristic nix niy) ns
                  end
                end
              in
              let bh_here = g.blocked_h.(node) in
              (* right / left: pin-edge rows forbid horizontal runs *)
              if ix + 1 <= hi_x && not (bh_here || g.blocked_h.(node + 1))
              then
                try_move (ix + 1) iy dir_h (costs.edge_h node) costs.node_ok_h
                  costs.node_price_h;
              if ix - 1 >= lo_x && not (bh_here || g.blocked_h.(node - 1))
              then
                try_move (ix - 1) iy dir_h
                  (costs.edge_h (node - 1))
                  costs.node_ok_h costs.node_price_h;
              (* down / up *)
              if iy + 1 < ny then
                try_move ix (iy + 1) dir_v (costs.edge_v node) costs.node_ok_v
                  costs.node_price_v;
              if iy > 0 then
                try_move ix (iy - 1) dir_v
                  (costs.edge_v (node - nx))
                  costs.node_ok_v costs.node_price_v
            end
          end
    done;
    if !goal_state < 0 then None else reconstruct !goal_state
  end

(* Window search with provable fallback: try the pin bounding box
   widened by [bbox_margin] columns; when that fails, re-run on the
   full grid so routability matches the unpruned search exactly. *)
let run_bboxed a g ~costs ~via_q ~sx ~sy ~gx ~gy =
  let lo_x = max 0 (min sx gx - bbox_margin) in
  let hi_x = min (g.nx - 1) (max sx gx + bbox_margin) in
  match run a g ~costs ~via_q ~sx ~sy ~gx ~gy ~lo_x ~hi_x with
  | Some _ as p -> p
  | None when lo_x > 0 || hi_x < g.nx - 1 ->
      run a g ~costs ~via_q ~sx ~sy ~gx ~gy ~lo_x:0 ~hi_x:(g.nx - 1)
  | None -> None
