(* Structurally-hashed AIG. Literal = 2*node + complement; node 0 is
   the constant-false node, nodes 1..n_inputs the primary inputs, the
   rest two-input ANDs. *)

type t = {
  n_inputs : int;
  fanin0 : int Vec.t; (* per AND node id, left operand literal *)
  fanin1 : int Vec.t;
  first_and : int; (* id of the first AND node = n_inputs + 1 *)
  strash : (int * int, int) Hashtbl.t;
}

let false_lit = 0
let true_lit = 1
let neg l = l lxor 1
let is_complemented l = l land 1 = 1
let node_of_lit l = l lsr 1

let create ~n_inputs =
  {
    n_inputs;
    fanin0 = Vec.create ();
    fanin1 = Vec.create ();
    first_and = n_inputs + 1;
    strash = Hashtbl.create 64;
  }

let n_inputs t = t.n_inputs
let n_nodes t = t.first_and + Vec.length t.fanin0

let input_lit t i =
  if i < 0 || i >= t.n_inputs then invalid_arg "Aig.input_lit";
  2 * (i + 1)

let mk_and t a b =
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = false_lit then false_lit
  else if a = true_lit then b
  else if a = b then a
  else if a = neg b then false_lit
  else
    match Hashtbl.find_opt t.strash (a, b) with
    | Some id -> 2 * id
    | None ->
      let id = t.first_and + Vec.length t.fanin0 in
      ignore (Vec.push t.fanin0 a);
      ignore (Vec.push t.fanin1 b);
      Hashtbl.add t.strash (a, b) id;
      2 * id

let mk_or t a b = neg (mk_and t (neg a) (neg b))
let mk_xor t a b = mk_or t (mk_and t a (neg b)) (mk_and t (neg a) b)

let mk_maj t a b c =
  mk_or t (mk_or t (mk_and t a b) (mk_and t a c)) (mk_and t b c)

let add_netlist t nl =
  let ins = Netlist.inputs nl in
  if List.length ins <> t.n_inputs then
    invalid_arg "Aig.add_netlist: input count mismatch";
  let lits = Array.make (Netlist.size nl) false_lit in
  List.iteri (fun i id -> lits.(id) <- input_lit t i) ins;
  let order = Netlist.topo_order nl in
  Array.iter
    (fun id ->
      let f k = lits.((Netlist.fanins nl id).(k)) in
      let l =
        match Netlist.kind nl id with
        | Netlist.Input -> lits.(id)
        | Netlist.Const b -> if b then true_lit else false_lit
        | Netlist.Output | Netlist.Buf | Netlist.Splitter _ -> f 0
        | Netlist.Not -> neg (f 0)
        | Netlist.And -> mk_and t (f 0) (f 1)
        | Netlist.Or -> mk_or t (f 0) (f 1)
        | Netlist.Nand -> neg (mk_and t (f 0) (f 1))
        | Netlist.Nor -> neg (mk_or t (f 0) (f 1))
        | Netlist.Xor -> mk_xor t (f 0) (f 1)
        | Netlist.Xnor -> neg (mk_xor t (f 0) (f 1))
        | Netlist.Maj -> mk_maj t (f 0) (f 1) (f 2)
      in
      lits.(id) <- l)
    order;
  lits

let lit_word vals l =
  let w = vals.(l lsr 1) in
  if l land 1 = 1 then Int64.lognot w else w

let sim t words =
  if Array.length words <> t.n_inputs then invalid_arg "Aig.sim";
  let vals = Array.make (n_nodes t) 0L in
  Array.blit words 0 vals 1 t.n_inputs;
  for k = 0 to Vec.length t.fanin0 - 1 do
    let a = lit_word vals (Vec.get t.fanin0 k) in
    let b = lit_word vals (Vec.get t.fanin1 k) in
    vals.(t.first_and + k) <- Int64.logand a b
  done;
  vals

let to_solver t solver =
  let n = n_nodes t in
  let vars = Array.init n (fun _ -> Solver.new_var solver) in
  let slit l =
    let v = vars.(l lsr 1) in
    Solver.lit_of_var v lor (l land 1)
  in
  (* node 0 is constant false *)
  Solver.add_clause solver [ Solver.neg_lit (Solver.lit_of_var vars.(0)) ];
  for k = 0 to Vec.length t.fanin0 - 1 do
    let nlit = Solver.lit_of_var vars.(t.first_and + k) in
    let a = slit (Vec.get t.fanin0 k) in
    let b = slit (Vec.get t.fanin1 k) in
    Solver.add_clause solver [ Solver.neg_lit nlit; a ];
    Solver.add_clause solver [ Solver.neg_lit nlit; b ];
    Solver.add_clause solver [ nlit; Solver.neg_lit a; Solver.neg_lit b ]
  done;
  vars

let solver_lit vars l = Solver.lit_of_var vars.(l lsr 1) lor (l land 1)
