(** And-inverter graphs with structural hashing.

    Nodes are two-input AND gates; edges carry an optional complement
    bit. A literal is [2*node + complement]; node 0 is the constant
    (literal {!false_lit} = 0, {!true_lit} = 1) and nodes
    [1..n_inputs] are the primary inputs. {!mk_and} normalizes operand
    order, propagates constants and hashes structurally, so two
    functionally-identical subgraphs built gate-by-gate collapse to
    the same literal — the basis of both the CEC sweeper and the
    [NL-DUP-01]/[NL-CONST-01] lint rules. *)

type t

val create : n_inputs:int -> t

val n_inputs : t -> int

val n_nodes : t -> int
(** Node count including the constant node and the inputs. *)

val false_lit : int

val true_lit : int

val input_lit : t -> int -> int
(** Positive literal of input [i] (0-based, in [0, n_inputs)). *)

val neg : int -> int

val is_complemented : int -> bool

val node_of_lit : int -> int

val mk_and : t -> int -> int -> int

val mk_or : t -> int -> int -> int

val mk_xor : t -> int -> int -> int

val mk_maj : t -> int -> int -> int -> int

val add_netlist : t -> Netlist.t -> int array
(** Convert a netlist into the AIG. The netlist's primary inputs map,
    in {!Netlist.inputs} order, onto AIG inputs [0..]; their count
    must equal [n_inputs t]. Returns the AIG literal of every netlist
    node ([Output], [Buf] and [Splitter] nodes are transparent).
    Raises [Failure] on a cyclic netlist (via [Netlist.topo_order])
    and [Invalid_argument] on an input-count mismatch. *)

val sim : t -> int64 array -> int64 array
(** [sim t words] — bit-parallel evaluation; [words] has one 64-bit
    stimulus word per input. Returns the value word of every {e node}
    (not literal); use {!lit_word} to read a literal. *)

val lit_word : int64 array -> int -> int64

val to_solver : t -> Solver.t -> int array
(** Tseitin-encode every node into the solver (3 clauses per AND, a
    unit clause pinning the constant node). Returns the solver
    variable of each AIG node; use {!solver_lit} to translate
    literals. *)

val solver_lit : int array -> int -> int
(** [solver_lit vars l] — the solver literal for AIG literal [l]
    given the variable map returned by {!to_solver}. *)
