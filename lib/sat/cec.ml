type verdict = Equal | Diff of bool array | Unknown of int

let default_budget = 200_000
let sim_rounds = 8
let sim_seed = 0x5eed_ca5e

(* Counterexample from a simulation word with a set miter bit. *)
let cex_of_words words bit =
  Array.map (fun w -> Int64.logand (Int64.shift_right_logical w bit) 1L = 1L) words

let lowest_set_bit w =
  let rec go i = if Int64.logand (Int64.shift_right_logical w i) 1L = 1L then i else go (i + 1) in
  go 0

let check ?(conflict_budget = default_budget) a b =
  let n_in = List.length (Netlist.inputs a) in
  if List.length (Netlist.inputs b) <> n_in then
    invalid_arg "Cec.check: input count mismatch";
  let outs_a = Netlist.outputs a and outs_b = Netlist.outputs b in
  if List.length outs_a <> List.length outs_b then
    invalid_arg "Cec.check: output count mismatch";
  let aig = Aig.create ~n_inputs:n_in in
  let la = Aig.add_netlist aig a in
  let lb = Aig.add_netlist aig b in
  let miter =
    List.fold_left2
      (fun acc oa ob -> Aig.mk_or aig acc (Aig.mk_xor aig la.(oa) lb.(ob)))
      Aig.false_lit outs_a outs_b
  in
  if miter = Aig.false_lit then Equal
  else if miter = Aig.true_lit then Diff (Array.make n_in false)
  else begin
    (* Deterministic random simulation: a differing bit is an instant
       counterexample; otherwise the per-node response words become
       sweeping signatures. *)
    let rng = Rng.create sim_seed in
    let n_nodes = Aig.n_nodes aig in
    let sigs = Array.make_matrix n_nodes sim_rounds 0L in
    let cex = ref None in
    let round = ref 0 in
    while !cex = None && !round < sim_rounds do
      let words = Array.init n_in (fun _ -> Rng.bits64 rng) in
      let vals = Aig.sim aig words in
      let mword = Aig.lit_word vals miter in
      if mword <> 0L then cex := Some (cex_of_words words (lowest_set_bit mword))
      else
        for v = 0 to n_nodes - 1 do
          sigs.(v).(!round) <- vals.(v)
        done;
      incr round
    done;
    match !cex with
    | Some cex -> Diff cex
    | None ->
      let solver = Solver.create () in
      let vars = Aig.to_solver aig solver in
      let slit l = Aig.solver_lit vars l in
      (* SAT sweeping: bucket nodes by canonical (phase-normalized)
         signature, prove each candidate against its bucket
         representative in node-id order, merge proven pairs with
         equality clauses. The sweep may spend at most half the
         conflict budget; the final miter solve gets the rest. *)
      let budget_left = ref conflict_budget in
      let sweep_left = ref (conflict_budget / 2) in
      let buckets = Hashtbl.create 64 in
      let canon v =
        let ph = Int64.logand sigs.(v).(0) 1L = 1L in
        let key =
          String.concat ","
            (Array.to_list
               (Array.map
                  (fun w -> Int64.to_string (if ph then Int64.lognot w else w))
                  sigs.(v)))
        in
        (key, ph)
      in
      let run_query assumptions =
        let before = Solver.conflicts solver in
        let cap = min !sweep_left 2000 in
        let r = Solver.solve ~assumptions ~conflict_budget:cap solver in
        let used = Solver.conflicts solver - before in
        sweep_left := !sweep_left - used;
        budget_left := !budget_left - used;
        r
      in
      let v = ref 0 in
      while !v < n_nodes && !sweep_left > 0 do
        let key, ph = canon !v in
        (match Hashtbl.find_opt buckets key with
        | None -> Hashtbl.add buckets key (!v, ph)
        | Some (r, phr) ->
          let lv = (2 * !v) lor (if ph then 1 else 0) in
          let lr = (2 * r) lor (if phr then 1 else 0) in
          let q1 = run_query [ slit lv; Solver.neg_lit (slit lr) ] in
          if q1 = Solver.Unsat && !sweep_left > 0 then begin
            let q2 = run_query [ Solver.neg_lit (slit lv); slit lr ] in
            if q2 = Solver.Unsat then begin
              (* proven: merge so later queries see the equivalence *)
              Solver.add_clause solver
                [ Solver.neg_lit (slit lv); slit lr ];
              Solver.add_clause solver
                [ slit lv; Solver.neg_lit (slit lr) ]
            end
          end);
        incr v
      done;
      let final =
        Solver.solve ~assumptions:[ slit miter ]
          ~conflict_budget:(max 1 !budget_left) solver
      in
      (match final with
      | Solver.Unsat -> Equal
      | Solver.Sat ->
        Diff
          (Array.init n_in (fun i ->
               Solver.model_value solver (slit (Aig.input_lit aig i))))
      | Solver.Unknown -> Unknown conflict_budget)
  end
