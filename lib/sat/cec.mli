(** SAT-based combinational equivalence checking.

    Both netlists are converted into one shared, structurally-hashed
    {!Aig} over a common set of primary inputs, a miter (OR of
    per-output XORs) is built on top, and the miter is decided with
    {!Solver} after a SAT-sweeping pass: deterministic random
    simulation buckets candidate-equivalent internal nodes, incremental
    SAT calls prove them, and each proven pair is merged by adding
    equality clauses that strengthen the final miter solve.

    Everything is deterministic: the simulation stimulus comes from a
    fixed {!Rng} seed, buckets are processed in node-id order and the
    solver itself is deterministic. *)

type verdict =
  | Equal  (** miter UNSAT — proven equivalent *)
  | Diff of bool array
      (** counterexample, one bool per primary input in
          [Netlist.inputs] order *)
  | Unknown of int  (** conflict budget (the argument) exhausted *)

val default_budget : int

val check : ?conflict_budget:int -> Netlist.t -> Netlist.t -> verdict
(** [check a b] — the netlists must have the same number of primary
    inputs and outputs ([Invalid_argument] otherwise); inputs pair up
    in [Netlist.inputs] order, outputs in [Netlist.outputs] order. *)
