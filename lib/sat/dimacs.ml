type cnf = { n_vars : int; clauses : int list list }

let parse text =
  let lines = String.split_on_char '\n' text in
  let n_vars = ref 0 in
  let declared = ref false in
  let clauses = ref [] in
  let cur = ref [] in
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  let handle_tok tok =
    match int_of_string_opt tok with
    | None -> fail (Printf.sprintf "bad token %S" tok)
    | Some 0 ->
      clauses := List.rev !cur :: !clauses;
      cur := []
    | Some d ->
      n_vars := max !n_vars (abs d);
      cur := d :: !cur
  in
  List.iter
    (fun line ->
      if !err = None then
        let line = String.trim line in
        if line = "" || line.[0] = 'c' then ()
        else if line.[0] = 'p' then begin
          match
            String.split_on_char ' ' line
            |> List.filter (fun s -> s <> "")
          with
          | [ "p"; "cnf"; v; _c ] -> (
            declared := true;
            match int_of_string_opt v with
            | Some v when v >= 0 -> n_vars := max !n_vars v
            | _ -> fail "bad p cnf header")
          | _ -> fail "bad p cnf header"
        end
        else
          String.split_on_char ' ' line
          |> List.filter (fun s -> s <> "")
          |> List.iter handle_tok)
    lines;
  match !err with
  | Some msg -> Error msg
  | None ->
    if not !declared then Error "missing p cnf header"
    else begin
      if !cur <> [] then clauses := List.rev !cur :: !clauses;
      Ok { n_vars = !n_vars; clauses = List.rev !clauses }
    end

let to_string cnf =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" cnf.n_vars (List.length cnf.clauses));
  List.iter
    (fun cl ->
      List.iter (fun d -> Buffer.add_string buf (string_of_int d ^ " ")) cl;
      Buffer.add_string buf "0\n")
    cnf.clauses;
  Buffer.contents buf

let solve ?conflict_budget cnf =
  let s = Solver.create () in
  for _ = 1 to cnf.n_vars do
    ignore (Solver.new_var s)
  done;
  let to_lit d =
    let v = abs d - 1 in
    if d < 0 then Solver.neg_lit (Solver.lit_of_var v)
    else Solver.lit_of_var v
  in
  List.iter (fun cl -> Solver.add_clause s (List.map to_lit cl)) cnf.clauses;
  match Solver.solve ?conflict_budget s with
  | Solver.Sat ->
    `Sat (Array.init cnf.n_vars (fun v -> Solver.model_value s (Solver.lit_of_var v)))
  | Solver.Unsat -> `Unsat
  | Solver.Unknown -> `Unknown
