(** DIMACS CNF reader/writer.

    Clauses use DIMACS conventions: variables are 1-based, a negative
    integer is a negated literal, 0 terminates a clause. This module is
    the standalone test harness for {!Solver}: parse a formula, solve
    it, print a model — no netlists involved. *)

type cnf = {
  n_vars : int;
  clauses : int list list;  (** DIMACS literals, no terminating 0 *)
}

val parse : string -> (cnf, string) result
(** Parse DIMACS CNF text. Comment lines ([c ...]) are skipped; the
    [p cnf V C] header is required. Variables mentioned beyond the
    declared count grow [n_vars] rather than erroring. *)

val to_string : cnf -> string
(** Render back to DIMACS text with a [p cnf] header. *)

val solve : ?conflict_budget:int -> cnf -> [ `Sat of bool array | `Unsat | `Unknown ]
(** Solve with {!Solver}. On [`Sat m], [m.(v-1)] is the value of
    DIMACS variable [v]. *)
